package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func snapshotFiles(t *testing.T, dir string) []uint64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []uint64
	for _, e := range entries {
		if idx, ok := parseSnapshotName(e.Name()); ok {
			out = append(out, idx)
		}
	}
	return out
}

// TestSnapshotPruneKeepsNewest pins pruneLocked's exact survivors: the
// highest `retain` indices remain, everything older is removed, and
// Latest tracks the newest survivor.
func TestSnapshotPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshotStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 7; i++ {
		if err := s.Write(i*100, []byte(fmt.Sprintf("img-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := snapshotFiles(t, dir)
	want := []uint64{500, 600, 700}
	if len(got) != len(want) {
		t.Fatalf("retained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained %v, want %v", got, want)
		}
	}
	idx, data, ok, err := s.Latest()
	if err != nil || !ok || idx != 700 || string(data) != "img-7" {
		t.Fatalf("Latest = %d %q ok=%v err=%v", idx, data, ok, err)
	}
}

// TestSnapshotRetainDefault: retain <= 0 falls back to keeping 2.
func TestSnapshotRetainDefault(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshotStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := s.Write(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := snapshotFiles(t, dir); len(got) != 2 {
		t.Fatalf("retained %d snapshots, want default 2", len(got))
	}
}

// TestSnapshotLatestSkipsPartialFile: a truncated snapshot (shorter
// than its 12-byte header — the shape a crash mid-write outside the
// atomic rename path would leave) is skipped in favour of an older
// valid one.
func TestSnapshotLatestSkipsPartialFile(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshotStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(10, []byte("good")); err != nil {
		t.Fatal(err)
	}
	// A newer snapshot exists but holds only 3 bytes.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(20)), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	// And an empty one newer still.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(30)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	idx, data, ok, err := s.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest: ok=%v err=%v", ok, err)
	}
	if idx != 10 || string(data) != "good" {
		t.Fatalf("Latest = %d %q, want 10 good", idx, data)
	}
}

// TestSnapshotLatestAllCorrupt: when every snapshot fails its CRC,
// Latest reports no usable snapshot (recovery then replays the whole
// journal) rather than an error.
func TestSnapshotLatestAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshotStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := s.Write(i*10, []byte(fmt.Sprintf("img-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range snapshotFiles(t, dir) {
		path := filepath.Join(dir, snapshotName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, ok, err := s.Latest()
	if err != nil {
		t.Fatalf("Latest errored: %v", err)
	}
	if ok {
		t.Fatal("Latest reported a usable snapshot from all-corrupt store")
	}
}

// TestSnapshotStrayFilesIgnored: non-snapshot names (including the
// write-path temp file) never count as snapshots or survive into
// Latest.
func TestSnapshotStrayFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshotStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"snap.tmp", "notes.txt", "snap-zzz.snap", "snap-1.snapx"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok, _ := s.Latest(); ok {
		t.Fatal("stray files mistaken for snapshots")
	}
	if err := s.Write(5, []byte("real")); err != nil {
		t.Fatal(err)
	}
	idx, data, ok, err := s.Latest()
	if err != nil || !ok || idx != 5 || string(data) != "real" {
		t.Fatalf("Latest = %d %q ok=%v err=%v", idx, data, ok, err)
	}
}
