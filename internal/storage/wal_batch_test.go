package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Group-commit (SyncBatch) tests. The durability contract under test:
// once AppendDurable returns, the record survives a crash — modelled
// here by reopening the directory with a fresh journal WITHOUT closing
// the first one (a closed journal flushes everything, which would mask
// group-commit bugs).

func TestAppendDurableConcurrentBatch(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(dir, Options{
		Policy:      SyncBatch,
		SegmentSize: 8 << 10, // force several rolls mid-run
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 16, 25
	payload := []byte("group-commit-record-payload-0123456789")
	var wg sync.WaitGroup
	indices := make([][]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				idx, err := j.AppendDurable(payload)
				if err != nil {
					t.Error(err)
					return
				}
				indices[g] = append(indices[g], idx)
			}
		}(g)
	}
	wg.Wait()

	// Every ack'd index is unique and within range.
	all := map[uint64]bool{}
	for _, s := range indices {
		for _, idx := range s {
			if all[idx] {
				t.Fatalf("duplicate index %d", idx)
			}
			all[idx] = true
		}
	}
	if len(all) != goroutines*per {
		t.Fatalf("acked %d unique indices, want %d", len(all), goroutines*per)
	}

	// Crash simulation: reopen WITHOUT closing. Every acked record
	// must already be on disk.
	j2, err := OpenFileJournal(dir, Options{SegmentSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recovered := map[uint64]bool{}
	if err := j2.Replay(1, func(idx uint64, _ []byte) error {
		recovered[idx] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for idx := range all {
		if !recovered[idx] {
			t.Fatalf("acked record %d lost after crash-reopen", idx)
		}
	}
}

// TestAppendDurableAckOrdering checks batch-boundary fsync ordering:
// an ack for index i implies every record appended before it (plain or
// durable) is durable too, because a group commit always covers the
// whole buffered prefix.
func TestAppendDurableAckOrdering(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(dir, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		// A few plain appends (no individual durability)…
		for i := 0; i < 10; i++ {
			if _, err := j.Append([]byte(fmt.Sprintf("plain-%d-%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
		// …then one durable append: its ack covers the prefix.
		idx, err := j.AppendDurable([]byte(fmt.Sprintf("durable-%d", round)))
		if err != nil {
			t.Fatal(err)
		}
		if synced := j.SyncedIndex(); synced < idx {
			t.Fatalf("round %d: SyncedIndex = %d after ack for %d", round, synced, idx)
		}
	}
	last := j.LastIndex()
	// Crash: everything up to the last ack must be recoverable.
	j2, err := OpenFileJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.LastIndex(); got != last {
		t.Fatalf("recovered LastIndex = %d, want %d", got, last)
	}
}

// TestSyncBatchTickFlushesPlainAppends: without any durability ack,
// the max-latency tick alone must push buffered appends to disk.
func TestSyncBatchTickFlushesPlainAppends(t *testing.T) {
	j, err := OpenFileJournal(t.TempDir(), Options{
		Policy:        SyncBatch,
		BatchMaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var last uint64
	for i := 0; i < 20; i++ {
		if last, err = j.Append([]byte("tick-flushed")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for j.SyncedIndex() < last {
		if time.Now().After(deadline) {
			t.Fatalf("SyncedIndex = %d, want %d within 2s (tick did not flush)", j.SyncedIndex(), last)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSyncBatchBoundedBatch: a full batch wakes the committer before
// the tick. With a long tick, BatchMaxRecords plain appends must
// still become durable promptly.
func TestSyncBatchBoundedBatch(t *testing.T) {
	j, err := OpenFileJournal(t.TempDir(), Options{
		Policy:          SyncBatch,
		BatchMaxRecords: 8,
		BatchMaxDelay:   time.Minute, // tick effectively disabled
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 8; i++ {
		if _, err := j.Append([]byte("batch-full")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for j.SyncedIndex() < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("SyncedIndex = %d, want 8 (full batch did not trigger commit)", j.SyncedIndex())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAppendDurableAllPolicies: AppendDurable keeps its contract under
// every policy and for the in-memory journal.
func TestAppendDurableAllPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncNever, SyncAlways, SyncEvery, SyncBatch} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			j, err := OpenFileJournal(dir, Options{Policy: pol, SyncInterval: 4})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 10; i++ {
				idx, err := j.AppendDurable([]byte(fmt.Sprintf("d-%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				if idx != uint64(i) {
					t.Fatalf("index = %d, want %d", idx, i)
				}
			}
			if synced := j.SyncedIndex(); synced != 10 {
				t.Fatalf("SyncedIndex = %d, want 10", synced)
			}
			// Crash-reopen: all acked records present.
			j2, err := OpenFileJournal(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if got := j2.LastIndex(); got != 10 {
				t.Fatalf("recovered LastIndex = %d, want 10", got)
			}
		})
	}
	t.Run("mem", func(t *testing.T) {
		m := NewMemJournal()
		if idx, err := m.AppendDurable([]byte("x")); err != nil || idx != 1 {
			t.Fatalf("idx=%d err=%v", idx, err)
		}
		if m.SyncedIndex() != 1 {
			t.Fatalf("SyncedIndex = %d", m.SyncedIndex())
		}
	})
}

// TestAppendDurableAfterClose: durable appends on a closed journal
// fail fast instead of hanging on a dead committer.
func TestAppendDurableAfterClose(t *testing.T) {
	j, err := OpenFileJournal(t.TempDir(), Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendDurable([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := j.AppendDurable([]byte("b"))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AppendDurable hung after Close")
	}
	// Close is idempotent with the committer already drained.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncReleasesBatchWaiters: an explicit Sync makes everything
// durable, so SyncedIndex catches up even between committer ticks.
func TestSyncReleasesBatchWaiters(t *testing.T) {
	j, err := OpenFileJournal(t.TempDir(), Options{
		Policy:        SyncBatch,
		BatchMaxDelay: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 5; i++ {
		if _, err := j.Append([]byte("pre-sync")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := j.SyncedIndex(); got != 5 {
		t.Fatalf("SyncedIndex after Sync = %d, want 5", got)
	}
}
