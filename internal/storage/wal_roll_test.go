package storage

import (
	"bytes"
	"testing"
)

// TestRollSyncsOutgoingSegment verifies that rolling to a new segment
// leaves the outgoing segment complete on disk even when the sync
// policy never fsyncs: every record in a non-active segment must be
// readable directly from the file, without Sync or Close.
func TestRollSyncsOutgoingSegment(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(dir, Options{SegmentSize: 128, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	payload := bytes.Repeat([]byte("z"), 40)
	const n = 30
	for i := 0; i < n; i++ {
		if _, err := j.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	j.mu.Lock()
	segments := append([]uint64(nil), j.segments...)
	activeBase := j.activeBase
	j.mu.Unlock()
	if len(segments) < 3 {
		t.Fatalf("want >=3 segments for a meaningful roll test, got %d", len(segments))
	}
	// Every index below the active segment's base must be present in
	// the rolled segments' files.
	seen := map[uint64]bool{}
	for _, base := range segments {
		if base == activeBase {
			continue
		}
		if _, _, err := j.scanSegment(base, func(index uint64, _ []byte) error {
			seen[index] = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for idx := uint64(1); idx < activeBase; idx++ {
		if !seen[idx] {
			t.Fatalf("record %d missing from rolled segments (active base %d)", idx, activeBase)
		}
	}
}

// TestDropBeforeFirstIndexBoundaries checks the invariant that after
// any DropBefore, FirstIndex equals the first index Replay delivers
// (or 0 when the journal is empty) — including drops landing exactly
// on segment boundaries and the drop-everything edge.
func TestDropBeforeFirstIndexBoundaries(t *testing.T) {
	t.Run("file", func(t *testing.T) {
		dir := t.TempDir()
		j, err := OpenFileJournal(dir, Options{SegmentSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		payload := bytes.Repeat([]byte("z"), 40)
		for i := 0; i < 30; i++ {
			if _, err := j.Append(payload); err != nil {
				t.Fatal(err)
			}
		}
		j.mu.Lock()
		bases := append([]uint64(nil), j.segments...)
		j.mu.Unlock()
		// Exercise each segment boundary exactly, one past it, and the
		// past-the-end edge.
		var cuts []uint64
		for _, b := range bases {
			cuts = append(cuts, b, b+1)
		}
		cuts = append(cuts, j.LastIndex()+1)
		for _, upTo := range cuts {
			if err := j.DropBefore(upTo); err != nil {
				t.Fatal(err)
			}
			var first uint64
			if err := j.Replay(1, func(i uint64, _ []byte) error {
				if first == 0 {
					first = i
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if j.FirstIndex() != first {
				t.Fatalf("DropBefore(%d): FirstIndex=%d but replay starts at %d", upTo, j.FirstIndex(), first)
			}
			if first > upTo {
				t.Fatalf("DropBefore(%d): lost retained records, replay starts at %d", upTo, first)
			}
		}
	})
	t.Run("mem-all-dropped", func(t *testing.T) {
		j := NewMemJournal()
		for i := 0; i < 5; i++ {
			j.Append([]byte("x"))
		}
		if err := j.DropBefore(6); err != nil {
			t.Fatal(err)
		}
		if j.FirstIndex() != 0 {
			t.Fatalf("FirstIndex=%d after dropping everything, want 0", j.FirstIndex())
		}
		idx, err := j.Append([]byte("y"))
		if err != nil {
			t.Fatal(err)
		}
		if j.FirstIndex() != idx {
			t.Fatalf("FirstIndex=%d after re-seeding append %d", j.FirstIndex(), idx)
		}
	})
}
