package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func testJournals(t *testing.T) map[string]func() Journal {
	t.Helper()
	return map[string]func() Journal{
		"mem": func() Journal { return NewMemJournal() },
		"file": func() Journal {
			j, err := OpenFileJournal(t.TempDir(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			return j
		},
	}
}

func TestJournalAppendReplay(t *testing.T) {
	for name, open := range testJournals(t) {
		t.Run(name, func(t *testing.T) {
			j := open()
			defer j.Close()
			if j.LastIndex() != 0 || j.FirstIndex() != 0 {
				t.Fatalf("empty journal indices: first=%d last=%d", j.FirstIndex(), j.LastIndex())
			}
			for i := 1; i <= 100; i++ {
				idx, err := j.Append([]byte(fmt.Sprintf("record-%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				if idx != uint64(i) {
					t.Fatalf("index = %d, want %d", idx, i)
				}
			}
			if j.LastIndex() != 100 || j.FirstIndex() != 1 {
				t.Fatalf("indices: first=%d last=%d", j.FirstIndex(), j.LastIndex())
			}
			var got []string
			err := j.Replay(1, func(idx uint64, payload []byte) error {
				got = append(got, string(payload))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 100 || got[0] != "record-1" || got[99] != "record-100" {
				t.Fatalf("replay got %d records; first %q last %q", len(got), got[0], got[len(got)-1])
			}
			// Partial replay.
			var tail []uint64
			if err := j.Replay(95, func(idx uint64, _ []byte) error {
				tail = append(tail, idx)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(tail) != 6 || tail[0] != 95 {
				t.Fatalf("partial replay = %v", tail)
			}
		})
	}
}

func TestJournalReplayErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	for name, open := range testJournals(t) {
		t.Run(name, func(t *testing.T) {
			j := open()
			defer j.Close()
			for i := 0; i < 5; i++ {
				if _, err := j.Append([]byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			n := 0
			err := j.Replay(1, func(uint64, []byte) error {
				n++
				if n == 3 {
					return boom
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want boom", err)
			}
			if n != 3 {
				t.Fatalf("callback ran %d times, want 3", n)
			}
		})
	}
}

func TestJournalClosed(t *testing.T) {
	for name, open := range testJournals(t) {
		t.Run(name, func(t *testing.T) {
			j := open()
			if _, err := j.Append([]byte("a")); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := j.Append([]byte("b")); !errors.Is(err, ErrClosed) {
				t.Errorf("Append after close: %v, want ErrClosed", err)
			}
			if err := j.Sync(); !errors.Is(err, ErrClosed) {
				t.Errorf("Sync after close: %v, want ErrClosed", err)
			}
		})
	}
}

func TestFileJournalReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenFileJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.LastIndex() != 50 {
		t.Fatalf("LastIndex after reopen = %d, want 50", j2.LastIndex())
	}
	idx, err := j2.Append([]byte("r51"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 51 {
		t.Fatalf("next index = %d, want 51", idx)
	}
	count := 0
	if err := j2.Replay(1, func(uint64, []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 51 {
		t.Fatalf("replay count = %d, want 51", count)
	}
}

func TestFileJournalSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	payload := bytes.Repeat([]byte("x"), 50)
	for i := 0; i < 40; i++ {
		if _, err := j.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if j.SegmentCount() < 5 {
		t.Fatalf("segments = %d, want several with tiny segment size", j.SegmentCount())
	}
	count := 0
	if err := j.Replay(1, func(uint64, []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 40 {
		t.Fatalf("replay across segments = %d, want 40", count)
	}
}

func TestFileJournalTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: append garbage to the segment.
	entries, _ := os.ReadDir(dir)
	var seg string
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			seg = filepath.Join(dir, e.Name())
		}
	}
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A torn record: valid-looking length but truncated payload.
	f.Write([]byte{200, 0, 0, 0, 1, 2, 3, 4, 9, 9})
	f.Close()

	j2, err := OpenFileJournal(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer j2.Close()
	if j2.LastIndex() != 10 {
		t.Fatalf("LastIndex after torn-tail recovery = %d, want 10", j2.LastIndex())
	}
	var got []string
	if err := j2.Replay(1, func(_ uint64, p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[9] != "rec-10" {
		t.Fatalf("replay after recovery: %v", got)
	}
	// And the journal still accepts appends at the right index.
	idx, err := j2.Append([]byte("rec-11"))
	if err != nil || idx != 11 {
		t.Fatalf("append after recovery: idx=%d err=%v", idx, err)
	}
}

func TestFileJournalCorruptMiddleTruncates(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := j.Append([]byte("aaaaaaaa")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Flip a byte in the middle of the file: everything from the
	// corrupt record onward is discarded.
	entries, _ := os.ReadDir(dir)
	seg := filepath.Join(dir, entries[0].Name())
	data, _ := os.ReadFile(seg)
	data[len(data)/2] ^= 0xFF
	os.WriteFile(seg, data, 0o644)

	j2, err := OpenFileJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.LastIndex() >= 5 {
		t.Fatalf("LastIndex = %d, want < 5 after mid-file corruption", j2.LastIndex())
	}
}

func TestDropBefore(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		j := NewMemJournal()
		for i := 1; i <= 10; i++ {
			j.Append([]byte{byte(i)})
		}
		if err := j.DropBefore(6); err != nil {
			t.Fatal(err)
		}
		if j.FirstIndex() != 6 || j.LastIndex() != 10 {
			t.Fatalf("first=%d last=%d", j.FirstIndex(), j.LastIndex())
		}
		var idxs []uint64
		j.Replay(1, func(i uint64, _ []byte) error { idxs = append(idxs, i); return nil })
		if len(idxs) != 5 || idxs[0] != 6 {
			t.Fatalf("replay = %v", idxs)
		}
	})
	t.Run("file", func(t *testing.T) {
		dir := t.TempDir()
		j, err := OpenFileJournal(dir, Options{SegmentSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		payload := bytes.Repeat([]byte("z"), 40)
		for i := 1; i <= 30; i++ {
			j.Append(payload)
		}
		before := j.SegmentCount()
		if err := j.DropBefore(20); err != nil {
			t.Fatal(err)
		}
		if j.SegmentCount() >= before {
			t.Fatalf("segments not dropped: %d -> %d", before, j.SegmentCount())
		}
		if j.FirstIndex() == 1 {
			t.Error("FirstIndex still 1 after drop")
		}
		// Remaining records replay fine and include the newest.
		var last uint64
		j.Replay(1, func(i uint64, _ []byte) error { last = i; return nil })
		if last != 30 {
			t.Fatalf("last replayed = %d, want 30", last)
		}
	})
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncNever, SyncAlways, SyncEvery} {
		dir := t.TempDir()
		j, err := OpenFileJournal(dir, Options{Policy: pol, SyncInterval: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := j.Append([]byte("data")); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentAppend(t *testing.T) {
	j, err := OpenFileJournal(t.TempDir(), Options{SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var wg sync.WaitGroup
	const goroutines, per = 8, 50
	seen := make([][]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				idx, err := j.Append([]byte("concurrent"))
				if err != nil {
					t.Error(err)
					return
				}
				seen[g] = append(seen[g], idx)
			}
		}(g)
	}
	wg.Wait()
	// All indices unique and the journal holds all records.
	all := map[uint64]bool{}
	for _, s := range seen {
		for _, idx := range s {
			if all[idx] {
				t.Fatalf("duplicate index %d", idx)
			}
			all[idx] = true
		}
	}
	if len(all) != goroutines*per {
		t.Fatalf("unique indices = %d, want %d", len(all), goroutines*per)
	}
	count := 0
	j.Replay(1, func(uint64, []byte) error { count++; return nil })
	if count != goroutines*per {
		t.Fatalf("replay = %d records, want %d", count, goroutines*per)
	}
}

func TestSnapshotStore(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshotStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Latest(); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	for i := uint64(10); i <= 40; i += 10 {
		if err := s.Write(i, []byte(fmt.Sprintf("state@%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	idx, data, ok, err := s.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest: ok=%v err=%v", ok, err)
	}
	if idx != 40 || string(data) != "state@40" {
		t.Fatalf("Latest = %d %q", idx, data)
	}
	// Retention pruned old snapshots.
	entries, _ := os.ReadDir(dir)
	snaps := 0
	for _, e := range entries {
		if _, ok := parseSnapshotName(e.Name()); ok {
			snaps++
		}
	}
	if snaps != 2 {
		t.Fatalf("retained %d snapshots, want 2", snaps)
	}
}

func TestSnapshotCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshotStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Write(10, []byte("good-old"))
	s.Write(20, []byte("good-new"))
	// Corrupt the newest snapshot.
	path := filepath.Join(dir, snapshotName(20))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	idx, payload, ok, err := s.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest: ok=%v err=%v", ok, err)
	}
	if idx != 10 || string(payload) != "good-old" {
		t.Fatalf("fallback = %d %q, want 10 good-old", idx, payload)
	}
}

// Property: appended payloads replay byte-identical in order, for both
// implementations.
func TestQuickAppendReplayIdentity(t *testing.T) {
	f := func(payloads [][]byte) bool {
		if len(payloads) > 50 {
			payloads = payloads[:50]
		}
		mem := NewMemJournal()
		dir, err := os.MkdirTemp("", "walquick")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		file, err := OpenFileJournal(dir, Options{SegmentSize: 512})
		if err != nil {
			return false
		}
		defer file.Close()
		for _, j := range []Journal{mem, file} {
			for _, p := range payloads {
				if _, err := j.Append(p); err != nil {
					return false
				}
			}
			i := 0
			err := j.Replay(1, func(_ uint64, got []byte) error {
				if !bytes.Equal(got, payloads[i]) {
					return fmt.Errorf("mismatch at %d", i)
				}
				i++
				return nil
			})
			if err != nil || i != len(payloads) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
