// Package storage implements the embedded persistence substrate of the
// BPMS: a segmented, CRC-checked, append-only journal (write-ahead
// log), a snapshot store with atomic replace, and an in-memory journal
// for tests and benchmarks. The engine is event-sourced on top of this
// package: every state change is an appended record, recovery replays
// the journal (from the latest snapshot when present).
//
// Durability contract: Append returns after the record is in the OS
// page cache; Sync (or the SyncEvery/SyncAlways/SyncBatch policies)
// forces it to stable storage. AppendDurable returns only after the
// record is on stable storage — under SyncBatch, concurrent callers
// are group-committed behind a single fsync. Records are
// length-prefixed and CRC-protected, and a torn tail (partial final
// record after a crash) is detected and truncated on open.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bpms/internal/fault"
	"bpms/internal/obs"
)

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("storage: journal closed")

// ErrCorrupt is returned when a record fails its integrity check in a
// context where truncation is not permitted (e.g. mid-log corruption).
var ErrCorrupt = errors.New("storage: corrupt record")

// Journal is an append-only, replayable record log. Indices are
// contiguous and start at 1. Implementations are safe for concurrent
// use.
type Journal interface {
	// Append adds a record and returns its index.
	Append(payload []byte) (uint64, error)
	// AppendDurable adds a record and blocks until it is on stable
	// storage. Under SyncBatch, concurrent callers are coalesced into
	// one group commit (a single write+fsync acknowledges the whole
	// batch); under other policies the append is followed by a sync
	// where needed.
	AppendDurable(payload []byte) (uint64, error)
	// Replay streams records with index >= from, in order. The
	// callback's payload is only valid for the duration of the call.
	Replay(from uint64, fn func(index uint64, payload []byte) error) error
	// LastIndex returns the index of the newest record (0 when empty).
	LastIndex() uint64
	// FirstIndex returns the index of the oldest retained record
	// (0 when empty); earlier records may have been compacted away.
	FirstIndex() uint64
	// DropBefore discards records with index < upTo where possible
	// (whole segments only for file journals). Used after snapshots.
	DropBefore(upTo uint64) error
	// Sync forces buffered records to stable storage.
	Sync() error
	// SyncedIndex returns the index of the newest record known to be
	// on stable storage (0 when nothing is durable yet). For in-memory
	// journals this equals LastIndex.
	SyncedIndex() uint64
	// Close releases resources. The journal must not be used after.
	Close() error
}

// MemJournal is an in-memory Journal used by tests and by benchmarks
// that isolate engine cost from I/O cost.
type MemJournal struct {
	mu      sync.RWMutex
	first   uint64
	records [][]byte
	closed  bool
}

// NewMemJournal returns an empty in-memory journal.
func NewMemJournal() *MemJournal {
	return &MemJournal{first: 1}
}

// Append implements Journal.
func (m *MemJournal) Append(payload []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	m.records = append(m.records, cp)
	return m.first + uint64(len(m.records)) - 1, nil
}

// AppendDurable implements Journal (memory is "durable" on return).
func (m *MemJournal) AppendDurable(payload []byte) (uint64, error) {
	return m.Append(payload)
}

// Replay implements Journal.
func (m *MemJournal) Replay(from uint64, fn func(uint64, []byte) error) error {
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return ErrClosed
	}
	first := m.first
	records := m.records
	m.mu.RUnlock()
	if from < first {
		from = first
	}
	for i := int(from - first); i < len(records); i++ {
		if err := fn(first+uint64(i), records[i]); err != nil {
			return err
		}
	}
	return nil
}

// LastIndex implements Journal.
func (m *MemJournal) LastIndex() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.records) == 0 {
		return 0
	}
	return m.first + uint64(len(m.records)) - 1
}

// FirstIndex implements Journal.
func (m *MemJournal) FirstIndex() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.records) == 0 {
		return 0
	}
	return m.first
}

// DropBefore implements Journal.
func (m *MemJournal) DropBefore(upTo uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if upTo <= m.first {
		return nil
	}
	drop := upTo - m.first
	if drop > uint64(len(m.records)) {
		drop = uint64(len(m.records))
	}
	m.records = append([][]byte(nil), m.records[drop:]...)
	m.first += drop
	return nil
}

// Sync implements Journal (a no-op in memory).
func (m *MemJournal) Sync() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// SyncedIndex implements Journal.
func (m *MemJournal) SyncedIndex() uint64 { return m.LastIndex() }

// Close implements Journal.
func (m *MemJournal) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// SyncPolicy selects when a file journal forces data to disk.
type SyncPolicy int

// Sync policies.
const (
	// SyncNever leaves flushing to the OS (fastest, weakest).
	SyncNever SyncPolicy = iota
	// SyncAlways fsyncs after every append (slowest, strongest).
	SyncAlways
	// SyncEvery fsyncs after every N appends.
	SyncEvery
	// SyncBatch group-commits: a dedicated committer goroutine
	// coalesces concurrent appends into one write+fsync and wakes all
	// AppendDurable waiters once their records are durable. Plain
	// Appends are synced within BatchMaxDelay or after BatchMaxRecords
	// unsynced appends, whichever comes first.
	SyncBatch
)

// String names the policy (flag value form).
func (p SyncPolicy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncAlways:
		return "always"
	case SyncEvery:
		return "every"
	case SyncBatch:
		return "batch"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseSyncPolicy parses a policy name as accepted by bpmsd's -sync
// flag: never, always, every, batch.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never":
		return SyncNever, nil
	case "always":
		return SyncAlways, nil
	case "every":
		return SyncEvery, nil
	case "batch":
		return SyncBatch, nil
	}
	return 0, fmt.Errorf("storage: unknown sync policy %q (want never|always|every|batch)", s)
}

// Options configures a file journal.
type Options struct {
	// SegmentSize is the maximum byte size of one segment file
	// (default 4 MiB).
	SegmentSize int64
	// Policy is the sync policy (default SyncNever).
	Policy SyncPolicy
	// SyncInterval is N for SyncEvery (default 256).
	SyncInterval int
	// BatchMaxRecords bounds a SyncBatch group: after this many
	// unsynced appends the committer is woken even if no durability
	// ack is pending (default 1024).
	BatchMaxRecords int
	// BatchMaxDelay is the SyncBatch max-latency tick: buffered
	// records are fsynced at least this often, so a lone writer never
	// stalls behind an empty batch (default 2ms).
	BatchMaxDelay time.Duration
	// Metrics instruments append and fsync latency (zero value =
	// uninstrumented; the nil handles cost one branch per site).
	Metrics obs.WALMetrics
	// FS is the filesystem the journal operates through (default
	// fault.OS). Chaos runs substitute a fault.Injector here.
	FS fault.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 256
	}
	if o.BatchMaxRecords <= 0 {
		o.BatchMaxRecords = 1024
	}
	if o.BatchMaxDelay <= 0 {
		o.BatchMaxDelay = 2 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = fault.OS
	}
	return o
}

func (o Options) String() string {
	pol := o.Policy.String()
	switch o.Policy {
	case SyncEvery:
		pol = fmt.Sprintf("every%d", o.SyncInterval)
	case SyncBatch:
		pol = fmt.Sprintf("batch(max=%d,tick=%s)", o.BatchMaxRecords, o.BatchMaxDelay)
	}
	return fmt.Sprintf("seg=%dB sync=%s", o.SegmentSize, pol)
}
