package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Record layout on disk:
//
//	[4B little-endian payload length]
//	[4B CRC32-Castagnoli over index+payload]
//	[8B little-endian record index]
//	[payload bytes]
//
// Segment files are named wal-<firstIndex>.log with a zero-padded
// 20-digit first index, so lexical order equals index order.

const recordHeader = 4 + 4 + 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FileJournal is a durable Journal over segmented append-only files.
type FileJournal struct {
	dir  string
	opts Options

	mu          sync.Mutex
	active      *os.File
	activeBase  uint64 // first index of the active segment
	activeSize  int64
	activeBuf   *bufio.Writer
	segments    []uint64 // first indices of all segments, sorted
	nextIndex   uint64
	firstIndex  uint64 // oldest retained index (0 when empty)
	sinceSync   int
	closed      bool
	appendedAny bool
}

func segmentName(first uint64) string {
	return fmt.Sprintf("wal-%020d.log", first)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// OpenFileJournal opens (or creates) a journal in dir, recovering from
// any torn tail left by a crash.
func OpenFileJournal(dir string, opts Options) (*FileJournal, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	j := &FileJournal{dir: dir, opts: opts, nextIndex: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: read dir: %w", err)
	}
	for _, e := range entries {
		if base, ok := parseSegmentName(e.Name()); ok {
			j.segments = append(j.segments, base)
		}
	}
	sort.Slice(j.segments, func(a, b int) bool { return j.segments[a] < j.segments[b] })
	if len(j.segments) > 0 {
		j.firstIndex = j.segments[0]
		// Recover the last segment: scan and truncate a torn tail.
		last := j.segments[len(j.segments)-1]
		lastGood, size, err := j.scanSegment(last, nil)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, segmentName(last))
		if err := os.Truncate(path, size); err != nil {
			return nil, fmt.Errorf("storage: truncate torn tail: %w", err)
		}
		if lastGood == 0 {
			// Empty last segment: next index is its base.
			j.nextIndex = last
		} else {
			j.nextIndex = lastGood + 1
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		j.active = f
		j.activeBase = last
		j.activeSize = size
		j.activeBuf = bufio.NewWriterSize(f, 64<<10)
	}
	return j, nil
}

// scanSegment reads a segment, calling fn per valid record, and
// returns the last valid index seen (0 if none) and the byte offset
// just past the last valid record.
func (j *FileJournal) scanSegment(base uint64, fn func(uint64, []byte) error) (uint64, int64, error) {
	path := filepath.Join(j.dir, segmentName(base))
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("storage: open segment: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 256<<10)
	var offset int64
	var lastGood uint64
	hdr := make([]byte, recordHeader)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return lastGood, offset, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		index := binary.LittleEndian.Uint64(hdr[8:16])
		if length > 64<<20 {
			return lastGood, offset, nil // implausible: treat as torn
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			return lastGood, offset, nil // torn payload
		}
		h := crc32.New(castagnoli)
		h.Write(hdr[8:16])
		h.Write(payload)
		if h.Sum32() != crc {
			return lastGood, offset, nil // corrupt: truncate here
		}
		if fn != nil {
			if err := fn(index, payload); err != nil {
				return lastGood, offset, err
			}
		}
		lastGood = index
		offset += int64(recordHeader) + int64(length)
	}
}

// Append implements Journal.
func (j *FileJournal) Append(payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	recSize := int64(recordHeader) + int64(len(payload))
	if j.active == nil || (j.activeSize > 0 && j.activeSize+recSize > j.opts.SegmentSize) {
		if err := j.rollLocked(); err != nil {
			return 0, err
		}
	}
	index := j.nextIndex
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], index)
	h := crc32.New(castagnoli)
	h.Write(hdr[8:16])
	h.Write(payload)
	binary.LittleEndian.PutUint32(hdr[4:8], h.Sum32())
	if _, err := j.activeBuf.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := j.activeBuf.Write(payload); err != nil {
		return 0, err
	}
	j.activeSize += recSize
	j.nextIndex++
	if j.firstIndex == 0 {
		j.firstIndex = index
	}
	j.appendedAny = true
	j.sinceSync++
	switch j.opts.Policy {
	case SyncAlways:
		if err := j.syncLocked(); err != nil {
			return 0, err
		}
	case SyncEvery:
		if j.sinceSync >= j.opts.SyncInterval {
			if err := j.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return index, nil
}

func (j *FileJournal) rollLocked() error {
	if j.active != nil {
		if err := j.activeBuf.Flush(); err != nil {
			return err
		}
		// Sync before closing: once the segment is rolled, a later
		// explicit Sync() only reaches the new active file, so under
		// SyncEvery/SyncNever this is the last chance to make the
		// outgoing segment's tail durable.
		if err := j.active.Sync(); err != nil {
			return err
		}
		if err := j.active.Close(); err != nil {
			return err
		}
		j.sinceSync = 0
	}
	base := j.nextIndex
	path := filepath.Join(j.dir, segmentName(base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create segment: %w", err)
	}
	j.active = f
	j.activeBase = base
	j.activeSize = 0
	j.activeBuf = bufio.NewWriterSize(f, 64<<10)
	j.segments = append(j.segments, base)
	return nil
}

func (j *FileJournal) syncLocked() error {
	if j.active == nil {
		return nil
	}
	if err := j.activeBuf.Flush(); err != nil {
		return err
	}
	if err := j.active.Sync(); err != nil {
		return err
	}
	j.sinceSync = 0
	return nil
}

// Replay implements Journal.
func (j *FileJournal) Replay(from uint64, fn func(uint64, []byte) error) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	// Flush buffered appends so the reader sees them.
	if j.activeBuf != nil {
		if err := j.activeBuf.Flush(); err != nil {
			j.mu.Unlock()
			return err
		}
	}
	segments := append([]uint64(nil), j.segments...)
	j.mu.Unlock()

	for i, base := range segments {
		// Skip whole segments below from.
		if i+1 < len(segments) && segments[i+1] <= from {
			continue
		}
		_, _, err := j.scanSegment(base, func(index uint64, payload []byte) error {
			if index < from {
				return nil
			}
			return fn(index, payload)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// LastIndex implements Journal.
func (j *FileJournal) LastIndex() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.nextIndex == 1 && !j.appendedAny && len(j.segments) == 0 {
		return 0
	}
	return j.nextIndex - 1
}

// FirstIndex implements Journal.
func (j *FileJournal) FirstIndex() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.firstIndex
}

// DropBefore implements Journal: whole segments entirely below upTo
// are deleted.
func (j *FileJournal) DropBefore(upTo uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	keep := j.segments[:0]
	for i, base := range j.segments {
		// A segment is droppable when the next segment starts at or
		// below upTo (so this one holds only records < upTo) and it is
		// not the active segment.
		droppable := i+1 < len(j.segments) && j.segments[i+1] <= upTo && base != j.activeBase
		if droppable {
			if err := os.Remove(filepath.Join(j.dir, segmentName(base))); err != nil {
				return err
			}
			continue
		}
		keep = append(keep, base)
	}
	j.segments = keep
	// Recompute firstIndex from the surviving keep-set rather than
	// patching it conditionally: the oldest retained record is the
	// base of the oldest surviving segment. The empty case is
	// defensive — the active segment always survives today — and
	// mirrors the field's "0 when empty" contract should dropping
	// ever extend to the active segment.
	if len(j.segments) == 0 {
		j.firstIndex = 0
	} else {
		j.firstIndex = j.segments[0]
	}
	return nil
}

// Sync implements Journal.
func (j *FileJournal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

// Close implements Journal.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.active != nil {
		if err := j.activeBuf.Flush(); err != nil {
			return err
		}
		if err := j.active.Sync(); err != nil {
			return err
		}
		return j.active.Close()
	}
	return nil
}

// SegmentCount reports the number of live segment files (for tests and
// the benchmark harness).
func (j *FileJournal) SegmentCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.segments)
}
