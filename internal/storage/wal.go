package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bpms/internal/fault"
)

// obs handles arrive through Options.Metrics (see storage.go); the
// hot-path cost when uninstrumented is one nil check per site.

// Record layout on disk:
//
//	[4B little-endian payload length]
//	[4B CRC32-Castagnoli over index+payload]
//	[8B little-endian record index]
//	[payload bytes]
//
// Segment files are named wal-<firstIndex>.log with a zero-padded
// 20-digit first index, so lexical order equals index order.

const recordHeader = 4 + 4 + 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FileJournal is a durable Journal over segmented append-only files.
type FileJournal struct {
	dir  string
	opts Options

	mu          sync.Mutex
	active      fault.File
	activeBase  uint64 // first index of the active segment
	activeSize  int64
	activeBuf   *bufio.Writer
	segments    []uint64 // first indices of all segments, sorted
	nextIndex   uint64
	firstIndex  uint64 // oldest retained index (0 when empty)
	sinceSync   int
	syncedIndex uint64 // newest index known to be on stable storage
	waiters     []commitWaiter
	closed      bool
	appendedAny bool

	// Group-commit machinery (SyncBatch only).
	commitCh chan struct{} // wakes the committer; buffered, coalescing
	stopCh   chan struct{}
	doneCh   chan struct{}
	stopOnce sync.Once
}

// commitWaiter is one AppendDurable caller parked until its record's
// batch is fsynced.
type commitWaiter struct {
	index uint64
	ch    chan error
}

func segmentName(first uint64) string {
	return fmt.Sprintf("wal-%020d.log", first)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// OpenFileJournal opens (or creates) a journal in dir, recovering from
// any torn tail left by a crash.
func OpenFileJournal(dir string, opts Options) (*FileJournal, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	j := &FileJournal{dir: dir, opts: opts, nextIndex: 1}
	entries, err := opts.FS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: read dir: %w", err)
	}
	for _, e := range entries {
		if base, ok := parseSegmentName(e.Name()); ok {
			j.segments = append(j.segments, base)
		}
	}
	sort.Slice(j.segments, func(a, b int) bool { return j.segments[a] < j.segments[b] })
	if len(j.segments) > 0 {
		j.firstIndex = j.segments[0]
		// Recover the last segment: scan and truncate a torn tail.
		last := j.segments[len(j.segments)-1]
		lastGood, size, err := j.scanSegment(last, nil)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, segmentName(last))
		if err := opts.FS.Truncate(path, size); err != nil {
			return nil, fmt.Errorf("storage: truncate torn tail: %w", err)
		}
		if lastGood == 0 {
			// Empty last segment: next index is its base.
			j.nextIndex = last
		} else {
			j.nextIndex = lastGood + 1
		}
		f, err := opts.FS.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		j.active = f
		j.activeBase = last
		j.activeSize = size
		j.activeBuf = bufio.NewWriterSize(f, 64<<10)
	}
	j.syncedIndex = j.nextIndex - 1 // everything recovered is on disk
	if j.opts.Policy == SyncBatch {
		j.commitCh = make(chan struct{}, 1)
		j.stopCh = make(chan struct{})
		j.doneCh = make(chan struct{})
		go j.committer()
	}
	return j, nil
}

// scanSegment reads a segment, calling fn per valid record, and
// returns the last valid index seen (0 if none) and the byte offset
// just past the last valid record.
func (j *FileJournal) scanSegment(base uint64, fn func(uint64, []byte) error) (uint64, int64, error) {
	path := filepath.Join(j.dir, segmentName(base))
	f, err := j.opts.FS.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("storage: open segment: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 256<<10)
	var offset int64
	var lastGood uint64
	hdr := make([]byte, recordHeader)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return lastGood, offset, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		index := binary.LittleEndian.Uint64(hdr[8:16])
		if length > 64<<20 {
			return lastGood, offset, nil // implausible: treat as torn
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			return lastGood, offset, nil // torn payload
		}
		h := crc32.New(castagnoli)
		h.Write(hdr[8:16])
		h.Write(payload)
		if h.Sum32() != crc {
			return lastGood, offset, nil // corrupt: truncate here
		}
		if fn != nil {
			if err := fn(index, payload); err != nil {
				return lastGood, offset, err
			}
		}
		lastGood = index
		offset += int64(recordHeader) + int64(length)
	}
}

// Append implements Journal.
func (j *FileJournal) Append(payload []byte) (uint64, error) {
	t0 := j.opts.Metrics.Append.Start()
	j.mu.Lock()
	index, err := j.appendLocked(payload)
	j.mu.Unlock()
	j.opts.Metrics.Append.Since(t0)
	return index, err
}

// AppendDurable implements Journal: the append returns only after the
// record is on stable storage. Under SyncBatch the caller parks on an
// ack channel and the committer goroutine group-commits all records
// buffered since the last fsync; under other policies the append is
// followed by a direct sync when the policy alone does not guarantee
// durability.
func (j *FileJournal) AppendDurable(payload []byte) (uint64, error) {
	t0 := j.opts.Metrics.Append.Start()
	j.mu.Lock()
	index, err := j.appendLocked(payload)
	if err != nil {
		j.mu.Unlock()
		return 0, err
	}
	switch j.opts.Policy {
	case SyncAlways:
		// appendLocked already synced.
		j.mu.Unlock()
		j.opts.Metrics.Append.Since(t0)
		return index, nil
	case SyncBatch:
		ch := make(chan error, 1)
		j.waiters = append(j.waiters, commitWaiter{index: index, ch: ch})
		j.mu.Unlock()
		j.kickCommitter()
		err := <-ch
		j.opts.Metrics.Append.Since(t0)
		return index, err
	default: // SyncNever, SyncEvery
		err := j.syncLocked()
		j.mu.Unlock()
		j.opts.Metrics.Append.Since(t0)
		return index, err
	}
}

// kickCommitter wakes the committer without blocking; a pending wakeup
// coalesces with this one.
func (j *FileJournal) kickCommitter() {
	select {
	case j.commitCh <- struct{}{}:
	default:
	}
}

// committer is the SyncBatch group-commit loop: it fsyncs whenever an
// AppendDurable waiter is parked or the max-latency tick elapses with
// unsynced appends, then wakes every waiter whose record the fsync
// covered.
func (j *FileJournal) committer() {
	defer close(j.doneCh)
	ticker := time.NewTicker(j.opts.BatchMaxDelay)
	defer ticker.Stop()
	for {
		select {
		case <-j.stopCh:
			j.commitBatch()
			return
		case <-j.commitCh:
			j.gather()
			j.commitBatch()
		case <-ticker.C:
			j.commitBatch()
		}
	}
}

// gather lets the batch fill before the fsync: yield the processor
// until no new append arrived between two looks (or the batch is
// full). Without this the scheduler's channel handoff tends to run
// the committer immediately after the first kick, ping-ponging with a
// single writer while the other writers sit in the run queue — batches
// stay near size one and group commit degenerates to sync-per-append.
// A lone writer pays one Gosched (~µs) before its fsync.
func (j *FileJournal) gather() {
	prev := -1
	for i := 0; i < 64; i++ {
		j.mu.Lock()
		n := j.sinceSync
		full := n >= j.opts.BatchMaxRecords
		j.mu.Unlock()
		if full || n == prev {
			return
		}
		prev = n
		runtime.Gosched()
	}
}

// commitBatch runs one group commit: flush the write buffer under the
// lock, fsync OUTSIDE the lock so concurrent appends keep buffering
// into the next batch, then release every waiter the fsync covered.
// Holding the lock across the fsync would cap batches at roughly one
// record — writers could not get their appends in while the disk was
// busy, which is the whole throughput win of group commit.
func (j *FileJournal) commitBatch() {
	j.mu.Lock()
	if j.closed {
		// Close performed the final flush+sync; anything appended
		// before closing is durable.
		j.notifyWaitersLocked(nil)
		j.mu.Unlock()
		return
	}
	if j.sinceSync == 0 && len(j.waiters) == 0 {
		j.mu.Unlock()
		return
	}
	if j.active == nil {
		j.mu.Unlock()
		return
	}
	if err := j.activeBuf.Flush(); err != nil {
		j.notifyWaitersLocked(err)
		j.mu.Unlock()
		return
	}
	f := j.active
	upTo := j.nextIndex - 1
	// These records are in the in-flight commit now; appends arriving
	// during the fsync below restart the counter for the next batch.
	pending := j.sinceSync
	j.sinceSync = 0
	j.mu.Unlock()

	t0 := j.opts.Metrics.Fsync.Start()
	err := f.Sync()
	j.opts.Metrics.Fsync.Since(t0)

	j.mu.Lock()
	if err != nil && j.active != f {
		// The segment rolled while we were fsyncing: rollLocked
		// flushed and fsynced the outgoing file before closing it, so
		// everything up to upTo is durable despite the error from the
		// closed handle.
		err = nil
	}
	if err != nil {
		// Genuine sync failure: fail every parked caller and put the
		// batch back on the unsynced counter so the tick retries it.
		j.sinceSync += pending
		j.notifyWaitersLocked(err)
		j.mu.Unlock()
		return
	}
	if upTo > j.syncedIndex {
		j.syncedIndex = upTo
	}
	// Release only the waiters this fsync covered; later arrivals
	// already kicked the committer again and ride the next batch.
	var done []commitWaiter
	keep := j.waiters[:0]
	for _, w := range j.waiters {
		if w.index <= upTo {
			done = append(done, w)
		} else {
			keep = append(keep, w)
		}
	}
	j.waiters = keep
	j.mu.Unlock()
	for _, w := range done {
		w.ch <- nil
	}
}

// notifyWaitersLocked completes every parked AppendDurable call with
// err. Waiter channels are buffered, so sending under the lock cannot
// block.
func (j *FileJournal) notifyWaitersLocked(err error) {
	for _, w := range j.waiters {
		w.ch <- err
	}
	j.waiters = nil
}

// appendLocked buffers one record and applies the sync policy. Called
// under j.mu.
func (j *FileJournal) appendLocked(payload []byte) (uint64, error) {
	if j.closed {
		return 0, ErrClosed
	}
	recSize := int64(recordHeader) + int64(len(payload))
	if j.active == nil || (j.activeSize > 0 && j.activeSize+recSize > j.opts.SegmentSize) {
		if err := j.rollLocked(); err != nil {
			return 0, err
		}
	}
	index := j.nextIndex
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], index)
	h := crc32.New(castagnoli)
	h.Write(hdr[8:16])
	h.Write(payload)
	binary.LittleEndian.PutUint32(hdr[4:8], h.Sum32())
	if _, err := j.activeBuf.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := j.activeBuf.Write(payload); err != nil {
		return 0, err
	}
	j.activeSize += recSize
	j.nextIndex++
	if j.firstIndex == 0 {
		j.firstIndex = index
	}
	j.appendedAny = true
	j.sinceSync++
	switch j.opts.Policy {
	case SyncAlways:
		if err := j.syncLocked(); err != nil {
			return 0, err
		}
	case SyncEvery:
		if j.sinceSync >= j.opts.SyncInterval {
			if err := j.syncLocked(); err != nil {
				return 0, err
			}
		}
	case SyncBatch:
		// Bounded batch: a full batch wakes the committer even when no
		// durability ack is pending; otherwise the max-latency tick
		// picks the record up.
		if j.sinceSync >= j.opts.BatchMaxRecords {
			j.kickCommitter()
		}
	}
	return index, nil
}

func (j *FileJournal) rollLocked() error {
	if j.active != nil {
		if err := j.activeBuf.Flush(); err != nil {
			return err
		}
		// Sync before closing: once the segment is rolled, a later
		// explicit Sync() only reaches the new active file, so under
		// SyncEvery/SyncNever this is the last chance to make the
		// outgoing segment's tail durable.
		if err := j.active.Sync(); err != nil {
			return err
		}
		if err := j.active.Close(); err != nil {
			return err
		}
		j.sinceSync = 0
		j.syncedIndex = j.nextIndex - 1
	}
	base := j.nextIndex
	path := filepath.Join(j.dir, segmentName(base))
	f, err := j.opts.FS.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create segment: %w", err)
	}
	j.active = f
	j.activeBase = base
	j.activeSize = 0
	j.activeBuf = bufio.NewWriterSize(f, 64<<10)
	j.segments = append(j.segments, base)
	return nil
}

func (j *FileJournal) syncLocked() error {
	if j.active == nil {
		return nil
	}
	if err := j.activeBuf.Flush(); err != nil {
		return err
	}
	t0 := j.opts.Metrics.Fsync.Start()
	if err := j.active.Sync(); err != nil {
		return err
	}
	j.opts.Metrics.Fsync.Since(t0)
	j.sinceSync = 0
	j.syncedIndex = j.nextIndex - 1
	return nil
}

// Replay implements Journal.
func (j *FileJournal) Replay(from uint64, fn func(uint64, []byte) error) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	// Flush buffered appends so the reader sees them.
	if j.activeBuf != nil {
		if err := j.activeBuf.Flush(); err != nil {
			j.mu.Unlock()
			return err
		}
	}
	segments := append([]uint64(nil), j.segments...)
	j.mu.Unlock()

	for i, base := range segments {
		// Skip whole segments below from.
		if i+1 < len(segments) && segments[i+1] <= from {
			continue
		}
		_, _, err := j.scanSegment(base, func(index uint64, payload []byte) error {
			if index < from {
				return nil
			}
			return fn(index, payload)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ParallelReplayer is the optional journal extension behind parallel
// boot recovery: decode runs concurrently across segment readers while
// apply observes records in strict index order. FileJournal implements
// it; consumers fall back to Replay when a journal does not.
type ParallelReplayer interface {
	ReplayParallel(from uint64, workers int, decode func(index uint64, payload []byte) (any, error), apply func(index uint64, v any) error) error
}

// segReplay is one segment's decoded records, delivered to the apply
// loop in segment order.
type segReplay struct {
	indexes []uint64
	values  []any
	err     error
}

// ReplayParallel replays records with index >= from like Replay, but
// splits the work: a pool of `workers` readers scans and decodes whole
// segments concurrently (segments are immutable once rolled, so each
// reader owns its file), while the caller's apply callback receives
// every decoded record in strict index order. decode runs on the
// reader pool — its payload is only valid for the duration of the call
// — and its return value is handed to apply unchanged.
//
// Memory stays bounded: at most `workers` segments are in flight
// (decoding or decoded-but-unapplied) at any moment; a segment's
// decoded records are released as soon as apply consumed them.
func (j *FileJournal) ReplayParallel(from uint64, workers int, decode func(index uint64, payload []byte) (any, error), apply func(index uint64, v any) error) error {
	if workers <= 1 {
		return j.Replay(from, func(index uint64, payload []byte) error {
			v, err := decode(index, payload)
			if err != nil {
				return err
			}
			return apply(index, v)
		})
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if j.activeBuf != nil {
		if err := j.activeBuf.Flush(); err != nil {
			j.mu.Unlock()
			return err
		}
	}
	segments := append([]uint64(nil), j.segments...)
	j.mu.Unlock()

	// Drop whole segments below from (same rule as Replay): a segment
	// is skippable when its successor starts at or below from.
	start := 0
	for start+1 < len(segments) && segments[start+1] <= from {
		start++
	}
	live := segments[start:]
	if len(live) == 0 {
		return nil
	}

	results := make([]chan *segReplay, len(live))
	for i := range results {
		results[i] = make(chan *segReplay, 1)
	}
	// tickets bounds the in-flight window: the dispatcher takes one per
	// segment it launches, the apply loop returns one per segment it
	// drains. stop aborts dispatch when apply bails early.
	tickets := make(chan struct{}, workers)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i, base := range live {
			select {
			case tickets <- struct{}{}:
			case <-stop:
				return
			}
			go func(i int, base uint64) {
				res := &segReplay{}
				_, _, err := j.scanSegment(base, func(index uint64, payload []byte) error {
					if index < from {
						return nil
					}
					v, err := decode(index, payload)
					if err != nil {
						return err
					}
					res.indexes = append(res.indexes, index)
					res.values = append(res.values, v)
					return nil
				})
				res.err = err
				results[i] <- res
			}(i, base)
		}
	}()

	for i := range live {
		res := <-results[i]
		<-tickets
		if res.err != nil {
			return res.err
		}
		for k, index := range res.indexes {
			if err := apply(index, res.values[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// LastIndex implements Journal.
func (j *FileJournal) LastIndex() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.nextIndex == 1 && !j.appendedAny && len(j.segments) == 0 {
		return 0
	}
	return j.nextIndex - 1
}

// FirstIndex implements Journal.
func (j *FileJournal) FirstIndex() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.firstIndex
}

// DropBefore implements Journal: whole segments entirely below upTo
// are deleted.
func (j *FileJournal) DropBefore(upTo uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	keep := j.segments[:0]
	for i, base := range j.segments {
		// A segment is droppable when the next segment starts at or
		// below upTo (so this one holds only records < upTo) and it is
		// not the active segment.
		droppable := i+1 < len(j.segments) && j.segments[i+1] <= upTo && base != j.activeBase
		if droppable {
			if err := j.opts.FS.Remove(filepath.Join(j.dir, segmentName(base))); err != nil {
				return err
			}
			continue
		}
		keep = append(keep, base)
	}
	j.segments = keep
	// Recompute firstIndex from the surviving keep-set rather than
	// patching it conditionally: the oldest retained record is the
	// base of the oldest surviving segment. The empty case is
	// defensive — the active segment always survives today — and
	// mirrors the field's "0 when empty" contract should dropping
	// ever extend to the active segment.
	if len(j.segments) == 0 {
		j.firstIndex = 0
	} else {
		j.firstIndex = j.segments[0]
	}
	return nil
}

// Sync implements Journal.
func (j *FileJournal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	err := j.syncLocked()
	if err == nil {
		// Everything buffered is durable now, including records whose
		// AppendDurable callers are parked on the committer.
		j.notifyWaitersLocked(nil)
	}
	return err
}

// SyncedIndex implements Journal.
func (j *FileJournal) SyncedIndex() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncedIndex
}

// Close implements Journal: the committer (when running) is drained
// first so parked AppendDurable calls complete, then the active
// segment is flushed, fsynced, and closed.
func (j *FileJournal) Close() error {
	if j.stopCh != nil {
		j.stopOnce.Do(func() { close(j.stopCh) })
		<-j.doneCh
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var err error
	if j.active != nil {
		if e := j.activeBuf.Flush(); e != nil {
			err = e
		} else if e := j.active.Sync(); e != nil {
			err = e
		} else {
			j.syncedIndex = j.nextIndex - 1
		}
		if e := j.active.Close(); e != nil && err == nil {
			err = e
		}
	}
	// Any waiter that slipped in between the committer draining and
	// the close is covered by the final sync above.
	j.notifyWaitersLocked(err)
	return err
}

// SegmentCount reports the number of live segment files (for tests and
// the benchmark harness).
func (j *FileJournal) SegmentCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.segments)
}
