package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SnapshotStore persists point-in-time state images keyed by the
// journal index they cover. Writes are atomic (write to a temp file,
// fsync, rename), and each snapshot is CRC-protected.
type SnapshotStore struct {
	dir    string
	mu     sync.Mutex
	retain int
}

// Snapshot file layout: [8B index][4B crc over data][data].

// OpenSnapshotStore opens (or creates) a snapshot store in dir,
// retaining at most retain snapshots (older ones are pruned on write;
// retain <= 0 means keep 2).
func OpenSnapshotStore(dir string, retain int) (*SnapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create snapshot dir: %w", err)
	}
	if retain <= 0 {
		retain = 2
	}
	return &SnapshotStore{dir: dir, retain: retain}, nil
}

func snapshotName(index uint64) string {
	return fmt.Sprintf("snap-%020d.snap", index)
}

func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[5:len(name)-5], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Write stores a snapshot covering journal indices <= index.
func (s *SnapshotStore) Write(index uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint64(buf[0:8], index)
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(data, castagnoli))
	copy(buf[12:], data)

	tmp := filepath.Join(s.dir, "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	final := filepath.Join(s.dir, snapshotName(index))
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return s.pruneLocked()
}

func (s *SnapshotStore) indicesLocked() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		if idx, ok := parseSnapshotName(e.Name()); ok {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

func (s *SnapshotStore) pruneLocked() error {
	idxs, err := s.indicesLocked()
	if err != nil {
		return err
	}
	for len(idxs) > s.retain {
		if err := os.Remove(filepath.Join(s.dir, snapshotName(idxs[0]))); err != nil {
			return err
		}
		idxs = idxs[1:]
	}
	return nil
}

// Latest returns the newest valid snapshot (highest index with a good
// CRC). ok is false when no usable snapshot exists; corrupt snapshots
// are skipped, falling back to older ones.
func (s *SnapshotStore) Latest() (index uint64, data []byte, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idxs, err := s.indicesLocked()
	if err != nil {
		return 0, nil, false, err
	}
	for i := len(idxs) - 1; i >= 0; i-- {
		buf, err := os.ReadFile(filepath.Join(s.dir, snapshotName(idxs[i])))
		if err != nil || len(buf) < 12 {
			continue
		}
		idx := binary.LittleEndian.Uint64(buf[0:8])
		crc := binary.LittleEndian.Uint32(buf[8:12])
		payload := buf[12:]
		if crc32.Checksum(payload, castagnoli) != crc {
			continue
		}
		return idx, payload, true, nil
	}
	return 0, nil, false, nil
}
