package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"bpms/internal/fault"
)

// SnapshotStore persists point-in-time state images keyed by the
// journal index they cover. Writes are atomic (write to a temp file,
// fsync, rename, fsync the directory), and snapshot contents are
// CRC-protected.
//
// Two on-disk formats coexist:
//
//   - The streaming format (current): a magic header followed by
//     length-prefixed, CRC-protected records appended one at a time
//     through a Writer. Producers and consumers hold one record in
//     memory, never the whole image, so snapshot memory is bounded
//     regardless of instance count.
//   - The legacy single-blob format (seed): [8B index][4B crc][data].
//     Write/Latest keep producing and reading it so existing data dirs
//     and the T16 baseline remain usable; LatestSnapshot reads both.
type SnapshotStore struct {
	dir    string
	fs     fault.FS
	mu     sync.Mutex
	retain int
}

// Streaming snapshot file layout:
//
//	[4B magic "BSN2"][8B little-endian index]
//	then per record: [4B little-endian length][4B crc over payload][payload]
//
// A clean EOF ends the record stream; a torn header, torn payload, or
// CRC mismatch marks the whole snapshot unusable (snapshots are
// written atomically, so a damaged tail means the file is not to be
// trusted) and readers fall back to the next-older snapshot.

var snapshotMagic = [4]byte{'B', 'S', 'N', '2'}

const snapshotRecordHeader = 4 + 4

// OpenSnapshotStore opens (or creates) a snapshot store in dir,
// retaining at most retain snapshots (older ones are pruned on write;
// retain <= 0 means keep 2).
func OpenSnapshotStore(dir string, retain int) (*SnapshotStore, error) {
	return OpenSnapshotStoreFS(dir, retain, fault.OS)
}

// OpenSnapshotStoreFS is OpenSnapshotStore over an explicit
// filesystem; chaos runs pass a fault.Injector.
func OpenSnapshotStoreFS(dir string, retain int, fsys fault.FS) (*SnapshotStore, error) {
	if fsys == nil {
		fsys = fault.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create snapshot dir: %w", err)
	}
	if retain <= 0 {
		retain = 2
	}
	return &SnapshotStore{dir: dir, fs: fsys, retain: retain}, nil
}

func snapshotName(index uint64) string {
	return fmt.Sprintf("snap-%020d.snap", index)
}

func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[5:len(name)-5], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// syncDir fsyncs the snapshot directory so a just-completed rename
// survives a crash: the rename itself is atomic, but without the
// directory fsync the new directory entry may still be lost.
func (s *SnapshotStore) syncDir() error {
	d, err := s.fs.Open(s.dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// commitTemp atomically publishes a fully written, fsynced temp file
// as the snapshot for index: rename, fsync the directory, prune old
// snapshots. Called under s.mu.
func (s *SnapshotStore) commitTempLocked(tmp string, index uint64) error {
	final := filepath.Join(s.dir, snapshotName(index))
	if err := s.fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	return s.pruneLocked()
}

// Write stores a legacy single-blob snapshot covering journal indices
// <= index. New code should stream through Writer; Write remains for
// small images and as the seed-format baseline.
func (s *SnapshotStore) Write(index uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint64(buf[0:8], index)
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(data, castagnoli))
	copy(buf[12:], data)

	tmp := filepath.Join(s.dir, "snap.tmp")
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.commitTempLocked(tmp, index)
}

// SnapshotWriter streams one snapshot: records appended through it go
// straight to a temp file (via a small write buffer), so the producer
// never materialises the full image. Commit atomically publishes the
// snapshot; Abort discards it.
type SnapshotWriter struct {
	store *SnapshotStore
	index uint64
	tmp   string
	f     fault.File
	w     *bufio.Writer
	done  bool
}

// Writer starts a streaming snapshot covering journal indices <=
// index. The caller must finish with Commit or Abort.
func (s *SnapshotStore) Writer(index uint64) (*SnapshotWriter, error) {
	// Unique temp name: concurrent writers (e.g. an admin snapshot
	// racing the append-count trigger) must not clobber each other.
	tmp := filepath.Join(s.dir, fmt.Sprintf("snap-%020d.tmp", index))
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create snapshot temp: %w", err)
	}
	w := bufio.NewWriterSize(f, 256<<10)
	var hdr [12]byte
	copy(hdr[0:4], snapshotMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:12], index)
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return nil, err
	}
	return &SnapshotWriter{store: s, index: index, tmp: tmp, f: f, w: w}, nil
}

// Index reports the journal index this snapshot covers.
func (w *SnapshotWriter) Index() uint64 { return w.index }

// Append adds one record to the snapshot stream.
func (w *SnapshotWriter) Append(payload []byte) error {
	if w.done {
		return fmt.Errorf("storage: snapshot writer already closed")
	}
	var hdr [snapshotRecordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// Commit flushes and fsyncs the stream, atomically renames it into
// place, fsyncs the directory, and prunes old snapshots.
func (w *SnapshotWriter) Commit() error {
	if w.done {
		return fmt.Errorf("storage: snapshot writer already closed")
	}
	w.done = true
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		w.store.fs.Remove(w.tmp)
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		w.store.fs.Remove(w.tmp)
		return err
	}
	if err := w.f.Close(); err != nil {
		w.store.fs.Remove(w.tmp)
		return err
	}
	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	return w.store.commitTempLocked(w.tmp, w.index)
}

// Abort discards the in-progress snapshot.
func (w *SnapshotWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	w.store.fs.Remove(w.tmp)
}

func (s *SnapshotStore) indicesLocked() ([]uint64, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		if idx, ok := parseSnapshotName(e.Name()); ok {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

func (s *SnapshotStore) pruneLocked() error {
	idxs, err := s.indicesLocked()
	if err != nil {
		return err
	}
	for len(idxs) > s.retain {
		if err := s.fs.Remove(filepath.Join(s.dir, snapshotName(idxs[0]))); err != nil {
			return err
		}
		idxs = idxs[1:]
	}
	return nil
}

// Latest returns the newest valid legacy-format snapshot blob (highest
// index with a good CRC). ok is false when no usable legacy snapshot
// exists; corrupt or streaming-format snapshots are skipped, falling
// back to older ones. Recovery paths should prefer LatestSnapshot,
// which reads both formats without materialising stream contents.
func (s *SnapshotStore) Latest() (index uint64, data []byte, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idxs, err := s.indicesLocked()
	if err != nil {
		return 0, nil, false, err
	}
	for i := len(idxs) - 1; i >= 0; i-- {
		buf, err := s.fs.ReadFile(filepath.Join(s.dir, snapshotName(idxs[i])))
		if err != nil || len(buf) < 12 {
			continue
		}
		if [4]byte(buf[0:4]) == snapshotMagic {
			continue // streaming format: not a blob
		}
		idx := binary.LittleEndian.Uint64(buf[0:8])
		crc := binary.LittleEndian.Uint32(buf[8:12])
		payload := buf[12:]
		if crc32.Checksum(payload, castagnoli) != crc {
			continue
		}
		return idx, payload, true, nil
	}
	return 0, nil, false, nil
}

// Snapshot is one on-disk snapshot opened for reading. Legacy blob
// snapshots surface their whole image as a single record.
type Snapshot struct {
	// Index is the journal index the snapshot covers.
	Index uint64
	// Legacy reports the seed single-blob format.
	Legacy bool
	path   string
	fs     fault.FS
}

// LatestSnapshot returns the newest intact snapshot in either format,
// or nil when no usable snapshot exists. Streaming snapshots are
// verified record-by-record (a truncated or corrupt tail disqualifies
// the file); damaged snapshots fall back to the next-older one.
func (s *SnapshotStore) LatestSnapshot() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idxs, err := s.indicesLocked()
	if err != nil {
		return nil, err
	}
	for i := len(idxs) - 1; i >= 0; i-- {
		path := filepath.Join(s.dir, snapshotName(idxs[i]))
		sn, ok := openSnapshot(s.fs, path)
		if ok {
			return sn, nil
		}
	}
	return nil, nil
}

// openSnapshot validates one snapshot file and describes it. The
// verification pass streams through the file (bounded memory); the
// actual contents are re-read by Iterate.
func openSnapshot(fsys fault.FS, path string) (*Snapshot, bool) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var hdr [12]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, false
	}
	if [4]byte(hdr[0:4]) != snapshotMagic {
		// Legacy blob: [8B index][4B crc][data], CRC over all data.
		idx := binary.LittleEndian.Uint64(hdr[0:8])
		crc := binary.LittleEndian.Uint32(hdr[8:12])
		h := crc32.New(castagnoli)
		if _, err := io.Copy(h, bufio.NewReaderSize(f, 256<<10)); err != nil {
			return nil, false
		}
		if h.Sum32() != crc {
			return nil, false
		}
		return &Snapshot{Index: idx, Legacy: true, path: path, fs: fsys}, true
	}
	index := binary.LittleEndian.Uint64(hdr[4:12])
	if !scanSnapshotRecords(f, nil) {
		return nil, false
	}
	return &Snapshot{Index: index, path: path, fs: fsys}, true
}

// scanSnapshotRecords reads streaming records from r until EOF,
// verifying every CRC; fn (when non-nil) receives each payload, which
// is only valid for the duration of the call. It reports whether the
// stream ended cleanly.
func scanSnapshotRecords(r io.Reader, fn func(payload []byte) error) bool {
	br := bufio.NewReaderSize(r, 256<<10)
	var hdr [snapshotRecordHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return err == io.EOF // clean end vs torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 256<<20 {
			return false // implausible length: treat as corrupt
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return false // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return false
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return true // caller error, not corruption; Iterate surfaces it
			}
		}
	}
}

// Iterate streams the snapshot's records to fn in write order. The
// payload slice is only valid for the duration of the call. A legacy
// blob snapshot yields exactly one record: the whole image.
func (sn *Snapshot) Iterate(fn func(payload []byte) error) error {
	fsys := sn.fs
	if fsys == nil {
		fsys = fault.OS
	}
	f, err := fsys.Open(sn.path)
	if err != nil {
		return fmt.Errorf("storage: open snapshot: %w", err)
	}
	defer f.Close()
	if sn.Legacy {
		buf, err := io.ReadAll(f)
		if err != nil {
			return err
		}
		if len(buf) < 12 {
			return fmt.Errorf("storage: snapshot %s: %w", sn.path, ErrCorrupt)
		}
		return fn(buf[12:])
	}
	if _, err := f.Seek(12, io.SeekStart); err != nil {
		return err
	}
	var cbErr error
	ok := scanSnapshotRecords(f, func(p []byte) error {
		if err := fn(p); err != nil {
			cbErr = err
			return err
		}
		return nil
	})
	if cbErr != nil {
		return cbErr
	}
	if !ok {
		// The file validated at open time; damage appearing between
		// open and read is genuine corruption.
		return fmt.Errorf("storage: snapshot %s: %w", sn.path, ErrCorrupt)
	}
	return nil
}
