package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func collectSnapshot(t *testing.T, sn *Snapshot) []string {
	t.Helper()
	var out []string
	err := sn.Iterate(func(p []byte) error {
		out = append(out, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	return out
}

// TestSnapshotWriterRoundtrip: records appended through the streaming
// writer come back byte-identical and in order, under the committed
// index, and the snapshot is recognised as the streaming format.
func TestSnapshotWriterRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshotStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Writer(42)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", `{"id":"i-1","vars":{"k":"v"}}`}
	for _, rec := range want {
		if err := w.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	sn, err := s.LatestSnapshot()
	if err != nil || sn == nil {
		t.Fatalf("LatestSnapshot: sn=%v err=%v", sn, err)
	}
	if sn.Index != 42 || sn.Legacy {
		t.Fatalf("snapshot index=%d legacy=%v, want 42 streaming", sn.Index, sn.Legacy)
	}
	got := collectSnapshot(t, sn)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestStreamingSnapshotCorruptTailFallsBack: a streaming snapshot with
// a torn or corrupted tail is skipped in favour of the previous valid
// snapshot — the crash-consistency contract of the chunked format.
func TestStreamingSnapshotCorruptTailFallsBack(t *testing.T) {
	writeStream := func(s *SnapshotStore, index uint64, recs ...string) {
		t.Helper()
		w, err := s.Writer(index)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Append([]byte(r)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for name, corrupt := range map[string]func(data []byte) []byte{
		"truncated tail":    func(d []byte) []byte { return d[:len(d)-3] },
		"flipped tail byte": func(d []byte) []byte { d[len(d)-1] ^= 0xFF; return d },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenSnapshotStore(dir, 3)
			if err != nil {
				t.Fatal(err)
			}
			writeStream(s, 10, "old-1", "old-2")
			writeStream(s, 20, "new-1", "new-2", "new-3")
			path := filepath.Join(dir, snapshotName(20))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			sn, err := s.LatestSnapshot()
			if err != nil || sn == nil {
				t.Fatalf("LatestSnapshot: sn=%v err=%v", sn, err)
			}
			if sn.Index != 10 {
				t.Fatalf("fell back to index %d, want 10", sn.Index)
			}
			got := collectSnapshot(t, sn)
			if len(got) != 2 || got[0] != "old-1" || got[1] != "old-2" {
				t.Fatalf("fallback records = %v", got)
			}
		})
	}
}

// TestSnapshotWriterAbort: an aborted writer leaves no snapshot and no
// temp file behind, and the store keeps working.
func TestSnapshotWriterAbort(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshotStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Writer(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if sn, err := s.LatestSnapshot(); err != nil || sn != nil {
		t.Fatalf("after abort: sn=%v err=%v", sn, err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		t.Fatalf("stray file after abort: %s", e.Name())
	}
	w2, err := s.Writer(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	sn, err := s.LatestSnapshot()
	if err != nil || sn == nil || sn.Index != 8 {
		t.Fatalf("after abort+commit: sn=%v err=%v", sn, err)
	}
}

// TestLegacyAndStreamingCoexist: the two formats share the store; a
// corrupt streaming snapshot falls back to an older legacy blob, whose
// Iterate yields the whole image as one record.
func TestLegacyAndStreamingCoexist(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshotStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(10, []byte("legacy-image")); err != nil {
		t.Fatal(err)
	}
	w, err := s.Writer(20)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("stream-rec")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	sn, err := s.LatestSnapshot()
	if err != nil || sn == nil || sn.Index != 20 || sn.Legacy {
		t.Fatalf("LatestSnapshot = %+v err=%v, want streaming@20", sn, err)
	}
	// Corrupt the streaming snapshot: the legacy blob takes over.
	path := filepath.Join(dir, snapshotName(20))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sn, err = s.LatestSnapshot()
	if err != nil || sn == nil || sn.Index != 10 || !sn.Legacy {
		t.Fatalf("fallback = %+v err=%v, want legacy@10", sn, err)
	}
	got := collectSnapshot(t, sn)
	if len(got) != 1 || got[0] != "legacy-image" {
		t.Fatalf("legacy iterate = %v", got)
	}
}

// TestReplayParallelOrderAndEquivalence: parallel segment replay
// delivers every record to the apply callback in strict ascending
// index order with payloads identical to serial Replay, for suffixes
// starting inside and between segments. Decoders run concurrently
// (exercised under -race).
func TestReplayParallelOrderAndEquivalence(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(dir, Options{SegmentSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	const n = 2000
	for i := 1; i <= n; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rec-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, from := range []uint64{1, 777, n - 1, n, n + 1} {
		var gotIdx []uint64
		var gotPayload []string
		err := j.ReplayParallel(from, 8,
			func(_ uint64, payload []byte) (any, error) {
				// Payload is only valid during the call: copy.
				return string(payload), nil
			},
			func(index uint64, v any) error {
				gotIdx = append(gotIdx, index)
				gotPayload = append(gotPayload, v.(string))
				return nil
			})
		if err != nil {
			t.Fatalf("from=%d: %v", from, err)
		}
		want := 0
		if from <= n {
			want = int(uint64(n) - max64(from, 1) + 1)
		}
		if len(gotIdx) != want {
			t.Fatalf("from=%d: %d records, want %d", from, len(gotIdx), want)
		}
		for k, idx := range gotIdx {
			wantIdx := max64(from, 1) + uint64(k)
			if idx != wantIdx {
				t.Fatalf("from=%d: record %d has index %d, want %d (strict order)", from, k, idx, wantIdx)
			}
			if wantPayload := fmt.Sprintf("rec-%05d", wantIdx); gotPayload[k] != wantPayload {
				t.Fatalf("from=%d: payload[%d] = %q, want %q", from, k, gotPayload[k], wantPayload)
			}
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// TestReplayParallelDecodeError: a decode failure in any worker aborts
// the replay with that error and without deadlocking the pool.
func TestReplayParallelDecodeError(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(dir, Options{SegmentSize: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 1; i <= 500; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rec-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wantErr := fmt.Errorf("boom at 250")
	err = j.ReplayParallel(1, 4,
		func(index uint64, payload []byte) (any, error) {
			if index == 250 {
				return nil, wantErr
			}
			return nil, nil
		},
		func(uint64, any) error { return nil })
	if err == nil {
		t.Fatal("decode error not propagated")
	}
}

// TestReplayParallelConcurrentAppends: replaying in parallel while
// writers keep appending races nothing (run with -race) and delivers
// at least the prefix that existed when the replay began, in order.
func TestReplayParallelConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(dir, Options{SegmentSize: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	const pre = 600
	for i := 1; i <= pre; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rec-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := pre
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if _, err := j.Append([]byte(fmt.Sprintf("rec-%05d", i))); err != nil {
				return
			}
		}
	}()
	var last uint64
	err = j.ReplayParallel(1, 4,
		func(_ uint64, payload []byte) (any, error) { return string(payload), nil },
		func(index uint64, v any) error {
			if index != last+1 {
				t.Errorf("index %d after %d", index, last)
			}
			last = index
			return nil
		})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if last < pre {
		t.Fatalf("replayed up to %d, want at least the pre-existing %d", last, pre)
	}
}
