package mine

import (
	"time"

	"bpms/internal/history"
	"bpms/internal/metrics"
)

// Conformance aggregates token-replay counters over a log. Fitness is
// the classic combination
//
//	f = ½(1 − missing/consumed) + ½(1 − remaining/produced)
//
// where missing tokens are created on demand to fire log moves the
// model disallows, and remaining tokens are those left behind (other
// than the final marking) at trace end.
type Conformance struct {
	Produced, Consumed  int
	Missing, Remaining  int
	Traces, FitTraces   int
	UnknownActivityHits int
}

// Fitness returns the replay fitness in [0, 1].
func (c *Conformance) Fitness() float64 {
	if c.Consumed == 0 && c.Produced == 0 {
		return 1
	}
	f := 0.0
	if c.Consumed > 0 {
		f += 0.5 * (1 - float64(c.Missing)/float64(c.Consumed))
	} else {
		f += 0.5
	}
	if c.Produced > 0 {
		f += 0.5 * (1 - float64(c.Remaining)/float64(c.Produced))
	} else {
		f += 0.5
	}
	if f < 0 {
		f = 0
	}
	return f
}

// TokenReplay replays every trace of the log on the labelled net.
// Activities without a matching transition count as missing+remaining
// (a log move the model cannot mimic at all).
func TokenReplay(res *AlphaResult, log *history.Log) *Conformance {
	c := &Conformance{}
	net := res.Net
	for _, tr := range log.Traces {
		if len(tr.Entries) == 0 {
			continue
		}
		c.Traces++
		m := res.M0.Clone()
		// Initial marking tokens count as produced.
		produced := int(m.Tokens())
		consumed := 0
		missing := 0
		for _, e := range tr.Entries {
			t, ok := res.TransitionOf[e.Activity]
			if !ok {
				c.UnknownActivityHits++
				missing++
				produced++ // the phantom move leaves a phantom token
				continue
			}
			for _, p := range net.Pre(t) {
				if m[p] < 1 {
					missing++
					m[p]++
				}
				m[p]--
				consumed++
			}
			for _, p := range net.Post(t) {
				m[p]++
				produced++
			}
		}
		// Consume the final marking.
		remaining := 0
		for i := range m {
			want := res.Final[i]
			have := m[i]
			if have >= want {
				consumed += int(want)
				remaining += int(have - want)
			} else {
				consumed += int(have)
				missing += int(want - have)
			}
		}
		c.Produced += produced
		c.Consumed += consumed
		c.Missing += missing
		c.Remaining += remaining
		if missing == 0 && remaining == 0 {
			c.FitTraces++
		}
	}
	return c
}

// ActivityStat summarises one activity's performance in a log.
type ActivityStat struct {
	Activity string
	Count    int
	// Sojourn is the time from the previous event in the trace to this
	// activity's completion (a proxy for activity duration in
	// completion-only logs).
	Sojourn metrics.Summary
}

// CaseStat summarises case-level performance.
type CaseStat struct {
	Cases     int
	CycleTime metrics.Summary
	Events    metrics.Summary
}

// Performance computes per-activity and per-case statistics.
func Performance(log *history.Log) (map[string]*ActivityStat, *CaseStat) {
	acts := map[string]*ActivityStat{}
	cs := &CaseStat{}
	for _, tr := range log.Traces {
		if len(tr.Entries) == 0 {
			continue
		}
		cs.Cases++
		cs.Events.Add(float64(len(tr.Entries)))
		first := tr.Entries[0].Time
		last := tr.Entries[len(tr.Entries)-1].Time
		if !first.IsZero() && !last.IsZero() {
			cs.CycleTime.Add(last.Sub(first).Seconds())
		}
		var prev time.Time
		for i, e := range tr.Entries {
			st := acts[e.Activity]
			if st == nil {
				st = &ActivityStat{Activity: e.Activity}
				acts[e.Activity] = st
			}
			st.Count++
			if i > 0 && !e.Time.IsZero() && !prev.IsZero() {
				st.Sojourn.Add(e.Time.Sub(prev).Seconds())
			}
			prev = e.Time
		}
	}
	return acts, cs
}

// DeadTransitions lists activities of the mined net that the log never
// exercises (sanity diagnostic after discovery).
func DeadTransitions(res *AlphaResult, log *history.Log) []string {
	seen := map[string]bool{}
	for _, tr := range log.Traces {
		for _, e := range tr.Entries {
			seen[e.Activity] = true
		}
	}
	var out []string
	for a := range res.TransitionOf {
		if !seen[a] {
			out = append(out, a)
		}
	}
	return out
}
