package mine

import (
	"sort"
	"strings"

	"bpms/internal/history"
	"bpms/internal/petri"
)

// The alpha algorithm (van der Aalst et al.) discovers a workflow net
// from an event log. It derives the footprint relations from direct
// succession — causality (a→b), parallelism (a∥b), and choice (a#b) —
// then builds a place for every maximal pair of causally linked,
// internally choice-free activity sets.

// relations is the alpha footprint.
type relations struct {
	acts     []string
	succ     map[Pair]bool // a > b
	causal   map[Pair]bool // a -> b
	parallel map[Pair]bool // a || b
}

func buildRelations(g *DFG) *relations {
	r := &relations{
		acts:     g.ActivityList(),
		succ:     map[Pair]bool{},
		causal:   map[Pair]bool{},
		parallel: map[Pair]bool{},
	}
	for p := range g.Counts {
		r.succ[p] = true
	}
	for _, a := range r.acts {
		for _, b := range r.acts {
			ab := r.succ[Pair{a, b}]
			ba := r.succ[Pair{b, a}]
			switch {
			case ab && !ba:
				r.causal[Pair{a, b}] = true
			case ab && ba:
				r.parallel[Pair{a, b}] = true
			}
		}
	}
	return r
}

// choiceFree reports whether no two members of set are in succession
// (the alpha "#" requirement inside candidate sets).
func (r *relations) choiceFree(set []string) bool {
	for _, a := range set {
		for _, b := range set {
			if r.succ[Pair{a, b}] {
				return false
			}
		}
	}
	return true
}

// causalAll reports a->b for every a in A, b in B.
func (r *relations) causalAll(A, B []string) bool {
	for _, a := range A {
		for _, b := range B {
			if !r.causal[Pair{a, b}] {
				return false
			}
		}
	}
	return true
}

// AlphaResult is the discovered workflow net with its initial and
// final markings, ready for token replay.
type AlphaResult struct {
	Net   *petri.Net
	M0    petri.Marking // one token in the source place
	Final petri.Marking // one token in the sink place
	// TransitionOf maps activity names to net transitions.
	TransitionOf map[string]petri.TransitionID
}

// Alpha runs the alpha algorithm over a log.
func Alpha(log *history.Log) *AlphaResult {
	g := BuildDFG(log)
	r := buildRelations(g)

	// Candidate (A, B) pairs: start from singleton causal pairs and
	// grow maximal sets. Activity universes in logs are small, so the
	// subset search enumerates greedily.
	type pairSet struct{ A, B []string }
	var candidates []pairSet
	for _, a := range r.acts {
		for _, b := range r.acts {
			if r.causal[Pair{a, b}] {
				candidates = append(candidates, pairSet{[]string{a}, []string{b}})
			}
		}
	}
	// Grow each candidate by adding activities preserving the alpha
	// conditions, to a fixpoint.
	grown := map[string]pairSet{}
	key := func(ps pairSet) string {
		return strings.Join(ps.A, ",") + "|" + strings.Join(ps.B, ",")
	}
	for _, c := range candidates {
		A := append([]string(nil), c.A...)
		B := append([]string(nil), c.B...)
		for changed := true; changed; {
			changed = false
			for _, x := range r.acts {
				if !contains(A, x) && r.choiceFree(append(append([]string{}, A...), x)) &&
					r.causalAll(append(append([]string{}, A...), x), B) {
					A = append(A, x)
					sort.Strings(A)
					changed = true
				}
				if !contains(B, x) && r.choiceFree(append(append([]string{}, B...), x)) &&
					r.causalAll(A, append(append([]string{}, B...), x)) {
					B = append(B, x)
					sort.Strings(B)
					changed = true
				}
			}
		}
		ps := pairSet{A, B}
		grown[key(ps)] = ps
	}
	// Keep only maximal pairs.
	sets := make([]pairSet, 0, len(grown))
	for _, ps := range grown {
		sets = append(sets, ps)
	}
	var maximal []pairSet
	for i, ps := range sets {
		dominated := false
		for j, qs := range sets {
			if i == j {
				continue
			}
			if subset(ps.A, qs.A) && subset(ps.B, qs.B) &&
				(len(ps.A) < len(qs.A) || len(ps.B) < len(qs.B)) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, ps)
		}
	}
	sort.Slice(maximal, func(a, b int) bool { return key(maximal[a]) < key(maximal[b]) })

	// Assemble the net.
	b := petri.NewBuilder()
	src := b.AddPlace("i")
	sink := b.AddPlace("o")
	transOf := map[string]petri.TransitionID{}
	for _, a := range r.acts {
		transOf[a] = b.AddTransition(a)
	}
	for _, ps := range maximal {
		place := b.AddPlace("p(" + key(ps) + ")")
		for _, a := range ps.A {
			b.ArcTP(transOf[a], place)
		}
		for _, bb := range ps.B {
			b.ArcPT(place, transOf[bb])
		}
	}
	// Source feeds start activities; end activities feed the sink.
	startActs := make([]string, 0, len(g.Starts))
	for a := range g.Starts {
		startActs = append(startActs, a)
	}
	sort.Strings(startActs)
	for _, a := range startActs {
		b.ArcPT(src, transOf[a])
	}
	endActs := make([]string, 0, len(g.Ends))
	for a := range g.Ends {
		endActs = append(endActs, a)
	}
	sort.Strings(endActs)
	for _, a := range endActs {
		b.ArcTP(transOf[a], sink)
	}
	net := b.Build()
	m0 := net.NewMarking()
	m0[src] = 1
	final := net.NewMarking()
	final[sink] = 1
	return &AlphaResult{Net: net, M0: m0, Final: final, TransitionOf: transOf}
}

func contains(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func subset(a, b []string) bool {
	for _, x := range a {
		if !contains(b, x) {
			return false
		}
	}
	return true
}
