package mine

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/sim"
)

func mkLog(traces ...[]string) *history.Log {
	l := &history.Log{Name: "test"}
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	for ci, acts := range traces {
		tr := history.Trace{CaseID: string(rune('a' + ci))}
		for i, a := range acts {
			tr.Entries = append(tr.Entries, history.Entry{
				Activity: a,
				Time:     base.Add(time.Duration(ci*100+i) * time.Minute),
			})
		}
		l.Traces = append(l.Traces, tr)
	}
	return l
}

func TestBuildDFG(t *testing.T) {
	l := mkLog(
		[]string{"A", "B", "C"},
		[]string{"A", "C"},
		[]string{"A", "B", "C"},
	)
	g := BuildDFG(l)
	if g.TotalTraces != 3 {
		t.Errorf("traces = %d", g.TotalTraces)
	}
	if g.Counts[Pair{"A", "B"}] != 2 || g.Counts[Pair{"B", "C"}] != 2 || g.Counts[Pair{"A", "C"}] != 1 {
		t.Errorf("counts = %v", g.Counts)
	}
	if g.Starts["A"] != 3 || g.Ends["C"] != 3 {
		t.Errorf("starts=%v ends=%v", g.Starts, g.Ends)
	}
	if g.Activities["A"] != 3 || g.Activities["B"] != 2 {
		t.Errorf("activities = %v", g.Activities)
	}
	if got := g.ActivityList(); len(got) != 3 || got[0] != "A" {
		t.Errorf("ActivityList = %v", got)
	}
	if !strings.Contains(g.Dot(), `"A" -> "B"`) {
		t.Error("Dot missing edge")
	}
}

func TestDFGFilters(t *testing.T) {
	l := mkLog(
		[]string{"A", "B"}, []string{"A", "B"}, []string{"A", "B"},
		[]string{"B", "A"}, // noise back-edge
	)
	g := BuildDFG(l)
	f := g.Filter(2)
	if _, ok := f.Counts[Pair{"B", "A"}]; ok {
		t.Error("frequency filter kept noise edge")
	}
	d := g.FilterByDependency(0.3)
	if _, ok := d.Counts[Pair{"B", "A"}]; ok {
		t.Error("dependency filter kept noise edge")
	}
	if _, ok := d.Counts[Pair{"A", "B"}]; !ok {
		t.Error("dependency filter dropped the real edge")
	}
	if g.Dependency("A", "B") <= 0 || g.Dependency("B", "A") >= 0 {
		t.Errorf("dependency signs: AB=%g BA=%g", g.Dependency("A", "B"), g.Dependency("B", "A"))
	}
}

func TestDFGFitness(t *testing.T) {
	train := mkLog([]string{"A", "B", "C"})
	g := BuildDFG(train)
	if f := g.FitnessDFG(train); f != 1 {
		t.Errorf("self fitness = %g", f)
	}
	other := mkLog([]string{"A", "C", "B"})
	if f := g.FitnessDFG(other); f >= 1 {
		t.Errorf("foreign fitness = %g, want < 1", f)
	}
	if f := g.FitnessDFG(&history.Log{}); f != 1 {
		t.Errorf("empty log fitness = %g", f)
	}
}

func TestAlphaSequence(t *testing.T) {
	l := mkLog([]string{"A", "B", "C"}, []string{"A", "B", "C"})
	res := Alpha(l)
	if res.Net.Transitions() != 3 {
		t.Fatalf("transitions = %d", res.Net.Transitions())
	}
	c := TokenReplay(res, l)
	if c.Fitness() != 1 {
		t.Errorf("sequence fitness = %g (missing=%d remaining=%d)", c.Fitness(), c.Missing, c.Remaining)
	}
	if c.FitTraces != 2 {
		t.Errorf("fit traces = %d", c.FitTraces)
	}
}

func TestAlphaChoice(t *testing.T) {
	l := mkLog(
		[]string{"A", "B", "D"},
		[]string{"A", "C", "D"},
	)
	res := Alpha(l)
	c := TokenReplay(res, l)
	if c.Fitness() != 1 {
		t.Errorf("choice fitness = %g", c.Fitness())
	}
	// A trace violating the choice (both B and C) must not fit.
	bad := mkLog([]string{"A", "B", "C", "D"})
	cb := TokenReplay(res, bad)
	if cb.FitTraces != 0 {
		t.Errorf("violating trace counted as fit")
	}
	if cb.Fitness() >= 1 {
		t.Errorf("bad fitness = %g, want < 1", cb.Fitness())
	}
}

func TestAlphaParallel(t *testing.T) {
	// A;(B||C);D — both interleavings observed.
	l := mkLog(
		[]string{"A", "B", "C", "D"},
		[]string{"A", "C", "B", "D"},
	)
	res := Alpha(l)
	c := TokenReplay(res, l)
	if c.Fitness() != 1 {
		t.Errorf("parallel fitness = %g (missing=%d remaining=%d)", c.Fitness(), c.Missing, c.Remaining)
	}
}

func TestAlphaUnknownActivity(t *testing.T) {
	res := Alpha(mkLog([]string{"A", "B"}))
	c := TokenReplay(res, mkLog([]string{"A", "X", "B"}))
	if c.UnknownActivityHits != 1 {
		t.Errorf("unknown hits = %d", c.UnknownActivityHits)
	}
	if c.Fitness() >= 1 {
		t.Errorf("fitness with unknown activity = %g", c.Fitness())
	}
}

func TestAlphaRediscoversSimulatedProcess(t *testing.T) {
	// Simulate the Mixed topology and rediscover it: replay fitness of
	// the training log on the mined model must be 1 (alpha guarantees
	// fitness on its own structured, complete input).
	p := model.New("disc").
		Start("s").
		UserTask("register", model.Name("Register"), model.Role("agent")).
		XOR("route", model.Default("toB")).
		UserTask("checkA", model.Name("CheckA"), model.Role("agent")).
		UserTask("checkB", model.Name("CheckB"), model.Role("agent")).
		XOR("merge").
		UserTask("archive", model.Name("Archive"), model.Role("agent")).
		End("e").
		Flow("s", "register").
		Flow("register", "route").
		FlowIf("route", "checkA", "fast == true").
		FlowID("toB", "route", "checkB", "").
		Flow("checkA", "merge").
		Flow("checkB", "merge").
		Flow("merge", "archive").
		Flow("archive", "e").
		MustBuild()
	res, err := sim.Run(sim.Config{
		Process:        p,
		Cases:          60,
		Interarrival:   sim.Exp(time.Minute),
		DefaultService: sim.Fixed(30 * time.Second),
		Resources:      map[string][]string{"agent": {"w1", "w2", "w3"}},
		Vars: func(i int, r *rand.Rand) map[string]any {
			return map[string]any{"fast": r.Intn(2) == 0}
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 60 {
		t.Fatalf("sim completed = %d", res.Completed)
	}
	mined := Alpha(res.Log)
	c := TokenReplay(mined, res.Log)
	if c.Fitness() < 0.99 {
		t.Errorf("rediscovery fitness = %g", c.Fitness())
	}
	if dead := DeadTransitions(mined, res.Log); len(dead) != 0 {
		t.Errorf("dead transitions = %v", dead)
	}
}

func TestPerformanceMining(t *testing.T) {
	l := mkLog(
		[]string{"A", "B", "C"},
		[]string{"A", "B", "C"},
	)
	acts, cases := Performance(l)
	if cases.Cases != 2 {
		t.Errorf("cases = %d", cases.Cases)
	}
	if cases.CycleTime.Mean() != 120 { // 2 steps of 1 minute
		t.Errorf("mean cycle = %g", cases.CycleTime.Mean())
	}
	if cases.Events.Mean() != 3 {
		t.Errorf("mean events = %g", cases.Events.Mean())
	}
	if acts["B"].Count != 2 || acts["B"].Sojourn.Mean() != 60 {
		t.Errorf("B stats = %+v", acts["B"])
	}
	if acts["A"].Sojourn.Count() != 0 {
		t.Errorf("A (trace-initial) should have no sojourn samples")
	}
}

func TestFitnessImprovesWithLogSize(t *testing.T) {
	// The F3 shape: fitness of a model mined from a small log,
	// evaluated on a big log, is below fitness of a model mined from
	// the big log itself.
	gen := func(n int, seed int64) *history.Log {
		r := rand.New(rand.NewSource(seed))
		l := &history.Log{}
		for i := 0; i < n; i++ {
			// Ground truth: A;(B|C);(D||E);F
			acts := []string{"A"}
			if r.Intn(2) == 0 {
				acts = append(acts, "B")
			} else {
				acts = append(acts, "C")
			}
			if r.Intn(2) == 0 {
				acts = append(acts, "D", "E")
			} else {
				acts = append(acts, "E", "D")
			}
			acts = append(acts, "F")
			tr := history.Trace{CaseID: string(rune('a' + i%26))}
			for _, a := range acts {
				tr.Entries = append(tr.Entries, history.Entry{Activity: a})
			}
			l.Traces = append(l.Traces, tr)
		}
		return l
	}
	big := gen(500, 1)
	tiny := gen(2, 2) // incomplete: misses interleavings/branches
	gTiny := BuildDFG(tiny)
	gBig := BuildDFG(big)
	fTiny := gTiny.FitnessDFG(big)
	fBig := gBig.FitnessDFG(big)
	if fBig != 1 {
		t.Errorf("self-trained DFG fitness = %g", fBig)
	}
	if fTiny >= fBig {
		t.Errorf("tiny-log fitness %g should be below big-log fitness %g", fTiny, fBig)
	}
}
