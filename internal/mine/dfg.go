// Package mine implements the process-mining subsystem of the BPMS:
// directly-follows graphs, the alpha algorithm for process discovery,
// a frequency-filtered DFG miner, token-replay conformance checking,
// and performance mining over event logs (the history.Log model).
// Together with the simulator it closes the classic BPM lifecycle:
// design → enact → monitor → (re)discover.
package mine

import (
	"fmt"
	"sort"
	"strings"

	"bpms/internal/history"
)

// Pair is an ordered activity pair (a directly-follows edge).
type Pair struct {
	From, To string
}

// DFG is a directly-follows graph with frequencies.
type DFG struct {
	// Counts holds directly-follows frequencies.
	Counts map[Pair]int
	// Starts and Ends count trace-initial and trace-final activities.
	Starts, Ends map[string]int
	// Activities counts activity occurrences.
	Activities map[string]int
	// TotalTraces is the number of traces observed.
	TotalTraces int
}

// BuildDFG scans a log into a directly-follows graph.
func BuildDFG(log *history.Log) *DFG {
	g := &DFG{
		Counts:     map[Pair]int{},
		Starts:     map[string]int{},
		Ends:       map[string]int{},
		Activities: map[string]int{},
	}
	for _, tr := range log.Traces {
		if len(tr.Entries) == 0 {
			continue
		}
		g.TotalTraces++
		g.Starts[tr.Entries[0].Activity]++
		g.Ends[tr.Entries[len(tr.Entries)-1].Activity]++
		for i, e := range tr.Entries {
			g.Activities[e.Activity]++
			if i > 0 {
				g.Counts[Pair{tr.Entries[i-1].Activity, e.Activity}]++
			}
		}
	}
	return g
}

// ActivityList returns the activities sorted by name.
func (g *DFG) ActivityList() []string {
	out := make([]string, 0, len(g.Activities))
	for a := range g.Activities {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Filter returns a copy keeping only edges with frequency >= minCount.
// Start/end counts and activities are preserved.
func (g *DFG) Filter(minCount int) *DFG {
	out := &DFG{
		Counts:      map[Pair]int{},
		Starts:      g.Starts,
		Ends:        g.Ends,
		Activities:  g.Activities,
		TotalTraces: g.TotalTraces,
	}
	for p, c := range g.Counts {
		if c >= minCount {
			out.Counts[p] = c
		}
	}
	return out
}

// Dependency returns the heuristics-miner dependency measure between a
// and b: (|a>b| - |b>a|) / (|a>b| + |b>a| + 1), in (-1, 1).
func (g *DFG) Dependency(a, b string) float64 {
	ab := g.Counts[Pair{a, b}]
	ba := g.Counts[Pair{b, a}]
	return float64(ab-ba) / float64(ab+ba+1)
}

// FilterByDependency keeps edges whose dependency measure is at least
// threshold — the heuristics-miner view of the DFG that drops noise
// edges a plain frequency filter keeps.
func (g *DFG) FilterByDependency(threshold float64) *DFG {
	out := &DFG{
		Counts:      map[Pair]int{},
		Starts:      g.Starts,
		Ends:        g.Ends,
		Activities:  g.Activities,
		TotalTraces: g.TotalTraces,
	}
	for p, c := range g.Counts {
		if g.Dependency(p.From, p.To) >= threshold {
			out.Counts[p] = c
		}
	}
	return out
}

// FitnessDFG computes edge-based replay fitness of a log against this
// DFG: the fraction of observed steps (including the virtual
// start/end steps) that traverse known edges. It is the conformance
// measure for DFG-style models (experiment F3's baseline miner).
func (g *DFG) FitnessDFG(log *history.Log) float64 {
	total, ok := 0, 0
	for _, tr := range log.Traces {
		if len(tr.Entries) == 0 {
			continue
		}
		total++
		if g.Starts[tr.Entries[0].Activity] > 0 {
			ok++
		}
		total++
		if g.Ends[tr.Entries[len(tr.Entries)-1].Activity] > 0 {
			ok++
		}
		for i := 1; i < len(tr.Entries); i++ {
			total++
			if g.Counts[Pair{tr.Entries[i-1].Activity, tr.Entries[i].Activity}] > 0 {
				ok++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// Dot renders the DFG in Graphviz dot syntax (frequencies on edges).
func (g *DFG) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph dfg {\n  rankdir=LR;\n")
	for _, a := range g.ActivityList() {
		fmt.Fprintf(&sb, "  %q [shape=box label=\"%s (%d)\"];\n", a, a, g.Activities[a])
	}
	pairs := make([]Pair, 0, len(g.Counts))
	for p := range g.Counts {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].From != pairs[b].From {
			return pairs[a].From < pairs[b].From
		}
		return pairs[a].To < pairs[b].To
	})
	for _, p := range pairs {
		fmt.Fprintf(&sb, "  %q -> %q [label=%d];\n", p.From, p.To, g.Counts[p])
	}
	sb.WriteString("}\n")
	return sb.String()
}
