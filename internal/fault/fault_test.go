package fault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "sub", "f.txt")
	if err := OS.MkdirAll(filepath.Dir(name), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := OS.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if f.Name() != name {
		t.Fatalf("Name = %q, want %q", f.Name(), name)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := OS.ReadFile(name)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	ents, err := OS.ReadDir(filepath.Dir(name))
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Truncate(name, 2); err != nil {
		t.Fatal(err)
	}
	moved := name + ".moved"
	if err := OS.Rename(name, moved); err != nil {
		t.Fatal(err)
	}
	r, err := OS.Open(moved)
	if err != nil {
		t.Fatal(err)
	}
	b, err = io.ReadAll(r)
	r.Close()
	if err != nil || string(b) != "he" {
		t.Fatalf("after truncate+rename read %q, %v", b, err)
	}
	if err := OS.Remove(moved); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorFailFsyncAt(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Plan{FailFsyncAt: 2})
	f, err := inj.OpenFile(filepath.Join(dir, "w"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("fsync 1 should pass: %v", err)
	}
	err = f.Sync()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("fsync 2 should fail injected, got %v", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("injected fsync error should wrap EIO, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("fsync 3 should pass again: %v", err)
	}
	rep := inj.FaultReport()
	if rep.Fsyncs != 3 || rep.FailedFsyncs != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestInjectorENOSPCBudget(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Plan{ENOSPCAfter: 10})
	f, err := inj.OpenFile(filepath.Join(dir, "w"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatalf("first 8 bytes fit the budget: %v", err)
	}
	_, err = f.Write([]byte("12345678"))
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("over-budget write should be injected ENOSPC, got %v", err)
	}
	// The disk stays full: a tiny write that would fit the remaining
	// 2 bytes succeeds, then the budget is spent for good.
	if _, err := f.Write([]byte("xy")); err != nil {
		t.Fatalf("2-byte write still fits: %v", err)
	}
	if _, err := f.Write([]byte("z")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("budget spent, want ENOSPC, got %v", err)
	}
	rep := inj.FaultReport()
	if rep.ENOSPCWrites != 2 || rep.BytesWritten != 10 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestInjectorDropWrites(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "w")
	inj := NewInjector(OS, Plan{DropWritesAfter: 1})
	f, err := inj.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("dropped"))
	if err != nil || n != len("dropped") {
		t.Fatalf("dropped write must report success, got n=%d err=%v", n, err)
	}
	f.Close()
	b, err := os.ReadFile(name)
	if err != nil || string(b) != "kept" {
		t.Fatalf("on-disk = %q, %v; want only the first write", b, err)
	}
	if rep := inj.FaultReport(); rep.DroppedWrites != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestInjectorPathFilter(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Plan{PathContains: "wal", FailFsyncAt: 1})
	other, err := inj.OpenFile(filepath.Join(dir, "snapshot.bin"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Sync(); err != nil {
		t.Fatalf("non-matching file must not count or fail: %v", err)
	}
	wal, err := inj.OpenFile(filepath.Join(dir, "wal-0001.seg"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	if err := wal.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching file's first fsync should fail, got %v", err)
	}
	if rep := inj.FaultReport(); rep.Fsyncs != 1 {
		t.Fatalf("non-matching fsync was counted: %+v", rep)
	}
}

func TestInjectorDeterministicProb(t *testing.T) {
	run := func() []bool {
		dir := t.TempDir()
		inj := NewInjector(OS, Plan{FailFsyncProb: 0.5, Seed: 42})
		f, err := inj.OpenFile(filepath.Join(dir, "w"), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		out := make([]bool, 20)
		for i := range out {
			out[i] = f.Sync() != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverged at fsync %d: %v vs %v", i+1, a, b)
		}
	}
}

func TestInjectorLatency(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Plan{WriteLatency: 5 * time.Millisecond})
	f, err := inj.OpenFile(filepath.Join(dir, "w"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("write returned in %v, want >= 5ms of injected latency", d)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("path=/state/;fsync-at=12; enospc-after=65536;drop-after=3;fsync-prob=0.25;seed=7;write-latency=2ms;fsync-latency=1ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		PathContains:    "/state/",
		FailFsyncAt:     12,
		FailFsyncProb:   0.25,
		Seed:            7,
		ENOSPCAfter:     65536,
		DropWritesAfter: 3,
		WriteLatency:    2 * time.Millisecond,
		FsyncLatency:    time.Millisecond,
	}
	if p != want {
		t.Fatalf("ParsePlan = %+v, want %+v", p, want)
	}
	if _, err := ParsePlan("bogus"); err == nil || !strings.Contains(err.Error(), "bad clause") {
		t.Fatalf("want bad-clause error, got %v", err)
	}
	if _, err := ParsePlan("nope=1"); err == nil || !strings.Contains(err.Error(), "unknown clause") {
		t.Fatalf("want unknown-clause error, got %v", err)
	}
	if _, err := ParsePlan("fsync-at=abc"); err == nil {
		t.Fatal("want parse error for non-numeric ordinal")
	}
	empty, err := ParsePlan("")
	if err != nil || empty != (Plan{}) {
		t.Fatalf("empty spec should be a no-op plan, got %+v, %v", empty, err)
	}
}
