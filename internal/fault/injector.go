package fault

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected marks every error produced by an Injector, so callers
// (and chaos-gate assertions) can tell scripted faults from real ones
// with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Plan scripts an Injector. The zero value injects nothing. All
// ordinals count only operations on matching paths, so a plan can
// target one shard's WAL while the rest of the system runs clean.
type Plan struct {
	// PathContains restricts faults (and ordinal counting) to files
	// whose path contains this substring ("" = every file).
	PathContains string
	// FailFsyncAt fails the Nth matching fsync (1-based; 0 = never).
	// The data is NOT flushed — exactly what a dying disk does.
	FailFsyncAt uint64
	// FailFsyncProb fails each matching fsync with this probability,
	// drawn from a rand stream seeded by Seed (deterministic replay).
	FailFsyncProb float64
	// Seed keys the probabilistic draws (FailFsyncProb).
	Seed int64
	// ENOSPCAfter is a byte budget: once this many bytes have been
	// written to matching files, every further write fails with
	// syscall.ENOSPC — the disk stays full until the plan is lifted
	// (0 = unlimited).
	ENOSPCAfter int64
	// DropWritesAfter silently discards matching writes after the
	// first N (1-based ordinal > N is dropped; 0 = never). The write
	// reports success — simulating a buffered write that never reaches
	// the platter before a crash.
	DropWritesAfter uint64
	// WriteLatency and FsyncLatency are added to each matching write /
	// fsync (0 = none).
	WriteLatency time.Duration
	// FsyncLatency is added to each matching fsync.
	FsyncLatency time.Duration
}

// ParsePlan parses the -fault flag's spec string: semicolon-separated
// key=value clauses, e.g.
//
//	"path=/state/;fsync-at=12"
//	"enospc-after=65536;path=snapshots"
//	"drop-after=100;fsync-prob=0.05;seed=7;write-latency=2ms"
//
// Keys: path, fsync-at, fsync-prob, seed, enospc-after, drop-after,
// write-latency, fsync-latency.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: bad clause %q (want key=value)", clause)
		}
		var err error
		switch key {
		case "path":
			p.PathContains = val
		case "fsync-at":
			p.FailFsyncAt, err = strconv.ParseUint(val, 10, 64)
		case "fsync-prob":
			p.FailFsyncProb, err = strconv.ParseFloat(val, 64)
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "enospc-after":
			p.ENOSPCAfter, err = strconv.ParseInt(val, 10, 64)
		case "drop-after":
			p.DropWritesAfter, err = strconv.ParseUint(val, 10, 64)
		case "write-latency":
			p.WriteLatency, err = time.ParseDuration(val)
		case "fsync-latency":
			p.FsyncLatency, err = time.ParseDuration(val)
		default:
			return Plan{}, fmt.Errorf("fault: unknown clause key %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
	}
	return p, nil
}

// Report is an Injector's running tally — what the chaos gate uploads
// as its fault-report artifact.
type Report struct {
	// Writes and Fsyncs count matching operations (attempted).
	Writes uint64 `json:"writes"`
	Fsyncs uint64 `json:"fsyncs"`
	// BytesWritten counts bytes actually written (dropped and ENOSPC
	// writes excluded).
	BytesWritten int64 `json:"bytesWritten"`
	// FailedFsyncs, ENOSPCWrites, and DroppedWrites count injected
	// faults by kind.
	FailedFsyncs uint64 `json:"failedFsyncs"`
	ENOSPCWrites uint64 `json:"enospcWrites"`
	// DroppedWrites counts writes that reported success but were
	// discarded.
	DroppedWrites uint64 `json:"droppedWrites"`
}

// Reporter is implemented by filesystems that tally injected faults;
// the stats endpoint surfaces it when present.
type Reporter interface {
	FaultReport() Report
}

// Injector is an FS that executes a Plan on top of a base filesystem.
// Safe for concurrent use; all ordinal counting is atomic, so a plan
// replays deterministically for a deterministic operation order.
type Injector struct {
	base FS
	plan Plan

	rngMu sync.Mutex
	rng   *rand.Rand

	writes       atomic.Uint64
	fsyncs       atomic.Uint64
	bytesWritten atomic.Int64
	failedFsync  atomic.Uint64
	enospc       atomic.Uint64
	dropped      atomic.Uint64
}

// NewInjector wraps base with a scripted fault plan.
func NewInjector(base FS, plan Plan) *Injector {
	if base == nil {
		base = OS
	}
	return &Injector{base: base, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// FaultReport implements Reporter.
func (in *Injector) FaultReport() Report {
	return Report{
		Writes:        in.writes.Load(),
		Fsyncs:        in.fsyncs.Load(),
		BytesWritten:  in.bytesWritten.Load(),
		FailedFsyncs:  in.failedFsync.Load(),
		ENOSPCWrites:  in.enospc.Load(),
		DroppedWrites: in.dropped.Load(),
	}
}

func (in *Injector) matches(name string) bool {
	return in.plan.PathContains == "" || strings.Contains(name, in.plan.PathContains)
}

// failFsync decides whether this matching fsync (1-based ordinal n)
// is scripted to fail.
func (in *Injector) failFsync(n uint64) bool {
	if in.plan.FailFsyncAt != 0 && n == in.plan.FailFsyncAt {
		return true
	}
	if in.plan.FailFsyncProb > 0 {
		in.rngMu.Lock()
		hit := in.rng.Float64() < in.plan.FailFsyncProb
		in.rngMu.Unlock()
		return hit
	}
	return false
}

// OpenFile implements FS. Matching files are wrapped so their writes
// and fsyncs run the plan.
func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil || !in.matches(name) {
		return f, err
	}
	return &injFile{File: f, in: in}, nil
}

// Open implements FS. Read-only opens are wrapped too: directory
// fsyncs (snapshot commit) go through Open.
func (in *Injector) Open(name string) (File, error) {
	f, err := in.base.Open(name)
	if err != nil || !in.matches(name) {
		return f, err
	}
	return &injFile{File: f, in: in}, nil
}

// MkdirAll implements FS (passthrough).
func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	return in.base.MkdirAll(path, perm)
}

// ReadDir implements FS (passthrough).
func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return in.base.ReadDir(name) }

// ReadFile implements FS (passthrough).
func (in *Injector) ReadFile(name string) ([]byte, error) { return in.base.ReadFile(name) }

// Rename implements FS (passthrough).
func (in *Injector) Rename(oldpath, newpath string) error { return in.base.Rename(oldpath, newpath) }

// Remove implements FS (passthrough).
func (in *Injector) Remove(name string) error { return in.base.Remove(name) }

// Truncate implements FS (passthrough).
func (in *Injector) Truncate(name string, size int64) error { return in.base.Truncate(name, size) }

// injFile runs the plan on one matching file's writes and fsyncs.
type injFile struct {
	File
	in *Injector
}

// Write implements File: latency, then the drop and ENOSPC scripts,
// then the real write.
func (f *injFile) Write(p []byte) (int, error) {
	in := f.in
	if in.plan.WriteLatency > 0 {
		time.Sleep(in.plan.WriteLatency)
	}
	n := in.writes.Add(1)
	if in.plan.DropWritesAfter != 0 && n > in.plan.DropWritesAfter {
		in.dropped.Add(1)
		return len(p), nil // "success" that never reaches the disk
	}
	if in.plan.ENOSPCAfter > 0 && in.bytesWritten.Load()+int64(len(p)) > in.plan.ENOSPCAfter {
		in.enospc.Add(1)
		return 0, fmt.Errorf("%w: write %s: %w", ErrInjected, f.Name(), syscall.ENOSPC)
	}
	written, err := f.File.Write(p)
	in.bytesWritten.Add(int64(written))
	return written, err
}

// Sync implements File: latency, then the scripted failure (the data
// is NOT flushed on a scripted failure), then the real fsync.
func (f *injFile) Sync() error {
	in := f.in
	if in.plan.FsyncLatency > 0 {
		time.Sleep(in.plan.FsyncLatency)
	}
	n := in.fsyncs.Add(1)
	if in.failFsync(n) {
		in.failedFsync.Add(1)
		return fmt.Errorf("%w: fsync %d on %s: %w", ErrInjected, n, f.Name(), syscall.EIO)
	}
	return f.File.Sync()
}
