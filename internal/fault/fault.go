// Package fault is the filesystem seam of the storage layer and the
// deterministic fault-injection harness built on it. internal/storage
// performs every file operation through a fault.FS, so the same journal
// and snapshot code runs against the real OS in production (fault.OS)
// and against a scripted Injector in chaos runs — failing the Nth
// fsync, returning ENOSPC once a byte budget is spent, silently
// dropping writes, or adding latency — without a single test-only hook
// in the storage code itself.
//
// The package deliberately has no dependencies beyond the standard
// library: it sits below storage in the import graph.
package fault

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the storage layer uses. Injector
// wraps it; OS returns *os.File values directly (they satisfy the
// interface).
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file to stable storage.
	Sync() error
}

// FS is the filesystem surface the storage layer operates through.
// Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile opens a file with the given flags and permissions.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// MkdirAll creates a directory path.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate resizes a file by path.
	Truncate(name string, size int64) error
}

// osFS is the passthrough production filesystem.
type osFS struct{}

// OS is the real filesystem: every call forwards to package os.
var OS FS = osFS{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
