package task

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bpms/internal/resource"
)

// checkConsistency verifies every secondary index against a
// ground-truth scan of the stripe item maps: the per-user
// allocated/started and offered sets, the per-state sets, the
// due-time heaps, and the cross-stripe load counters must all agree
// with the items themselves.
func checkConsistency(t *testing.T, svc *Service) {
	t.Helper()
	type flat struct {
		it     *Item
		stripe int
	}
	all := map[string]flat{}
	wantLoads := map[string]int{}
	for si, st := range svc.stripes {
		st.mu.Lock()
		for id, it := range st.items {
			all[id] = flat{it.clone(), si}
			if (it.State == Allocated || it.State == Started) && it.Assignee != "" {
				wantLoads[it.Assignee]++
			}
		}
		// byUser: exactly the allocated/started items of each user.
		seen := map[string]string{} // item -> user
		for user, set := range st.byUser {
			if len(set) == 0 {
				t.Errorf("stripe %d: empty byUser entry for %s", si, user)
			}
			for id := range set {
				it, ok := st.items[id]
				if !ok {
					t.Errorf("stripe %d: byUser[%s] holds unknown item %s", si, user, id)
					continue
				}
				if it.Assignee != user || (it.State != Allocated && it.State != Started) {
					t.Errorf("stripe %d: byUser[%s] holds %s (state %s, assignee %q)", si, user, id, it.State, it.Assignee)
				}
				seen[id] = user
			}
		}
		for id, it := range st.items {
			if (it.State == Allocated || it.State == Started) && it.Assignee != "" {
				if seen[id] != it.Assignee {
					t.Errorf("stripe %d: item %s (assignee %s) missing from byUser", si, id, it.Assignee)
				}
			}
		}
		// offered: exactly the Offered items, per OfferedTo user.
		offeredSeen := map[string]int{}
		for user, set := range st.offered {
			if len(set) == 0 {
				t.Errorf("stripe %d: empty offered entry for %s", si, user)
			}
			for id := range set {
				it, ok := st.items[id]
				if !ok || it.State != Offered {
					t.Errorf("stripe %d: offered[%s] holds non-offered item %s", si, user, id)
					continue
				}
				found := false
				for _, uid := range it.OfferedTo {
					if uid == user {
						found = true
					}
				}
				if !found {
					t.Errorf("stripe %d: offered[%s] holds %s not offered to them", si, user, id)
				}
				offeredSeen[id]++
			}
		}
		for id, it := range st.items {
			if it.State == Offered && offeredSeen[id] != len(it.OfferedTo) {
				t.Errorf("stripe %d: offered index has %d entries for %s, want %d", si, offeredSeen[id], id, len(it.OfferedTo))
			}
		}
		// byState: an exact partition of the stripe's items.
		total := 0
		for state, set := range st.byState {
			total += len(set)
			for id := range set {
				it, ok := st.items[id]
				if !ok || it.State != State(state) {
					t.Errorf("stripe %d: byState[%s] holds %s (actual %v)", si, State(state), id, it)
				}
			}
		}
		if total != len(st.items) {
			t.Errorf("stripe %d: byState indexes %d items, stripe holds %d", si, total, len(st.items))
		}
		// due heap: entries reference live items with that deadline, at
		// most one entry per item, and every OPEN item with a deadline
		// is present (closed items may linger until lazily popped).
		dueIDs := map[string]bool{}
		for _, e := range st.due {
			it, ok := st.items[e.id]
			if !ok || !it.DueAt.Equal(e.at) {
				t.Errorf("stripe %d: due entry %s@%v does not match its item", si, e.id, e.at)
			}
			if dueIDs[e.id] {
				t.Errorf("stripe %d: duplicate due entry for %s", si, e.id)
			}
			dueIDs[e.id] = true
		}
		for id, it := range st.items {
			if !it.State.Terminal() && !it.DueAt.IsZero() && !dueIDs[id] {
				t.Errorf("stripe %d: open item %s with deadline missing from due heap", si, id)
			}
		}
		st.mu.Unlock()
	}
	// Load counters match the ground truth exactly.
	svc.loadMu.RLock()
	for user, n := range svc.loads {
		if wantLoads[user] != n {
			t.Errorf("loads[%s] = %d, ground truth %d", user, n, wantLoads[user])
		}
	}
	for user, n := range wantLoads {
		if svc.loads[user] != n {
			t.Errorf("loads[%s] missing (ground truth %d)", user, n)
		}
	}
	svc.loadMu.RUnlock()

	// Query answers match brute-force scans over the ground truth.
	bruteOverdue := func(now time.Time) map[string]bool {
		out := map[string]bool{}
		for id, f := range all {
			if !f.it.State.Terminal() && !f.it.DueAt.IsZero() && f.it.DueAt.Before(now) {
				out[id] = true
			}
		}
		return out
	}
	for _, now := range []time.Time{base, base.Add(30 * time.Minute), base.Add(24 * time.Hour)} {
		want := bruteOverdue(now)
		got := svc.Overdue(now)
		if len(got) != len(want) {
			t.Errorf("Overdue(%v) = %d items, brute force %d", now, len(got), len(want))
		}
		for _, it := range got {
			if !want[it.ID] {
				t.Errorf("Overdue(%v) returned %s, not overdue", now, it.ID)
			}
		}
	}
	for state := Created; state <= Cancelled; state++ {
		want := 0
		for _, f := range all {
			if f.it.State == state {
				want++
			}
		}
		if got := svc.ByState(state); len(got) != want {
			t.Errorf("ByState(%s) = %d, brute force %d", state, len(got), want)
		}
	}
}

// TestIndexConsistencyRandomOps drives a long randomized op sequence
// against an 8-stripe service and then checks every secondary index
// against a ground-truth scan.
func TestIndexConsistencyRandomOps(t *testing.T) {
	users := []string{"alice", "bob", "carol", "dave", "erin"}
	d := resource.NewDirectory()
	for _, u := range users {
		d.AddUser(&resource.User{ID: u, Roles: []string{"clerk"}})
	}
	now := base
	svc := NewService(Config{
		Directory: d,
		Stripes:   8,
		Now:       func() time.Time { return now },
	})
	rng := rand.New(rand.NewSource(13))
	var ids []string
	pick := func() string { return ids[rng.Intn(len(ids))] }
	user := func() string { return users[rng.Intn(len(users))] }
	for op := 0; op < 5000; op++ {
		now = now.Add(time.Duration(rng.Intn(1000)) * time.Millisecond)
		if len(ids) == 0 || rng.Intn(10) < 3 {
			spec := Spec{InstanceID: "i", ElementID: fmt.Sprintf("e%d", op), Priority: rng.Intn(5)}
			switch rng.Intn(3) {
			case 0:
				spec.Assignee = user()
			case 1:
				spec.Role = "clerk"
			}
			if rng.Intn(2) == 0 {
				spec.Due = time.Duration(1+rng.Intn(120)) * time.Minute
			}
			it, err := svc.Create(spec)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, it.ID)
			continue
		}
		id := pick()
		switch rng.Intn(8) {
		case 0:
			svc.Claim(id, user())
		case 1:
			if it, err := svc.Get(id); err == nil {
				svc.Start(id, it.Assignee)
			}
		case 2:
			if it, err := svc.Get(id); err == nil {
				svc.Complete(id, it.Assignee, nil)
			}
		case 3:
			if it, err := svc.Get(id); err == nil {
				svc.Fail(id, it.Assignee, "nope")
			}
		case 4:
			svc.Skip(id, "skipped")
		case 5:
			svc.Cancel(id, "cancelled")
		case 6:
			if it, err := svc.Get(id); err == nil {
				svc.Delegate(id, it.Assignee, user())
			}
		case 7:
			if it, err := svc.Get(id); err == nil {
				svc.Release(id, it.Assignee)
			}
		}
	}
	checkConsistency(t, svc)
}

// TestStripedConcurrent hammers an 8-stripe service with parallel
// writers (full lifecycles, delegations, releases) and readers
// (Worklist, OfferedItems, ByState, Overdue, Load, Stats) under
// -race, then checks index consistency and final counts.
func TestStripedConcurrent(t *testing.T) {
	const (
		workers = 8
		per     = 200
	)
	d := resource.NewDirectory()
	for w := 0; w < workers; w++ {
		d.AddUser(&resource.User{ID: fmt.Sprintf("w%d", w), Roles: []string{"crew"}})
	}
	svc := NewService(Config{Directory: d, Stripes: 8})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers poll every surface concurrently with the writers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			user := fmt.Sprintf("w%d", r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				svc.Worklist(user)
				svc.OfferedItems(user)
				svc.ByState(Started)
				svc.Overdue(time.Now())
				svc.Load(user)
				svc.Stats()
			}
		}(r)
	}
	errc := make(chan error, workers)
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			me := fmt.Sprintf("w%d", w)
			peer := fmt.Sprintf("w%d", (w+1)%workers)
			for i := 0; i < per; i++ {
				it, err := svc.Create(Spec{
					InstanceID: "i", ElementID: "e", Assignee: me,
					Priority: i % 5, Due: time.Hour,
				})
				if err != nil {
					errc <- err
					return
				}
				switch i % 4 {
				case 0: // plain lifecycle
					_, err = svc.Start(it.ID, me)
					if err == nil {
						_, err = svc.Complete(it.ID, me, nil)
					}
				case 1: // delegate, peer completes
					_, err = svc.Delegate(it.ID, me, peer)
					if err == nil {
						if _, err2 := svc.Start(it.ID, peer); err2 == nil {
							svc.Complete(it.ID, peer, nil)
						}
					}
				case 2: // cancel
					_, err = svc.Cancel(it.ID, "test")
				case 3: // fail
					_, err = svc.Start(it.ID, me)
					if err == nil {
						_, err = svc.Fail(it.ID, me, "test")
					}
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	checkConsistency(t, svc)
	st := svc.Stats()
	if st.Items != workers*per {
		t.Errorf("Stats.Items = %d, want %d", st.Items, workers*per)
	}
	// Delegated items may still be open when their delegator raced the
	// peer's completion; everything else is terminal.
	if st.Open > workers*per/4 {
		t.Errorf("Stats.Open = %d, too many open items", st.Open)
	}
	if st.Stripes != 8 || len(st.PerStripe) != 8 {
		t.Errorf("Stats stripes = %d/%d", st.Stripes, len(st.PerStripe))
	}
}

// TestDelegateReleaseCrossUser verifies the per-user indexes and load
// counters move with the item on delegation and release.
func TestDelegateReleaseCrossUser(t *testing.T) {
	svc, _, _ := newService(t, false)
	it, err := svc.Create(Spec{InstanceID: "i1", ElementID: "t", Role: "clerk", Due: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Claim(it.ID, "alice"); err != nil {
		t.Fatal(err)
	}
	if svc.Load("alice") != 1 || len(svc.Worklist("alice")) != 1 {
		t.Fatalf("alice queue = %d/%d", svc.Load("alice"), len(svc.Worklist("alice")))
	}
	// Delegate a started item: index entries move alice -> bob.
	if _, err := svc.Start(it.ID, "alice"); err != nil {
		t.Fatal(err)
	}
	del, err := svc.Delegate(it.ID, "alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if del.State != Allocated || del.Assignee != "bob" {
		t.Fatalf("delegated = %+v", del)
	}
	if svc.Load("alice") != 0 || svc.Load("bob") != 1 {
		t.Errorf("loads after delegate = %d/%d", svc.Load("alice"), svc.Load("bob"))
	}
	if len(svc.Worklist("alice")) != 0 || len(svc.Worklist("bob")) != 1 {
		t.Errorf("worklists after delegate = %d/%d", len(svc.Worklist("alice")), len(svc.Worklist("bob")))
	}
	// Release from bob: the item returns to both clerks' offered
	// lists, and bob's allocated index entry is gone.
	rel, err := svc.Release(it.ID, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if rel.State != Offered || len(rel.OfferedTo) != 2 {
		t.Fatalf("released = %+v", rel)
	}
	if svc.Load("bob") != 0 || len(svc.Worklist("bob")) != 0 {
		t.Errorf("bob queue after release = %d/%d", svc.Load("bob"), len(svc.Worklist("bob")))
	}
	if len(svc.OfferedItems("alice")) != 1 || len(svc.OfferedItems("bob")) != 1 {
		t.Errorf("offers after release = %d/%d", len(svc.OfferedItems("alice")), len(svc.OfferedItems("bob")))
	}
	// Still overdue-indexed across the moves.
	if got := svc.Overdue(base.Add(2 * time.Hour)); len(got) != 1 {
		t.Errorf("overdue after delegate+release = %d", len(got))
	}
	checkConsistency(t, svc)
}

// TestClaimStarted: only the assignee may claim a started item back
// to Allocated (a self-reset); another user's claim is rejected, so
// in-progress work cannot be seized through Claim.
func TestClaimStarted(t *testing.T) {
	svc, _, _ := newService(t, false)
	it, _ := svc.Create(Spec{InstanceID: "i1", ElementID: "t", Assignee: "alice"})
	svc.Start(it.ID, "alice")
	if _, err := svc.Claim(it.ID, "bob"); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("foreign claim of started item: %v", err)
	}
	got, err := svc.Claim(it.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if got.Assignee != "alice" || got.State != Allocated {
		t.Fatalf("self-claim = %+v", got)
	}
	if svc.Load("alice") != 1 || svc.Load("bob") != 0 {
		t.Errorf("loads = %d/%d", svc.Load("alice"), svc.Load("bob"))
	}
	checkConsistency(t, svc)
}

// TestPagination exercises the limit/offset variants against the
// merged per-stripe order.
func TestPagination(t *testing.T) {
	svc, _, nowPtr := newService(t, false)
	var want []string
	for i := 0; i < 10; i++ {
		it, err := svc.Create(Spec{
			InstanceID: "i", ElementID: fmt.Sprintf("e%d", i),
			Assignee: "alice", Priority: 9 - i,
		})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, it.ID) // descending priority = worklist order
		*nowPtr = nowPtr.Add(time.Second)
	}
	full := svc.WorklistPage("alice", 0, -1)
	if len(full) != 10 {
		t.Fatalf("full page = %d", len(full))
	}
	for i, it := range full {
		if it.ID != want[i] {
			t.Fatalf("order[%d] = %s, want %s", i, it.ID, want[i])
		}
	}
	page := svc.WorklistPage("alice", 3, 4)
	if len(page) != 4 || page[0].ID != want[3] || page[3].ID != want[6] {
		t.Errorf("page(3,4) = %v", page)
	}
	if got := svc.WorklistPage("alice", 8, 5); len(got) != 2 {
		t.Errorf("tail page = %d", len(got))
	}
	if got := svc.WorklistPage("alice", 20, 5); len(got) != 0 {
		t.Errorf("past-end page = %d", len(got))
	}
	if got := svc.ByStatePage(Allocated, 0, 3); len(got) != 3 || got[0].ID != want[0] {
		t.Errorf("ByStatePage = %v", got)
	}
	if got := svc.ByStatePage(Allocated, 0, 0); len(got) != 0 {
		t.Errorf("zero limit = %d", len(got))
	}
}

// TestAsyncNotify: the bounded async notifier delivers every
// transition, in per-item order, by Close.
func TestAsyncNotify(t *testing.T) {
	d := resource.NewDirectory()
	d.AddUser(&resource.User{ID: "alice", Roles: []string{"clerk"}})
	svc := NewService(Config{Directory: d, Stripes: 4, AsyncNotify: true, NotifyQueue: 8})
	var mu sync.Mutex
	got := map[string][]State{}
	svc.Subscribe(func(it *Item, from, to State) {
		// A deliberately slow listener: transitions must not block on
		// it beyond queue backpressure.
		time.Sleep(100 * time.Microsecond)
		mu.Lock()
		got[it.ID] = append(got[it.ID], to)
		mu.Unlock()
	})
	const n = 50
	for i := 0; i < n; i++ {
		it, err := svc.Create(Spec{InstanceID: "i", ElementID: "e", Role: "clerk"})
		if err != nil {
			t.Fatal(err)
		}
		svc.Claim(it.ID, "alice")
		svc.Start(it.ID, "alice")
		svc.Complete(it.ID, "alice", nil)
	}
	svc.Close()
	svc.Close() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("notified for %d items, want %d", len(got), n)
	}
	want := []State{Created, Offered, Allocated, Started, Completed}
	for id, seq := range got {
		if len(seq) != len(want) {
			t.Fatalf("item %s transitions = %v", id, seq)
		}
		for i := range want {
			if seq[i] != want[i] {
				t.Fatalf("item %s transitions = %v, want %v", id, seq, want)
			}
		}
	}
}

// TestStateRoundTrip covers ParseState against every name.
func TestStateRoundTrip(t *testing.T) {
	for s := Created; s <= Cancelled; s++ {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Errorf("ParseState(%s) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseState("bogus"); err == nil {
		t.Error("ParseState(bogus) should fail")
	}
}
