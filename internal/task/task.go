// Package task implements the worklist subsystem of the BPMS: human
// work items with the standard lifecycle (created → offered →
// allocated → started → completed/failed/skipped), per-user worklists,
// delegation, deadlines, and pluggable allocation via the resource
// package. The engine creates an item when a user task is activated
// and resumes the process instance from the completion callback.
package task

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bpms/internal/resource"
)

// State is a work-item lifecycle state.
type State int

// Work-item states.
const (
	Created State = iota
	Offered
	Allocated
	Started
	Completed
	Failed
	Skipped
	Cancelled
)

var stateNames = [...]string{
	"created", "offered", "allocated", "started",
	"completed", "failed", "skipped", "cancelled",
}

// String returns the lower-case state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// MarshalJSON encodes the state as its name.
func (s State) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a state name.
func (s *State) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for i, n := range stateNames {
		if n == name {
			*s = State(i)
			return nil
		}
	}
	return fmt.Errorf("task: unknown state %q", name)
}

// Terminal reports whether no further transitions are allowed.
func (s State) Terminal() bool {
	switch s {
	case Completed, Failed, Skipped, Cancelled:
		return true
	}
	return false
}

// legal transitions of the work-item state machine.
var transitions = map[State][]State{
	Created:   {Offered, Allocated, Cancelled, Skipped},
	Offered:   {Allocated, Cancelled, Skipped},
	Allocated: {Started, Offered, Cancelled, Skipped},
	Started:   {Completed, Failed, Allocated, Cancelled},
}

func canTransition(from, to State) bool {
	for _, s := range transitions[from] {
		if s == to {
			return true
		}
	}
	return false
}

// Errors returned by the service.
var (
	ErrNotFound      = errors.New("task: work item not found")
	ErrBadTransition = errors.New("task: illegal lifecycle transition")
	ErrNotAuthorized = errors.New("task: user not authorized for item")
)

// Item is one human work item.
type Item struct {
	ID         string         `json:"id"`
	ProcessID  string         `json:"processId"`
	InstanceID string         `json:"instanceId"`
	ElementID  string         `json:"elementId"`
	Name       string         `json:"name,omitempty"`
	State      State          `json:"state"`
	Role       string         `json:"role,omitempty"`
	Capability string         `json:"capability,omitempty"`
	Assignee   string         `json:"assignee,omitempty"` // current owner
	OfferedTo  []string       `json:"offeredTo,omitempty"`
	Priority   int            `json:"priority,omitempty"`
	Data       map[string]any `json:"data,omitempty"`    // input payload
	Outcome    map[string]any `json:"outcome,omitempty"` // completion payload
	Reason     string         `json:"reason,omitempty"`  // failure/skip reason

	CreatedAt   time.Time `json:"createdAt"`
	DueAt       time.Time `json:"dueAt,omitempty"`
	AllocatedAt time.Time `json:"allocatedAt,omitempty"`
	StartedAt   time.Time `json:"startedAt,omitempty"`
	ClosedAt    time.Time `json:"closedAt,omitempty"`
}

func (it *Item) clone() *Item {
	cp := *it
	cp.OfferedTo = append([]string(nil), it.OfferedTo...)
	return &cp
}

// Spec describes a work item to create.
type Spec struct {
	ProcessID  string
	InstanceID string
	ElementID  string
	Name       string
	Role       string
	Assignee   string // direct allocation when set
	Capability string
	Priority   int
	Due        time.Duration // 0 = no deadline
	Data       map[string]any
}

// Listener observes lifecycle transitions. from==to==Created for the
// initial creation event. Listeners run synchronously under no lock.
type Listener func(item *Item, from, to State)

// Service is the worklist manager.
type Service struct {
	mu        sync.Mutex
	items     map[string]*Item
	byUser    map[string]map[string]bool // user -> item IDs allocated/started
	offered   map[string]map[string]bool // user -> item IDs offered
	nextID    uint64
	directory *resource.Directory
	policy    resource.Policy
	autoAlloc bool
	now       func() time.Time
	listeners []Listener
}

// Config configures a Service.
type Config struct {
	// Directory resolves roles to users (required for role routing).
	Directory *resource.Directory
	// Policy picks a user when AutoAllocate is set (default
	// shortest-queue).
	Policy resource.Policy
	// AutoAllocate pushes role-routed items straight to a user chosen
	// by Policy instead of offering them for pull-style claiming.
	AutoAllocate bool
	// Now supplies timestamps (default time.Now).
	Now func() time.Time
}

// NewService creates a worklist service.
func NewService(cfg Config) *Service {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Policy == nil {
		cfg.Policy = resource.ShortestQueuePolicy{}
	}
	if cfg.Directory == nil {
		cfg.Directory = resource.NewDirectory()
	}
	return &Service{
		items:     map[string]*Item{},
		byUser:    map[string]map[string]bool{},
		offered:   map[string]map[string]bool{},
		directory: cfg.Directory,
		policy:    cfg.Policy,
		autoAlloc: cfg.AutoAllocate,
		now:       cfg.Now,
	}
}

// Subscribe registers a lifecycle listener.
func (s *Service) Subscribe(l Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, l)
}

func (s *Service) notify(item *Item, from, to State) {
	// Snapshot under the lock: the sharded runtime subscribes several
	// engines concurrently (parallel shard recovery) while transitions
	// already flow.
	s.mu.Lock()
	ls := append([]Listener(nil), s.listeners...)
	s.mu.Unlock()
	for _, l := range ls {
		l(item, from, to)
	}
}

// Load returns the queue length (allocated + started) of a user.
func (s *Service) Load(userID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byUser[userID])
}

func (s *Service) loadLocked(userID string) int { return len(s.byUser[userID]) }

// Create registers a new work item and routes it: direct assignees are
// allocated immediately; role-routed items are offered to the role's
// members (or auto-allocated when configured); unrouted items stay
// Created for explicit allocation.
func (s *Service) Create(spec Spec) (*Item, error) {
	s.mu.Lock()
	s.nextID++
	now := s.now()
	it := &Item{
		ID:         fmt.Sprintf("wi-%d", s.nextID),
		ProcessID:  spec.ProcessID,
		InstanceID: spec.InstanceID,
		ElementID:  spec.ElementID,
		Name:       spec.Name,
		State:      Created,
		Role:       spec.Role,
		Capability: spec.Capability,
		Priority:   spec.Priority,
		Data:       spec.Data,
		CreatedAt:  now,
	}
	if spec.Due > 0 {
		it.DueAt = now.Add(spec.Due)
	}
	s.items[it.ID] = it
	created := it.clone()

	var events []func()
	events = append(events, func() { s.notify(created, Created, Created) })

	switch {
	case spec.Assignee != "":
		s.allocateLocked(it, spec.Assignee, &events)
	case spec.Role != "":
		candidates := s.candidatesLocked(it)
		if s.autoAlloc {
			if u := s.policy.Pick(candidates, s.loadLocked); u != nil {
				s.allocateLocked(it, u.ID, &events)
			} else {
				s.offerLocked(it, candidates, &events)
			}
		} else {
			s.offerLocked(it, candidates, &events)
		}
	}
	s.mu.Unlock()
	for _, fn := range events {
		fn()
	}
	return s.Get(it.ID)
}

func (s *Service) candidatesLocked(it *Item) []*resource.User {
	users := s.directory.UsersInRole(it.Role)
	if it.Capability == "" {
		return users
	}
	var out []*resource.User
	for _, u := range users {
		if u.HasCapability(it.Capability) {
			out = append(out, u)
		}
	}
	return out
}

func (s *Service) offerLocked(it *Item, candidates []*resource.User, events *[]func()) {
	from := it.State
	it.State = Offered
	it.OfferedTo = it.OfferedTo[:0]
	for _, u := range candidates {
		it.OfferedTo = append(it.OfferedTo, u.ID)
		if s.offered[u.ID] == nil {
			s.offered[u.ID] = map[string]bool{}
		}
		s.offered[u.ID][it.ID] = true
	}
	snap := it.clone()
	*events = append(*events, func() { s.notify(snap, from, Offered) })
}

func (s *Service) allocateLocked(it *Item, userID string, events *[]func()) {
	from := it.State
	s.clearOffersLocked(it)
	it.State = Allocated
	it.Assignee = userID
	it.AllocatedAt = s.now()
	if s.byUser[userID] == nil {
		s.byUser[userID] = map[string]bool{}
	}
	s.byUser[userID][it.ID] = true
	snap := it.clone()
	*events = append(*events, func() { s.notify(snap, from, Allocated) })
}

func (s *Service) clearOffersLocked(it *Item) {
	for _, uid := range it.OfferedTo {
		delete(s.offered[uid], it.ID)
	}
	it.OfferedTo = nil
}

// Get returns a copy of the work item.
func (s *Service) Get(id string) (*Item, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.items[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return it.clone(), nil
}

// transition applies a guarded state change under the lock and then
// notifies listeners.
func (s *Service) transition(id string, to State, mutate func(*Item) error) (*Item, error) {
	s.mu.Lock()
	it, ok := s.items[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	from := it.State
	if !canTransition(from, to) {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s (item %s)", ErrBadTransition, from, to, id)
	}
	if mutate != nil {
		if err := mutate(it); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	// Bookkeeping common to every transition.
	switch to {
	case Allocated:
		s.clearOffersLocked(it)
		if it.Assignee != "" {
			if s.byUser[it.Assignee] == nil {
				s.byUser[it.Assignee] = map[string]bool{}
			}
			s.byUser[it.Assignee][it.ID] = true
		}
		it.AllocatedAt = s.now()
	case Started:
		it.StartedAt = s.now()
	case Offered:
		// Reoffer (e.g. release): drop from owner queue.
		if it.Assignee != "" {
			delete(s.byUser[it.Assignee], it.ID)
			it.Assignee = ""
		}
	}
	if to.Terminal() {
		s.clearOffersLocked(it)
		if it.Assignee != "" {
			delete(s.byUser[it.Assignee], it.ID)
		}
		it.ClosedAt = s.now()
	}
	it.State = to
	snap := it.clone()
	s.mu.Unlock()
	s.notify(snap, from, to)
	return snap, nil
}

// Claim allocates an offered (or created) item to user. Offered items
// may only be claimed by a user they were offered to.
func (s *Service) Claim(id, userID string) (*Item, error) {
	return s.transition(id, Allocated, func(it *Item) error {
		if it.State == Offered {
			ok := false
			for _, uid := range it.OfferedTo {
				if uid == userID {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("%w: %s not offered %s", ErrNotAuthorized, userID, id)
			}
		}
		it.Assignee = userID
		return nil
	})
}

// Start begins work on an allocated item; only the assignee may start.
func (s *Service) Start(id, userID string) (*Item, error) {
	return s.transition(id, Started, func(it *Item) error {
		if it.Assignee != userID {
			return fmt.Errorf("%w: %s is not the assignee of %s", ErrNotAuthorized, userID, id)
		}
		return nil
	})
}

// Complete finishes a started item with an outcome payload.
func (s *Service) Complete(id, userID string, outcome map[string]any) (*Item, error) {
	return s.transition(id, Completed, func(it *Item) error {
		if it.Assignee != userID {
			return fmt.Errorf("%w: %s is not the assignee of %s", ErrNotAuthorized, userID, id)
		}
		it.Outcome = outcome
		return nil
	})
}

// Fail marks a started item as failed with a reason.
func (s *Service) Fail(id, userID, reason string) (*Item, error) {
	return s.transition(id, Failed, func(it *Item) error {
		if it.Assignee != userID {
			return fmt.Errorf("%w: %s is not the assignee of %s", ErrNotAuthorized, userID, id)
		}
		it.Reason = reason
		return nil
	})
}

// Skip cancels a not-yet-started item, recording a reason.
func (s *Service) Skip(id, reason string) (*Item, error) {
	return s.transition(id, Skipped, func(it *Item) error {
		it.Reason = reason
		return nil
	})
}

// Cancel terminates an item in any non-terminal state (used when the
// owning process instance is cancelled or a boundary event interrupts).
func (s *Service) Cancel(id, reason string) (*Item, error) {
	return s.transition(id, Cancelled, func(it *Item) error {
		it.Reason = reason
		return nil
	})
}

// Delegate moves an allocated item from its assignee to another user.
func (s *Service) Delegate(id, fromUser, toUser string) (*Item, error) {
	s.mu.Lock()
	it, ok := s.items[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if it.State != Allocated && it.State != Started {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: delegate from %s", ErrBadTransition, it.State)
	}
	if it.Assignee != fromUser {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is not the assignee of %s", ErrNotAuthorized, fromUser, id)
	}
	from := it.State
	delete(s.byUser[fromUser], it.ID)
	it.Assignee = toUser
	if s.byUser[toUser] == nil {
		s.byUser[toUser] = map[string]bool{}
	}
	s.byUser[toUser][it.ID] = true
	// Delegation returns a started item to Allocated for the new owner.
	it.State = Allocated
	it.AllocatedAt = s.now()
	snap := it.clone()
	s.mu.Unlock()
	s.notify(snap, from, Allocated)
	return snap, nil
}

// Release returns an allocated item to the offered state so another
// role member can claim it.
func (s *Service) Release(id, userID string) (*Item, error) {
	it, err := s.transition(id, Offered, func(it *Item) error {
		if it.Assignee != userID {
			return fmt.Errorf("%w: %s is not the assignee of %s", ErrNotAuthorized, userID, id)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Rebuild offers for the role.
	s.mu.Lock()
	stored := s.items[id]
	var events []func()
	s.offerLocked(stored, s.candidatesLocked(stored), &events)
	stored.State = Offered
	s.mu.Unlock()
	return it, nil
}

// Worklist returns the items allocated to or started by user, sorted
// by priority (desc) then creation time.
func (s *Service) Worklist(userID string) []*Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Item
	for id := range s.byUser[userID] {
		out = append(out, s.items[id].clone())
	}
	sortItems(out)
	return out
}

// OfferedItems returns the items offered to user.
func (s *Service) OfferedItems(userID string) []*Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Item
	for id := range s.offered[userID] {
		out = append(out, s.items[id].clone())
	}
	sortItems(out)
	return out
}

// ByState returns copies of all items in the given state.
func (s *Service) ByState(state State) []*Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Item
	for _, it := range s.items {
		if it.State == state {
			out = append(out, it.clone())
		}
	}
	sortItems(out)
	return out
}

// Overdue returns open items whose deadline has passed at the given
// time.
func (s *Service) Overdue(now time.Time) []*Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Item
	for _, it := range s.items {
		if !it.State.Terminal() && !it.DueAt.IsZero() && it.DueAt.Before(now) {
			out = append(out, it.clone())
		}
	}
	sortItems(out)
	return out
}

func sortItems(items []*Item) {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Priority != items[b].Priority {
			return items[a].Priority > items[b].Priority
		}
		if !items[a].CreatedAt.Equal(items[b].CreatedAt) {
			return items[a].CreatedAt.Before(items[b].CreatedAt)
		}
		return items[a].ID < items[b].ID
	})
}
