// Package task implements the worklist subsystem of the BPMS: human
// work items with the standard lifecycle (created → offered →
// allocated → started → completed/failed/skipped), per-user worklists,
// delegation, deadlines, and pluggable allocation via the resource
// package. The engine creates an item when a user task is activated
// and resumes the process instance from the completion callback.
//
// The service is a striped concurrent store: items are partitioned
// across N stripes by FNV-1a on the item ID (the same hash family the
// shard router and the history stripes use), each stripe guarded by
// its own mutex and carrying its own secondary indexes — per-user
// allocated/offered sets, a per-state set, and a due-time min-heap —
// so claims and completions on different items proceed in parallel
// and queries (Worklist, ByState, Overdue) read indexes instead of
// scanning the item map. Per-user load counters live outside the item
// stripes, so allocation policies (resource.ShortestQueuePolicy) read
// them without touching any stripe lock.
package task

import (
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bpms/internal/obs"
	"bpms/internal/resource"
)

// State is a work-item lifecycle state.
type State int

// Work-item states.
const (
	Created State = iota
	Offered
	Allocated
	Started
	Completed
	Failed
	Skipped
	Cancelled
)

var stateNames = [...]string{
	"created", "offered", "allocated", "started",
	"completed", "failed", "skipped", "cancelled",
}

// String returns the lower-case state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ParseState resolves a lower-case state name.
func ParseState(name string) (State, error) {
	for i, n := range stateNames {
		if n == name {
			return State(i), nil
		}
	}
	return 0, fmt.Errorf("task: unknown state %q", name)
}

// MarshalJSON encodes the state as its name.
func (s State) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a state name.
func (s *State) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	st, err := ParseState(name)
	if err != nil {
		return err
	}
	*s = st
	return nil
}

// Terminal reports whether no further transitions are allowed.
func (s State) Terminal() bool {
	switch s {
	case Completed, Failed, Skipped, Cancelled:
		return true
	}
	return false
}

// legal transitions of the work-item state machine.
var transitions = map[State][]State{
	Created:   {Offered, Allocated, Cancelled, Skipped},
	Offered:   {Allocated, Cancelled, Skipped},
	Allocated: {Started, Offered, Cancelled, Skipped},
	Started:   {Completed, Failed, Allocated, Cancelled},
}

func canTransition(from, to State) bool {
	for _, s := range transitions[from] {
		if s == to {
			return true
		}
	}
	return false
}

// Errors returned by the service.
var (
	ErrNotFound      = errors.New("task: work item not found")
	ErrBadTransition = errors.New("task: illegal lifecycle transition")
	ErrNotAuthorized = errors.New("task: user not authorized for item")
)

// Item is one human work item.
type Item struct {
	ID         string         `json:"id"`
	ProcessID  string         `json:"processId"`
	InstanceID string         `json:"instanceId"`
	ElementID  string         `json:"elementId"`
	Name       string         `json:"name,omitempty"`
	State      State          `json:"state"`
	Role       string         `json:"role,omitempty"`
	Capability string         `json:"capability,omitempty"`
	Assignee   string         `json:"assignee,omitempty"` // current owner
	OfferedTo  []string       `json:"offeredTo,omitempty"`
	Priority   int            `json:"priority,omitempty"`
	Data       map[string]any `json:"data,omitempty"`    // input payload
	Outcome    map[string]any `json:"outcome,omitempty"` // completion payload
	Reason     string         `json:"reason,omitempty"`  // failure/skip reason

	CreatedAt   time.Time `json:"createdAt"`
	DueAt       time.Time `json:"dueAt,omitempty"`
	AllocatedAt time.Time `json:"allocatedAt,omitempty"`
	StartedAt   time.Time `json:"startedAt,omitempty"`
	ClosedAt    time.Time `json:"closedAt,omitempty"`
}

func (it *Item) clone() *Item {
	cp := *it
	cp.OfferedTo = append([]string(nil), it.OfferedTo...)
	return &cp
}

// Spec describes a work item to create.
type Spec struct {
	ProcessID  string
	InstanceID string
	ElementID  string
	Name       string
	Role       string
	Assignee   string // direct allocation when set
	Capability string
	Priority   int
	Due        time.Duration // 0 = no deadline
	Data       map[string]any
}

// Listener observes lifecycle transitions. from==to==Created for the
// initial creation event. Listeners run under no lock: on the
// transitioning goroutine by default, or on the notifier goroutine
// with Config.AsyncNotify.
type Listener func(item *Item, from, to State)

// notification is one queued listener dispatch.
type notification struct {
	item     *Item
	from, to State
}

// dueEntry is one deadline-index record. Entries are removed lazily:
// a surfaced entry whose item has closed is dropped instead of
// re-pushed (mirroring timer.HeapService's lazy cancellation).
type dueEntry struct {
	at time.Time
	id string
}

type dueHeap []dueEntry

func (h dueHeap) Len() int { return len(h) }
func (h dueHeap) Less(a, b int) bool {
	if !h[a].at.Equal(h[b].at) {
		return h[a].at.Before(h[b].at)
	}
	return h[a].id < h[b].id
}
func (h dueHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *dueHeap) Push(x any)   { *h = append(*h, x.(dueEntry)) }
func (h *dueHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// stripe is one lock-striped partition of the item store with its own
// secondary indexes. All fields are guarded by mu.
type stripe struct {
	mu      sync.Mutex
	items   map[string]*Item
	byUser  map[string]map[string]bool       // user -> item IDs allocated/started
	offered map[string]map[string]bool       // user -> item IDs offered
	byState [len(stateNames)]map[string]bool // state -> item IDs
	due     dueHeap                          // open items with deadlines
}

func newStripe() *stripe {
	st := &stripe{
		items:   map[string]*Item{},
		byUser:  map[string]map[string]bool{},
		offered: map[string]map[string]bool{},
	}
	for i := range st.byState {
		st.byState[i] = map[string]bool{}
	}
	return st
}

// Service is the worklist manager.
type Service struct {
	stripes []*stripe
	nextID  atomic.Uint64

	directory *resource.Directory
	policy    resource.Policy
	autoAlloc bool
	now       func() time.Time

	// defaultSLA is the due time applied to items created without an
	// explicit deadline, so the audit sweeper's due-heap walk covers
	// them (0 = none).
	defaultSLA time.Duration
	// opHist holds one pre-resolved latency histogram per operation
	// (index = target State; opCreate covers Create). Nil entries when
	// uninstrumented.
	opHist   [len(stateNames)]*obs.Histogram
	opCreate *obs.Histogram

	// listeners is copy-on-write: Subscribe (rare) copies under subMu,
	// notify (hot) loads the pointer with no lock and no allocation.
	subMu     sync.Mutex
	listeners atomic.Pointer[[]Listener]

	// loads counts allocated+started items per user across all
	// stripes. It has its own (leaf) lock so Load — and through it the
	// allocation policies — never touches an item-stripe lock.
	loadMu sync.RWMutex
	loads  map[string]int

	notifyCh   chan notification
	notifyDone chan struct{}
	closed     atomic.Bool
}

// Config configures a Service.
type Config struct {
	// Directory resolves roles to users (required for role routing).
	Directory *resource.Directory
	// Policy picks a user when AutoAllocate is set (default
	// shortest-queue).
	Policy resource.Policy
	// AutoAllocate pushes role-routed items straight to a user chosen
	// by Policy instead of offering them for pull-style claiming.
	AutoAllocate bool
	// Now supplies timestamps (default time.Now).
	Now func() time.Time
	// Stripes partitions items across this many independently locked
	// stripes (default 1). Queries merge per-stripe results, so any
	// stripe count answers identically; more stripes admit more
	// concurrent claims/completions on multi-core hosts.
	Stripes int
	// AsyncNotify dispatches lifecycle listeners from a dedicated
	// notifier goroutine through a bounded queue, so transitions never
	// block on a slow subscriber (a full queue applies backpressure —
	// events are never dropped). Callers owning an async service must
	// Close it. Default synchronous: listeners run on the
	// transitioning goroutine before the operation returns.
	AsyncNotify bool
	// NotifyQueue bounds the async notifier queue (default 1024).
	NotifyQueue int
	// DefaultSLA applies a due time of now+DefaultSLA to items created
	// without an explicit deadline (0 = items without a dueIn carry no
	// deadline). Because it lands on the due-time heap, the SLA audit
	// sweep stays O(overdue).
	DefaultSLA time.Duration
	// Metrics instruments operation latency (zero value =
	// uninstrumented).
	Metrics obs.TaskMetrics
}

// NewService creates a worklist service.
func NewService(cfg Config) *Service {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Policy == nil {
		cfg.Policy = resource.ShortestQueuePolicy{}
	}
	if cfg.Directory == nil {
		cfg.Directory = resource.NewDirectory()
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 1
	}
	s := &Service{
		stripes:    make([]*stripe, cfg.Stripes),
		directory:  cfg.Directory,
		policy:     cfg.Policy,
		autoAlloc:  cfg.AutoAllocate,
		now:        cfg.Now,
		defaultSLA: cfg.DefaultSLA,
		loads:      map[string]int{},
	}
	if cfg.Metrics.Op != nil {
		s.opCreate = cfg.Metrics.Op("create")
		for i, name := range stateNames {
			s.opHist[i] = cfg.Metrics.Op(name)
		}
	}
	for i := range s.stripes {
		s.stripes[i] = newStripe()
	}
	if cfg.AsyncNotify {
		if cfg.NotifyQueue <= 0 {
			cfg.NotifyQueue = 1024
		}
		s.notifyCh = make(chan notification, cfg.NotifyQueue)
		s.notifyDone = make(chan struct{})
		go s.dispatch()
	}
	return s
}

// stripeFor hashes an item ID to its stripe (inlined FNV-1a: the hot
// paths must not allocate a hasher per operation).
func (s *Service) stripeFor(id string) *stripe {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return s.stripes[h%uint32(len(s.stripes))]
}

// Stripes returns the stripe count.
func (s *Service) Stripes() int { return len(s.stripes) }

// Subscribe registers a lifecycle listener (copy-on-write: concurrent
// transitions keep dispatching the previous set unblocked).
func (s *Service) Subscribe(l Listener) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	var old []Listener
	if p := s.listeners.Load(); p != nil {
		old = *p
	}
	next := make([]Listener, len(old)+1)
	copy(next, old)
	next[len(old)] = l
	s.listeners.Store(&next)
}

func (s *Service) notify(item *Item, from, to State) {
	if s.notifyCh != nil {
		s.notifyCh <- notification{item, from, to}
		return
	}
	s.deliver(item, from, to)
}

func (s *Service) deliver(item *Item, from, to State) {
	p := s.listeners.Load()
	if p == nil {
		return
	}
	for _, l := range *p {
		l(item, from, to)
	}
}

// dispatch drains the async notifier queue.
func (s *Service) dispatch() {
	for n := range s.notifyCh {
		s.deliver(n.item, n.from, n.to)
	}
	close(s.notifyDone)
}

// Close drains and stops the async notifier: every notification
// enqueued before the call is delivered on return. A no-op for
// synchronous services; callers must not issue operations after (or
// concurrently with) Close.
func (s *Service) Close() {
	if s.notifyCh == nil || !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.notifyCh)
	<-s.notifyDone
}

// NotifyBacklog reports the queued async notifications (0 when
// synchronous).
func (s *Service) NotifyBacklog() int { return len(s.notifyCh) }

// Load returns the queue length (allocated + started) of a user. It
// reads the dedicated load index — no item-stripe lock is taken, so
// allocation policies may call it from inside Create.
func (s *Service) Load(userID string) int {
	s.loadMu.RLock()
	defer s.loadMu.RUnlock()
	return s.loads[userID]
}

func (s *Service) addLoad(userID string, delta int) {
	s.loadMu.Lock()
	n := s.loads[userID] + delta
	if n <= 0 {
		delete(s.loads, userID)
	} else {
		s.loads[userID] = n
	}
	s.loadMu.Unlock()
}

// userAddLocked inserts an item into a user's allocated/started index
// and bumps the load counter on first insertion.
func (s *Service) userAddLocked(st *stripe, userID, itemID string) {
	set := st.byUser[userID]
	if set == nil {
		set = map[string]bool{}
		st.byUser[userID] = set
	}
	if !set[itemID] {
		set[itemID] = true
		s.addLoad(userID, 1)
	}
}

// userRemoveLocked is the inverse of userAddLocked.
func (s *Service) userRemoveLocked(st *stripe, userID, itemID string) {
	set := st.byUser[userID]
	if set != nil && set[itemID] {
		delete(set, itemID)
		if len(set) == 0 {
			delete(st.byUser, userID)
		}
		s.addLoad(userID, -1)
	}
}

// setStateLocked moves an item between per-state index sets.
func (st *stripe) setStateLocked(it *Item, to State) {
	delete(st.byState[it.State], it.ID)
	it.State = to
	st.byState[to][it.ID] = true
}

// Create registers a new work item and routes it: direct assignees are
// allocated immediately; role-routed items are offered to the role's
// members (or auto-allocated when configured); unrouted items stay
// Created for explicit allocation.
func (s *Service) Create(spec Spec) (*Item, error) {
	t0 := s.opCreate.Start()
	defer s.opCreate.Since(t0)
	id := fmt.Sprintf("wi-%d", s.nextID.Add(1))
	st := s.stripeFor(id)
	st.mu.Lock()
	now := s.now()
	it := &Item{
		ID:         id,
		ProcessID:  spec.ProcessID,
		InstanceID: spec.InstanceID,
		ElementID:  spec.ElementID,
		Name:       spec.Name,
		State:      Created,
		Role:       spec.Role,
		Capability: spec.Capability,
		Priority:   spec.Priority,
		Data:       spec.Data,
		CreatedAt:  now,
	}
	due := spec.Due
	if due <= 0 && s.defaultSLA > 0 {
		due = s.defaultSLA
	}
	if due > 0 {
		it.DueAt = now.Add(due)
		heap.Push(&st.due, dueEntry{at: it.DueAt, id: id})
	}
	st.items[id] = it
	st.byState[Created][id] = true

	events := []notification{{it.clone(), Created, Created}}
	switch {
	case spec.Assignee != "":
		s.allocateLocked(st, it, spec.Assignee, &events)
	case spec.Role != "":
		candidates := s.candidates(it)
		if s.autoAlloc {
			// Load reads the dedicated counters, not the stripe locks,
			// so the policy runs safely inside this critical section.
			if u := s.policy.Pick(candidates, s.Load); u != nil {
				s.allocateLocked(st, it, u.ID, &events)
			} else {
				s.offerLocked(st, it, candidates, &events)
			}
		} else {
			s.offerLocked(st, it, candidates, &events)
		}
	}
	st.mu.Unlock()
	for _, n := range events {
		s.notify(n.item, n.from, n.to)
	}
	return s.Get(id)
}

// candidates resolves an item's role members, capability-filtered. The
// directory has its own lock; no stripe lock is required.
func (s *Service) candidates(it *Item) []*resource.User {
	users := s.directory.UsersInRole(it.Role)
	if it.Capability == "" {
		return users
	}
	var out []*resource.User
	for _, u := range users {
		if u.HasCapability(it.Capability) {
			out = append(out, u)
		}
	}
	return out
}

func (s *Service) offerLocked(st *stripe, it *Item, candidates []*resource.User, events *[]notification) {
	from := it.State
	st.setStateLocked(it, Offered)
	it.OfferedTo = it.OfferedTo[:0]
	for _, u := range candidates {
		it.OfferedTo = append(it.OfferedTo, u.ID)
		if st.offered[u.ID] == nil {
			st.offered[u.ID] = map[string]bool{}
		}
		st.offered[u.ID][it.ID] = true
	}
	*events = append(*events, notification{it.clone(), from, Offered})
}

func (s *Service) allocateLocked(st *stripe, it *Item, userID string, events *[]notification) {
	from := it.State
	clearOffersLocked(st, it)
	st.setStateLocked(it, Allocated)
	it.Assignee = userID
	it.AllocatedAt = s.now()
	s.userAddLocked(st, userID, it.ID)
	*events = append(*events, notification{it.clone(), from, Allocated})
}

func clearOffersLocked(st *stripe, it *Item) {
	for _, uid := range it.OfferedTo {
		if set := st.offered[uid]; set != nil {
			delete(set, it.ID)
			if len(set) == 0 {
				delete(st.offered, uid)
			}
		}
	}
	it.OfferedTo = nil
}

// Get returns a copy of the work item.
func (s *Service) Get(id string) (*Item, error) {
	st := s.stripeFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, ok := st.items[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return it.clone(), nil
}

// transition applies a guarded state change under the item's stripe
// lock and then notifies listeners.
func (s *Service) transition(id string, to State, mutate func(*Item) error) (*Item, error) {
	var h *obs.Histogram
	if int(to) < len(s.opHist) {
		h = s.opHist[to]
	}
	t0 := h.Start()
	defer h.Since(t0)
	st := s.stripeFor(id)
	st.mu.Lock()
	it, ok := st.items[id]
	if !ok {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	from := it.State
	if !canTransition(from, to) {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s (item %s)", ErrBadTransition, from, to, id)
	}
	prevAssignee := it.Assignee
	if mutate != nil {
		if err := mutate(it); err != nil {
			st.mu.Unlock()
			return nil, err
		}
	}
	// Bookkeeping common to every transition. (The Allocated→Offered
	// reoffer path lives in Release, which owns its index moves and
	// the offer rebuild in one critical section.)
	switch to {
	case Allocated:
		clearOffersLocked(st, it)
		// A mutate hook may have changed the assignee: migrate the
		// per-user index with it so the item never sits on two queues.
		if prevAssignee != "" && prevAssignee != it.Assignee {
			s.userRemoveLocked(st, prevAssignee, it.ID)
		}
		if it.Assignee != "" {
			s.userAddLocked(st, it.Assignee, it.ID)
		}
		it.AllocatedAt = s.now()
	case Started:
		it.StartedAt = s.now()
	}
	if to.Terminal() {
		clearOffersLocked(st, it)
		if it.Assignee != "" {
			s.userRemoveLocked(st, it.Assignee, it.ID)
		}
		it.ClosedAt = s.now()
	}
	st.setStateLocked(it, to)
	snap := it.clone()
	st.mu.Unlock()
	s.notify(snap, from, to)
	return snap, nil
}

// Claim allocates an offered (or created) item to user. Offered items
// may only be claimed by a user they were offered to, and a started
// item only by its own assignee (returning it to Allocated) — no user
// can seize another's in-progress work through Claim.
func (s *Service) Claim(id, userID string) (*Item, error) {
	return s.transition(id, Allocated, func(it *Item) error {
		switch it.State {
		case Offered:
			ok := false
			for _, uid := range it.OfferedTo {
				if uid == userID {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("%w: %s not offered %s", ErrNotAuthorized, userID, id)
			}
		case Started:
			if it.Assignee != userID {
				return fmt.Errorf("%w: %s is not the assignee of %s", ErrNotAuthorized, userID, id)
			}
		}
		it.Assignee = userID
		return nil
	})
}

// Start begins work on an allocated item; only the assignee may start.
func (s *Service) Start(id, userID string) (*Item, error) {
	return s.transition(id, Started, func(it *Item) error {
		if it.Assignee != userID {
			return fmt.Errorf("%w: %s is not the assignee of %s", ErrNotAuthorized, userID, id)
		}
		return nil
	})
}

// Complete finishes a started item with an outcome payload.
func (s *Service) Complete(id, userID string, outcome map[string]any) (*Item, error) {
	return s.transition(id, Completed, func(it *Item) error {
		if it.Assignee != userID {
			return fmt.Errorf("%w: %s is not the assignee of %s", ErrNotAuthorized, userID, id)
		}
		it.Outcome = outcome
		return nil
	})
}

// Fail marks a started item as failed with a reason.
func (s *Service) Fail(id, userID, reason string) (*Item, error) {
	return s.transition(id, Failed, func(it *Item) error {
		if it.Assignee != userID {
			return fmt.Errorf("%w: %s is not the assignee of %s", ErrNotAuthorized, userID, id)
		}
		it.Reason = reason
		return nil
	})
}

// Skip cancels a not-yet-started item, recording a reason.
func (s *Service) Skip(id, reason string) (*Item, error) {
	return s.transition(id, Skipped, func(it *Item) error {
		it.Reason = reason
		return nil
	})
}

// Cancel terminates an item in any non-terminal state (used when the
// owning process instance is cancelled or a boundary event interrupts).
func (s *Service) Cancel(id, reason string) (*Item, error) {
	return s.transition(id, Cancelled, func(it *Item) error {
		it.Reason = reason
		return nil
	})
}

// Delegate moves an allocated item from its assignee to another user.
func (s *Service) Delegate(id, fromUser, toUser string) (*Item, error) {
	st := s.stripeFor(id)
	st.mu.Lock()
	it, ok := st.items[id]
	if !ok {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if it.State != Allocated && it.State != Started {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: delegate from %s", ErrBadTransition, it.State)
	}
	if it.Assignee != fromUser {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is not the assignee of %s", ErrNotAuthorized, fromUser, id)
	}
	from := it.State
	s.userRemoveLocked(st, fromUser, it.ID)
	it.Assignee = toUser
	s.userAddLocked(st, toUser, it.ID)
	// Delegation returns a started item to Allocated for the new owner.
	st.setStateLocked(it, Allocated)
	it.AllocatedAt = s.now()
	snap := it.clone()
	st.mu.Unlock()
	s.notify(snap, from, Allocated)
	return snap, nil
}

// Release returns an allocated item to the offered state so another
// role member can claim it. The worklist index, offered index, and
// state change apply in one critical section.
func (s *Service) Release(id, userID string) (*Item, error) {
	st := s.stripeFor(id)
	st.mu.Lock()
	it, ok := st.items[id]
	if !ok {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !canTransition(it.State, Offered) {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s (item %s)", ErrBadTransition, it.State, Offered, id)
	}
	if it.Assignee != userID {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is not the assignee of %s", ErrNotAuthorized, userID, id)
	}
	s.userRemoveLocked(st, it.Assignee, it.ID)
	it.Assignee = ""
	var events []notification
	s.offerLocked(st, it, s.candidates(it), &events)
	snap := it.clone()
	st.mu.Unlock()
	for _, n := range events {
		s.notify(n.item, n.from, n.to)
	}
	return snap, nil
}

// collectLocked clones and sorts the items behind an index set. With
// max >= 0 only the first max items (in worklist order) are cloned —
// the tail a paginated query would discard is never copied.
func (st *stripe) collectLocked(ids map[string]bool, max int) []*Item {
	if len(ids) == 0 {
		return nil
	}
	live := make([]*Item, 0, len(ids))
	for id := range ids {
		live = append(live, st.items[id])
	}
	sortItems(live)
	if max >= 0 && len(live) > max {
		live = live[:max]
	}
	out := make([]*Item, len(live))
	for i, it := range live {
		out[i] = it.clone()
	}
	return out
}

// collect gathers one sorted, cloned slice per stripe for an index
// selected by pick.
func (s *Service) collect(pick func(st *stripe) map[string]bool, max int) [][]*Item {
	lists := make([][]*Item, 0, len(s.stripes))
	for _, st := range s.stripes {
		st.mu.Lock()
		l := st.collectLocked(pick(st), max)
		st.mu.Unlock()
		if len(l) > 0 {
			lists = append(lists, l)
		}
	}
	return lists
}

// Worklist returns the items allocated to or started by user, sorted
// by priority (desc) then creation time.
func (s *Service) Worklist(userID string) []*Item {
	return s.WorklistPage(userID, 0, -1)
}

// WorklistPage is Worklist with pagination (limit < 0 = no limit).
func (s *Service) WorklistPage(userID string, offset, limit int) []*Item {
	max := pageMax(offset, limit)
	return mergeSorted(s.collect(func(st *stripe) map[string]bool { return st.byUser[userID] }, max), offset, limit)
}

// OfferedItems returns the items offered to user.
func (s *Service) OfferedItems(userID string) []*Item {
	return s.OfferedPage(userID, 0, -1)
}

// OfferedPage is OfferedItems with pagination (limit < 0 = no limit).
func (s *Service) OfferedPage(userID string, offset, limit int) []*Item {
	max := pageMax(offset, limit)
	return mergeSorted(s.collect(func(st *stripe) map[string]bool { return st.offered[userID] }, max), offset, limit)
}

// ByState returns copies of all items in the given state, read from
// the per-state index (O(answer), not O(items ever created)).
func (s *Service) ByState(state State) []*Item {
	return s.ByStatePage(state, 0, -1)
}

// ByStatePage is ByState with pagination (limit < 0 = no limit).
func (s *Service) ByStatePage(state State, offset, limit int) []*Item {
	if int(state) >= len(stateNames) {
		return nil
	}
	max := pageMax(offset, limit)
	return mergeSorted(s.collect(func(st *stripe) map[string]bool { return st.byState[state] }, max), offset, limit)
}

// Overdue returns open items whose deadline has passed at the given
// time. Each stripe consults its due-time min-heap: entries are
// popped while due, stale ones (closed items) dropped, live ones
// collected and re-pushed — O(overdue · log pending) per call instead
// of a scan over every item ever created.
func (s *Service) Overdue(now time.Time) []*Item {
	var out []*Item
	for _, st := range s.stripes {
		st.mu.Lock()
		out = append(out, st.overdueLocked(now)...)
		st.mu.Unlock()
	}
	sortItems(out)
	return out
}

func (st *stripe) overdueLocked(now time.Time) []*Item {
	var out []*Item
	var keep []dueEntry
	for len(st.due) > 0 {
		top := st.due[0]
		if !top.at.Before(now) {
			break
		}
		heap.Pop(&st.due)
		it, ok := st.items[top.id]
		if !ok || it.State.Terminal() || !it.DueAt.Equal(top.at) {
			continue // stale: closed (lazy removal) or superseded entry
		}
		out = append(out, it.clone())
		keep = append(keep, top)
	}
	for _, e := range keep {
		heap.Push(&st.due, e)
	}
	return out
}

// pageMax converts offset/limit into the per-stripe clone bound.
func pageMax(offset, limit int) int {
	if limit < 0 {
		return -1
	}
	if offset < 0 {
		offset = 0
	}
	return offset + limit
}

func itemLess(a, b *Item) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if !a.CreatedAt.Equal(b.CreatedAt) {
		return a.CreatedAt.Before(b.CreatedAt)
	}
	return a.ID < b.ID
}

func sortItems(items []*Item) {
	sort.Slice(items, func(a, b int) bool { return itemLess(items[a], items[b]) })
}

// mergeSorted k-way-merges per-stripe pre-sorted slices, stopping at
// offset+limit and slicing off the first offset items (limit < 0 =
// everything). The stripe count is small, so a linear min scan beats
// a heap here.
func mergeSorted(lists [][]*Item, offset, limit int) []*Item {
	if offset < 0 {
		offset = 0
	}
	if len(lists) == 1 {
		l := lists[0]
		if offset >= len(l) {
			return nil
		}
		l = l[offset:]
		if limit >= 0 && len(l) > limit {
			l = l[:limit]
		}
		return l
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 || offset >= total {
		return nil
	}
	want := total
	if limit >= 0 && offset+limit < want {
		want = offset + limit
	}
	idx := make([]int, len(lists))
	out := make([]*Item, 0, want)
	for len(out) < want {
		best := -1
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if best < 0 || itemLess(l[idx[i]], lists[best][idx[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
	if offset >= len(out) {
		return nil
	}
	return out[offset:]
}

// StripeStat reports one stripe's load.
type StripeStat struct {
	// Items is the number of items (any state) on the stripe.
	Items int `json:"items"`
	// Open is the number of non-terminal items on the stripe.
	Open int `json:"open"`
	// Due is the stripe's deadline-index size (may include entries for
	// closed items pending lazy removal).
	Due int `json:"due"`
}

// Stats reports the worklist's shape and load for monitoring.
type Stats struct {
	// Stripes is the stripe count.
	Stripes int `json:"stripes"`
	// Items is the total number of items tracked.
	Items int `json:"items"`
	// Open is the number of non-terminal items.
	Open int `json:"open"`
	// ByState counts items per lifecycle state.
	ByState map[string]int `json:"byState"`
	// Users is the number of users with a non-empty queue.
	Users int `json:"users"`
	// NotifyBacklog is the queued async notifications (0 when
	// synchronous).
	NotifyBacklog int `json:"notifyBacklog"`
	// PerStripe is the per-stripe breakdown.
	PerStripe []StripeStat `json:"perStripe"`
}

// Stats snapshots the service. Stripes are read one at a time, so a
// monitoring poll never blocks the whole worklist.
func (s *Service) Stats() Stats {
	out := Stats{
		Stripes:       len(s.stripes),
		ByState:       map[string]int{},
		NotifyBacklog: s.NotifyBacklog(),
		PerStripe:     make([]StripeStat, len(s.stripes)),
	}
	for i, st := range s.stripes {
		st.mu.Lock()
		ss := StripeStat{Items: len(st.items), Due: len(st.due)}
		for state, set := range st.byState {
			if len(set) == 0 {
				continue
			}
			out.ByState[State(state).String()] += len(set)
			if !State(state).Terminal() {
				ss.Open += len(set)
			}
		}
		st.mu.Unlock()
		out.Items += ss.Items
		out.Open += ss.Open
		out.PerStripe[i] = ss
	}
	s.loadMu.RLock()
	out.Users = len(s.loads)
	s.loadMu.RUnlock()
	return out
}
