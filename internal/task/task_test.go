package task

import (
	"errors"
	"testing"
	"time"

	"bpms/internal/resource"
)

var base = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func newService(t *testing.T, autoAlloc bool) (*Service, *resource.Directory, *time.Time) {
	t.Helper()
	d := resource.NewDirectory()
	d.AddUser(&resource.User{ID: "alice", Roles: []string{"clerk"}})
	d.AddUser(&resource.User{ID: "bob", Roles: []string{"clerk"}})
	d.AddUser(&resource.User{ID: "eve", Roles: []string{"auditor"}})
	now := base
	svc := NewService(Config{
		Directory:    d,
		AutoAllocate: autoAlloc,
		Now:          func() time.Time { return now },
	})
	return svc, d, &now
}

func TestDirectAssignment(t *testing.T) {
	svc, _, _ := newService(t, false)
	it, err := svc.Create(Spec{InstanceID: "i1", ElementID: "approve", Assignee: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if it.State != Allocated || it.Assignee != "alice" {
		t.Fatalf("item = %+v", it)
	}
	wl := svc.Worklist("alice")
	if len(wl) != 1 || wl[0].ID != it.ID {
		t.Errorf("worklist = %v", wl)
	}
	if svc.Load("alice") != 1 {
		t.Errorf("Load = %d", svc.Load("alice"))
	}
}

func TestOfferAndClaim(t *testing.T) {
	svc, _, _ := newService(t, false)
	it, err := svc.Create(Spec{InstanceID: "i1", ElementID: "review", Role: "clerk"})
	if err != nil {
		t.Fatal(err)
	}
	if it.State != Offered || len(it.OfferedTo) != 2 {
		t.Fatalf("item = %+v", it)
	}
	if got := svc.OfferedItems("alice"); len(got) != 1 {
		t.Errorf("alice offers = %d", len(got))
	}
	// eve is not a clerk: claiming must fail.
	if _, err := svc.Claim(it.ID, "eve"); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("eve claim err = %v", err)
	}
	claimed, err := svc.Claim(it.ID, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if claimed.State != Allocated || claimed.Assignee != "bob" {
		t.Fatalf("claimed = %+v", claimed)
	}
	// Offers are cleared after claiming.
	if got := svc.OfferedItems("alice"); len(got) != 0 {
		t.Errorf("alice offers after claim = %d", len(got))
	}
}

func TestAutoAllocateShortestQueue(t *testing.T) {
	svc, _, _ := newService(t, true)
	// Four tasks spread across two clerks: 2 and 2.
	for i := 0; i < 4; i++ {
		it, err := svc.Create(Spec{InstanceID: "i1", ElementID: "work", Role: "clerk"})
		if err != nil {
			t.Fatal(err)
		}
		if it.State != Allocated {
			t.Fatalf("auto-allocate left item %s in %s", it.ID, it.State)
		}
	}
	if a, b := svc.Load("alice"), svc.Load("bob"); a != 2 || b != 2 {
		t.Errorf("loads = alice:%d bob:%d, want 2/2", a, b)
	}
}

func TestFullLifecycle(t *testing.T) {
	svc, _, nowPtr := newService(t, false)
	var transitions []string
	svc.Subscribe(func(it *Item, from, to State) {
		transitions = append(transitions, from.String()+">"+to.String())
	})
	it, _ := svc.Create(Spec{InstanceID: "i1", ElementID: "t", Role: "clerk", Data: map[string]any{"k": 1}})
	it, err := svc.Claim(it.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	*nowPtr = nowPtr.Add(time.Minute)
	it, err = svc.Start(it.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if it.State != Started || it.StartedAt.IsZero() {
		t.Fatalf("started = %+v", it)
	}
	*nowPtr = nowPtr.Add(time.Minute)
	it, err = svc.Complete(it.ID, "alice", map[string]any{"approved": true})
	if err != nil {
		t.Fatal(err)
	}
	if it.State != Completed || it.Outcome["approved"] != true || it.ClosedAt.IsZero() {
		t.Fatalf("completed = %+v", it)
	}
	if svc.Load("alice") != 0 {
		t.Errorf("Load after completion = %d", svc.Load("alice"))
	}
	want := []string{"created>created", "created>offered", "offered>allocated", "allocated>started", "started>completed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v", transitions)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestIllegalTransitions(t *testing.T) {
	svc, _, _ := newService(t, false)
	it, _ := svc.Create(Spec{InstanceID: "i1", ElementID: "t", Assignee: "alice"})
	// Cannot complete before starting.
	if _, err := svc.Complete(it.ID, "alice", nil); !errors.Is(err, ErrBadTransition) {
		t.Errorf("complete unstarted: %v", err)
	}
	// Only the assignee can start.
	if _, err := svc.Start(it.ID, "bob"); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("foreign start: %v", err)
	}
	svc.Start(it.ID, "alice")
	// A started item cannot be skipped.
	if _, err := svc.Skip(it.ID, "nope"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("skip started: %v", err)
	}
	svc.Complete(it.ID, "alice", nil)
	// Terminal items accept nothing.
	if _, err := svc.Start(it.ID, "alice"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("start completed: %v", err)
	}
	if _, err := svc.Cancel(it.ID, "x"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("cancel completed: %v", err)
	}
	// Unknown item.
	if _, err := svc.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get missing: %v", err)
	}
}

func TestFailAndReason(t *testing.T) {
	svc, _, _ := newService(t, false)
	it, _ := svc.Create(Spec{InstanceID: "i1", ElementID: "t", Assignee: "alice"})
	svc.Start(it.ID, "alice")
	failed, err := svc.Fail(it.ID, "alice", "cannot verify data")
	if err != nil {
		t.Fatal(err)
	}
	if failed.State != Failed || failed.Reason != "cannot verify data" {
		t.Fatalf("failed = %+v", failed)
	}
}

func TestDelegate(t *testing.T) {
	svc, _, _ := newService(t, false)
	it, _ := svc.Create(Spec{InstanceID: "i1", ElementID: "t", Assignee: "alice"})
	del, err := svc.Delegate(it.ID, "alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if del.Assignee != "bob" || del.State != Allocated {
		t.Fatalf("delegated = %+v", del)
	}
	if svc.Load("alice") != 0 || svc.Load("bob") != 1 {
		t.Errorf("loads = %d/%d", svc.Load("alice"), svc.Load("bob"))
	}
	// Wrong delegator.
	if _, err := svc.Delegate(it.ID, "alice", "eve"); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("foreign delegate: %v", err)
	}
	// A started item can be delegated and lands Allocated.
	svc.Start(it.ID, "bob")
	del, err = svc.Delegate(it.ID, "bob", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if del.State != Allocated || del.Assignee != "alice" {
		t.Fatalf("redelegated = %+v", del)
	}
}

func TestRelease(t *testing.T) {
	svc, _, _ := newService(t, false)
	it, _ := svc.Create(Spec{InstanceID: "i1", ElementID: "t", Role: "clerk"})
	svc.Claim(it.ID, "alice")
	rel, err := svc.Release(it.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if rel.State != Offered {
		t.Fatalf("released = %+v", rel)
	}
	if svc.Load("alice") != 0 {
		t.Errorf("Load after release = %d", svc.Load("alice"))
	}
	// bob can now claim it.
	if _, err := svc.Claim(it.ID, "bob"); err != nil {
		t.Errorf("bob claim after release: %v", err)
	}
}

func TestOverdueAndDue(t *testing.T) {
	svc, _, nowPtr := newService(t, false)
	it, _ := svc.Create(Spec{InstanceID: "i1", ElementID: "t", Assignee: "alice", Due: time.Hour})
	if it.DueAt.IsZero() {
		t.Fatal("DueAt not set")
	}
	if got := svc.Overdue(base.Add(30 * time.Minute)); len(got) != 0 {
		t.Errorf("not yet overdue: %v", got)
	}
	if got := svc.Overdue(base.Add(2 * time.Hour)); len(got) != 1 {
		t.Errorf("overdue = %v", got)
	}
	// Completed items are never overdue.
	*nowPtr = nowPtr.Add(time.Minute)
	svc.Start(it.ID, "alice")
	svc.Complete(it.ID, "alice", nil)
	if got := svc.Overdue(base.Add(2 * time.Hour)); len(got) != 0 {
		t.Errorf("completed item overdue: %v", got)
	}
}

func TestWorklistOrdering(t *testing.T) {
	svc, _, nowPtr := newService(t, false)
	lo, _ := svc.Create(Spec{InstanceID: "i", ElementID: "a", Assignee: "alice", Priority: 1})
	*nowPtr = nowPtr.Add(time.Second)
	hi, _ := svc.Create(Spec{InstanceID: "i", ElementID: "b", Assignee: "alice", Priority: 9})
	*nowPtr = nowPtr.Add(time.Second)
	mid, _ := svc.Create(Spec{InstanceID: "i", ElementID: "c", Assignee: "alice", Priority: 5})
	wl := svc.Worklist("alice")
	if len(wl) != 3 || wl[0].ID != hi.ID || wl[1].ID != mid.ID || wl[2].ID != lo.ID {
		t.Errorf("worklist order: %v %v %v", wl[0].ID, wl[1].ID, wl[2].ID)
	}
}

func TestByStateAndCapabilityRouting(t *testing.T) {
	svc, d, _ := newService(t, false)
	d.AddUser(&resource.User{ID: "frank", Roles: []string{"clerk"}, Capabilities: []string{"fraud"}})
	it, _ := svc.Create(Spec{InstanceID: "i1", ElementID: "check", Role: "clerk", Capability: "fraud"})
	// Only frank has the capability.
	if len(it.OfferedTo) != 1 || it.OfferedTo[0] != "frank" {
		t.Fatalf("offeredTo = %v", it.OfferedTo)
	}
	if got := svc.ByState(Offered); len(got) != 1 {
		t.Errorf("ByState(Offered) = %d", len(got))
	}
	if got := svc.ByState(Completed); len(got) != 0 {
		t.Errorf("ByState(Completed) = %d", len(got))
	}
}

func TestCancelClearsQueues(t *testing.T) {
	svc, _, _ := newService(t, false)
	it, _ := svc.Create(Spec{InstanceID: "i1", ElementID: "t", Role: "clerk"})
	svc.Claim(it.ID, "alice")
	svc.Start(it.ID, "alice")
	got, err := svc.Cancel(it.ID, "instance cancelled")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != Cancelled || got.Reason != "instance cancelled" {
		t.Fatalf("cancelled = %+v", got)
	}
	if svc.Load("alice") != 0 {
		t.Error("queue not cleared on cancel")
	}
}

func TestStateStringAndTerminal(t *testing.T) {
	if Created.String() != "created" || Completed.String() != "completed" {
		t.Error("state names wrong")
	}
	if Created.Terminal() || Started.Terminal() {
		t.Error("non-terminal states misreported")
	}
	for _, s := range []State{Completed, Failed, Skipped, Cancelled} {
		if !s.Terminal() {
			t.Errorf("%s should be terminal", s)
		}
	}
}
