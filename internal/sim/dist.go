// Package sim implements the discrete-event simulator of the BPMS. It
// drives the real engine (internal/engine) under a virtual clock:
// cases arrive according to an arrival process, user tasks are served
// by simulated resources with sampled service times, and timers fire
// in virtual time. The simulator doubles as the workload generator for
// the benchmark harness (experiments F2, F3, T8) and as a what-if
// analysis tool (the "digital twin" use of classic BPMS suites).
package sim

import (
	"math"
	"math/rand"
	"time"
)

// Dist samples durations. Implementations must be deterministic given
// the *rand.Rand stream.
type Dist interface {
	// Sample draws one duration (never negative).
	Sample(r *rand.Rand) time.Duration
	// Mean returns the distribution mean.
	Mean() time.Duration
}

// Fixed is a constant duration.
type Fixed time.Duration

// Sample implements Dist.
func (f Fixed) Sample(*rand.Rand) time.Duration { return time.Duration(f) }

// Mean implements Dist.
func (f Fixed) Mean() time.Duration { return time.Duration(f) }

// Exp is an exponential distribution with the given mean.
type Exp time.Duration

// Sample implements Dist.
func (e Exp) Sample(r *rand.Rand) time.Duration {
	return time.Duration(r.ExpFloat64() * float64(e))
}

// Mean implements Dist.
func (e Exp) Mean() time.Duration { return time.Duration(e) }

// Uniform samples uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
}

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(r.Int63n(int64(u.Hi-u.Lo)))
}

// Mean implements Dist.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

// Normal is a truncated-at-zero normal distribution.
type Normal struct {
	Mu    time.Duration
	Sigma time.Duration
}

// Sample implements Dist.
func (n Normal) Sample(r *rand.Rand) time.Duration {
	x := r.NormFloat64()*float64(n.Sigma) + float64(n.Mu)
	if x < 0 {
		x = 0
	}
	return time.Duration(x)
}

// Mean implements Dist (ignoring the small truncation bias).
func (n Normal) Mean() time.Duration { return n.Mu }

// Lognormal samples exp(N(mu, sigma)) scaled so the mean equals Mean.
type Lognormal struct {
	M     time.Duration // desired mean
	Shape float64       // sigma of the underlying normal (e.g. 0.5)
}

// Sample implements Dist.
func (l Lognormal) Sample(r *rand.Rand) time.Duration {
	// mean of lognormal = exp(mu + sigma^2/2); solve mu for target mean.
	mu := math.Log(float64(l.M)) - l.Shape*l.Shape/2
	return time.Duration(math.Exp(r.NormFloat64()*l.Shape + mu))
}

// Mean implements Dist.
func (l Lognormal) Mean() time.Duration { return l.M }

// Choices samples from weighted alternatives (the rulio generator's
// "Choices" distribution): Values[i] is drawn with probability
// proportional to Weights[i]. Weights may be omitted for a uniform
// pick.
type Choices struct {
	Values  []time.Duration
	Weights []float64
}

// Sample implements Dist.
func (c Choices) Sample(r *rand.Rand) time.Duration {
	if len(c.Values) == 0 {
		return 0
	}
	if len(c.Weights) != len(c.Values) {
		return c.Values[r.Intn(len(c.Values))]
	}
	return c.Values[WeightedIndex(r, c.Weights)]
}

// Mean implements Dist.
func (c Choices) Mean() time.Duration {
	if len(c.Values) == 0 {
		return 0
	}
	if len(c.Weights) != len(c.Values) {
		var sum time.Duration
		for _, v := range c.Values {
			sum += v
		}
		return sum / time.Duration(len(c.Values))
	}
	var total float64
	var acc float64
	for i, v := range c.Values {
		total += c.Weights[i]
		acc += c.Weights[i] * float64(v)
	}
	if total == 0 {
		return 0
	}
	return time.Duration(acc / total)
}

// WeightedIndex draws an index with probability proportional to its
// weight (negative weights count as zero; all-zero weights pick
// uniformly).
func WeightedIndex(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Zipf ranks n items by a Zipf(s) law: rank 0 is the most popular.
// Load generators use it to skew activity across accounts the way
// real traffic skews across users.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over [0, n) with skew s (> 1; larger
// is more skewed), drawing from the given source.
func NewZipf(r *rand.Rand, s float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.01
	}
	if n == 0 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(r, s, 1, n-1)}
}

// Rank draws one rank in [0, n).
func (z *Zipf) Rank() uint64 { return z.z.Uint64() }
