// Package sim implements the discrete-event simulator of the BPMS. It
// drives the real engine (internal/engine) under a virtual clock:
// cases arrive according to an arrival process, user tasks are served
// by simulated resources with sampled service times, and timers fire
// in virtual time. The simulator doubles as the workload generator for
// the benchmark harness (experiments F2, F3, T8) and as a what-if
// analysis tool (the "digital twin" use of classic BPMS suites).
package sim

import (
	"math"
	"math/rand"
	"time"
)

// Dist samples durations. Implementations must be deterministic given
// the *rand.Rand stream.
type Dist interface {
	// Sample draws one duration (never negative).
	Sample(r *rand.Rand) time.Duration
	// Mean returns the distribution mean.
	Mean() time.Duration
}

// Fixed is a constant duration.
type Fixed time.Duration

// Sample implements Dist.
func (f Fixed) Sample(*rand.Rand) time.Duration { return time.Duration(f) }

// Mean implements Dist.
func (f Fixed) Mean() time.Duration { return time.Duration(f) }

// Exp is an exponential distribution with the given mean.
type Exp time.Duration

// Sample implements Dist.
func (e Exp) Sample(r *rand.Rand) time.Duration {
	return time.Duration(r.ExpFloat64() * float64(e))
}

// Mean implements Dist.
func (e Exp) Mean() time.Duration { return time.Duration(e) }

// Uniform samples uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
}

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(r.Int63n(int64(u.Hi-u.Lo)))
}

// Mean implements Dist.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

// Normal is a truncated-at-zero normal distribution.
type Normal struct {
	Mu    time.Duration
	Sigma time.Duration
}

// Sample implements Dist.
func (n Normal) Sample(r *rand.Rand) time.Duration {
	x := r.NormFloat64()*float64(n.Sigma) + float64(n.Mu)
	if x < 0 {
		x = 0
	}
	return time.Duration(x)
}

// Mean implements Dist (ignoring the small truncation bias).
func (n Normal) Mean() time.Duration { return n.Mu }

// Lognormal samples exp(N(mu, sigma)) scaled so the mean equals Mean.
type Lognormal struct {
	M     time.Duration // desired mean
	Shape float64       // sigma of the underlying normal (e.g. 0.5)
}

// Sample implements Dist.
func (l Lognormal) Sample(r *rand.Rand) time.Duration {
	// mean of lognormal = exp(mu + sigma^2/2); solve mu for target mean.
	mu := math.Log(float64(l.M)) - l.Shape*l.Shape/2
	return time.Duration(math.Exp(r.NormFloat64()*l.Shape + mu))
}

// Mean implements Dist.
func (l Lognormal) Mean() time.Duration { return l.M }
