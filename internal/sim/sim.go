package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"bpms/internal/engine"
	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/metrics"
	"bpms/internal/model"
	"bpms/internal/resource"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
)

// Config describes one simulation run.
type Config struct {
	// Process is the definition under simulation.
	Process *model.Process
	// Extra definitions (call-activity targets) deployed alongside.
	Extra []*model.Process
	// Cases is the number of case arrivals to simulate.
	Cases int
	// Interarrival is the arrival process (default Exp(1m)).
	Interarrival Dist
	// ServiceTime samples user/manual task durations, by element ID;
	// DefaultService covers the rest (default Exp(5m)).
	ServiceTime    map[string]Dist
	DefaultService Dist
	// Resources declares the simulated workers per role.
	Resources map[string][]string // role -> user IDs
	// Policy allocates role-routed work (default shortest-queue).
	Policy resource.Policy
	// Vars samples the initial case variables (may be nil).
	Vars func(caseIdx int, r *rand.Rand) map[string]any
	// Seed makes the run reproducible.
	Seed int64
	// Rand, when set, is the injected random source for the run
	// (overrides Seed). Every simulation owns its source — nothing
	// draws from the global math/rand stream — so concurrent
	// simulations (one per shard, say) stay deterministic and
	// race-free as long as each gets its own *rand.Rand.
	Rand *rand.Rand
	// Start is the virtual wall-clock origin.
	Start time.Time
	// Handlers are extra service-task handlers (noop is built in).
	Handlers map[string]engine.Handler
	// Horizon caps simulated time as a safety valve (default 10y).
	Horizon time.Duration
}

// Result aggregates a simulation run.
type Result struct {
	// Started and Completed count case arrivals and case completions.
	Started, Completed, Faulted int
	// CycleTime is case duration (arrival to completion), seconds.
	CycleTime *metrics.Reservoir
	// WaitTime is work-item queueing delay (creation to service
	// start), seconds.
	WaitTime *metrics.Reservoir
	// ServiceTime is sampled work durations, seconds.
	ServiceTime *metrics.Reservoir
	// Busy accumulates per-resource busy seconds (utilisation =
	// busy / makespan).
	Busy map[string]float64
	// Makespan is the total simulated duration in seconds.
	Makespan float64
	// Log is the generated event log (for mining experiments).
	Log *history.Log
	// History exposes the raw audit store.
	History *history.Store
}

// event is one scheduled simulator action.
type event struct {
	at  time.Time
	seq int
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(a, b int) bool {
	if !q[a].at.Equal(q[b].at) {
		return q[a].at.Before(q[b].at)
	}
	return q[a].seq < q[b].seq
}
func (q eventQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// Simulator executes a Config against a real engine instance.
type Simulator struct {
	cfg   Config
	rng   *rand.Rand
	clock *timer.VirtualClock
	wheel timer.Service
	eng   *engine.Engine
	tasks *task.Service
	hist  *history.Store

	q         eventQueue
	seq       int
	busyUntil map[string]time.Time
	res       *Result
}

// New builds a simulator; Run executes it.
func New(cfg Config) (*Simulator, error) {
	if cfg.Process == nil {
		return nil, fmt.Errorf("sim: no process")
	}
	if cfg.Cases <= 0 {
		cfg.Cases = 100
	}
	if cfg.Interarrival == nil {
		cfg.Interarrival = Exp(time.Minute)
	}
	if cfg.DefaultService == nil {
		cfg.DefaultService = Exp(5 * time.Minute)
	}
	if cfg.Policy == nil {
		cfg.Policy = resource.ShortestQueuePolicy{}
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC)
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 10 * 365 * 24 * time.Hour
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	s := &Simulator{
		cfg:       cfg,
		rng:       rng,
		clock:     timer.NewVirtualClock(cfg.Start),
		busyUntil: map[string]time.Time{},
	}
	s.wheel = timer.NewWheelService(time.Second, 1024)

	dir := resource.NewDirectory()
	for role, users := range cfg.Resources {
		for _, u := range users {
			existing := dir.UserByID(u)
			if existing != nil {
				existing.Roles = append(existing.Roles, role)
				dir.AddUser(existing)
			} else {
				dir.AddUser(&resource.User{ID: u, Roles: []string{role}})
			}
		}
	}
	s.tasks = task.NewService(task.Config{
		Directory:    dir,
		Policy:       cfg.Policy,
		AutoAllocate: true,
		Now:          s.clock.Now,
	})
	// Sync mode: the simulator drives virtual time deterministically
	// and its stores are short-lived, so the audit trail writes through
	// on the caller's goroutine instead of spawning a committer per run.
	hist, err := history.NewStriped(
		[]storage.Journal{storage.NewMemJournal()},
		history.StoreOptions{Sync: true},
	)
	if err != nil {
		return nil, err
	}
	s.hist = hist
	eng, err := engine.New(engine.Config{
		Tasks:   s.tasks,
		Timers:  s.wheel,
		Clock:   s.clock,
		History: hist,
	})
	if err != nil {
		return nil, err
	}
	s.eng = eng
	eng.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	for name, h := range cfg.Handlers {
		eng.RegisterHandler(name, h)
	}
	if err := eng.Deploy(cfg.Process); err != nil {
		return nil, err
	}
	for _, p := range cfg.Extra {
		if err := eng.Deploy(p); err != nil {
			return nil, err
		}
	}
	s.res = &Result{
		CycleTime:   metrics.NewReservoir(0, cfg.Seed+1),
		WaitTime:    metrics.NewReservoir(0, cfg.Seed+2),
		ServiceTime: metrics.NewReservoir(0, cfg.Seed+3),
		Busy:        map[string]float64{},
	}
	// Simulated workers: whenever an item lands on someone's queue,
	// schedule its service.
	s.tasks.Subscribe(func(it *task.Item, from, to task.State) {
		if to == task.Allocated && from != task.Allocated {
			s.scheduleService(it)
		}
	})
	return s, nil
}

func (s *Simulator) schedule(at time.Time, fn func()) {
	s.seq++
	heap.Push(&s.q, &event{at: at, seq: s.seq, fn: fn})
}

// scheduleService plays the simulated worker: start the item when the
// resource frees up, complete it a sampled service time later.
func (s *Simulator) scheduleService(it *task.Item) {
	user := it.Assignee
	now := s.clock.Now()
	dist := s.cfg.DefaultService
	if d, ok := s.cfg.ServiceTime[it.ElementID]; ok {
		dist = d
	}
	service := dist.Sample(s.rng)
	startAt := now
	if bu, ok := s.busyUntil[user]; ok && bu.After(startAt) {
		startAt = bu
	}
	finishAt := startAt.Add(service)
	s.busyUntil[user] = finishAt
	s.res.Busy[user] += service.Seconds()
	s.res.WaitTime.AddDuration(startAt.Sub(it.CreatedAt))
	s.res.ServiceTime.AddDuration(service)
	itemID := it.ID
	s.schedule(startAt, func() {
		_, _ = s.tasks.Start(itemID, user)
	})
	s.schedule(finishAt, func() {
		_, _ = s.tasks.Complete(itemID, user, nil)
	})
}

// Run executes the simulation to completion and returns the results.
func (s *Simulator) Run() (*Result, error) {
	// Schedule all arrivals up front.
	at := s.cfg.Start
	caseStart := map[string]time.Time{}
	for i := 0; i < s.cfg.Cases; i++ {
		at = at.Add(s.cfg.Interarrival.Sample(s.rng))
		arriveAt := at
		idx := i
		s.schedule(arriveAt, func() {
			var vars map[string]any
			if s.cfg.Vars != nil {
				vars = s.cfg.Vars(idx, s.rng)
			}
			v, err := s.eng.StartInstance(s.cfg.Process.ID, vars)
			if err != nil {
				return
			}
			s.res.Started++
			caseStart[v.ID] = arriveAt
		})
	}
	deadline := s.cfg.Start.Add(s.cfg.Horizon)
	for s.q.Len() > 0 {
		ev := heap.Pop(&s.q).(*event)
		if ev.at.After(deadline) {
			break
		}
		s.clock.Set(ev.at)
		// Fire engine timers due up to this moment first.
		s.wheel.AdvanceTo(ev.at)
		ev.fn()
	}
	// Drain any remaining engine timers (timer catch events with no
	// queued worker events behind them).
	for guard := 0; guard < 1000; guard++ {
		end := s.clock.Now().Add(time.Hour)
		if s.wheel.AdvanceTo(end) == 0 && s.q.Len() == 0 {
			break
		}
		s.clock.Set(end)
		for s.q.Len() > 0 {
			ev := heap.Pop(&s.q).(*event)
			s.clock.Set(ev.at)
			s.wheel.AdvanceTo(ev.at)
			ev.fn()
		}
	}

	var lastEnd time.Time
	for _, id := range s.eng.Instances() {
		v, err := s.eng.Instance(id)
		if err != nil {
			continue
		}
		switch v.Status {
		case engine.StatusCompleted:
			s.res.Completed++
			start, ok := caseStart[id]
			if !ok {
				start = v.StartedAt
			}
			s.res.CycleTime.AddDuration(v.EndedAt.Sub(start))
			if v.EndedAt.After(lastEnd) {
				lastEnd = v.EndedAt
			}
		case engine.StatusFaulted:
			s.res.Faulted++
		}
	}
	if lastEnd.IsZero() {
		lastEnd = s.clock.Now()
	}
	s.res.Makespan = lastEnd.Sub(s.cfg.Start).Seconds()
	s.res.Log = history.FromEvents(s.hist, false)
	s.res.History = s.hist
	return s.res, nil
}

// Run is a convenience building and running a simulator in one call.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Utilization returns busy-time / makespan for a resource.
func (r *Result) Utilization(user string) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.Busy[user] / r.Makespan
}
