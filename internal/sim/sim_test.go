package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"bpms/internal/model"
	"bpms/internal/resource"
)

// singleTask is the M/M/c fixture: one user task served by a role.
func singleTask() *model.Process {
	return model.New("mm1").
		Start("s").
		UserTask("serve", model.Role("agent")).
		End("e").
		Seq("s", "serve", "e").
		MustBuild()
}

func TestDistributions(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	dists := map[string]Dist{
		"fixed":     Fixed(time.Minute),
		"exp":       Exp(time.Minute),
		"uniform":   Uniform{Lo: 30 * time.Second, Hi: 90 * time.Second},
		"normal":    Normal{Mu: time.Minute, Sigma: 10 * time.Second},
		"lognormal": Lognormal{M: time.Minute, Shape: 0.5},
	}
	for name, d := range dists {
		var sum time.Duration
		const n = 20000
		for i := 0; i < n; i++ {
			x := d.Sample(r)
			if x < 0 {
				t.Fatalf("%s sampled negative duration", name)
			}
			sum += x
		}
		mean := float64(sum) / n
		want := float64(d.Mean())
		if math.Abs(mean-want)/want > 0.1 {
			t.Errorf("%s: empirical mean %.3gs, want ~%.3gs", name, mean/1e9, want/1e9)
		}
	}
	// Degenerate uniform.
	u := Uniform{Lo: time.Minute, Hi: time.Minute}
	if u.Sample(r) != time.Minute {
		t.Error("degenerate uniform wrong")
	}
}

func TestSimulationCompletesAllCases(t *testing.T) {
	res, err := Run(Config{
		Process:        singleTask(),
		Cases:          200,
		Interarrival:   Exp(2 * time.Minute),
		DefaultService: Exp(time.Minute),
		Resources:      map[string][]string{"agent": {"w1", "w2"}},
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Started != 200 || res.Completed != 200 || res.Faulted != 0 {
		t.Fatalf("started=%d completed=%d faulted=%d", res.Started, res.Completed, res.Faulted)
	}
	if res.CycleTime.Count() != 200 {
		t.Errorf("cycle samples = %d", res.CycleTime.Count())
	}
	if res.Log == nil || len(res.Log.Traces) != 200 {
		t.Errorf("log traces = %d", len(res.Log.Traces))
	}
	// Utilisation: λ=0.5/min, μ=1/min, c=2 → ρ≈0.25 per server.
	u := res.Utilization("w1") + res.Utilization("w2")
	if u <= 0.1 || u >= 1.2 {
		t.Errorf("total utilisation = %.3f, expected ~0.5", u)
	}
}

func TestSimulationReproducible(t *testing.T) {
	cfg := Config{
		Process:        singleTask(),
		Cases:          100,
		Interarrival:   Exp(time.Minute),
		DefaultService: Exp(time.Minute),
		Resources:      map[string][]string{"agent": {"w1"}},
		Seed:           42,
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CycleTime.Percentile(0.5) != r2.CycleTime.Percentile(0.5) {
		t.Errorf("median cycle time differs: %g vs %g",
			r1.CycleTime.Percentile(0.5), r2.CycleTime.Percentile(0.5))
	}
	if r1.Makespan != r2.Makespan {
		t.Errorf("makespan differs: %g vs %g", r1.Makespan, r2.Makespan)
	}
}

func TestQueueingGrowsWithUtilisation(t *testing.T) {
	// Same service capacity, increasing arrival rate: waiting time
	// must grow (the fundamental queueing shape behind experiment F2).
	wait := func(interarrival time.Duration) float64 {
		res, err := Run(Config{
			Process:        singleTask(),
			Cases:          400,
			Interarrival:   Exp(interarrival),
			DefaultService: Exp(time.Minute),
			Resources:      map[string][]string{"agent": {"w1"}},
			Seed:           11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.WaitTime.Percentile(0.5)
	}
	low := wait(4 * time.Minute)   // ρ = 0.25
	high := wait(70 * time.Second) // ρ ≈ 0.86
	if high <= low {
		t.Errorf("median wait at high load (%.1fs) should exceed low load (%.1fs)", high, low)
	}
}

func TestPolicyComparison(t *testing.T) {
	// Shortest-queue must beat random on mean wait under load with
	// heterogeneous queues.
	run := func(p resource.Policy, seed int64) float64 {
		res, err := Run(Config{
			Process:        singleTask(),
			Cases:          500,
			Interarrival:   Exp(25 * time.Second),
			DefaultService: Exp(80 * time.Second),
			Resources:      map[string][]string{"agent": {"w1", "w2", "w3", "w4"}},
			Policy:         p,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.WaitTime.Percentile(0.9)
	}
	sq := run(resource.ShortestQueuePolicy{}, 3)
	rnd := run(resource.NewRandomPolicy(99), 3)
	if sq > rnd {
		t.Errorf("p90 wait: shortest-queue %.1fs should not exceed random %.1fs", sq, rnd)
	}
}

func TestSimulationWithBranchingAndTimers(t *testing.T) {
	p := model.New("branchy").
		Start("s").
		XOR("route", model.Default("slow")).
		UserTask("fast", model.Role("agent")).
		TimerCatch("cooldown", "10m").
		UserTask("slowTask", model.Role("agent")).
		XOR("merge").
		End("e").
		Flow("s", "route").
		FlowIf("route", "fast", "vip == true").
		FlowID("slow", "route", "cooldown", "").
		Flow("cooldown", "slowTask").
		Flow("fast", "merge").
		Flow("slowTask", "merge").
		Flow("merge", "e").
		MustBuild()
	res, err := Run(Config{
		Process:        p,
		Cases:          100,
		Interarrival:   Exp(time.Minute),
		DefaultService: Fixed(30 * time.Second),
		Resources:      map[string][]string{"agent": {"w1", "w2"}},
		Vars: func(i int, r *rand.Rand) map[string]any {
			return map[string]any{"vip": r.Intn(2) == 0}
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 100 {
		t.Fatalf("completed = %d (faulted %d)", res.Completed, res.Faulted)
	}
	// Non-VIP cases pay the 10m cooldown: the p90 must reflect it.
	if res.CycleTime.Percentile(0.9) < 600 {
		t.Errorf("p90 cycle %.0fs should include the 10m timer", res.CycleTime.Percentile(0.9))
	}
	// Both variants appear in the log.
	vs := res.Log.Variants()
	if len(vs) < 2 {
		t.Errorf("variants = %d, want >= 2", len(vs))
	}
}

func TestSimulationConfigDefaults(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("missing process should fail")
	}
	// Minimal config with defaults applied.
	res, err := Run(Config{
		Process:   singleTask(),
		Cases:     10,
		Resources: map[string][]string{"agent": {"w1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Errorf("completed = %d", res.Completed)
	}
}

// TestInjectedRandDeterminism: two runs over identically seeded
// injected sources produce identical results (the run never touches
// the global math/rand stream, so concurrent simulations with their
// own sources stay deterministic).
func TestInjectedRandDeterminism(t *testing.T) {
	run := func() *Result {
		proc := model.New("inj").
			Start("s").UserTask("work", model.Role("r")).End("e").
			Seq("s", "work", "e").MustBuild()
		res, err := Run(Config{
			Process:        proc,
			Cases:          40,
			Interarrival:   Exp(time.Minute),
			DefaultService: Exp(5 * time.Minute),
			Resources:      map[string][]string{"r": {"w1", "w2"}},
			Rand:           rand.New(rand.NewSource(1234)),
			Vars: func(i int, r *rand.Rand) map[string]any {
				return map[string]any{"x": r.Intn(100)}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Makespan != b.Makespan {
		t.Fatalf("runs diverged: %d/%f vs %d/%f", a.Completed, a.Makespan, b.Completed, b.Makespan)
	}
	if a.CycleTime.Percentile(0.5) != b.CycleTime.Percentile(0.5) {
		t.Fatalf("median cycle time diverged")
	}
}
