package timer

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func services() map[string]func() Service {
	return map[string]func() Service{
		"wheel": func() Service { return NewWheelService(time.Millisecond, 64) },
		"heap":  func() Service { return NewHeapService() },
	}
}

func TestScheduleAndFire(t *testing.T) {
	for name, mk := range services() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var fired []int
			for i := 1; i <= 5; i++ {
				i := i
				s.Schedule(t0.Add(time.Duration(i)*time.Second), func() {
					fired = append(fired, i)
				})
			}
			if s.Pending() != 5 {
				t.Fatalf("Pending = %d", s.Pending())
			}
			if n := s.AdvanceTo(t0.Add(2500 * time.Millisecond)); n != 2 {
				t.Fatalf("first advance fired %d, want 2", n)
			}
			if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
				t.Fatalf("fired = %v", fired)
			}
			if n := s.AdvanceTo(t0.Add(10 * time.Second)); n != 3 {
				t.Fatalf("second advance fired %d, want 3", n)
			}
			if s.Pending() != 0 {
				t.Errorf("Pending = %d after all fired", s.Pending())
			}
			// Firing order is deadline order.
			for i := 1; i < len(fired); i++ {
				if fired[i] < fired[i-1] {
					t.Errorf("out of order: %v", fired)
				}
			}
		})
	}
}

func TestCancel(t *testing.T) {
	for name, mk := range services() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			ran := false
			id := s.Schedule(t0.Add(time.Second), func() { ran = true })
			if !s.Cancel(id) {
				t.Fatal("Cancel reported not pending")
			}
			if s.Cancel(id) {
				t.Fatal("double Cancel should fail")
			}
			if s.Pending() != 0 {
				t.Errorf("Pending = %d", s.Pending())
			}
			s.AdvanceTo(t0.Add(time.Hour))
			if ran {
				t.Error("cancelled timer fired")
			}
		})
	}
}

func TestPastDeadlineFiresOnNextAdvance(t *testing.T) {
	for name, mk := range services() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			// Anchor the service's notion of time.
			s.Schedule(t0, func() {})
			s.AdvanceTo(t0.Add(time.Second))
			fired := false
			s.Schedule(t0.Add(-time.Hour), func() { fired = true }) // already past
			s.AdvanceTo(t0.Add(2 * time.Second))
			if !fired {
				t.Error("past-deadline timer did not fire")
			}
		})
	}
}

func TestAdvanceIsMonotonic(t *testing.T) {
	for name, mk := range services() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			count := 0
			s.Schedule(t0.Add(time.Second), func() { count++ })
			s.AdvanceTo(t0.Add(2 * time.Second))
			// Re-advancing to an earlier or equal time fires nothing.
			if n := s.AdvanceTo(t0.Add(time.Second)); n != 0 {
				t.Errorf("backward advance fired %d", n)
			}
			if count != 1 {
				t.Errorf("count = %d", count)
			}
		})
	}
}

func TestWheelLongSpanAdvance(t *testing.T) {
	// An advance spanning many rotations must still fire everything.
	s := NewWheelService(time.Millisecond, 8)
	total := 0
	for i := 0; i < 100; i++ {
		s.Schedule(t0.Add(time.Duration(i)*7*time.Millisecond), func() { total++ })
	}
	s.AdvanceTo(t0.Add(time.Hour))
	if total != 100 {
		t.Errorf("fired %d of 100 across rotations", total)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestWheelFarFutureNotFiredEarly(t *testing.T) {
	// Two timers a full rotation apart share a bucket; only the near
	// one fires.
	s := NewWheelService(time.Millisecond, 8)
	var near, far bool
	s.Schedule(t0.Add(2*time.Millisecond), func() { near = true })
	s.Schedule(t0.Add(10*time.Millisecond), func() { far = true }) // 2+8 ticks: same bucket
	s.AdvanceTo(t0.Add(3 * time.Millisecond))
	if !near {
		t.Error("near timer should fire")
	}
	if far {
		t.Error("far timer fired a rotation early")
	}
	s.AdvanceTo(t0.Add(11 * time.Millisecond))
	if !far {
		t.Error("far timer should fire after its rotation")
	}
}

func TestConcurrentScheduleAndAdvance(t *testing.T) {
	for name, mk := range services() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var fired int64
			var wg sync.WaitGroup
			const n = 500
			s.Schedule(t0, func() {}) // anchor
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						s.Schedule(t0.Add(time.Duration(i%50)*time.Millisecond), func() {
							atomic.AddInt64(&fired, 1)
						})
					}
				}(g)
			}
			wg.Wait()
			s.AdvanceTo(t0.Add(time.Minute))
			if got := atomic.LoadInt64(&fired); got != 4*n {
				t.Errorf("fired %d of %d", got, 4*n)
			}
		})
	}
}

// Property: the wheel and the heap fire exactly the same sets of
// timers for the same random schedule/advance interleavings — the heap
// acts as the oracle for the wheel.
func TestQuickWheelMatchesHeapOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		wheel := NewWheelService(time.Millisecond, 16)
		hp := NewHeapService()
		firedW := map[int]bool{}
		firedH := map[int]bool{}
		now := t0
		// Anchor both.
		wheel.Schedule(now, func() {})
		hp.Schedule(now, func() {})
		wheel.AdvanceTo(now)
		hp.AdvanceTo(now)
		type pending struct{ w, h ID }
		active := map[int]pending{}
		for i := 0; i < 120; i++ {
			switch r.Intn(4) {
			case 0, 1: // schedule (at least one tick ahead: a wheel
				// cannot fire within the current tick, a heap can)
				at := now.Add(time.Duration(1+r.Intn(100)) * time.Millisecond)
				k := i
				w := wheel.Schedule(at, func() { firedW[k] = true })
				h := hp.Schedule(at, func() { firedH[k] = true })
				active[k] = pending{w, h}
			case 2: // advance by at least one tick
				now = now.Add(time.Duration(1+r.Intn(30)) * time.Millisecond)
				wheel.AdvanceTo(now)
				hp.AdvanceTo(now)
			case 3: // cancel a random active timer
				for k, p := range active {
					cw := wheel.Cancel(p.w)
					ch := hp.Cancel(p.h)
					if cw != ch {
						return false
					}
					delete(active, k)
					break
				}
			}
		}
		now = now.Add(time.Second)
		wheel.AdvanceTo(now)
		hp.AdvanceTo(now)
		if len(firedW) != len(firedH) {
			return false
		}
		for k := range firedW {
			if !firedH[k] {
				return false
			}
		}
		return wheel.Pending() == hp.Pending()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(t0)
	if !c.Now().Equal(t0) {
		t.Error("initial time wrong")
	}
	c.Advance(time.Hour)
	if !c.Now().Equal(t0.Add(time.Hour)) {
		t.Error("advance wrong")
	}
	c.Set(t0) // backwards: ignored
	if !c.Now().Equal(t0.Add(time.Hour)) {
		t.Error("Set moved clock backwards")
	}
	c.Set(t0.Add(2 * time.Hour))
	if !c.Now().Equal(t0.Add(2 * time.Hour)) {
		t.Error("Set forward failed")
	}
}

func TestRunnerDrivesService(t *testing.T) {
	s := NewHeapService()
	var fired int64
	s.Schedule(time.Now().Add(20*time.Millisecond), func() { atomic.AddInt64(&fired, 1) })
	r := NewRunner(s, RealClock{}, 5*time.Millisecond)
	r.Start()
	defer r.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadInt64(&fired) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if atomic.LoadInt64(&fired) != 1 {
		t.Error("runner did not fire the timer")
	}
}
