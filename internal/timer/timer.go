// Package timer implements the BPMS timer service: deadline callbacks
// for timer events, task due dates, and escalations. Two interchangeable
// implementations are provided — a hashed timing wheel (the default)
// and a binary-heap service (the ablation baseline for experiment F4) —
// plus a virtual clock so engine tests and simulations run
// deterministically without sleeping.
package timer

import (
	"sync"
	"time"

	"bpms/internal/obs"
)

// ID identifies a scheduled timer within its service.
type ID uint64

// Clock abstracts time for the service. Production uses RealClock;
// tests and simulation use VirtualClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// RealClock reads the system clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually advanced clock.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Set jumps the clock to t (must not move backwards).
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

// Overdue describes one pending timer whose deadline has passed
// without firing — the raw material of the audit sweeper's timer-lag
// check.
type Overdue struct {
	ID ID
	At time.Time
}

// OverdueReporter is an optional Service extension: implementations
// that can enumerate pending past-deadline entries cheaply (the wheel
// scans only the buckets behind the swept tick, the heap walks only
// the subtree whose roots are due) expose it for the SLA sweeper.
type OverdueReporter interface {
	Overdue(now time.Time) []Overdue
}

// FireLagObserver is an optional Service extension wiring a fire-lag
// histogram: every fired entry observes fire-time minus deadline.
type FireLagObserver interface {
	SetFireLag(h *obs.Histogram)
}

// Service schedules one-shot deadline callbacks. Implementations are
// safe for concurrent use. Callbacks run synchronously inside the
// AdvanceTo (or background tick) that fires them, so they must be
// short; the engine hands them off to its own executor.
type Service interface {
	// Schedule registers fn to run once the service time reaches at.
	// Deadlines in the past fire on the next advance.
	Schedule(at time.Time, fn func()) ID
	// Cancel revokes a pending timer; it reports whether the timer was
	// still pending.
	Cancel(id ID) bool
	// AdvanceTo fires all timers with deadline <= now, in deadline
	// order, and returns the number fired.
	AdvanceTo(now time.Time) int
	// Pending returns the number of scheduled, unfired timers.
	Pending() int
}

// Runner drives a Service from a real clock in a background goroutine.
type Runner struct {
	svc    Service
	clock  Clock
	tick   time.Duration
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewRunner creates a runner that advances svc every tick.
func NewRunner(svc Service, clock Clock, tick time.Duration) *Runner {
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	return &Runner{svc: svc, clock: clock, tick: tick, stopCh: make(chan struct{})}
}

// Start launches the background ticker.
func (r *Runner) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.tick)
		defer t.Stop()
		for {
			select {
			case <-r.stopCh:
				return
			case <-t.C:
				r.svc.AdvanceTo(r.clock.Now())
			}
		}
	}()
}

// Stop halts the ticker and waits for it to exit.
func (r *Runner) Stop() {
	close(r.stopCh)
	r.wg.Wait()
}
