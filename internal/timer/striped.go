package timer

import (
	"sync/atomic"
	"time"

	"bpms/internal/obs"
)

// StripedWheel shards timers across N independent timing wheels, each
// guarded by its own mutex, removing the single global timer lock from
// the hot path: every engine shard schedules and cancels deadlines on
// every transition of a timed element, and with one wheel those
// operations all serialize on one mutex regardless of how many shards
// the engine runs. IDs come from one global sequence and a timer's
// stripe is its ID modulo the stripe count — the same modulo placement
// family the shard router, history pipeline, and worklist use — so
// Cancel routes without a lookup table and consecutive timers spread
// round-robin across stripes.
type StripedWheel struct {
	stripes  []*WheelService
	nextID   atomic.Uint64
	anchored atomic.Bool
	lag      *obs.Histogram // fire lag for the merged advance
}

// SetFireLag implements FireLagObserver. The handle applies to the
// merged advance (firing happens there, not on the stripes).
func (s *StripedWheel) SetFireLag(h *obs.Histogram) { s.lag = h }

// NewStripedWheel creates a striped wheel with the given stripe count
// (default 8) whose stripes each have the given tick granularity and
// slot count (defaults as in NewWheelService).
func NewStripedWheel(stripes int, tick time.Duration, slots int) *StripedWheel {
	if stripes <= 0 {
		stripes = 8
	}
	s := &StripedWheel{stripes: make([]*WheelService, stripes)}
	for i := range s.stripes {
		s.stripes[i] = NewWheelService(tick, slots)
	}
	return s
}

// Stripes returns the number of independent wheels.
func (s *StripedWheel) Stripes() int { return len(s.stripes) }

func (s *StripedWheel) stripeOf(id ID) *WheelService {
	return s.stripes[uint64(id)%uint64(len(s.stripes))]
}

// Schedule implements Service.
func (s *StripedWheel) Schedule(at time.Time, fn func()) ID {
	if !s.anchored.Load() && s.anchored.CompareAndSwap(false, true) {
		// Give every stripe the same origin so tick boundaries — and
		// therefore firing times — match a single wheel's.
		for _, w := range s.stripes {
			w.anchor(at)
		}
	}
	id := ID(s.nextID.Add(1))
	s.stripeOf(id).scheduleID(id, at, fn)
	return id
}

// Cancel implements Service.
func (s *StripedWheel) Cancel(id ID) bool {
	return s.stripeOf(id).Cancel(id)
}

// Pending implements Service.
func (s *StripedWheel) Pending() int {
	n := 0
	for _, w := range s.stripes {
		n += w.Pending()
	}
	return n
}

// AdvanceTo implements Service: each stripe collects its due entries
// under its own lock, then the merged set fires in global (deadline,
// id) order — the same order a single wheel would produce.
func (s *StripedWheel) AdvanceTo(now time.Time) int {
	var due []*wheelEntry
	for _, w := range s.stripes {
		due = append(due, w.collectDue(now)...)
	}
	return fireDue(due, now, s.lag)
}

// Overdue implements OverdueReporter across all stripes.
func (s *StripedWheel) Overdue(now time.Time) []Overdue {
	var out []Overdue
	for _, w := range s.stripes {
		out = append(out, w.Overdue(now)...)
	}
	return out
}
