package timer

import (
	"container/heap"
	"sync"
	"time"

	"bpms/internal/obs"
)

// HeapService is the binary-heap baseline implementation of Service:
// O(log n) schedule and fire, O(1) peek. It exists as the comparison
// point for the timing wheel in experiment F4 and as a correctness
// oracle in property tests.
type HeapService struct {
	mu     sync.Mutex
	h      entryHeap
	byID   map[ID]*heapEntry
	nextID ID
	lag    *obs.Histogram
}

// SetFireLag implements FireLagObserver.
func (s *HeapService) SetFireLag(h *obs.Histogram) { s.lag = h }

type heapEntry struct {
	id        ID
	at        time.Time
	fn        func()
	pos       int
	cancelled bool
}

type entryHeap []*heapEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(a, b int) bool {
	if !h[a].at.Equal(h[b].at) {
		return h[a].at.Before(h[b].at)
	}
	return h[a].id < h[b].id
}
func (h entryHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].pos = a
	h[b].pos = b
}
func (h *entryHeap) Push(x any) {
	e := x.(*heapEntry)
	e.pos = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewHeapService returns an empty heap-based timer service.
func NewHeapService() *HeapService {
	return &HeapService{byID: map[ID]*heapEntry{}}
}

// Schedule implements Service.
func (s *HeapService) Schedule(at time.Time, fn func()) ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	e := &heapEntry{id: s.nextID, at: at, fn: fn}
	heap.Push(&s.h, e)
	s.byID[e.id] = e
	return e.id
}

// Cancel implements Service. Cancellation is lazy: the entry is marked
// and skipped when it surfaces.
func (s *HeapService) Cancel(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok || e.cancelled {
		return false
	}
	e.cancelled = true
	delete(s.byID, id)
	return true
}

// Pending implements Service.
func (s *HeapService) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// AdvanceTo implements Service.
func (s *HeapService) AdvanceTo(now time.Time) int {
	var due []*heapEntry
	s.mu.Lock()
	for s.h.Len() > 0 {
		top := s.h[0]
		if top.at.After(now) {
			break
		}
		heap.Pop(&s.h)
		if top.cancelled {
			continue
		}
		delete(s.byID, top.id)
		due = append(due, top)
	}
	s.mu.Unlock()
	for _, e := range due {
		if s.lag != nil {
			d := now.Sub(e.at)
			if d < 0 {
				d = 0
			}
			s.lag.Observe(d)
		}
		e.fn()
	}
	return len(due)
}

// Overdue implements OverdueReporter: a heap-order walk that descends
// only into subtrees whose root is due (a child's deadline is never
// earlier than its parent's), so the cost is O(overdue), not O(n).
func (s *HeapService) Overdue(now time.Time) []Overdue {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Overdue
	var walk func(i int)
	walk = func(i int) {
		if i >= len(s.h) || s.h[i].at.After(now) {
			return
		}
		if !s.h[i].cancelled {
			out = append(out, Overdue{ID: s.h[i].id, At: s.h[i].at})
		}
		walk(2*i + 1)
		walk(2*i + 2)
	}
	walk(0)
	return out
}
