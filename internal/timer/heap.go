package timer

import (
	"container/heap"
	"sync"
	"time"
)

// HeapService is the binary-heap baseline implementation of Service:
// O(log n) schedule and fire, O(1) peek. It exists as the comparison
// point for the timing wheel in experiment F4 and as a correctness
// oracle in property tests.
type HeapService struct {
	mu     sync.Mutex
	h      entryHeap
	byID   map[ID]*heapEntry
	nextID ID
}

type heapEntry struct {
	id        ID
	at        time.Time
	fn        func()
	pos       int
	cancelled bool
}

type entryHeap []*heapEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(a, b int) bool {
	if !h[a].at.Equal(h[b].at) {
		return h[a].at.Before(h[b].at)
	}
	return h[a].id < h[b].id
}
func (h entryHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].pos = a
	h[b].pos = b
}
func (h *entryHeap) Push(x any) {
	e := x.(*heapEntry)
	e.pos = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewHeapService returns an empty heap-based timer service.
func NewHeapService() *HeapService {
	return &HeapService{byID: map[ID]*heapEntry{}}
}

// Schedule implements Service.
func (s *HeapService) Schedule(at time.Time, fn func()) ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	e := &heapEntry{id: s.nextID, at: at, fn: fn}
	heap.Push(&s.h, e)
	s.byID[e.id] = e
	return e.id
}

// Cancel implements Service. Cancellation is lazy: the entry is marked
// and skipped when it surfaces.
func (s *HeapService) Cancel(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok || e.cancelled {
		return false
	}
	e.cancelled = true
	delete(s.byID, id)
	return true
}

// Pending implements Service.
func (s *HeapService) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// AdvanceTo implements Service.
func (s *HeapService) AdvanceTo(now time.Time) int {
	var due []*heapEntry
	s.mu.Lock()
	for s.h.Len() > 0 {
		top := s.h[0]
		if top.at.After(now) {
			break
		}
		heap.Pop(&s.h)
		if top.cancelled {
			continue
		}
		delete(s.byID, top.id)
		due = append(due, top)
	}
	s.mu.Unlock()
	for _, e := range due {
		e.fn()
	}
	return len(due)
}
