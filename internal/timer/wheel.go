package timer

import (
	"sort"
	"sync"
	"time"

	"bpms/internal/obs"
)

// WheelService is a hashed timing wheel: timers hash into one of
// `slots` buckets by deadline tick; each advance sweeps only the
// buckets between the previous and the new time, firing entries whose
// deadline has passed. Insert and cancel are O(1); an advance is
// proportional to the buckets swept plus the timers fired, independent
// of the total number of pending timers — the property benchmarked in
// experiment F4 against the heap baseline.
type WheelService struct {
	mu       sync.Mutex
	tick     time.Duration
	slots    int
	buckets  []map[ID]*wheelEntry
	byID     map[ID]*wheelEntry
	nextID   ID
	lastTick int64 // last fully swept tick
	origin   time.Time
	started  bool
	lag      *obs.Histogram // fire lag (nil = uninstrumented)
}

// SetFireLag implements FireLagObserver.
func (w *WheelService) SetFireLag(h *obs.Histogram) { w.lag = h }

type wheelEntry struct {
	id   ID
	at   time.Time
	tick int64
	fn   func()
}

// NewWheelService creates a wheel with the given tick granularity and
// slot count (defaults: 10ms, 512 slots).
func NewWheelService(tick time.Duration, slots int) *WheelService {
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	if slots <= 0 {
		slots = 512
	}
	w := &WheelService{
		tick:    tick,
		slots:   slots,
		buckets: make([]map[ID]*wheelEntry, slots),
		byID:    map[ID]*wheelEntry{},
	}
	for i := range w.buckets {
		w.buckets[i] = map[ID]*wheelEntry{}
	}
	return w
}

func (w *WheelService) tickOf(t time.Time) int64 {
	return int64(t.Sub(w.origin) / w.tick)
}

// entryTickOf rounds a deadline up to the next tick boundary so an
// entry never fires before its wall-clock deadline.
func (w *WheelService) entryTickOf(t time.Time) int64 {
	d := t.Sub(w.origin)
	tk := int64(d / w.tick)
	if d%w.tick != 0 {
		tk++
	}
	return tk
}

// Schedule implements Service.
func (w *WheelService) Schedule(at time.Time, fn func()) ID {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextID++
	id := w.nextID
	w.scheduleLocked(id, at, fn)
	return id
}

// scheduleID inserts an entry under a caller-assigned ID. The striped
// wheel allocates IDs from one global sequence (so a timer's stripe is
// recoverable from its ID alone); IDs passed here must be unique
// within this wheel.
func (w *WheelService) scheduleID(id ID, at time.Time, fn func()) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.scheduleLocked(id, at, fn)
}

// anchor fixes the wheel's origin, a no-op once started. The striped
// wheel anchors every stripe at its first schedule's deadline so all
// stripes agree on tick boundaries — otherwise a stripe whose first
// timer arrives late would clamp already-due deadlines forward and
// fire them later than a single wheel would.
func (w *WheelService) anchor(at time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started {
		w.origin = at
		w.lastTick = w.tickOf(at) - 1
		w.started = true
	}
}

func (w *WheelService) scheduleLocked(id ID, at time.Time, fn func()) {
	if !w.started {
		// Anchor the wheel's origin at the first schedule.
		w.origin = at
		w.lastTick = w.tickOf(at) - 1
		w.started = true
	}
	e := &wheelEntry{id: id, at: at, tick: w.entryTickOf(at), fn: fn}
	if e.tick <= w.lastTick {
		e.tick = w.lastTick + 1 // past deadlines fire on next advance
	}
	w.buckets[int(e.tick%int64(w.slots))][id] = e
	w.byID[id] = e
}

// Cancel implements Service.
func (w *WheelService) Cancel(id ID) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.byID[id]
	if !ok {
		return false
	}
	delete(w.byID, id)
	delete(w.buckets[int(e.tick%int64(w.slots))], id)
	return true
}

// Pending implements Service.
func (w *WheelService) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.byID)
}

// AdvanceTo implements Service: sweeps all ticks in (lastTick, nowTick]
// and fires due entries in deadline order.
func (w *WheelService) AdvanceTo(now time.Time) int {
	return fireDue(w.collectDue(now), now, w.lag)
}

// Overdue implements OverdueReporter: pending entries whose deadline
// is at or before now, without firing or removing them. Like
// collectDue it visits only the buckets behind the swept tick, so the
// walk is O(buckets spanned + overdue entries).
func (w *WheelService) Overdue(now time.Time) []Overdue {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started {
		return nil
	}
	nowTick := w.tickOf(now)
	if nowTick <= w.lastTick {
		return nil
	}
	var out []Overdue
	span := nowTick - w.lastTick
	if span > int64(w.slots) {
		span = int64(w.slots)
	}
	for i := int64(1); i <= span; i++ {
		tk := w.lastTick + i
		for _, e := range w.buckets[int(tk%int64(w.slots))] {
			if e.tick <= nowTick && !e.at.After(now) {
				out = append(out, Overdue{ID: e.id, At: e.at})
			}
		}
	}
	return out
}

// collectDue removes and returns (unsorted) every entry due at or
// before now, advancing the wheel's swept tick. Shared by AdvanceTo
// and the striped wheel's merged advance, which gathers due entries
// from all stripes before establishing the global firing order.
func (w *WheelService) collectDue(now time.Time) []*wheelEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started {
		return nil
	}
	nowTick := w.tickOf(now)
	if nowTick <= w.lastTick {
		return nil
	}
	var due []*wheelEntry
	// If the advance spans more than a full wheel rotation, every
	// bucket is swept exactly once.
	span := nowTick - w.lastTick
	if span > int64(w.slots) {
		span = int64(w.slots)
	}
	for i := int64(1); i <= span; i++ {
		tk := w.lastTick + i
		bucket := w.buckets[int(tk%int64(w.slots))]
		for id, e := range bucket {
			if e.tick <= nowTick {
				due = append(due, e)
				delete(bucket, id)
				delete(w.byID, id)
			}
		}
	}
	w.lastTick = nowTick
	return due
}

// fireDue fires collected entries in (deadline, id) order outside any
// wheel lock and returns the number fired. now is the advance time;
// when lag is instrumented every entry observes fire-time minus
// deadline (clamped at zero — entries rounded up to a tick boundary
// can fire within the same advance that makes them due).
func fireDue(due []*wheelEntry, now time.Time, lag *obs.Histogram) int {
	sort.Slice(due, func(a, b int) bool {
		if !due[a].at.Equal(due[b].at) {
			return due[a].at.Before(due[b].at)
		}
		return due[a].id < due[b].id
	})
	for _, e := range due {
		if lag != nil {
			d := now.Sub(e.at)
			if d < 0 {
				d = 0
			}
			lag.Observe(d)
		}
		e.fn()
	}
	return len(due)
}
