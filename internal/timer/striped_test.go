package timer

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStripedWheelFiresInDeadlineOrder: timers land on different
// stripes (round-robin by ID) but the merged advance fires them in
// global (deadline, id) order, exactly as a single wheel would.
func TestStripedWheelFiresInDeadlineOrder(t *testing.T) {
	w := NewStripedWheel(4, 10*time.Millisecond, 64)
	base := time.Unix(1000, 0)
	var mu sync.Mutex
	var fired []int
	// Schedule in shuffled deadline order so bucket order can't fake it.
	offsets := []int{7, 2, 9, 4, 1, 8, 3, 6, 5, 0}
	for _, off := range offsets {
		off := off
		w.Schedule(base.Add(time.Duration(off)*100*time.Millisecond), func() {
			mu.Lock()
			fired = append(fired, off)
			mu.Unlock()
		})
	}
	if got := w.Pending(); got != len(offsets) {
		t.Fatalf("Pending = %d, want %d", got, len(offsets))
	}
	if n := w.AdvanceTo(base.Add(time.Second)); n != len(offsets) {
		t.Fatalf("fired %d, want %d", n, len(offsets))
	}
	for i, off := range fired {
		if off != i {
			t.Fatalf("firing order %v, want ascending deadlines", fired)
		}
	}
	if got := w.Pending(); got != 0 {
		t.Fatalf("Pending after advance = %d", got)
	}
}

// TestStripedWheelCancelRoutesById: cancellation finds the owning
// stripe from the ID alone.
func TestStripedWheelCancelRoutesById(t *testing.T) {
	w := NewStripedWheel(3, 10*time.Millisecond, 64)
	base := time.Unix(2000, 0)
	ids := make([]ID, 0, 9)
	for i := 0; i < 9; i++ {
		ids = append(ids, w.Schedule(base.Add(time.Second), func() {})) //nolint:staticcheck
	}
	for _, id := range ids[:5] {
		if !w.Cancel(id) {
			t.Fatalf("Cancel(%d) = false for pending timer", id)
		}
		if w.Cancel(id) {
			t.Fatalf("Cancel(%d) = true twice", id)
		}
	}
	if got := w.Pending(); got != 4 {
		t.Fatalf("Pending = %d, want 4", got)
	}
	if n := w.AdvanceTo(base.Add(2 * time.Second)); n != 4 {
		t.Fatalf("fired %d, want the 4 uncancelled", n)
	}
}

// TestStripedWheelConcurrent mirrors the task.Service index-consistency
// pattern: concurrent scheduler, canceller, and advancer goroutines
// race (run with -race), and the fired + cancelled + still-pending
// counts always add up to the scheduled total.
func TestStripedWheelConcurrent(t *testing.T) {
	w := NewStripedWheel(4, time.Millisecond, 128)
	base := time.Unix(3000, 0)
	const workers, per = 4, 200
	var fired atomic.Int64
	var cancelled atomic.Int64
	var wg sync.WaitGroup
	idsCh := make(chan ID, workers*per)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				at := base.Add(time.Duration(i%50) * 10 * time.Millisecond)
				id := w.Schedule(at, func() { fired.Add(1) })
				if i%3 == 0 {
					idsCh <- id
				}
			}
		}(g)
	}
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for id := range idsCh {
			if w.Cancel(id) {
				cancelled.Add(1)
			}
		}
	}()
	stop := make(chan struct{})
	var awg sync.WaitGroup
	awg.Add(1)
	go func() {
		defer awg.Done()
		now := base
		for {
			select {
			case <-stop:
				return
			default:
			}
			now = now.Add(5 * time.Millisecond)
			w.AdvanceTo(now)
		}
	}()
	wg.Wait()
	close(idsCh)
	cwg.Wait()
	close(stop)
	awg.Wait()
	// Drain everything still pending.
	w.AdvanceTo(base.Add(time.Hour))
	total := int64(workers * per)
	if got := fired.Load() + cancelled.Load(); got != total {
		t.Fatalf("fired %d + cancelled %d = %d, want %d (no timer lost or doubled)",
			fired.Load(), cancelled.Load(), got, total)
	}
	if p := w.Pending(); p != 0 {
		t.Fatalf("Pending = %d after full drain", p)
	}
}

// TestStripedWheelMatchesSingleWheel: the striped wheel is
// behaviourally interchangeable with one wheel for the same schedule.
func TestStripedWheelMatchesSingleWheel(t *testing.T) {
	single := NewWheelService(10*time.Millisecond, 64)
	striped := NewStripedWheel(4, 10*time.Millisecond, 64)
	base := time.Unix(4000, 0)
	var a, b []int
	for i := 0; i < 20; i++ {
		i := i
		at := base.Add(time.Duration((i*7)%13) * 50 * time.Millisecond)
		single.Schedule(at, func() { a = append(a, i) })
		striped.Schedule(at, func() { b = append(b, i) })
	}
	for step := 1; step <= 13; step++ {
		now := base.Add(time.Duration(step) * 50 * time.Millisecond)
		single.AdvanceTo(now)
		striped.AdvanceTo(now)
	}
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("fired %d vs %d, want 20 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("firing order diverges at %d: single %v striped %v", i, a, b)
		}
	}
}
