package model

import (
	"fmt"
	"sort"

	"bpms/internal/expr"
)

// Deploy-time expression compilation. A deployed process is immutable,
// so every expression it carries — flow conditions, output mappings,
// multi-instance collection/completion conditions, correlation keys —
// can be compiled exactly once and evaluated arbitrarily often. The
// engine calls Process.Compile from Deploy and journal recovery;
// runtime evaluation then goes through the accessors below, which
// serve the retained programs and fall back to the shared expression
// cache (expr.Cached) for definitions that were never compiled (ad-hoc
// models in tests, simulation, and benchmarks).

// OutputMapping is one compiled output assignment of an element, in
// deterministic (name-sorted) evaluation order.
type OutputMapping struct {
	Name    string
	Program *expr.Program
}

// compiledElement caches an element's compiled expression programs.
type compiledElement struct {
	outputs    []OutputMapping // sorted by Name
	collection *expr.Program   // Multi.Collection
	completion *expr.Program   // Multi.CompletionCondition
	corrKey    *expr.Program   // CorrelationKey
}

// Compile builds and retains the compiled programs for every
// expression in the process, recursing into sub-process bodies. It is
// idempotent and must be called again after structural mutation (like
// Index, which it implies for expression state). Definitions that
// passed Validate always compile cleanly.
func (p *Process) Compile() error {
	for _, f := range p.Flows {
		if f.Condition == "" {
			f.program = nil
			continue
		}
		prog, err := expr.Compile(f.Condition)
		if err != nil {
			return fmt.Errorf("model: flow %q condition: %w", f.ID, err)
		}
		f.program = prog
	}
	for _, e := range p.Elements {
		ce := &compiledElement{}
		if len(e.Outputs) > 0 {
			names := make([]string, 0, len(e.Outputs))
			for name := range e.Outputs {
				names = append(names, name)
			}
			sort.Strings(names)
			ce.outputs = make([]OutputMapping, 0, len(names))
			for _, name := range names {
				prog, err := expr.Compile(e.Outputs[name])
				if err != nil {
					return fmt.Errorf("model: element %q output %q: %w", e.ID, name, err)
				}
				ce.outputs = append(ce.outputs, OutputMapping{Name: name, Program: prog})
			}
		}
		if e.Multi != nil {
			if e.Multi.Collection != "" {
				prog, err := expr.Compile(e.Multi.Collection)
				if err != nil {
					return fmt.Errorf("model: element %q collection: %w", e.ID, err)
				}
				ce.collection = prog
			}
			if e.Multi.CompletionCondition != "" {
				prog, err := expr.Compile(e.Multi.CompletionCondition)
				if err != nil {
					return fmt.Errorf("model: element %q completion condition: %w", e.ID, err)
				}
				ce.completion = prog
			}
		}
		if e.CorrelationKey != "" {
			prog, err := expr.Compile(e.CorrelationKey)
			if err != nil {
				return fmt.Errorf("model: element %q correlation key: %w", e.ID, err)
			}
			ce.corrKey = prog
		}
		e.compiled = ce
		if e.SubProcess != nil {
			if err := e.SubProcess.Compile(); err != nil {
				return fmt.Errorf("model: sub-process %q: %w", e.ID, err)
			}
		}
	}
	return nil
}

// Compiled reports whether Compile has run on this process.
func (p *Process) Compiled() bool {
	for _, e := range p.Elements {
		return e.compiled != nil
	}
	return true // empty process: vacuously compiled
}

// Program returns the flow's compiled condition (nil when the flow is
// unconditional). Uncompiled definitions fall back to the shared
// expression cache, so the method is always safe for concurrent use.
func (f *Flow) Program() (*expr.Program, error) {
	if f.Condition == "" {
		return nil, nil
	}
	if f.program != nil {
		return f.program, nil
	}
	return expr.Cached(f.Condition)
}

// OutputMappings returns the element's compiled output mappings in
// deterministic name order (nil when the element has none).
func (e *Element) OutputMappings() ([]OutputMapping, error) {
	if e.compiled != nil {
		return e.compiled.outputs, nil
	}
	if len(e.Outputs) == 0 {
		return nil, nil
	}
	names := make([]string, 0, len(e.Outputs))
	for name := range e.Outputs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]OutputMapping, 0, len(names))
	for _, name := range names {
		prog, err := expr.Cached(e.Outputs[name])
		if err != nil {
			return nil, fmt.Errorf("output %q: %w", name, err)
		}
		out = append(out, OutputMapping{Name: name, Program: prog})
	}
	return out, nil
}

// CollectionProgram returns the compiled multi-instance collection
// expression (nil when the element has no multi-instance marker).
func (e *Element) CollectionProgram() (*expr.Program, error) {
	if e.compiled != nil {
		return e.compiled.collection, nil
	}
	if e.Multi == nil || e.Multi.Collection == "" {
		return nil, nil
	}
	return expr.Cached(e.Multi.Collection)
}

// CompletionProgram returns the compiled multi-instance completion
// condition (nil when none is declared).
func (e *Element) CompletionProgram() (*expr.Program, error) {
	if e.compiled != nil {
		return e.compiled.completion, nil
	}
	if e.Multi == nil || e.Multi.CompletionCondition == "" {
		return nil, nil
	}
	return expr.Cached(e.Multi.CompletionCondition)
}

// CorrelationProgram returns the compiled correlation-key expression
// (nil when the element declares none).
func (e *Element) CorrelationProgram() (*expr.Program, error) {
	if e.compiled != nil {
		return e.compiled.corrKey, nil
	}
	if e.CorrelationKey == "" {
		return nil, nil
	}
	return expr.Cached(e.CorrelationKey)
}
