package model

import (
	"strings"
	"testing"
	"testing/quick"
)

func simpleProcess(t *testing.T) *Process {
	t.Helper()
	p, err := New("order").
		Name("Order handling").
		Start("start").
		UserTask("approve", Name("Approve order"), Role("manager"), DueIn("4h"), Priority(2)).
		ServiceTask("charge", "payments.charge", Retries(3)).
		XOR("decide", Default("toReject")).
		ServiceTask("ship", NoopHandler).
		ServiceTask("notify", NoopHandler).
		XOR("merge").
		End("end").
		Flow("start", "approve").
		Flow("approve", "charge").
		Flow("charge", "decide").
		FlowIf("decide", "ship", "amount > 100").
		FlowID("toReject", "decide", "notify", "").
		Flow("ship", "merge").
		Flow("notify", "merge").
		Flow("merge", "end").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderBuildsValidProcess(t *testing.T) {
	p := simpleProcess(t)
	if p.ID != "order" || p.Name != "Order handling" {
		t.Errorf("identity: %q %q", p.ID, p.Name)
	}
	if got := len(p.Elements); got != 8 {
		t.Errorf("elements = %d, want 8", got)
	}
	if got := len(p.Flows); got != 8 {
		t.Errorf("flows = %d, want 8", got)
	}
	if e := p.ElementByID("approve"); e == nil || e.Kind != KindUserTask || e.Role != "manager" {
		t.Errorf("approve element wrong: %+v", e)
	}
	if fs := p.Outgoing("decide"); len(fs) != 2 {
		t.Errorf("decide outgoing = %d, want 2", len(fs))
	}
	if fs := p.Incoming("merge"); len(fs) != 2 {
		t.Errorf("merge incoming = %d, want 2", len(fs))
	}
	st := p.Stats()
	if st.Tasks != 4 || st.Gateways != 2 || st.Events != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	tests := []struct {
		name    string
		build   func() *Process
		wantSub string
	}{
		{"no start", func() *Process {
			p := &Process{ID: "p", Elements: []*Element{{ID: "e", Kind: KindEndEvent}}}
			return p
		}, "no start event"},
		{"no end", func() *Process {
			return &Process{ID: "p", Elements: []*Element{{ID: "s", Kind: KindStartEvent}}}
		}, "no end event"},
		{"duplicate ids", func() *Process {
			return &Process{ID: "p", Elements: []*Element{
				{ID: "x", Kind: KindStartEvent}, {ID: "x", Kind: KindEndEvent},
			}}
		}, "duplicate element id"},
		{"dangling flow", func() *Process {
			return &Process{ID: "p",
				Elements: []*Element{{ID: "s", Kind: KindStartEvent}, {ID: "e", Kind: KindEndEvent}},
				Flows:    []*Flow{{ID: "f1", From: "s", To: "nowhere"}},
			}
		}, "unknown target"},
		{"bad condition", func() *Process {
			return &Process{ID: "p",
				Elements: []*Element{{ID: "s", Kind: KindStartEvent}, {ID: "e", Kind: KindEndEvent}},
				Flows:    []*Flow{{ID: "f1", From: "s", To: "e", Condition: "1 +"}},
			}
		}, "does not compile"},
		{"service task without handler", func() *Process {
			return &Process{ID: "p",
				Elements: []*Element{
					{ID: "s", Kind: KindStartEvent},
					{ID: "t", Kind: KindServiceTask},
					{ID: "e", Kind: KindEndEvent},
				},
				Flows: []*Flow{{ID: "f1", From: "s", To: "t"}, {ID: "f2", From: "t", To: "e"}},
			}
		}, "no handler"},
		{"bad timer", func() *Process {
			return &Process{ID: "p",
				Elements: []*Element{
					{ID: "s", Kind: KindStartEvent},
					{ID: "t", Kind: KindTimerCatchEvent, Timer: "soon"},
					{ID: "e", Kind: KindEndEvent},
				},
				Flows: []*Flow{{ID: "f1", From: "s", To: "t"}, {ID: "f2", From: "t", To: "e"}},
			}
		}, "bad duration"},
		{"unreachable element", func() *Process {
			return &Process{ID: "p",
				Elements: []*Element{
					{ID: "s", Kind: KindStartEvent},
					{ID: "island", Kind: KindServiceTask, Handler: "h"},
					{ID: "e", Kind: KindEndEvent},
				},
				Flows: []*Flow{{ID: "f1", From: "s", To: "e"}, {ID: "f2", From: "island", To: "e"}},
			}
		}, "unreachable from start"},
		{"boundary on unknown host", func() *Process {
			return &Process{ID: "p",
				Elements: []*Element{
					{ID: "s", Kind: KindStartEvent},
					{ID: "b", Kind: KindBoundaryEvent, AttachedTo: "ghost", Boundary: BoundaryTimer, Timer: "1h"},
					{ID: "e", Kind: KindEndEvent},
				},
				Flows: []*Flow{{ID: "f1", From: "s", To: "e"}, {ID: "f2", From: "b", To: "e"}},
			}
		}, "unknown activity"},
		{"default flow not outgoing", func() *Process {
			return &Process{ID: "p",
				Elements: []*Element{
					{ID: "s", Kind: KindStartEvent},
					{ID: "g", Kind: KindExclusiveGateway, DefaultFlow: "zzz"},
					{ID: "e", Kind: KindEndEvent},
				},
				Flows: []*Flow{{ID: "f1", From: "s", To: "g"}, {ID: "f2", From: "g", To: "e"}},
			}
		}, "default flow"},
		{"multi-instance without collection", func() *Process {
			return &Process{ID: "p",
				Elements: []*Element{
					{ID: "s", Kind: KindStartEvent},
					{ID: "t", Kind: KindServiceTask, Handler: "h", Multi: &MultiInstance{ElementVar: "x"}},
					{ID: "e", Kind: KindEndEvent},
				},
				Flows: []*Flow{{ID: "f1", From: "s", To: "t"}, {ID: "f2", From: "t", To: "e"}},
			}
		}, "no collection"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.build().Validate()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tt.wantSub)
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error = %q, want substring %q", err, tt.wantSub)
			}
		})
	}
}

func TestValidateAcceptsGenerated(t *testing.T) {
	for _, p := range []*Process{
		Sequence(1), Sequence(10), Parallel(2), Parallel(8),
		Choice(3), Loop(), Mixed(),
		RandomStructured(1, 10), RandomStructured(7, 50), RandomStructured(42, 200),
		WithDeadlock(3), WithLackOfSync(3),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.ID, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := simpleProcess(t)
	data, err := EncodeJSON(orig)
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	got, err := DecodeJSON(data)
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	assertSameProcess(t, orig, got)
}

func TestXMLRoundTrip(t *testing.T) {
	orig := simpleProcess(t)
	data, err := EncodeXML(orig)
	if err != nil {
		t.Fatalf("EncodeXML: %v", err)
	}
	if !strings.Contains(string(data), "<userTask") || !strings.Contains(string(data), "sequenceFlow") {
		t.Errorf("XML does not look like BPMN:\n%s", data)
	}
	got, err := DecodeXML(data)
	if err != nil {
		t.Fatalf("DecodeXML: %v\n%s", err, data)
	}
	assertSameProcess(t, orig, got)
}

func TestXMLRoundTripComplexFeatures(t *testing.T) {
	sub, err := New("sub").
		Start("s").ScriptTask("calc", Output("y", "x * 2")).End("e").
		Seq("s", "calc", "e").Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New("complex").
		Start("start").
		SubProcess("inner", sub, Name("Inner")).
		UserTask("review", Role("qa"), MultiParallel("items", "item"), CompletionCondition("done == true")).
		BoundaryTimer("esc", "review", "2h", true).
		ServiceTask("fix", NoopHandler).
		MessageCatch("wait", "payment.received", CorrelationKey("orderId")).
		End("end").End("end2").
		Seq("start", "inner", "review", "wait", "end").
		Flow("esc", "fix").
		Flow("fix", "end2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	for name, codec := range map[string]struct {
		enc func(*Process) ([]byte, error)
		dec func([]byte) (*Process, error)
	}{
		"json": {EncodeJSON, DecodeJSON},
		"xml":  {EncodeXML, DecodeXML},
	} {
		data, err := codec.enc(p)
		if err != nil {
			t.Fatalf("%s encode: %v", name, err)
		}
		got, err := codec.dec(data)
		if err != nil {
			t.Fatalf("%s decode: %v\n%s", name, err, data)
		}
		assertSameProcess(t, p, got)
		inner := got.ElementByID("inner")
		if inner.SubProcess == nil || inner.SubProcess.ElementByID("calc") == nil {
			t.Errorf("%s: sub-process lost", name)
		}
		review := got.ElementByID("review")
		if review.Multi == nil || !review.Multi.Parallel || review.Multi.CompletionCondition == "" {
			t.Errorf("%s: multi-instance lost: %+v", name, review.Multi)
		}
		esc := got.ElementByID("esc")
		if esc.Boundary != BoundaryTimer || !esc.CancelActivity || esc.AttachedTo != "review" {
			t.Errorf("%s: boundary lost: %+v", name, esc)
		}
	}
}

func assertSameProcess(t *testing.T, a, b *Process) {
	t.Helper()
	if a.ID != b.ID || a.Name != b.Name || a.Version != b.Version {
		t.Errorf("identity mismatch: %q/%q/%d vs %q/%q/%d", a.ID, a.Name, a.Version, b.ID, b.Name, b.Version)
	}
	if len(a.Elements) != len(b.Elements) {
		t.Fatalf("elements %d vs %d", len(a.Elements), len(b.Elements))
	}
	for i, ea := range a.Elements {
		eb := b.Elements[i]
		if ea.ID != eb.ID || ea.Kind != eb.Kind || ea.Role != eb.Role ||
			ea.Handler != eb.Handler || ea.Timer != eb.Timer || ea.Message != eb.Message {
			t.Errorf("element %d mismatch: %+v vs %+v", i, ea, eb)
		}
	}
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("flows %d vs %d", len(a.Flows), len(b.Flows))
	}
	for i, fa := range a.Flows {
		fb := b.Flows[i]
		if fa.ID != fb.ID || fa.From != fb.From || fa.To != fb.To || fa.Condition != fb.Condition {
			t.Errorf("flow %d mismatch: %+v vs %+v", i, fa, fb)
		}
	}
}

func TestDecodeJSONRejectsBadKind(t *testing.T) {
	_, err := DecodeJSON([]byte(`{"id":"p","elements":[{"id":"x","kind":"warpDrive"}],"flows":[]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown element kind") {
		t.Errorf("err = %v, want unknown element kind", err)
	}
}

func TestDecodeXMLRejectsBadElement(t *testing.T) {
	_, err := DecodeXML([]byte(`<process id="p"><warpDrive id="x"/></process>`))
	if err == nil || !strings.Contains(err.Error(), "unknown element") {
		t.Errorf("err = %v, want unknown element", err)
	}
}

func TestClone(t *testing.T) {
	p := simpleProcess(t)
	c := p.Clone()
	assertSameProcess(t, p, c)
	// Mutating the clone must not affect the original.
	c.Elements[1].Role = "changed"
	c.Flows[0].To = "elsewhere"
	if p.Elements[1].Role == "changed" || p.Flows[0].To == "elsewhere" {
		t.Error("Clone shares state with original")
	}
}

func TestGeneratedTopologyShapes(t *testing.T) {
	seq := Sequence(5)
	if st := seq.Stats(); st.Tasks != 5 || st.Gateways != 0 {
		t.Errorf("Sequence(5) stats = %+v", st)
	}
	par := Parallel(4)
	if st := par.Stats(); st.Tasks != 4 || st.Gateways != 2 || st.MaxFanOut != 4 {
		t.Errorf("Parallel(4) stats = %+v", st)
	}
	ch := Choice(3)
	// Choice(3) has 3 guarded branches plus the default branch task t0.
	if st := ch.Stats(); st.Tasks != 4 || st.Conditions != 3 {
		t.Errorf("Choice(3) stats = %+v", st)
	}
}

// Property: RandomStructured always builds a valid process whose task
// count grows with the requested size.
func TestQuickRandomStructuredValid(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		size := int(sz%60) + 1
		p := RandomStructured(seed, size)
		if err := p.Validate(); err != nil {
			return false
		}
		return p.Stats().Tasks >= 1
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: JSON round-trips preserve generated processes.
func TestQuickJSONRoundTripGenerated(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		p := RandomStructured(seed, int(sz%40)+1)
		data, err := EncodeJSON(p)
		if err != nil {
			return false
		}
		q, err := DecodeJSON(data)
		if err != nil {
			return false
		}
		return len(q.Elements) == len(p.Elements) && len(q.Flows) == len(p.Flows)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindUserTask.IsTask() || !KindUserTask.IsActivity() || !KindUserTask.IsWait() {
		t.Error("user task predicates wrong")
	}
	if !KindParallelGateway.IsGateway() || KindParallelGateway.IsTask() {
		t.Error("gateway predicates wrong")
	}
	if !KindStartEvent.IsEvent() || KindStartEvent.IsActivity() {
		t.Error("event predicates wrong")
	}
	if !KindSubProcess.IsActivity() || KindSubProcess.IsTask() {
		t.Error("subprocess predicates wrong")
	}
	if KindServiceTask.IsWait() || !KindReceiveTask.IsWait() {
		t.Error("wait predicates wrong")
	}
	for k := KindStartEvent; k <= KindCallActivity; k++ {
		name := k.String()
		back, ok := KindFromName(name)
		if !ok || back != k {
			t.Errorf("KindFromName(%q) = %v, %v", name, back, ok)
		}
	}
}
