package model

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bpms/internal/expr"
)

// Process is a complete process definition: a named, versioned graph of
// elements and sequence flows. Once deployed to an engine a Process is
// treated as immutable.
type Process struct {
	ID      string `json:"id"`
	Name    string `json:"name,omitempty"`
	Version int    `json:"version,omitempty"`

	Elements []*Element `json:"elements"`
	Flows    []*Flow    `json:"flows"`

	// Documentation is free-text, carried through serialisation.
	Documentation string `json:"documentation,omitempty"`

	// index caches, built lazily by Index().
	byID      map[string]*Element
	out       map[string][]*Flow
	in        map[string][]*Flow
	boundary  map[string][]*Element
	flowIndex map[string]*Flow
}

// Index (re)builds the lookup caches. It is called automatically by the
// accessors and must be called again after structural mutation.
func (p *Process) Index() {
	p.byID = make(map[string]*Element, len(p.Elements))
	p.boundary = make(map[string][]*Element)
	for _, e := range p.Elements {
		p.byID[e.ID] = e
		if e.Kind == KindBoundaryEvent && e.AttachedTo != "" {
			p.boundary[e.AttachedTo] = append(p.boundary[e.AttachedTo], e)
		}
	}
	p.out = make(map[string][]*Flow, len(p.Elements))
	p.in = make(map[string][]*Flow, len(p.Elements))
	p.flowIndex = make(map[string]*Flow, len(p.Flows))
	for _, f := range p.Flows {
		p.out[f.From] = append(p.out[f.From], f)
		p.in[f.To] = append(p.in[f.To], f)
		p.flowIndex[f.ID] = f
	}
}

func (p *Process) ensureIndex() {
	if p.byID == nil {
		p.Index()
	}
}

// ElementByID returns the element with the given ID, or nil.
func (p *Process) ElementByID(id string) *Element {
	p.ensureIndex()
	return p.byID[id]
}

// FlowByID returns the flow with the given ID, or nil.
func (p *Process) FlowByID(id string) *Flow {
	p.ensureIndex()
	return p.flowIndex[id]
}

// Outgoing returns the sequence flows leaving element id.
func (p *Process) Outgoing(id string) []*Flow {
	p.ensureIndex()
	return p.out[id]
}

// Incoming returns the sequence flows entering element id.
func (p *Process) Incoming(id string) []*Flow {
	p.ensureIndex()
	return p.in[id]
}

// BoundaryEvents returns the boundary events attached to activity id.
func (p *Process) BoundaryEvents(id string) []*Element {
	p.ensureIndex()
	return p.boundary[id]
}

// StartEvents returns all start events of the process.
func (p *Process) StartEvents() []*Element {
	var out []*Element
	for _, e := range p.Elements {
		if e.Kind == KindStartEvent {
			out = append(out, e)
		}
	}
	return out
}

// EndEvents returns all end events (including terminate ends).
func (p *Process) EndEvents() []*Element {
	var out []*Element
	for _, e := range p.Elements {
		if e.Kind == KindEndEvent || e.Kind == KindTerminateEnd {
			out = append(out, e)
		}
	}
	return out
}

// ValidationError aggregates the structural problems found in a
// process definition. It implements error.
type ValidationError struct {
	ProcessID string
	Problems  []string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("model: process %q invalid: %s", e.ProcessID, strings.Join(e.Problems, "; "))
}

// Validate performs structural validation of the definition: ID
// uniqueness, referential integrity of flows and boundary attachments,
// gateway/default-flow consistency, expression compilability, timer
// parseability, reachability of every node from a start event, and
// reachability of an end event from every node. Sub-processes are
// validated recursively. It returns nil or a *ValidationError.
func (p *Process) Validate() error {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if p.ID == "" {
		addf("process has no id")
	}
	seen := map[string]bool{}
	for _, e := range p.Elements {
		if e.ID == "" {
			addf("element with empty id (name %q)", e.Name)
			continue
		}
		if seen[e.ID] {
			addf("duplicate element id %q", e.ID)
		}
		seen[e.ID] = true
	}
	p.Index()

	starts, ends := 0, 0
	for _, e := range p.Elements {
		switch e.Kind {
		case KindStartEvent:
			starts++
		case KindEndEvent, KindTerminateEnd:
			ends++
		}
	}
	if starts == 0 {
		addf("no start event")
	}
	if ends == 0 {
		addf("no end event")
	}

	flowIDs := map[string]bool{}
	for _, f := range p.Flows {
		if f.ID == "" {
			addf("flow with empty id (%s->%s)", f.From, f.To)
		} else if flowIDs[f.ID] {
			addf("duplicate flow id %q", f.ID)
		}
		flowIDs[f.ID] = true
		if p.byID[f.From] == nil {
			addf("flow %q references unknown source %q", f.ID, f.From)
		}
		if p.byID[f.To] == nil {
			addf("flow %q references unknown target %q", f.ID, f.To)
		}
		if f.Condition != "" {
			if _, err := expr.Compile(f.Condition); err != nil {
				addf("flow %q condition does not compile: %v", f.ID, err)
			}
		}
	}

	for _, e := range p.Elements {
		problems = append(problems, p.validateElement(e)...)
	}

	// Reachability: every non-boundary node reachable from some start,
	// and some end reachable from every node.
	if starts > 0 && len(problems) == 0 {
		problems = append(problems, p.validateReachability()...)
	}

	if len(problems) > 0 {
		return &ValidationError{ProcessID: p.ID, Problems: problems}
	}
	return nil
}

func (p *Process) validateElement(e *Element) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	nOut := len(p.out[e.ID])
	nIn := len(p.in[e.ID])

	switch e.Kind {
	case KindStartEvent:
		if nIn > 0 {
			addf("start event %q has incoming flows", e.ID)
		}
		if nOut != 1 {
			addf("start event %q must have exactly 1 outgoing flow, has %d", e.ID, nOut)
		}
	case KindEndEvent, KindTerminateEnd:
		if nOut > 0 {
			addf("end event %q has outgoing flows", e.ID)
		}
		if nIn == 0 {
			addf("end event %q has no incoming flow", e.ID)
		}
	case KindBoundaryEvent:
		if nIn > 0 {
			addf("boundary event %q has incoming flows", e.ID)
		}
		if nOut != 1 {
			addf("boundary event %q must have exactly 1 outgoing flow, has %d", e.ID, nOut)
		}
		host := p.byID[e.AttachedTo]
		if host == nil {
			addf("boundary event %q attached to unknown activity %q", e.ID, e.AttachedTo)
		} else if !host.Kind.IsActivity() {
			addf("boundary event %q attached to non-activity %q (%s)", e.ID, e.AttachedTo, host.Kind)
		}
		switch e.Boundary {
		case BoundaryTimer:
			if _, err := time.ParseDuration(e.Timer); err != nil {
				addf("boundary event %q has bad timer %q", e.ID, e.Timer)
			}
		case BoundaryMessage:
			if e.Message == "" {
				addf("message boundary event %q has no message name", e.ID)
			}
		case BoundaryError:
			// Empty error code matches any error.
		default:
			addf("boundary event %q has no trigger kind", e.ID)
		}
	case KindTimerCatchEvent:
		if _, err := time.ParseDuration(e.Timer); err != nil {
			addf("timer event %q has bad duration %q", e.ID, e.Timer)
		}
		if nOut != 1 {
			addf("timer event %q must have exactly 1 outgoing flow, has %d", e.ID, nOut)
		}
	case KindMessageCatchEvent, KindReceiveTask:
		if e.Message == "" {
			addf("message element %q has no message name", e.ID)
		}
	case KindMessageThrowEvent, KindSendTask:
		if e.Message == "" {
			addf("message element %q has no message name", e.ID)
		}
	case KindServiceTask:
		if e.Handler == "" {
			addf("service task %q has no handler", e.ID)
		}
	case KindScriptTask:
		if len(e.Outputs) == 0 {
			addf("script task %q has no output mappings", e.ID)
		}
	case KindExclusiveGateway, KindInclusiveGateway:
		if e.DefaultFlow != "" {
			found := false
			for _, f := range p.out[e.ID] {
				if f.ID == e.DefaultFlow {
					found = true
				}
			}
			if !found {
				addf("gateway %q default flow %q is not one of its outgoing flows", e.ID, e.DefaultFlow)
			}
		}
		if nOut > 1 {
			// A diverging XOR/OR needs conditions or a default to be
			// decidable on every path.
			unconditional := 0
			for _, f := range p.out[e.ID] {
				if f.Condition == "" && f.ID != e.DefaultFlow {
					unconditional++
				}
			}
			if e.Kind == KindExclusiveGateway && unconditional > 1 {
				addf("exclusive gateway %q has %d unconditional non-default outgoing flows", e.ID, unconditional)
			}
		}
	case KindEventGateway:
		if nOut < 2 {
			addf("event gateway %q must have at least 2 outgoing flows, has %d", e.ID, nOut)
		}
		for _, f := range p.out[e.ID] {
			t := p.byID[f.To]
			if t == nil {
				continue
			}
			switch t.Kind {
			case KindTimerCatchEvent, KindMessageCatchEvent, KindReceiveTask:
			default:
				addf("event gateway %q successor %q must be a catch event, is %s", e.ID, f.To, t.Kind)
			}
		}
	case KindSubProcess:
		if e.SubProcess == nil {
			addf("sub-process %q has no body", e.ID)
		} else if err := e.SubProcess.Validate(); err != nil {
			if ve, ok := err.(*ValidationError); ok {
				for _, pr := range ve.Problems {
					addf("sub-process %q: %s", e.ID, pr)
				}
			} else {
				addf("sub-process %q: %v", e.ID, err)
			}
		}
	case KindCallActivity:
		if e.CalledProcess == "" {
			addf("call activity %q names no process", e.ID)
		}
	case KindUserTask, KindManualTask:
		if e.DueIn != "" {
			if _, err := time.ParseDuration(e.DueIn); err != nil {
				addf("task %q has bad dueIn %q", e.ID, e.DueIn)
			}
		}
	case KindInvalid:
		addf("element %q has invalid kind", e.ID)
	}

	if e.Multi != nil {
		if !e.Kind.IsActivity() {
			addf("element %q is not an activity but has a multi-instance marker", e.ID)
		}
		if e.Multi.Collection == "" {
			addf("multi-instance activity %q has no collection expression", e.ID)
		} else if _, err := expr.Compile(e.Multi.Collection); err != nil {
			addf("multi-instance activity %q collection does not compile: %v", e.ID, err)
		}
		if e.Multi.ElementVar == "" {
			addf("multi-instance activity %q has no element variable", e.ID)
		}
		if e.Multi.CompletionCondition != "" {
			if _, err := expr.Compile(e.Multi.CompletionCondition); err != nil {
				addf("multi-instance activity %q completion condition does not compile: %v", e.ID, err)
			}
		}
	}
	for varName, src := range e.Outputs {
		if varName == "" {
			addf("element %q has an output mapping with empty variable name", e.ID)
		}
		if _, err := expr.Compile(src); err != nil {
			addf("element %q output %q does not compile: %v", e.ID, varName, err)
		}
	}
	if e.CorrelationKey != "" {
		if _, err := expr.Compile(e.CorrelationKey); err != nil {
			addf("element %q correlation key does not compile: %v", e.ID, err)
		}
	}
	return problems
}

func (p *Process) validateReachability() []string {
	var problems []string
	// Forward reachability from start events; boundary events count as
	// reachable when their host is.
	fwd := map[string]bool{}
	var stack []string
	for _, s := range p.StartEvents() {
		stack = append(stack, s.ID)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fwd[id] {
			continue
		}
		fwd[id] = true
		for _, f := range p.out[id] {
			stack = append(stack, f.To)
		}
		for _, b := range p.boundary[id] {
			stack = append(stack, b.ID)
		}
	}
	// Backward reachability from end events; a boundary event's host
	// counts as backward-reachable through the boundary path.
	bwd := map[string]bool{}
	stack = stack[:0]
	for _, e := range p.EndEvents() {
		stack = append(stack, e.ID)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if bwd[id] {
			continue
		}
		bwd[id] = true
		for _, f := range p.in[id] {
			stack = append(stack, f.From)
		}
		if e := p.byID[id]; e != nil && e.Kind == KindBoundaryEvent {
			stack = append(stack, e.AttachedTo)
		}
	}
	ids := make([]string, 0, len(p.Elements))
	for _, e := range p.Elements {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !fwd[id] {
			problems = append(problems, fmt.Sprintf("element %q unreachable from start", id))
		}
		if !bwd[id] {
			problems = append(problems, fmt.Sprintf("no end event reachable from element %q", id))
		}
	}
	return problems
}

// Stats summarises a process definition.
type Stats struct {
	Elements   int
	Flows      int
	Tasks      int
	Gateways   int
	Events     int
	SubProcs   int
	MaxFanOut  int
	Conditions int
}

// Stats computes summary statistics over the definition (not recursing
// into sub-processes).
func (p *Process) Stats() Stats {
	p.ensureIndex()
	s := Stats{Elements: len(p.Elements), Flows: len(p.Flows)}
	for _, e := range p.Elements {
		switch {
		case e.Kind.IsTask():
			s.Tasks++
		case e.Kind.IsGateway():
			s.Gateways++
		case e.Kind.IsEvent():
			s.Events++
		case e.Kind == KindSubProcess || e.Kind == KindCallActivity:
			s.SubProcs++
		}
		if n := len(p.out[e.ID]); n > s.MaxFanOut {
			s.MaxFanOut = n
		}
	}
	for _, f := range p.Flows {
		if f.Condition != "" {
			s.Conditions++
		}
	}
	return s
}

// Clone returns a deep copy of the process definition.
func (p *Process) Clone() *Process {
	cp := &Process{
		ID: p.ID, Name: p.Name, Version: p.Version,
		Documentation: p.Documentation,
		Elements:      make([]*Element, len(p.Elements)),
		Flows:         make([]*Flow, len(p.Flows)),
	}
	for i, e := range p.Elements {
		ce := *e
		if e.Outputs != nil {
			ce.Outputs = make(map[string]string, len(e.Outputs))
			for k, v := range e.Outputs {
				ce.Outputs[k] = v
			}
		}
		if e.Multi != nil {
			mi := *e.Multi
			ce.Multi = &mi
		}
		if e.SubProcess != nil {
			ce.SubProcess = e.SubProcess.Clone()
		}
		cp.Elements[i] = &ce
	}
	for i, f := range p.Flows {
		cf := *f
		cp.Flows[i] = &cf
	}
	return cp
}
