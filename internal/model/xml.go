package model

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
)

// The XML codec serialises process definitions in a BPMN-flavoured
// dialect: each flow node is an element named after its kind
// (<userTask id="..."/>, <exclusiveGateway .../>) and sequence flows
// are <sequenceFlow sourceRef=... targetRef=...> elements with an
// optional <conditionExpression> child, mirroring the BPMN 2.0
// interchange structure closely enough to be immediately familiar.

type xmlOutput struct {
	Var  string `xml:"var,attr"`
	Expr string `xml:",chardata"`
}

type xmlMulti struct {
	Collection          string `xml:"collection,attr"`
	ElementVar          string `xml:"elementVar,attr"`
	Parallel            bool   `xml:"parallel,attr"`
	CompletionCondition string `xml:"completionCondition,attr,omitempty"`
}

type xmlElem struct {
	XMLName        xml.Name
	ID             string      `xml:"id,attr"`
	Name           string      `xml:"name,attr,omitempty"`
	Assignee       string      `xml:"assignee,attr,omitempty"`
	Role           string      `xml:"role,attr,omitempty"`
	Handler        string      `xml:"handler,attr,omitempty"`
	Priority       int         `xml:"priority,attr,omitempty"`
	DueIn          string      `xml:"dueIn,attr,omitempty"`
	Capability     string      `xml:"capability,attr,omitempty"`
	Timer          string      `xml:"timer,attr,omitempty"`
	Message        string      `xml:"message,attr,omitempty"`
	CorrelationKey string      `xml:"correlationKey,attr,omitempty"`
	ErrorCode      string      `xml:"errorCode,attr,omitempty"`
	AttachedTo     string      `xml:"attachedTo,attr,omitempty"`
	Boundary       string      `xml:"boundary,attr,omitempty"`
	CancelActivity bool        `xml:"cancelActivity,attr,omitempty"`
	DefaultFlow    string      `xml:"default,attr,omitempty"`
	CalledProcess  string      `xml:"calledElement,attr,omitempty"`
	Retries        int         `xml:"retries,attr,omitempty"`
	Outputs        []xmlOutput `xml:"output,omitempty"`
	Multi          *xmlMulti   `xml:"multiInstance,omitempty"`
	Sub            *xmlProcess `xml:"process,omitempty"`
}

type xmlFlow struct {
	XMLName   xml.Name `xml:"sequenceFlow"`
	ID        string   `xml:"id,attr"`
	Name      string   `xml:"name,attr,omitempty"`
	SourceRef string   `xml:"sourceRef,attr"`
	TargetRef string   `xml:"targetRef,attr"`
	Condition string   `xml:"conditionExpression,omitempty"`
}

type xmlProcess struct {
	XMLName       xml.Name  `xml:"process"`
	ID            string    `xml:"id,attr"`
	Name          string    `xml:"name,attr,omitempty"`
	Version       int       `xml:"version,attr,omitempty"`
	Documentation string    `xml:"documentation,omitempty"`
	Elems         []xmlElem `xml:",any"`
	Flows         []xmlFlow `xml:"sequenceFlow"`
}

func toXML(p *Process) *xmlProcess {
	xp := &xmlProcess{ID: p.ID, Name: p.Name, Version: p.Version, Documentation: p.Documentation}
	for _, e := range p.Elements {
		xe := xmlElem{
			XMLName:        xml.Name{Local: e.Kind.String()},
			ID:             e.ID,
			Name:           e.Name,
			Assignee:       e.Assignee,
			Role:           e.Role,
			Handler:        e.Handler,
			Priority:       e.Priority,
			DueIn:          e.DueIn,
			Capability:     e.Capability,
			Timer:          e.Timer,
			Message:        e.Message,
			CorrelationKey: e.CorrelationKey,
			ErrorCode:      e.ErrorCode,
			AttachedTo:     e.AttachedTo,
			CancelActivity: e.CancelActivity,
			DefaultFlow:    e.DefaultFlow,
			CalledProcess:  e.CalledProcess,
			Retries:        e.Retries,
		}
		if e.Boundary != BoundaryNone {
			xe.Boundary = e.Boundary.String()
		}
		if len(e.Outputs) > 0 {
			vars := make([]string, 0, len(e.Outputs))
			for v := range e.Outputs {
				vars = append(vars, v)
			}
			sort.Strings(vars)
			for _, v := range vars {
				xe.Outputs = append(xe.Outputs, xmlOutput{Var: v, Expr: e.Outputs[v]})
			}
		}
		if e.Multi != nil {
			xe.Multi = &xmlMulti{
				Collection:          e.Multi.Collection,
				ElementVar:          e.Multi.ElementVar,
				Parallel:            e.Multi.Parallel,
				CompletionCondition: e.Multi.CompletionCondition,
			}
		}
		if e.SubProcess != nil {
			xe.Sub = toXML(e.SubProcess)
		}
		xp.Elems = append(xp.Elems, xe)
	}
	for _, f := range p.Flows {
		xp.Flows = append(xp.Flows, xmlFlow{
			ID: f.ID, Name: f.Name, SourceRef: f.From, TargetRef: f.To, Condition: f.Condition,
		})
	}
	return xp
}

func fromXML(xp *xmlProcess) (*Process, error) {
	p := &Process{ID: xp.ID, Name: xp.Name, Version: xp.Version, Documentation: xp.Documentation}
	for _, xe := range xp.Elems {
		kind, ok := KindFromName(xe.XMLName.Local)
		if !ok {
			return nil, fmt.Errorf("model: unknown element <%s>", xe.XMLName.Local)
		}
		e := &Element{
			ID:             xe.ID,
			Name:           xe.Name,
			Kind:           kind,
			Assignee:       xe.Assignee,
			Role:           xe.Role,
			Handler:        xe.Handler,
			Priority:       xe.Priority,
			DueIn:          xe.DueIn,
			Capability:     xe.Capability,
			Timer:          xe.Timer,
			Message:        xe.Message,
			CorrelationKey: xe.CorrelationKey,
			ErrorCode:      xe.ErrorCode,
			AttachedTo:     xe.AttachedTo,
			CancelActivity: xe.CancelActivity,
			DefaultFlow:    xe.DefaultFlow,
			CalledProcess:  xe.CalledProcess,
			Retries:        xe.Retries,
		}
		switch xe.Boundary {
		case "timer":
			e.Boundary = BoundaryTimer
		case "error":
			e.Boundary = BoundaryError
		case "message":
			e.Boundary = BoundaryMessage
		case "", "none":
			e.Boundary = BoundaryNone
		default:
			return nil, fmt.Errorf("model: unknown boundary kind %q on %q", xe.Boundary, xe.ID)
		}
		if len(xe.Outputs) > 0 {
			e.Outputs = make(map[string]string, len(xe.Outputs))
			for _, o := range xe.Outputs {
				e.Outputs[o.Var] = o.Expr
			}
		}
		if xe.Multi != nil {
			e.Multi = &MultiInstance{
				Collection:          xe.Multi.Collection,
				ElementVar:          xe.Multi.ElementVar,
				Parallel:            xe.Multi.Parallel,
				CompletionCondition: xe.Multi.CompletionCondition,
			}
		}
		if xe.Sub != nil {
			sub, err := fromXML(xe.Sub)
			if err != nil {
				return nil, err
			}
			e.SubProcess = sub
		}
		p.Elements = append(p.Elements, e)
	}
	for _, xf := range xp.Flows {
		p.Flows = append(p.Flows, &Flow{
			ID: xf.ID, Name: xf.Name, From: xf.SourceRef, To: xf.TargetRef, Condition: xf.Condition,
		})
	}
	return p, nil
}

// UnmarshalXML decodes a <process> element, dispatching child elements
// on their tag names (sequence flows vs flow nodes).
func (xp *xmlProcess) UnmarshalXML(d *xml.Decoder, start xml.StartElement) error {
	for _, a := range start.Attr {
		switch a.Name.Local {
		case "id":
			xp.ID = a.Value
		case "name":
			xp.Name = a.Value
		case "version":
			if _, err := fmt.Sscanf(a.Value, "%d", &xp.Version); err != nil {
				return fmt.Errorf("model: bad version %q: %w", a.Value, err)
			}
		}
	}
	for {
		tok, err := d.Token()
		if err == io.EOF {
			return fmt.Errorf("model: unexpected EOF in <process>")
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "sequenceFlow":
				var f xmlFlow
				if err := d.DecodeElement(&f, &t); err != nil {
					return err
				}
				xp.Flows = append(xp.Flows, f)
			case "documentation":
				var doc string
				if err := d.DecodeElement(&doc, &t); err != nil {
					return err
				}
				xp.Documentation = doc
			default:
				var e xmlElem
				if err := d.DecodeElement(&e, &t); err != nil {
					return err
				}
				e.XMLName = t.Name
				xp.Elems = append(xp.Elems, e)
			}
		case xml.EndElement:
			if t.Name.Local == "process" {
				return nil
			}
		}
	}
}

// EncodeXML serialises the process definition as indented XML.
func EncodeXML(p *Process) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(toXML(p)); err != nil {
		return nil, fmt.Errorf("model: encode xml: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// DecodeXML parses a process definition from XML and validates it.
func DecodeXML(data []byte) (*Process, error) {
	var xp xmlProcess
	if err := xml.Unmarshal(data, &xp); err != nil {
		return nil, fmt.Errorf("model: decode xml: %w", err)
	}
	p, err := fromXML(&xp)
	if err != nil {
		return nil, err
	}
	if p.Version == 0 {
		p.Version = 1
	}
	p.Index()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
