package model

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the kind as its BPMN-style name.
func (k ElementKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a BPMN-style kind name.
func (k *ElementKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	kind, ok := KindFromName(s)
	if !ok {
		return fmt.Errorf("model: unknown element kind %q", s)
	}
	*k = kind
	return nil
}

// MarshalJSON encodes the boundary trigger as its name.
func (b BoundaryKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(b.String())
}

// UnmarshalJSON decodes a boundary trigger name.
func (b *BoundaryKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "none", "":
		*b = BoundaryNone
	case "timer":
		*b = BoundaryTimer
	case "error":
		*b = BoundaryError
	case "message":
		*b = BoundaryMessage
	default:
		return fmt.Errorf("model: unknown boundary kind %q", s)
	}
	return nil
}

// EncodeJSON serialises the process definition as indented JSON.
func EncodeJSON(p *Process) ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// DecodeJSON parses a process definition from JSON and validates it.
func DecodeJSON(data []byte) (*Process, error) {
	var p Process
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("model: decode json: %w", err)
	}
	if p.Version == 0 {
		p.Version = 1
	}
	p.Index()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
