package model

import "fmt"

// Builder constructs Process definitions with a fluent API. All add
// methods return the builder for chaining; structural errors are
// accumulated and reported by Build, which also runs Validate.
//
//	p, err := model.New("order").
//		Start("start").
//		UserTask("approve", model.Name("Approve order"), model.Role("manager")).
//		End("done").
//		Seq("start", "approve", "done").
//		Build()
type Builder struct {
	p      *Process
	errs   []string
	nextID int
}

// New starts a builder for a process with the given definition ID.
func New(id string) *Builder {
	return &Builder{p: &Process{ID: id, Version: 1}}
}

// Name sets the human-readable process name.
func (b *Builder) Name(name string) *Builder {
	b.p.Name = name
	return b
}

// Version sets the definition version (defaults to 1).
func (b *Builder) Version(v int) *Builder {
	b.p.Version = v
	return b
}

// Documentation attaches free-text documentation.
func (b *Builder) Documentation(doc string) *Builder {
	b.p.Documentation = doc
	return b
}

// Opt configures an element added through the builder.
type Opt func(*Element)

// Name sets the element display name.
func Name(name string) Opt { return func(e *Element) { e.Name = name } }

// Role offers a user task to members of a role.
func Role(role string) Opt { return func(e *Element) { e.Role = role } }

// Assignee directly allocates a user task to a user.
func Assignee(user string) Opt { return func(e *Element) { e.Assignee = user } }

// Capability requires a resource capability for allocation.
func Capability(c string) Opt { return func(e *Element) { e.Capability = c } }

// Priority sets the worklist priority of a user task.
func Priority(p int) Opt { return func(e *Element) { e.Priority = p } }

// DueIn sets a completion deadline duration for a task (e.g. "4h").
func DueIn(d string) Opt { return func(e *Element) { e.DueIn = d } }

// Handler binds a service task to a registered handler name.
func Handler(h string) Opt { return func(e *Element) { e.Handler = h } }

// Output adds a data mapping evaluated on completion: variable = expr.
func Output(variable, exprSrc string) Opt {
	return func(e *Element) {
		if e.Outputs == nil {
			e.Outputs = map[string]string{}
		}
		e.Outputs[variable] = exprSrc
	}
}

// Message names the message of a message event / send / receive task.
func Message(name string) Opt { return func(e *Element) { e.Message = name } }

// CorrelationKey sets the expression computing the correlation key.
func CorrelationKey(exprSrc string) Opt {
	return func(e *Element) { e.CorrelationKey = exprSrc }
}

// Default marks the default outgoing flow of an XOR/OR gateway.
func Default(flowID string) Opt { return func(e *Element) { e.DefaultFlow = flowID } }

// ErrorCode sets the error code of an error boundary event.
func ErrorCode(code string) Opt { return func(e *Element) { e.ErrorCode = code } }

// Retries sets the retry limit of a service task.
func Retries(n int) Opt { return func(e *Element) { e.Retries = n } }

// MultiParallel marks an activity as parallel multi-instance over the
// given collection expression, binding each element to elementVar.
func MultiParallel(collection, elementVar string) Opt {
	return func(e *Element) {
		e.Multi = &MultiInstance{Collection: collection, ElementVar: elementVar, Parallel: true}
	}
}

// MultiSequential marks an activity as sequential multi-instance.
func MultiSequential(collection, elementVar string) Opt {
	return func(e *Element) {
		e.Multi = &MultiInstance{Collection: collection, ElementVar: elementVar}
	}
}

// CompletionCondition adds an early-exit condition to a multi-instance
// activity (applies to the most recently set Multi marker).
func CompletionCondition(exprSrc string) Opt {
	return func(e *Element) {
		if e.Multi != nil {
			e.Multi.CompletionCondition = exprSrc
		}
	}
}

func (b *Builder) add(id string, kind ElementKind, opts ...Opt) *Builder {
	if id == "" {
		b.errs = append(b.errs, fmt.Sprintf("empty id for %s", kind))
		return b
	}
	e := &Element{ID: id, Kind: kind}
	for _, o := range opts {
		o(e)
	}
	b.p.Elements = append(b.p.Elements, e)
	return b
}

// Start adds a none start event.
func (b *Builder) Start(id string, opts ...Opt) *Builder { return b.add(id, KindStartEvent, opts...) }

// End adds a none end event.
func (b *Builder) End(id string, opts ...Opt) *Builder { return b.add(id, KindEndEvent, opts...) }

// TerminateEnd adds a terminate end event that cancels the instance.
func (b *Builder) TerminateEnd(id string, opts ...Opt) *Builder {
	return b.add(id, KindTerminateEnd, opts...)
}

// UserTask adds a human task routed through the worklist.
func (b *Builder) UserTask(id string, opts ...Opt) *Builder { return b.add(id, KindUserTask, opts...) }

// ManualTask adds a manual task (tracked but outside system control).
func (b *Builder) ManualTask(id string, opts ...Opt) *Builder {
	return b.add(id, KindManualTask, opts...)
}

// ServiceTask adds an automated task bound to a handler.
func (b *Builder) ServiceTask(id, handler string, opts ...Opt) *Builder {
	return b.add(id, KindServiceTask, append([]Opt{Handler(handler)}, opts...)...)
}

// ScriptTask adds a task evaluating output mappings over case data.
func (b *Builder) ScriptTask(id string, opts ...Opt) *Builder {
	return b.add(id, KindScriptTask, opts...)
}

// ReceiveTask adds a task that waits for a named message.
func (b *Builder) ReceiveTask(id, message string, opts ...Opt) *Builder {
	return b.add(id, KindReceiveTask, append([]Opt{Message(message)}, opts...)...)
}

// SendTask adds a task that emits a named message.
func (b *Builder) SendTask(id, message string, opts ...Opt) *Builder {
	return b.add(id, KindSendTask, append([]Opt{Message(message)}, opts...)...)
}

// XOR adds an exclusive gateway.
func (b *Builder) XOR(id string, opts ...Opt) *Builder {
	return b.add(id, KindExclusiveGateway, opts...)
}

// AND adds a parallel gateway.
func (b *Builder) AND(id string, opts ...Opt) *Builder {
	return b.add(id, KindParallelGateway, opts...)
}

// OR adds an inclusive gateway.
func (b *Builder) OR(id string, opts ...Opt) *Builder {
	return b.add(id, KindInclusiveGateway, opts...)
}

// EventGateway adds an event-based gateway (race between catch events).
func (b *Builder) EventGateway(id string, opts ...Opt) *Builder {
	return b.add(id, KindEventGateway, opts...)
}

// TimerCatch adds an intermediate timer catch event with a duration
// such as "30m" or "2h45m".
func (b *Builder) TimerCatch(id, duration string, opts ...Opt) *Builder {
	return b.add(id, KindTimerCatchEvent, append([]Opt{func(e *Element) { e.Timer = duration }}, opts...)...)
}

// MessageCatch adds an intermediate message catch event.
func (b *Builder) MessageCatch(id, message string, opts ...Opt) *Builder {
	return b.add(id, KindMessageCatchEvent, append([]Opt{Message(message)}, opts...)...)
}

// MessageThrow adds an intermediate message throw event.
func (b *Builder) MessageThrow(id, message string, opts ...Opt) *Builder {
	return b.add(id, KindMessageThrowEvent, append([]Opt{Message(message)}, opts...)...)
}

// BoundaryTimer attaches an interrupting (interrupt=true) or
// non-interrupting timer boundary event to an activity.
func (b *Builder) BoundaryTimer(id, attachedTo, duration string, interrupt bool, opts ...Opt) *Builder {
	return b.add(id, KindBoundaryEvent, append([]Opt{func(e *Element) {
		e.AttachedTo = attachedTo
		e.Boundary = BoundaryTimer
		e.Timer = duration
		e.CancelActivity = interrupt
	}}, opts...)...)
}

// BoundaryError attaches an error boundary event to an activity. Error
// boundary events always interrupt. An empty code catches any error.
func (b *Builder) BoundaryError(id, attachedTo, code string, opts ...Opt) *Builder {
	return b.add(id, KindBoundaryEvent, append([]Opt{func(e *Element) {
		e.AttachedTo = attachedTo
		e.Boundary = BoundaryError
		e.ErrorCode = code
		e.CancelActivity = true
	}}, opts...)...)
}

// BoundaryMessage attaches a message boundary event to an activity.
func (b *Builder) BoundaryMessage(id, attachedTo, message string, interrupt bool, opts ...Opt) *Builder {
	return b.add(id, KindBoundaryEvent, append([]Opt{func(e *Element) {
		e.AttachedTo = attachedTo
		e.Boundary = BoundaryMessage
		e.Message = message
		e.CancelActivity = interrupt
	}}, opts...)...)
}

// SubProcess embeds a sub-process built from its own definition.
func (b *Builder) SubProcess(id string, body *Process, opts ...Opt) *Builder {
	return b.add(id, KindSubProcess, append([]Opt{func(e *Element) { e.SubProcess = body }}, opts...)...)
}

// Call adds a call activity invoking another deployed definition.
func (b *Builder) Call(id, processID string, opts ...Opt) *Builder {
	return b.add(id, KindCallActivity, append([]Opt{func(e *Element) { e.CalledProcess = processID }}, opts...)...)
}

// Flow adds an unconditional sequence flow with a generated ID.
func (b *Builder) Flow(from, to string) *Builder { return b.FlowID("", from, to, "") }

// FlowIf adds a guarded sequence flow with a generated ID.
func (b *Builder) FlowIf(from, to, condition string) *Builder {
	return b.FlowID("", from, to, condition)
}

// FlowID adds a sequence flow with an explicit ID (empty = generated
// as "f<n>") and optional guard condition.
func (b *Builder) FlowID(id, from, to, condition string) *Builder {
	if id == "" {
		b.nextID++
		id = fmt.Sprintf("f%d", b.nextID)
		for b.flowIDTaken(id) {
			b.nextID++
			id = fmt.Sprintf("f%d", b.nextID)
		}
	}
	b.p.Flows = append(b.p.Flows, &Flow{ID: id, From: from, To: to, Condition: condition})
	return b
}

func (b *Builder) flowIDTaken(id string) bool {
	for _, f := range b.p.Flows {
		if f.ID == id {
			return true
		}
	}
	return false
}

// Seq chains the given element IDs with unconditional flows.
func (b *Builder) Seq(ids ...string) *Builder {
	for i := 0; i+1 < len(ids); i++ {
		b.Flow(ids[i], ids[i+1])
	}
	return b
}

// Build indexes and validates the process, returning it or an error.
func (b *Builder) Build() (*Process, error) {
	if len(b.errs) > 0 {
		return nil, &ValidationError{ProcessID: b.p.ID, Problems: b.errs}
	}
	b.p.Index()
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return b.p, nil
}

// MustBuild is Build that panics on error, for statically known models.
func (b *Builder) MustBuild() *Process {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
