// Package model defines the process definition model of the BPMS: a
// BPMN-subset graph of flow nodes connected by sequence flows, plus a
// fluent builder, JSON and XML codecs, structural validation, and
// parametric process generators used by the benchmark harness.
//
// A Process is a directed graph. Nodes (Element) are events, tasks,
// gateways, and sub-processes; edges (Flow) are sequence flows that may
// carry a guard expression. The model is purely declarative: execution
// semantics live in internal/engine, and formal verification against
// workflow-net semantics lives in internal/verify.
package model

import (
	"fmt"

	"bpms/internal/expr"
)

// ElementKind enumerates the supported BPMN flow-node types.
type ElementKind int

// Flow-node kinds.
const (
	KindInvalid ElementKind = iota

	// Events.
	KindStartEvent        // none start event
	KindEndEvent          // none end event
	KindTerminateEnd      // terminate end event: cancels the whole instance
	KindTimerCatchEvent   // intermediate timer catch
	KindMessageCatchEvent // intermediate message catch
	KindMessageThrowEvent // intermediate message throw
	KindBoundaryEvent     // boundary event attached to an activity

	// Tasks.
	KindUserTask    // human work item routed via the worklist
	KindServiceTask // automated task bound to a registered handler
	KindScriptTask  // evaluates expression mappings over case data
	KindManualTask  // human task outside system control (auto-complete)
	KindReceiveTask // waits for a message (like message catch)
	KindSendTask    // emits a message (like message throw)

	// Gateways.
	KindExclusiveGateway // XOR split/join
	KindParallelGateway  // AND split/join
	KindInclusiveGateway // OR split/join
	KindEventGateway     // event-based gateway: race between catch events

	// Composition.
	KindSubProcess   // embedded sub-process
	KindCallActivity // invokes another deployed process definition
)

var kindNames = map[ElementKind]string{
	KindStartEvent:        "startEvent",
	KindEndEvent:          "endEvent",
	KindTerminateEnd:      "terminateEndEvent",
	KindTimerCatchEvent:   "timerCatchEvent",
	KindMessageCatchEvent: "messageCatchEvent",
	KindMessageThrowEvent: "messageThrowEvent",
	KindBoundaryEvent:     "boundaryEvent",
	KindUserTask:          "userTask",
	KindServiceTask:       "serviceTask",
	KindScriptTask:        "scriptTask",
	KindManualTask:        "manualTask",
	KindReceiveTask:       "receiveTask",
	KindSendTask:          "sendTask",
	KindExclusiveGateway:  "exclusiveGateway",
	KindParallelGateway:   "parallelGateway",
	KindInclusiveGateway:  "inclusiveGateway",
	KindEventGateway:      "eventBasedGateway",
	KindSubProcess:        "subProcess",
	KindCallActivity:      "callActivity",
}

var kindByName = func() map[string]ElementKind {
	m := make(map[string]ElementKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// String returns the BPMN-style element name (e.g. "exclusiveGateway").
func (k ElementKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("elementKind(%d)", int(k))
}

// KindFromName resolves a BPMN-style element name back to its kind.
func KindFromName(name string) (ElementKind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// IsEvent reports whether the kind is an event node.
func (k ElementKind) IsEvent() bool {
	switch k {
	case KindStartEvent, KindEndEvent, KindTerminateEnd, KindTimerCatchEvent,
		KindMessageCatchEvent, KindMessageThrowEvent, KindBoundaryEvent:
		return true
	}
	return false
}

// IsTask reports whether the kind is a task (atomic activity).
func (k ElementKind) IsTask() bool {
	switch k {
	case KindUserTask, KindServiceTask, KindScriptTask, KindManualTask,
		KindReceiveTask, KindSendTask:
		return true
	}
	return false
}

// IsGateway reports whether the kind is a gateway.
func (k ElementKind) IsGateway() bool {
	switch k {
	case KindExclusiveGateway, KindParallelGateway, KindInclusiveGateway, KindEventGateway:
		return true
	}
	return false
}

// IsActivity reports whether the kind may carry a boundary event and a
// multi-instance marker (tasks, sub-processes, call activities).
func (k ElementKind) IsActivity() bool {
	return k.IsTask() || k == KindSubProcess || k == KindCallActivity
}

// IsWait reports whether a token entering the node parks until an
// external stimulus (human completion, message, timer) rather than
// passing through synchronously.
func (k ElementKind) IsWait() bool {
	switch k {
	case KindUserTask, KindManualTask, KindReceiveTask,
		KindTimerCatchEvent, KindMessageCatchEvent, KindEventGateway:
		return true
	}
	return false
}

// BoundaryKind enumerates what a boundary event reacts to.
type BoundaryKind int

// Boundary event trigger types.
const (
	BoundaryNone    BoundaryKind = iota
	BoundaryTimer                // deadline/escalation timer
	BoundaryError                // error thrown by the activity
	BoundaryMessage              // message arrival
)

// String returns the trigger name.
func (b BoundaryKind) String() string {
	switch b {
	case BoundaryTimer:
		return "timer"
	case BoundaryError:
		return "error"
	case BoundaryMessage:
		return "message"
	default:
		return "none"
	}
}

// MultiInstance configures a multi-instance activity: the activity is
// instantiated once per element of the collection expression.
type MultiInstance struct {
	// Collection is an expression over case data yielding a list.
	Collection string `json:"collection"`
	// ElementVar is the variable name each element is bound to inside
	// the activity instance scope.
	ElementVar string `json:"elementVar"`
	// Parallel selects parallel (true) or sequential (false) execution.
	Parallel bool `json:"parallel"`
	// CompletionCondition, when non-empty, is evaluated after each
	// instance completes; when it yields true the remaining instances
	// are cancelled ("completion condition" in BPMN).
	CompletionCondition string `json:"completionCondition,omitempty"`
}

// Element is one flow node in a process graph.
type Element struct {
	ID   string      `json:"id"`
	Name string      `json:"name,omitempty"`
	Kind ElementKind `json:"kind"`

	// Task configuration.
	Assignee   string            `json:"assignee,omitempty"`   // user task: direct user assignment
	Role       string            `json:"role,omitempty"`       // user task: offer to role members
	Handler    string            `json:"handler,omitempty"`    // service task: registered handler name
	Outputs    map[string]string `json:"outputs,omitempty"`    // script task / mappings: var := expr
	Priority   int               `json:"priority,omitempty"`   // user task: worklist priority
	DueIn      string            `json:"dueIn,omitempty"`      // user task: deadline duration (e.g. "4h")
	Capability string            `json:"capability,omitempty"` // user task: required resource capability

	// Event configuration.
	Timer          string `json:"timer,omitempty"`          // timer events: duration (e.g. "30m")
	Message        string `json:"message,omitempty"`        // message events: message name
	CorrelationKey string `json:"correlationKey,omitempty"` // message events: expression yielding the key
	ErrorCode      string `json:"errorCode,omitempty"`      // error boundary / error end

	// Boundary configuration.
	AttachedTo     string       `json:"attachedTo,omitempty"` // boundary: host activity ID
	Boundary       BoundaryKind `json:"boundary,omitempty"`
	CancelActivity bool         `json:"cancelActivity,omitempty"` // interrupting boundary event

	// Gateway configuration.
	DefaultFlow string `json:"defaultFlow,omitempty"` // XOR/OR: flow taken when no condition holds

	// Composition.
	SubProcess    *Process       `json:"subProcess,omitempty"`    // embedded sub-process body
	CalledProcess string         `json:"calledProcess,omitempty"` // call activity: target definition ID
	Multi         *MultiInstance `json:"multiInstance,omitempty"`

	// Retry policy for service tasks (0 = no retries).
	Retries int `json:"retries,omitempty"`

	// compiled holds the element's deploy-time compiled expression
	// programs (built by Process.Compile; nil until then). Readers go
	// through the accessor methods in compile.go, which fall back to
	// the shared expression cache for uncompiled definitions.
	compiled *compiledElement
}

// Flow is a sequence flow (directed edge) between two elements.
type Flow struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	From      string `json:"from"`
	To        string `json:"to"`
	Condition string `json:"condition,omitempty"` // guard expression; empty = unconditional

	// program is the deploy-time compiled Condition (see Element.compiled).
	program *expr.Program
}
