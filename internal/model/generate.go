package model

import (
	"fmt"
	"math/rand"
)

// This file provides parametric process generators. They serve two
// purposes: workload definitions for the benchmark harness (experiment
// T1: throughput by topology; T3: verification cost vs model size) and
// fixtures for tests. All generated service tasks use the "noop"
// handler, which the engine test harness registers as an immediate
// no-op.

// NoopHandler is the handler name used by generated service tasks.
const NoopHandler = "noop"

// Sequence generates start -> t1 -> ... -> tn -> end.
func Sequence(n int) *Process {
	b := New(fmt.Sprintf("seq-%d", n)).Name(fmt.Sprintf("Sequence of %d tasks", n))
	b.Start("start")
	prev := "start"
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("t%d", i)
		b.ServiceTask(id, NoopHandler)
		b.Flow(prev, id)
		prev = id
	}
	b.End("end")
	b.Flow(prev, "end")
	return b.MustBuild()
}

// Parallel generates start -> AND-split -> n tasks -> AND-join -> end.
func Parallel(n int) *Process {
	b := New(fmt.Sprintf("par-%d", n)).Name(fmt.Sprintf("Parallel %d branches", n))
	b.Start("start").AND("split").AND("join").End("end")
	b.Flow("start", "split")
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("t%d", i)
		b.ServiceTask(id, NoopHandler)
		b.Flow("split", id)
		b.Flow(id, "join")
	}
	b.Flow("join", "end")
	return b.MustBuild()
}

// Choice generates start -> XOR-split -> n guarded branches -> XOR-join
// -> end. Branch i is taken when case variable "branch" == i; branch 0
// is the default.
func Choice(n int) *Process {
	b := New(fmt.Sprintf("xor-%d", n)).Name(fmt.Sprintf("Choice of %d branches", n))
	b.Start("start").End("end")
	b.XOR("split", Default("db"))
	b.XOR("join")
	b.Flow("start", "split")
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("t%d", i)
		b.ServiceTask(id, NoopHandler)
		b.FlowIf("split", id, fmt.Sprintf("coalesce(branch, 0) == %d", i))
		b.Flow(id, "join")
	}
	b.ServiceTask("t0", NoopHandler)
	b.FlowID("db", "split", "t0", "")
	b.Flow("t0", "join")
	b.Flow("join", "end")
	return b.MustBuild()
}

// Loop generates a cycle executed while "count < limit": the body task
// increments "count" on each pass. Cases should start with count = 0
// and limit set to the desired iteration count.
func Loop() *Process {
	b := New("loop").Name("Counting loop")
	b.Start("start").End("end")
	b.ScriptTask("body", Output("count", "coalesce(count, 0) + 1"))
	b.XOR("check", Default("exit"))
	b.Flow("start", "body")
	b.Flow("body", "check")
	b.FlowIf("check", "body", "count < coalesce(limit, 3)")
	b.FlowID("exit", "check", "end", "")
	return b.MustBuild()
}

// Mixed generates a process combining sequence, parallel split/join,
// exclusive choice, and a script task — the "realistic mix" topology
// used by throughput experiments.
func Mixed() *Process {
	b := New("mixed").Name("Mixed topology")
	b.Start("start")
	b.ServiceTask("validate", NoopHandler)
	b.AND("fork").AND("sync")
	b.ServiceTask("credit", NoopHandler)
	b.ServiceTask("stock", NoopHandler)
	b.ScriptTask("price", Output("total", "coalesce(amount, 100) * 2"))
	b.XOR("decide", Default("reject"))
	b.ServiceTask("approve", NoopHandler)
	b.ServiceTask("deny", NoopHandler)
	b.XOR("merge")
	b.End("end")
	b.Seq("start", "validate", "fork")
	b.Flow("fork", "credit")
	b.Flow("fork", "stock")
	b.Flow("credit", "price")
	b.Flow("price", "sync")
	b.Flow("stock", "sync")
	b.Flow("sync", "decide")
	b.FlowIf("decide", "approve", "total >= 100")
	b.FlowID("reject", "decide", "deny", "")
	b.Flow("approve", "merge")
	b.Flow("deny", "merge")
	b.Flow("merge", "end")
	return b.MustBuild()
}

// RandomStructured generates a block-structured (hence sound) process
// with approximately targetTasks tasks, using seq/par/xor blocks chosen
// pseudo-randomly from seed. Block structure guarantees soundness, so
// these models are the positive fixtures for verification experiments.
func RandomStructured(seed int64, targetTasks int) *Process {
	r := rand.New(rand.NewSource(seed))
	g := &structGen{b: New(fmt.Sprintf("rand-%d-%d", seed, targetTasks)), r: r}
	g.b.Start("start").End("end")
	entry, exit := g.block(targetTasks)
	g.b.Flow("start", entry)
	g.b.Flow(exit, "end")
	return g.b.MustBuild()
}

type structGen struct {
	b    *Builder
	r    *rand.Rand
	next int
}

func (g *structGen) id(prefix string) string {
	g.next++
	return fmt.Sprintf("%s%d", prefix, g.next)
}

// block emits a block of roughly size tasks; returns (entry, exit) IDs.
func (g *structGen) block(size int) (string, string) {
	if size <= 1 {
		id := g.id("t")
		g.b.ServiceTask(id, NoopHandler)
		return id, id
	}
	switch g.r.Intn(3) {
	case 0: // sequence of two sub-blocks
		l := 1 + g.r.Intn(size-1)
		e1, x1 := g.block(l)
		e2, x2 := g.block(size - l)
		g.b.Flow(x1, e2)
		return e1, x2
	case 1: // parallel block
		branches := 2 + g.r.Intn(2)
		split, join := g.id("and"), g.id("and")
		g.b.AND(split)
		g.b.AND(join)
		per := size / branches
		if per < 1 {
			per = 1
		}
		for i := 0; i < branches; i++ {
			e, x := g.block(per)
			g.b.Flow(split, e)
			g.b.Flow(x, join)
		}
		return split, join
	default: // exclusive choice block
		branches := 2 + g.r.Intn(2)
		split, join := g.id("xor"), g.id("xor")
		join = "j" + join
		defFlow := g.id("df")
		g.b.XOR(split, Default(defFlow))
		g.b.XOR(join)
		per := size / branches
		if per < 1 {
			per = 1
		}
		for i := 0; i < branches; i++ {
			e, x := g.block(per)
			if i == 0 {
				g.b.FlowID(defFlow, split, e, "")
			} else {
				g.b.FlowIf(split, e, fmt.Sprintf("coalesce(rnd, 0) %% %d == %d", branches, i))
			}
			g.b.Flow(x, join)
		}
		return split, join
	}
}

// WithDeadlock generates an unsound process: an exclusive split feeds a
// parallel join, so the join waits forever for its second token. The
// definition passes structural validation (the flaw is behavioural) and
// is the negative fixture for soundness experiments.
func WithDeadlock(n int) *Process {
	b := New(fmt.Sprintf("deadlock-%d", n))
	b.Start("start").End("end")
	b.XOR("split", Default("d0"))
	b.AND("join") // BUG under test: XOR split paired with AND join
	b.Flow("start", "split")
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("t%d", i)
		b.ServiceTask(id, NoopHandler)
		if i == 0 {
			b.FlowID("d0", "split", id, "")
		} else {
			b.FlowIf("split", id, fmt.Sprintf("coalesce(branch,0) == %d", i))
		}
		b.Flow(id, "join")
	}
	b.Flow("join", "end")
	return b.MustBuild()
}

// WithLackOfSync generates an unsound process: a parallel split feeds
// an exclusive join, so the end event fires once per branch (no proper
// completion). Negative fixture for soundness experiments.
func WithLackOfSync(n int) *Process {
	b := New(fmt.Sprintf("lacksync-%d", n))
	b.Start("start").End("end")
	b.AND("split")
	b.XOR("join") // BUG under test: AND split paired with XOR join
	b.Flow("start", "split")
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("t%d", i)
		b.ServiceTask(id, NoopHandler)
		b.Flow("split", id)
		b.Flow(id, "join")
	}
	b.Flow("join", "end")
	return b.MustBuild()
}
