package api

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// AdmissionConfig bounds concurrent work per request class (reads =
// GET, writes = everything else). Zero limits leave that class
// ungated, so the zero value disables admission control entirely —
// embedded servers and tests are unaffected unless they opt in.
//
// Shedding contract: a request that would overflow the wait queue is
// refused immediately with 429; one that queues but does not get an
// execution slot within QueueTimeout gets 503. Both carry the
// machine-readable code "overloaded" and a Retry-After header, and
// both are shed BEFORE the handler runs — a shed write never had side
// effects, so clients retry them safely regardless of idempotency.
type AdmissionConfig struct {
	// MaxInFlightRead bounds concurrently executing GET requests
	// (0 = unlimited).
	MaxInFlightRead int
	// MaxInFlightWrite bounds concurrently executing non-GET requests
	// (0 = unlimited).
	MaxInFlightWrite int
	// QueueDepth bounds how many requests per class may wait for an
	// execution slot before new arrivals are shed with 429 (default 64
	// when a class limit is set).
	QueueDepth int
	// QueueTimeout is the longest a queued request waits for a slot
	// before being shed with 503 (default 1s).
	QueueTimeout time.Duration
	// RetryAfter is the hint returned with shed responses (default 1s,
	// rounded up to whole seconds).
	RetryAfter time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// gate is one request class's admission state: a slot semaphore plus a
// waiter count implementing the bounded accept queue.
type gate struct {
	slots   chan struct{}
	waiters atomic.Int64
	depth   int64
}

func newGate(maxInFlight, depth int) *gate {
	if maxInFlight <= 0 {
		return nil
	}
	return &gate{slots: make(chan struct{}, maxInFlight), depth: int64(depth)}
}

// admission is the per-server controller. shed counts refused
// requests (exposed in /api/stats).
type admission struct {
	cfg   AdmissionConfig
	read  *gate
	write *gate
	shed  atomic.Uint64
}

func newAdmission(cfg AdmissionConfig) *admission {
	cfg = cfg.withDefaults()
	return &admission{
		cfg:   cfg,
		read:  newGate(cfg.MaxInFlightRead, cfg.QueueDepth),
		write: newGate(cfg.MaxInFlightWrite, cfg.QueueDepth),
	}
}

// Shed reports how many requests have been refused by admission
// control since start.
func (a *admission) Shed() uint64 { return a.shed.Load() }

// wrap gates one route handler. The gate is selected by method class;
// an ungated class passes straight through.
func (a *admission) wrap(method string, h http.HandlerFunc) http.HandlerFunc {
	g := a.write
	if method == http.MethodGet {
		g = a.read
	}
	if g == nil {
		return h
	}
	retryAfter := strconv.Itoa(int((a.cfg.RetryAfter + time.Second - 1) / time.Second))
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case g.slots <- struct{}{}:
			// Fast path: a slot is free.
		default:
			// Queue (bounded), then wait for a slot or time out.
			if g.waiters.Add(1) > g.depth {
				g.waiters.Add(-1)
				a.shed.Add(1)
				w.Header().Set("Retry-After", retryAfter)
				writeErrCode(w, http.StatusTooManyRequests, codeOverloaded,
					"api: accept queue full, request shed before execution")
				return
			}
			t := time.NewTimer(a.cfg.QueueTimeout)
			select {
			case g.slots <- struct{}{}:
				t.Stop()
				g.waiters.Add(-1)
			case <-t.C:
				g.waiters.Add(-1)
				a.shed.Add(1)
				w.Header().Set("Retry-After", retryAfter)
				writeErrCode(w, http.StatusServiceUnavailable, codeOverloaded,
					"api: no capacity within queue timeout, request shed before execution")
				return
			case <-r.Context().Done():
				t.Stop()
				g.waiters.Add(-1)
				return // client gave up while queued; nothing ran
			}
		}
		defer func() { <-g.slots }()
		h(w, r)
	}
}

// healthz is the liveness probe: the process is up and serving HTTP.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// readyz is the readiness probe: every shard has finished boot replay
// (implied by the server existing — core.Open returns only after
// recovery) and none has fail-stopped. A degraded system answers 503
// so load balancers drain it while reads continue to be served to
// clients that still hold the address.
func (s *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	ready, degraded := s.bpms.Ready()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	if degraded == nil {
		degraded = []int{}
	}
	writeJSON(w, status, map[string]any{"ready": ready, "degradedShards": degraded})
}
