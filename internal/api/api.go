// Package api exposes the BPMS over HTTP (stdlib net/http), the
// analogue of the WfMC client/admin interfaces: deploy and inspect
// definitions, start and manage instances, drive worklists, publish
// messages, and export history as XES.
package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"bpms/internal/core"
	"bpms/internal/engine"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/obs"
	"bpms/internal/task"
	"bpms/internal/verify"
)

// Server wraps a BPMS with HTTP handlers.
type Server struct {
	bpms  *core.BPMS
	mux   *http.ServeMux
	start time.Time
	adm   *admission // nil = admission control disabled

	readTimeout  time.Duration
	writeTimeout time.Duration

	mu   sync.Mutex
	http *http.Server
}

// Option customises a Server at construction.
type Option func(*Server)

// WithAdmission enables admission control with the given limits.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(s *Server) {
		if cfg.MaxInFlightRead > 0 || cfg.MaxInFlightWrite > 0 {
			s.adm = newAdmission(cfg)
		}
	}
}

// WithHTTPTimeouts overrides the server's read (full request,
// header included) and write timeouts. Zero keeps the default.
func WithHTTPTimeouts(read, write time.Duration) Option {
	return func(s *Server) {
		if read > 0 {
			s.readTimeout = read
		}
		if write > 0 {
			s.writeTimeout = write
		}
	}
}

// New builds the HTTP server for a BPMS.
func New(b *core.BPMS, opts ...Option) *Server {
	s := &Server{bpms: b, mux: http.NewServeMux(), start: time.Now()}
	for _, o := range opts {
		o(s)
	}
	s.routes()
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// route is one row of the route table: a method, a path pattern
// relative to the version prefix, and its handler.
type route struct {
	method, pattern string
	handler         http.HandlerFunc
}

// table is the single route table of the API surface. It is
// registered once under the versioned prefix /api/v1 and once under
// the legacy /api prefix, so both paths share handlers (and therefore
// semantics) by construction.
func (s *Server) table() []route {
	return []route{
		{"GET", "/definitions", s.listDefinitions},
		{"POST", "/definitions", s.deploy},
		{"GET", "/definitions/{id}", s.getDefinition},
		{"GET", "/definitions/{id}/verify", s.verifyDefinition},

		{"GET", "/instances", s.listInstances},
		{"POST", "/instances", s.startInstance},
		{"GET", "/instances/{id}", s.getInstance},
		{"DELETE", "/instances/{id}", s.cancelInstance},
		{"PUT", "/instances/{id}/variables/{name}", s.setVariable},
		{"GET", "/instances/{id}/history", s.instanceHistory},

		{"POST", "/messages", s.publishMessage},

		{"GET", "/tasks", s.listTasks},
		{"POST", "/tasks/{id}/claim", s.taskAction(actClaim)},
		{"POST", "/tasks/{id}/start", s.taskAction(actStart)},
		{"POST", "/tasks/{id}/complete", s.taskAction(actComplete)},
		{"POST", "/tasks/{id}/fail", s.taskAction(actFail)},
		{"POST", "/tasks/{id}/delegate", s.taskAction(actDelegate)},
		{"POST", "/tasks/{id}/release", s.taskAction(actRelease)},

		{"GET", "/history/xes", s.exportXES},
		{"GET", "/stats", s.stats},
		{"GET", "/violations", s.violations},

		{"POST", "/admin/users", s.addUser},
		{"POST", "/admin/snapshot", s.adminSnapshot},
	}
}

func (s *Server) routes() {
	for _, prefix := range []string{"/api/v1", "/api"} {
		for _, rt := range s.table() {
			h := rt.handler
			if s.adm != nil {
				// Admission sits inside instrumentation so shed
				// responses show up in the per-route counters.
				h = s.adm.wrap(rt.method, h)
			}
			s.mux.HandleFunc(rt.method+" "+prefix+rt.pattern,
				s.instrument(rt.method+" "+prefix+rt.pattern, h))
		}
	}
	// The scrape and probe endpoints live outside the API version
	// prefixes, at their conventional paths, and are never gated by
	// admission control: an overloaded or degraded system must still
	// answer its monitors. On an uninstrumented system /metrics is 404.
	s.mux.Handle("GET /metrics", s.bpms.Metrics.Handler())
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
}

// statusWriter captures the response status for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps one route handler with per-route request counters
// and a latency histogram. The handles are resolved once here, at
// registration; with metrics disabled the handler is returned
// untouched, so the uninstrumented request path is unchanged.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := s.bpms.Metrics.HTTPRoute(route)
	if rm == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		rm.Done(sw.code, time.Since(t0))
	}
}

// jsonBufs pools the encode buffers behind writeJSON. Buffers that
// grew past 1MiB (a huge instance list, say) are dropped instead of
// pinned in the pool forever.
var jsonBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const jsonBufMax = 1 << 20

// writeJSON encodes into a pooled buffer before touching the response:
// an encoder error surfaces as a 500 instead of a 200 with a truncated
// body (the header can't be rewritten once written), and the known
// length gives the response a Content-Length header instead of chunked
// encoding.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufs.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= jsonBufMax {
			buf.Reset()
			jsonBufs.Put(buf)
		}
	}()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		msg := "api: encode response: " + err.Error()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\":{\"code\":%q,\"message\":%q},\"message\":%q}\n", codeInternal, msg, msg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// Machine-readable error codes of the v1 error envelope. Every error
// response carries exactly one of these.
const (
	codeBadRequest        = "bad_request"
	codeUnknownDefinition = "unknown_definition"
	codeUnknownInstance   = "unknown_instance"
	codeUnknownTask       = "unknown_task"
	codeInvalidTransition = "invalid_transition"
	codeNotActive         = "instance_not_active"
	codeNotAuthorized     = "not_authorized"
	codeInvalidDefinition = "invalid_definition"
	codeTooLarge          = "request_too_large"
	codeShardDegraded     = "shard_degraded"
	codeOverloaded        = "overloaded"
	codeInternal          = "internal"
)

// errDetail is the machine-readable half of the error envelope.
type errDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiError is the error response body: the v1 envelope under "error"
// ({"code","message"}), plus the flat message string kept at top level
// for pre-v1 clients that read a plain string field.
type apiError struct {
	Error   errDetail `json:"error"`
	Message string    `json:"message"`
}

// writeErrCode writes one error response in the envelope shape.
func writeErrCode(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, apiError{Error: errDetail{Code: code, Message: msg}, Message: msg})
}

// writeErr maps engine/task/model errors to HTTP statuses and machine
// codes — the single mapping both the v1 and legacy surfaces go
// through.
func writeErr(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, codeInternal
	var ve *model.ValidationError
	var mbe *http.MaxBytesError
	switch {
	case errors.Is(err, engine.ErrUnknownProcess):
		status, code = http.StatusNotFound, codeUnknownDefinition
	case errors.Is(err, engine.ErrUnknownInstance):
		status, code = http.StatusNotFound, codeUnknownInstance
	case errors.Is(err, task.ErrNotFound):
		status, code = http.StatusNotFound, codeUnknownTask
	case errors.Is(err, task.ErrBadTransition):
		status, code = http.StatusConflict, codeInvalidTransition
	case errors.Is(err, engine.ErrNotActive):
		status, code = http.StatusConflict, codeNotActive
	case errors.Is(err, task.ErrNotAuthorized):
		status, code = http.StatusForbidden, codeNotAuthorized
	case errors.As(err, &ve):
		status, code = http.StatusBadRequest, codeInvalidDefinition
	case errors.As(err, &mbe):
		status, code = http.StatusRequestEntityTooLarge, codeTooLarge
	case errors.Is(err, engine.ErrDegraded):
		// The owning shard has fail-stopped into read-only mode. The
		// write was refused before any state change; clients may retry
		// (another replica, or this one after repair and restart).
		status, code = http.StatusServiceUnavailable, codeShardDegraded
		w.Header().Set("Retry-After", "5")
	}
	writeErrCode(w, status, code, err.Error())
}

func (s *Server) listDefinitions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.bpms.Engine.Definitions())
}

func (s *Server) deploy(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeErr(w, err)
		return
	}
	var p *model.Process
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.Contains(ct, "xml"):
		p, err = model.DecodeXML(data)
	default:
		p, err = model.DecodeJSON(data)
	}
	if err != nil {
		writeErrCode(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if err := s.bpms.Engine.Deploy(p); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"id": p.ID, "version": p.Version})
}

func (s *Server) getDefinition(w http.ResponseWriter, r *http.Request) {
	p, ok := s.bpms.Engine.Definition(r.PathValue("id"))
	if !ok {
		writeErrCode(w, http.StatusNotFound, codeUnknownDefinition, "unknown definition")
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) verifyDefinition(w http.ResponseWriter, r *http.Request) {
	p, ok := s.bpms.Engine.Definition(r.PathValue("id"))
	if !ok {
		writeErrCode(w, http.StatusNotFound, codeUnknownDefinition, "unknown definition")
		return
	}
	res, err := verify.Check(p, verify.DefaultOptions())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sound":        res.Sound,
		"bounded":      res.Bounded,
		"method":       res.Method,
		"stateCount":   res.StateCount,
		"violations":   res.Violations,
		"deadElements": res.DeadElements,
		"warnings":     res.Warnings,
	})
}

type startRequest struct {
	ProcessID string         `json:"processId"`
	Vars      map[string]any `json:"vars,omitempty"`
}

type instanceResponse struct {
	ID        string         `json:"id"`
	ProcessID string         `json:"processId"`
	Status    string         `json:"status"`
	Vars      map[string]any `json:"vars,omitempty"`
	Tokens    []tokenJSON    `json:"tokens,omitempty"`
}

type tokenJSON struct {
	Element    string `json:"element"`
	Wait       string `json:"wait,omitempty"`
	WorkItemID string `json:"workItemId,omitempty"`
}

func toInstanceResponse(v *engine.InstanceView) instanceResponse {
	out := instanceResponse{
		ID:        v.ID,
		ProcessID: v.ProcessID,
		Status:    v.Status.String(),
		Vars:      map[string]any{},
	}
	for k, val := range v.Vars {
		out.Vars[k] = val.ToGo()
	}
	for _, t := range v.ActiveTokens {
		out.Tokens = append(out.Tokens, tokenJSON{
			Element: t.Element, Wait: t.Wait.String(), WorkItemID: t.WorkItemID,
		})
	}
	return out
}

func (s *Server) startInstance(w http.ResponseWriter, r *http.Request) {
	var req startRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErrCode(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	v, err := s.bpms.Engine.StartInstance(req.ProcessID, req.Vars)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, toInstanceResponse(v))
}

// instanceRow is one row of the paginated instance listing: identity
// and status only — fetch /instances/{id} for variables and tokens.
type instanceRow struct {
	ID        string `json:"id"`
	ProcessID string `json:"processId"`
	Status    string `json:"status"`
}

// listInstances serves GET /instances with limit/offset pagination and
// an optional ?state= filter (active|completed|cancelled|faulted).
// The response carries the post-filter total, so clients can sample or
// walk the full set without ever receiving a 100k-element dump.
func (s *Server) listInstances(w http.ResponseWriter, r *http.Request) {
	offset, limit, err := pageParams(r)
	if err != nil {
		writeErrCode(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	var filter *engine.Status
	if name := r.URL.Query().Get("state"); name != "" {
		st, err := engine.ParseStatus(name)
		if err != nil {
			writeErrCode(w, http.StatusBadRequest, codeBadRequest, err.Error())
			return
		}
		filter = &st
	}
	sums := s.bpms.Engine.Summaries()
	if filter != nil {
		kept := sums[:0]
		for _, sm := range sums {
			if sm.Status == *filter {
				kept = append(kept, sm)
			}
		}
		sums = kept
	}
	total := len(sums)
	items := make([]instanceRow, 0, len(pageSlice(sums, offset, limit)))
	for _, sm := range pageSlice(sums, offset, limit) {
		items = append(items, instanceRow{ID: sm.ID, ProcessID: sm.ProcessID, Status: sm.Status.String()})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"items":  items,
		"total":  total,
		"count":  len(items),
		"offset": offset,
		"limit":  limit,
	})
}

func (s *Server) getInstance(w http.ResponseWriter, r *http.Request) {
	v, err := s.bpms.Engine.Instance(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toInstanceResponse(v))
}

func (s *Server) cancelInstance(w http.ResponseWriter, r *http.Request) {
	if err := s.bpms.Engine.CancelInstance(r.PathValue("id"), "cancelled via API"); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) setVariable(w http.ResponseWriter, r *http.Request) {
	var value any
	if err := json.NewDecoder(r.Body).Decode(&value); err != nil {
		writeErrCode(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if err := s.bpms.Engine.SetVariable(r.PathValue("id"), r.PathValue("name"), value); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) instanceHistory(w http.ResponseWriter, r *http.Request) {
	evs := s.bpms.History.EventsOf(r.PathValue("id"))
	writeJSON(w, http.StatusOK, evs)
}

type messageRequest struct {
	Name string         `json:"name"`
	Key  string         `json:"key,omitempty"`
	Vars map[string]any `json:"vars,omitempty"`
}

func (s *Server) publishMessage(w http.ResponseWriter, r *http.Request) {
	var req messageRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErrCode(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	delivered, buffered, err := s.bpms.Engine.Publish(req.Name, req.Key, req.Vars)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"delivered": delivered, "buffered": buffered})
}

func filterState(items []*task.Item, state task.State) []*task.Item {
	var out []*task.Item
	for _, it := range items {
		if it.State == state {
			out = append(out, it)
		}
	}
	return out
}

func pageSlice[T any](items []T, offset, limit int) []T {
	if offset >= len(items) {
		return nil
	}
	items = items[offset:]
	if limit >= 0 && len(items) > limit {
		items = items[:limit]
	}
	return items
}

// pageParams parses limit/offset query parameters (limit defaults to
// -1 = everything, offset to 0).
func pageParams(r *http.Request) (offset, limit int, err error) {
	offset, limit = 0, -1
	if v := r.URL.Query().Get("offset"); v != "" {
		offset, err = strconv.Atoi(v)
		if err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("api: bad offset %q", v)
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 0 {
			return 0, 0, fmt.Errorf("api: bad limit %q", v)
		}
	}
	return offset, limit, nil
}

// listTasks serves GET /api/tasks with user/state filters and
// limit/offset pagination, pushed down to the worklist's secondary
// indexes (no full-map scan on any path):
//
//   - ?user=u            → {"worklist": [...], "offered": [...]} (each
//     list paginated independently — the pre-pagination shape)
//   - ?state=s           → {"items": [...], ...} from the state index
//   - ?user=u&state=s    → {"items": [...], ...} from the user indexes,
//     filtered to the state
func (s *Server) listTasks(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	stateName := r.URL.Query().Get("state")
	offset, limit, err := pageParams(r)
	if err != nil {
		writeErrCode(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if user == "" && stateName == "" {
		writeErrCode(w, http.StatusBadRequest, codeBadRequest, "missing user or state parameter")
		return
	}
	if stateName == "" {
		writeJSON(w, http.StatusOK, map[string][]*task.Item{
			"worklist": s.bpms.Tasks.WorklistPage(user, offset, limit),
			"offered":  s.bpms.Tasks.OfferedPage(user, offset, limit),
		})
		return
	}
	state, err := task.ParseState(stateName)
	if err != nil {
		writeErrCode(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	var items []*task.Item
	switch {
	case user == "":
		items = s.bpms.Tasks.ByStatePage(state, offset, limit)
	case state == task.Offered:
		items = s.bpms.Tasks.OfferedPage(user, offset, limit)
	case state == task.Allocated || state == task.Started:
		// A user's queue is small by construction: filter it by state,
		// then page.
		items = pageSlice(filterState(s.bpms.Tasks.Worklist(user), state), offset, limit)
	default:
		// Created and terminal items are not on any user queue; the
		// per-state index is the answer-sized source, filtered by the
		// assignee recorded on the item (the closer, for terminal
		// states).
		var all []*task.Item
		for _, it := range s.bpms.Tasks.ByState(state) {
			if it.Assignee == user {
				all = append(all, it)
			}
		}
		items = pageSlice(all, offset, limit)
	}
	if items == nil {
		items = []*task.Item{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"items":  items,
		"count":  len(items),
		"offset": offset,
		"limit":  limit,
	})
}

type taskRequest struct {
	User    string         `json:"user"`
	To      string         `json:"to,omitempty"`     // delegate target
	Reason  string         `json:"reason,omitempty"` // fail reason
	Outcome map[string]any `json:"outcome,omitempty"`
}

type taskAct int

const (
	actClaim taskAct = iota
	actStart
	actComplete
	actFail
	actDelegate
	actRelease
)

func (s *Server) taskAction(act taskAct) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req taskRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErrCode(w, http.StatusBadRequest, codeBadRequest, err.Error())
			return
		}
		id := r.PathValue("id")
		// Refuse mutations whose completion callback would hit a
		// fail-stopped shard BEFORE touching the worklist, so the item
		// is not left claimed/started with its instance frozen.
		if cur, err := s.bpms.Tasks.Get(id); err == nil && cur.InstanceID != "" &&
			s.bpms.Engine.OwnerDegraded(cur.InstanceID) {
			w.Header().Set("Retry-After", "5")
			writeErrCode(w, http.StatusServiceUnavailable, codeShardDegraded,
				"api: owning shard is degraded (read-only); task mutation refused")
			return
		}
		var it *task.Item
		var err error
		switch act {
		case actClaim:
			it, err = s.bpms.Tasks.Claim(id, req.User)
		case actStart:
			it, err = s.bpms.Tasks.Start(id, req.User)
		case actComplete:
			it, err = s.bpms.Tasks.Complete(id, req.User, req.Outcome)
		case actFail:
			it, err = s.bpms.Tasks.Fail(id, req.User, req.Reason)
		case actDelegate:
			it, err = s.bpms.Tasks.Delegate(id, req.User, req.To)
		case actRelease:
			it, err = s.bpms.Tasks.Release(id, req.User)
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, it)
	}
}

func (s *Server) exportXES(w http.ResponseWriter, _ *http.Request) {
	// Stream the document: traces are built from the store one
	// instance at a time and encoded directly onto the response, so a
	// large audit trail never materialises in server memory (neither
	// as a Log nor as an XML blob).
	w.Header().Set("Content-Type", "application/xml")
	_ = history.StreamXES(w, s.bpms.History, false)
}

func (s *Server) stats(w http.ResponseWriter, _ *http.Request) {
	// Summaries() walks the shards' summary indexes — one row per
	// instance, no per-instance view materialisation, and no full
	// Instance() fetch per ID like the pre-v1 implementation did.
	counts := map[string]int{}
	for _, sm := range s.bpms.Engine.Summaries() {
		counts[sm.Status.String()]++
	}
	// Stats() snapshots the history pipeline without barriering on it:
	// a monitoring poll must not block behind a busy committer (its
	// Events equals Count() once the pipeline drains).
	hist := s.bpms.History.Stats()
	body := map[string]any{
		"definitions":   len(s.bpms.Engine.Definitions()),
		"instances":     counts,
		"events":        hist.Events,
		"shards":        s.bpms.ShardStats(),
		"history":       hist,
		"worklist":      s.bpms.Tasks.Stats(),
		"startedAt":     s.start.UTC().Format(time.RFC3339),
		"uptimeSeconds": time.Since(s.start).Seconds(),
	}
	ready, degraded := s.bpms.Ready()
	body["ready"] = ready
	if len(degraded) > 0 {
		body["degradedShards"] = degraded
	}
	if s.adm != nil {
		body["shedRequests"] = s.adm.Shed()
	}
	// Chaos runs mount a fault.Injector under the storage layer; its
	// counters make the injected-fault report scrapeable before a kill.
	if rep, ok := s.bpms.FaultReport(); ok {
		body["faults"] = rep
	}
	writeJSON(w, http.StatusOK, body)
}

// violations serves GET /violations: the audit sweeper's currently
// active violation set. With the sweeper disabled it reports enabled:
// false and an empty list rather than an error, so dashboards can poll
// it unconditionally.
func (s *Server) violations(w http.ResponseWriter, _ *http.Request) {
	aud := s.bpms.Auditor
	items := []obs.Violation{}
	var sweeps uint64
	if aud != nil {
		if v := aud.Violations(); v != nil {
			items = v
		}
		sweeps = aud.Sweeps()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": aud != nil,
		"items":   items,
		"count":   len(items),
		"sweeps":  sweeps,
	})
}

type userRequest struct {
	ID    string   `json:"id"`
	Roles []string `json:"roles,omitempty"`
}

// addUser registers a user in the organisational directory — the
// endpoint load drivers use to stand up their simulated workforce
// without restarting bpmsd with -user flags.
func (s *Server) addUser(w http.ResponseWriter, r *http.Request) {
	var req userRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErrCode(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if req.ID == "" {
		writeErrCode(w, http.StatusBadRequest, codeBadRequest, "missing user id")
		return
	}
	s.bpms.AddUser(req.ID, req.Roles...)
	writeJSON(w, http.StatusCreated, map[string]any{"id": req.ID, "roles": req.Roles})
}

// adminSnapshot triggers a state snapshot on every shard (compacting
// each shard's journal prefix) — the endpoint behind `bpmsctl
// snapshot`. In-memory systems have no snapshot stores and fail.
func (s *Server) adminSnapshot(w http.ResponseWriter, _ *http.Request) {
	if err := s.bpms.Engine.Snapshot(); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"shards": s.bpms.Engine.Shards()})
}

// Default HTTP server timeouts. Read covers the whole request (slow
// or stalled uploads can't pin a connection forever); write is long
// enough for a full XES export of a large audit trail.
const (
	defaultReadTimeout  = 30 * time.Second
	defaultWriteTimeout = 5 * time.Minute
)

// ListenAndServe runs the server on addr (convenience for cmd/bpmsd).
// It returns http.ErrServerClosed after a graceful Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.mu.Lock()
	if s.http != nil {
		s.mu.Unlock()
		return fmt.Errorf("api: server already running")
	}
	read, write := s.readTimeout, s.writeTimeout
	if read <= 0 {
		read = defaultReadTimeout
	}
	if write <= 0 {
		write = defaultWriteTimeout
	}
	srv := &http.Server{
		Addr:    addr,
		Handler: s.mux,
		// ReadHeaderTimeout alone defeats slowloris-style header
		// trickling; ReadTimeout bounds the body too.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       read,
		WriteTimeout:      write,
		IdleTimeout:       2 * time.Minute,
	}
	s.http = srv
	s.mu.Unlock()
	fmt.Printf("bpmsd listening on %s\n", addr)
	return srv.ListenAndServe()
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish (bounded by ctx). Safe to call from another
// goroutine than ListenAndServe; a no-op when the server never ran.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.http
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}
