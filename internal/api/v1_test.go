package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bpms/internal/core"
	"bpms/internal/model"
	"bpms/internal/obs"
)

// deployScripted deploys a script-only process that completes at
// start, for pagination fodder.
func deployScripted(t *testing.T, url string) {
	t.Helper()
	p := model.New("pagey").
		Start("s").
		ScriptTask("work", model.Output("done", "true")).
		End("e").
		Seq("s", "work", "e").
		MustBuild()
	data, _ := model.EncodeJSON(p)
	resp, err := http.Post(url+"/api/v1/definitions", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy status = %d", resp.StatusCode)
	}
}

// TestV1LegacyParity drives the same requests through /api/v1 and the
// legacy /api alias and requires byte-identical responses: one route
// table, two prefixes.
func TestV1LegacyParity(t *testing.T) {
	ts, _ := newServer(t)
	deployScripted(t, ts.URL)
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/instances",
		map[string]any{"processId": "pagey"}, http.StatusCreated)

	for _, path := range []string{
		"/definitions",
		"/definitions/pagey",
		"/instances",
		"/instances?state=completed&limit=1",
		"/instances/pagey-1",
		"/instances/pagey-1/history",
		"/tasks?user=alice",
		"/stats",
	} {
		v1 := get(t, ts.URL+"/api/v1"+path)
		legacy := get(t, ts.URL+"/api"+path)
		if path == "/stats" {
			// uptimeSeconds is live wall-clock time and legitimately
			// differs between the two sequential requests; mask it.
			v1, legacy = stripKey(t, v1, "uptimeSeconds"), stripKey(t, legacy, "uptimeSeconds")
		}
		if !bytes.Equal(v1, legacy) {
			t.Errorf("%s: v1 and legacy responses differ:\n  v1:     %s\n  legacy: %s", path, v1, legacy)
		}
	}
}

// stripKey removes one top-level key from a JSON object and
// re-serialises it deterministically.
func stripKey(t *testing.T, data []byte, key string) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, key)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestErrorEnvelope checks the machine-readable error surface: each
// failure class maps to one status and one stable code, with the
// legacy flat string kept at top-level "message".
func TestErrorEnvelope(t *testing.T) {
	ts, b := newServer(t)
	deployScripted(t, ts.URL)

	// A user task to exercise the task error paths.
	p := model.New("envl").
		Start("s").
		UserTask("review", model.Role("clerk")).
		End("e").
		Seq("s", "review", "e").
		MustBuild()
	data, _ := model.EncodeJSON(p)
	resp, _ := http.Post(ts.URL+"/api/v1/definitions", "application/json", bytes.NewReader(data))
	resp.Body.Close()
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/instances",
		map[string]any{"processId": "envl"}, http.StatusCreated)
	b.AddUser("mallory") // no roles: not authorized for clerk work

	// Find the offered item id via alice's task list.
	var lists struct {
		Offered []struct {
			ID string `json:"id"`
		} `json:"offered"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/api/v1/tasks?user=alice"), &lists); err != nil {
		t.Fatal(err)
	}
	if len(lists.Offered) != 1 {
		t.Fatalf("offered = %+v, want 1 item", lists.Offered)
	}
	item := lists.Offered[0].ID

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
		code   string
	}{
		{"unknown definition", http.MethodGet, "/definitions/nope", nil,
			http.StatusNotFound, "unknown_definition"},
		{"unknown instance", http.MethodGet, "/instances/nope", nil,
			http.StatusNotFound, "unknown_instance"},
		{"unknown task", http.MethodPost, "/tasks/nope/claim", map[string]any{"user": "alice"},
			http.StatusNotFound, "unknown_task"},
		{"start unstarted process", http.MethodPost, "/instances", map[string]any{"processId": "nope"},
			http.StatusNotFound, "unknown_definition"},
		{"bad body", http.MethodPost, "/instances", "not-an-object",
			http.StatusBadRequest, "bad_request"},
		{"unauthorized claim", http.MethodPost, "/tasks/" + item + "/claim", map[string]any{"user": "mallory"},
			http.StatusForbidden, "not_authorized"},
		{"invalid transition", http.MethodPost, "/tasks/" + item + "/complete", map[string]any{"user": "alice"},
			http.StatusConflict, "invalid_transition"},
		{"bad state filter", http.MethodGet, "/instances?state=sideways", nil,
			http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if tc.body != nil {
				json.NewEncoder(&buf).Encode(tc.body)
			}
			req, _ := http.NewRequest(tc.method, ts.URL+"/api/v1"+tc.path, &buf)
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			var e apiError
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if e.Error.Code != tc.code {
				t.Errorf("code = %q, want %q (message %q)", e.Error.Code, tc.code, e.Error.Message)
			}
			if e.Error.Message == "" || e.Message != e.Error.Message {
				t.Errorf("flat legacy message %q should mirror envelope message %q", e.Message, e.Error.Message)
			}
		})
	}
}

// TestInstancePagination checks limit/offset/state on the instance
// listing: stable ordering, a post-filter total, and a usable
// page-walk.
func TestInstancePagination(t *testing.T) {
	ts, _ := newServer(t)
	deployScripted(t, ts.URL)
	for i := 0; i < 5; i++ {
		doJSON(t, http.MethodPost, ts.URL+"/api/v1/instances",
			map[string]any{"processId": "pagey"}, http.StatusCreated)
	}

	type page struct {
		Items []struct {
			ID        string `json:"id"`
			ProcessID string `json:"processId"`
			Status    string `json:"status"`
		} `json:"items"`
		Total  int `json:"total"`
		Count  int `json:"count"`
		Offset int `json:"offset"`
		Limit  int `json:"limit"`
	}
	load := func(q string) page {
		var p page
		if err := json.Unmarshal(get(t, ts.URL+"/api/v1/instances"+q), &p); err != nil {
			t.Fatal(err)
		}
		return p
	}

	all := load("")
	if all.Total != 5 || all.Count != 5 {
		t.Fatalf("unpaged: total=%d count=%d, want 5/5", all.Total, all.Count)
	}
	mid := load("?offset=2&limit=2")
	if mid.Total != 5 || mid.Count != 2 || mid.Offset != 2 || mid.Limit != 2 {
		t.Fatalf("page: %+v", mid)
	}
	if mid.Items[0].ID != all.Items[2].ID || mid.Items[1].ID != all.Items[3].ID {
		t.Fatalf("page 2/2 = %v, want slice [2:4] of %v", mid.Items, all.Items)
	}
	past := load("?offset=99&limit=2")
	if past.Total != 5 || past.Count != 0 {
		t.Fatalf("past-the-end: %+v", past)
	}
	done := load("?state=completed")
	if done.Total != 5 {
		t.Fatalf("state=completed total = %d, want 5 (script process auto-completes)", done.Total)
	}
	for _, it := range done.Items {
		if it.Status != "completed" {
			t.Fatalf("state filter leaked %+v", it)
		}
	}
	none := load("?state=faulted")
	if none.Total != 0 || none.Count != 0 {
		t.Fatalf("state=faulted: %+v", none)
	}

	// Walk pages of 2 and reassemble the full listing.
	var walked []string
	for off := 0; ; {
		p := load(fmt.Sprintf("?offset=%d&limit=2", off))
		for _, it := range p.Items {
			walked = append(walked, it.ID)
		}
		off += len(p.Items)
		if len(p.Items) == 0 || off >= p.Total {
			break
		}
	}
	if len(walked) != 5 {
		t.Fatalf("walk collected %d ids: %v", len(walked), walked)
	}
}

// TestMetricsEndpointAndViolations covers the observability surface:
// an instrumented server exposes GET /metrics in the text exposition
// format with per-route request counters, /api/v1/violations reports
// the sweeper state, and /api/v1/stats carries uptime.
func TestMetricsEndpointAndViolations(t *testing.T) {
	b, err := core.Open(core.Options{Metrics: obs.New(), AuditInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	ts := httptest.NewServer(New(b).Handler())
	t.Cleanup(ts.Close)

	// Drive one instrumented request, then scrape.
	stats := doJSON(t, "GET", ts.URL+"/api/v1/stats", nil, http.StatusOK)
	if _, ok := stats["uptimeSeconds"].(float64); !ok {
		t.Errorf("stats missing uptimeSeconds: %v", stats)
	}
	if _, ok := stats["startedAt"].(string); !ok {
		t.Errorf("stats missing startedAt: %v", stats)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		obs.MetricUptime,
		obs.MetricStartTime,
		`bpms_http_requests_total{route="GET /api/v1/stats",code="200"} 1`,
		`bpms_http_request_seconds_bucket{route="GET /api/v1/stats",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in /metrics:\n%.2000s", want, text)
		}
	}

	viol := doJSON(t, "GET", ts.URL+"/api/v1/violations", nil, http.StatusOK)
	if viol["enabled"] != true {
		t.Errorf("violations enabled = %v, want true", viol["enabled"])
	}
	if _, ok := viol["items"].([]any); !ok {
		t.Errorf("violations items missing: %v", viol)
	}
}

// TestMetricsDisabled checks the uninstrumented server 404s the scrape
// endpoint and reports the sweeper disabled.
func TestMetricsDisabled(t *testing.T) {
	ts, _ := newServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /metrics on uninstrumented server = %d, want 404", resp.StatusCode)
	}
	viol := doJSON(t, "GET", ts.URL+"/api/v1/violations", nil, http.StatusOK)
	if viol["enabled"] != false {
		t.Errorf("violations enabled = %v, want false", viol["enabled"])
	}
}
