package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bpms/internal/core"
	"bpms/internal/fault"
	"bpms/internal/model"
	"bpms/internal/storage"
)

// jsonBody wraps a JSON literal as a request body.
func jsonBody(s string) io.Reader { return strings.NewReader(s) }

// envelopeOf decodes the v1 error envelope.
func envelopeOf(t *testing.T, resp *http.Response) (code, msg string) {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	return env.Error.Code, env.Error.Message
}

// TestDegradedShardEnvelope injects a journal fault, trips the shard
// into read-only mode through the API, and asserts the documented
// degradation surface: 503 + shard_degraded + Retry-After on writes,
// working reads, failing /readyz, live /healthz.
func TestDegradedShardEnvelope(t *testing.T) {
	b, err := core.Open(core.Options{
		DataDir:    t.TempDir(),
		SyncPolicy: storage.SyncAlways,
		Durable:    true,
		FS:         fault.NewInjector(fault.OS, fault.Plan{PathContains: "state", FailFsyncAt: 3}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	ts := httptest.NewServer(New(b).Handler())
	t.Cleanup(ts.Close)

	if err := b.Engine.Deploy(model.Sequence(1)); err != nil {
		t.Fatal(err)
	}

	// Ready while healthy.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /readyz = %d", resp.StatusCode)
	}

	// Drive starts through the API until the injected fault trips the
	// shard; the tripping request itself must answer a classified
	// error, not a bare 500.
	var last *http.Response
	for i := 0; i < 100; i++ {
		resp, err := http.Post(ts.URL+"/api/v1/instances", "application/json",
			jsonBody(`{"processId":"seq-1"}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusCreated {
			last = resp
			break
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if last == nil {
		t.Fatal("fault never surfaced through the API")
	}
	defer last.Body.Close()
	// The first failing write raced the fail-stop: it may carry the
	// injected-fault internal error or already the degraded code. The
	// NEXT write must be a clean 503 shard_degraded.
	io.Copy(io.Discard, last.Body)

	resp, err = http.Post(ts.URL+"/api/v1/instances", "application/json",
		jsonBody(`{"processId":"seq-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write on degraded shard = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("degraded 503 missing Retry-After")
	}
	if code, _ := envelopeOf(t, resp); code != codeShardDegraded {
		t.Fatalf("degraded code = %q, want %q", code, codeShardDegraded)
	}

	// Reads still serve.
	resp, err = http.Get(ts.URL + "/api/v1/definitions")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read on degraded system = %d", resp.StatusCode)
	}

	// /readyz now refuses; /healthz stays live; /api/stats reports it.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rz struct {
		Ready          bool  `json:"ready"`
		DegradedShards []int `json:"degradedShards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rz.Ready || len(rz.DegradedShards) != 1 {
		t.Fatalf("degraded /readyz = %d %+v", resp.StatusCode, rz)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded /healthz = %d, want 200 (process is alive)", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready, _ := stats["ready"].(bool); ready {
		t.Fatal("stats.ready = true on degraded system")
	}
	if _, ok := stats["faults"]; !ok {
		t.Fatal("stats missing injected-fault report")
	}
}

// TestAdmissionShed saturates a 1-slot write gate and asserts the
// shed contract: queue overflow answers 429 overloaded, queue timeout
// answers 503 overloaded, both with Retry-After, and reads (separate
// class) keep flowing.
func TestAdmissionShed(t *testing.T) {
	b, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	srv := New(b, WithAdmission(AdmissionConfig{
		MaxInFlightWrite: 1,
		QueueDepth:       1,
		QueueTimeout:     50 * time.Millisecond,
	}))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Occupy the single write slot with a request parked inside its
	// handler (a deploy blocked reading its body).
	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/definitions", pr)
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Wait until the slot is actually held.
	deadline := time.Now().Add(2 * time.Second)
	for srv.adm.write != nil && len(srv.adm.write.slots) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot never occupied")
		}
		time.Sleep(time.Millisecond)
	}

	// Second write queues (depth 1) and times out → 503 overloaded.
	// Third write overflows the queue → 429 overloaded. Run them
	// concurrently so the queue is actually occupied when the third
	// arrives.
	statuses := make(chan *http.Response, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/api/v1/instances", "application/json",
				jsonBody(`{"processId":"nope"}`))
			if err != nil {
				t.Error(err)
				statuses <- nil
				return
			}
			statuses <- resp
		}()
		time.Sleep(10 * time.Millisecond) // order: queue first, overflow second
	}
	got := map[int]string{}
	for i := 0; i < 2; i++ {
		resp := <-statuses
		if resp == nil {
			continue
		}
		code, _ := envelopeOf(t, resp)
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Errorf("shed %d missing Retry-After", resp.StatusCode)
		}
		got[resp.StatusCode] = code
		resp.Body.Close()
	}
	if got[http.StatusServiceUnavailable] != codeOverloaded {
		t.Fatalf("queue-timeout shed = %v, want 503 %s", got, codeOverloaded)
	}
	if got[http.StatusTooManyRequests] != codeOverloaded {
		t.Fatalf("queue-overflow shed = %v, want 429 %s", got, codeOverloaded)
	}

	// Reads are an independent class: unaffected.
	resp, err := http.Get(ts.URL + "/api/v1/definitions")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read during write saturation = %d", resp.StatusCode)
	}

	if srv.adm.Shed() < 2 {
		t.Fatalf("shed counter = %d, want >= 2", srv.adm.Shed())
	}

	// Release the parked deploy.
	pw.Close()
	wg.Wait()
}
