package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bpms/internal/core"
	"bpms/internal/engine"
	"bpms/internal/expr"
	"bpms/internal/model"
)

func newServer(t *testing.T) (*httptest.Server, *core.BPMS) {
	t.Helper()
	b, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	b.AddUser("alice", "clerk")
	b.Engine.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	ts := httptest.NewServer(New(b).Handler())
	t.Cleanup(ts.Close)
	return ts, b
}

func doJSON(t *testing.T, method, url string, body any, want int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("%s %s: status %d, want %d (%s)", method, url, resp.StatusCode, want, msg.String())
	}
	if resp.StatusCode == http.StatusNoContent {
		return nil
	}
	var out map[string]any
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&out); err != nil {
		return nil // array responses handled by callers directly
	}
	return out
}

func TestDeployStartCompleteViaAPI(t *testing.T) {
	ts, b := newServer(t)

	// Deploy a process with a user task via JSON.
	p := model.New("api-proc").
		Start("s").
		UserTask("review", model.Name("Review"), model.Role("clerk")).
		End("e").
		Seq("s", "review", "e").
		MustBuild()
	data, _ := model.EncodeJSON(p)
	resp, err := http.Post(ts.URL+"/api/definitions", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Verify endpoint reports soundness.
	vres := doJSON(t, "GET", ts.URL+"/api/definitions/api-proc/verify", nil, http.StatusOK)
	if vres["sound"] != true {
		t.Errorf("verify = %v", vres)
	}

	// Start an instance.
	started := doJSON(t, "POST", ts.URL+"/api/instances",
		map[string]any{"processId": "api-proc", "vars": map[string]any{"amount": 5}},
		http.StatusCreated)
	id := started["id"].(string)
	if started["status"] != "active" {
		t.Fatalf("instance = %v", started)
	}

	// The task shows up on alice's offered list.
	req, _ := http.NewRequest("GET", ts.URL+"/api/tasks?user=alice", nil)
	tresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var tasks map[string][]map[string]any
	json.NewDecoder(tresp.Body).Decode(&tasks)
	tresp.Body.Close()
	if len(tasks["offered"]) != 1 {
		t.Fatalf("offered = %v", tasks)
	}
	taskID := tasks["offered"][0]["id"].(string)

	// Claim, start, complete through the API.
	doJSON(t, "POST", ts.URL+"/api/tasks/"+taskID+"/claim", map[string]any{"user": "alice"}, http.StatusOK)
	doJSON(t, "POST", ts.URL+"/api/tasks/"+taskID+"/start", map[string]any{"user": "alice"}, http.StatusOK)
	doJSON(t, "POST", ts.URL+"/api/tasks/"+taskID+"/complete",
		map[string]any{"user": "alice", "outcome": map[string]any{"ok": true}}, http.StatusOK)

	// The instance completed and carries the outcome variable.
	got := doJSON(t, "GET", ts.URL+"/api/instances/"+id, nil, http.StatusOK)
	if got["status"] != "completed" {
		t.Fatalf("instance after completion = %v", got)
	}
	vars := got["vars"].(map[string]any)
	if vars["ok"] != true {
		t.Errorf("vars = %v", vars)
	}

	// History and XES export are available.
	hreq, _ := http.Get(ts.URL + "/api/instances/" + id + "/history")
	if hreq.StatusCode != http.StatusOK {
		t.Errorf("history status = %d", hreq.StatusCode)
	}
	hreq.Body.Close()
	xres, _ := http.Get(ts.URL + "/api/history/xes")
	var xbuf bytes.Buffer
	xbuf.ReadFrom(xres.Body)
	xres.Body.Close()
	if !strings.Contains(xbuf.String(), "<log") || !strings.Contains(xbuf.String(), "Review") {
		t.Errorf("XES export missing content:\n%s", xbuf.String())
	}

	// Stats endpoint.
	stats := doJSON(t, "GET", ts.URL+"/api/stats", nil, http.StatusOK)
	if stats["definitions"].(float64) != 1 {
		t.Errorf("stats = %v", stats)
	}
	_ = b
}

func TestAPIErrorMapping(t *testing.T) {
	ts, _ := newServer(t)
	// Unknown instance -> 404.
	doJSON(t, "GET", ts.URL+"/api/instances/ghost", nil, http.StatusNotFound)
	// Unknown process -> 404.
	doJSON(t, "POST", ts.URL+"/api/instances", map[string]any{"processId": "ghost"}, http.StatusNotFound)
	// Invalid definition -> 400.
	resp, _ := http.Post(ts.URL+"/api/definitions", "application/json", strings.NewReader(`{"id":"x","elements":[],"flows":[]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid deploy status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Unknown task -> 404.
	doJSON(t, "POST", ts.URL+"/api/tasks/wi-999/claim", map[string]any{"user": "alice"}, http.StatusNotFound)
	// Bad JSON -> 400.
	resp2, _ := http.Post(ts.URL+"/api/instances", "application/json", strings.NewReader(`{broken`))
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status = %d", resp2.StatusCode)
	}
	resp2.Body.Close()
	// Missing user -> 400.
	resp3, _ := http.Get(ts.URL + "/api/tasks")
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user status = %d", resp3.StatusCode)
	}
	resp3.Body.Close()
}

func TestAPIMessageAndCancel(t *testing.T) {
	ts, b := newServer(t)
	p := model.New("msgproc").
		Start("s").
		MessageCatch("wait", "go", model.CorrelationKey("k")).
		End("e").
		Seq("s", "wait", "e").
		MustBuild()
	if err := b.Engine.Deploy(p); err != nil {
		t.Fatal(err)
	}
	started := doJSON(t, "POST", ts.URL+"/api/instances",
		map[string]any{"processId": "msgproc", "vars": map[string]any{"k": "K1"}}, http.StatusCreated)
	id := started["id"].(string)

	// Publish with the right key completes it.
	pub := doJSON(t, "POST", ts.URL+"/api/messages",
		map[string]any{"name": "go", "key": "K1", "vars": map[string]any{"extra": 1}}, http.StatusOK)
	if pub["delivered"].(float64) != 1 {
		t.Fatalf("publish = %v", pub)
	}
	got := doJSON(t, "GET", ts.URL+"/api/instances/"+id, nil, http.StatusOK)
	if got["status"] != "completed" {
		t.Fatalf("status = %v", got["status"])
	}

	// Cancel an active instance.
	started2 := doJSON(t, "POST", ts.URL+"/api/instances",
		map[string]any{"processId": "msgproc", "vars": map[string]any{"k": "K2"}}, http.StatusCreated)
	id2 := started2["id"].(string)
	req, _ := http.NewRequest("DELETE", ts.URL+"/api/instances/"+id2, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Double cancel -> 409.
	resp2, _ := http.DefaultClient.Do(req)
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("double cancel status = %d", resp2.StatusCode)
	}
	resp2.Body.Close()

	// Set a variable on... a fresh active instance.
	started3 := doJSON(t, "POST", ts.URL+"/api/instances",
		map[string]any{"processId": "msgproc", "vars": map[string]any{"k": "K3"}}, http.StatusCreated)
	id3 := started3["id"].(string)
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(42)
	vreq, _ := http.NewRequest("PUT", fmt.Sprintf("%s/api/instances/%s/variables/answer", ts.URL, id3), &buf)
	vresp, err := http.DefaultClient.Do(vreq)
	if err != nil {
		t.Fatal(err)
	}
	if vresp.StatusCode != http.StatusNoContent {
		t.Fatalf("set variable status = %d", vresp.StatusCode)
	}
	vresp.Body.Close()
	got3 := doJSON(t, "GET", ts.URL+"/api/instances/"+id3, nil, http.StatusOK)
	if got3["vars"].(map[string]any)["answer"].(float64) != 42 {
		t.Errorf("vars = %v", got3["vars"])
	}
}

func TestAPIDeployXML(t *testing.T) {
	ts, _ := newServer(t)
	data, _ := model.EncodeXML(model.Mixed())
	resp, err := http.Post(ts.URL+"/api/definitions", "application/xml", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("xml deploy status = %d", resp.StatusCode)
	}
	// Definition list shows it.
	lresp, _ := http.Get(ts.URL + "/api/definitions")
	var defs []string
	json.NewDecoder(lresp.Body).Decode(&defs)
	lresp.Body.Close()
	if len(defs) != 1 || defs[0] != "mixed" {
		t.Errorf("definitions = %v", defs)
	}
}

// TestAPIShardedStatsAndSnapshot drives a 4-shard persistent system:
// /api/stats must report per-shard instance counts and POST
// /api/admin/snapshot must write a snapshot on every shard.
func TestAPIShardedStatsAndSnapshot(t *testing.T) {
	b, err := core.Open(core.Options{DataDir: t.TempDir(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	b.Engine.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	ts := httptest.NewServer(New(b).Handler())
	t.Cleanup(ts.Close)

	if err := b.Engine.Deploy(model.Sequence(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		doJSON(t, "POST", ts.URL+"/api/instances",
			map[string]any{"processId": "seq-2"}, http.StatusCreated)
	}

	stats := doJSON(t, "GET", ts.URL+"/api/stats", nil, http.StatusOK)
	shards, ok := stats["shards"].([]any)
	if !ok || len(shards) != 4 {
		t.Fatalf("stats shards = %v", stats["shards"])
	}
	total := 0
	for _, s := range shards {
		total += int(s.(map[string]any)["instances"].(float64))
	}
	if total != 20 {
		t.Fatalf("per-shard instance counts sum to %d, want 20", total)
	}

	snap := doJSON(t, "POST", ts.URL+"/api/admin/snapshot", map[string]any{}, http.StatusOK)
	if int(snap["shards"].(float64)) != 4 {
		t.Fatalf("snapshot response = %v", snap)
	}
}

// TestAPIAdminSnapshotInMemory: an in-memory system has no snapshot
// stores, so the admin trigger reports an error.
func TestAPIAdminSnapshotInMemory(t *testing.T) {
	ts, _ := newServer(t)
	doJSON(t, "POST", ts.URL+"/api/admin/snapshot", map[string]any{}, http.StatusInternalServerError)
}

// TestWriteJSONEncodesBeforeHeader: an unencodable value must produce
// a 500 with a JSON error body — not a 200 with a truncated body —
// and successful responses carry Content-Length (no chunked encoding).
func TestWriteJSONEncodesBeforeHeader(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{"bad": func() {}})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil ||
		e.Error.Code != codeInternal || e.Error.Message == "" || e.Message != e.Error.Message {
		t.Fatalf("error body = %q (%v)", rec.Body.String(), err)
	}

	rec = httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{"ok": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Length"); got != fmt.Sprint(rec.Body.Len()) {
		t.Errorf("Content-Length = %q, body %d bytes", got, rec.Body.Len())
	}
}

// TestAPITaskPaginationAndFilters drives GET /api/tasks' limit/offset
// and state/user filters against a striped worklist.
func TestAPITaskPaginationAndFilters(t *testing.T) {
	b, err := core.Open(core.Options{WorklistStripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	b.AddUser("alice", "clerk")
	ts := httptest.NewServer(New(b).Handler())
	t.Cleanup(ts.Close)

	p := model.New("page-proc").
		Start("s").
		UserTask("review", model.Role("clerk")).
		End("e").
		Seq("s", "review", "e").
		MustBuild()
	if err := b.Engine.Deploy(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		doJSON(t, "POST", ts.URL+"/api/instances",
			map[string]any{"processId": "page-proc"}, http.StatusCreated)
	}

	getPage := func(query string) map[string]any {
		t.Helper()
		return doJSON(t, "GET", ts.URL+"/api/tasks?"+query, nil, http.StatusOK)
	}
	// State filter reads the per-state index.
	page := getPage("state=offered")
	if int(page["count"].(float64)) != 10 {
		t.Fatalf("state=offered count = %v", page["count"])
	}
	// Pagination.
	page = getPage("state=offered&limit=3&offset=8")
	if int(page["count"].(float64)) != 2 {
		t.Fatalf("offset past tail count = %v", page["count"])
	}
	// user + state goes through the user indexes.
	page = getPage("user=alice&state=offered&limit=4")
	if int(page["count"].(float64)) != 4 {
		t.Fatalf("user+state count = %v", page["count"])
	}
	// Claim two; the allocated filter sees only them.
	items := page["items"].([]any)
	for _, raw := range items[:2] {
		id := raw.(map[string]any)["id"].(string)
		doJSON(t, "POST", ts.URL+"/api/tasks/"+id+"/claim", map[string]any{"user": "alice"}, http.StatusOK)
	}
	page = getPage("user=alice&state=allocated")
	if int(page["count"].(float64)) != 2 {
		t.Fatalf("allocated count = %v", page["count"])
	}
	// Complete one; user+terminal-state reads the state index filtered
	// by the closing assignee.
	claimedID := items[0].(map[string]any)["id"].(string)
	doJSON(t, "POST", ts.URL+"/api/tasks/"+claimedID+"/start", map[string]any{"user": "alice"}, http.StatusOK)
	doJSON(t, "POST", ts.URL+"/api/tasks/"+claimedID+"/complete", map[string]any{"user": "alice"}, http.StatusOK)
	page = getPage("user=alice&state=completed")
	if int(page["count"].(float64)) != 1 {
		t.Fatalf("user+completed count = %v", page["count"])
	}
	page = getPage("user=bob&state=completed")
	if int(page["count"].(float64)) != 0 {
		t.Fatalf("other user's completed count = %v", page["count"])
	}
	// Legacy user-only shape, paginated per list.
	req, _ := http.NewRequest("GET", ts.URL+"/api/tasks?user=alice&limit=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var lists map[string][]map[string]any
	json.NewDecoder(resp.Body).Decode(&lists)
	resp.Body.Close()
	if len(lists["worklist"]) != 1 || len(lists["offered"]) != 1 {
		t.Fatalf("paginated lists = %d/%d", len(lists["worklist"]), len(lists["offered"]))
	}
	// Bad parameters.
	doJSON(t, "GET", ts.URL+"/api/tasks?state=bogus", nil, http.StatusBadRequest)
	doJSON(t, "GET", ts.URL+"/api/tasks?user=alice&limit=-1", nil, http.StatusBadRequest)
	doJSON(t, "GET", ts.URL+"/api/tasks?user=alice&offset=x", nil, http.StatusBadRequest)

	// /api/stats reports the striped worklist.
	stats := doJSON(t, "GET", ts.URL+"/api/stats", nil, http.StatusOK)
	wl, ok := stats["worklist"].(map[string]any)
	if !ok || int(wl["stripes"].(float64)) != 4 {
		t.Fatalf("stats worklist = %v", stats["worklist"])
	}
	if int(wl["items"].(float64)) != 10 {
		t.Errorf("stats worklist items = %v", wl["items"])
	}
}
