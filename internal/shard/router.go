// Package shard implements the sharded engine runtime: N independent
// enactment engines, each with its own write-ahead log, snapshot
// store, and group-commit batcher, behind a Router that partitions
// process instances by hashing their IDs. The worklist, organisational
// directory, timer wheel, and history store remain shared, so users
// see one system while durable state transitions on different shards
// commit through independent fsync pipelines (experiment T11 measures
// the resulting near-linear durable-throughput scaling).
//
// Routing rules:
//
//   - An instance lives on the shard its ID hashes to (FNV-1a); the
//     router allocates IDs from one sequence and dispatches every
//     instance-addressed operation (query, cancel, variable update) to
//     the owner shard, falling back to a scan when a data dir was
//     opened with a different shard count.
//   - Deployments fan out to every shard, so each shard's journal is
//     self-contained for recovery.
//   - A published message fans out to every shard (its subscriber — if
//     any — lives wherever that instance hashes to); a message nobody
//     is waiting for is buffered on the shard its correlation key
//     hashes to, and parking tokens on any shard consult that buffer
//     through the engine's BufferedMessages hook.
//
// Recovery opens all shards in parallel: each engine replays its own
// snapshot + journal suffix, and the router then re-seeds its ID
// sequence from the highest recovered instance number.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bpms/internal/engine"
	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/obs"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
)

// Config assembles a Router. Journals supplies one state journal per
// shard (its length is the shard count); Snapshots, when non-nil, must
// be parallel to Journals (nil entries disable snapshots for that
// shard). Tasks, Timers, Clock, and History are shared across shards.
type Config struct {
	// Journals holds one state journal per shard.
	Journals []storage.Journal
	// Snapshots holds one snapshot store per shard (may be nil, or
	// hold nil entries, to disable snapshot compaction).
	Snapshots []*storage.SnapshotStore
	// SnapshotEvery writes a shard snapshot after this many appends to
	// that shard's journal (0 = only on explicit Snapshot calls).
	SnapshotEvery int
	// RecoveryWorkers bounds each shard's recovery decode pool
	// (streaming-snapshot decode and parallel segment replay;
	// 0 = GOMAXPROCS, 1 = serial).
	RecoveryWorkers int
	// BlobSnapshots forces the legacy single-blob snapshot format
	// (T16 baseline).
	BlobSnapshots bool
	// Durable makes API-visible transitions wait for the owning
	// shard's WAL commit acknowledgement.
	Durable bool
	// Tasks is the shared worklist service.
	Tasks *task.Service
	// Timers is the shared deadline service.
	Timers timer.Service
	// Clock supplies time (default RealClock).
	Clock timer.Clock
	// History, when set, receives audit events from every shard.
	History *history.Store
	// Metrics, when set, instruments each shard's engine hot paths
	// with per-shard latency handles.
	Metrics *obs.Metrics
	// OnDegrade, when set, is called (at most once per shard) when a
	// shard fail-stops on a storage I/O error.
	OnDegrade func(shard int, reason string)
}

// Stat reports one shard's load for monitoring.
type Stat struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Instances is the number of process instances on the shard.
	Instances int `json:"instances"`
	// Degraded reports a fail-stopped (read-only) shard.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedReason is the storage error that froze the shard.
	DegradedReason string `json:"degradedReason,omitempty"`
}

// Router is the sharded enactment runtime. It exposes the same surface
// as a single engine — the system facade and the HTTP API program
// against it — and is safe for concurrent use.
type Router struct {
	shards []*engine.Engine
	clock  timer.Clock
	hist   *history.Store
	seq    atomic.Uint64
}

// New builds a router over len(cfg.Journals) shards, recovering every
// shard in parallel.
func New(cfg Config) (*Router, error) {
	if len(cfg.Journals) == 0 {
		return nil, fmt.Errorf("shard: no journals")
	}
	if cfg.Clock == nil {
		cfg.Clock = timer.RealClock{}
	}
	r := &Router{
		shards: make([]*engine.Engine, len(cfg.Journals)),
		clock:  cfg.Clock,
		hist:   cfg.History,
	}
	var wg sync.WaitGroup
	errs := make([]error, len(cfg.Journals))
	for i := range cfg.Journals {
		var snaps *storage.SnapshotStore
		if i < len(cfg.Snapshots) {
			snaps = cfg.Snapshots[i]
		}
		wg.Add(1)
		go func(i int, snaps *storage.SnapshotStore) {
			defer wg.Done()
			var onDegrade func(string)
			if cfg.OnDegrade != nil {
				onDegrade = func(reason string) { cfg.OnDegrade(i, reason) }
			}
			eng, err := engine.New(engine.Config{
				Journal:          cfg.Journals[i],
				Snapshots:        snaps,
				SnapshotEvery:    cfg.SnapshotEvery,
				RecoveryWorkers:  cfg.RecoveryWorkers,
				BlobSnapshots:    cfg.BlobSnapshots,
				Durable:          cfg.Durable,
				Tasks:            cfg.Tasks,
				Timers:           cfg.Timers,
				Clock:            cfg.Clock,
				History:          cfg.History,
				Publisher:        r.Publish,
				BufferedMessages: r.takeBuffered,
				Metrics:          cfg.Metrics.EngineShard(i),
				OnDegrade:        onDegrade,
			})
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			r.shards[i] = eng
		}(i, snaps)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	r.seq.Store(r.maxInstanceSeq())
	return r, nil
}

// maxInstanceSeq scans every shard's recovered instances for the
// highest trailing sequence number, so new IDs continue past them.
func (r *Router) maxInstanceSeq() uint64 {
	var max uint64
	for _, s := range r.shards {
		if n := engine.MaxInstanceSeq(s.Instances()); n > max {
			max = n
		}
	}
	return max
}

// shardOf hashes a routing key (instance ID or correlation key) to a
// shard index. FNV-1a keeps placement stable across restarts.
func (r *Router) shardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// owner locates the shard holding an instance: the hash shard first,
// then a scan (instances placed under a different historical shard
// count remain reachable). Unknown IDs resolve to the hash shard,
// whose engine reports the unknown-instance error.
func (r *Router) owner(id string) *engine.Engine {
	home := r.shards[r.shardOf(id)]
	if home.Has(id) {
		return home
	}
	for _, s := range r.shards {
		if s.Has(id) {
			return s
		}
	}
	return home
}

func (r *Router) audit(ev *history.Event) {
	if r.hist != nil {
		// Non-blocking hand-off to the striped history pipeline (same
		// path as the per-shard engine audit).
		r.hist.Enqueue(ev)
	}
}

// Shards returns the number of shards.
func (r *Router) Shards() int { return len(r.shards) }

// Shard exposes one shard's engine (tests and diagnostics).
func (r *Router) Shard(i int) *engine.Engine { return r.shards[i] }

// Stats reports per-shard instance counts and degradation state.
func (r *Router) Stats() []Stat {
	out := make([]Stat, len(r.shards))
	for i, s := range r.shards {
		st := Stat{Shard: i, Instances: s.InstanceCount()}
		if s.Degraded() {
			st.Degraded = true
			st.DegradedReason, _ = s.DegradedReason()
		}
		out[i] = st
	}
	return out
}

// OwnerDegraded reports whether the shard owning the given instance ID
// has fail-stopped (the API refuses writes to it with 503
// shard_degraded while reads keep serving).
func (r *Router) OwnerDegraded(id string) bool {
	return r.owner(id).Degraded()
}

// DegradedShards returns the indices of fail-stopped shards (empty
// while fully healthy; readiness requires it empty).
func (r *Router) DegradedShards() []int {
	var out []int
	for i, s := range r.shards {
		if s.Degraded() {
			out = append(out, i)
		}
	}
	return out
}

// RegisterHandler binds a service-task handler on every shard.
func (r *Router) RegisterHandler(name string, h engine.Handler) {
	for _, s := range r.shards {
		s.RegisterHandler(name, h)
	}
}

// Deploy validates, compiles, and registers a definition on every
// shard (each shard persists it in its own journal; the deployment is
// audited once).
func (r *Router) Deploy(p *model.Process) error {
	for i, s := range r.shards {
		var err error
		if i == 0 {
			err = s.Deploy(p)
		} else {
			err = s.DeployReplica(p)
		}
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Definition returns a deployed definition (shared; do not mutate).
func (r *Router) Definition(id string) (*model.Process, bool) {
	return r.shards[0].Definition(id)
}

// Definitions returns the IDs of all deployed definitions, sorted.
func (r *Router) Definitions() []string {
	return r.shards[0].Definitions()
}

// Tasks exposes the shared worklist service.
func (r *Router) Tasks() *task.Service { return r.shards[0].Tasks() }

// Now returns the runtime clock's current time.
func (r *Router) Now() time.Time { return r.clock.Now() }

// StartInstance allocates an instance ID and starts the instance on
// the shard the ID hashes to.
func (r *Router) StartInstance(processID string, vars map[string]any) (*engine.InstanceView, error) {
	id := fmt.Sprintf("%s-%d", processID, r.seq.Add(1))
	return r.shards[r.shardOf(id)].StartInstanceID(processID, id, vars)
}

// Instance returns a point-in-time view of an instance.
func (r *Router) Instance(id string) (*engine.InstanceView, error) {
	return r.owner(id).Instance(id)
}

// Instances returns the IDs of all instances across shards, sorted.
func (r *Router) Instances() []string {
	var out []string
	for _, s := range r.shards {
		out = append(out, s.Instances()...)
	}
	sort.Strings(out)
	return out
}

// Summaries returns a summary row per instance across all shards,
// sorted by ID.
func (r *Router) Summaries() []engine.InstanceSummary {
	var out []engine.InstanceSummary
	for _, s := range r.shards {
		out = append(out, s.Summaries()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CancelInstance cancels an active instance on its owner shard.
func (r *Router) CancelInstance(id, reason string) error {
	return r.owner(id).CancelInstance(id, reason)
}

// Variables returns a copy of the instance's case data.
func (r *Router) Variables(id string) (map[string]expr.Value, error) {
	return r.owner(id).Variables(id)
}

// SetVariable updates one case variable on an active instance.
func (r *Router) SetVariable(id, name string, value any) error {
	return r.owner(id).SetVariable(id, name, value)
}

// Publish fans a correlated message out to every shard's waiting
// subscriptions; when nobody waits anywhere, the message is buffered
// on the shard its correlation key hashes to. Semantics (counts,
// buffering bound, audit events) match a single engine's Publish.
func (r *Router) Publish(name, key string, vars map[string]any) (int, bool, error) {
	converted, err := engine.ConvertVars(vars)
	if err != nil {
		return 0, false, err
	}
	r.audit(&history.Event{Type: history.MessagePublished, Time: r.clock.Now(),
		Data: map[string]any{"message": name, "key": key}})
	delivered := 0
	for _, s := range r.shards {
		delivered += s.PublishLocal(name, key, converted)
	}
	if delivered == 0 {
		if r.shards[r.shardOf(key)].BufferMessage(name, key, converted) {
			r.audit(&history.Event{Type: history.MessageBuffered, Time: r.clock.Now(),
				Data: map[string]any{"message": name, "key": key}})
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("engine: message buffer full, %q dropped", name)
	}
	return delivered, false, nil
}

// takeBuffered is the cross-shard early-message lookup installed on
// every shard: a token parking at a receive point consults the buffer
// on the shard the correlation key hashes to.
func (r *Router) takeBuffered(name, key string) (map[string]expr.Value, bool) {
	return r.shards[r.shardOf(key)].TakeBuffered(name, key)
}

// TrySnapshot asks every shard to start an asynchronous snapshot
// unless one is already in flight or the shard's journal has not
// advanced past its last snapshot. The time-based scheduler drives it;
// it returns the number of shards that started a snapshot.
func (r *Router) TrySnapshot() int {
	n := 0
	for _, s := range r.shards {
		if s.TrySnapshot() {
			n++
		}
	}
	return n
}

// RecoveryDuration reports how long one shard's boot-time recovery
// took (zero when the shard started fresh).
func (r *Router) RecoveryDuration(i int) time.Duration {
	return r.shards[i].RecoveryDuration()
}

// Snapshot writes a state snapshot on every shard (and compacts each
// shard's journal prefix). It is the admin snapshot trigger behind
// `bpmsctl snapshot`; shards without a snapshot store fail.
func (r *Router) Snapshot() error {
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *engine.Engine) {
			defer wg.Done()
			if err := s.Snapshot(); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}
