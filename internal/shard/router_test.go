package shard

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"bpms/internal/engine"
	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/resource"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
)

// newTestRouter builds an n-shard router on in-memory journals with a
// shared worklist, history store, and virtual-friendly clock.
func newTestRouter(t *testing.T, n int, users ...resource.User) (*Router, *history.Store, *task.Service) {
	t.Helper()
	journals := make([]storage.Journal, n)
	for i := range journals {
		journals[i] = storage.NewMemJournal()
	}
	hist, err := history.NewStore(storage.NewMemJournal())
	if err != nil {
		t.Fatal(err)
	}
	dir := resource.NewDirectory()
	for i := range users {
		dir.AddUser(&users[i])
	}
	tasks := task.NewService(task.Config{Directory: dir})
	r, err := New(Config{
		Journals: journals,
		Tasks:    tasks,
		Timers:   timer.NewHeapService(),
		History:  hist,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	return r, hist, tasks
}

func TestRouterPartitionsInstances(t *testing.T) {
	r, hist, _ := newTestRouter(t, 4)
	if err := r.Deploy(model.Sequence(3)); err != nil {
		t.Fatal(err)
	}
	// Deployment fans out to all shards but is audited exactly once.
	if got := hist.CountByType(history.ProcessDeployed); got != 1 {
		t.Errorf("ProcessDeployed events = %d, want 1", got)
	}
	for _, s := range []int{0, 1, 2, 3} {
		if defs := r.Shard(s).Definitions(); len(defs) != 1 {
			t.Fatalf("shard %d definitions = %v", s, defs)
		}
	}

	const n = 64
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		v, err := r.StartInstance("seq-3", map[string]any{"i": i})
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != engine.StatusCompleted {
			t.Fatalf("status = %s", v.Status)
		}
		ids = append(ids, v.ID)
	}

	// Every instance is on the shard its ID hashes to, and with 64
	// instances over 4 shards each shard holds some.
	total := 0
	for _, st := range r.Stats() {
		if st.Instances == 0 {
			t.Errorf("shard %d is empty — hash partitioning suspiciously skewed", st.Shard)
		}
		total += st.Instances
	}
	if total != n {
		t.Fatalf("instances across shards = %d, want %d", total, n)
	}
	for _, id := range ids {
		if !r.Shard(r.shardOf(id)).Has(id) {
			t.Fatalf("instance %s not on its hash shard %d", id, r.shardOf(id))
		}
		if _, err := r.Instance(id); err != nil {
			t.Fatalf("route to %s: %v", id, err)
		}
	}
	if got := len(r.Instances()); got != n {
		t.Fatalf("Instances() = %d ids, want %d", got, n)
	}
}

func TestRouterInstanceOpsRouteToOwner(t *testing.T) {
	r, _, tasks := newTestRouter(t, 4, resource.User{ID: "alice", Roles: []string{"clerk"}})
	p := model.New("held").
		Start("s").UserTask("work", model.Role("clerk")).End("e").
		Seq("s", "work", "e").MustBuild()
	if err := r.Deploy(p); err != nil {
		t.Fatal(err)
	}
	v, err := r.StartInstance("held", map[string]any{"k": 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetVariable(v.ID, "note", "hello"); err != nil {
		t.Fatal(err)
	}
	vars, err := r.Variables(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := vars["note"].AsString(); s != "hello" {
		t.Fatalf("note = %v", vars["note"])
	}

	// Completing the task through the shared worklist resumes the
	// instance on its owner shard (and only there).
	items := tasks.OfferedItems("alice")
	if len(items) != 1 {
		t.Fatalf("offered = %d", len(items))
	}
	if _, err := tasks.Claim(items[0].ID, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := tasks.Start(items[0].ID, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := tasks.Complete(items[0].ID, "alice", nil); err != nil {
		t.Fatal(err)
	}
	got, err := r.Instance(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != engine.StatusCompleted {
		t.Fatalf("status after complete = %s", got.Status)
	}

	v2, err := r.StartInstance("held", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CancelInstance(v2.ID, "test"); err != nil {
		t.Fatal(err)
	}
	got2, _ := r.Instance(v2.ID)
	if got2.Status != engine.StatusCancelled {
		t.Fatalf("status after cancel = %s", got2.Status)
	}
}

func waiterProcess() *model.Process {
	return model.New("waiter").
		Start("s").MessageCatch("w", "evt", model.CorrelationKey("k")).End("e").
		Seq("s", "w", "e").MustBuild()
}

func TestCrossShardCorrelationToWaiting(t *testing.T) {
	r, _, _ := newTestRouter(t, 4)
	if err := r.Deploy(waiterProcess()); err != nil {
		t.Fatal(err)
	}
	const n = 16
	ids := make(map[string]string, n) // key -> instance id
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("case-%d", i)
		v, err := r.StartInstance("waiter", map[string]any{"k": key})
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != engine.StatusActive {
			t.Fatalf("waiter %d not parked: %s", i, v.Status)
		}
		ids[key] = v.ID
	}
	// Publish to each key: the subscriber's shard is determined by its
	// instance ID, not the key, so delivery must cross shards.
	crossed := false
	for key, id := range ids {
		if r.shardOf(key) != r.shardOf(id) {
			crossed = true
		}
		delivered, buffered, err := r.Publish("evt", key, map[string]any{"payload": key})
		if err != nil || buffered || delivered != 1 {
			t.Fatalf("publish %s: delivered=%d buffered=%v err=%v", key, delivered, buffered, err)
		}
		got, err := r.Instance(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != engine.StatusCompleted {
			t.Fatalf("instance %s after publish = %s", id, got.Status)
		}
		if s, _ := got.Vars["payload"].AsString(); s != key {
			t.Fatalf("payload = %v", got.Vars["payload"])
		}
	}
	if !crossed {
		t.Fatal("test never exercised a cross-shard delivery; adjust keys")
	}
}

func TestCrossShardBufferedMessage(t *testing.T) {
	r, _, _ := newTestRouter(t, 4)
	if err := r.Deploy(waiterProcess()); err != nil {
		t.Fatal(err)
	}
	// The first started instance will be waiter-1; pick a key whose
	// hash shard differs from that instance's shard so the early
	// message is buffered on a foreign shard.
	futureID := "waiter-1"
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("early-%d", i)
		if r.shardOf(k) != r.shardOf(futureID) {
			key = k
			break
		}
	}
	delivered, buffered, err := r.Publish("evt", key, map[string]any{"payload": "early"})
	if err != nil || !buffered || delivered != 0 {
		t.Fatalf("early publish: delivered=%d buffered=%v err=%v", delivered, buffered, err)
	}
	if _, ok := r.Shard(r.shardOf(key)).TakeBuffered("evt", key); !ok {
		t.Fatal("message not buffered on the key's hash shard")
	}
	// Re-buffer it (TakeBuffered consumed it above).
	vars, _ := engine.ConvertVars(map[string]any{"payload": "early"})
	r.Shard(r.shardOf(key)).BufferMessage("evt", key, vars)

	v, err := r.StartInstance("waiter", map[string]any{"k": key})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != futureID {
		t.Fatalf("instance id = %s, want %s", v.ID, futureID)
	}
	if v.Status != engine.StatusCompleted {
		t.Fatalf("parking token did not consume the cross-shard buffered message: %s", v.Status)
	}
	if s, _ := v.Vars["payload"].AsString(); s != "early" {
		t.Fatalf("payload = %v", v.Vars["payload"])
	}
}

func TestCrossShardThrownMessage(t *testing.T) {
	r, _, _ := newTestRouter(t, 4)
	if err := r.Deploy(waiterProcess()); err != nil {
		t.Fatal(err)
	}
	thrower := model.New("thrower").
		Start("s").MessageThrow("t", "evt", model.CorrelationKey("target")).End("e").
		Seq("s", "t", "e").MustBuild()
	if err := r.Deploy(thrower); err != nil {
		t.Fatal(err)
	}
	// Park waiters on every shard, then fire throwers at each: the
	// thrown message leaves via the throwing shard's Publisher hook and
	// must reach the waiter wherever it lives.
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("pair-%d", i)
		w, err := r.StartInstance("waiter", map[string]any{"k": key})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.StartInstance("thrower", map[string]any{"target": key}); err != nil {
			t.Fatal(err)
		}
		got, err := r.Instance(w.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != engine.StatusCompleted {
			t.Fatalf("waiter %s after throw = %s", w.ID, got.Status)
		}
	}
}

func TestRouterParallelRecovery(t *testing.T) {
	dir := t.TempDir()
	users := []resource.User{{ID: "alice", Roles: []string{"clerk"}}}
	open := func() (*Router, *task.Service, []storage.Journal) {
		journals := make([]storage.Journal, 4)
		snaps := make([]*storage.SnapshotStore, 4)
		for i := range journals {
			j, err := storage.OpenFileJournal(filepath.Join(dir, fmt.Sprintf("shard-%04d", i), "state"), storage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			journals[i] = j
			s, err := storage.OpenSnapshotStore(filepath.Join(dir, fmt.Sprintf("shard-%04d", i), "snapshots"), 2)
			if err != nil {
				t.Fatal(err)
			}
			snaps[i] = s
		}
		d := resource.NewDirectory()
		for i := range users {
			d.AddUser(&users[i])
		}
		tasks := task.NewService(task.Config{Directory: d})
		r, err := New(Config{
			Journals:  journals,
			Snapshots: snaps,
			Tasks:     tasks,
			Timers:    timer.NewHeapService(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return r, tasks, journals
	}

	r, _, journals := open()
	p := model.New("held").
		Start("s").UserTask("work", model.Role("clerk")).End("e").
		Seq("s", "work", "e").MustBuild()
	if err := r.Deploy(p); err != nil {
		t.Fatal(err)
	}
	const n = 12
	ids := make([]string, 0, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := r.StartInstance("held", map[string]any{"i": i})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			ids = append(ids, v.ID)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	// Admin snapshot across all shards, then "crash" (close journals).
	if err := r.Snapshot(); err != nil {
		t.Fatalf("snapshot fan-out: %v", err)
	}
	for _, j := range journals {
		j.Close()
	}

	r2, tasks2, journals2 := open()
	defer func() {
		for _, j := range journals2 {
			j.Close()
		}
	}()
	if got := len(r2.Instances()); got != n {
		t.Fatalf("recovered %d instances, want %d", got, n)
	}
	for _, id := range ids {
		v, err := r2.Instance(id)
		if err != nil {
			t.Fatalf("instance %s lost: %v", id, err)
		}
		if v.Status != engine.StatusActive {
			t.Fatalf("instance %s recovered as %s", id, v.Status)
		}
	}
	// Recovery re-issued the parked work items on the shared worklist.
	if got := len(tasks2.OfferedItems("alice")); got != n {
		t.Fatalf("re-issued work items = %d, want %d", got, n)
	}
	// The ID sequence continues past recovered instances: a new start
	// must not collide.
	v, err := r2.StartInstance("held", nil)
	if err != nil {
		t.Fatalf("start after recovery: %v", err)
	}
	for _, id := range ids {
		if id == v.ID {
			t.Fatalf("post-recovery instance reused id %s", id)
		}
	}
}
