package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Std() != 0 {
		t.Error("zero Summary should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %g", s.Mean())
	}
	// Sample std of this classic dataset is ~2.138.
	if math.Abs(s.Std()-2.138) > 0.01 {
		t.Errorf("Std = %g", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
	if math.Abs(s.Sum()-40) > 1e-9 {
		t.Errorf("Sum = %g", s.Sum())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String = %q", s.String())
	}
	s.AddDuration(time.Second)
	if s.Count() != 9 {
		t.Error("AddDuration did not record")
	}
}

// Property: Welford mean/variance match the two-pass formulas.
func TestQuickSummaryMatchesTwoPass(t *testing.T) {
	f := func(xs []float64) bool {
		// Filter NaN/Inf which make the comparison meaningless.
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var s Summary
		var sum float64
		for _, x := range clean {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var m2 float64
		for _, x := range clean {
			m2 += (x - mean) * (x - mean)
		}
		variance := m2 / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(s.Mean()-mean) < 1e-6*scale &&
			math.Abs(s.Var()-variance) < 1e-4*math.Max(1, variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReservoirExactWhenSmall(t *testing.T) {
	r := NewReservoir(1000, 1)
	for i := 100; i >= 1; i-- {
		r.Add(float64(i))
	}
	if r.Count() != 100 {
		t.Errorf("Count = %d", r.Count())
	}
	if got := r.Percentile(0.5); got != 50 {
		t.Errorf("p50 = %g, want 50", got)
	}
	if got := r.Percentile(0.99); got != 99 {
		t.Errorf("p99 = %g, want 99", got)
	}
	if got := r.Percentile(0); got != 1 {
		t.Errorf("p0 = %g, want 1", got)
	}
	if got := r.Percentile(1); got != 100 {
		t.Errorf("p100 = %g, want 100", got)
	}
}

func TestReservoirSamplingApproximation(t *testing.T) {
	// 100k uniform values through a 5k reservoir: median ~0.5.
	r := NewReservoir(5000, 42)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		r.Add(rng.Float64())
	}
	if med := r.Percentile(0.5); math.Abs(med-0.5) > 0.05 {
		t.Errorf("sampled median = %g, want ~0.5", med)
	}
	if r.Count() != 100000 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(10, 1)
	if r.Percentile(0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5)  // under
	h.Add(100) // over
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
	out := h.Render(20)
	if !strings.Contains(out, "(under)") || !strings.Contains(out, "(over)") {
		t.Errorf("Render missing overflow rows:\n%s", out)
	}
	if strings.Count(out, "\n") < 10 {
		t.Errorf("Render too few rows:\n%s", out)
	}
}

// Property: percentiles are monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		r := NewReservoir(0, 3)
		ok := false
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				r.Add(x)
				ok = true
			}
		}
		if !ok {
			return true
		}
		p1 := float64(a%101) / 100
		p2 := float64(b%101) / 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return r.Percentile(p1) <= r.Percentile(p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReservoirFromInjectedSource(t *testing.T) {
	r1 := NewReservoirFrom(10, rand.New(rand.NewSource(9)))
	r2 := NewReservoirFrom(10, rand.New(rand.NewSource(9)))
	for i := 0; i < 1000; i++ {
		r1.Add(float64(i))
		r2.Add(float64(i))
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if r1.Percentile(p) != r2.Percentile(p) {
			t.Fatalf("p%.0f diverged: %v vs %v", p*100, r1.Percentile(p), r2.Percentile(p))
		}
	}
	if NewReservoirFrom(0, rand.New(rand.NewSource(1))).cap != 100000 {
		t.Error("default capacity not applied")
	}
}
