// Package metrics provides the small statistics toolkit used by the
// simulator and the benchmark harness: online summaries (Welford
// variance), reservoir-sampled percentile estimation, and fixed-bucket
// histograms for report rendering. Everything is deterministic given a
// seed and safe for single-writer use; wrap with a mutex for
// concurrent writers.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Summary accumulates count, mean, variance (Welford's online
// algorithm), min, and max of a stream of float64 observations.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDuration records a duration in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the sample variance (0 for fewer than 2 observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Sum returns n*mean.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// String renders "n=… mean=… std=… min=… max=…".
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Reservoir estimates percentiles with bounded memory via Vitter's
// algorithm R: the first cap observations are kept exactly; later ones
// replace a uniformly random slot. With the default cap the estimate
// is exact for benchmark-scale streams.
type Reservoir struct {
	cap    int
	seen   int64
	values []float64
	rng    *rand.Rand
	sorted bool
}

// NewReservoir creates a reservoir with the given capacity (default
// 100000 when cap <= 0) and a deterministic seed.
func NewReservoir(cap int, seed int64) *Reservoir {
	return NewReservoirFrom(cap, rand.New(rand.NewSource(seed)))
}

// NewReservoirFrom creates a reservoir drawing replacement slots from
// an injected source, for callers that manage their own deterministic
// streams (each concurrent consumer — one simulation per shard, say —
// must supply its own source; the reservoir itself is single-writer).
func NewReservoirFrom(cap int, r *rand.Rand) *Reservoir {
	if cap <= 0 {
		cap = 100000
	}
	return &Reservoir{cap: cap, rng: r}
}

// Add records one observation.
func (r *Reservoir) Add(x float64) {
	r.seen++
	r.sorted = false
	if len(r.values) < r.cap {
		r.values = append(r.values, x)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.values[j] = x
	}
}

// AddDuration records a duration in seconds.
func (r *Reservoir) AddDuration(d time.Duration) { r.Add(d.Seconds()) }

// Count returns the number of observations seen (not retained).
func (r *Reservoir) Count() int64 { return r.seen }

// Percentile returns the p-quantile (p in [0,1]) by nearest-rank over
// the retained sample; 0 when empty.
func (r *Reservoir) Percentile(p float64) float64 {
	if len(r.values) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Float64s(r.values)
		r.sorted = true
	}
	if p <= 0 {
		return r.values[0]
	}
	if p >= 1 {
		return r.values[len(r.values)-1]
	}
	idx := int(math.Ceil(p*float64(len(r.values)))) - 1
	if idx < 0 {
		idx = 0
	}
	return r.values[idx]
}

// Histogram is a fixed-bucket linear histogram over [lo, hi); values
// outside the range land in the clamped edge buckets.
type Histogram struct {
	lo, hi  float64
	buckets []int64
	under   int64
	over    int64
	total   int64
}

// NewHistogram creates a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 20
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Render draws an ASCII histogram with the given bar width.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	var peak int64 = 1
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	step := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		bar := strings.Repeat("#", int(float64(c)/float64(peak)*float64(width)))
		fmt.Fprintf(&sb, "%12.4g..%-12.4g %8d %s\n", h.lo+float64(i)*step, h.lo+float64(i+1)*step, c, bar)
	}
	if h.under > 0 {
		fmt.Fprintf(&sb, "%25s %8d\n", "(under)", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&sb, "%25s %8d\n", "(over)", h.over)
	}
	return sb.String()
}
