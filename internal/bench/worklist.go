package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bpms/internal/resource"
	"bpms/internal/task"
)

// T13Worklist measures concurrent mixed read/write worklist throughput
// against the stripe count — the experiment behind the striped task
// service. Every configuration runs the same workload: M writer
// goroutines drive full work-item lifecycles (create with
// auto-allocation, start, complete) while K poller goroutines hammer
// the read side (per-user Worklist plus the deadline query Overdue)
// against a standing pool of open overdue items. With one stripe every
// operation serializes on a single mutex — the seed behaviour — while
// N stripes let claims and completions on different items proceed in
// parallel and queries read per-stripe secondary indexes.
//
// Like T11/T12, the headroom is bounded by GOMAXPROCS (reported in the
// notes): on a single-core box striping only buys shorter critical
// sections, while on a multi-core CI runner the stripes run truly
// concurrently.
func T13Worklist(scale Scale) *Table {
	stripeCounts := []int{1, 2, 4}
	if scale == Full {
		stripeCounts = []int{1, 2, 4, 8}
	}
	const (
		writers = 8
		pollers = 4
		users   = 16
		overdue = 200
	)
	per := scale.pick(300, 3000)
	t := &Table{
		ID:     "T13",
		Title:  "striped worklist: mixed lifecycle writers vs concurrent Worklist/Overdue readers",
		Header: []string{"stripes", "writers", "pollers", "lifecycles", "wall", "lifecycles/s", "polls", "vs 1 stripe"},
	}
	t.Notes = append(t.Notes, fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d (stripes parallelize across cores)",
		runtime.GOMAXPROCS(0), runtime.NumCPU()))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d users, one lifecycle = auto-allocated create + start + complete; %d standing overdue items per run", users, overdue))

	var base float64
	for _, stripes := range stripeCounts {
		dir := resource.NewDirectory()
		for i := 0; i < users; i++ {
			dir.AddUser(&resource.User{ID: fmt.Sprintf("u%02d", i), Roles: []string{"crew"}})
		}
		svc := task.NewService(task.Config{
			Directory:    dir,
			AutoAllocate: true,
			Stripes:      stripes,
		})
		// A standing pool of open overdue items keeps the deadline
		// query non-trivial: every Overdue call walks the due-time
		// index, never the full item map.
		for i := 0; i < overdue; i++ {
			if _, err := svc.Create(task.Spec{
				InstanceID: "seed", ElementID: "late",
				Assignee: fmt.Sprintf("late%02d", i%8), Due: time.Nanosecond,
			}); err != nil {
				panic(err)
			}
		}

		total := writers * per
		var firstErr atomic.Value
		var done atomic.Bool
		var polls atomic.Int64
		var wg, rg sync.WaitGroup
		for p := 0; p < pollers; p++ {
			rg.Add(1)
			go func(p int) {
				defer rg.Done()
				user := fmt.Sprintf("u%02d", p%users)
				for !done.Load() {
					svc.Worklist(user)
					svc.Overdue(time.Now())
					polls.Add(1)
					// Paced like a real worklist client; an unthrottled
					// poll loop would measure the scheduler, not the
					// service.
					time.Sleep(200 * time.Microsecond)
				}
			}(p)
		}
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					it, err := svc.Create(task.Spec{InstanceID: "i", ElementID: "e", Role: "crew"})
					if err == nil && it.Assignee != "" {
						if _, err2 := svc.Start(it.ID, it.Assignee); err2 == nil {
							_, err = svc.Complete(it.ID, it.Assignee, nil)
						} else {
							err = err2
						}
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		d := time.Since(start)
		done.Store(true)
		rg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%d stripes: %v", stripes, err))
			continue
		}
		r := float64(total) / d.Seconds()
		speedup := "1.00x"
		if stripes == 1 {
			base = r
		} else if base > 0 {
			speedup = fmt.Sprintf("%.2fx", r/base)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(stripes), fmt.Sprint(writers), fmt.Sprint(pollers), fmt.Sprint(total),
			secs(d), rate(total, d), fmt.Sprint(polls.Load()), speedup,
		})
		if stripes == 4 && base > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"4 stripes vs 1: %.2fx mixed read/write lifecycle throughput at %d writers + %d pollers",
				r/base, writers, pollers))
		}
	}
	return t
}
