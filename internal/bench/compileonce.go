package bench

import (
	"fmt"
	"time"

	"bpms/internal/expr"
	"bpms/internal/model"
)

// ConditionHeavy chains n exclusive choices whose guarded branches are
// script tasks with output mappings, so per-instance cost is dominated
// by expression evaluation. It is the workload behind experiment T9
// and the root-level T9 benchmarks.
func ConditionHeavy(n int) *model.Process {
	b := model.New(fmt.Sprintf("cond-%d", n))
	b.Start("start")
	prev := "start"
	for i := 1; i <= n; i++ {
		x := fmt.Sprintf("x%d", i)
		hot := fmt.Sprintf("hot%d", i)
		cold := fmt.Sprintf("cold%d", i)
		dflt := fmt.Sprintf("d%d", i)
		join := fmt.Sprintf("j%d", i)
		b.XOR(x, model.Default(dflt))
		b.ScriptTask(hot,
			model.Output("acc", fmt.Sprintf("coalesce(acc, 0) + amount * %d", i)),
			model.Output("tier", `acc > 1000 ? "gold" : "base"`))
		b.ScriptTask(cold, model.Output("acc", "coalesce(acc, 0) + 1"))
		b.XOR(join)
		b.Flow(prev, x)
		b.FlowIf(x, hot, fmt.Sprintf(`amount %% %d == 0 || tier == "gold"`, i+1))
		b.FlowID(dflt, x, cold, "")
		b.Flow(hot, join)
		b.Flow(cold, join)
		prev = join
	}
	b.End("end")
	b.Flow(prev, "end")
	return b.MustBuild()
}

// T9CompileOnce quantifies the deploy-time expression compilation
// pipeline: evaluation through a precompiled program and through the
// shared program cache against the seed's compile-per-evaluation
// pattern, plus the condition-heavy engine workload that stresses
// flow conditions and output mappings end to end.
func T9CompileOnce(scale Scale) *Table {
	t := &Table{
		ID:     "T9",
		Title:  "compile-once vs compile-per-eval expression pipelines",
		Header: []string{"pipeline", "ops", "wall", "per-op"},
	}
	n := scale.pick(200000, 2000000)
	src := `amount > 1000 && region == "EU"`
	env := expr.MapEnv{"amount": expr.Int(1500), "region": expr.String("EU")}

	perOp := func(name string, ops int, run func() error) {
		start := time.Now()
		if err := run(); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %v", name, err))
			return
		}
		d := time.Since(start)
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(ops),
			secs(d), fmt.Sprintf("%dns", d.Nanoseconds()/int64(ops))})
	}

	perOp("compile per eval (seed behavior)", n, func() error {
		for i := 0; i < n; i++ {
			p, err := expr.Compile(src)
			if err != nil {
				return err
			}
			if _, err := p.Eval(env); err != nil {
				return err
			}
		}
		return nil
	})
	perOp("precompiled program", n, func() error {
		p := expr.MustCompile(src)
		for i := 0; i < n; i++ {
			if _, err := p.Eval(env); err != nil {
				return err
			}
		}
		return nil
	})
	perOp("shared cache (expr.Cached)", n, func() error {
		for i := 0; i < n; i++ {
			p, err := expr.Cached(src)
			if err != nil {
				return err
			}
			if _, err := p.Eval(env); err != nil {
				return err
			}
		}
		return nil
	})

	cases := scale.pick(500, 10000)
	proc := ConditionHeavy(20)
	// amount 600 keeps most choices on the expression-heavy branch.
	perOp("engine: condition-heavy (20 choices)", cases, func() error {
		_, err := RunCases(proc, map[string]any{"amount": 600}, cases)
		return err
	})
	return t
}
