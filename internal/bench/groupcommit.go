package bench

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bpms/internal/storage"
)

// T10GroupCommit measures durable append throughput per sync policy
// under rising writer concurrency — the experiment behind the
// SyncBatch group-commit pipeline. "always" fsyncs per append (one
// writer's fsync serializes everyone), "every256" defers durability to
// every 256th append (appends are fast but a crash loses the tail),
// and "batch" group-commits: every append gets a durability ack, yet
// concurrent writers share one fsync per batch.
func T10GroupCommit(scale Scale) *Table {
	writerCounts := []int{1, 4, 16, 64}
	if scale == Full {
		writerCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	per := scale.pick(25, 100)
	payload := make([]byte, 256)
	t := &Table{
		ID:     "T10",
		Title:  "group commit: append throughput vs concurrent writers (256B records)",
		Header: []string{"policy", "writers", "appends", "durable ack", "wall", "appends/s"},
	}
	rates := map[string]map[int]float64{}
	for _, pol := range []struct {
		name    string
		opts    storage.Options
		durable bool
	}{
		{"always", storage.Options{Policy: storage.SyncAlways}, true},
		{"every256", storage.Options{Policy: storage.SyncEvery, SyncInterval: 256}, false},
		{"batch", storage.Options{Policy: storage.SyncBatch}, true},
	} {
		rates[pol.name] = map[int]float64{}
		for _, writers := range writerCounts {
			dir, err := os.MkdirTemp("", "bench-t10")
			if err != nil {
				panic(err)
			}
			j, err := storage.OpenFileJournal(dir, pol.opts)
			if err != nil {
				panic(err)
			}
			total := writers * per
			var firstErr atomic.Value
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						var err error
						if pol.durable {
							_, err = j.AppendDurable(payload)
						} else {
							_, err = j.Append(payload)
						}
						if err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			d := time.Since(start)
			j.Close()
			os.RemoveAll(dir)
			if err, _ := firstErr.Load().(error); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s/%d writers: %v", pol.name, writers, err))
				continue
			}
			rates[pol.name][writers] = float64(total) / d.Seconds()
			t.Rows = append(t.Rows, []string{
				pol.name, fmt.Sprint(writers), fmt.Sprint(total),
				fmt.Sprintf("%v", pol.durable), secs(d), rate(total, d),
			})
		}
	}
	if a, b := rates["always"][16], rates["batch"][16]; a > 0 && b > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("batch vs always at 16 writers: %.1fx durable append throughput", b/a))
	}
	return t
}
