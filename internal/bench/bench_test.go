package bench

import (
	"strings"
	"testing"
	"time"

	"bpms/internal/model"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "TX",
		Title:  "demo",
		Header: []string{"col-a", "b"},
		Rows:   [][]string{{"1", "two"}, {"wide-value", "3"}},
		Notes:  []string{"a note"},
	}
	out := tbl.Render()
	if !strings.Contains(out, "TX — demo") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "wide-value") || !strings.Contains(out, "note: a note") {
		t.Errorf("missing content:\n%s", out)
	}
	// Columns align: header and rows share the separator width.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"T1", "t3", "F2", "f5", "T8", "t9", "T10", "t10", "T11", "t11", "T12", "t12", "T13", "t13", "T15", "t15", "T16", "t16"} {
		if _, ok := ByID(id, Quick); !ok {
			t.Errorf("ByID(%q) not found", id)
		}
	}
	if _, ok := ByID("T99", Quick); ok {
		t.Error("ByID(T99) should not resolve")
	}
	if got := len(All(Quick)); got != 20 {
		t.Errorf("All() = %d experiments, want 20", got)
	}
}

func TestRunCases(t *testing.T) {
	d, err := RunCases(model.Sequence(3), nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > time.Minute {
		t.Errorf("duration = %v", d)
	}
	// A faulting workload reports the error.
	p := model.New("bad").
		Start("s").ServiceTask("x", "missing-handler").End("e").
		Seq("s", "x", "e").MustBuild()
	if _, err := RunCases(p, nil, 1); err == nil {
		t.Error("faulted cases should error")
	}
}

// Smoke-run the cheap experiments at Quick scale so the harness logic
// itself stays covered (the expensive ones run via cmd/bpmsbench).
func TestQuickExperimentsProduceRows(t *testing.T) {
	for _, tc := range []struct {
		id   string
		fn   func() *Table
		rows int
	}{
		{"T2", func() *Table { return T2TaskLatency(Quick) }, 4},
		{"T5", func() *Table { return T5Expressions(Quick) }, 6},
		{"F4", func() *Table { return F4Timers(Quick) }, 6},
		{"T6", func() *Table { return T6Correlation(Quick) }, 3},
	} {
		tbl := tc.fn()
		if tbl.ID != tc.id {
			t.Errorf("%s: ID = %q", tc.id, tbl.ID)
		}
		if len(tbl.Rows) != tc.rows {
			t.Errorf("%s: rows = %d, want %d\n%s", tc.id, len(tbl.Rows), tc.rows, tbl.Render())
		}
		if len(tbl.Notes) != 0 {
			t.Errorf("%s: unexpected notes %v", tc.id, tbl.Notes)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Errorf("%s: ragged row %v", tc.id, row)
			}
		}
	}
}

func TestDiscoveryLogShape(t *testing.T) {
	log := DiscoveryLog(20, 1)
	if len(log.Traces) != 20 {
		t.Fatalf("traces = %d", len(log.Traces))
	}
	// Ground truth has 6 activities; every trace covers A..F minus the
	// untaken XOR branch.
	for _, tr := range log.Traces {
		if len(tr.Entries) != 5 {
			t.Errorf("trace %s has %d events, want 5", tr.CaseID, len(tr.Entries))
		}
		if tr.Entries[0].Activity != "A" || tr.Entries[len(tr.Entries)-1].Activity != "F" {
			t.Errorf("trace %s order: %v", tr.CaseID, tr.Entries)
		}
	}
}
