package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"bpms/internal/engine"
	"bpms/internal/expr"
	"bpms/internal/model"
	"bpms/internal/storage"
)

// T16StorageLifecycle measures the storage-lifecycle refactor: snapshot
// write memory (legacy full-image blob vs streaming chunked records)
// and cold-start recovery time (seed serial path vs streaming snapshot
// + parallel segment replay). One journal fixture of N instances is
// built once and copied per configuration, so every row replays the
// same bytes. Small WAL segments give the parallel replayer real
// fan-out (one goroutine per sealed segment, bounded by the worker
// pool) and let snapshot truncation actually discard files.
func T16StorageLifecycle(scale Scale) *Table {
	n := scale.pick(5000, 100000)
	workers := runtime.GOMAXPROCS(0)
	segSize := int64(scale.pick(256<<10, 1<<20))
	t := &Table{
		ID:     "T16",
		Title:  "storage lifecycle: snapshot memory and cold-start recovery (seed blob+serial vs streaming+parallel)",
		Header: []string{"config", "instances", "wall", "alloc", "vs seed"},
	}
	t.Notes = append(t.Notes, fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d (decode workers and segment readers parallelize across cores)",
		runtime.GOMAXPROCS(0), runtime.NumCPU()))

	base, err := os.MkdirTemp("", "bench-t16")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(base)
	fixture := filepath.Join(base, "fixture")
	buildT16Fixture(fixture, n, segSize)

	jopts := storage.Options{SegmentSize: segSize}
	openEngine := func(dir string, cfg engine.Config) (*engine.Engine, storage.Journal) {
		j, err := storage.OpenFileJournal(filepath.Join(dir, "state"), jopts)
		if err != nil {
			panic(err)
		}
		cfg.Journal = j
		e, err := engine.New(cfg)
		if err != nil {
			panic(err)
		}
		return e, j
	}
	row := func(label string, d time.Duration, alloc uint64, seed time.Duration) {
		speedup := "1.00x"
		if seed > 0 && d > 0 {
			speedup = fmt.Sprintf("%.2fx", seed.Seconds()/d.Seconds())
		}
		t.Rows = append(t.Rows, []string{
			label, fmt.Sprint(n), secs(d), fmt.Sprintf("%.1fMB", float64(alloc)/(1<<20)), speedup,
		})
	}

	// Journal-only replay: the full fixture journal, serial vs parallel.
	var serialReplay time.Duration
	for _, cfg := range []struct {
		label   string
		workers int
	}{
		{"journal replay, serial (seed)", 1},
		{fmt.Sprintf("journal replay, %d workers", workers), workers},
	} {
		dir := filepath.Join(base, fmt.Sprintf("replay-%d", cfg.workers))
		copyTree(fixture, dir)
		var (
			e *engine.Engine
			j storage.Journal
		)
		d, alloc := measureAlloc(func() {
			e, j = openEngine(dir, engine.Config{RecoveryWorkers: cfg.workers})
		})
		if got := len(e.Instances()); got != n {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: recovered %d of %d", cfg.label, got, n))
		}
		j.Close()
		if cfg.workers == 1 {
			serialReplay = d
			row(cfg.label, d, alloc, 0)
		} else {
			row(cfg.label, d, alloc, serialReplay)
		}
	}

	// Snapshot write (blob vs streaming), then cold start from the
	// written snapshot (the journal prefix it covers is truncated, so
	// recovery cost is dominated by snapshot decode).
	var (
		blobWrite   time.Duration
		blobAlloc   uint64
		blobCold    time.Duration
		streamWrite time.Duration
		streamCold  time.Duration
	)
	for _, cfg := range []struct {
		label string
		blob  bool
	}{
		{"blob", true},
		{"streaming", false},
	} {
		dir := filepath.Join(base, "snap-"+cfg.label)
		copyTree(fixture, dir)
		snaps, err := storage.OpenSnapshotStore(filepath.Join(dir, "snapshots"), 2)
		if err != nil {
			panic(err)
		}
		e, j := openEngine(dir, engine.Config{Snapshots: snaps, BlobSnapshots: cfg.blob})
		d, alloc := measureAlloc(func() {
			if err := e.Snapshot(); err != nil {
				panic(err)
			}
		})
		j.Close()
		if cfg.blob {
			blobWrite, blobAlloc = d, alloc
			row("snapshot write, blob (seed)", d, alloc, 0)
		} else {
			streamWrite = d
			row("snapshot write, streaming", d, alloc, blobWrite)
			if alloc > 0 {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"streaming snapshot write allocates %.1fx less than the blob image (%.1fMB vs %.1fMB)",
					float64(blobAlloc)/float64(alloc), float64(blobAlloc)/(1<<20), float64(alloc)/(1<<20)))
			}
		}

		coldCfg := engine.Config{BlobSnapshots: cfg.blob, RecoveryWorkers: 1}
		if !cfg.blob {
			coldCfg.RecoveryWorkers = workers
		}
		snaps2, err := storage.OpenSnapshotStore(filepath.Join(dir, "snapshots"), 2)
		if err != nil {
			panic(err)
		}
		coldCfg.Snapshots = snaps2
		var (
			e2 *engine.Engine
			j2 storage.Journal
		)
		d2, alloc2 := measureAlloc(func() {
			e2, j2 = openEngine(dir, coldCfg)
		})
		if got := len(e2.Instances()); got != n {
			t.Notes = append(t.Notes, fmt.Sprintf("cold start (%s): recovered %d of %d", cfg.label, got, n))
		}
		j2.Close()
		if cfg.blob {
			blobCold = d2
			row("cold start, blob snapshot, serial (seed)", d2, alloc2, 0)
		} else {
			streamCold = d2
			row(fmt.Sprintf("cold start, streaming snapshot, %d workers", workers), d2, alloc2, blobCold)
		}
	}
	if blobCold > 0 && streamCold > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"cold start at %d instances: streaming+parallel %.2fx faster than seed blob+serial (%.3fs vs %.3fs); snapshot write %.3fs vs %.3fs",
			n, blobCold.Seconds()/streamCold.Seconds(), streamCold.Seconds(), blobCold.Seconds(),
			streamWrite.Seconds(), blobWrite.Seconds()))
	}
	return t
}

// buildT16Fixture populates dir/state with n instances of a short
// service-task process (each start appends a deploy-covered record
// chain and ends completed, so recovery cost is pure decode).
func buildT16Fixture(dir string, n int, segSize int64) {
	j, err := storage.OpenFileJournal(filepath.Join(dir, "state"), storage.Options{SegmentSize: segSize})
	if err != nil {
		panic(err)
	}
	e, err := engine.New(engine.Config{Journal: j})
	if err != nil {
		panic(err)
	}
	e.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	proc := model.Sequence(3)
	if err := e.Deploy(proc); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		vars := map[string]any{
			"amount":   i,
			"customer": fmt.Sprintf("customer-%08d", i),
			"note":     "storage lifecycle fixture instance with a moderately sized payload",
		}
		if _, err := e.StartInstance(proc.ID, vars); err != nil {
			panic(err)
		}
	}
	if err := j.Close(); err != nil {
		panic(err)
	}
}

// measureAlloc runs f and reports its wall time and total bytes
// allocated (ΔTotalAlloc across the call, after a settling GC).
func measureAlloc(f func()) (time.Duration, uint64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	f()
	d := time.Since(start)
	runtime.ReadMemStats(&m1)
	return d, m1.TotalAlloc - m0.TotalAlloc
}

// copyTree copies a fixture directory recursively.
func copyTree(src, dst string) {
	err := filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(src, p)
		if rerr != nil {
			return rerr
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		panic(err)
	}
}
