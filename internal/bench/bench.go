// Package bench implements the experiment harness of the repository:
// one function per table/figure of the evaluation suite described in
// DESIGN.md (T1–T12, F1–F5). Each experiment builds its own workload,
// runs the system under test, and returns a printable table; the
// cmd/bpmsbench binary renders them and EXPERIMENTS.md records the
// measurements. The root-level bench_test.go exposes the same
// operations as testing.B benchmarks.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render draws the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Scale controls experiment sizes: Quick for CI, Full for the numbers
// recorded in EXPERIMENTS.md.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

func (s Scale) pick(quick, full int) int {
	if s == Quick {
		return quick
	}
	return full
}

// All returns every experiment keyed by ID, in report order.
func All(scale Scale) []func() *Table {
	return []func() *Table{
		func() *Table { return T1Throughput(scale) },
		func() *Table { return T2TaskLatency(scale) },
		func() *Table { return F1Scaling(scale) },
		func() *Table { return T3Verification(scale) },
		func() *Table { return T4Storage(scale) },
		func() *Table { return F2Policies(scale) },
		func() *Table { return T5Expressions(scale) },
		func() *Table { return F3Discovery(scale) },
		func() *Table { return T6Correlation(scale) },
		func() *Table { return F4Timers(scale) },
		func() *Table { return T7Rules(scale) },
		func() *Table { return F5Recovery(scale) },
		func() *Table { return T8EndToEnd(scale) },
		func() *Table { return T9CompileOnce(scale) },
		func() *Table { return T10GroupCommit(scale) },
		func() *Table { return T11ShardScaling(scale) },
		func() *Table { return T12AuditPipeline(scale) },
		func() *Table { return T13Worklist(scale) },
		func() *Table { return T15RuleIndex(scale) },
		func() *Table { return T16StorageLifecycle(scale) },
	}
}

// ByID returns the experiment function for an ID like "T1" or "F3".
func ByID(id string, scale Scale) (func() *Table, bool) {
	m := map[string]func() *Table{
		"T1":  func() *Table { return T1Throughput(scale) },
		"T2":  func() *Table { return T2TaskLatency(scale) },
		"F1":  func() *Table { return F1Scaling(scale) },
		"T3":  func() *Table { return T3Verification(scale) },
		"T4":  func() *Table { return T4Storage(scale) },
		"F2":  func() *Table { return F2Policies(scale) },
		"T5":  func() *Table { return T5Expressions(scale) },
		"F3":  func() *Table { return F3Discovery(scale) },
		"T6":  func() *Table { return T6Correlation(scale) },
		"F4":  func() *Table { return F4Timers(scale) },
		"T7":  func() *Table { return T7Rules(scale) },
		"F5":  func() *Table { return F5Recovery(scale) },
		"T8":  func() *Table { return T8EndToEnd(scale) },
		"T9":  func() *Table { return T9CompileOnce(scale) },
		"T10": func() *Table { return T10GroupCommit(scale) },
		"T11": func() *Table { return T11ShardScaling(scale) },
		"T12": func() *Table { return T12AuditPipeline(scale) },
		"T13": func() *Table { return T13Worklist(scale) },
		"T15": func() *Table { return T15RuleIndex(scale) },
		"T16": func() *Table { return T16StorageLifecycle(scale) },
	}
	f, ok := m[strings.ToUpper(id)]
	return f, ok
}

func secs(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

func rate(n int, d time.Duration) string {
	if d <= 0 {
		return "∞"
	}
	return fmt.Sprintf("%.0f/s", float64(n)/d.Seconds())
}

func micros(d time.Duration, n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fµs", float64(d.Microseconds())/float64(n))
}
