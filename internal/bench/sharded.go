package bench

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bpms/internal/core"
	"bpms/internal/engine"
	"bpms/internal/expr"
	"bpms/internal/model"
	"bpms/internal/storage"
)

// T11ShardScaling measures durable StartInstance throughput against
// the shard count — the experiment behind the sharded engine runtime.
// Every configuration runs the same workload (concurrent writers
// starting a short service-task process with SyncBatch + durable
// acknowledgements on a real data dir); with one shard all writers
// serialize on a single engine lock and group-commit batcher, while N
// shards commit through N independent WAL pipelines, so throughput
// should scale near-linearly until the disk or the cores saturate.
//
// The workload is CPU-parallel by construction, so the headroom is
// bounded by GOMAXPROCS (reported in the notes): on a single-core box
// sharding cannot win — it only adds fsyncs — while on an N-core CI
// runner the per-shard pipelines run truly concurrently.
func T11ShardScaling(scale Scale) *Table {
	shardCounts := []int{1, 2, 4}
	if scale == Full {
		shardCounts = []int{1, 2, 4, 8}
	}
	writers := 32
	per := scale.pick(40, 250)
	t := &Table{
		ID:     "T11",
		Title:  "sharded runtime: durable StartInstance throughput vs shard count (batch policy)",
		Header: []string{"shards", "writers", "starts", "wall", "starts/s", "vs 1 shard"},
	}
	proc := model.Sequence(3)
	t.Notes = append(t.Notes, fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d (shard pipelines parallelize across cores)",
		runtime.GOMAXPROCS(0), runtime.NumCPU()))
	var base float64
	for _, shards := range shardCounts {
		dir, err := os.MkdirTemp("", "bench-t11")
		if err != nil {
			panic(err)
		}
		sys, err := core.Open(core.Options{
			DataDir:    dir,
			Shards:     shards,
			SyncPolicy: storage.SyncBatch,
			Durable:    true,
		})
		if err != nil {
			panic(err)
		}
		sys.Engine.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
			return nil, nil
		})
		if err := sys.Engine.Deploy(proc); err != nil {
			panic(err)
		}
		total := writers * per
		var firstErr atomic.Value
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := sys.Engine.StartInstance(proc.ID, nil); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		d := time.Since(start)
		sys.Close()
		os.RemoveAll(dir)
		if err, _ := firstErr.Load().(error); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%d shards: %v", shards, err))
			continue
		}
		r := float64(total) / d.Seconds()
		speedup := "1.00x"
		if shards == 1 {
			base = r
		} else if base > 0 {
			speedup = fmt.Sprintf("%.2fx", r/base)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(shards), fmt.Sprint(writers), fmt.Sprint(total),
			secs(d), rate(total, d), speedup,
		})
		if shards == 4 && base > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"4 shards vs 1: %.2fx durable StartInstance throughput at %d writers", r/base, writers))
		}
	}
	return t
}
