package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bpms/internal/engine"
	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/storage"
)

// T12AuditPipeline measures what recording the audit trail costs the
// engine's transition path — the experiment behind the asynchronous
// striped history pipeline. Every configuration drives the same
// workload (concurrent writers running a 10-step sequence process on
// an in-memory state journal, so the history path is the only
// difference); history journals are real files.
//
//   - "off" runs with no history store: the floor.
//   - "sync" is the seed behaviour: every audit event is JSON-encoded
//     and appended to the history journal on the transition path.
//   - "async xN" hands events to the striped pipeline: the transition
//     pays a channel send, and N committer goroutines encode (pooled
//     buffers) and append off the hot path.
//
// Like T11, the async headroom is bounded by GOMAXPROCS (reported in
// the notes): committers need a core of their own to fully disappear
// from the transition latency; on a single-core box they only defer
// the work. The memory row demonstrates the bounded window: a run of
// Quick/Full-scale events against Window=1000 stays ~window-resident.
func T12AuditPipeline(scale Scale) *Table {
	writers := 8
	per := scale.pick(100, 1000)
	proc := model.Sequence(10)
	t := &Table{
		ID:     "T12",
		Title:  "audit pipeline: transition throughput with history recording on vs off",
		Header: []string{"history", "writers", "cases", "events", "wall", "cases/s", "vs off"},
	}
	t.Notes = append(t.Notes, fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d (committers parallelize across cores)",
		runtime.GOMAXPROCS(0), runtime.NumCPU()))

	run := func(name string, mk func(dir string) (*history.Store, error)) (float64, bool) {
		dir, err := os.MkdirTemp("", "bench-t12")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		var hist *history.Store
		if mk != nil {
			h, err := mk(dir)
			if err != nil {
				panic(err)
			}
			hist = h
			defer hist.Close()
		}
		e, err := engine.New(engine.Config{History: hist})
		if err != nil {
			panic(err)
		}
		e.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
			return nil, nil
		})
		if err := e.Deploy(proc); err != nil {
			panic(err)
		}
		total := writers * per
		var firstErr atomic.Value
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := e.StartInstance(proc.ID, nil); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if hist != nil {
			// The backlog is part of the cost: drain it inside the
			// measured window.
			if err := hist.Flush(); err != nil {
				firstErr.CompareAndSwap(nil, err)
			}
		}
		d := time.Since(start)
		if err, _ := firstErr.Load().(error); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %v", name, err))
			return 0, false
		}
		events := 0
		if hist != nil {
			events = hist.Count()
		}
		r := float64(total) / d.Seconds()
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(writers), fmt.Sprint(total), fmt.Sprint(events),
			secs(d), rate(total, d), "",
		})
		return r, true
	}

	stripeJournals := func(dir string, n int) ([]storage.Journal, error) {
		js := make([]storage.Journal, n)
		for i := range js {
			j, err := storage.OpenFileJournal(filepath.Join(dir, fmt.Sprintf("stripe-%04d", i)), storage.Options{})
			if err != nil {
				return nil, err
			}
			js[i] = j
		}
		return js, nil
	}

	base, ok := run("off", nil)
	configs := []struct {
		name    string
		stripes int
		sync    bool
	}{
		{"sync (seed)", 1, true},
		{"async x1", 1, false},
		{"async x4", 4, false},
	}
	for _, cfg := range configs {
		r, good := run(cfg.name, func(dir string) (*history.Store, error) {
			js, err := stripeJournals(dir, cfg.stripes)
			if err != nil {
				return nil, err
			}
			// Same bounded window for every configuration (the bpmsd
			// production default shape) so the comparison isolates the
			// pipeline, not the resident-set size.
			return history.NewStriped(js, history.StoreOptions{Sync: cfg.sync, Window: 10000})
		})
		if good && ok && base > 0 {
			t.Rows[len(t.Rows)-1][6] = fmt.Sprintf("%.2fx", base/r)
		}
	}
	if ok && base > 0 && len(t.Rows) > 0 {
		t.Rows[0][6] = "1.00x"
	}

	// Bounded-memory demonstration: a large event run against a small
	// window stays window-resident while older events remain queryable
	// from the journal.
	events := scale.pick(20000, 100000)
	dir, err := os.MkdirTemp("", "bench-t12-window")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	js, err := stripeJournals(dir, 1)
	if err != nil {
		panic(err)
	}
	ws, err := history.NewStriped(js, history.StoreOptions{Window: 1000})
	if err != nil {
		panic(err)
	}
	defer ws.Close()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < events; i++ {
		ws.Enqueue(&history.Event{
			Type: history.ElementCompleted, Time: time.Now(),
			InstanceID: fmt.Sprintf("i-%d", i%64), ElementID: "e",
		})
	}
	if err := ws.Flush(); err != nil {
		panic(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	st := ws.Stats()
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if grew < 0 {
		grew = 0
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"window=1000: %d events recorded, %d resident in RAM, %d evicted to journal, heap growth %dKiB",
		st.Events, st.Resident, st.Evicted, grew/1024))
	if want := (events + 63) / 64; len(ws.EventsOf("i-0")) != want {
		t.Notes = append(t.Notes, fmt.Sprintf("window query mismatch: EventsOf(i-0)=%d want %d", len(ws.EventsOf("i-0")), want))
	}
	return t
}
