package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"bpms/internal/expr"
	"bpms/internal/rules"
)

// T15RuleIndex measures decision-table evaluation at rule-engine scale
// (the GoExprTester workload shape: inject n random rules, probe with
// random and worst-case last-match inputs), comparing the pre-index
// linear scan (Compiled.EvalLinear) against the column-indexed path
// (Compiled.Eval) on equality-dominated and range-band tables, plus
// the EvalBatch amortization on the largest table.
func T15RuleIndex(scale Scale) *Table {
	t := &Table{
		ID:    "T15",
		Title: "indexed decision tables: linear scan vs column index",
		Header: []string{
			"workload", "rules", "evals", "linear", "indexed",
			"linear/eval", "indexed/eval", "speedup",
		},
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"GOMAXPROCS=%d; linear = Compiled.EvalLinear (the pre-index scan), indexed = Compiled.Eval",
		runtime.GOMAXPROCS(0)))

	r := rand.New(rand.NewSource(15))
	sizes := []int{100, 1000, 10000}
	baseEvals := scale.pick(100000, 1000000)
	evalsFor := func(n int) int {
		e := baseEvals / n
		if e < 200 {
			e = 200
		}
		return e
	}

	// Equality-dominated table: rule i matches one injected literal,
	// in shuffled order so the table has no helpful structure for the
	// linear scan.
	buildEq := func(n int) (*rules.Compiled, []int) {
		perm := r.Perm(n)
		tbl := rules.Table{Name: "t15-eq", HitPolicy: rules.First, Outputs: []string{"out"}}
		for i := 0; i < n; i++ {
			tbl.Rules = append(tbl.Rules, rules.Rule{
				Conditions: []string{fmt.Sprintf("v == %d", perm[i])},
				Outputs:    map[string]string{"out": fmt.Sprint(i)},
			})
		}
		return rules.MustCompile(tbl), perm
	}
	// Disjoint range bands, UNIQUE: the interval-tree path.
	buildBands := func(n int) *rules.Compiled {
		tbl := rules.Table{Name: "t15-range", HitPolicy: rules.Unique, Outputs: []string{"out"}}
		for i := 0; i < n; i++ {
			tbl.Rules = append(tbl.Rules, rules.Rule{
				Conditions: []string{fmt.Sprintf("v >= %d && v < %d", i*10, (i+1)*10)},
				Outputs:    map[string]string{"out": fmt.Sprint(i)},
			})
		}
		return rules.MustCompile(tbl)
	}

	measure := func(c *rules.Compiled, envs []expr.Env, indexed bool) time.Duration {
		start := time.Now()
		for _, env := range envs {
			var err error
			if indexed {
				_, err = c.Eval(env)
			} else {
				_, err = c.EvalLinear(env)
			}
			if err != nil {
				panic(err)
			}
		}
		return time.Since(start)
	}
	addRow := func(name string, n int, c *rules.Compiled, envs []expr.Env) {
		linD := measure(c, envs, false)
		idxD := measure(c, envs, true)
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(n), fmt.Sprint(len(envs)),
			secs(linD), secs(idxD), micros(linD, len(envs)), micros(idxD, len(envs)),
			fmt.Sprintf("%.1fx", float64(linD)/float64(idxD)),
		})
	}

	for _, n := range sizes {
		c, perm := buildEq(n)
		worst := expr.MapEnv{"v": expr.Int(int64(perm[n-1]))}
		envs := make([]expr.Env, evalsFor(n))
		for i := range envs {
			envs[i] = worst
		}
		addRow("eq-last-match", n, c, envs)
	}
	for _, n := range sizes {
		c, _ := buildEq(n)
		envs := make([]expr.Env, evalsFor(n))
		for i := range envs {
			envs[i] = expr.MapEnv{"v": expr.Int(int64(r.Intn(n)))}
		}
		addRow("eq-random", n, c, envs)
	}
	for _, n := range sizes {
		c := buildBands(n)
		envs := make([]expr.Env, evalsFor(n))
		for i := range envs {
			envs[i] = expr.MapEnv{"v": expr.Int(int64(r.Intn(n * 10)))}
		}
		addRow("range-bands", n, c, envs)
	}

	// Batch amortization at the largest size: per-call Eval loop vs
	// one EvalBatch over the same inputs.
	n := sizes[len(sizes)-1]
	c, perm := buildEq(n)
	envs := make([]expr.Env, evalsFor(n))
	for i := range envs {
		envs[i] = expr.MapEnv{"v": expr.Int(int64(perm[r.Intn(n)]))}
	}
	loopD := measure(c, envs, true)
	start := time.Now()
	_, errs := c.EvalBatch(envs)
	batchD := time.Since(start)
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
	t.Rows = append(t.Rows, []string{
		"eq-batch*", fmt.Sprint(n), fmt.Sprint(len(envs)),
		secs(loopD), secs(batchD), micros(loopD, len(envs)), micros(batchD, len(envs)),
		fmt.Sprintf("%.1fx", float64(loopD)/float64(batchD)),
	})
	t.Notes = append(t.Notes,
		"eq-batch*: linear column = per-call indexed Eval loop, indexed column = one EvalBatch call")
	return t
}
