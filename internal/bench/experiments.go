package bench

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"bpms/internal/engine"
	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/mine"
	"bpms/internal/model"
	"bpms/internal/resource"
	"bpms/internal/rules"
	"bpms/internal/sim"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
	"bpms/internal/verify"
)

// newEngine builds a minimal in-memory engine for micro-benchmarks.
func newEngine() *engine.Engine {
	e, err := engine.New(engine.Config{})
	if err != nil {
		panic(err)
	}
	e.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	return e
}

// Topologies used by the throughput experiments.
func topologies() []struct {
	Name string
	Proc *model.Process
	Vars map[string]any
} {
	return []struct {
		Name string
		Proc *model.Process
		Vars map[string]any
	}{
		{"sequence-10", model.Sequence(10), nil},
		{"parallel-5", model.Parallel(5), nil},
		{"xor-8", model.Choice(8), map[string]any{"branch": 3}},
		{"loop-5", model.Loop(), map[string]any{"limit": 5, "count": 0}},
		{"mixed", model.Mixed(), map[string]any{"amount": 80}},
	}
}

// RunCases drives n synchronous cases of proc through a fresh engine
// and returns the wall time (shared by T1 and the testing.B benches).
func RunCases(proc *model.Process, vars map[string]any, n int) (time.Duration, error) {
	e := newEngine()
	if err := e.Deploy(proc); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		v, err := e.StartInstance(proc.ID, vars)
		if err != nil {
			return 0, err
		}
		if v.Status != engine.StatusCompleted {
			return 0, fmt.Errorf("instance %s ended %s", v.ID, v.Status)
		}
	}
	return time.Since(start), nil
}

// T1Throughput measures synchronous case throughput per topology.
func T1Throughput(scale Scale) *Table {
	n := scale.pick(500, 10000)
	t := &Table{
		ID:     "T1",
		Title:  "engine throughput by control-flow topology (in-memory journal)",
		Header: []string{"topology", "cases", "elements", "wall", "cases/s"},
	}
	for _, tp := range topologies() {
		d, err := RunCases(tp.Proc, tp.Vars, n)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %v", tp.Name, err))
			continue
		}
		t.Rows = append(t.Rows, []string{
			tp.Name, fmt.Sprint(n), fmt.Sprint(tp.Proc.Stats().Elements), secs(d), rate(n, d),
		})
	}
	return t
}

// T2TaskLatency measures the work-item lifecycle operations.
func T2TaskLatency(scale Scale) *Table {
	n := scale.pick(2000, 20000)
	dir := resource.NewDirectory()
	dir.AddUser(&resource.User{ID: "u1", Roles: []string{"r"}})
	svc := task.NewService(task.Config{Directory: dir})
	t := &Table{
		ID:     "T2",
		Title:  "work-item lifecycle operation latency",
		Header: []string{"operation", "ops", "total", "per-op"},
	}
	items := make([]*task.Item, n)
	measure := func(name string, fn func(i int)) {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
		}
		d := time.Since(start)
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(n), secs(d), micros(d, n)})
	}
	measure("create+offer", func(i int) {
		it, err := svc.Create(task.Spec{InstanceID: "i", ElementID: "e", Role: "r"})
		if err != nil {
			panic(err)
		}
		items[i] = it
	})
	measure("claim", func(i int) { svc.Claim(items[i].ID, "u1") })
	measure("start", func(i int) { svc.Start(items[i].ID, "u1") })
	measure("complete", func(i int) { svc.Complete(items[i].ID, "u1", nil) })
	return t
}

// F1Scaling measures throughput with concurrent client goroutines.
func F1Scaling(scale Scale) *Table {
	perWorker := scale.pick(200, 2000)
	t := &Table{
		ID:     "F1",
		Title:  "throughput scaling vs concurrent clients (mixed topology)",
		Header: []string{"clients", "cases", "wall", "cases/s"},
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		e := newEngine()
		if err := e.Deploy(model.Mixed()); err != nil {
			panic(err)
		}
		total := workers * perWorker
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					_, _ = e.StartInstance("mixed", map[string]any{"amount": 80})
				}
			}(w)
		}
		wg.Wait()
		d := time.Since(start)
		t.Rows = append(t.Rows, []string{fmt.Sprint(workers), fmt.Sprint(total), secs(d), rate(total, d)})
	}
	return t
}

// T3Verification measures soundness checking cost with and without the
// reduction fast path, on sound and unsound nets. The direct (no
// reduction) state space explodes combinatorially on models with many
// parallel blocks, so it runs under a budget; "budget" rows are where
// the reduction pre-pass is the difference between decidable-in-
// milliseconds and not-decidable-at-all.
func T3Verification(scale Scale) *Table {
	sizes := []int{10, 25, 50, 100}
	if scale == Full {
		sizes = append(sizes, 250)
	}
	directBudget := scale.pick(100000, 500000)
	t := &Table{
		ID:     "T3",
		Title:  "soundness verification cost (reduction ablation)",
		Header: []string{"model", "tasks", "verdict", "direct", "states", "reduced", "states'"},
	}
	row := func(name string, p *model.Process) {
		start := time.Now()
		direct, err := verify.Check(p, verify.Options{UseReduction: false, MaxStates: directBudget})
		dDirect := time.Since(start)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %v", name, err))
			return
		}
		start = time.Now()
		fast, err := verify.Check(p, verify.Options{UseReduction: true, MaxStates: 2000000})
		dFast := time.Since(start)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %v", name, err))
			return
		}
		verdict := "sound"
		if !fast.Sound {
			verdict = "UNSOUND"
		}
		directCol := secs(dDirect)
		statesCol := fmt.Sprint(direct.StateCount)
		if direct.Incomplete {
			directCol = "budget"
			statesCol = fmt.Sprintf(">%d", directBudget)
		} else if direct.Sound != fast.Sound {
			verdict += " (DISAGREE!)"
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(p.Stats().Tasks), verdict,
			directCol, statesCol,
			secs(dFast), fmt.Sprint(fast.StateCount),
		})
	}
	for _, n := range sizes {
		row(fmt.Sprintf("structured-%d", n), model.RandomStructured(int64(n), n))
	}
	row("parallel-10", model.Parallel(10))
	row("deadlock-6", model.WithDeadlock(6))
	row("lacksync-6", model.WithLackOfSync(6))
	return t
}

// T4Storage measures journal append throughput per sync policy and
// replay (recovery) cost by log size.
func T4Storage(scale Scale) *Table {
	n := scale.pick(20000, 200000)
	t := &Table{
		ID:     "T4",
		Title:  "log store: append throughput and replay cost",
		Header: []string{"workload", "records", "wall", "rate"},
	}
	payload := make([]byte, 256)
	for _, pol := range []struct {
		name string
		opts storage.Options
		n    int
	}{
		{"append sync=never", storage.Options{Policy: storage.SyncNever}, n},
		{"append sync=every256", storage.Options{Policy: storage.SyncEvery, SyncInterval: 256}, n},
		{"append sync=always", storage.Options{Policy: storage.SyncAlways}, scale.pick(500, 2000)},
	} {
		dir, err := os.MkdirTemp("", "bench-wal")
		if err != nil {
			panic(err)
		}
		j, err := storage.OpenFileJournal(dir, pol.opts)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i := 0; i < pol.n; i++ {
			if _, err := j.Append(payload); err != nil {
				panic(err)
			}
		}
		j.Sync()
		d := time.Since(start)
		t.Rows = append(t.Rows, []string{pol.name, fmt.Sprint(pol.n), secs(d), rate(pol.n, d)})
		j.Close()
		os.RemoveAll(dir)
	}
	for _, records := range []int{n / 10, n / 2, n} {
		dir, err := os.MkdirTemp("", "bench-replay")
		if err != nil {
			panic(err)
		}
		j, _ := storage.OpenFileJournal(dir, storage.Options{})
		for i := 0; i < records; i++ {
			j.Append(payload)
		}
		j.Close()
		start := time.Now()
		j2, err := storage.OpenFileJournal(dir, storage.Options{})
		if err != nil {
			panic(err)
		}
		count := 0
		j2.Replay(1, func(uint64, []byte) error { count++; return nil })
		d := time.Since(start)
		t.Rows = append(t.Rows, []string{"reopen+replay", fmt.Sprint(count), secs(d), rate(count, d)})
		j2.Close()
		os.RemoveAll(dir)
	}
	return t
}

// F2Policies compares allocation policies under rising utilisation.
func F2Policies(scale Scale) *Table {
	cases := scale.pick(300, 2000)
	t := &Table{
		ID:     "F2",
		Title:  "allocation policy comparison (M/M/4 user-task process)",
		Header: []string{"utilisation", "policy", "p50 wait", "p90 wait", "p95 cycle"},
	}
	proc := model.New("mmc").
		Start("s").UserTask("serve", model.Role("agent")).End("e").
		Seq("s", "serve", "e").MustBuild()
	service := 80 * time.Second
	servers := 4
	for _, rho := range []float64{0.5, 0.8, 0.95} {
		interarrival := time.Duration(float64(service) / (rho * float64(servers)))
		for _, pol := range []resource.Policy{
			resource.NewRandomPolicy(17),
			resource.NewRoundRobinPolicy(),
			resource.ShortestQueuePolicy{},
		} {
			res, err := sim.Run(sim.Config{
				Process:        proc,
				Cases:          cases,
				Interarrival:   sim.Exp(interarrival),
				DefaultService: sim.Exp(service),
				Resources:      map[string][]string{"agent": {"w1", "w2", "w3", "w4"}},
				Policy:         pol,
				Seed:           23,
			})
			if err != nil {
				panic(err)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("ρ=%.2f", rho), pol.Name(),
				fmt.Sprintf("%.1fs", res.WaitTime.Percentile(0.5)),
				fmt.Sprintf("%.1fs", res.WaitTime.Percentile(0.9)),
				fmt.Sprintf("%.1fs", res.CycleTime.Percentile(0.95)),
			})
		}
	}
	return t
}

// T5Expressions measures expression evaluation throughput.
func T5Expressions(scale Scale) *Table {
	n := scale.pick(200000, 2000000)
	env := expr.MapEnv{
		"amount": expr.Int(1500),
		"region": expr.String("EU"),
		"items":  expr.List(expr.Int(1), expr.Int(2), expr.Int(3)),
		"limit":  expr.Float(99.5),
	}
	t := &Table{
		ID:     "T5",
		Title:  "expression evaluation throughput (compiled programs)",
		Header: []string{"expression", "evals", "wall", "per-eval"},
	}
	for _, src := range []string{
		"amount",
		"amount + 100 * 2",
		"amount > 1000 && region == \"EU\"",
		`region in ["EU", "US"] ? amount * 0.2 : amount * 0.1`,
		"len(items) + sum(items)",
		`upper(region) + "-" + str(amount)`,
	} {
		p := expr.MustCompile(src)
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := p.Eval(env); err != nil {
				panic(err)
			}
		}
		d := time.Since(start)
		t.Rows = append(t.Rows, []string{src, fmt.Sprint(n), secs(d), fmt.Sprintf("%dns", d.Nanoseconds()/int64(n))})
	}
	return t
}

// discoveryGroundTruth is the process rediscovered in F3.
func discoveryGroundTruth() *model.Process {
	return model.New("f3truth").
		Start("s").
		UserTask("A", model.Name("A"), model.Role("w")).
		XOR("x", model.Default("db")).
		UserTask("B", model.Name("B"), model.Role("w")).
		UserTask("C", model.Name("C"), model.Role("w")).
		XOR("m").
		AND("f").
		UserTask("D", model.Name("D"), model.Role("w")).
		UserTask("E", model.Name("E"), model.Role("w")).
		AND("j").
		UserTask("F", model.Name("F"), model.Role("w")).
		End("e").
		Flow("s", "A").
		Flow("A", "x").
		FlowIf("x", "B", "pick == 1").
		FlowID("db", "x", "C", "").
		Flow("B", "m").Flow("C", "m").
		Flow("m", "f").
		Flow("f", "D").Flow("f", "E").
		Flow("D", "j").Flow("E", "j").
		Flow("j", "F").
		Flow("F", "e").
		MustBuild()
}

// DiscoveryLog simulates the ground truth into a log of n traces.
func DiscoveryLog(n int, seed int64) *history.Log {
	res, err := sim.Run(sim.Config{
		Process:        discoveryGroundTruth(),
		Cases:          n,
		Interarrival:   sim.Exp(time.Minute),
		DefaultService: sim.Exp(2 * time.Minute),
		Resources:      map[string][]string{"w": {"w1", "w2", "w3", "w4"}},
		Vars: func(i int, r *rand.Rand) map[string]any {
			return map[string]any{"pick": r.Intn(2)}
		},
		Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return res.Log
}

// F3Discovery measures discovery quality vs log size: models mined
// from k traces are scored on a large evaluation log.
func F3Discovery(scale Scale) *Table {
	evalSize := scale.pick(300, 1000)
	evalLog := DiscoveryLog(evalSize, 1)
	t := &Table{
		ID:     "F3",
		Title:  "discovery quality vs log size (alpha vs DFG miner)",
		Header: []string{"train traces", "alpha fitness", "alpha fit-traces", "dfg fitness", "mine time"},
	}
	for _, k := range []int{5, 10, 25, 50, 100, 250} {
		train := DiscoveryLog(k, int64(100+k))
		start := time.Now()
		alpha := mine.Alpha(train)
		mineTime := time.Since(start)
		conf := mine.TokenReplay(alpha, evalLog)
		dfg := mine.BuildDFG(train)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%.3f", conf.Fitness()),
			fmt.Sprintf("%d/%d", conf.FitTraces, conf.Traces),
			fmt.Sprintf("%.3f", dfg.FitnessDFG(evalLog)),
			secs(mineTime),
		})
	}
	return t
}

// T6Correlation measures message delivery with many parked instances.
func T6Correlation(scale Scale) *Table {
	t := &Table{
		ID:     "T6",
		Title:  "message correlation throughput vs waiting instances",
		Header: []string{"waiting", "publishes", "wall", "deliveries/s"},
	}
	proc := model.New("waiter").
		Start("s").
		MessageCatch("w", "evt", model.CorrelationKey("k")).
		End("e").
		Seq("s", "w", "e").
		MustBuild()
	for _, waiting := range []int{100, 1000, scale.pick(2000, 10000)} {
		e := newEngine()
		if err := e.Deploy(proc); err != nil {
			panic(err)
		}
		for i := 0; i < waiting; i++ {
			if _, err := e.StartInstance("waiter", map[string]any{"k": fmt.Sprintf("k%d", i)}); err != nil {
				panic(err)
			}
		}
		start := time.Now()
		for i := 0; i < waiting; i++ {
			n, _, err := e.Publish("evt", fmt.Sprintf("k%d", i), nil)
			if err != nil || n != 1 {
				panic(fmt.Sprintf("publish %d: n=%d err=%v", i, n, err))
			}
		}
		d := time.Since(start)
		t.Rows = append(t.Rows, []string{fmt.Sprint(waiting), fmt.Sprint(waiting), secs(d), rate(waiting, d)})
	}
	return t
}

// F4Timers compares the timing wheel against the heap baseline.
func F4Timers(scale Scale) *Table {
	t := &Table{
		ID:     "F4",
		Title:  "timer service: wheel vs heap (schedule + fire all)",
		Header: []string{"service", "timers", "schedule", "fire", "fires/s"},
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sizes := []int{1000, 10000, scale.pick(50000, 200000)}
	for _, mk := range []struct {
		name string
		make func() timer.Service
	}{
		{"wheel", func() timer.Service { return timer.NewWheelService(time.Millisecond, 512) }},
		{"heap", func() timer.Service { return timer.NewHeapService() }},
	} {
		for _, n := range sizes {
			svc := mk.make()
			fired := 0
			r := rand.New(rand.NewSource(5))
			start := time.Now()
			for i := 0; i < n; i++ {
				svc.Schedule(base.Add(time.Duration(r.Intn(60000))*time.Millisecond), func() { fired++ })
			}
			schedD := time.Since(start)
			start = time.Now()
			// Fire in 1s sweeps, as a runner would.
			for tick := 0; tick <= 60; tick++ {
				svc.AdvanceTo(base.Add(time.Duration(tick) * time.Second))
			}
			fireD := time.Since(start)
			if fired != n {
				t.Notes = append(t.Notes, fmt.Sprintf("%s/%d: fired %d", mk.name, n, fired))
			}
			t.Rows = append(t.Rows, []string{
				mk.name, fmt.Sprint(n), secs(schedD), secs(fireD), rate(fired, fireD),
			})
		}
	}
	return t
}

// T7Rules measures decision-table evaluation by size and hit policy.
func T7Rules(scale Scale) *Table {
	n := scale.pick(20000, 200000)
	t := &Table{
		ID:     "T7",
		Title:  "decision table evaluation (match in final rule)",
		Header: []string{"hit policy", "rules", "evals", "wall", "per-eval"},
	}
	build := func(rulesN int, hp rules.HitPolicy) *rules.Compiled {
		tbl := rules.Table{Name: "bench", HitPolicy: hp, Outputs: []string{"out"}}
		for i := 0; i < rulesN; i++ {
			cond := fmt.Sprintf("v == %d", i)
			if hp == rules.Collect {
				cond = fmt.Sprintf("v >= %d", i)
			}
			tbl.Rules = append(tbl.Rules, rules.Rule{
				Conditions: []string{cond},
				Outputs:    map[string]string{"out": fmt.Sprint(i)},
				Priority:   i,
			})
		}
		return rules.MustCompile(tbl)
	}
	for _, hp := range []rules.HitPolicy{rules.First, rules.Unique, rules.Collect} {
		for _, rulesN := range []int{10, 100, 1000} {
			c := build(rulesN, hp)
			env := expr.MapEnv{"v": expr.Int(int64(rulesN - 1))}
			evals := n / rulesN * 10
			if evals < 100 {
				evals = 100
			}
			start := time.Now()
			for i := 0; i < evals; i++ {
				if _, err := c.Eval(env); err != nil {
					panic(err)
				}
			}
			d := time.Since(start)
			t.Rows = append(t.Rows, []string{
				string(hp), fmt.Sprint(rulesN), fmt.Sprint(evals), secs(d), micros(d, evals),
			})
		}
	}
	return t
}

// F5Recovery measures recovery time vs snapshot interval.
func F5Recovery(scale Scale) *Table {
	instances := scale.pick(500, 5000)
	t := &Table{
		ID:     "F5",
		Title:  "recovery: journal replay vs snapshots",
		Header: []string{"snapshot every", "journal records", "recovery", "records/s"},
	}
	for _, every := range []int{0, 1000, 100} {
		dir, err := os.MkdirTemp("", "bench-recovery")
		if err != nil {
			panic(err)
		}
		snapDir, _ := os.MkdirTemp("", "bench-snap")
		// Small segments so DropBefore can actually discard the
		// journal prefix covered by snapshots.
		journal, err := storage.OpenFileJournal(dir, storage.Options{SegmentSize: 32 << 10})
		if err != nil {
			panic(err)
		}
		var snaps *storage.SnapshotStore
		if every > 0 {
			snaps, _ = storage.OpenSnapshotStore(snapDir, 2)
		}
		e, err := engine.New(engine.Config{Journal: journal, Snapshots: snaps, SnapshotEvery: every})
		if err != nil {
			panic(err)
		}
		e.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) { return nil, nil })
		if err := e.Deploy(model.Sequence(5)); err != nil {
			panic(err)
		}
		for i := 0; i < instances; i++ {
			if _, err := e.StartInstance("seq-5", nil); err != nil {
				panic(err)
			}
		}
		if every > 0 {
			// Let any in-flight async snapshot settle, then force one
			// more so the journal prefix is compacted.
			time.Sleep(50 * time.Millisecond)
			_ = e.Snapshot()
		}
		records := journal.LastIndex() - journal.FirstIndex() + 1
		journal.Close()

		start := time.Now()
		journal2, err := storage.OpenFileJournal(dir, storage.Options{SegmentSize: 32 << 10})
		if err != nil {
			panic(err)
		}
		e2, err := engine.New(engine.Config{Journal: journal2, Snapshots: snaps})
		if err != nil {
			panic(err)
		}
		d := time.Since(start)
		if got := len(e2.Instances()); got != instances {
			t.Notes = append(t.Notes, fmt.Sprintf("every=%d: recovered %d of %d", every, got, instances))
		}
		label := "never"
		if every > 0 {
			label = fmt.Sprint(every)
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprint(records), secs(d), rate(int(records), d)})
		journal2.Close()
		os.RemoveAll(dir)
		os.RemoveAll(snapDir)
	}
	return t
}

// T8EndToEnd sweeps arrival rates through the loan process and reports
// cycle-time percentiles (the capacity-planning view).
func T8EndToEnd(scale Scale) *Table {
	cases := scale.pick(300, 2000)
	t := &Table{
		ID:     "T8",
		Title:  "end-to-end case latency under load (loan process, 3 clerks + 2 assessors)",
		Header: []string{"interarrival", "completed", "p50 cycle", "p95 cycle", "p99 cycle", "p90 wait"},
	}
	proc := model.New("loan-sim").
		Start("s").
		UserTask("register", model.Role("clerk")).
		XOR("route", model.Default("small")).
		UserTask("assess", model.Role("assessor")).
		UserTask("fastTrack", model.Role("clerk")).
		XOR("m").
		UserTask("payout", model.Role("clerk")).
		End("e").
		Flow("s", "register").
		Flow("register", "route").
		FlowIf("route", "assess", "amount > 5000").
		FlowID("small", "route", "fastTrack", "").
		Flow("assess", "m").
		Flow("fastTrack", "m").
		Flow("m", "payout").
		Flow("payout", "e").
		MustBuild()
	for _, ia := range []time.Duration{15 * time.Minute, 8 * time.Minute, 5 * time.Minute} {
		res, err := sim.Run(sim.Config{
			Process:        proc,
			Cases:          cases,
			Interarrival:   sim.Exp(ia),
			DefaultService: sim.Lognormal{M: 10 * time.Minute, Shape: 0.5},
			Resources: map[string][]string{
				"clerk":    {"c1", "c2", "c3"},
				"assessor": {"a1", "a2"},
			},
			Vars: func(i int, r *rand.Rand) map[string]any {
				return map[string]any{"amount": 1000 + r.Intn(9000)}
			},
			Seed: 31,
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			ia.String(), fmt.Sprint(res.Completed),
			fmt.Sprintf("%.1fm", res.CycleTime.Percentile(0.5)/60),
			fmt.Sprintf("%.1fm", res.CycleTime.Percentile(0.95)/60),
			fmt.Sprintf("%.1fm", res.CycleTime.Percentile(0.99)/60),
			fmt.Sprintf("%.1fm", res.WaitTime.Percentile(0.9)/60),
		})
	}
	return t
}
