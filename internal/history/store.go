package history

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bpms/internal/obs"
	"bpms/internal/storage"
)

// Store is the audit-event store: events are appended durably to
// journals and indexed in memory for queries.
//
// The store is striped: events hash by instance ID (FNV-1a, mirroring
// the shard router) onto N stripes, each owning its own journal,
// in-memory index, and locks, so audit traffic on different instances
// never contends on one global mutex. Within a stripe a dedicated
// committer goroutine drains a bounded queue, encodes events into a
// reusable buffer, appends them to the journal OUTSIDE the index lock
// (a slow fsync never blocks readers), and then indexes the batch.
// Enqueue is therefore a non-blocking hand-off on the engine's
// transition path; it applies backpressure (blocks, never drops) when
// a stripe's queue is full.
//
// Ordering: events of one instance always land on one stripe and are
// enqueued in emission order, so per-instance order is preserved both
// in RAM and in that stripe's journal. With more than one stripe there
// is no global cross-instance order (All streams stripe by stripe).
//
// Memory: each stripe keeps a bounded window of recent events resident
// (StoreOptions.Window; 0 keeps everything). Queries that reach below
// the window are answered by replaying the stripe's journal prefix, so
// results are identical with and without eviction.
//
// Queries barrier on the async pipeline: every event enqueued before
// the query call is indexed before the query reads, preserving the
// read-your-writes behaviour of the previous synchronous store.
// Rebuilding the indexes from the journals on open makes the store
// fully recoverable.
type Store struct {
	stripes []*stripe
	window  int
	syncs   bool
}

// StoreOptions configures a striped store.
type StoreOptions struct {
	// Window bounds the number of events each stripe keeps resident in
	// RAM (0 = unbounded, the previous behaviour). Older events remain
	// queryable through journal replay.
	Window int
	// QueueSize is the per-stripe async queue capacity (default 1024).
	// A full queue applies backpressure to Enqueue callers.
	QueueSize int
	// Sync disables the async pipeline: Append and Enqueue write
	// through synchronously on the caller's goroutine (still with the
	// disk append outside the index lock). Tools that drive virtual
	// time (the simulator) use this to avoid background goroutines.
	Sync bool
	// Metrics, when set, instruments each stripe's queue depth and
	// enqueue-to-commit latency.
	Metrics *obs.Metrics
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.Window < 0 {
		o.Window = 0
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	return o
}

// commitBatchMax bounds how many queued events one committer pass
// encodes and appends before indexing them.
const commitBatchMax = 256

// errStopReplay is the internal sentinel that ends a bounded journal
// replay early once the in-RAM window is reached.
var errStopReplay = errors.New("history: stop replay")

// appendReq is one queued event; err is non-nil for synchronous
// Append callers awaiting the result. at is the enqueue instant when
// the stripe is instrumented (zero otherwise).
type appendReq struct {
	ev  *Event
	err chan error
	at  time.Time
}

type stripe struct {
	journal storage.Journal
	metrics obs.HistoryStripeMetrics

	// Async pipeline (nil queue in Sync mode).
	queue     chan appendReq
	committed chan struct{} // closed when the committer exits
	closed    atomic.Bool
	senders   sync.WaitGroup
	closeOnce sync.Once

	// appendMu serializes the encode→append→index sequence in Sync
	// mode so index order matches journal order; it is never held
	// while readers hold mu.
	appendMu sync.Mutex

	mu      sync.RWMutex
	cond    *sync.Cond // on mu: signalled when doneSeq advances
	enqSeq  atomic.Uint64
	doneSeq uint64 // guarded by mu

	window     int
	ring       []*Event // resident window, oldest first
	ramFirst   uint64   // journal index of ring[0] (0 when empty)
	evicted    int      // events dropped from RAM (journal-only)
	byInstance map[string][]*Event
	// instCount is the cumulative event count per instance ever seen
	// (unaffected by eviction): when an instance's resident slice is
	// shorter than its count, the difference lives in the journal.
	instCount map[string]int
	byType    map[EventType]int
	count     int
	lastErr   error // first append failure (surfaced by Flush)

	// Committer scratch (single committer goroutine per stripe).
	encBuf  []byte
	idxBuf  []uint64
	errsBuf []error
}

// NewStore opens a single-stripe store with default options over the
// given journal, replaying any existing records to rebuild the query
// indexes.
func NewStore(j storage.Journal) (*Store, error) {
	return NewStriped([]storage.Journal{j}, StoreOptions{})
}

// NewStriped opens a store over one journal per stripe, replaying each
// journal to rebuild that stripe's indexes.
func NewStriped(journals []storage.Journal, opts StoreOptions) (*Store, error) {
	if len(journals) == 0 {
		return nil, fmt.Errorf("history: no journals")
	}
	opts = opts.withDefaults()
	s := &Store{window: opts.Window, syncs: opts.Sync}
	// Phase 1: replay every journal. No committer goroutine starts
	// until all stripes recovered, so an error here leaks nothing.
	for i, j := range journals {
		st := &stripe{
			journal:    j,
			metrics:    opts.Metrics.HistoryStripe(i),
			window:     opts.Window,
			byInstance: map[string][]*Event{},
			instCount:  map[string]int{},
			byType:     map[EventType]int{},
		}
		st.cond = sync.NewCond(&st.mu)
		err := j.Replay(1, func(index uint64, payload []byte) error {
			e, err := DecodeEvent(payload)
			if err != nil {
				return err
			}
			e.Index = index
			st.indexLocked(e)
			return nil
		})
		if err != nil {
			return nil, err
		}
		s.stripes = append(s.stripes, st)
	}
	// Phase 2: start the pipeline.
	if !opts.Sync {
		for _, st := range s.stripes {
			st.queue = make(chan appendReq, opts.QueueSize)
			st.committed = make(chan struct{})
			go st.run()
		}
	}
	return s, nil
}

// Stripes returns the stripe count.
func (s *Store) Stripes() int { return len(s.stripes) }

// fnv32a mirrors the shard router's instance hash so one instance's
// engine shard and history stripe derive from the same function.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (s *Store) stripeFor(instanceID string) *stripe {
	if len(s.stripes) == 1 {
		return s.stripes[0]
	}
	return s.stripes[fnv32a(instanceID)%uint32(len(s.stripes))]
}

// Enqueue hands an event to the store without waiting for it to be
// encoded, appended, or indexed — the engine's audit hot path. Events
// of one instance keep their emission order. When the stripe's queue
// is full the call blocks (backpressure; events are never dropped);
// failures past the hand-off are best-effort and surface via Flush.
// The event must not be mutated by the caller after Enqueue.
func (s *Store) Enqueue(e *Event) {
	st := s.stripeFor(e.InstanceID)
	if st.queue == nil {
		_ = st.appendSync(e)
		return
	}
	st.enqueue(appendReq{ev: e})
}

// Append records an event and returns once it is encoded, appended to
// the stripe journal, and indexed. The event's Index field is set to
// the assigned journal index.
func (s *Store) Append(e *Event) error {
	st := s.stripeFor(e.InstanceID)
	if st.queue == nil {
		return st.appendSync(e)
	}
	errCh := make(chan error, 1)
	if !st.enqueue(appendReq{ev: e, err: errCh}) {
		return storage.ErrClosed
	}
	return <-errCh
}

// enqueue reserves a pipeline slot and sends. It reports false when
// the store is closed.
func (st *stripe) enqueue(req appendReq) bool {
	st.senders.Add(1)
	defer st.senders.Done()
	if st.closed.Load() {
		return false
	}
	req.at = st.metrics.Commit.Start()
	st.metrics.Depth.Add(1)
	st.enqSeq.Add(1)
	st.queue <- req
	return true
}

// run is the stripe committer: it drains the queue in batches,
// encodes and appends outside the index lock, then indexes the batch
// and wakes barrier waiters.
func (st *stripe) run() {
	defer close(st.committed)
	batch := make([]appendReq, 0, commitBatchMax)
	for req := range st.queue {
		batch = append(batch[:0], req)
	gather:
		for len(batch) < commitBatchMax {
			select {
			case more, ok := <-st.queue:
				if !ok {
					break gather
				}
				batch = append(batch, more)
			default:
				break gather
			}
		}
		st.commit(batch)
	}
}

// commit encodes and journal-appends a batch (no index lock held — a
// slow disk append never blocks EventsOf/Count readers), then indexes
// it under the lock and releases synchronous waiters.
func (st *stripe) commit(batch []appendReq) {
	if cap(st.idxBuf) < len(batch) {
		st.idxBuf = make([]uint64, len(batch))
		st.errsBuf = make([]error, len(batch))
	}
	idxs := st.idxBuf[:len(batch)]
	errs := st.errsBuf[:len(batch)]
	for i, req := range batch {
		buf, err := AppendEncode(st.encBuf[:0], req.ev)
		st.encBuf = buf[:0] // keep the grown capacity for the next event
		if err == nil {
			idxs[i], err = st.journal.Append(buf)
		}
		errs[i] = err
	}
	st.mu.Lock()
	for i, req := range batch {
		if errs[i] == nil {
			req.ev.Index = idxs[i]
			st.indexLocked(req.ev)
		} else if st.lastErr == nil {
			st.lastErr = errs[i]
		}
	}
	st.doneSeq += uint64(len(batch))
	st.cond.Broadcast()
	st.mu.Unlock()
	st.metrics.Depth.Add(-int64(len(batch)))
	for i, req := range batch {
		st.metrics.Commit.Since(req.at)
		if req.err != nil {
			req.err <- errs[i]
		}
	}
}

// appendSync is the synchronous write-through path (Sync mode). The
// encode and the disk append run outside the index mutex; appendMu
// keeps index order equal to journal order without ever being held
// while readers hold mu.
func (st *stripe) appendSync(e *Event) error {
	buf, err := AppendEncode(nil, e)
	if err != nil {
		st.recordErr(err)
		return err
	}
	st.appendMu.Lock()
	idx, err := st.journal.Append(buf)
	if err != nil {
		st.appendMu.Unlock()
		st.recordErr(err)
		return err
	}
	st.mu.Lock()
	e.Index = idx
	st.indexLocked(e)
	st.mu.Unlock()
	st.appendMu.Unlock()
	return nil
}

// recordErr keeps the first append failure so Flush surfaces it even
// when the caller (Enqueue's fire-and-forget paths) discards it.
func (st *stripe) recordErr(err error) {
	st.mu.Lock()
	if st.lastErr == nil {
		st.lastErr = err
	}
	st.mu.Unlock()
}

// indexLocked adds one event to the stripe indexes, evicting the
// oldest resident events past the window. Counters (count, byType,
// instances) are cumulative and unaffected by eviction.
func (st *stripe) indexLocked(e *Event) {
	if len(st.ring) == 0 {
		st.ramFirst = e.Index
	}
	st.ring = append(st.ring, e)
	if e.InstanceID != "" {
		bi, ok := st.byInstance[e.InstanceID]
		if !ok {
			// A workflow instance emits tens of events; starting at a
			// realistic capacity skips the early doubling chain that
			// otherwise dominates index allocations.
			bi = make([]*Event, 0, 16)
		}
		st.byInstance[e.InstanceID] = append(bi, e)
		st.instCount[e.InstanceID]++
	}
	st.byType[e.Type]++
	st.count++
	if st.window <= 0 {
		return
	}
	for len(st.ring) > st.window {
		old := st.ring[0]
		st.ring[0] = nil
		st.ring = st.ring[1:]
		st.evicted++
		if old.InstanceID != "" {
			bi := st.byInstance[old.InstanceID]
			if len(bi) > 0 && bi[0] == old {
				bi[0] = nil
				bi = bi[1:]
				if len(bi) == 0 {
					delete(st.byInstance, old.InstanceID)
				} else {
					st.byInstance[old.InstanceID] = bi
				}
			}
		}
		if len(st.ring) > 0 {
			st.ramFirst = st.ring[0].Index
		} else {
			st.ramFirst = 0
		}
	}
}

// barrier waits until every event enqueued before the call is indexed,
// giving queries read-your-writes over the async pipeline.
func (st *stripe) barrier() {
	if st.queue == nil {
		return
	}
	target := st.enqSeq.Load()
	st.mu.Lock()
	for st.doneSeq < target {
		st.cond.Wait()
	}
	st.mu.Unlock()
}

// Count returns the total number of events (including evicted ones).
func (s *Store) Count() int {
	total := 0
	for _, st := range s.stripes {
		st.barrier()
		st.mu.RLock()
		total += st.count
		st.mu.RUnlock()
	}
	return total
}

// CountByType returns the number of events of the given type.
func (s *Store) CountByType(t EventType) int {
	total := 0
	for _, st := range s.stripes {
		st.barrier()
		st.mu.RLock()
		total += st.byType[t]
		st.mu.RUnlock()
	}
	return total
}

// InstanceIDs returns all instance IDs with at least one event, sorted.
func (s *Store) InstanceIDs() []string {
	var out []string
	for _, st := range s.stripes {
		st.barrier()
		st.mu.RLock()
		for id := range st.instCount {
			out = append(out, id)
		}
		st.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// EventsOf returns the events of one instance in append order. The
// returned slice is a copy; the events themselves are shared and must
// not be mutated. When part of the instance's history has been evicted
// from the RAM window, the stripe's journal prefix is replayed, so the
// answer is identical with and without eviction. Should that replay
// fail (journal error, store closed), only the resident suffix is
// returned and the failure is recorded for the next Flush to report.
func (s *Store) EventsOf(instanceID string) []*Event {
	st := s.stripeFor(instanceID)
	st.barrier()
	st.mu.RLock()
	ram := append([]*Event(nil), st.byInstance[instanceID]...)
	total := st.instCount[instanceID]
	ramFirst := st.ramFirst
	st.mu.RUnlock()
	if len(ram) == total {
		// Fully resident (or unknown): no journal replay needed, even
		// when the stripe has evicted other instances' events.
		return ram
	}
	// Part of the stripe's history lives only in the journal: replay
	// indexes below the resident window and keep this instance's
	// events. The RAM slice is a contiguous suffix, so prefix+suffix
	// is the complete ordered history.
	var out []*Event
	err := st.journal.Replay(1, func(index uint64, payload []byte) error {
		if ramFirst != 0 && index >= ramFirst {
			return errStopReplay
		}
		e, derr := DecodeEvent(payload)
		if derr != nil {
			return derr
		}
		if e.InstanceID != instanceID {
			return nil
		}
		e.Index = index
		out = append(out, e)
		return nil
	})
	if err != nil && !errors.Is(err, errStopReplay) {
		// Serve the resident suffix, but do not pretend it is the full
		// trail silently: the failure is kept and surfaced by the next
		// Flush/Sync (queries have no error channel of their own).
		st.recordErr(fmt.Errorf("history: replay events of %s: %w", instanceID, err))
		return ram
	}
	return append(out, ram...)
}

// All streams every event in per-stripe append order (with one stripe
// this is global append order; with more, events of one instance stay
// ordered but stripes are concatenated). Evicted prefixes are replayed
// from the journals.
func (s *Store) All(fn func(*Event) error) error {
	for _, st := range s.stripes {
		st.barrier()
		st.mu.RLock()
		ring := append([]*Event(nil), st.ring...)
		evicted := st.evicted
		ramFirst := st.ramFirst
		st.mu.RUnlock()
		if evicted > 0 {
			err := st.journal.Replay(1, func(index uint64, payload []byte) error {
				if ramFirst != 0 && index >= ramFirst {
					return errStopReplay
				}
				e, derr := DecodeEvent(payload)
				if derr != nil {
					return derr
				}
				e.Index = index
				return fn(e)
			})
			if err != nil && !errors.Is(err, errStopReplay) {
				return err
			}
		}
		for _, e := range ring {
			if err := fn(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush drains the async pipeline and syncs every stripe journal:
// when it returns, every event enqueued before the call is on stable
// storage (and any async append failure since the last Flush is
// reported).
func (s *Store) Flush() error {
	var first error
	for _, st := range s.stripes {
		st.barrier()
		st.mu.Lock()
		err := st.lastErr
		st.lastErr = nil
		st.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
		if err := st.journal.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sync flushes the pipeline and the underlying journals (alias of
// Flush, preserving the previous API).
func (s *Store) Sync() error { return s.Flush() }

// Close drains and stops the committer goroutines and closes every
// stripe journal. Events enqueued before Close are appended; queries
// remain answerable from the resident window afterwards (evicted
// ranges need the journals and are no longer reachable).
func (s *Store) Close() error {
	var first error
	for _, st := range s.stripes {
		st.closeOnce.Do(func() {
			if st.queue == nil {
				return
			}
			st.closed.Store(true)
			st.senders.Wait()
			close(st.queue)
			<-st.committed
		})
		if err := st.journal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// StoreStats reports the pipeline's shape and load for monitoring.
type StoreStats struct {
	// Stripes is the stripe count.
	Stripes int `json:"stripes"`
	// Window is the per-stripe resident window (0 = unbounded).
	Window int `json:"window"`
	// Events is the total number of recorded events.
	Events int `json:"events"`
	// Resident is the number of events currently held in RAM.
	Resident int `json:"resident"`
	// Evicted is the number of events only reachable via the journals.
	Evicted int `json:"evicted"`
	// Pending is the number of enqueued events not yet indexed.
	Pending int `json:"pending"`
}

// Stats snapshots the store without waiting for the pipeline to drain
// (monitoring must not block behind a busy committer).
func (s *Store) Stats() StoreStats {
	out := StoreStats{Stripes: len(s.stripes), Window: s.window}
	for _, st := range s.stripes {
		st.mu.RLock()
		done := st.doneSeq
		// Read enqSeq after doneSeq: enqueues may race ahead (pending
		// reads slightly high) but never behind (pending stays ≥ 0).
		enq := st.enqSeq.Load()
		out.Events += st.count
		out.Resident += len(st.ring)
		out.Evicted += st.evicted
		out.Pending += int(enq - done)
		st.mu.RUnlock()
	}
	return out
}
