package history

import (
	"sort"
	"sync"

	"bpms/internal/storage"
)

// Store is the audit-event store: events are appended durably to a
// journal and indexed in memory for queries. Rebuilding the index from
// the journal on open makes the store fully recoverable.
type Store struct {
	mu         sync.RWMutex
	journal    storage.Journal
	all        []*Event
	byInstance map[string][]*Event
	byType     map[EventType]int
	count      int
}

// NewStore opens a store over the given journal, replaying any
// existing records to rebuild the query indexes.
func NewStore(j storage.Journal) (*Store, error) {
	s := &Store{
		journal:    j,
		byInstance: map[string][]*Event{},
		byType:     map[EventType]int{},
	}
	err := j.Replay(1, func(index uint64, payload []byte) error {
		e, err := DecodeEvent(payload)
		if err != nil {
			return err
		}
		e.Index = index
		s.indexLocked(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) indexLocked(e *Event) {
	s.all = append(s.all, e)
	if e.InstanceID != "" {
		s.byInstance[e.InstanceID] = append(s.byInstance[e.InstanceID], e)
	}
	s.byType[e.Type]++
	s.count++
}

// Append records an event durably and indexes it. The event's Index
// field is set to the assigned journal index.
func (s *Store) Append(e *Event) error {
	payload, err := e.Encode()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, err := s.journal.Append(payload)
	if err != nil {
		return err
	}
	e.Index = idx
	s.indexLocked(e)
	return nil
}

// Count returns the total number of events.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// CountByType returns the number of events of the given type.
func (s *Store) CountByType(t EventType) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byType[t]
}

// InstanceIDs returns all instance IDs with at least one event, sorted.
func (s *Store) InstanceIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byInstance))
	for id := range s.byInstance {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// EventsOf returns the events of one instance in append order. The
// returned slice is a copy; the events themselves are shared and must
// not be mutated.
func (s *Store) EventsOf(instanceID string) []*Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	evs := s.byInstance[instanceID]
	out := make([]*Event, len(evs))
	copy(out, evs)
	return out
}

// All streams every event in append order.
func (s *Store) All(fn func(*Event) error) error {
	s.mu.RLock()
	// Snapshot the slice header to release the lock before user code
	// runs; events are append-only so the prefix is stable.
	evs := s.all
	s.mu.RUnlock()
	for _, e := range evs {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the underlying journal.
func (s *Store) Sync() error { return s.journal.Sync() }
