package history

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"bpms/internal/storage"
)

func memJournals(n int) []storage.Journal {
	out := make([]storage.Journal, n)
	for i := range out {
		out[i] = storage.NewMemJournal()
	}
	return out
}

func fileJournals(t *testing.T, dir string, n int, opts storage.Options) []storage.Journal {
	t.Helper()
	out := make([]storage.Journal, n)
	for i := range out {
		j, err := storage.OpenFileJournal(filepath.Join(dir, fmt.Sprintf("stripe-%04d", i)), opts)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = j
	}
	return out
}

// TestAppendEncodeRoundTrip proves the append-style encoder and
// encoding/json agree: both forms decode to the same event.
func TestAppendEncodeRoundTrip(t *testing.T) {
	events := []*Event{
		{Type: InstanceStarted, Time: ts(1), ProcessID: "p", InstanceID: "i-1"},
		{Index: 42, Type: TaskCompleted, Time: ts(2).Add(123456789 * time.Nanosecond),
			ProcessID: "order", InstanceID: "i-2", ElementID: "approve",
			Element: "Approve \"big\" order\n<tab>\t", TaskID: "t-9", Actor: "alice\\bob",
			Data: map[string]any{"amount": 150.0, "ok": true, "note": "a\"b"}},
		{Type: ElementCompleted, Time: time.Time{}, InstanceID: "i-3", Data: map[string]any{"routing": true}},
		{Type: MessagePublished, Time: ts(3), Element: "ünïcödé — 事件"},
	}
	for i, e := range events {
		fast, err := AppendEncode(nil, e)
		if err != nil {
			t.Fatalf("event %d: AppendEncode: %v", i, err)
		}
		got, err := DecodeEvent(fast)
		if err != nil {
			t.Fatalf("event %d: decode fast form: %v\n%s", i, err, fast)
		}
		if got.Type != e.Type || got.ProcessID != e.ProcessID || got.InstanceID != e.InstanceID ||
			got.ElementID != e.ElementID || got.Element != e.Element || got.TaskID != e.TaskID ||
			got.Actor != e.Actor || got.Index != e.Index || !got.Time.Equal(e.Time) {
			t.Errorf("event %d: round trip mismatch:\n got %+v\nwant %+v", i, got, e)
		}
		if !reflect.DeepEqual(got.Data, e.Data) {
			t.Errorf("event %d: data mismatch: got %v want %v", i, got.Data, e.Data)
		}
	}
	// Encoding appends to the given buffer rather than replacing it.
	prefix := []byte("xx")
	out, err := AppendEncode(prefix, events[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(out[:2]) != "xx" || out[2] != '{' {
		t.Errorf("AppendEncode did not append: %q", out[:3])
	}
}

// TestStripedConcurrentAppendQuery hammers a striped store from many
// writers while readers query it (run under -race in CI): per-instance
// order must hold throughout and all events must land.
func TestStripedConcurrentAppendQuery(t *testing.T) {
	s, err := NewStriped(memJournals(4), StoreOptions{Window: 64, QueueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const writers, perWriter = 8, 200
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	// Readers race the writers.
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Count()
				evs := s.EventsOf(fmt.Sprintf("inst-%d", r))
				for i := 1; i < len(evs); i++ {
					if evs[i].Data["seq"].(float64) <= evs[i-1].Data["seq"].(float64) {
						t.Errorf("out-of-order events for inst-%d", r)
						return
					}
				}
				_ = s.All(func(*Event) error { return nil })
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			inst := fmt.Sprintf("inst-%d", w)
			for i := 0; i < perWriter; i++ {
				s.Enqueue(&Event{
					Type: ElementCompleted, Time: ts(i), InstanceID: inst,
					Data: map[string]any{"seq": float64(i)},
				})
			}
		}(w)
	}
	// Wait for the writers, stop the readers, then verify the final
	// image: queries barrier on the pipeline, so everything written is
	// visible.
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	if got := s.Count(); got != writers*perWriter {
		t.Fatalf("Count = %d, want %d", got, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		evs := s.EventsOf(fmt.Sprintf("inst-%d", w))
		if len(evs) != perWriter {
			t.Fatalf("inst-%d: %d events, want %d", w, len(evs), perWriter)
		}
		for i, e := range evs {
			if int(e.Data["seq"].(float64)) != i {
				t.Fatalf("inst-%d: event %d has seq %v", w, i, e.Data["seq"])
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// TestFlushedPrefixSurvivesCrash proves the Flush contract: events
// acknowledged by Flush are on stable storage and replay in per-
// instance order after a crash (simulated by reopening the journals
// without Close, as the WAL reopen-without-Close tests do). The
// unflushed tail is best-effort by design.
func TestFlushedPrefixSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	const stripes = 2
	js := fileJournals(t, dir, stripes, storage.Options{Policy: storage.SyncNever})
	s, err := NewStriped(js, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const flushed, tail = 40, 7
	for i := 0; i < flushed; i++ {
		s.Enqueue(&Event{Type: ElementCompleted, Time: ts(i),
			InstanceID: fmt.Sprintf("i-%d", i%3), Data: map[string]any{"seq": float64(i)}})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// A tail past the Flush barrier: appended to the journals' write
	// buffers but never synced — the crash may lose it.
	for i := flushed; i < flushed+tail; i++ {
		s.Enqueue(&Event{Type: ElementCompleted, Time: ts(i),
			InstanceID: fmt.Sprintf("i-%d", i%3), Data: map[string]any{"seq": float64(i)}})
	}
	if got := s.Count(); got != flushed+tail { // drains the pipeline
		t.Fatalf("pre-crash Count = %d", got)
	}

	// "Crash": reopen the journal dirs without closing the store.
	js2 := fileJournals(t, dir, stripes, storage.Options{Policy: storage.SyncNever})
	s2, err := NewStriped(js2, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Count(); got < flushed {
		t.Fatalf("recovered %d events, want at least the %d flushed", got, flushed)
	}
	// Per instance: the flushed prefix is intact and ordered.
	bySeq := map[string][]int{}
	for _, id := range s2.InstanceIDs() {
		for _, e := range s2.EventsOf(id) {
			bySeq[id] = append(bySeq[id], int(e.Data["seq"].(float64)))
		}
	}
	want := map[string][]int{}
	for i := 0; i < flushed; i++ {
		id := fmt.Sprintf("i-%d", i%3)
		want[id] = append(want[id], i)
	}
	for id, seqs := range want {
		got := bySeq[id]
		if len(got) < len(seqs) {
			t.Fatalf("%s: recovered %d events, want >= %d (flushed prefix lost)", id, len(got), len(seqs))
		}
		for i, s := range seqs {
			if got[i] != s {
				t.Fatalf("%s: event %d has seq %d, want %d (order broken)", id, i, got[i], s)
			}
		}
		// Any recovered tail must continue in order too.
		for i := len(seqs) + 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("%s: tail out of order: %v", id, got)
			}
		}
	}
}

// TestWindowEvictionEquivalence proves a bounded store answers
// queries identically to an unbounded one: evicted ranges are served
// by journal replay.
func TestWindowEvictionEquivalence(t *testing.T) {
	dir := t.TempDir()
	j, err := storage.OpenFileJournal(filepath.Join(dir, "hist"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStriped([]storage.Journal{j}, StoreOptions{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	const total = 50
	want := map[string][]int{}
	for i := 0; i < total; i++ {
		id := fmt.Sprintf("i-%d", i%3)
		if err := s.Append(&Event{Type: ElementCompleted, Time: ts(i),
			InstanceID: id, Data: map[string]any{"seq": float64(i)}}); err != nil {
			t.Fatal(err)
		}
		want[id] = append(want[id], i)
	}
	stats := s.Stats()
	if stats.Resident > 8 {
		t.Errorf("resident = %d, want <= window 8", stats.Resident)
	}
	if stats.Evicted != total-stats.Resident {
		t.Errorf("evicted = %d resident = %d total = %d", stats.Evicted, stats.Resident, total)
	}
	if s.Count() != total {
		t.Errorf("Count = %d, want %d (counters are cumulative)", s.Count(), total)
	}
	// EventsOf must splice journal prefix + RAM suffix into the full
	// ordered history.
	for id, seqs := range want {
		evs := s.EventsOf(id)
		if len(evs) != len(seqs) {
			t.Fatalf("%s: %d events, want %d", id, len(evs), len(seqs))
		}
		var lastIdx uint64
		for i, e := range evs {
			if int(e.Data["seq"].(float64)) != seqs[i] {
				t.Fatalf("%s: event %d seq %v, want %d", id, i, e.Data["seq"], seqs[i])
			}
			if e.Index <= lastIdx {
				t.Fatalf("%s: indexes not increasing: %d after %d", id, e.Index, lastIdx)
			}
			lastIdx = e.Index
		}
	}
	// All streams every event in index order despite eviction.
	var indexes []uint64
	if err := s.All(func(e *Event) error {
		indexes = append(indexes, e.Index)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(indexes) != total {
		t.Fatalf("All streamed %d events, want %d", len(indexes), total)
	}
	for i := 1; i < len(indexes); i++ {
		if indexes[i] != indexes[i-1]+1 {
			t.Fatalf("All order broken at %d: %v", i, indexes[i-1:i+1])
		}
	}
	// A fresh unbounded store over the same journal agrees exactly.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := storage.OpenFileJournal(filepath.Join(dir, "hist"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewStriped([]storage.Journal{j2}, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	for id := range want {
		a, b := len(full.EventsOf(id)), len(want[id])
		if a != b {
			t.Errorf("%s: unbounded store has %d events, want %d", id, a, b)
		}
	}
}

// TestStoreCloseStopsPipeline checks Close is idempotent, drains the
// queue, and that queries still answer from RAM afterwards.
func TestStoreCloseStopsPipeline(t *testing.T) {
	s, err := NewStriped(memJournals(2), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Enqueue(&Event{Type: ElementCompleted, Time: ts(i), InstanceID: "i-1"})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := s.Count(); got != 20 {
		t.Errorf("post-close Count = %d, want 20", got)
	}
	if got := len(s.EventsOf("i-1")); got != 20 {
		t.Errorf("post-close EventsOf = %d, want 20", got)
	}
	// Enqueue after Close must not panic (events are dropped).
	s.Enqueue(&Event{Type: ElementCompleted, Time: ts(99), InstanceID: "i-1"})
	if err := s.Append(&Event{Type: ElementCompleted, Time: ts(99)}); err == nil {
		t.Error("Append after Close should error")
	}
}

// TestSyncModeFlushSurfacesAppendErrors: a failed write-through append
// on the fire-and-forget Enqueue path must still surface via Flush.
func TestSyncModeFlushSurfacesAppendErrors(t *testing.T) {
	j := storage.NewMemJournal()
	s, err := NewStriped([]storage.Journal{j}, StoreOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	s.Enqueue(&Event{Type: ElementCompleted, Time: ts(1), InstanceID: "i-1"})
	if err := s.Flush(); err == nil {
		t.Error("Flush should report the dropped append")
	}
}
