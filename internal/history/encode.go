package history

import (
	"encoding/json"
	"time"
)

// Append-style event encoding: the audit hot path serialises every
// engine transition's events, so the store encodes into reusable
// buffers instead of allocating a fresh one per event the way
// json.Marshal does. The output is plain JSON and decodes with
// DecodeEvent; only the Data map (rare on hot-path events) falls back
// to the reflection encoder.

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal (quoted and
// escaped) to buf.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

func appendStringField(buf []byte, name, value string) []byte {
	if value == "" {
		return buf
	}
	buf = append(buf, ',', '"')
	buf = append(buf, name...)
	buf = append(buf, '"', ':')
	return appendJSONString(buf, value)
}

// AppendEncode appends the event's journal encoding to buf and returns
// the extended buffer. The layout matches Encode (encoding/json with
// omitempty), so existing journals and DecodeEvent read both forms.
func AppendEncode(buf []byte, e *Event) ([]byte, error) {
	buf = append(buf, '{')
	if e.Index != 0 {
		buf = append(buf, `"index":`...)
		buf = appendUint(buf, e.Index)
		buf = append(buf, ',')
	}
	buf = append(buf, `"type":`...)
	buf = appendJSONString(buf, string(e.Type))
	buf = append(buf, `,"time":"`...)
	buf = e.Time.AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, '"')
	buf = appendStringField(buf, "processId", e.ProcessID)
	buf = appendStringField(buf, "instanceId", e.InstanceID)
	buf = appendStringField(buf, "elementId", e.ElementID)
	buf = appendStringField(buf, "element", e.Element)
	buf = appendStringField(buf, "taskId", e.TaskID)
	buf = appendStringField(buf, "actor", e.Actor)
	if len(e.Data) > 0 {
		data, err := json.Marshal(e.Data)
		if err != nil {
			return buf, err
		}
		buf = append(buf, `,"data":`...)
		buf = append(buf, data...)
	}
	return append(buf, '}'), nil
}

func appendUint(buf []byte, n uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}
