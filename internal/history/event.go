// Package history implements the audit-trail subsystem of the BPMS:
// typed events describing everything that happens during process
// execution, an event store layered on the storage journal with
// in-memory query indexes, and an XES-style codec so logs can be
// exchanged with process-mining tooling (internal/mine consumes the
// same trace model).
package history

import (
	"encoding/json"
	"fmt"
	"time"
)

// EventType classifies audit events.
type EventType string

// Audit event types, grouped by subsystem.
const (
	// Definition lifecycle.
	ProcessDeployed EventType = "process.deployed"

	// Instance lifecycle.
	InstanceStarted   EventType = "instance.started"
	InstanceCompleted EventType = "instance.completed"
	InstanceCancelled EventType = "instance.cancelled"
	InstanceFaulted   EventType = "instance.faulted"

	// Element (flow-node) lifecycle.
	ElementActivated EventType = "element.activated"
	ElementCompleted EventType = "element.completed"
	ElementFaulted   EventType = "element.faulted"

	// Human-task lifecycle (mirrors the work-item state machine).
	TaskCreated   EventType = "task.created"
	TaskOffered   EventType = "task.offered"
	TaskAllocated EventType = "task.allocated"
	TaskStarted   EventType = "task.started"
	TaskCompleted EventType = "task.completed"
	TaskFailed    EventType = "task.failed"
	TaskSkipped   EventType = "task.skipped"
	TaskDelegated EventType = "task.delegated"
	TaskEscalated EventType = "task.escalated"

	// Timers and messages.
	TimerScheduled    EventType = "timer.scheduled"
	TimerFired        EventType = "timer.fired"
	TimerCancelled    EventType = "timer.cancelled"
	MessagePublished  EventType = "message.published"
	MessageCorrelated EventType = "message.correlated"
	MessageBuffered   EventType = "message.buffered"

	// Data and incidents.
	VariableSet    EventType = "variable.set"
	IncidentRaised EventType = "incident.raised"

	// SLA audit: emitted once by the audit sweeper when it first
	// detects a violation (overdue work item, lagging timer, or a
	// deployed definition failing soundness re-verification).
	SLAViolation EventType = "sla.violation"
)

// Event is one audit record. Index is assigned by the store on append.
type Event struct {
	Index      uint64         `json:"index,omitempty"`
	Type       EventType      `json:"type"`
	Time       time.Time      `json:"time"`
	ProcessID  string         `json:"processId,omitempty"`
	InstanceID string         `json:"instanceId,omitempty"`
	ElementID  string         `json:"elementId,omitempty"`
	Element    string         `json:"element,omitempty"` // display name
	TaskID     string         `json:"taskId,omitempty"`
	Actor      string         `json:"actor,omitempty"` // user or handler
	Data       map[string]any `json:"data,omitempty"`
}

// Encode serialises the event for journal storage (the append-style
// encoder the store's committers use, starting from a fresh buffer).
func (e *Event) Encode() ([]byte, error) {
	return AppendEncode(nil, e)
}

// DecodeEvent parses an event from its journal payload.
func DecodeEvent(payload []byte) (*Event, error) {
	var e Event
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, fmt.Errorf("history: decode event: %w", err)
	}
	return &e, nil
}

// String renders a compact human-readable form for logs and CLIs.
func (e *Event) String() string {
	s := fmt.Sprintf("[%s] %s", e.Time.Format(time.RFC3339), e.Type)
	if e.InstanceID != "" {
		s += " instance=" + e.InstanceID
	}
	if e.ElementID != "" {
		s += " element=" + e.ElementID
	}
	if e.TaskID != "" {
		s += " task=" + e.TaskID
	}
	if e.Actor != "" {
		s += " actor=" + e.Actor
	}
	return s
}
