package history

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"bpms/internal/storage"
)

func ts(sec int) time.Time {
	return time.Date(2026, 6, 1, 12, 0, sec, 0, time.UTC)
}

func TestEventCodec(t *testing.T) {
	e := &Event{
		Type: TaskCompleted, Time: ts(5), ProcessID: "order",
		InstanceID: "i-1", ElementID: "approve", Element: "Approve order",
		TaskID: "t-9", Actor: "alice",
		Data: map[string]any{"amount": 150.0},
	}
	payload, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEvent(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != e.Type || got.InstanceID != e.InstanceID || got.Actor != "alice" {
		t.Errorf("round trip: %+v", got)
	}
	if got.Data["amount"] != 150.0 {
		t.Errorf("data lost: %v", got.Data)
	}
	if !strings.Contains(e.String(), "task.completed") || !strings.Contains(e.String(), "alice") {
		t.Errorf("String() = %q", e.String())
	}
	if _, err := DecodeEvent([]byte("{broken")); err == nil {
		t.Error("DecodeEvent should fail on bad JSON")
	}
}

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(storage.NewMemJournal())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreAppendAndQuery(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 3; i++ {
		inst := fmt.Sprintf("i-%d", i%2)
		if err := s.Append(&Event{Type: ElementCompleted, Time: ts(i), InstanceID: inst, ElementID: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(&Event{Type: ProcessDeployed, Time: ts(9), ProcessID: "p"}); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.CountByType(ElementCompleted) != 3 {
		t.Errorf("CountByType = %d", s.CountByType(ElementCompleted))
	}
	ids := s.InstanceIDs()
	if len(ids) != 2 || ids[0] != "i-0" || ids[1] != "i-1" {
		t.Errorf("InstanceIDs = %v", ids)
	}
	if evs := s.EventsOf("i-0"); len(evs) != 2 {
		t.Errorf("EventsOf(i-0) = %d events", len(evs))
	}
	var seen []uint64
	if err := s.All(func(e *Event) error { seen = append(seen, e.Index); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 || seen[0] != 1 || seen[3] != 4 {
		t.Errorf("All order = %v", seen)
	}
}

func TestStoreRecoversFromJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := storage.OpenFileJournal(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(j)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Append(&Event{Type: ElementCompleted, Time: ts(i), InstanceID: "i-1", ElementID: fmt.Sprintf("e%d", i)})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := storage.OpenFileJournal(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2, err := NewStore(j2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 10 {
		t.Fatalf("recovered Count = %d, want 10", s2.Count())
	}
	evs := s2.EventsOf("i-1")
	if len(evs) != 10 || evs[9].ElementID != "e9" {
		t.Fatalf("recovered events wrong: %d", len(evs))
	}
}

func sampleLog() *Log {
	return &Log{
		Name: "test",
		Traces: []Trace{
			{CaseID: "c1", Entries: []Entry{
				{Activity: "A", Resource: "alice", Time: ts(1)},
				{Activity: "B", Resource: "bob", Time: ts(2)},
				{Activity: "C", Time: ts(3)},
			}},
			{CaseID: "c2", Entries: []Entry{
				{Activity: "A", Time: ts(4)},
				{Activity: "C", Time: ts(5)},
			}},
			{CaseID: "c3", Entries: []Entry{
				{Activity: "A", Time: ts(6)},
				{Activity: "B", Time: ts(7)},
				{Activity: "C", Time: ts(8)},
			}},
		},
	}
}

func TestXESRoundTrip(t *testing.T) {
	l := sampleLog()
	data, err := EncodeXES(l)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `key="concept:name"`) ||
		!strings.Contains(string(data), `key="time:timestamp"`) {
		t.Errorf("XES missing standard attributes:\n%s", data)
	}
	got, err := DecodeXES(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "test" || len(got.Traces) != 3 {
		t.Fatalf("decoded: name=%q traces=%d", got.Name, len(got.Traces))
	}
	tr := got.Traces[0]
	if tr.CaseID != "c1" || len(tr.Entries) != 3 {
		t.Fatalf("trace 0: %+v", tr)
	}
	if tr.Entries[0].Activity != "A" || tr.Entries[0].Resource != "alice" {
		t.Errorf("entry 0: %+v", tr.Entries[0])
	}
	if !tr.Entries[1].Time.Equal(ts(2)) {
		t.Errorf("timestamp lost: %v", tr.Entries[1].Time)
	}
	if tr.Entries[2].Lifecycle != "complete" {
		t.Errorf("lifecycle = %q", tr.Entries[2].Lifecycle)
	}
}

func TestDecodeXESErrors(t *testing.T) {
	if _, err := DecodeXES([]byte("<log><trace>")); err == nil {
		t.Error("truncated XML should fail")
	}
	bad := `<log xes.version="1.0"><trace><event><date key="time:timestamp" value="not-a-time"/></event></trace></log>`
	if _, err := DecodeXES([]byte(bad)); err == nil {
		t.Error("bad timestamp should fail")
	}
}

func TestVariants(t *testing.T) {
	l := sampleLog()
	vs := l.Variants()
	if len(vs) != 2 {
		t.Fatalf("variants = %d, want 2", len(vs))
	}
	// A,B,C occurs twice; A,C once.
	if vs[0].Count != 2 || len(vs[0].Activities) != 3 {
		t.Errorf("top variant: %+v", vs[0])
	}
	if vs[1].Count != 1 || len(vs[1].Activities) != 2 {
		t.Errorf("second variant: %+v", vs[1])
	}
}

func TestFromEvents(t *testing.T) {
	s := newStore(t)
	add := func(inst, el, name string, sec int, routing bool) {
		e := &Event{Type: ElementCompleted, Time: ts(sec), InstanceID: inst, ElementID: el, Element: name}
		if routing {
			e.Data = map[string]any{"routing": true}
		}
		s.Append(e)
	}
	add("i-1", "a", "Register", 1, false)
	add("i-1", "gw", "", 2, true) // gateway: excluded by default
	add("i-1", "b", "Approve", 3, false)
	add("i-2", "a", "Register", 4, false)
	s.Append(&Event{Type: InstanceStarted, Time: ts(0), InstanceID: "i-1"}) // not a completion

	l := FromEvents(s, false)
	if len(l.Traces) != 2 {
		t.Fatalf("traces = %d", len(l.Traces))
	}
	if len(l.Traces[0].Entries) != 2 || l.Traces[0].Entries[0].Activity != "Register" {
		t.Errorf("trace i-1: %+v", l.Traces[0].Entries)
	}
	// includeAll keeps the gateway.
	l2 := FromEvents(s, true)
	if len(l2.Traces[0].Entries) != 3 {
		t.Errorf("includeAll trace: %+v", l2.Traces[0].Entries)
	}
}
