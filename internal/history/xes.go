package history

import (
	"bufio"
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"time"
)

// Entry is one event of a trace in the mining-facing log model: an
// activity execution with its completion timestamp and resource.
type Entry struct {
	Activity  string
	Resource  string
	Time      time.Time
	Lifecycle string // XES lifecycle:transition; defaults to "complete"
}

// Trace is the ordered event sequence of one case.
type Trace struct {
	CaseID  string
	Entries []Entry
}

// Log is a named collection of traces — the unit of exchange with
// process-mining tools (internal/mine consumes this model directly).
type Log struct {
	Name   string
	Traces []Trace
}

// Variants groups traces by their activity sequence, returning each
// distinct variant with its frequency, most frequent first.
func (l *Log) Variants() []LogVariant {
	byKey := map[string]*LogVariant{}
	for _, t := range l.Traces {
		var key bytes.Buffer
		acts := make([]string, len(t.Entries))
		for i, e := range t.Entries {
			key.WriteString(e.Activity)
			key.WriteByte(0)
			acts[i] = e.Activity
		}
		k := key.String()
		if v, ok := byKey[k]; ok {
			v.Count++
		} else {
			byKey[k] = &LogVariant{Activities: acts, Count: 1}
		}
	}
	out := make([]LogVariant, 0, len(byKey))
	for _, v := range byKey {
		out = append(out, *v)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return fmt.Sprint(out[a].Activities) < fmt.Sprint(out[b].Activities)
	})
	return out
}

// LogVariant is one distinct activity sequence and its frequency.
type LogVariant struct {
	Activities []string
	Count      int
}

// traceOf builds one instance's mining trace from its audit events:
// one entry per completed element, ordered by event index. Pure
// routing nodes (gateways) are included only when includeAll is set.
func traceOf(s *Store, id string, includeAll bool) Trace {
	trace := Trace{CaseID: id}
	for _, e := range s.EventsOf(id) {
		if e.Type != ElementCompleted {
			continue
		}
		if !includeAll && e.Data != nil && e.Data["routing"] == true {
			continue
		}
		name := e.Element
		if name == "" {
			name = e.ElementID
		}
		trace.Entries = append(trace.Entries, Entry{
			Activity:  name,
			Resource:  e.Actor,
			Time:      e.Time,
			Lifecycle: "complete",
		})
	}
	return trace
}

// FromEvents builds a mining log from a history store: one trace per
// instance with at least one qualifying completion (see traceOf).
func FromEvents(s *Store, includeAll bool) *Log {
	log := &Log{Name: "bpms-history"}
	for _, id := range s.InstanceIDs() {
		if trace := traceOf(s, id, includeAll); len(trace.Entries) > 0 {
			log.Traces = append(log.Traces, trace)
		}
	}
	return log
}

// XES serialisation. The schema follows the IEEE XES layout with the
// standard concept, time, org, and lifecycle extensions.

type xesAttr struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

type xesEvent struct {
	Strings []xesAttr `xml:"string"`
	Dates   []xesAttr `xml:"date"`
}

type xesTrace struct {
	Strings []xesAttr  `xml:"string"`
	Events  []xesEvent `xml:"event"`
}

type xesLog struct {
	XMLName xml.Name   `xml:"log"`
	Version string     `xml:"xes.version,attr"`
	Strings []xesAttr  `xml:"string"`
	Traces  []xesTrace `xml:"trace"`
}

func attr(attrs []xesAttr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// xesTraceOf converts one trace to its XES form (the per-trace unit
// the streaming writer encodes).
func xesTraceOf(t *Trace) xesTrace {
	xt := xesTrace{Strings: []xesAttr{{Key: "concept:name", Value: t.CaseID}}}
	for _, e := range t.Entries {
		xe := xesEvent{
			Strings: []xesAttr{{Key: "concept:name", Value: e.Activity}},
		}
		lc := e.Lifecycle
		if lc == "" {
			lc = "complete"
		}
		xe.Strings = append(xe.Strings, xesAttr{Key: "lifecycle:transition", Value: lc})
		if e.Resource != "" {
			xe.Strings = append(xe.Strings, xesAttr{Key: "org:resource", Value: e.Resource})
		}
		if !e.Time.IsZero() {
			xe.Dates = append(xe.Dates, xesAttr{Key: "time:timestamp", Value: e.Time.Format(time.RFC3339Nano)})
		}
		xt.Events = append(xt.Events, xe)
	}
	return xt
}

// writeXESDoc streams an XES document to w: header, log element, the
// name attribute, then every trace the source yields through emit —
// one trace is in memory at a time.
func writeXESDoc(w io.Writer, name string, traces func(emit func(*Trace) error) error) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(bw)
	enc.Indent("", "  ")
	logStart := xml.StartElement{
		Name: xml.Name{Local: "log"},
		Attr: []xml.Attr{{Name: xml.Name{Local: "xes.version"}, Value: "1.0"}},
	}
	if err := enc.EncodeToken(logStart); err != nil {
		return fmt.Errorf("history: encode xes: %w", err)
	}
	if name != "" {
		attr := xesAttr{Key: "concept:name", Value: name}
		if err := enc.EncodeElement(attr, xml.StartElement{Name: xml.Name{Local: "string"}}); err != nil {
			return fmt.Errorf("history: encode xes: %w", err)
		}
	}
	err := traces(func(t *Trace) error {
		if err := enc.EncodeElement(xesTraceOf(t), xml.StartElement{Name: xml.Name{Local: "trace"}}); err != nil {
			return fmt.Errorf("history: encode xes: %w", err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := enc.EncodeToken(logStart.End()); err != nil {
		return fmt.Errorf("history: encode xes: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteXES streams an in-memory log as XES XML to w, encoding one
// trace at a time.
func WriteXES(w io.Writer, l *Log) error {
	return writeXESDoc(w, l.Name, func(emit func(*Trace) error) error {
		for i := range l.Traces {
			if err := emit(&l.Traces[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// StreamXES exports a history store as XES XML without ever holding
// the whole log in memory: traces are built instance by instance
// (evicted ranges replay from the stripe journals) and encoded
// straight onto w. This is the export path behind /api/history/xes.
func StreamXES(w io.Writer, s *Store, includeAll bool) error {
	return writeXESDoc(w, "bpms-history", func(emit func(*Trace) error) error {
		for _, id := range s.InstanceIDs() {
			trace := traceOf(s, id, includeAll)
			if len(trace.Entries) == 0 {
				continue
			}
			if err := emit(&trace); err != nil {
				return err
			}
		}
		return nil
	})
}

// EncodeXES serialises the log as XES XML in memory (WriteXES is the
// streaming form).
func EncodeXES(l *Log) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteXES(&buf, l); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeXES parses an XES XML document into the log model.
func DecodeXES(data []byte) (*Log, error) {
	var x xesLog
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("history: decode xes: %w", err)
	}
	l := &Log{Name: attr(x.Strings, "concept:name")}
	for ti, xt := range x.Traces {
		t := Trace{CaseID: attr(xt.Strings, "concept:name")}
		if t.CaseID == "" {
			t.CaseID = fmt.Sprintf("case-%d", ti+1)
		}
		for _, xe := range xt.Events {
			e := Entry{
				Activity:  attr(xe.Strings, "concept:name"),
				Resource:  attr(xe.Strings, "org:resource"),
				Lifecycle: attr(xe.Strings, "lifecycle:transition"),
			}
			if ts := attr(xe.Dates, "time:timestamp"); ts != "" {
				parsed, err := time.Parse(time.RFC3339Nano, ts)
				if err != nil {
					return nil, fmt.Errorf("history: bad timestamp %q: %w", ts, err)
				}
				e.Time = parsed
			}
			t.Entries = append(t.Entries, e)
		}
		l.Traces = append(l.Traces, t)
	}
	return l, nil
}
