package history

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"sort"
	"time"
)

// Entry is one event of a trace in the mining-facing log model: an
// activity execution with its completion timestamp and resource.
type Entry struct {
	Activity  string
	Resource  string
	Time      time.Time
	Lifecycle string // XES lifecycle:transition; defaults to "complete"
}

// Trace is the ordered event sequence of one case.
type Trace struct {
	CaseID  string
	Entries []Entry
}

// Log is a named collection of traces — the unit of exchange with
// process-mining tools (internal/mine consumes this model directly).
type Log struct {
	Name   string
	Traces []Trace
}

// Variants groups traces by their activity sequence, returning each
// distinct variant with its frequency, most frequent first.
func (l *Log) Variants() []LogVariant {
	byKey := map[string]*LogVariant{}
	for _, t := range l.Traces {
		var key bytes.Buffer
		acts := make([]string, len(t.Entries))
		for i, e := range t.Entries {
			key.WriteString(e.Activity)
			key.WriteByte(0)
			acts[i] = e.Activity
		}
		k := key.String()
		if v, ok := byKey[k]; ok {
			v.Count++
		} else {
			byKey[k] = &LogVariant{Activities: acts, Count: 1}
		}
	}
	out := make([]LogVariant, 0, len(byKey))
	for _, v := range byKey {
		out = append(out, *v)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return fmt.Sprint(out[a].Activities) < fmt.Sprint(out[b].Activities)
	})
	return out
}

// LogVariant is one distinct activity sequence and its frequency.
type LogVariant struct {
	Activities []string
	Count      int
}

// FromEvents builds a mining log from a history store: one trace per
// instance, one entry per completed element, ordered by event index.
// Pure routing nodes (gateways) are included only when includeAll is
// set; by default only task/event completions carrying a display name
// or element ID appear.
func FromEvents(s *Store, includeAll bool) *Log {
	log := &Log{Name: "bpms-history"}
	for _, id := range s.InstanceIDs() {
		trace := Trace{CaseID: id}
		for _, e := range s.EventsOf(id) {
			if e.Type != ElementCompleted {
				continue
			}
			if !includeAll && e.Data != nil && e.Data["routing"] == true {
				continue
			}
			name := e.Element
			if name == "" {
				name = e.ElementID
			}
			trace.Entries = append(trace.Entries, Entry{
				Activity:  name,
				Resource:  e.Actor,
				Time:      e.Time,
				Lifecycle: "complete",
			})
		}
		if len(trace.Entries) > 0 {
			log.Traces = append(log.Traces, trace)
		}
	}
	return log
}

// XES serialisation. The schema follows the IEEE XES layout with the
// standard concept, time, org, and lifecycle extensions.

type xesAttr struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

type xesEvent struct {
	Strings []xesAttr `xml:"string"`
	Dates   []xesAttr `xml:"date"`
}

type xesTrace struct {
	Strings []xesAttr  `xml:"string"`
	Events  []xesEvent `xml:"event"`
}

type xesLog struct {
	XMLName xml.Name   `xml:"log"`
	Version string     `xml:"xes.version,attr"`
	Strings []xesAttr  `xml:"string"`
	Traces  []xesTrace `xml:"trace"`
}

func attr(attrs []xesAttr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// EncodeXES serialises the log as XES XML.
func EncodeXES(l *Log) ([]byte, error) {
	x := xesLog{Version: "1.0"}
	if l.Name != "" {
		x.Strings = append(x.Strings, xesAttr{Key: "concept:name", Value: l.Name})
	}
	for _, t := range l.Traces {
		xt := xesTrace{Strings: []xesAttr{{Key: "concept:name", Value: t.CaseID}}}
		for _, e := range t.Entries {
			xe := xesEvent{
				Strings: []xesAttr{{Key: "concept:name", Value: e.Activity}},
			}
			lc := e.Lifecycle
			if lc == "" {
				lc = "complete"
			}
			xe.Strings = append(xe.Strings, xesAttr{Key: "lifecycle:transition", Value: lc})
			if e.Resource != "" {
				xe.Strings = append(xe.Strings, xesAttr{Key: "org:resource", Value: e.Resource})
			}
			if !e.Time.IsZero() {
				xe.Dates = append(xe.Dates, xesAttr{Key: "time:timestamp", Value: e.Time.Format(time.RFC3339Nano)})
			}
			xt.Events = append(xt.Events, xe)
		}
		x.Traces = append(x.Traces, xt)
	}
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return nil, fmt.Errorf("history: encode xes: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// DecodeXES parses an XES XML document into the log model.
func DecodeXES(data []byte) (*Log, error) {
	var x xesLog
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("history: decode xes: %w", err)
	}
	l := &Log{Name: attr(x.Strings, "concept:name")}
	for ti, xt := range x.Traces {
		t := Trace{CaseID: attr(xt.Strings, "concept:name")}
		if t.CaseID == "" {
			t.CaseID = fmt.Sprintf("case-%d", ti+1)
		}
		for _, xe := range xt.Events {
			e := Entry{
				Activity:  attr(xe.Strings, "concept:name"),
				Resource:  attr(xe.Strings, "org:resource"),
				Lifecycle: attr(xe.Strings, "lifecycle:transition"),
			}
			if ts := attr(xe.Dates, "time:timestamp"); ts != "" {
				parsed, err := time.Parse(time.RFC3339Nano, ts)
				if err != nil {
					return nil, fmt.Errorf("history: bad timestamp %q: %w", ts, err)
				}
				e.Time = parsed
			}
			t.Entries = append(t.Entries, e)
		}
		l.Traces = append(l.Traces, t)
	}
	return l, nil
}
