package expr

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestTaggedJSONRoundTrip(t *testing.T) {
	values := []Value{
		Null,
		True,
		False,
		Int(0),
		Int(-42),
		Int(1<<62 + 7), // beyond float64 precision: must survive
		Float(2.5),
		Float(-0.125),
		String(""),
		String("hello \"world\"\nwith escapes"),
		List(),
		List(Int(1), String("two"), List(Float(3))),
		Map(map[string]Value{"a": Int(1), "nested": Map(map[string]Value{"b": Null})}),
	}
	for _, v := range values {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !back.Equal(v) {
			t.Errorf("round trip %v -> %s -> %v", v, data, back)
		}
		// Kinds must be preserved exactly (Int stays Int).
		if back.Kind() != v.Kind() {
			t.Errorf("kind changed: %v -> %v", v.Kind(), back.Kind())
		}
	}
}

func TestTaggedJSONIntPrecision(t *testing.T) {
	// Plain JSON would collapse this to a float64 and lose precision.
	big := Int(9007199254740993) // 2^53 + 1
	data, _ := json.Marshal(big)
	var back Value
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	i, ok := back.AsInt()
	if !ok || i != 9007199254740993 {
		t.Errorf("big int lost: %v", back)
	}
}

func TestTaggedJSONErrors(t *testing.T) {
	bad := []string{
		`{"t":"zzz"}`,
		`{"t":"i","v":"not-a-number"}`,
		`{"t":"b","v":"yes"}`,
		`[1,2]`,
	}
	for _, src := range bad {
		var v Value
		if err := json.Unmarshal([]byte(src), &v); err == nil {
			t.Errorf("Unmarshal(%s) should fail", src)
		}
	}
}

func TestTaggedJSONInStructs(t *testing.T) {
	type box struct {
		Vars map[string]Value `json:"vars"`
	}
	in := box{Vars: map[string]Value{"n": Int(5), "s": String("x")}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out box
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Vars["n"].Equal(Int(5)) || !out.Vars["s"].Equal(String("x")) {
		t.Errorf("struct round trip: %v", out.Vars)
	}
}

// Property: arbitrary scalar values round-trip through the tagged
// codec with kind and content preserved.
func TestQuickTaggedJSONRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		for _, v := range []Value{Int(i), Float(fl), String(s), Bool(b),
			List(Int(i), String(s)), Map(map[string]Value{"k": Float(fl)})} {
			data, err := json.Marshal(v)
			if err != nil {
				return false
			}
			var back Value
			if err := json.Unmarshal(data, &back); err != nil {
				return false
			}
			if back.Kind() != v.Kind() {
				return false
			}
			// NaN never equals itself; compare via representation.
			if !back.Equal(v) && v.String() != back.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
