package expr

// Predicate extraction: the analysis API behind the decision-table
// indexer (internal/rules). A compiled condition like
//
//	region == "EU" && amount >= 1000 && amount < 10000
//
// decomposes into atomic predicates of the form `var op literal`,
// which the rules planner turns into hash and interval indexes so a
// 10k-rule table is probed instead of scanned. Extraction is purely
// syntactic — it never changes what an expression means, it only
// reports when the meaning is simple enough to index.

// PredKind classifies an extracted atom.
type PredKind int

// Predicate kinds.
const (
	// PredOpaque marks a condition (or conjunct) that is not an
	// indexable comparison; callers must evaluate it directly.
	PredOpaque PredKind = iota
	// PredEq is `var == literal` (either operand order) or
	// `var in [literal, ...]`: the variable must equal one of Values.
	PredEq
	// PredRange is `var <op> literal` with an ordering operator,
	// normalized so the variable is on the left: Var Op Bound.
	PredRange
)

// RangeOp is the normalized comparison operator of a PredRange atom.
type RangeOp int

// Range operators (variable on the left).
const (
	RangeLT RangeOp = iota // var <  bound
	RangeLE                // var <= bound
	RangeGT                // var >  bound
	RangeGE                // var >= bound
)

// String renders the operator.
func (o RangeOp) String() string {
	switch o {
	case RangeLT:
		return "<"
	case RangeLE:
		return "<="
	case RangeGT:
		return ">"
	case RangeGE:
		return ">="
	}
	return "?"
}

// Predicate is one atomic comparison between a single variable and
// literal values, extracted from a condition AST.
type Predicate struct {
	Kind PredKind
	// Var is the variable (input column) the atom constrains.
	Var string
	// Values holds the allowed literals of a PredEq atom: one value
	// for `==`, the list elements for `in`. Satisfied when the
	// variable equals (Value.Equal) any of them; an empty set (from
	// `var in []`) is never satisfied.
	Values []Value
	// Op and Bound describe a PredRange atom: Var Op Bound.
	Op    RangeOp
	Bound Value
}

// Predicates decomposes the program into indexable atoms. The root
// may be a chain of `&&` conjunctions; each conjunct must be an
// equality (`var == lit`, `lit == var`, `var in [lits...]`) or an
// ordering comparison against a number or string literal (either
// operand order; `lit < var` is normalized to `var > lit`). The
// program is equivalent to the conjunction of the returned atoms
// whenever every atom evaluates without error — which holds exactly
// when each Var is bound and, for PredRange atoms, the bound value's
// class (numeric or string) matches the variable's; callers must
// check those conditions before trusting the decomposition.
//
// A nil result means the program is opaque (at least one conjunct is
// not an indexable atom) and must be evaluated directly.
func (p *Program) Predicates() []Predicate {
	var atoms []Predicate
	if !collectAtoms(p.root, &atoms) {
		return nil
	}
	return atoms
}

func collectAtoms(n Node, out *[]Predicate) bool {
	b, ok := n.(*binaryNode)
	if !ok {
		return false
	}
	if b.op == tokAnd {
		return collectAtoms(b.x, out) && collectAtoms(b.y, out)
	}
	pred, ok := classifyAtom(b)
	if !ok {
		return false
	}
	*out = append(*out, pred)
	return true
}

func classifyAtom(b *binaryNode) (Predicate, bool) {
	switch b.op {
	case tokEq:
		if name, ok := identName(b.x); ok {
			if lit, ok := literalValue(b.y); ok {
				return Predicate{Kind: PredEq, Var: name, Values: []Value{lit}}, true
			}
		}
		if lit, ok := literalValue(b.x); ok {
			if name, ok := identName(b.y); ok {
				return Predicate{Kind: PredEq, Var: name, Values: []Value{lit}}, true
			}
		}
	case tokLt, tokLte, tokGt, tokGte:
		if name, ok := identName(b.x); ok {
			if lit, ok := literalValue(b.y); ok && orderableLiteral(lit) {
				return Predicate{Kind: PredRange, Var: name, Op: rangeOpOf(b.op), Bound: lit}, true
			}
		}
		if lit, ok := literalValue(b.x); ok && orderableLiteral(lit) {
			if name, ok := identName(b.y); ok {
				return Predicate{Kind: PredRange, Var: name, Op: rangeOpOf(b.op).flip(), Bound: lit}, true
			}
		}
	case tokIn:
		name, ok := identName(b.x)
		if !ok {
			break
		}
		l, ok := b.y.(*listNode)
		if !ok {
			break
		}
		vals := make([]Value, 0, len(l.elems))
		for _, e := range l.elems {
			lit, ok := literalValue(e)
			if !ok {
				return Predicate{}, false
			}
			vals = append(vals, lit)
		}
		return Predicate{Kind: PredEq, Var: name, Values: vals}, true
	}
	return Predicate{}, false
}

func identName(n Node) (string, bool) {
	id, ok := n.(*identNode)
	if !ok {
		return "", false
	}
	return id.name, true
}

// literalValue returns the constant value of a scalar literal node,
// accepting a negated numeric literal (`-3`, `-1.5`).
func literalValue(n Node) (Value, bool) {
	switch t := n.(type) {
	case *litNode:
		return t.v, true
	case *unaryNode:
		if t.op != tokMinus {
			return Null, false
		}
		lit, ok := t.x.(*litNode)
		if !ok {
			return Null, false
		}
		switch lit.v.Kind() {
		case KindInt:
			i, _ := lit.v.AsInt()
			return Int(-i), true
		case KindFloat:
			f, _ := lit.v.AsFloat()
			return Float(-f), true
		}
	}
	return Null, false
}

// orderableLiteral reports whether the literal can appear on the
// right of an ordering comparison without the comparison being a
// guaranteed type error (Value.Compare orders numbers with numbers
// and strings with strings only).
func orderableLiteral(v Value) bool {
	switch v.Kind() {
	case KindInt, KindFloat, KindString:
		return true
	}
	return false
}

func rangeOpOf(k tokenKind) RangeOp {
	switch k {
	case tokLt:
		return RangeLT
	case tokLte:
		return RangeLE
	case tokGt:
		return RangeGT
	default:
		return RangeGE
	}
}

// flip mirrors the operator across the comparison (`lit < var` is
// `var > lit`).
func (o RangeOp) flip() RangeOp {
	switch o {
	case RangeLT:
		return RangeGT
	case RangeLE:
		return RangeGE
	case RangeGT:
		return RangeLT
	default:
		return RangeLE
	}
}
