package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustEval(t *testing.T, src string, env Env) Value {
	t.Helper()
	v, err := Eval(src, env)
	if err != nil {
		t.Fatalf("Eval(%q) error: %v", src, err)
	}
	return v
}

func TestEvalLiterals(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{"1", Int(1)},
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"3.5", Float(3.5)},
		{"1e3", Float(1000)},
		{"2.5e-1", Float(0.25)},
		{`"hello"`, String("hello")},
		{`'world'`, String("world")},
		{`"a\nb"`, String("a\nb")},
		{`"A"`, String("A")},
		{"true", True},
		{"false", False},
		{"null", Null},
		{"nil", Null},
		{"[1, 2, 3]", List(Int(1), Int(2), Int(3))},
		{"[]", List()},
		{`{"a": 1, b: 2}`, Map(map[string]Value{"a": Int(1), "b": Int(2)})},
		{"{}", Map(map[string]Value{})},
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, EmptyEnv)
		if !got.Equal(tt.want) {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalArithmetic(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{"1 + 2", Int(3)},
		{"10 - 4", Int(6)},
		{"6 * 7", Int(42)},
		{"7 / 2", Int(3)},
		{"7 % 3", Int(1)},
		{"7.0 / 2", Float(3.5)},
		{"1 + 2 * 3", Int(7)},
		{"(1 + 2) * 3", Int(9)},
		{"2 * 3 + 4 * 5", Int(26)},
		{"-3 + 5", Int(2)},
		{"-(3 + 5)", Int(-8)},
		{"1.5 + 2", Float(3.5)},
		{"10 % 4.5", Float(1)},
		{`"foo" + "bar"`, String("foobar")},
		{"[1] + [2, 3]", List(Int(1), Int(2), Int(3))},
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, EmptyEnv)
		if !got.Equal(tt.want) {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalComparisons(t *testing.T) {
	tests := []struct {
		src  string
		want bool
	}{
		{"1 < 2", true},
		{"2 < 1", false},
		{"2 <= 2", true},
		{"3 > 2", true},
		{"3 >= 4", false},
		{"1 == 1", true},
		{"1 == 1.0", true},
		{"1 != 2", true},
		{`"a" < "b"`, true},
		{`"abc" == "abc"`, true},
		{"true == true", true},
		{"null == null", true},
		{"1 == null", false},
		{"[1,2] == [1,2]", true},
		{"[1,2] == [2,1]", false},
		{`{"a":1} == {"a":1}`, true},
		{`{"a":1} == {"a":2}`, false},
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, EmptyEnv)
		if b, _ := got.AsBool(); b != tt.want {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalLogical(t *testing.T) {
	tests := []struct {
		src  string
		want bool
	}{
		{"true && true", true},
		{"true && false", false},
		{"false || true", true},
		{"false || false", false},
		{"!true", false},
		{"!false", true},
		{"not false", true},
		{"true and true", true},
		{"false or true", true},
		{"1 < 2 && 2 < 3", true},
		{"1 < 2 || boom()", true},  // short-circuit: boom is never called
		{"1 > 2 && boom()", false}, // short-circuit
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, EmptyEnv)
		if b, _ := got.AsBool(); b != tt.want {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalConditional(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{"true ? 1 : 2", Int(1)},
		{"false ? 1 : 2", Int(2)},
		{`1 < 2 ? "yes" : "no"`, String("yes")},
		{"false ? 1 : false ? 2 : 3", Int(3)},
		{"true ? false ? 1 : 2 : 3", Int(2)},
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, EmptyEnv)
		if !got.Equal(tt.want) {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalMembership(t *testing.T) {
	env := MapEnv{
		"status": String("approved"),
		"tags":   List(String("vip"), String("eu")),
		"data":   Map(map[string]Value{"amount": Int(500)}),
	}
	tests := []struct {
		src  string
		want bool
	}{
		{`status in ["approved", "rejected"]`, true},
		{`"pending" in ["approved", "rejected"]`, false},
		{`"vip" in tags`, true},
		{`"amount" in data`, true},
		{`"missing" in data`, false},
		{`"rov" in "approved"`, true},
		{`"xyz" in "approved"`, false},
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, env)
		if b, _ := got.AsBool(); b != tt.want {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalVariablesAndAccess(t *testing.T) {
	env := MapEnv{
		"amount": Int(1500),
		"order": Map(map[string]Value{
			"items":    List(Int(10), Int(20), Int(30)),
			"customer": Map(map[string]Value{"name": String("ada")}),
		}),
	}
	tests := []struct {
		src  string
		want Value
	}{
		{"amount", Int(1500)},
		{"amount * 2", Int(3000)},
		{"order.items[0]", Int(10)},
		{"order.items[-1]", Int(30)},
		{"order.customer.name", String("ada")},
		{`order["items"][1]`, Int(20)},
		{"order.missing", Null},
		{`"abc"[1]`, String("b")},
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, env)
		if !got.Equal(tt.want) {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalFunctions(t *testing.T) {
	env := MapEnv{"xs": List(Int(4), Int(1), Int(9))}
	tests := []struct {
		src  string
		want Value
	}{
		{`len("hello")`, Int(5)},
		{"len(xs)", Int(3)},
		{"len({})", Int(0)},
		{"empty([])", True},
		{"empty(xs)", False},
		{"defined(null)", False},
		{"defined(1)", True},
		{`contains("hello", "ell")`, True},
		{`startsWith("hello", "he")`, True},
		{`endsWith("hello", "lo")`, True},
		{`upper("abc")`, String("ABC")},
		{`lower("ABC")`, String("abc")},
		{`trim("  x  ")`, String("x")},
		{`split("a,b,c", ",")`, List(String("a"), String("b"), String("c"))},
		{`join(["a","b"], "-")`, String("a-b")},
		{"abs(-5)", Int(5)},
		{"abs(-5.5)", Float(5.5)},
		{"min(3, 1, 2)", Int(1)},
		{"max(xs)", Int(9)},
		{"sum(xs)", Int(14)},
		{"sum(1.5, 2.5)", Float(4)},
		{"avg([2, 4])", Float(3)},
		{"floor(3.7)", Int(3)},
		{"ceil(3.2)", Int(4)},
		{"round(3.5)", Int(4)},
		{`int("42")`, Int(42)},
		{"int(3.9)", Int(3)},
		{"int(true)", Int(1)},
		{`float("2.5")`, Float(2.5)},
		{"str(42)", String("42")},
		{`coalesce(null, null, 3)`, Int(3)},
		{`coalesce(null, "x", "y")`, String("x")},
	}
	for _, tt := range tests {
		got := mustEval(t, tt.src, env)
		if !got.Equal(tt.want) {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	tests := []struct {
		src     string
		env     Env
		wantSub string
	}{
		{"1 / 0", EmptyEnv, "division by zero"},
		{"1 % 0", EmptyEnv, "modulo by zero"},
		{"1.0 / 0.0", EmptyEnv, "division by zero"},
		{"missing + 1", EmptyEnv, "unbound variable"},
		{"boom()", EmptyEnv, "unknown function"},
		{`1 + "a"`, EmptyEnv, "arithmetic requires numbers"},
		{`1 < "a"`, EmptyEnv, "cannot order"},
		{"-true", EmptyEnv, "cannot negate"},
		{"[1,2][5]", EmptyEnv, "out of range"},
		{"[1,2][true]", EmptyEnv, "index must be an int"},
		{"(1).x", EmptyEnv, "cannot access member"},
		{"1 in 2", EmptyEnv, "'in' requires"},
		{"len()", EmptyEnv, "want 1 argument"},
		{"avg([])", EmptyEnv, "avg of empty"},
		{`int("zzz")`, EmptyEnv, "cannot parse"},
	}
	for _, tt := range tests {
		_, err := Eval(tt.src, tt.env)
		if err == nil {
			t.Errorf("Eval(%q): want error containing %q, got nil", tt.src, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("Eval(%q) error = %q, want substring %q", tt.src, err, tt.wantSub)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "[1, 2", `{"a": }`, `"unterminated`,
		"1 ? 2", "a..b", "@", "1 2", "foo(1,", "{1: 2}", "3(4)",
		`"bad \q escape"`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q): want syntax error, got nil", src)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("Compile(%q): error is %T, want *SyntaxError", src, err)
		}
	}
}

func TestProgramVars(t *testing.T) {
	p := MustCompile(`amount > limit && status in allowed && len(items) > 0`)
	got := p.Vars()
	want := []string{"allowed", "amount", "items", "limit", "status"}
	if len(got) != len(want) {
		t.Fatalf("Vars() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars() = %v, want %v", got, want)
		}
	}
}

func TestProgramReprRoundTrip(t *testing.T) {
	srcs := []string{
		"1 + 2 * 3",
		"a && b || !c",
		`x in [1, 2, 3] ? "in" : "out"`,
		"order.items[0] + len(xs)",
		`{"k": 1, "j": [true, null]}`,
		"min(1, 2) + max([3, 4])",
	}
	env := MapEnv{
		"a": True, "b": False, "c": True, "x": Int(2),
		"order": Map(map[string]Value{"items": List(Int(7))}),
		"xs":    List(Int(1), Int(2)),
	}
	for _, src := range srcs {
		p1 := MustCompile(src)
		p2, err := Compile(p1.String())
		if err != nil {
			t.Fatalf("re-Compile(%q) from %q: %v", p1.String(), src, err)
		}
		v1, err1 := p1.Eval(env)
		v2, err2 := p2.Eval(env)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval error: %v / %v", err1, err2)
		}
		if !v1.Equal(v2) {
			t.Errorf("round-trip of %q: %v != %v", src, v1, v2)
		}
	}
}

func TestEvalBool(t *testing.T) {
	tests := []struct {
		src  string
		env  Env
		want bool
	}{
		{"amount > 100", MapEnv{"amount": Int(500)}, true},
		{"amount > 100", MapEnv{"amount": Int(50)}, false},
		{`"x"`, EmptyEnv, true},
		{`""`, EmptyEnv, false},
		{"0", EmptyEnv, false},
		{"null", EmptyEnv, false},
		{"[0]", EmptyEnv, true},
	}
	for _, tt := range tests {
		p := MustCompile(tt.src)
		got, err := p.EvalBool(tt.env)
		if err != nil {
			t.Fatalf("EvalBool(%q): %v", tt.src, err)
		}
		if got != tt.want {
			t.Errorf("EvalBool(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Int(5), "5"},
		{Float(2.5), "2.5"},
		{Float(3), "3.0"},
		{String("hi"), `"hi"`},
		{True, "true"},
		{Null, "null"},
		{List(Int(1), String("a")), `[1, "a"]`},
		{Map(map[string]Value{"b": Int(2), "a": Int(1)}), `{"a": 1, "b": 2}`},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestFromGoToGo(t *testing.T) {
	in := map[string]any{
		"n":    int(3),
		"f":    2.5,
		"s":    "x",
		"b":    true,
		"nil":  nil,
		"list": []any{int64(1), "two"},
	}
	v, err := FromGo(in)
	if err != nil {
		t.Fatalf("FromGo: %v", err)
	}
	out, ok := v.ToGo().(map[string]any)
	if !ok {
		t.Fatalf("ToGo() is %T, want map", v.ToGo())
	}
	if out["n"] != int64(3) || out["f"] != 2.5 || out["s"] != "x" || out["b"] != true || out["nil"] != nil {
		t.Errorf("round trip mismatch: %#v", out)
	}
	if _, err := FromGo(struct{}{}); err == nil {
		t.Error("FromGo(struct{}{}) should fail")
	}
}

func TestFuncSetExtend(t *testing.T) {
	custom := DefaultFuncs.Extend(map[string]Func{
		"double": func(args []Value) (Value, error) {
			if err := arity(args, 1); err != nil {
				return Null, err
			}
			i, _ := args[0].AsInt()
			return Int(2 * i), nil
		},
	})
	p, err := CompileWith("double(21)", custom)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Eval(EmptyEnv)
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt(); i != 42 {
		t.Errorf("double(21) = %v, want 42", v)
	}
	// Base set must be unchanged.
	if _, err := Eval("double(1)", EmptyEnv); err == nil {
		t.Error("DefaultFuncs should not know double")
	}
	names := custom.Names()
	found := false
	for _, n := range names {
		if n == "double" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v, missing double", names)
	}
}

// Property: integer arithmetic in the language matches Go semantics.
func TestQuickIntArithmetic(t *testing.T) {
	f := func(a, b int32) bool {
		env := MapEnv{"a": Int(int64(a)), "b": Int(int64(b))}
		v := mustEval(t, "a + b * 2 - (a - b)", env)
		want := int64(a) + int64(b)*2 - (int64(a) - int64(b))
		got, _ := v.AsInt()
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparison operators are consistent with Go ordering.
func TestQuickComparisons(t *testing.T) {
	f := func(a, b int16) bool {
		env := MapEnv{"a": Int(int64(a)), "b": Int(int64(b))}
		lt := mustEval(t, "a < b", env).Truthy()
		gt := mustEval(t, "a > b", env).Truthy()
		eq := mustEval(t, "a == b", env).Truthy()
		// Exactly one of lt/gt/eq holds.
		n := 0
		for _, x := range []bool{lt, gt, eq} {
			if x {
				n++
			}
		}
		return n == 1 && lt == (a < b) && gt == (a > b) && eq == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Value.String() of scalar values re-parses and compares equal.
func TestQuickValueStringRoundTrip(t *testing.T) {
	f := func(i int64, s string, b bool) bool {
		for _, v := range []Value{Int(i), String(s), Bool(b)} {
			got, err := Eval(v.String(), EmptyEnv)
			if err != nil || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal is reflexive and symmetric over generated values.
func TestQuickEqualReflexiveSymmetric(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		vs := []Value{Int(a), Int(b), String(s1), String(s2),
			List(Int(a), String(s1)), Map(map[string]Value{"k": Int(b)})}
		for _, x := range vs {
			if !x.Equal(x) {
				return false
			}
			for _, y := range vs {
				if x.Equal(y) != y.Equal(x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentEval(t *testing.T) {
	p := MustCompile("a * 2 + len(s)")
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			env := MapEnv{"a": Int(int64(g)), "s": String("xx")}
			for i := 0; i < 200; i++ {
				v, err := p.Eval(env)
				if err != nil {
					t.Error(err)
					break
				}
				if got, _ := v.AsInt(); got != int64(g)*2+2 {
					t.Errorf("got %d", got)
					break
				}
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
