package expr

import "sync"

// Cache is a bounded, concurrency-safe source → *Program cache. It
// backs evaluation of ad-hoc expression sources (API-submitted
// conditions, simulation workloads, benchmark generators) so that a
// source string is lexed and parsed at most once while it stays
// resident. Deployed process definitions do not go through the cache:
// they retain their programs directly (model.Process.Compile).
//
// Eviction is FIFO over insertion order: when the cache is full the
// oldest entry is discarded. Programs are immutable, so an evicted
// program remains valid for holders that already obtained it.
type Cache struct {
	mu    sync.RWMutex
	max   int
	funcs *FuncSet
	bySrc map[string]*Program
	order []string // insertion order, oldest first
}

// DefaultCacheSize bounds the package-level cache used by Cached.
const DefaultCacheSize = 4096

// NewCache returns a Cache holding at most max programs, compiled
// against the default function set. max <= 0 selects DefaultCacheSize.
func NewCache(max int) *Cache {
	return NewCacheWith(max, DefaultFuncs)
}

// NewCacheWith is NewCache with an explicit function set.
func NewCacheWith(max int, funcs *FuncSet) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{max: max, funcs: funcs, bySrc: make(map[string]*Program)}
}

// Get returns the compiled program for src, compiling and inserting it
// on a miss. Compile errors are not cached: a bad source is re-parsed
// on every call, which keeps error reporting exact and the cache free
// of negative entries.
func (c *Cache) Get(src string) (*Program, error) {
	c.mu.RLock()
	p, ok := c.bySrc[src]
	c.mu.RUnlock()
	if ok {
		return p, nil
	}
	// Compile outside the lock: parsing is pure and racing compilers
	// at worst duplicate work for one source.
	p, err := CompileWith(src, c.funcs)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.bySrc[src]; ok {
		return prev, nil // another goroutine won the race
	}
	for len(c.bySrc) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.bySrc, oldest)
	}
	c.bySrc[src] = p
	c.order = append(c.order, src)
	return p, nil
}

// Len reports the number of resident programs.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.bySrc)
}

// defaultCache backs Cached.
var defaultCache = NewCache(DefaultCacheSize)

// Cached compiles src through the package-level program cache. It is
// the compile-once entry point for ad-hoc sources; deployed process
// models should precompile via model.Process.Compile instead.
func Cached(src string) (*Program, error) {
	return defaultCache.Get(src)
}

// EvalCached evaluates src against env using the package-level cache,
// replacing compile-per-call uses of Eval on hot paths.
func EvalCached(src string, env Env) (Value, error) {
	p, err := Cached(src)
	if err != nil {
		return Null, err
	}
	return p.Eval(env)
}
