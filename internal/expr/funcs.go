package expr

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Func is a built-in function callable from expressions. Functions must
// be pure: same arguments, same result, no side effects.
type Func func(args []Value) (Value, error)

// FuncSet is a named collection of functions. A FuncSet is immutable
// after construction and safe for concurrent use by Programs.
type FuncSet struct {
	fns map[string]Func
}

// NewFuncSet builds a FuncSet from a name→Func map (copied).
func NewFuncSet(fns map[string]Func) *FuncSet {
	cp := make(map[string]Func, len(fns))
	for k, v := range fns {
		cp[k] = v
	}
	return &FuncSet{fns: cp}
}

// Extend returns a new FuncSet with the extra functions added
// (overriding same-named entries).
func (s *FuncSet) Extend(extra map[string]Func) *FuncSet {
	cp := make(map[string]Func, len(s.fns)+len(extra))
	for k, v := range s.fns {
		cp[k] = v
	}
	for k, v := range extra {
		cp[k] = v
	}
	return &FuncSet{fns: cp}
}

// Names returns the sorted function names in the set.
func (s *FuncSet) Names() []string {
	out := make([]string, 0, len(s.fns))
	for k := range s.fns {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func (s *FuncSet) lookup(name string) (Func, bool) {
	if s == nil {
		return nil, false
	}
	f, ok := s.fns[name]
	return f, ok
}

func arity(args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("want %d argument(s), got %d", n, len(args))
	}
	return nil
}

func atLeast(args []Value, n int) error {
	if len(args) < n {
		return fmt.Errorf("want at least %d argument(s), got %d", n, len(args))
	}
	return nil
}

func wantString(v Value) (string, error) {
	s, ok := v.AsString()
	if !ok {
		return "", fmt.Errorf("want string, got %s", v.Kind())
	}
	return s, nil
}

func wantNumber(v Value) (float64, error) {
	f, ok := v.AsFloat()
	if !ok {
		return 0, fmt.Errorf("want number, got %s", v.Kind())
	}
	return f, nil
}

// DefaultFuncs is the standard library available to all BPMS
// expressions: size/emptiness, string manipulation, numeric helpers,
// aggregation over lists, and type conversion.
var DefaultFuncs = NewFuncSet(map[string]Func{
	"len": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		switch args[0].Kind() {
		case KindString:
			s, _ := args[0].AsString()
			return Int(int64(len([]rune(s)))), nil
		case KindList:
			l, _ := args[0].AsList()
			return Int(int64(len(l))), nil
		case KindMap:
			m, _ := args[0].AsMap()
			return Int(int64(len(m))), nil
		}
		return Null, fmt.Errorf("len of %s", args[0].Kind())
	},
	"empty": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		return Bool(!args[0].Truthy()), nil
	},
	"defined": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		return Bool(!args[0].IsNull()), nil
	},
	"contains": func(args []Value) (Value, error) {
		if err := arity(args, 2); err != nil {
			return Null, err
		}
		return evalIn(0, args[1], args[0])
	},
	"startsWith": func(args []Value) (Value, error) {
		if err := arity(args, 2); err != nil {
			return Null, err
		}
		s, err := wantString(args[0])
		if err != nil {
			return Null, err
		}
		p, err := wantString(args[1])
		if err != nil {
			return Null, err
		}
		return Bool(strings.HasPrefix(s, p)), nil
	},
	"endsWith": func(args []Value) (Value, error) {
		if err := arity(args, 2); err != nil {
			return Null, err
		}
		s, err := wantString(args[0])
		if err != nil {
			return Null, err
		}
		p, err := wantString(args[1])
		if err != nil {
			return Null, err
		}
		return Bool(strings.HasSuffix(s, p)), nil
	},
	"upper": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		s, err := wantString(args[0])
		if err != nil {
			return Null, err
		}
		return String(strings.ToUpper(s)), nil
	},
	"lower": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		s, err := wantString(args[0])
		if err != nil {
			return Null, err
		}
		return String(strings.ToLower(s)), nil
	},
	"trim": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		s, err := wantString(args[0])
		if err != nil {
			return Null, err
		}
		return String(strings.TrimSpace(s)), nil
	},
	"split": func(args []Value) (Value, error) {
		if err := arity(args, 2); err != nil {
			return Null, err
		}
		s, err := wantString(args[0])
		if err != nil {
			return Null, err
		}
		sep, err := wantString(args[1])
		if err != nil {
			return Null, err
		}
		parts := strings.Split(s, sep)
		out := make([]Value, len(parts))
		for i, p := range parts {
			out[i] = String(p)
		}
		return List(out...), nil
	},
	"join": func(args []Value) (Value, error) {
		if err := arity(args, 2); err != nil {
			return Null, err
		}
		l, ok := args[0].AsList()
		if !ok {
			return Null, fmt.Errorf("want list, got %s", args[0].Kind())
		}
		sep, err := wantString(args[1])
		if err != nil {
			return Null, err
		}
		parts := make([]string, len(l))
		for i, e := range l {
			s, ok := e.AsString()
			if !ok {
				s = e.String()
			}
			parts[i] = s
		}
		return String(strings.Join(parts, sep)), nil
	},
	"abs": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		if i, ok := args[0].AsInt(); ok {
			if i < 0 {
				return Int(-i), nil
			}
			return Int(i), nil
		}
		f, err := wantNumber(args[0])
		if err != nil {
			return Null, err
		}
		return Float(math.Abs(f)), nil
	},
	"min": func(args []Value) (Value, error) {
		return fold(args, func(a, b Value) (Value, error) {
			c, err := a.Compare(b)
			if err != nil {
				return Null, err
			}
			if c <= 0 {
				return a, nil
			}
			return b, nil
		})
	},
	"max": func(args []Value) (Value, error) {
		return fold(args, func(a, b Value) (Value, error) {
			c, err := a.Compare(b)
			if err != nil {
				return Null, err
			}
			if c >= 0 {
				return a, nil
			}
			return b, nil
		})
	},
	"sum": func(args []Value) (Value, error) {
		vals, err := spreadNumbers(args)
		if err != nil {
			return Null, err
		}
		allInt := true
		var fi float64
		var ii int64
		for _, v := range vals {
			if i, ok := v.AsInt(); ok {
				ii += i
			} else {
				allInt = false
			}
			f, _ := v.AsFloat()
			fi += f
		}
		if allInt {
			return Int(ii), nil
		}
		return Float(fi), nil
	},
	"avg": func(args []Value) (Value, error) {
		vals, err := spreadNumbers(args)
		if err != nil {
			return Null, err
		}
		if len(vals) == 0 {
			return Null, errors.New("avg of empty input")
		}
		var total float64
		for _, v := range vals {
			f, _ := v.AsFloat()
			total += f
		}
		return Float(total / float64(len(vals))), nil
	},
	"floor": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		f, err := wantNumber(args[0])
		if err != nil {
			return Null, err
		}
		return Int(int64(math.Floor(f))), nil
	},
	"ceil": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		f, err := wantNumber(args[0])
		if err != nil {
			return Null, err
		}
		return Int(int64(math.Ceil(f))), nil
	},
	"round": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		f, err := wantNumber(args[0])
		if err != nil {
			return Null, err
		}
		return Int(int64(math.Round(f))), nil
	},
	"int": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		switch args[0].Kind() {
		case KindInt:
			return args[0], nil
		case KindFloat:
			f, _ := args[0].AsFloat()
			return Int(int64(f)), nil
		case KindBool:
			b, _ := args[0].AsBool()
			if b {
				return Int(1), nil
			}
			return Int(0), nil
		case KindString:
			s, _ := args[0].AsString()
			i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("cannot parse %q as int", s)
			}
			return Int(i), nil
		}
		return Null, fmt.Errorf("cannot convert %s to int", args[0].Kind())
	},
	"float": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		if f, ok := args[0].AsFloat(); ok {
			return Float(f), nil
		}
		if s, ok := args[0].AsString(); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return Null, fmt.Errorf("cannot parse %q as float", s)
			}
			return Float(f), nil
		}
		return Null, fmt.Errorf("cannot convert %s to float", args[0].Kind())
	},
	"str": func(args []Value) (Value, error) {
		if err := arity(args, 1); err != nil {
			return Null, err
		}
		if s, ok := args[0].AsString(); ok {
			return String(s), nil
		}
		return String(args[0].String()), nil
	},
	"coalesce": func(args []Value) (Value, error) {
		if err := atLeast(args, 1); err != nil {
			return Null, err
		}
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null, nil
	},
})

// fold reduces the (possibly list-spread) arguments pairwise.
func fold(args []Value, f func(a, b Value) (Value, error)) (Value, error) {
	vals := args
	if len(args) == 1 {
		if l, ok := args[0].AsList(); ok {
			vals = l
		}
	}
	if len(vals) == 0 {
		return Null, errors.New("empty input")
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		next, err := f(acc, v)
		if err != nil {
			return Null, err
		}
		acc = next
	}
	return acc, nil
}

// spreadNumbers accepts either numeric varargs or a single list of
// numbers and returns the flattened numeric values.
func spreadNumbers(args []Value) ([]Value, error) {
	vals := args
	if len(args) == 1 {
		if l, ok := args[0].AsList(); ok {
			vals = l
		}
	}
	for _, v := range vals {
		if _, ok := v.AsFloat(); !ok {
			return nil, fmt.Errorf("want numbers, got %s", v.Kind())
		}
	}
	return vals, nil
}
