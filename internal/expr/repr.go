package expr

import (
	"strconv"
	"strings"
)

// String renders the parsed program back to normalized, parseable
// source text (fully parenthesized for operators).
func (p *Program) String() string { return p.root.repr() }

var opText = map[tokenKind]string{
	tokPlus: "+", tokMinus: "-", tokStar: "*", tokSlash: "/",
	tokPercent: "%", tokEq: "==", tokNeq: "!=", tokLt: "<", tokLte: "<=",
	tokGt: ">", tokGte: ">=", tokAnd: "&&", tokOr: "||", tokIn: "in",
}

func (n *litNode) repr() string   { return n.v.String() }
func (n *identNode) repr() string { return n.name }

func (n *unaryNode) repr() string {
	if n.op == tokNot {
		return "!(" + n.x.repr() + ")"
	}
	return "-(" + n.x.repr() + ")"
}

func (n *binaryNode) repr() string {
	return "(" + n.x.repr() + " " + opText[n.op] + " " + n.y.repr() + ")"
}

func (n *condNode) repr() string {
	return "(" + n.cond.repr() + " ? " + n.then.repr() + " : " + n.else_.repr() + ")"
}

func (n *callNode) repr() string {
	args := make([]string, len(n.args))
	for i, a := range n.args {
		args[i] = a.repr()
	}
	return n.name + "(" + strings.Join(args, ", ") + ")"
}

func (n *indexNode) repr() string {
	return n.x.repr() + "[" + n.i.repr() + "]"
}

func (n *memberNode) repr() string {
	return n.x.repr() + "." + n.name
}

func (n *listNode) repr() string {
	elems := make([]string, len(n.elems))
	for i, e := range n.elems {
		elems[i] = e.repr()
	}
	return "[" + strings.Join(elems, ", ") + "]"
}

func (n *mapNode) repr() string {
	parts := make([]string, len(n.keys))
	for i, k := range n.keys {
		parts[i] = strconv.Quote(k) + ": " + n.vals[i].repr()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
