package expr

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Values marshal to a tagged JSON form that preserves the exact kind
// across round trips (plain JSON would collapse ints and floats):
//
//	null            {"t":"n"}
//	Bool(true)      {"t":"b","v":true}
//	Int(5)          {"t":"i","v":"5"}     (string: no precision loss)
//	Float(2.5)      {"t":"f","v":2.5}
//	String("x")     {"t":"s","v":"x"}
//	List(...)       {"t":"l","v":[...]}
//	Map(...)        {"t":"m","v":{...}}

type taggedValue struct {
	T string          `json:"t"`
	V json.RawMessage `json:"v,omitempty"`
}

// MarshalJSON implements json.Marshaler with the tagged form.
func (v Value) MarshalJSON() ([]byte, error) {
	var tag string
	var payload any
	switch v.kind {
	case KindNull:
		return []byte(`{"t":"n"}`), nil
	case KindBool:
		tag, payload = "b", v.b
	case KindInt:
		tag, payload = "i", strconv.FormatInt(v.i, 10)
	case KindFloat:
		tag, payload = "f", v.f
	case KindString:
		tag, payload = "s", v.s
	case KindList:
		tag, payload = "l", v.l
	case KindMap:
		tag, payload = "m", v.m
	default:
		return nil, fmt.Errorf("expr: cannot marshal kind %v", v.kind)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(taggedValue{T: tag, V: raw})
}

// UnmarshalJSON implements json.Unmarshaler for the tagged form.
func (v *Value) UnmarshalJSON(data []byte) error {
	var t taggedValue
	if err := json.Unmarshal(data, &t); err != nil {
		return err
	}
	switch t.T {
	case "n":
		*v = Null
	case "b":
		var b bool
		if err := json.Unmarshal(t.V, &b); err != nil {
			return err
		}
		*v = Bool(b)
	case "i":
		var s string
		if err := json.Unmarshal(t.V, &s); err != nil {
			return err
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("expr: bad int payload %q: %w", s, err)
		}
		*v = Int(i)
	case "f":
		var f float64
		if err := json.Unmarshal(t.V, &f); err != nil {
			return err
		}
		*v = Float(f)
	case "s":
		var s string
		if err := json.Unmarshal(t.V, &s); err != nil {
			return err
		}
		*v = String(s)
	case "l":
		var l []Value
		if err := json.Unmarshal(t.V, &l); err != nil {
			return err
		}
		*v = List(l...)
	case "m":
		var m map[string]Value
		if err := json.Unmarshal(t.V, &m); err != nil {
			return err
		}
		*v = Map(m)
	default:
		return fmt.Errorf("expr: unknown value tag %q", t.T)
	}
	return nil
}
