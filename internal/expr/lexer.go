package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokInt
	tokFloat
	tokString
	tokIdent
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLBrace
	tokRBrace
	tokComma
	tokColon
	tokDot
	tokQuestion
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokEq    // ==
	tokNeq   // !=
	tokLt    // <
	tokLte   // <=
	tokGt    // >
	tokGte   // >=
	tokAnd   // &&
	tokOr    // ||
	tokNot   // !
	tokIn    // in
	tokTrue  // true
	tokFalse // false
	tokNull  // null
)

var tokenNames = map[tokenKind]string{
	tokEOF: "end of expression", tokInt: "integer", tokFloat: "float",
	tokString: "string", tokIdent: "identifier", tokLParen: "'('",
	tokRParen: "')'", tokLBracket: "'['", tokRBracket: "']'",
	tokLBrace: "'{'", tokRBrace: "'}'", tokComma: "','", tokColon: "':'",
	tokDot: "'.'", tokQuestion: "'?'", tokPlus: "'+'", tokMinus: "'-'",
	tokStar: "'*'", tokSlash: "'/'", tokPercent: "'%'", tokEq: "'=='",
	tokNeq: "'!='", tokLt: "'<'", tokLte: "'<='", tokGt: "'>'",
	tokGte: "'>='", tokAnd: "'&&'", tokOr: "'||'", tokNot: "'!'",
	tokIn: "'in'", tokTrue: "'true'", tokFalse: "'false'", tokNull: "'null'",
}

func (k tokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	pos  int
	text string  // raw text for idents; decoded text for strings
	i    int64   // value for tokInt
	f    float64 // value for tokFloat
}

// SyntaxError describes a lexing or parsing failure with its byte
// offset in the source expression.
type SyntaxError struct {
	Pos    int
	Source string
	Msg    string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: syntax error at offset %d in %q: %s", e.Pos, e.Source, e.Msg)
}

// lexer turns a source string into tokens.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Source: l.src, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the whole source up front. Expressions are short, so a
// single pass into a slice is simpler and faster than streaming.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '"' || c == '\'':
		return l.lexString(c)
	case isIdentStart(rune(c)):
		return l.lexIdent()
	}
	// Operators and punctuation.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "==":
		l.pos += 2
		return token{kind: tokEq, pos: start}, nil
	case "!=":
		l.pos += 2
		return token{kind: tokNeq, pos: start}, nil
	case "<=":
		l.pos += 2
		return token{kind: tokLte, pos: start}, nil
	case ">=":
		l.pos += 2
		return token{kind: tokGte, pos: start}, nil
	case "&&":
		l.pos += 2
		return token{kind: tokAnd, pos: start}, nil
	case "||":
		l.pos += 2
		return token{kind: tokOr, pos: start}, nil
	}
	l.pos++
	switch c {
	case '(':
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		return token{kind: tokRParen, pos: start}, nil
	case '[':
		return token{kind: tokLBracket, pos: start}, nil
	case ']':
		return token{kind: tokRBracket, pos: start}, nil
	case '{':
		return token{kind: tokLBrace, pos: start}, nil
	case '}':
		return token{kind: tokRBrace, pos: start}, nil
	case ',':
		return token{kind: tokComma, pos: start}, nil
	case ':':
		return token{kind: tokColon, pos: start}, nil
	case '.':
		return token{kind: tokDot, pos: start}, nil
	case '?':
		return token{kind: tokQuestion, pos: start}, nil
	case '+':
		return token{kind: tokPlus, pos: start}, nil
	case '-':
		return token{kind: tokMinus, pos: start}, nil
	case '*':
		return token{kind: tokStar, pos: start}, nil
	case '/':
		return token{kind: tokSlash, pos: start}, nil
	case '%':
		return token{kind: tokPercent, pos: start}, nil
	case '<':
		return token{kind: tokLt, pos: start}, nil
	case '>':
		return token{kind: tokGt, pos: start}, nil
	case '!':
		return token{kind: tokNot, pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !isFloat && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			isFloat = true
			l.pos++
		case c == 'e' || c == 'E':
			isFloat = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, l.errf(start, "bad float literal %q", text)
		}
		return token{kind: tokFloat, pos: start, f: f}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		// Overflowing integer literals degrade to float.
		f, ferr := strconv.ParseFloat(text, 64)
		if ferr != nil {
			return token{}, l.errf(start, "bad number literal %q", text)
		}
		return token{kind: tokFloat, pos: start, f: f}, nil
	}
	return token{kind: tokInt, pos: start, i: i}, nil
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, pos: start, text: sb.String()}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string")
			}
			esc := l.src[l.pos]
			l.pos++
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '\'':
				sb.WriteByte('\'')
			case '"':
				sb.WriteByte('"')
			case 'u':
				if l.pos+4 > len(l.src) {
					return token{}, l.errf(start, "bad \\u escape")
				}
				n, err := strconv.ParseUint(l.src[l.pos:l.pos+4], 16, 32)
				if err != nil {
					return token{}, l.errf(start, "bad \\u escape")
				}
				l.pos += 4
				sb.WriteRune(rune(n))
			case 'U':
				if l.pos+8 > len(l.src) {
					return token{}, l.errf(start, "bad \\U escape")
				}
				n, err := strconv.ParseUint(l.src[l.pos:l.pos+8], 16, 32)
				if err != nil || n > 0x10FFFF {
					return token{}, l.errf(start, "bad \\U escape")
				}
				l.pos += 8
				sb.WriteRune(rune(n))
			case 'x':
				if l.pos+2 > len(l.src) {
					return token{}, l.errf(start, "bad \\x escape")
				}
				n, err := strconv.ParseUint(l.src[l.pos:l.pos+2], 16, 32)
				if err != nil {
					return token{}, l.errf(start, "bad \\x escape")
				}
				l.pos += 2
				sb.WriteByte(byte(n))
			default:
				return token{}, l.errf(start, "unknown escape \\%c", esc)
			}
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf(start, "unterminated string")
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	text := l.src[start:l.pos]
	switch text {
	case "true":
		return token{kind: tokTrue, pos: start}, nil
	case "false":
		return token{kind: tokFalse, pos: start}, nil
	case "null", "nil":
		return token{kind: tokNull, pos: start}, nil
	case "in":
		return token{kind: tokIn, pos: start}, nil
	case "and":
		return token{kind: tokAnd, pos: start}, nil
	case "or":
		return token{kind: tokOr, pos: start}, nil
	case "not":
		return token{kind: tokNot, pos: start}, nil
	}
	return token{kind: tokIdent, pos: start, text: text}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
