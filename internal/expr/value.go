// Package expr implements the expression language used throughout the
// BPMS for sequence-flow conditions, decision-table rules, and data
// mappings. It provides a lexer, a Pratt parser producing an AST, and a
// typed tree-walking evaluator over dynamically typed values.
//
// The language is a small, side-effect-free subset familiar from BPMN
// condition expressions and DMN FEEL:
//
//	amount > 1000 && (region == "EU" || priority >= 3)
//	status in ["approved", "escalated"]
//	len(items) * unitPrice + shipping
//	risk == "high" ? amount * 0.2 : amount * 0.05
//
// Values are null, bool, int, float, string, list, or map. Arithmetic
// between int and float promotes to float. Comparisons are defined for
// numbers, strings, and bools (equality only for bools, lists, maps).
package expr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types of the expression language.
type Kind int

// Value kinds, in coercion order.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindList
	KindMap
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindList:
		return "list"
	case KindMap:
		return "map"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a dynamically typed value in the expression language. The
// zero Value is null. Values are immutable by convention: evaluation
// never mutates a Value in place.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	l    []Value
	m    map[string]Value
}

// Null is the null value.
var Null = Value{kind: KindNull}

// True and False are the boolean constants.
var (
	True  = Value{kind: KindBool, b: true}
	False = Value{kind: KindBool, b: false}
)

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return True
	}
	return False
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// List returns a list value wrapping vs. The slice is not copied.
func List(vs ...Value) Value { return Value{kind: KindList, l: vs} }

// Map returns a map value wrapping m. The map is not copied.
func Map(m map[string]Value) Value { return Value{kind: KindMap, m: m} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean content of v; ok is false if v is not a bool.
func (v Value) AsBool() (b, ok bool) { return v.b, v.kind == KindBool }

// AsInt returns the integer content of v; ok is false if v is not an int.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns the numeric content of v as a float64, accepting both
// int and float kinds.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	}
	return 0, false
}

// AsString returns the string content of v; ok is false if v is not a string.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsList returns the list content of v; ok is false if v is not a list.
func (v Value) AsList() ([]Value, bool) { return v.l, v.kind == KindList }

// AsMap returns the map content of v; ok is false if v is not a map.
func (v Value) AsMap() (map[string]Value, bool) { return v.m, v.kind == KindMap }

// Truthy reports whether v counts as true in a boolean context: true,
// non-zero numbers, non-empty strings/lists/maps. Null is false.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindNull:
		return false
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	case KindList:
		return len(v.l) > 0
	case KindMap:
		return len(v.m) > 0
	}
	return false
}

// Equal reports deep equality between v and w. Int and float compare
// numerically (Int(1) equals Float(1.0)).
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		// Numeric cross-kind equality.
		vf, vok := v.AsFloat()
		wf, wok := w.AsFloat()
		return vok && wok && vf == wf
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool:
		return v.b == w.b
	case KindInt:
		return v.i == w.i
	case KindFloat:
		return v.f == w.f
	case KindString:
		return v.s == w.s
	case KindList:
		if len(v.l) != len(w.l) {
			return false
		}
		for i := range v.l {
			if !v.l[i].Equal(w.l[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(v.m) != len(w.m) {
			return false
		}
		for k, vv := range v.m {
			wv, ok := w.m[k]
			if !ok || !vv.Equal(wv) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders v against w, returning -1, 0, or +1. It returns an
// error when the kinds are not mutually ordered (only numbers with
// numbers and strings with strings are ordered).
func (v Value) Compare(w Value) (int, error) {
	if vf, ok := v.AsFloat(); ok {
		if wf, ok := w.AsFloat(); ok {
			switch {
			case vf < wf:
				return -1, nil
			case vf > wf:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if vs, ok := v.AsString(); ok {
		if ws, ok := w.AsString(); ok {
			return strings.Compare(vs, ws), nil
		}
	}
	return 0, fmt.Errorf("expr: cannot order %s against %s", v.kind, w.kind)
}

// String renders v in expression-language literal syntax, so that for
// scalar values Parse(v.String()) evaluates back to v.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		if math.IsInf(v.f, 1) {
			return "1e999"
		}
		if math.IsInf(v.f, -1) {
			return "-1e999"
		}
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		// Ensure the literal re-parses as a float, not an int.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case KindString:
		return strconv.Quote(v.s)
	case KindList:
		parts := make([]string, len(v.l))
		for i, e := range v.l {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindMap:
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = strconv.Quote(k) + ": " + v.m[k].String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	return "?"
}

// FromGo converts a native Go value into a Value. Supported inputs:
// nil, bool, all integer and float types, string, []any,
// map[string]any, and Value itself. Unsupported types yield an error.
func FromGo(x any) (Value, error) {
	switch t := x.(type) {
	case nil:
		return Null, nil
	case Value:
		return t, nil
	case bool:
		return Bool(t), nil
	case int:
		return Int(int64(t)), nil
	case int8:
		return Int(int64(t)), nil
	case int16:
		return Int(int64(t)), nil
	case int32:
		return Int(int64(t)), nil
	case int64:
		return Int(t), nil
	case uint:
		return Int(int64(t)), nil
	case uint8:
		return Int(int64(t)), nil
	case uint16:
		return Int(int64(t)), nil
	case uint32:
		return Int(int64(t)), nil
	case uint64:
		return Int(int64(t)), nil
	case float32:
		return Float(float64(t)), nil
	case float64:
		return Float(t), nil
	case string:
		return String(t), nil
	case []any:
		l := make([]Value, len(t))
		for i, e := range t {
			v, err := FromGo(e)
			if err != nil {
				return Null, err
			}
			l[i] = v
		}
		return List(l...), nil
	case map[string]any:
		m := make(map[string]Value, len(t))
		for k, e := range t {
			v, err := FromGo(e)
			if err != nil {
				return Null, err
			}
			m[k] = v
		}
		return Map(m), nil
	}
	return Null, fmt.Errorf("expr: unsupported Go type %T", x)
}

// ToGo converts a Value back into a native Go value: nil, bool, int64,
// float64, string, []any, or map[string]any.
func (v Value) ToGo() any {
	switch v.kind {
	case KindNull:
		return nil
	case KindBool:
		return v.b
	case KindInt:
		return v.i
	case KindFloat:
		return v.f
	case KindString:
		return v.s
	case KindList:
		l := make([]any, len(v.l))
		for i, e := range v.l {
			l[i] = e.ToGo()
		}
		return l
	case KindMap:
		m := make(map[string]any, len(v.m))
		for k, e := range v.m {
			m[k] = e.ToGo()
		}
		return m
	}
	return nil
}
