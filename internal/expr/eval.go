package expr

import (
	"fmt"
	"math"
	"strings"
)

// Env supplies variable bindings during evaluation.
type Env interface {
	// Lookup returns the value bound to name; ok is false when the
	// variable is unbound (evaluation then yields an EvalError).
	Lookup(name string) (Value, bool)
}

// MapEnv is an Env backed by a Go map.
type MapEnv map[string]Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// EmptyEnv is an Env with no bindings.
var EmptyEnv Env = MapEnv(nil)

// EvalError describes a runtime evaluation failure (unbound variable,
// type mismatch, division by zero, ...).
type EvalError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *EvalError) Error() string {
	return fmt.Sprintf("expr: eval error at offset %d: %s", e.Pos, e.Msg)
}

func evalErrf(pos int, format string, args ...any) error {
	return &EvalError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Program is a compiled, reusable expression. A Program is immutable
// and safe for concurrent evaluation.
type Program struct {
	src   string
	root  Node
	funcs *FuncSet
}

// Compile parses src into a Program bound to the default function set.
func Compile(src string) (*Program, error) {
	return CompileWith(src, DefaultFuncs)
}

// CompileWith parses src into a Program bound to the given function set.
func CompileWith(src string, funcs *FuncSet) (*Program, error) {
	root, err := parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{src: src, root: root, funcs: funcs}, nil
}

// MustCompile is Compile that panics on error, for static expressions.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Source returns the original expression text.
func (p *Program) Source() string { return p.src }

// Vars returns the sorted set of free variable names referenced by the
// program (function names excluded).
func (p *Program) Vars() []string {
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *identNode:
			seen[t.name] = true
		case *unaryNode:
			walk(t.x)
		case *binaryNode:
			walk(t.x)
			walk(t.y)
		case *condNode:
			walk(t.cond)
			walk(t.then)
			walk(t.else_)
		case *callNode:
			for _, a := range t.args {
				walk(a)
			}
		case *indexNode:
			walk(t.x)
			walk(t.i)
		case *memberNode:
			walk(t.x)
		case *listNode:
			for _, e := range t.elems {
				walk(e)
			}
		case *mapNode:
			for _, v := range t.vals {
				walk(v)
			}
		}
	}
	walk(p.root)
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Eval evaluates the program against env.
func (p *Program) Eval(env Env) (Value, error) {
	return p.eval(p.root, env)
}

// EvalBool evaluates the program and coerces the result via Truthy.
// It is the entry point used for sequence-flow conditions.
func (p *Program) EvalBool(env Env) (bool, error) {
	v, err := p.Eval(env)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// Eval is a convenience that compiles and evaluates src in one call.
func Eval(src string, env Env) (Value, error) {
	p, err := Compile(src)
	if err != nil {
		return Null, err
	}
	return p.Eval(env)
}

func (p *Program) eval(n Node, env Env) (Value, error) {
	switch t := n.(type) {
	case *litNode:
		return t.v, nil
	case *identNode:
		v, ok := env.Lookup(t.name)
		if !ok {
			return Null, evalErrf(t.pos, "unbound variable %q", t.name)
		}
		return v, nil
	case *unaryNode:
		return p.evalUnary(t, env)
	case *binaryNode:
		return p.evalBinary(t, env)
	case *condNode:
		c, err := p.eval(t.cond, env)
		if err != nil {
			return Null, err
		}
		if c.Truthy() {
			return p.eval(t.then, env)
		}
		return p.eval(t.else_, env)
	case *callNode:
		return p.evalCall(t, env)
	case *indexNode:
		return p.evalIndex(t, env)
	case *memberNode:
		x, err := p.eval(t.x, env)
		if err != nil {
			return Null, err
		}
		m, ok := x.AsMap()
		if !ok {
			return Null, evalErrf(t.pos, "cannot access member %q of %s", t.name, x.Kind())
		}
		v, ok := m[t.name]
		if !ok {
			return Null, nil // absent member is null, like most BPM expression languages
		}
		return v, nil
	case *listNode:
		elems := make([]Value, len(t.elems))
		for i, e := range t.elems {
			v, err := p.eval(e, env)
			if err != nil {
				return Null, err
			}
			elems[i] = v
		}
		return List(elems...), nil
	case *mapNode:
		m := make(map[string]Value, len(t.keys))
		for i, k := range t.keys {
			v, err := p.eval(t.vals[i], env)
			if err != nil {
				return Null, err
			}
			m[k] = v
		}
		return Map(m), nil
	}
	return Null, evalErrf(n.Pos(), "internal: unknown node %T", n)
}

func (p *Program) evalUnary(n *unaryNode, env Env) (Value, error) {
	x, err := p.eval(n.x, env)
	if err != nil {
		return Null, err
	}
	switch n.op {
	case tokMinus:
		switch x.Kind() {
		case KindInt:
			i, _ := x.AsInt()
			return Int(-i), nil
		case KindFloat:
			f, _ := x.AsFloat()
			return Float(-f), nil
		}
		return Null, evalErrf(n.pos, "cannot negate %s", x.Kind())
	case tokNot:
		return Bool(!x.Truthy()), nil
	}
	return Null, evalErrf(n.pos, "internal: unknown unary op")
}

func (p *Program) evalBinary(n *binaryNode, env Env) (Value, error) {
	// Short-circuit logical operators evaluate the left side first and
	// may skip the right side entirely.
	if n.op == tokAnd || n.op == tokOr {
		x, err := p.eval(n.x, env)
		if err != nil {
			return Null, err
		}
		if n.op == tokAnd && !x.Truthy() {
			return False, nil
		}
		if n.op == tokOr && x.Truthy() {
			return True, nil
		}
		y, err := p.eval(n.y, env)
		if err != nil {
			return Null, err
		}
		return Bool(y.Truthy()), nil
	}
	x, err := p.eval(n.x, env)
	if err != nil {
		return Null, err
	}
	y, err := p.eval(n.y, env)
	if err != nil {
		return Null, err
	}
	switch n.op {
	case tokEq:
		return Bool(x.Equal(y)), nil
	case tokNeq:
		return Bool(!x.Equal(y)), nil
	case tokLt, tokLte, tokGt, tokGte:
		c, err := x.Compare(y)
		if err != nil {
			return Null, evalErrf(n.pos, "%v", err)
		}
		switch n.op {
		case tokLt:
			return Bool(c < 0), nil
		case tokLte:
			return Bool(c <= 0), nil
		case tokGt:
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case tokIn:
		return evalIn(n.pos, x, y)
	case tokPlus, tokMinus, tokStar, tokSlash, tokPercent:
		return evalArith(n.pos, n.op, x, y)
	}
	return Null, evalErrf(n.pos, "internal: unknown binary op %s", n.op)
}

func evalIn(pos int, x, y Value) (Value, error) {
	switch y.Kind() {
	case KindList:
		l, _ := y.AsList()
		for _, e := range l {
			if x.Equal(e) {
				return True, nil
			}
		}
		return False, nil
	case KindMap:
		m, _ := y.AsMap()
		s, ok := x.AsString()
		if !ok {
			return Null, evalErrf(pos, "map membership requires a string key, got %s", x.Kind())
		}
		_, hit := m[s]
		return Bool(hit), nil
	case KindString:
		hay, _ := y.AsString()
		needle, ok := x.AsString()
		if !ok {
			return Null, evalErrf(pos, "string membership requires a string, got %s", x.Kind())
		}
		return Bool(strings.Contains(hay, needle)), nil
	}
	return Null, evalErrf(pos, "'in' requires a list, map, or string on the right, got %s", y.Kind())
}

func evalArith(pos int, op tokenKind, x, y Value) (Value, error) {
	// String concatenation with +.
	if op == tokPlus && x.Kind() == KindString && y.Kind() == KindString {
		xs, _ := x.AsString()
		ys, _ := y.AsString()
		return String(xs + ys), nil
	}
	// List concatenation with +.
	if op == tokPlus && x.Kind() == KindList && y.Kind() == KindList {
		xl, _ := x.AsList()
		yl, _ := y.AsList()
		out := make([]Value, 0, len(xl)+len(yl))
		out = append(out, xl...)
		out = append(out, yl...)
		return List(out...), nil
	}
	// Integer arithmetic stays integral.
	if x.Kind() == KindInt && y.Kind() == KindInt {
		xi, _ := x.AsInt()
		yi, _ := y.AsInt()
		switch op {
		case tokPlus:
			return Int(xi + yi), nil
		case tokMinus:
			return Int(xi - yi), nil
		case tokStar:
			return Int(xi * yi), nil
		case tokSlash:
			if yi == 0 {
				return Null, evalErrf(pos, "division by zero")
			}
			return Int(xi / yi), nil
		case tokPercent:
			if yi == 0 {
				return Null, evalErrf(pos, "modulo by zero")
			}
			return Int(xi % yi), nil
		}
	}
	xf, xok := x.AsFloat()
	yf, yok := y.AsFloat()
	if !xok || !yok {
		return Null, evalErrf(pos, "arithmetic requires numbers, got %s and %s", x.Kind(), y.Kind())
	}
	switch op {
	case tokPlus:
		return Float(xf + yf), nil
	case tokMinus:
		return Float(xf - yf), nil
	case tokStar:
		return Float(xf * yf), nil
	case tokSlash:
		if yf == 0 {
			return Null, evalErrf(pos, "division by zero")
		}
		return Float(xf / yf), nil
	case tokPercent:
		if yf == 0 {
			return Null, evalErrf(pos, "modulo by zero")
		}
		return Float(math.Mod(xf, yf)), nil
	}
	return Null, evalErrf(pos, "internal: unknown arithmetic op")
}

func (p *Program) evalCall(n *callNode, env Env) (Value, error) {
	fn, ok := p.funcs.lookup(n.name)
	if !ok {
		return Null, evalErrf(n.pos, "unknown function %q", n.name)
	}
	args := make([]Value, len(n.args))
	for i, a := range n.args {
		v, err := p.eval(a, env)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	v, err := fn(args)
	if err != nil {
		return Null, evalErrf(n.pos, "%s: %v", n.name, err)
	}
	return v, nil
}

func (p *Program) evalIndex(n *indexNode, env Env) (Value, error) {
	x, err := p.eval(n.x, env)
	if err != nil {
		return Null, err
	}
	i, err := p.eval(n.i, env)
	if err != nil {
		return Null, err
	}
	switch x.Kind() {
	case KindList:
		l, _ := x.AsList()
		idx, ok := i.AsInt()
		if !ok {
			return Null, evalErrf(n.pos, "list index must be an int, got %s", i.Kind())
		}
		if idx < 0 {
			idx += int64(len(l))
		}
		if idx < 0 || idx >= int64(len(l)) {
			return Null, evalErrf(n.pos, "list index %d out of range [0,%d)", idx, len(l))
		}
		return l[idx], nil
	case KindMap:
		m, _ := x.AsMap()
		k, ok := i.AsString()
		if !ok {
			return Null, evalErrf(n.pos, "map key must be a string, got %s", i.Kind())
		}
		v, ok := m[k]
		if !ok {
			return Null, nil
		}
		return v, nil
	case KindString:
		s, _ := x.AsString()
		idx, ok := i.AsInt()
		if !ok {
			return Null, evalErrf(n.pos, "string index must be an int, got %s", i.Kind())
		}
		r := []rune(s)
		if idx < 0 {
			idx += int64(len(r))
		}
		if idx < 0 || idx >= int64(len(r)) {
			return Null, evalErrf(n.pos, "string index %d out of range [0,%d)", idx, len(r))
		}
		return String(string(r[idx])), nil
	}
	return Null, evalErrf(n.pos, "cannot index %s", x.Kind())
}
