package expr

import (
	"testing"
)

func mustProgram(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return p
}

func TestPredicatesEquality(t *testing.T) {
	tests := []struct {
		src  string
		vals []Value
	}{
		{`v == 5`, []Value{Int(5)}},
		{`5 == v`, []Value{Int(5)}},
		{`v == "eu"`, []Value{String("eu")}},
		{`v == true`, []Value{Bool(true)}},
		{`v == null`, []Value{Null}},
		{`v == -3`, []Value{Int(-3)}},
		{`v == -2.5`, []Value{Float(-2.5)}},
		{`v in [1, 2, 3]`, []Value{Int(1), Int(2), Int(3)}},
		{`v in ["a", "b"]`, []Value{String("a"), String("b")}},
		{`v in []`, nil},
	}
	for _, tc := range tests {
		atoms := mustProgram(t, tc.src).Predicates()
		if len(atoms) != 1 {
			t.Fatalf("%q: got %d atoms, want 1", tc.src, len(atoms))
		}
		a := atoms[0]
		if a.Kind != PredEq || a.Var != "v" {
			t.Fatalf("%q: got %+v, want PredEq on v", tc.src, a)
		}
		if len(a.Values) != len(tc.vals) {
			t.Fatalf("%q: got %d values, want %d", tc.src, len(a.Values), len(tc.vals))
		}
		for i, want := range tc.vals {
			if !a.Values[i].Equal(want) {
				t.Fatalf("%q: value %d = %v, want %v", tc.src, i, a.Values[i], want)
			}
		}
	}
}

func TestPredicatesRange(t *testing.T) {
	tests := []struct {
		src   string
		op    RangeOp
		bound Value
	}{
		{`v < 10`, RangeLT, Int(10)},
		{`v <= 10`, RangeLE, Int(10)},
		{`v > 10`, RangeGT, Int(10)},
		{`v >= 10`, RangeGE, Int(10)},
		// Reversed operand order mirrors the operator.
		{`10 > v`, RangeLT, Int(10)},
		{`10 >= v`, RangeLE, Int(10)},
		{`10 < v`, RangeGT, Int(10)},
		{`10 <= v`, RangeGE, Int(10)},
		{`v < -1.5`, RangeLT, Float(-1.5)},
		{`-3 > v`, RangeLT, Int(-3)},
		{`v < "m"`, RangeLT, String("m")},
	}
	for _, tc := range tests {
		atoms := mustProgram(t, tc.src).Predicates()
		if len(atoms) != 1 {
			t.Fatalf("%q: got %d atoms, want 1", tc.src, len(atoms))
		}
		a := atoms[0]
		if a.Kind != PredRange || a.Var != "v" || a.Op != tc.op || !a.Bound.Equal(tc.bound) {
			t.Fatalf("%q: got %+v, want range v %s %v", tc.src, a, tc.op, tc.bound)
		}
	}
}

func TestPredicatesConjunction(t *testing.T) {
	atoms := mustProgram(t, `v >= 2 && (v < 7 && u == "x")`).Predicates()
	if len(atoms) != 3 {
		t.Fatalf("got %d atoms, want 3", len(atoms))
	}
	if atoms[0].Kind != PredRange || atoms[0].Op != RangeGE || atoms[0].Var != "v" {
		t.Fatalf("atom 0 = %+v", atoms[0])
	}
	if atoms[1].Kind != PredRange || atoms[1].Op != RangeLT || atoms[1].Var != "v" {
		t.Fatalf("atom 1 = %+v", atoms[1])
	}
	if atoms[2].Kind != PredEq || atoms[2].Var != "u" {
		t.Fatalf("atom 2 = %+v", atoms[2])
	}
}

func TestPredicatesOpaque(t *testing.T) {
	opaque := []string{
		`v != 5`,             // no index structure for exclusion
		`v == w`,             // two variables
		`v + 1 == 2`,         // computed operand
		`len(v) > 0`,         // function call
		`v`,                  // bare truthiness
		`true`,               // constant
		`!(v == 5)`,          // negation
		`v == 5 || v == 6`,   // disjunction (only && decomposes)
		`v < [1]`,            // unorderable bound literal
		`v < true`,           // unorderable bound literal
		`v in x`,             // non-literal list
		`v in [1, x]`,        // non-literal element
		`v == 1 && (w || u)`, // opaque conjunct poisons the whole condition
		`data.x == 1`,        // member access
		`-v == 1`,            // negated variable is not a literal
	}
	for _, src := range opaque {
		if atoms := mustProgram(t, src).Predicates(); atoms != nil {
			t.Fatalf("%q: got atoms %+v, want opaque", src, atoms)
		}
	}
}
