package expr

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitReturnsSameProgram(t *testing.T) {
	c := NewCache(8)
	p1, err := c.Get("a + b")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get("a + b")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("cache miss for identical source")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	v, err := p1.Eval(MapEnv{"a": Int(2), "b": Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt(); i != 5 {
		t.Errorf("eval = %v, want 5", v)
	}
}

func TestCacheEvictsOldestAndStaysBounded(t *testing.T) {
	const max = 4
	c := NewCache(max)
	for i := 0; i < 3*max; i++ {
		if _, err := c.Get(fmt.Sprintf("v + %d", i)); err != nil {
			t.Fatal(err)
		}
		if c.Len() > max {
			t.Fatalf("cache grew to %d, bound is %d", c.Len(), max)
		}
	}
	if c.Len() != max {
		t.Errorf("Len = %d, want %d", c.Len(), max)
	}
	// The oldest entries were evicted; re-fetching recompiles to a new
	// program, while the newest survivor is still the cached pointer.
	newest := fmt.Sprintf("v + %d", 3*max-1)
	pNewest, _ := c.Get(newest)
	pAgain, _ := c.Get(newest)
	if pNewest != pAgain {
		t.Error("newest entry was evicted")
	}
	// An evicted program remains usable by existing holders and the
	// recompiled replacement evaluates identically.
	pOld, err := c.Get("v + 0")
	if err != nil {
		t.Fatal(err)
	}
	v, err := pOld.Eval(MapEnv{"v": Int(41)})
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt(); i != 41 {
		t.Errorf("recompiled eval = %v, want 41", v)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(8)
	if _, err := c.Get("1 +"); err == nil {
		t.Fatal("want compile error")
	}
	if c.Len() != 0 {
		t.Errorf("error was cached: Len = %d", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	srcs := make([]string, 32) // more sources than capacity: constant churn
	for i := range srcs {
		srcs[i] = fmt.Sprintf("n * %d + 1", i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			env := MapEnv{"n": Int(int64(g))}
			for i := 0; i < 500; i++ {
				src := srcs[(g*7+i)%len(srcs)]
				p, err := c.Get(src)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := p.Eval(env); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("bound violated: Len = %d", c.Len())
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c := NewCache(64)
	if _, err := c.Get(`amount > 1000 && region == "EU"`); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(`amount > 1000 && region == "EU"`); err != nil {
			b.Fatal(err)
		}
	}
}
