package expr

import "fmt"

// Node is an AST node. Nodes are immutable after parsing; a compiled
// Program may be evaluated concurrently from multiple goroutines.
type Node interface {
	// Pos returns the byte offset of the node in the source.
	Pos() int
	// repr renders the node back to parseable source (used by String).
	repr() string
}

type litNode struct {
	pos int
	v   Value
}

type identNode struct {
	pos  int
	name string
}

type unaryNode struct {
	pos int
	op  tokenKind // tokMinus or tokNot
	x   Node
}

type binaryNode struct {
	pos  int
	op   tokenKind
	x, y Node
}

type condNode struct {
	pos               int
	cond, then, else_ Node
}

type callNode struct {
	pos  int
	name string
	args []Node
}

type indexNode struct {
	pos  int
	x, i Node
}

type memberNode struct {
	pos  int
	x    Node
	name string
}

type listNode struct {
	pos   int
	elems []Node
}

type mapNode struct {
	pos  int
	keys []string
	vals []Node
}

func (n *litNode) Pos() int    { return n.pos }
func (n *identNode) Pos() int  { return n.pos }
func (n *unaryNode) Pos() int  { return n.pos }
func (n *binaryNode) Pos() int { return n.pos }
func (n *condNode) Pos() int   { return n.pos }
func (n *callNode) Pos() int   { return n.pos }
func (n *indexNode) Pos() int  { return n.pos }
func (n *memberNode) Pos() int { return n.pos }
func (n *listNode) Pos() int   { return n.pos }
func (n *mapNode) Pos() int    { return n.pos }

// Binding powers for the Pratt parser, low to high.
const (
	precLowest = iota
	precCond   // ?:
	precOr     // ||
	precAnd    // &&
	precEq     // == !=
	precCmp    // < <= > >= in
	precAdd    // + -
	precMul    // * / %
	precUnary  // ! - (prefix)
	precCall   // () [] .
)

func infixPrec(k tokenKind) int {
	switch k {
	case tokQuestion:
		return precCond
	case tokOr:
		return precOr
	case tokAnd:
		return precAnd
	case tokEq, tokNeq:
		return precEq
	case tokLt, tokLte, tokGt, tokGte, tokIn:
		return precCmp
	case tokPlus, tokMinus:
		return precAdd
	case tokStar, tokSlash, tokPercent:
		return precMul
	case tokLParen, tokLBracket, tokDot:
		return precCall
	}
	return precLowest
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Source: p.src, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errf(t.pos, "expected %s, found %s", k, t.kind)
	}
	p.advance()
	return t, nil
}

// parse parses a complete expression and requires EOF afterwards.
func parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	n, err := p.parseExpr(precLowest)
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, p.errf(t.pos, "unexpected %s after expression", t.kind)
	}
	return n, nil
}

func (p *parser) parseExpr(minPrec int) (Node, error) {
	left, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec := infixPrec(t.kind)
		if prec <= minPrec {
			return left, nil
		}
		left, err = p.parseInfix(left, t)
		if err != nil {
			return nil, err
		}
	}
}

func (p *parser) parsePrefix() (Node, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		return &litNode{pos: t.pos, v: Int(t.i)}, nil
	case tokFloat:
		p.advance()
		return &litNode{pos: t.pos, v: Float(t.f)}, nil
	case tokString:
		p.advance()
		return &litNode{pos: t.pos, v: String(t.text)}, nil
	case tokTrue:
		p.advance()
		return &litNode{pos: t.pos, v: True}, nil
	case tokFalse:
		p.advance()
		return &litNode{pos: t.pos, v: False}, nil
	case tokNull:
		p.advance()
		return &litNode{pos: t.pos, v: Null}, nil
	case tokIdent:
		p.advance()
		return &identNode{pos: t.pos, name: t.text}, nil
	case tokMinus:
		p.advance()
		x, err := p.parseExpr(precUnary)
		if err != nil {
			return nil, err
		}
		return &unaryNode{pos: t.pos, op: tokMinus, x: x}, nil
	case tokNot:
		p.advance()
		x, err := p.parseExpr(precUnary)
		if err != nil {
			return nil, err
		}
		return &unaryNode{pos: t.pos, op: tokNot, x: x}, nil
	case tokLParen:
		p.advance()
		x, err := p.parseExpr(precLowest)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case tokLBracket:
		return p.parseList()
	case tokLBrace:
		return p.parseMap()
	}
	return nil, p.errf(t.pos, "unexpected %s", t.kind)
}

func (p *parser) parseList() (Node, error) {
	open, err := p.expect(tokLBracket)
	if err != nil {
		return nil, err
	}
	n := &listNode{pos: open.pos}
	if p.cur().kind == tokRBracket {
		p.advance()
		return n, nil
	}
	for {
		e, err := p.parseExpr(precLowest)
		if err != nil {
			return nil, err
		}
		n.elems = append(n.elems, e)
		switch p.cur().kind {
		case tokComma:
			p.advance()
		case tokRBracket:
			p.advance()
			return n, nil
		default:
			return nil, p.errf(p.cur().pos, "expected ',' or ']' in list, found %s", p.cur().kind)
		}
	}
}

func (p *parser) parseMap() (Node, error) {
	open, err := p.expect(tokLBrace)
	if err != nil {
		return nil, err
	}
	n := &mapNode{pos: open.pos}
	if p.cur().kind == tokRBrace {
		p.advance()
		return n, nil
	}
	for {
		kt := p.cur()
		var key string
		switch kt.kind {
		case tokString, tokIdent:
			key = kt.text
			p.advance()
		default:
			return nil, p.errf(kt.pos, "expected map key, found %s", kt.kind)
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		v, err := p.parseExpr(precLowest)
		if err != nil {
			return nil, err
		}
		n.keys = append(n.keys, key)
		n.vals = append(n.vals, v)
		switch p.cur().kind {
		case tokComma:
			p.advance()
		case tokRBrace:
			p.advance()
			return n, nil
		default:
			return nil, p.errf(p.cur().pos, "expected ',' or '}' in map, found %s", p.cur().kind)
		}
	}
}

func (p *parser) parseInfix(left Node, t token) (Node, error) {
	switch t.kind {
	case tokQuestion:
		p.advance()
		then, err := p.parseExpr(precLowest)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		// Right-associative: a ? b : c ? d : e groups as a ? b : (c ? d : e).
		els, err := p.parseExpr(precCond - 1)
		if err != nil {
			return nil, err
		}
		return &condNode{pos: t.pos, cond: left, then: then, else_: els}, nil
	case tokLParen:
		ident, ok := left.(*identNode)
		if !ok {
			return nil, p.errf(t.pos, "only named functions can be called")
		}
		p.advance()
		call := &callNode{pos: t.pos, name: ident.name}
		if p.cur().kind == tokRParen {
			p.advance()
			return call, nil
		}
		for {
			a, err := p.parseExpr(precLowest)
			if err != nil {
				return nil, err
			}
			call.args = append(call.args, a)
			switch p.cur().kind {
			case tokComma:
				p.advance()
			case tokRParen:
				p.advance()
				return call, nil
			default:
				return nil, p.errf(p.cur().pos, "expected ',' or ')' in call, found %s", p.cur().kind)
			}
		}
	case tokLBracket:
		p.advance()
		idx, err := p.parseExpr(precLowest)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return &indexNode{pos: t.pos, x: left, i: idx}, nil
	case tokDot:
		p.advance()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return &memberNode{pos: t.pos, x: left, name: name.text}, nil
	}
	// Ordinary left-associative binary operator.
	p.advance()
	right, err := p.parseExpr(infixPrec(t.kind))
	if err != nil {
		return nil, err
	}
	return &binaryNode{pos: t.pos, op: t.kind, x: left, y: right}, nil
}
