package engine

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/task"
)

// BPMNError is a coded error a service-task handler can return to be
// caught by error boundary events (an empty boundary code catches any
// BPMNError).
type BPMNError struct {
	Code string
	Msg  string
}

// Error implements the error interface.
func (e *BPMNError) Error() string {
	return fmt.Sprintf("bpmn error %q: %s", e.Code, e.Msg)
}

// outMsg is a message thrown during a step, dispatched after the
// instance lock is released (throwing to yourself must not deadlock).
type outMsg struct {
	Name string
	Key  string
	Vars map[string]expr.Value
}

// env builds the expression environment of an instance with optional
// extra bindings.
func (inst *Instance) env(extra map[string]expr.Value) expr.Env {
	return lenientEnv{vars: inst.Vars, extra: extra}
}

// finishStep completes an externally triggered step: re-evaluates
// inclusive joins (their enablement is non-local), detects instance
// completion, persists dirty state, releases the instance lock, and
// dispatches thrown messages. The error is the persistence/durability
// failure, if any; asynchronous callers (task listener, timers,
// message delivery) ignore it — persistence stays write-behind there —
// while synchronous API entry points propagate it so a failed durable
// acknowledgement is never reported as success.
func (e *Engine) finishStep(inst *Instance) error {
	err := e.finishChecks(inst)
	e.releaseStep(inst)
	return err
}

// finishChecks runs the end-of-step bookkeeping under the instance
// lock.
func (e *Engine) finishChecks(inst *Instance) error {
	e.checkInclusiveJoins(inst)
	e.checkCompletion(inst)
	var err error
	if inst.dirty {
		err = e.persistInstance(inst)
		inst.dirty = false
	}
	return err
}

// releaseStep unlocks the instance and dispatches messages thrown
// during the step.
func (e *Engine) releaseStep(inst *Instance) {
	out := inst.outbox
	inst.outbox = nil
	inst.mu.Unlock()
	for _, m := range out {
		vars := make(map[string]any, len(m.Vars))
		for k, v := range m.Vars {
			vars[k] = v.ToGo()
		}
		// Self-correlation re-enters via the public API, which takes
		// the instance lock afresh.
		e.Publish(m.Name, m.Key, vars)
	}
}

func (e *Engine) checkCompletion(inst *Instance) {
	if inst.Status == StatusActive && len(inst.Tokens) == 0 {
		inst.Status = StatusCompleted
		inst.EndedAt = e.clock.Now()
		inst.dirty = true
		e.audit(&history.Event{Type: history.InstanceCompleted, Time: inst.EndedAt,
			ProcessID: inst.ProcessID, InstanceID: inst.ID})
	}
}

// incident faults the instance, leaving tokens in place for forensics.
func (e *Engine) incident(inst *Instance, elemPath, msg string) {
	inst.Status = StatusFaulted
	inst.EndedAt = e.clock.Now()
	inst.dirty = true
	e.audit(&history.Event{Type: history.IncidentRaised, Time: inst.EndedAt,
		ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: elemPath,
		Data: map[string]any{"message": msg}})
	e.audit(&history.Event{Type: history.InstanceFaulted, Time: inst.EndedAt,
		ProcessID: inst.ProcessID, InstanceID: inst.ID})
}

// elementCompleted audits a completed node, marking pure routing nodes
// so mining can exclude them.
func (e *Engine) elementCompleted(inst *Instance, el *model.Element, path, actor string) {
	var data map[string]any
	if el.Kind.IsGateway() || el.Kind.IsEvent() {
		data = map[string]any{"routing": true}
	}
	e.audit(&history.Event{Type: history.ElementCompleted, Time: e.clock.Now(),
		ProcessID: inst.ProcessID, InstanceID: inst.ID,
		ElementID: path, Element: el.Name, Actor: actor, Data: data})
	inst.dirty = true
}

// advance executes the element under tok until it parks or is
// consumed. viaFlow is the sequence-flow ID the token arrived by
// (empty for start events and resumptions).
func (e *Engine) advance(inst *Instance, tok *Token, viaFlow ...string) {
	if inst.Status != StatusActive {
		return
	}
	via := ""
	if len(viaFlow) > 0 {
		via = viaFlow[0]
	}
	proc, el, err := e.resolve(inst, tok.Elem)
	if err != nil {
		e.incident(inst, tok.Elem, err.Error())
		return
	}
	e.audit(&history.Event{Type: history.ElementActivated, Time: e.clock.Now(),
		ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: tok.Elem, Element: el.Name})

	// Multi-instance wrapper intercepts activity entry.
	if el.Multi != nil && tok.MI == nil {
		e.enterMultiInstance(inst, tok, proc, el)
		return
	}

	switch el.Kind {
	case model.KindStartEvent:
		if inst.StartedAt.IsZero() {
			inst.StartedAt = e.clock.Now()
		}
		e.elementCompleted(inst, el, tok.Elem, "")
		e.continueOutgoing(inst, tok, proc, el)

	case model.KindEndEvent:
		e.elementCompleted(inst, el, tok.Elem, "")
		scope := scopeOf(tok.Elem)
		inst.dropToken(tok)
		e.completeScopeIfDrained(inst, scope)

	case model.KindTerminateEnd:
		e.elementCompleted(inst, el, tok.Elem, "")
		scope := scopeOf(tok.Elem)
		inst.dropToken(tok)
		e.terminateScope(inst, scope)

	case model.KindServiceTask:
		e.runServiceTask(inst, tok, proc, el, nil)

	case model.KindScriptTask:
		if err := e.applyOutputs(inst, el, nil); err != nil {
			e.handleTaskError(inst, tok, proc, el, err)
			return
		}
		e.elementCompleted(inst, el, tok.Elem, "")
		e.continueOutgoing(inst, tok, proc, el)

	case model.KindUserTask, model.KindManualTask:
		e.createWorkItem(inst, tok, proc, el, nil)

	case model.KindSendTask, model.KindMessageThrowEvent:
		key, err := e.corrKey(inst, el, nil)
		if err != nil {
			e.incident(inst, tok.Elem, err.Error())
			return
		}
		vars := make(map[string]expr.Value, len(inst.Vars))
		for k, v := range inst.Vars {
			vars[k] = v
		}
		inst.outbox = append(inst.outbox, outMsg{Name: el.Message, Key: key, Vars: vars})
		e.audit(&history.Event{Type: history.MessagePublished, Time: e.clock.Now(),
			ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: tok.Elem,
			Data: map[string]any{"message": el.Message, "key": key}})
		e.elementCompleted(inst, el, tok.Elem, "")
		e.continueOutgoing(inst, tok, proc, el)

	case model.KindReceiveTask, model.KindMessageCatchEvent:
		e.parkForMessage(inst, tok, proc, el)

	case model.KindTimerCatchEvent:
		d, _ := time.ParseDuration(el.Timer) // validated at deploy
		tok.Wait = WaitTimer
		tok.TimerAt = e.clock.Now().Add(d)
		e.armTokenTimer(inst, tok)
		inst.dirty = true

	case model.KindExclusiveGateway:
		e.elementCompleted(inst, el, tok.Elem, "")
		e.exclusiveSplit(inst, tok, proc, el)

	case model.KindParallelGateway:
		if len(proc.Incoming(el.ID)) > 1 {
			e.parallelJoin(inst, tok, proc, el, via)
			return
		}
		e.elementCompleted(inst, el, tok.Elem, "")
		e.continueOutgoing(inst, tok, proc, el)

	case model.KindInclusiveGateway:
		if len(proc.Incoming(el.ID)) > 1 {
			e.inclusiveJoinArrive(inst, tok, via)
			return
		}
		e.elementCompleted(inst, el, tok.Elem, "")
		e.inclusiveSplit(inst, tok, proc, el)

	case model.KindEventGateway:
		e.armEventGateway(inst, tok, proc, el)

	case model.KindSubProcess:
		e.enterScope(inst, tok, el.SubProcess)

	case model.KindCallActivity:
		e.mu.RLock()
		called := e.definitions[el.CalledProcess]
		e.mu.RUnlock()
		if called == nil {
			e.incident(inst, tok.Elem, fmt.Sprintf("call activity %q: no definition %q", el.ID, el.CalledProcess))
			return
		}
		e.enterScope(inst, tok, called)

	case model.KindBoundaryEvent:
		// Boundary events are never entered via sequence flow; they
		// fire through their host's arms.
		e.incident(inst, tok.Elem, "token entered a boundary event")

	default:
		e.incident(inst, tok.Elem, fmt.Sprintf("unsupported element kind %s", el.Kind))
	}
}

// continueOutgoing emits tokens on the activity's outgoing flows:
// unconditional flows always fire; conditional flows fire when true.
// Multiple flows fork in parallel (BPMN implicit split). A stuck token
// (no flow firing) raises an incident.
func (e *Engine) continueOutgoing(inst *Instance, tok *Token, proc *model.Process, el *model.Element) {
	flows := proc.Outgoing(el.ID)
	scope := scopeOf(tok.Elem)
	var taken []*model.Flow
	for _, f := range flows {
		if f.Condition == "" {
			taken = append(taken, f)
			continue
		}
		ok, err := e.evalFlowCond(inst, f, nil)
		if err != nil {
			e.incident(inst, tok.Elem, fmt.Sprintf("flow %q condition: %v", f.ID, err))
			return
		}
		if ok {
			taken = append(taken, f)
		}
	}
	if len(taken) == 0 {
		if len(flows) == 0 {
			// Implicit end: consume the token.
			inst.dropToken(tok)
			e.completeScopeIfDrained(inst, scope)
			return
		}
		e.incident(inst, tok.Elem, "no outgoing flow enabled")
		return
	}
	// Reuse the current token for the first flow; fork the rest. Fork
	// positions are assigned before anything advances so that a
	// terminate end (or interrupting boundary) firing during the first
	// branch's cascade can see and cancel them.
	first := taken[0]
	rest := taken[1:]
	forks := make([]*Token, 0, len(rest))
	for _, f := range rest {
		forks = append(forks, inst.newToken(e, scope+f.To))
	}
	tok.Wait = WaitNone
	tok.Elem = scope + first.To
	e.advance(inst, tok, first.ID)
	for i, f := range rest {
		if _, live := inst.Tokens[forks[i].ID]; !live {
			continue // cancelled by a terminate/boundary during the cascade
		}
		e.advance(inst, forks[i], f.ID)
	}
}

// evalFlowCond evaluates a sequence flow's guard using its precompiled
// program (deployed definitions compile all expressions once, at
// deploy time; see model.Process.Compile).
func (e *Engine) evalFlowCond(inst *Instance, f *model.Flow, extra map[string]expr.Value) (bool, error) {
	p, err := f.Program()
	if err != nil {
		return false, err
	}
	if p == nil {
		return true, nil // unconditional
	}
	return p.EvalBool(inst.env(extra))
}

// applyOutputs evaluates an element's precompiled output mappings
// (sorted by variable name for determinism) into the case data.
func (e *Engine) applyOutputs(inst *Instance, el *model.Element, extra map[string]expr.Value) error {
	mappings, err := el.OutputMappings()
	if err != nil {
		return err
	}
	if len(mappings) == 0 {
		return nil
	}
	env := inst.env(extra)
	for _, m := range mappings {
		v, err := m.Program.Eval(env)
		if err != nil {
			return fmt.Errorf("output %q: %w", m.Name, err)
		}
		inst.Vars[m.Name] = v
	}
	inst.dirty = true
	return nil
}

// runServiceTask executes a handler synchronously with retries, error
// boundaries, and incidents.
func (e *Engine) runServiceTask(inst *Instance, tok *Token, proc *model.Process, el *model.Element, extra map[string]expr.Value) {
	h, ok := e.handler(el.Handler)
	if !ok {
		e.incident(inst, tok.Elem, fmt.Sprintf("%v: %q", ErrUnknownHandler, el.Handler))
		return
	}
	snapshot := make(map[string]expr.Value, len(inst.Vars)+len(extra))
	for k, v := range inst.Vars {
		snapshot[k] = v
	}
	for k, v := range extra {
		snapshot[k] = v
	}
	tc := TaskContext{InstanceID: inst.ID, ProcessID: inst.ProcessID, ElementID: tok.Elem, Vars: snapshot}
	var updates map[string]expr.Value
	var err error
	for attempt := 0; ; attempt++ {
		updates, err = h(tc)
		if err == nil {
			break
		}
		if attempt >= el.Retries {
			e.handleTaskError(inst, tok, proc, el, err)
			return
		}
		inst.Retries[tok.ID] = attempt + 1
	}
	for k, v := range updates {
		inst.Vars[k] = v
	}
	if err := e.applyOutputs(inst, el, extra); err != nil {
		e.handleTaskError(inst, tok, proc, el, err)
		return
	}
	if tok.MI != nil {
		return // multi-instance controller handles continuation
	}
	e.elementCompleted(inst, el, tok.Elem, el.Handler)
	e.continueOutgoing(inst, tok, proc, el)
}

// handleTaskError routes a failed activity to a matching error
// boundary event, or faults the instance.
func (e *Engine) handleTaskError(inst *Instance, tok *Token, proc *model.Process, el *model.Element, err error) {
	var code string
	var berr *BPMNError
	if errors.As(err, &berr) {
		code = berr.Code
	}
	scope := scopeOf(tok.Elem)
	for _, bd := range proc.BoundaryEvents(el.ID) {
		if bd.Boundary != model.BoundaryError {
			continue
		}
		if bd.ErrorCode != "" && bd.ErrorCode != code {
			continue
		}
		e.audit(&history.Event{Type: history.ElementFaulted, Time: e.clock.Now(),
			ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: tok.Elem,
			Data: map[string]any{"error": err.Error()}})
		e.disarmToken(inst, tok)
		tok.Wait = WaitNone
		tok.MI = nil
		tok.Boundaries = nil
		tok.Elem = scope + bd.ID
		bproc, bel, rerr := e.resolve(inst, tok.Elem)
		if rerr != nil {
			e.incident(inst, tok.Elem, rerr.Error())
			return
		}
		e.elementCompleted(inst, bel, tok.Elem, "")
		e.continueOutgoing(inst, tok, bproc, bel)
		return
	}
	e.incident(inst, tok.Elem, fmt.Sprintf("activity %q failed: %v", el.ID, err))
}

// createWorkItem parks the token on a new user/manual work item and
// arms boundary events.
func (e *Engine) createWorkItem(inst *Instance, tok *Token, proc *model.Process, el *model.Element, extra map[string]expr.Value) {
	data := map[string]any{}
	for k, v := range inst.Vars {
		data[k] = v.ToGo()
	}
	for k, v := range extra {
		data[k] = v.ToGo()
	}
	var due time.Duration
	if el.DueIn != "" {
		due, _ = time.ParseDuration(el.DueIn) // validated at deploy
	}
	name := el.Name
	if name == "" {
		name = el.ID
	}
	it, err := e.tasks.Create(task.Spec{
		ProcessID:  inst.ProcessID,
		InstanceID: inst.ID,
		ElementID:  tok.Elem,
		Name:       name,
		Role:       el.Role,
		Assignee:   el.Assignee,
		Capability: el.Capability,
		Priority:   el.Priority,
		Due:        due,
		Data:       data,
	})
	if err != nil {
		e.incident(inst, tok.Elem, fmt.Sprintf("create work item: %v", err))
		return
	}
	tok.Wait = WaitUserTask
	if tok.MI != nil {
		tok.Wait = WaitMulti
		tok.MI.OpenItems = append(tok.MI.OpenItems, it.ID)
	} else {
		tok.WorkItemID = it.ID
	}
	e.armBoundaries(inst, tok, proc, el)
	inst.dirty = true
}

// resumeWorkItem continues the instance whose token waits on the
// closed work item. success=false routes through error boundaries.
func (e *Engine) resumeWorkItem(it *task.Item, success bool) {
	t0 := e.metrics.Transition.Start()
	defer e.metrics.Transition.Since(t0)
	e.mu.RLock()
	inst, ok := e.instances[it.InstanceID]
	e.mu.RUnlock()
	if !ok {
		return
	}
	inst.mu.Lock()
	if inst.Status != StatusActive {
		inst.mu.Unlock()
		return
	}
	tok := inst.tokenForWorkItem(it.ID)
	if tok == nil {
		inst.mu.Unlock()
		return
	}
	proc, el, err := e.resolve(inst, tok.Elem)
	if err != nil {
		e.incident(inst, tok.Elem, err.Error())
		e.finishStep(inst)
		return
	}
	// Merge the outcome payload into case data.
	for k, raw := range it.Outcome {
		v, convErr := expr.FromGo(raw)
		if convErr != nil {
			e.incident(inst, tok.Elem, fmt.Sprintf("outcome %q: %v", k, convErr))
			e.finishStep(inst)
			return
		}
		inst.Vars[k] = v
		inst.dirty = true
	}
	if !success && it.State == task.Failed {
		e.handleTaskError(inst, tok, proc, el, &BPMNError{Code: "task-failed", Msg: it.Reason})
		e.finishStep(inst)
		return
	}
	if tok.MI != nil {
		e.multiInstanceItemDone(inst, tok, proc, el, it)
		e.finishStep(inst)
		return
	}
	if err := e.applyOutputs(inst, el, nil); err != nil {
		e.handleTaskError(inst, tok, proc, el, err)
		e.finishStep(inst)
		return
	}
	e.disarmToken(inst, tok)
	tok.Wait = WaitNone
	tok.WorkItemID = ""
	e.elementCompleted(inst, el, tok.Elem, it.Assignee)
	e.continueOutgoing(inst, tok, proc, el)
	e.finishStep(inst)
}

func (inst *Instance) tokenForWorkItem(itemID string) *Token {
	for _, t := range inst.Tokens {
		if t.WorkItemID == itemID {
			return t
		}
		if t.MI != nil {
			for _, id := range t.MI.OpenItems {
				if id == itemID {
					return t
				}
			}
		}
	}
	return nil
}

// enterScope starts a sub-process or called process body under the
// activity token.
func (e *Engine) enterScope(inst *Instance, tok *Token, body *model.Process) {
	proc, el, err := e.resolve(inst, tok.Elem)
	if err != nil {
		e.incident(inst, tok.Elem, err.Error())
		return
	}
	tok.Wait = WaitSubProc
	e.armBoundaries(inst, tok, proc, el)
	inst.dirty = true
	prefix := tok.Elem + "/"
	starts := body.StartEvents()
	children := make([]*Token, 0, len(starts))
	for _, s := range starts {
		children = append(children, inst.newToken(e, prefix+s.ID))
	}
	for _, child := range children {
		if _, live := inst.Tokens[child.ID]; !live {
			continue
		}
		e.advance(inst, child)
	}
}

// completeScopeIfDrained resumes a parent sub-process token once its
// scope has no remaining tokens. scope is "" at the root (instance
// completion is handled by checkCompletion).
func (e *Engine) completeScopeIfDrained(inst *Instance, scope string) {
	if scope == "" {
		return
	}
	for _, t := range inst.Tokens {
		if strings.HasPrefix(t.Elem, scope) {
			return // scope still live
		}
	}
	parentPath := strings.TrimSuffix(scope, "/")
	var parent *Token
	for _, t := range inst.Tokens {
		if t.Elem == parentPath && t.Wait == WaitSubProc {
			parent = t
			break
		}
	}
	if parent == nil {
		return
	}
	proc, el, err := e.resolve(inst, parentPath)
	if err != nil {
		e.incident(inst, parentPath, err.Error())
		return
	}
	e.disarmToken(inst, parent)
	parent.Wait = WaitNone
	if err := e.applyOutputs(inst, el, nil); err != nil {
		e.handleTaskError(inst, parent, proc, el, err)
		return
	}
	e.elementCompleted(inst, el, parentPath, "")
	e.continueOutgoing(inst, parent, proc, el)
}

// terminateScope drops every token in the scope; at the root the whole
// instance completes immediately (terminate end event semantics).
func (e *Engine) terminateScope(inst *Instance, scope string) {
	for _, t := range inst.Tokens {
		if scope == "" || strings.HasPrefix(t.Elem, scope) {
			e.cancelToken(inst, t, "terminated")
		}
	}
	// Clear join state inside the scope.
	for path := range inst.Joins {
		if scope == "" || strings.HasPrefix(path, scope) {
			delete(inst.Joins, path)
		}
	}
	inst.dirty = true
	if scope == "" {
		return // checkCompletion completes the instance
	}
	e.completeScopeIfDrained(inst, scope)
}

// cancelToken disarms and removes a token, cancelling any open work
// items and nested scope tokens.
func (e *Engine) cancelToken(inst *Instance, tok *Token, reason string) {
	e.disarmToken(inst, tok)
	if tok.WorkItemID != "" {
		_, _ = e.tasks.Cancel(tok.WorkItemID, reason)
	}
	if tok.MI != nil {
		for _, id := range tok.MI.OpenItems {
			_, _ = e.tasks.Cancel(id, reason)
		}
	}
	if tok.Wait == WaitSubProc {
		prefix := tok.Elem + "/"
		for _, t := range inst.Tokens {
			if strings.HasPrefix(t.Elem, prefix) {
				e.cancelToken(inst, t, reason)
			}
		}
	}
	inst.dropToken(tok)
	inst.dirty = true
}

func (e *Engine) cancelAllTokens(inst *Instance, reason string) {
	for _, t := range inst.Tokens {
		e.cancelToken(inst, t, reason)
	}
	inst.Joins = map[string]map[string][]uint64{}
}
