package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/model"
)

// exclusiveSplit routes the token along the first condition-true
// outgoing flow (in definition order), falling back to the default
// flow, and raising an incident when nothing is enabled.
func (e *Engine) exclusiveSplit(inst *Instance, tok *Token, proc *model.Process, el *model.Element) {
	flows := proc.Outgoing(el.ID)
	scope := scopeOf(tok.Elem)
	var defaultFlow *model.Flow
	for _, f := range flows {
		if f.ID == el.DefaultFlow {
			defaultFlow = f
			continue
		}
		enabled := true
		if f.Condition != "" {
			ok, err := e.evalFlowCond(inst, f, nil)
			if err != nil {
				e.incident(inst, tok.Elem, fmt.Sprintf("flow %q condition: %v", f.ID, err))
				return
			}
			enabled = ok
		}
		if enabled {
			tok.Elem = scope + f.To
			e.advance(inst, tok, f.ID)
			return
		}
	}
	if defaultFlow != nil {
		tok.Elem = scope + defaultFlow.To
		e.advance(inst, tok, defaultFlow.ID)
		return
	}
	e.incident(inst, tok.Elem, "exclusive gateway: no flow enabled and no default")
}

// inclusiveSplit fires every condition-true outgoing flow (plus the
// default when none is true).
func (e *Engine) inclusiveSplit(inst *Instance, tok *Token, proc *model.Process, el *model.Element) {
	flows := proc.Outgoing(el.ID)
	scope := scopeOf(tok.Elem)
	var taken []*model.Flow
	var defaultFlow *model.Flow
	for _, f := range flows {
		if f.ID == el.DefaultFlow {
			defaultFlow = f
			continue
		}
		enabled := true
		if f.Condition != "" {
			ok, err := e.evalFlowCond(inst, f, nil)
			if err != nil {
				e.incident(inst, tok.Elem, fmt.Sprintf("flow %q condition: %v", f.ID, err))
				return
			}
			enabled = ok
		}
		if enabled {
			taken = append(taken, f)
		}
	}
	if len(taken) == 0 {
		if defaultFlow == nil {
			e.incident(inst, tok.Elem, "inclusive gateway: no flow enabled and no default")
			return
		}
		taken = []*model.Flow{defaultFlow}
	}
	first := taken[0]
	rest := taken[1:]
	forks := make([]*Token, 0, len(rest))
	for _, f := range rest {
		forks = append(forks, inst.newToken(e, scope+f.To))
	}
	tok.Elem = scope + first.To
	e.advance(inst, tok, first.ID)
	for i, f := range rest {
		if _, live := inst.Tokens[forks[i].ID]; !live {
			continue // cancelled during the first branch's cascade
		}
		e.advance(inst, forks[i], f.ID)
	}
}

// parallelJoin records the arrival and fires the join as soon as every
// incoming flow has delivered a token.
func (e *Engine) parallelJoin(inst *Instance, tok *Token, proc *model.Process, el *model.Element, via string) {
	path := tok.Elem
	arr := inst.Joins[path]
	if arr == nil {
		arr = map[string][]uint64{}
		inst.Joins[path] = arr
	}
	arr[via] = append(arr[via], tok.ID)
	tok.Wait = WaitJoin
	inst.dirty = true
	for _, f := range proc.Incoming(el.ID) {
		if len(arr[f.ID]) == 0 {
			return // still waiting
		}
	}
	e.fireJoin(inst, path, proc, el, allIncoming(proc, el))
}

func allIncoming(proc *model.Process, el *model.Element) []string {
	flows := proc.Incoming(el.ID)
	out := make([]string, len(flows))
	for i, f := range flows {
		out[i] = f.ID
	}
	return out
}

// fireJoin consumes one queued token per listed flow and continues a
// single merged token.
func (e *Engine) fireJoin(inst *Instance, path string, proc *model.Process, el *model.Element, flows []string) {
	arr := inst.Joins[path]
	var survivor *Token
	for _, fid := range flows {
		ids := arr[fid]
		if len(ids) == 0 {
			continue
		}
		id := ids[0]
		arr[fid] = ids[1:]
		if len(arr[fid]) == 0 {
			delete(arr, fid)
		}
		t := inst.Tokens[id]
		if t == nil {
			continue
		}
		if survivor == nil {
			survivor = t
		} else {
			inst.dropToken(t)
		}
	}
	if len(arr) == 0 {
		delete(inst.Joins, path)
	}
	if survivor == nil {
		return
	}
	survivor.Wait = WaitNone
	e.elementCompleted(inst, el, path, "")
	e.continueOutgoing(inst, survivor, proc, el)
}

// inclusiveJoinArrive parks the token; enablement is decided globally
// in checkInclusiveJoins after each step.
func (e *Engine) inclusiveJoinArrive(inst *Instance, tok *Token, via string) {
	path := tok.Elem
	arr := inst.Joins[path]
	if arr == nil {
		arr = map[string][]uint64{}
		inst.Joins[path] = arr
	}
	arr[via] = append(arr[via], tok.ID)
	tok.Wait = WaitJoin
	inst.dirty = true
}

// checkInclusiveJoins implements the non-local OR-join rule: a join
// fires when at least one token has arrived and no other token in the
// instance can still reach the join. Firing one join can unblock
// another, so the check loops to a fixpoint.
func (e *Engine) checkInclusiveJoins(inst *Instance) {
	if inst.Status != StatusActive {
		return
	}
	for changed := true; changed; {
		changed = false
		paths := make([]string, 0, len(inst.Joins))
		for p := range inst.Joins {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, path := range paths {
			proc, el, err := e.resolve(inst, path)
			if err != nil || el.Kind != model.KindInclusiveGateway {
				continue
			}
			arr := inst.Joins[path]
			arrived := map[uint64]bool{}
			hasArrival := false
			for _, ids := range arr {
				for _, id := range ids {
					arrived[id] = true
					hasArrival = true
				}
			}
			if !hasArrival {
				delete(inst.Joins, path)
				continue
			}
			if e.orJoinBlocked(inst, path, proc, arrived) {
				continue
			}
			// Fire with the flows that have tokens queued.
			var flows []string
			for fid, ids := range arr {
				if len(ids) > 0 {
					flows = append(flows, fid)
				}
			}
			sort.Strings(flows)
			e.fireJoin(inst, path, proc, el, flows)
			changed = true
		}
	}
}

// orJoinBlocked reports whether some token other than the arrived ones
// can still reach the join.
func (e *Engine) orJoinBlocked(inst *Instance, path string, proc *model.Process, arrived map[uint64]bool) bool {
	scope := scopeOf(path)
	joinID := lastSegment(path)
	upstream := e.upstreamSet(proc, joinID)
	for _, t := range inst.Tokens {
		if arrived[t.ID] {
			continue
		}
		if !strings.HasPrefix(t.Elem, scope) {
			continue // outside the join's scope
		}
		rest := t.Elem[len(scope):]
		// The token's element at the join's scope level.
		local := rest
		if i := strings.Index(rest, "/"); i >= 0 {
			local = rest[:i]
		}
		if local == joinID {
			// Another arrival queue entry not in `arrived` (e.g. a
			// token at the same element of a different path) — treat
			// as upstream to stay safe.
			return true
		}
		if upstream[local] {
			return true
		}
	}
	return false
}

// upstreamSet computes (and caches) the set of element IDs from which
// the given element is reachable within one process body, following
// sequence flows and boundary attachments.
func (e *Engine) upstreamSet(proc *model.Process, target string) map[string]bool {
	key := upstreamKey{proc: proc, target: target}
	if v, ok := e.upstreamCache.Load(key); ok {
		return v.(map[string]bool)
	}
	set := map[string]bool{}
	stack := []string{target}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range proc.Incoming(id) {
			if !set[f.From] {
				set[f.From] = true
				stack = append(stack, f.From)
			}
		}
		// A boundary event's upstream includes its host activity.
		if el := proc.ElementByID(id); el != nil && el.Kind == model.KindBoundaryEvent {
			if !set[el.AttachedTo] {
				set[el.AttachedTo] = true
				stack = append(stack, el.AttachedTo)
			}
		}
	}
	e.upstreamCache.Store(key, set)
	return set
}

type upstreamKey struct {
	proc   *model.Process
	target string
}

// armEventGateway parks the token and arms a race between the
// gateway's successor catch events.
func (e *Engine) armEventGateway(inst *Instance, tok *Token, proc *model.Process, el *model.Element) {
	scope := scopeOf(tok.Elem)
	tok.Wait = WaitEventGate
	for _, f := range proc.Outgoing(el.ID) {
		succ := proc.ElementByID(f.To)
		arm := raceArm{Elem: scope + succ.ID}
		switch succ.Kind {
		case model.KindTimerCatchEvent:
			d, _ := time.ParseDuration(succ.Timer)
			arm.TimerAt = e.clock.Now().Add(d)
			instID, tokID, armElem := inst.ID, tok.ID, arm.Elem
			arm.timerID = e.timers.Schedule(arm.TimerAt, func() {
				e.fireRace(instID, tokID, armElem, nil)
			})
		case model.KindMessageCatchEvent, model.KindReceiveTask:
			key, err := e.corrKey(inst, succ, nil)
			if err != nil {
				e.incident(inst, tok.Elem, err.Error())
				return
			}
			arm.Message = succ.Message
			arm.CorrKey = key
			e.subs.add(subscription{
				Name: succ.Message, Key: key, InstanceID: inst.ID,
				TokenID: tok.ID, Elem: arm.Elem, Kind: subRace,
			})
		default:
			e.incident(inst, tok.Elem, fmt.Sprintf("event gateway successor %q is %s", succ.ID, succ.Kind))
			return
		}
		tok.Race = append(tok.Race, arm)
	}
	inst.dirty = true
}

// fireRace resolves an event-gateway race in favour of the given arm.
func (e *Engine) fireRace(instID string, tokID uint64, armElem string, msgVars map[string]expr.Value) {
	if e.degraded.Load() {
		return // frozen: race arms re-arm from the journal after repair
	}
	e.mu.RLock()
	inst, ok := e.instances[instID]
	e.mu.RUnlock()
	if !ok {
		return
	}
	inst.mu.Lock()
	if inst.Status != StatusActive {
		inst.mu.Unlock()
		return
	}
	tok := inst.Tokens[tokID]
	if tok == nil || tok.Wait != WaitEventGate {
		inst.mu.Unlock()
		return
	}
	found := false
	for _, a := range tok.Race {
		if a.Elem == armElem {
			found = true
		}
	}
	if !found {
		inst.mu.Unlock()
		return
	}
	e.disarmToken(inst, tok)
	tok.Wait = WaitNone
	tok.Elem = armElem
	for k, v := range msgVars {
		inst.Vars[k] = v
	}
	proc, el, err := e.resolve(inst, armElem)
	if err != nil {
		e.incident(inst, armElem, err.Error())
		e.finishStep(inst)
		return
	}
	if el.Kind == model.KindTimerCatchEvent {
		e.audit(&history.Event{Type: history.TimerFired, Time: e.clock.Now(),
			ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: armElem})
	} else {
		e.audit(&history.Event{Type: history.MessageCorrelated, Time: e.clock.Now(),
			ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: armElem})
	}
	if err := e.applyOutputs(inst, el, nil); err != nil {
		e.handleTaskError(inst, tok, proc, el, err)
		e.finishStep(inst)
		return
	}
	e.elementCompleted(inst, el, armElem, "")
	e.continueOutgoing(inst, tok, proc, el)
	e.finishStep(inst)
}
