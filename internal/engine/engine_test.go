package engine

import (
	"strings"
	"testing"
	"time"

	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/resource"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
)

var t0 = time.Date(2026, 6, 1, 8, 0, 0, 0, time.UTC)

// fixture bundles an engine with a virtual clock and a worklist backed
// by a small org model.
type fixture struct {
	e     *Engine
	clock *timer.VirtualClock
	wheel timer.Service
	hist  *history.Store
	tasks *task.Service
}

// tick advances virtual time and fires due timers.
func (f *fixture) tick(d time.Duration) {
	f.wheel.AdvanceTo(f.clock.Advance(d))
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clock := timer.NewVirtualClock(t0)
	wheel := timer.NewWheelService(time.Millisecond, 256)
	dir := resource.NewDirectory()
	dir.AddUser(&resource.User{ID: "alice", Roles: []string{"clerk", "manager"}})
	dir.AddUser(&resource.User{ID: "bob", Roles: []string{"clerk"}})
	tasks := task.NewService(task.Config{Directory: dir, Now: clock.Now})
	hist, err := history.NewStore(storage.NewMemJournal())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Tasks:   tasks,
		Timers:  wheel,
		Clock:   clock,
		History: hist,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterHandler(model.NoopHandler, func(TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	return &fixture{e: e, clock: clock, wheel: wheel, hist: hist, tasks: tasks}
}

func deployAndStart(t *testing.T, f *fixture, p *model.Process, vars map[string]any) *InstanceView {
	t.Helper()
	if err := f.e.Deploy(p); err != nil {
		t.Fatalf("Deploy(%s): %v", p.ID, err)
	}
	v, err := f.e.StartInstance(p.ID, vars)
	if err != nil {
		t.Fatalf("StartInstance(%s): %v", p.ID, err)
	}
	return v
}

func instStatus(t *testing.T, f *fixture, id string) Status {
	t.Helper()
	v, err := f.e.Instance(id)
	if err != nil {
		t.Fatal(err)
	}
	return v.Status
}

func TestSequenceCompletes(t *testing.T) {
	f := newFixture(t)
	v := deployAndStart(t, f, model.Sequence(10), nil)
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s, want completed (tokens %v)", v.Status, v.ActiveTokens)
	}
	if len(v.ActiveTokens) != 0 {
		t.Errorf("tokens = %v", v.ActiveTokens)
	}
	// History recorded the full trace.
	evs := f.hist.EventsOf(v.ID)
	completions := 0
	for _, ev := range evs {
		if ev.Type == history.ElementCompleted {
			completions++
		}
	}
	if completions != 12 { // start + 10 tasks + end
		t.Errorf("element completions = %d, want 12", completions)
	}
}

func TestExclusiveChoiceRouting(t *testing.T) {
	f := newFixture(t)
	if err := f.e.Deploy(model.Choice(3)); err != nil {
		t.Fatal(err)
	}
	for branch := 0; branch <= 3; branch++ {
		v, err := f.e.StartInstance("xor-3", map[string]any{"branch": branch})
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusCompleted {
			t.Fatalf("branch %d: status %s", branch, v.Status)
		}
		// The taken branch appears in history.
		want := "t0"
		if branch >= 1 {
			want = map[int]string{1: "t1", 2: "t2", 3: "t3"}[branch]
		}
		found := false
		for _, ev := range f.hist.EventsOf(v.ID) {
			if ev.Type == history.ElementCompleted && ev.ElementID == want {
				found = true
			}
		}
		if !found {
			t.Errorf("branch %d: %s not executed", branch, want)
		}
	}
}

func TestParallelForkJoin(t *testing.T) {
	f := newFixture(t)
	v := deployAndStart(t, f, model.Parallel(5), nil)
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s", v.Status)
	}
	evs := f.hist.EventsOf(v.ID)
	tasks := map[string]bool{}
	joins := 0
	for _, ev := range evs {
		if ev.Type == history.ElementCompleted {
			if strings.HasPrefix(ev.ElementID, "t") {
				tasks[ev.ElementID] = true
			}
			if ev.ElementID == "join" {
				joins++
			}
		}
	}
	if len(tasks) != 5 {
		t.Errorf("executed tasks = %v", tasks)
	}
	if joins != 1 {
		t.Errorf("join fired %d times, want exactly 1", joins)
	}
}

func TestLoopIterates(t *testing.T) {
	f := newFixture(t)
	v := deployAndStart(t, f, model.Loop(), map[string]any{"limit": 5, "count": 0})
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s", v.Status)
	}
	cnt, ok := v.Vars["count"]
	if !ok {
		t.Fatal("count variable missing")
	}
	if got, _ := cnt.AsInt(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
}

func TestScriptTaskOutputs(t *testing.T) {
	f := newFixture(t)
	p := model.New("calc").
		Start("s").
		ScriptTask("compute",
			model.Output("total", "price * qty"),
			model.Output("discounted", "price * qty * 0.9")).
		End("e").
		Seq("s", "compute", "e").
		MustBuild()
	v := deployAndStart(t, f, p, map[string]any{"price": 10, "qty": 4})
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s", v.Status)
	}
	if got, _ := v.Vars["total"].AsInt(); got != 40 {
		t.Errorf("total = %v", v.Vars["total"])
	}
	if got, _ := v.Vars["discounted"].AsFloat(); got != 36 {
		t.Errorf("discounted = %v", v.Vars["discounted"])
	}
}

func TestUserTaskLifecycle(t *testing.T) {
	f := newFixture(t)
	p := model.New("approval").
		Start("s").
		UserTask("approve", model.Name("Approve"), model.Role("manager")).
		XOR("check", model.Default("toReject")).
		ServiceTask("accept", model.NoopHandler).
		ServiceTask("reject", model.NoopHandler).
		XOR("merge").
		End("e").
		Flow("s", "approve").
		Flow("approve", "check").
		FlowIf("check", "accept", "approved == true").
		FlowID("toReject", "check", "reject", "").
		Flow("accept", "merge").
		Flow("reject", "merge").
		Flow("merge", "e").
		MustBuild()
	v := deployAndStart(t, f, p, map[string]any{"amount": 900})
	if v.Status != StatusActive {
		t.Fatalf("status = %s, want active", v.Status)
	}
	if len(v.ActiveTokens) != 1 || v.ActiveTokens[0].Wait != WaitUserTask {
		t.Fatalf("tokens = %+v", v.ActiveTokens)
	}

	// The work item is offered to managers (alice only).
	offered := f.tasks.OfferedItems("alice")
	if len(offered) != 1 || offered[0].Name != "Approve" {
		t.Fatalf("alice offers = %v", offered)
	}
	if offered[0].Data["amount"] != int64(900) {
		t.Errorf("work item data = %v", offered[0].Data)
	}
	itemID := offered[0].ID
	if _, err := f.tasks.Claim(itemID, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.tasks.Start(itemID, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.tasks.Complete(itemID, "alice", map[string]any{"approved": true}); err != nil {
		t.Fatal(err)
	}

	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status after completion = %s", got)
	}
	// The approved branch ran.
	ran := map[string]bool{}
	for _, ev := range f.hist.EventsOf(v.ID) {
		if ev.Type == history.ElementCompleted {
			ran[ev.ElementID] = true
		}
	}
	if !ran["accept"] || ran["reject"] {
		t.Errorf("ran = %v", ran)
	}
}

func TestServiceTaskRetriesAndErrorBoundary(t *testing.T) {
	f := newFixture(t)
	attempts := 0
	f.e.RegisterHandler("flaky", func(TaskContext) (map[string]expr.Value, error) {
		attempts++
		if attempts < 3 {
			return nil, &BPMNError{Code: "transient", Msg: "try again"}
		}
		return map[string]expr.Value{"ok": expr.True}, nil
	})
	p := model.New("retrying").
		Start("s").
		ServiceTask("work", "flaky", model.Retries(5)).
		End("e").
		Seq("s", "work", "e").
		MustBuild()
	v := deployAndStart(t, f, p, nil)
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s", v.Status)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if ok, _ := v.Vars["ok"].AsBool(); !ok {
		t.Error("handler updates lost")
	}

	// Exhausted retries route to a matching error boundary.
	f.e.RegisterHandler("alwaysFails", func(TaskContext) (map[string]expr.Value, error) {
		return nil, &BPMNError{Code: "E42", Msg: "broken"}
	})
	p2 := model.New("catching").
		Start("s").
		ServiceTask("work", "alwaysFails", model.Retries(1)).
		BoundaryError("catch", "work", "E42").
		ServiceTask("fallback", model.NoopHandler).
		XOR("merge").
		End("e").
		Flow("s", "work").
		Flow("work", "merge").
		Flow("catch", "fallback").
		Flow("fallback", "merge").
		Flow("merge", "e").
		MustBuild()
	v2 := deployAndStart(t, f, p2, nil)
	if v2.Status != StatusCompleted {
		t.Fatalf("status = %s", v2.Status)
	}
	ran := map[string]bool{}
	for _, ev := range f.hist.EventsOf(v2.ID) {
		if ev.Type == history.ElementCompleted {
			ran[ev.ElementID] = true
		}
	}
	if !ran["fallback"] {
		t.Error("error boundary path not taken")
	}

	// Non-matching code faults the instance.
	p3 := model.New("unmatched").
		Start("s").
		ServiceTask("work", "alwaysFails").
		BoundaryError("catch", "work", "OTHER").
		ServiceTask("fallback", model.NoopHandler).
		XOR("merge").
		End("e").
		Flow("s", "work").
		Flow("work", "merge").
		Flow("catch", "fallback").
		Flow("fallback", "merge").
		Flow("merge", "e").
		MustBuild()
	v3 := deployAndStart(t, f, p3, nil)
	if v3.Status != StatusFaulted {
		t.Fatalf("status = %s, want faulted", v3.Status)
	}
}

func TestTimerCatchEvent(t *testing.T) {
	f := newFixture(t)
	p := model.New("delayed").
		Start("s").
		TimerCatch("wait", "30m").
		ServiceTask("after", model.NoopHandler).
		End("e").
		Seq("s", "wait", "after", "e").
		MustBuild()
	v := deployAndStart(t, f, p, nil)
	if v.Status != StatusActive {
		t.Fatalf("status = %s", v.Status)
	}
	f.tick(10 * time.Minute)
	if got := instStatus(t, f, v.ID); got != StatusActive {
		t.Fatalf("fired too early: %s", got)
	}
	f.tick(25 * time.Minute)
	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status after timer = %s", got)
	}
}

func TestBoundaryTimerInterrupting(t *testing.T) {
	f := newFixture(t)
	p := model.New("escalating").
		Start("s").
		UserTask("review", model.Role("clerk")).
		BoundaryTimer("late", "review", "2h", true).
		ServiceTask("escalate", model.NoopHandler).
		XOR("merge").
		End("e").
		Flow("s", "review").
		Flow("review", "merge").
		Flow("late", "escalate").
		Flow("escalate", "merge").
		Flow("merge", "e").
		MustBuild()
	v := deployAndStart(t, f, p, nil)
	items := f.tasks.ByState(task.Offered)
	if len(items) != 1 {
		t.Fatalf("offered items = %d", len(items))
	}
	f.tick(3 * time.Hour)
	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status after escalation = %s", got)
	}
	// The work item was cancelled by the interrupt.
	it, _ := f.tasks.Get(items[0].ID)
	if it.State != task.Cancelled {
		t.Errorf("work item state = %s, want cancelled", it.State)
	}
	ran := map[string]bool{}
	for _, ev := range f.hist.EventsOf(v.ID) {
		if ev.Type == history.ElementCompleted {
			ran[ev.ElementID] = true
		}
	}
	if !ran["escalate"] || ran["review"] {
		t.Errorf("ran = %v", ran)
	}
}

func TestBoundaryTimerNonInterrupting(t *testing.T) {
	f := newFixture(t)
	p := model.New("reminding").
		Start("s").
		UserTask("work", model.Assignee("alice")).
		BoundaryTimer("remind", "work", "1h", false).
		ServiceTask("notify", model.NoopHandler, model.Output("reminded", "true")).
		End("e2").
		End("e").
		Flow("s", "work").
		Flow("work", "e").
		Flow("remind", "notify").
		Flow("notify", "e2").
		MustBuild()
	v := deployAndStart(t, f, p, nil)
	f.tick(90 * time.Minute)
	// Reminder fired but the task is still open.
	vw, _ := f.e.Instance(v.ID)
	if vw.Status != StatusActive {
		t.Fatalf("status = %s", vw.Status)
	}
	if got, _ := vw.Vars["reminded"].AsBool(); !got {
		t.Error("non-interrupting boundary did not run")
	}
	wl := f.tasks.Worklist("alice")
	if len(wl) != 1 {
		t.Fatalf("alice worklist = %d", len(wl))
	}
	f.tasks.Start(wl[0].ID, "alice")
	f.tasks.Complete(wl[0].ID, "alice", nil)
	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status = %s", got)
	}
	// The reminder must not fire again.
	f.tick(5 * time.Hour)
	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status = %s after late tick", got)
	}
}

func TestMessageCorrelation(t *testing.T) {
	f := newFixture(t)
	p := model.New("awaiting").
		Start("s").
		MessageCatch("paid", "payment.received", model.CorrelationKey("orderId")).
		ServiceTask("ship", model.NoopHandler).
		End("e").
		Seq("s", "paid", "ship", "e").
		MustBuild()
	if err := f.e.Deploy(p); err != nil {
		t.Fatal(err)
	}
	v1, _ := f.e.StartInstance("awaiting", map[string]any{"orderId": "A-1"})
	v2, _ := f.e.StartInstance("awaiting", map[string]any{"orderId": "A-2"})

	// Wrong key: nobody resumes, message is buffered.
	n, buffered, err := f.e.Publish("payment.received", "A-9", map[string]any{"amount": 10})
	if err != nil || n != 0 || !buffered {
		t.Fatalf("publish wrong key: n=%d buffered=%v err=%v", n, buffered, err)
	}
	if instStatus(t, f, v1.ID) != StatusActive || instStatus(t, f, v2.ID) != StatusActive {
		t.Fatal("instances resumed on wrong key")
	}

	// Right key resumes only the matching instance and merges payload.
	n, _, err = f.e.Publish("payment.received", "A-1", map[string]any{"amount": 42})
	if err != nil || n != 1 {
		t.Fatalf("publish: n=%d err=%v", n, err)
	}
	vw, _ := f.e.Instance(v1.ID)
	if vw.Status != StatusCompleted {
		t.Fatalf("v1 status = %s", vw.Status)
	}
	if got, _ := vw.Vars["amount"].AsInt(); got != 42 {
		t.Errorf("payload not merged: %v", vw.Vars["amount"])
	}
	if instStatus(t, f, v2.ID) != StatusActive {
		t.Fatal("v2 should still wait")
	}

	// Buffered delivery: a new instance with key A-9 consumes the
	// earlier buffered message immediately.
	v3, _ := f.e.StartInstance("awaiting", map[string]any{"orderId": "A-9"})
	if instStatus(t, f, v3.ID) != StatusCompleted {
		t.Fatal("buffered message not consumed")
	}
}

func TestEventGatewayRace(t *testing.T) {
	f := newFixture(t)
	build := func(id string) *model.Process {
		return model.New(id).
			Start("s").
			EventGateway("wait").
			MessageCatch("paid", "payment", model.CorrelationKey("oid")).
			TimerCatch("timeout", "24h").
			ServiceTask("happy", model.NoopHandler, model.Output("outcome", `"paid"`)).
			ServiceTask("sad", model.NoopHandler, model.Output("outcome", `"expired"`)).
			XOR("merge").
			End("e").
			Flow("s", "wait").
			Flow("wait", "paid").
			Flow("wait", "timeout").
			Flow("paid", "happy").
			Flow("timeout", "sad").
			Flow("happy", "merge").
			Flow("sad", "merge").
			Flow("merge", "e").
			MustBuild()
	}
	if err := f.e.Deploy(build("race")); err != nil {
		t.Fatal(err)
	}

	// Message wins.
	v1, _ := f.e.StartInstance("race", map[string]any{"oid": "X"})
	f.e.Publish("payment", "X", nil)
	vw, _ := f.e.Instance(v1.ID)
	if vw.Status != StatusCompleted {
		t.Fatalf("v1 = %s", vw.Status)
	}
	if got, _ := vw.Vars["outcome"].AsString(); got != "paid" {
		t.Errorf("outcome = %q", got)
	}
	// Timer must have been disarmed: advancing far must not break anything.
	f.tick(48 * time.Hour)

	// Timer wins.
	v2, _ := f.e.StartInstance("race", map[string]any{"oid": "Y"})
	f.tick(25 * time.Hour)
	vw2, _ := f.e.Instance(v2.ID)
	if vw2.Status != StatusCompleted {
		t.Fatalf("v2 = %s", vw2.Status)
	}
	if got, _ := vw2.Vars["outcome"].AsString(); got != "expired" {
		t.Errorf("outcome = %q", got)
	}
	// Late message correlates to nobody (gets buffered).
	if n, buffered, _ := f.e.Publish("payment", "Y", nil); n != 0 || !buffered {
		t.Errorf("late message: n=%d buffered=%v", n, buffered)
	}
}

func TestSubProcessAndCallActivity(t *testing.T) {
	f := newFixture(t)
	sub := model.New("body").
		Start("bs").
		ScriptTask("double", model.Output("x", "x * 2")).
		End("be").
		Seq("bs", "double", "be").
		MustBuild()
	parent := model.New("outer").
		Start("s").
		SubProcess("sp", sub).
		ScriptTask("inc", model.Output("x", "x + 1")).
		End("e").
		Seq("s", "sp", "inc", "e").
		MustBuild()
	v := deployAndStart(t, f, parent, map[string]any{"x": 5})
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s", v.Status)
	}
	if got, _ := v.Vars["x"].AsInt(); got != 11 {
		t.Errorf("x = %v, want 11", v.Vars["x"])
	}

	// Call activity: deploy callee separately.
	callee := model.New("callee").
		Start("cs").
		ScriptTask("triple", model.Output("x", "x * 3")).
		End("ce").
		Seq("cs", "triple", "ce").
		MustBuild()
	if err := f.e.Deploy(callee); err != nil {
		t.Fatal(err)
	}
	caller := model.New("caller").
		Start("s").
		Call("invoke", "callee").
		End("e").
		Seq("s", "invoke", "e").
		MustBuild()
	v2 := deployAndStart(t, f, caller, map[string]any{"x": 2})
	if v2.Status != StatusCompleted {
		t.Fatalf("caller status = %s", v2.Status)
	}
	if got, _ := v2.Vars["x"].AsInt(); got != 6 {
		t.Errorf("x = %v, want 6", v2.Vars["x"])
	}

	// Missing callee faults.
	bad := model.New("badcaller").
		Start("s").Call("invoke", "ghost").End("e").
		Seq("s", "invoke", "e").MustBuild()
	v3 := deployAndStart(t, f, bad, nil)
	if v3.Status != StatusFaulted {
		t.Fatalf("bad caller = %s, want faulted", v3.Status)
	}
}

func TestTerminateEndCancelsEverything(t *testing.T) {
	f := newFixture(t)
	p := model.New("terminating").
		Start("s").
		AND("fork").
		UserTask("slow", model.Assignee("alice")).
		ServiceTask("fast", model.NoopHandler).
		TerminateEnd("kill").
		End("e").
		Flow("s", "fork").
		Flow("fork", "slow").
		Flow("fork", "fast").
		Flow("fast", "kill").
		Flow("slow", "e").
		MustBuild()
	v := deployAndStart(t, f, p, nil)
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s, want completed via terminate", v.Status)
	}
	// The user task was cancelled.
	wl := f.tasks.Worklist("alice")
	if len(wl) != 0 {
		t.Errorf("alice worklist = %v", wl)
	}
}

func TestCancelInstance(t *testing.T) {
	f := newFixture(t)
	p := model.New("cancellable").
		Start("s").
		UserTask("work", model.Assignee("alice")).
		End("e").
		Seq("s", "work", "e").
		MustBuild()
	v := deployAndStart(t, f, p, nil)
	if err := f.e.CancelInstance(v.ID, "tester"); err != nil {
		t.Fatal(err)
	}
	if got := instStatus(t, f, v.ID); got != StatusCancelled {
		t.Fatalf("status = %s", got)
	}
	if len(f.tasks.Worklist("alice")) != 0 {
		t.Error("work item survived cancellation")
	}
	// Double cancel fails.
	if err := f.e.CancelInstance(v.ID, "again"); err == nil {
		t.Error("second cancel should fail")
	}
}

func TestIncidents(t *testing.T) {
	f := newFixture(t)
	// Unknown handler.
	p := model.New("nohandler").
		Start("s").ServiceTask("work", "ghost").End("e").
		Seq("s", "work", "e").MustBuild()
	v := deployAndStart(t, f, p, nil)
	if v.Status != StatusFaulted {
		t.Fatalf("status = %s", v.Status)
	}
	if f.hist.CountByType(history.IncidentRaised) == 0 {
		t.Error("no incident recorded")
	}

	// XOR with no enabled flow and no default.
	p2 := model.New("stuck").
		Start("s").XOR("gw").
		ServiceTask("a", model.NoopHandler).
		ServiceTask("b", model.NoopHandler).
		XOR("merge").End("e").
		Flow("s", "gw").
		FlowIf("gw", "a", "x > 100").
		FlowIf("gw", "b", "x > 200").
		Flow("a", "merge").Flow("b", "merge").Flow("merge", "e").
		MustBuild()
	v2 := deployAndStart(t, f, p2, map[string]any{"x": 1})
	if v2.Status != StatusFaulted {
		t.Fatalf("status = %s", v2.Status)
	}
}

func TestUnknownProcessAndInstance(t *testing.T) {
	f := newFixture(t)
	if _, err := f.e.StartInstance("ghost", nil); err == nil {
		t.Error("starting unknown process should fail")
	}
	if _, err := f.e.Instance("ghost"); err == nil {
		t.Error("unknown instance should fail")
	}
	if err := f.e.CancelInstance("ghost", ""); err == nil {
		t.Error("cancelling unknown instance should fail")
	}
	if _, err := f.e.Variables("ghost"); err == nil {
		t.Error("variables of unknown instance should fail")
	}
}

func TestSetVariableAndQueries(t *testing.T) {
	f := newFixture(t)
	p := model.New("vars").
		Start("s").UserTask("hold", model.Assignee("alice")).End("e").
		Seq("s", "hold", "e").MustBuild()
	v := deployAndStart(t, f, p, map[string]any{"a": 1})
	if err := f.e.SetVariable(v.ID, "b", "two"); err != nil {
		t.Fatal(err)
	}
	vars, err := f.e.Variables(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := vars["b"].AsString(); got != "two" {
		t.Errorf("b = %v", vars["b"])
	}
	if defs := f.e.Definitions(); len(defs) != 1 || defs[0] != "vars" {
		t.Errorf("Definitions = %v", defs)
	}
	if insts := f.e.Instances(); len(insts) != 1 || insts[0] != v.ID {
		t.Errorf("Instances = %v", insts)
	}
	if _, ok := f.e.Definition("vars"); !ok {
		t.Error("Definition lookup failed")
	}
}
