package engine

import (
	"fmt"
	"sync"
	"time"

	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/model"
)

// subKind distinguishes what a message subscription resumes.
type subKind int

const (
	subMessage  subKind = iota // receive task / message catch event
	subRace                    // event-gateway arm
	subBoundary                // message boundary event
)

// subscription is one waiting consumer of a named, correlated message.
type subscription struct {
	Name       string
	Key        string
	InstanceID string
	TokenID    uint64
	Elem       string // element path resumed on delivery
	Kind       subKind
}

type subPoint struct {
	name, key string
}

// ownerKey indexes subscriptions by their waiting token so removal is
// O(points owned) instead of a scan over the whole registry.
type ownerKey struct {
	inst string
	tok  uint64
	elem string
}

// subscriptions is the engine's correlation registry plus a bounded
// buffer for early messages (published before a consumer subscribes).
type subscriptions struct {
	mu       sync.Mutex
	waiting  map[subPoint][]subscription
	owners   map[ownerKey][]subPoint
	buffered map[subPoint][]map[string]expr.Value
	maxBuf   int
}

func newSubscriptions() *subscriptions {
	return &subscriptions{
		waiting:  map[subPoint][]subscription{},
		owners:   map[ownerKey][]subPoint{},
		buffered: map[subPoint][]map[string]expr.Value{},
		maxBuf:   10000,
	}
}

func (s *subscriptions) add(sub subscription) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := subPoint{sub.Name, sub.Key}
	s.waiting[p] = append(s.waiting[p], sub)
	ok := ownerKey{sub.InstanceID, sub.TokenID, sub.Elem}
	s.owners[ok] = append(s.owners[ok], p)
}

func (s *subscriptions) remove(instanceID string, tokenID uint64, elem string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := ownerKey{instanceID, tokenID, elem}
	points := s.owners[ok]
	delete(s.owners, ok)
	for _, p := range points {
		subs := s.waiting[p]
		kept := subs[:0]
		for _, sub := range subs {
			if sub.InstanceID == instanceID && sub.TokenID == tokenID && sub.Elem == elem {
				continue
			}
			kept = append(kept, sub)
		}
		if len(kept) == 0 {
			delete(s.waiting, p)
		} else {
			s.waiting[p] = kept
		}
	}
}

// take pops all subscriptions for a point.
func (s *subscriptions) take(name, key string) []subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := subPoint{name, key}
	subs := s.waiting[p]
	delete(s.waiting, p)
	for _, sub := range subs {
		ok := ownerKey{sub.InstanceID, sub.TokenID, sub.Elem}
		points := s.owners[ok]
		kept := points[:0]
		removed := false
		for _, q := range points {
			if !removed && q == p {
				removed = true
				continue
			}
			kept = append(kept, q)
		}
		if len(kept) == 0 {
			delete(s.owners, ok)
		} else {
			s.owners[ok] = kept
		}
	}
	return subs
}

// buffer stores an undeliverable message; reports false when full.
func (s *subscriptions) buffer(name, key string, vars map[string]expr.Value) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, b := range s.buffered {
		total += len(b)
	}
	if total >= s.maxBuf {
		return false
	}
	p := subPoint{name, key}
	s.buffered[p] = append(s.buffered[p], vars)
	return true
}

// takeBuffered pops one buffered message for a point, if any.
func (s *subscriptions) takeBuffered(name, key string) (map[string]expr.Value, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := subPoint{name, key}
	b := s.buffered[p]
	if len(b) == 0 {
		return nil, false
	}
	msg := b[0]
	if len(b) == 1 {
		delete(s.buffered, p)
	} else {
		s.buffered[p] = b[1:]
	}
	return msg, true
}

// corrKey evaluates an element's correlation-key expression ("" when
// the element declares none).
func (e *Engine) corrKey(inst *Instance, el *model.Element, extra map[string]expr.Value) (string, error) {
	if el.CorrelationKey == "" {
		return "", nil
	}
	p, err := el.CorrelationProgram()
	if err != nil {
		return "", fmt.Errorf("correlation key of %q: %w", el.ID, err)
	}
	v, err := p.Eval(inst.env(extra))
	if err != nil {
		return "", fmt.Errorf("correlation key of %q: %w", el.ID, err)
	}
	if s, ok := v.AsString(); ok {
		return s, nil
	}
	return v.String(), nil
}

// parkForMessage parks a token at a receive task / message catch
// event, consuming a buffered message immediately when one matches.
func (e *Engine) parkForMessage(inst *Instance, tok *Token, proc *model.Process, el *model.Element) {
	key, err := e.corrKey(inst, el, nil)
	if err != nil {
		e.incident(inst, tok.Elem, err.Error())
		return
	}
	if msg, ok := e.takeBufferedMessage(el.Message, key); ok {
		for k, v := range msg {
			inst.Vars[k] = v
		}
		e.audit(&history.Event{Type: history.MessageCorrelated, Time: e.clock.Now(),
			ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: tok.Elem,
			Data: map[string]any{"message": el.Message, "key": key, "buffered": true}})
		if err := e.applyOutputs(inst, el, nil); err != nil {
			e.handleTaskError(inst, tok, proc, el, err)
			return
		}
		e.elementCompleted(inst, el, tok.Elem, "")
		e.continueOutgoing(inst, tok, proc, el)
		return
	}
	tok.Wait = WaitMessage
	tok.Message = el.Message
	tok.CorrKey = key
	e.subs.add(subscription{
		Name: el.Message, Key: key, InstanceID: inst.ID,
		TokenID: tok.ID, Elem: tok.Elem, Kind: subMessage,
	})
	e.armBoundaries(inst, tok, proc, el)
	inst.dirty = true
}

// Publish correlates a message to every waiting subscription with the
// same name and key, merging vars into each receiving instance. When
// nobody waits, the message is buffered (up to the buffer bound) for a
// future subscriber. It returns the number of resumed waits and
// whether the message was buffered instead. When a Publisher hook is
// configured (shard router), publication is delegated so the message
// reaches waiting instances on every shard.
func (e *Engine) Publish(name, key string, vars map[string]any) (int, bool, error) {
	if e.publisher != nil {
		return e.publisher(name, key, vars)
	}
	if err := e.checkWritable(); err != nil {
		return 0, false, err
	}
	converted, err := ConvertVars(vars)
	if err != nil {
		return 0, false, err
	}
	e.audit(&history.Event{Type: history.MessagePublished, Time: e.clock.Now(),
		Data: map[string]any{"message": name, "key": key}})
	delivered := e.PublishLocal(name, key, converted)
	if delivered == 0 {
		if e.BufferMessage(name, key, converted) {
			e.audit(&history.Event{Type: history.MessageBuffered, Time: e.clock.Now(),
				Data: map[string]any{"message": name, "key": key}})
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("engine: message buffer full, %q dropped", name)
	}
	return delivered, false, nil
}

// ConvertVars converts Go message payloads to expression values (the
// conversion the engine applies on Publish).
func ConvertVars(vars map[string]any) (map[string]expr.Value, error) {
	converted := make(map[string]expr.Value, len(vars))
	for k, v := range vars {
		ev, err := expr.FromGo(v)
		if err != nil {
			return nil, fmt.Errorf("engine: message variable %q: %w", k, err)
		}
		converted[k] = ev
	}
	return converted, nil
}

// PublishLocal delivers a correlated message to this engine's waiting
// subscriptions only — no buffering and no publish audit. The shard
// router fans a publish out across all shards with it (a subscriber
// lives on the shard its instance ID hashes to, which is unrelated to
// the message key). It returns the number of resumed waits.
func (e *Engine) PublishLocal(name, key string, vars map[string]expr.Value) int {
	if e.degraded.Load() {
		return 0 // frozen: subscriptions stay parked for post-repair replay
	}
	t0 := e.metrics.Transition.Start()
	defer e.metrics.Transition.Since(t0)
	subs := e.subs.take(name, key)
	delivered := 0
	for _, sub := range subs {
		switch sub.Kind {
		case subMessage:
			if e.deliverToToken(sub, vars) {
				delivered++
			}
		case subRace:
			e.fireRace(sub.InstanceID, sub.TokenID, sub.Elem, vars)
			delivered++
		case subBoundary:
			e.fireBoundary(sub.InstanceID, sub.TokenID, sub.Elem, vars)
			delivered++
		}
	}
	return delivered
}

// BufferMessage stores an early message in this engine's buffer for a
// future subscriber; it reports false when the buffer is full. The
// shard router buffers each undelivered message on the shard its
// correlation key hashes to.
func (e *Engine) BufferMessage(name, key string, vars map[string]expr.Value) bool {
	return e.subs.buffer(name, key, vars)
}

// TakeBuffered pops one buffered message for a correlation point from
// this engine's buffer, if any.
func (e *Engine) TakeBuffered(name, key string) (map[string]expr.Value, bool) {
	return e.subs.takeBuffered(name, key)
}

// takeBufferedMessage consults the configured cross-shard buffer
// lookup when present, else the local buffer.
func (e *Engine) takeBufferedMessage(name, key string) (map[string]expr.Value, bool) {
	if e.buffered != nil {
		return e.buffered(name, key)
	}
	return e.subs.takeBuffered(name, key)
}

// deliverToToken resumes a token parked at a receive/catch element.
func (e *Engine) deliverToToken(sub subscription, vars map[string]expr.Value) bool {
	e.mu.RLock()
	inst, ok := e.instances[sub.InstanceID]
	e.mu.RUnlock()
	if !ok {
		return false
	}
	inst.mu.Lock()
	if inst.Status != StatusActive {
		inst.mu.Unlock()
		return false
	}
	tok := inst.Tokens[sub.TokenID]
	if tok == nil || tok.Wait != WaitMessage || tok.Elem != sub.Elem {
		inst.mu.Unlock()
		return false
	}
	for k, v := range vars {
		inst.Vars[k] = v
	}
	proc, el, err := e.resolve(inst, tok.Elem)
	if err != nil {
		e.incident(inst, tok.Elem, err.Error())
		e.finishStep(inst)
		return false
	}
	e.audit(&history.Event{Type: history.MessageCorrelated, Time: e.clock.Now(),
		ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: tok.Elem,
		Data: map[string]any{"message": sub.Name, "key": sub.Key}})
	e.disarmToken(inst, tok)
	tok.Wait = WaitNone
	tok.Message = ""
	tok.CorrKey = ""
	if err := e.applyOutputs(inst, el, nil); err != nil {
		e.handleTaskError(inst, tok, proc, el, err)
		e.finishStep(inst)
		return true
	}
	e.elementCompleted(inst, el, tok.Elem, "")
	e.continueOutgoing(inst, tok, proc, el)
	e.finishStep(inst)
	return true
}

// armTokenTimer schedules the wake-up for a token parked at a timer
// catch event (TimerAt must be set).
func (e *Engine) armTokenTimer(inst *Instance, tok *Token) {
	instID, tokID := inst.ID, tok.ID
	tok.timerID = e.timers.Schedule(tok.TimerAt, func() {
		e.fireTokenTimer(instID, tokID)
	})
	e.audit(&history.Event{Type: history.TimerScheduled, Time: e.clock.Now(),
		ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: tok.Elem,
		Data: map[string]any{"at": tok.TimerAt}})
}

// fireTokenTimer resumes a token parked at a timer catch event.
func (e *Engine) fireTokenTimer(instID string, tokID uint64) {
	if e.degraded.Load() {
		return // frozen: the timer re-arms from the journal after repair
	}
	e.mu.RLock()
	inst, ok := e.instances[instID]
	e.mu.RUnlock()
	if !ok {
		return
	}
	inst.mu.Lock()
	if inst.Status != StatusActive {
		inst.mu.Unlock()
		return
	}
	tok := inst.Tokens[tokID]
	if tok == nil || tok.Wait != WaitTimer {
		inst.mu.Unlock()
		return
	}
	proc, el, err := e.resolve(inst, tok.Elem)
	if err != nil {
		e.incident(inst, tok.Elem, err.Error())
		e.finishStep(inst)
		return
	}
	e.audit(&history.Event{Type: history.TimerFired, Time: e.clock.Now(),
		ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: tok.Elem})
	tok.Wait = WaitNone
	tok.timerID = 0
	e.elementCompleted(inst, el, tok.Elem, "")
	e.continueOutgoing(inst, tok, proc, el)
	e.finishStep(inst)
}

// armBoundaries arms the boundary events of a busy activity on its
// token (timers scheduled, message subscriptions registered; error
// boundaries are matched synchronously in handleTaskError).
func (e *Engine) armBoundaries(inst *Instance, tok *Token, proc *model.Process, el *model.Element) {
	scope := scopeOf(tok.Elem)
	for _, bd := range proc.BoundaryEvents(el.ID) {
		arm := boundaryArm{
			Elem:      scope + bd.ID,
			Kind:      bd.Boundary,
			Interrupt: bd.CancelActivity,
			ErrorCode: bd.ErrorCode,
		}
		switch bd.Boundary {
		case model.BoundaryTimer:
			d, _ := time.ParseDuration(bd.Timer)
			arm.TimerAt = e.clock.Now().Add(d)
			instID, tokID, armElem := inst.ID, tok.ID, arm.Elem
			arm.timerID = e.timers.Schedule(arm.TimerAt, func() {
				e.fireBoundary(instID, tokID, armElem, nil)
			})
		case model.BoundaryMessage:
			key, err := e.corrKey(inst, bd, nil)
			if err != nil {
				e.incident(inst, tok.Elem, err.Error())
				return
			}
			arm.Message = bd.Message
			arm.CorrKey = key
			e.subs.add(subscription{
				Name: bd.Message, Key: key, InstanceID: inst.ID,
				TokenID: tok.ID, Elem: arm.Elem, Kind: subBoundary,
			})
		case model.BoundaryError:
			// Synchronous: nothing to arm.
			continue
		}
		tok.Boundaries = append(tok.Boundaries, arm)
	}
}

// fireBoundary triggers an armed boundary event on a busy activity.
func (e *Engine) fireBoundary(instID string, tokID uint64, armElem string, msgVars map[string]expr.Value) {
	if e.degraded.Load() {
		return // frozen: boundaries re-arm from the journal after repair
	}
	e.mu.RLock()
	inst, ok := e.instances[instID]
	e.mu.RUnlock()
	if !ok {
		return
	}
	inst.mu.Lock()
	if inst.Status != StatusActive {
		inst.mu.Unlock()
		return
	}
	tok := inst.Tokens[tokID]
	if tok == nil {
		inst.mu.Unlock()
		return
	}
	var arm *boundaryArm
	for i := range tok.Boundaries {
		if tok.Boundaries[i].Elem == armElem && !tok.Boundaries[i].Fired {
			arm = &tok.Boundaries[i]
			break
		}
	}
	if arm == nil {
		inst.mu.Unlock()
		return
	}
	for k, v := range msgVars {
		inst.Vars[k] = v
	}
	bproc, bel, err := e.resolve(inst, armElem)
	if err != nil {
		e.incident(inst, armElem, err.Error())
		e.finishStep(inst)
		return
	}
	if arm.Kind == model.BoundaryTimer {
		e.audit(&history.Event{Type: history.TimerFired, Time: e.clock.Now(),
			ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: armElem})
		if tok.WorkItemID != "" && arm.Interrupt {
			e.audit(&history.Event{Type: history.TaskEscalated, Time: e.clock.Now(),
				ProcessID: inst.ProcessID, InstanceID: inst.ID,
				ElementID: tok.Elem, TaskID: tok.WorkItemID})
		}
	} else {
		e.audit(&history.Event{Type: history.MessageCorrelated, Time: e.clock.Now(),
			ProcessID: inst.ProcessID, InstanceID: inst.ID, ElementID: armElem})
	}
	if arm.Interrupt {
		// Cancel the host activity: work items, nested scope, MI
		// items, remaining arms — the token becomes the boundary
		// token.
		if tok.WorkItemID != "" {
			_, _ = e.tasks.Cancel(tok.WorkItemID, "interrupted by boundary event")
			tok.WorkItemID = ""
		}
		if tok.MI != nil {
			for _, id := range tok.MI.OpenItems {
				_, _ = e.tasks.Cancel(id, "interrupted by boundary event")
			}
			tok.MI = nil
		}
		if tok.Wait == WaitSubProc {
			prefix := tok.Elem + "/"
			for _, t := range inst.Tokens {
				if len(t.Elem) > len(prefix) && t.Elem[:len(prefix)] == prefix {
					e.cancelToken(inst, t, "interrupted by boundary event")
				}
			}
			for path := range inst.Joins {
				if len(path) > len(prefix) && path[:len(prefix)] == prefix {
					delete(inst.Joins, path)
				}
			}
		}
		e.disarmToken(inst, tok)
		tok.Wait = WaitNone
		tok.Elem = armElem
		e.elementCompleted(inst, bel, armElem, "")
		e.continueOutgoing(inst, tok, bproc, bel)
	} else {
		arm.Fired = true
		arm.timerID = 0
		spawn := inst.newToken(e, armElem)
		e.elementCompleted(inst, bel, armElem, "")
		e.continueOutgoing(inst, spawn, bproc, bel)
	}
	inst.dirty = true
	e.finishStep(inst)
}

// disarmToken cancels all volatile wait-state machinery of a token:
// its own timer, race arms, boundary arms, and message subscriptions.
func (e *Engine) disarmToken(inst *Instance, tok *Token) {
	if tok.timerID != 0 {
		e.timers.Cancel(tok.timerID)
		tok.timerID = 0
	}
	if tok.Wait == WaitMessage {
		e.subs.remove(inst.ID, tok.ID, tok.Elem)
	}
	for i := range tok.Race {
		if tok.Race[i].timerID != 0 {
			e.timers.Cancel(tok.Race[i].timerID)
		}
		if tok.Race[i].Message != "" {
			e.subs.remove(inst.ID, tok.ID, tok.Race[i].Elem)
		}
	}
	tok.Race = nil
	for i := range tok.Boundaries {
		if tok.Boundaries[i].timerID != 0 {
			e.timers.Cancel(tok.Boundaries[i].timerID)
		}
		if tok.Boundaries[i].Message != "" {
			e.subs.remove(inst.ID, tok.ID, tok.Boundaries[i].Elem)
		}
	}
	tok.Boundaries = nil
}
