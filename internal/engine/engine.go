// Package engine implements the enactment service of the BPMS — the
// workflow engine. It executes process definitions from internal/model
// with token semantics: instances hold tokens that advance through the
// graph synchronously until they park at a wait state (user task,
// message, timer, event gateway, or an unsatisfied join) and are
// resumed by task completions, correlated messages, or fired timers.
//
// Supported semantics: all task types; exclusive, parallel, inclusive
// (with full non-local OR-join semantics) and event-based gateways;
// embedded sub-processes and call activities; interrupting and
// non-interrupting boundary events (timer, error, message); terminate
// end events; sequential and parallel multi-instance activities with
// completion conditions; per-instance data with expression-guarded
// flows; incidents; and message correlation with buffering.
//
// Persistence is write-behind state journaling: after every quiescent
// step the affected instance's state is appended to the journal, and
// recovery (NewEngine on an existing journal) restores the latest
// state of every instance, re-arms timers, and re-registers message
// subscriptions. Snapshots bound replay cost (experiments T4/F5).
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/obs"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
)

// Errors returned by the engine API.
var (
	ErrUnknownProcess  = errors.New("engine: unknown process definition")
	ErrUnknownInstance = errors.New("engine: unknown instance")
	ErrUnknownHandler  = errors.New("engine: unknown service-task handler")
	ErrNotActive       = errors.New("engine: instance is not active")
)

// Handler executes a service task. It receives a read-only snapshot of
// the case data and returns variable updates (or an error, which
// triggers retries, error boundary events, or an incident).
type Handler func(tc TaskContext) (map[string]expr.Value, error)

// TaskContext carries the information a Handler may use.
type TaskContext struct {
	InstanceID string
	ProcessID  string
	ElementID  string
	// Vars is a snapshot of case data; mutations are ignored (return
	// updates instead).
	Vars map[string]expr.Value
}

// Config assembles an Engine.
type Config struct {
	// Journal persists instance state (default: in-memory).
	Journal storage.Journal
	// Snapshots, when set, enables snapshot-based recovery compaction.
	Snapshots *storage.SnapshotStore
	// SnapshotEvery writes a snapshot after this many journal appends
	// (0 = never).
	SnapshotEvery int
	// RecoveryWorkers bounds the decode worker pool used while
	// recovering from a streaming snapshot and replaying sealed journal
	// segments in parallel (0 = GOMAXPROCS, 1 = serial).
	RecoveryWorkers int
	// BlobSnapshots forces the legacy single-blob snapshot format that
	// materializes the whole engine image in memory. Kept as the
	// baseline for the T16 experiment; production paths use the
	// streaming format.
	BlobSnapshots bool
	// Tasks is the worklist service for user/manual tasks (default: a
	// fresh service with an empty directory).
	Tasks *task.Service
	// Timers schedules deadlines (default: a timing wheel; tests pass
	// a wheel driven by a virtual clock).
	Timers timer.Service
	// Clock supplies time (default RealClock).
	Clock timer.Clock
	// History, when set, receives audit events.
	History *history.Store
	// Recover replays the journal to restore engine state (default
	// true when the journal is non-empty).
	Recover bool
	// Durable makes API-visible state transitions wait for the
	// journal's durability acknowledgement (Journal.AppendDurable)
	// before returning: once StartInstance, a task completion, or a
	// message delivery returns, the resulting state survives a crash.
	// Under a SyncBatch journal, concurrent transitions share one
	// group-commit fsync.
	Durable bool
	// Publisher, when set, replaces local message publication: Publish
	// calls and messages thrown by send tasks are routed through it
	// instead of this engine's own registry. The shard router installs
	// itself here so a message thrown on one shard reaches waiting
	// instances on every shard.
	Publisher func(name, key string, vars map[string]any) (int, bool, error)
	// BufferedMessages, when set, replaces the local early-message
	// buffer lookup performed when a token parks at a receive point.
	// The shard router installs a lookup against the key-hashed owner
	// shard's buffer, making early messages visible across shards.
	BufferedMessages func(name, key string) (map[string]expr.Value, bool)
	// Metrics instruments this shard's StartInstance and transition
	// latency (zero value = uninstrumented).
	Metrics obs.EngineMetrics
	// OnDegrade, when set, is called exactly once if the engine
	// fail-stops on a storage I/O error (see ErrDegraded). The core
	// wires logging and the bpms_shard_degraded gauge here.
	OnDegrade func(reason string)
}

// Engine is the enactment service. All exported methods are safe for
// concurrent use.
type Engine struct {
	mu          sync.RWMutex
	definitions map[string]*model.Process
	instances   map[string]*Instance
	handlers    map[string]Handler

	journal        storage.Journal
	snapshots      *storage.SnapshotStore
	snapshotEvery  int
	appendsSince   int
	durable        bool
	recoverWorkers int
	blobSnapshots  bool

	tasks  *task.Service
	timers timer.Service
	clock  timer.Clock
	hist   *history.Store

	subs          *subscriptions
	publisher     func(name, key string, vars map[string]any) (int, bool, error)
	buffered      func(name, key string) (map[string]expr.Value, bool)
	upstreamCache sync.Map // upstreamKey -> map[string]bool
	metrics       obs.EngineMetrics

	idSeq           atomic.Uint64
	tokSeq          atomic.Uint64
	closing         atomic.Bool
	snapshotting    atomic.Bool
	snapshotPending atomic.Bool
	lastSnapIndex   atomic.Uint64
	recoveryDur     atomic.Int64

	degraded  atomic.Bool
	degrade   degradeState
	onDegrade func(reason string)
}

// New creates an engine, recovering state from the journal when it is
// non-empty.
func New(cfg Config) (*Engine, error) {
	if cfg.Journal == nil {
		cfg.Journal = storage.NewMemJournal()
	}
	if cfg.Clock == nil {
		cfg.Clock = timer.RealClock{}
	}
	if cfg.Timers == nil {
		cfg.Timers = timer.NewWheelService(10*time.Millisecond, 512)
	}
	if cfg.Tasks == nil {
		cfg.Tasks = task.NewService(task.Config{})
	}
	e := &Engine{
		definitions:    map[string]*model.Process{},
		instances:      map[string]*Instance{},
		handlers:       map[string]Handler{},
		journal:        cfg.Journal,
		snapshots:      cfg.Snapshots,
		snapshotEvery:  cfg.SnapshotEvery,
		durable:        cfg.Durable,
		recoverWorkers: cfg.RecoveryWorkers,
		blobSnapshots:  cfg.BlobSnapshots,
		tasks:          cfg.Tasks,
		timers:         cfg.Timers,
		clock:          cfg.Clock,
		hist:           cfg.History,
		subs:           newSubscriptions(),
		publisher:      cfg.Publisher,
		buffered:       cfg.BufferedMessages,
		metrics:        cfg.Metrics,
		onDegrade:      cfg.OnDegrade,
	}
	e.tasks.Subscribe(e.onTaskTransition)
	if cfg.Journal.LastIndex() > 0 || cfg.Snapshots != nil {
		begin := time.Now()
		if err := e.recover(); err != nil {
			return nil, err
		}
		e.recoveryDur.Store(int64(time.Since(begin)))
	}
	return e, nil
}

// RecoveryDuration reports how long boot-time recovery (snapshot load
// plus journal replay) took; zero when the engine started fresh.
func (e *Engine) RecoveryDuration() time.Duration {
	return time.Duration(e.recoveryDur.Load())
}

// RegisterHandler binds a service-task handler name to its function.
// Handlers must be registered before instances using them execute;
// they are not persisted.
func (e *Engine) RegisterHandler(name string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[name] = h
}

func (e *Engine) handler(name string) (Handler, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	h, ok := e.handlers[name]
	return h, ok
}

// Deploy validates and registers a process definition (and persists
// the deployment). Every expression in the definition — flow
// conditions, output mappings, multi-instance collection/completion
// conditions, correlation keys — is compiled once here; runtime
// evaluation reuses the retained programs.
func (e *Engine) Deploy(p *model.Process) error {
	return e.deploy(p, true)
}

// DeployReplica deploys without emitting the deployment audit event.
// The shard router fans a deployment out to every shard with it, so
// the shared history records the deployment exactly once while each
// shard still persists the definition in its own journal.
func (e *Engine) DeployReplica(p *model.Process) error {
	return e.deploy(p, false)
}

func (e *Engine) deploy(p *model.Process, audit bool) error {
	if err := e.checkWritable(); err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}
	cp := p.Clone()
	cp.Index()
	if err := cp.Compile(); err != nil {
		return err
	}
	e.mu.Lock()
	e.definitions[cp.ID] = cp
	e.mu.Unlock()
	if audit {
		e.audit(&history.Event{Type: history.ProcessDeployed, Time: e.clock.Now(), ProcessID: cp.ID})
	}
	return e.persistDeploy(cp)
}

// Definition returns a deployed definition (shared; do not mutate).
func (e *Engine) Definition(id string) (*model.Process, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, ok := e.definitions[id]
	return p, ok
}

// Definitions returns the IDs of all deployed definitions, sorted.
func (e *Engine) Definitions() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.definitions))
	for id := range e.definitions {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Tasks exposes the worklist service.
func (e *Engine) Tasks() *task.Service { return e.tasks }

// Now returns the engine clock's current time.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// StartInstance creates and advances a new instance of a deployed
// process with the given initial variables (Go values are converted to
// expression values).
func (e *Engine) StartInstance(processID string, vars map[string]any) (*InstanceView, error) {
	return e.start(processID, "", vars)
}

// StartInstanceID starts an instance under a caller-assigned ID. The
// shard router allocates IDs from one sequence and routes each to the
// shard its hash selects, so IDs stay unique and routable across
// shards. The ID must not collide with an existing instance.
func (e *Engine) StartInstanceID(processID, id string, vars map[string]any) (*InstanceView, error) {
	if id == "" {
		return nil, fmt.Errorf("engine: empty instance id")
	}
	return e.start(processID, id, vars)
}

func (e *Engine) start(processID, id string, vars map[string]any) (*InstanceView, error) {
	if err := e.checkWritable(); err != nil {
		return nil, err
	}
	t0 := e.metrics.Start.Start()
	defer e.metrics.Start.Since(t0)
	e.mu.RLock()
	def, ok := e.definitions[processID]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProcess, processID)
	}
	converted := make(map[string]expr.Value, len(vars))
	for k, v := range vars {
		ev, err := expr.FromGo(v)
		if err != nil {
			return nil, fmt.Errorf("engine: variable %q: %w", k, err)
		}
		converted[k] = ev
	}
	if id == "" {
		id = fmt.Sprintf("%s-%d", processID, e.idSeq.Add(1))
	}
	inst := newInstance(id, def, converted)
	e.mu.Lock()
	if _, exists := e.instances[id]; exists {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: duplicate instance id %q", id)
	}
	e.instances[id] = inst
	e.mu.Unlock()

	e.audit(&history.Event{Type: history.InstanceStarted, Time: e.clock.Now(),
		ProcessID: processID, InstanceID: id})

	inst.mu.Lock()
	starts := def.StartEvents()
	toks := make([]*Token, 0, len(starts))
	for _, s := range starts {
		toks = append(toks, inst.newToken(e, s.ID))
	}
	for _, tok := range toks {
		if _, live := inst.Tokens[tok.ID]; !live {
			continue
		}
		e.advance(inst, tok)
	}
	perr := e.finishChecks(inst)
	v := e.viewSnapshot(inst)
	e.releaseStep(inst)
	if perr != nil {
		// The instance ran, but its state never reached (durable)
		// storage: a crash would lose it, so the caller must not treat
		// this start as acknowledged.
		return nil, perr
	}
	return v, nil
}

// Has reports whether an instance with the given ID is registered on
// this engine (the shard router uses it to locate an instance's owner
// shard).
func (e *Engine) Has(id string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.instances[id]
	return ok
}

// InstanceCount returns the number of instances on this engine.
func (e *Engine) InstanceCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.instances)
}

// Instance returns a point-in-time view of an instance.
func (e *Engine) Instance(id string) (*InstanceView, error) {
	e.mu.RLock()
	inst, ok := e.instances[id]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return e.viewSnapshot(inst), nil
}

// Instances returns the IDs of all instances, sorted.
func (e *Engine) Instances() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.instances))
	for id := range e.instances {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// InstanceSummary is one row of a listing: identity and status only,
// no variables or tokens, so listing 100k instances stays cheap.
type InstanceSummary struct {
	ID        string
	ProcessID string
	Status    Status
}

// Summaries returns a summary row per instance, sorted by ID. Each
// instance is locked only long enough to read its status, so the
// listing does not serialise against running steps.
func (e *Engine) Summaries() []InstanceSummary {
	e.mu.RLock()
	insts := make([]*Instance, 0, len(e.instances))
	for _, inst := range e.instances {
		insts = append(insts, inst)
	}
	e.mu.RUnlock()
	out := make([]InstanceSummary, 0, len(insts))
	for _, inst := range insts {
		inst.mu.Lock()
		out = append(out, InstanceSummary{ID: inst.ID, ProcessID: inst.ProcessID, Status: inst.Status})
		inst.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CancelInstance cancels an active instance: all tokens are dropped,
// open work items cancelled, timers disarmed, and subscriptions
// removed.
func (e *Engine) CancelInstance(id, reason string) error {
	if err := e.checkWritable(); err != nil {
		return err
	}
	t0 := e.metrics.Transition.Start()
	defer e.metrics.Transition.Since(t0)
	e.mu.RLock()
	inst, ok := e.instances[id]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	inst.mu.Lock()
	if inst.Status != StatusActive {
		inst.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrNotActive, id, inst.Status)
	}
	e.cancelAllTokens(inst, reason)
	inst.Status = StatusCancelled
	e.audit(&history.Event{Type: history.InstanceCancelled, Time: e.clock.Now(),
		ProcessID: inst.ProcessID, InstanceID: inst.ID, Data: map[string]any{"reason": reason}})
	return e.finishStep(inst)
}

// Variables returns a copy of the instance's case data.
func (e *Engine) Variables(id string) (map[string]expr.Value, error) {
	e.mu.RLock()
	inst, ok := e.instances[id]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	out := make(map[string]expr.Value, len(inst.Vars))
	for k, v := range inst.Vars {
		out[k] = v
	}
	return out, nil
}

// SetVariable updates one case variable on an active instance.
func (e *Engine) SetVariable(id, name string, value any) error {
	if err := e.checkWritable(); err != nil {
		return err
	}
	t0 := e.metrics.Transition.Start()
	defer e.metrics.Transition.Since(t0)
	ev, err := expr.FromGo(value)
	if err != nil {
		return err
	}
	e.mu.RLock()
	inst, ok := e.instances[id]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	inst.mu.Lock()
	inst.Vars[name] = ev
	e.audit(&history.Event{Type: history.VariableSet, Time: e.clock.Now(),
		ProcessID: inst.ProcessID, InstanceID: inst.ID, Data: map[string]any{"name": name}})
	return e.finishStep(inst)
}

// audit forwards an event to the history store when configured. The
// hand-off is a non-blocking enqueue onto the store's striped pipeline
// (backpressure only when a stripe's queue is full), so recording
// history costs the transition path a channel send, not an encode and
// a disk append. Audit failures must not break execution; the history
// journal is best-effort (e.g. full disk) while the state journal is
// authoritative, and async append errors surface via Store.Flush.
func (e *Engine) audit(ev *history.Event) {
	if e.hist != nil {
		e.hist.Enqueue(ev)
	}
}

// onTaskTransition is the worklist listener resuming instances when
// their work items close.
func (e *Engine) onTaskTransition(it *task.Item, from, to task.State) {
	// A degraded engine is frozen at its last durable state: resuming
	// an instance off a worklist transition would mutate state that can
	// no longer be persisted, so the listener goes quiet alongside the
	// shutdown path.
	if e.closing.Load() || e.degraded.Load() {
		return
	}
	// Under the shard router several engines share one worklist
	// service; only the instance's owner shard audits and resumes.
	if !e.Has(it.InstanceID) {
		return
	}
	var evType history.EventType
	switch to {
	case task.Created:
		evType = history.TaskCreated
	case task.Offered:
		evType = history.TaskOffered
	case task.Allocated:
		evType = history.TaskAllocated
	case task.Started:
		evType = history.TaskStarted
	case task.Completed:
		evType = history.TaskCompleted
	case task.Failed:
		evType = history.TaskFailed
	case task.Skipped:
		evType = history.TaskSkipped
	case task.Cancelled:
		evType = ""
	}
	if evType != "" && !(from == task.Created && to == task.Created && evType != history.TaskCreated) {
		e.audit(&history.Event{Type: evType, Time: e.clock.Now(),
			ProcessID: it.ProcessID, InstanceID: it.InstanceID,
			ElementID: it.ElementID, TaskID: it.ID, Actor: it.Assignee})
	}
	switch to {
	case task.Completed:
		e.resumeWorkItem(it, true)
	case task.Failed, task.Skipped:
		e.resumeWorkItem(it, to == task.Skipped)
	}
}
