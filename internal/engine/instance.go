package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bpms/internal/expr"
	"bpms/internal/model"
	"bpms/internal/timer"
)

// Status is an instance lifecycle state.
type Status int

// Instance statuses.
const (
	StatusActive Status = iota
	StatusCompleted
	StatusCancelled
	StatusFaulted
)

var statusNames = [...]string{"active", "completed", "cancelled", "faulted"}

// String returns the lower-case status name.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// ParseStatus resolves a lower-case status name (the API's state
// filter).
func ParseStatus(name string) (Status, error) {
	for i, n := range statusNames {
		if n == name {
			return Status(i), nil
		}
	}
	return 0, fmt.Errorf("engine: unknown status %q", name)
}

// WaitKind records why a token is parked.
type WaitKind int

// Wait kinds.
const (
	WaitNone      WaitKind = iota
	WaitUserTask           // user/manual task work item open
	WaitMessage            // receive task / message catch event
	WaitTimer              // timer catch event
	WaitEventGate          // event-based gateway race
	WaitJoin               // AND/OR join holding arrived tokens
	WaitMulti              // multi-instance controller
	WaitSubProc            // sub-process / call-activity scope open
)

var waitNames = [...]string{"", "user-task", "message", "timer", "event-gateway", "join", "multi-instance", "sub-process"}

// String returns the wait-kind name.
func (w WaitKind) String() string {
	if int(w) < len(waitNames) {
		return waitNames[w]
	}
	return fmt.Sprintf("wait(%d)", int(w))
}

// Token is one locus of control in an instance. Element positions are
// paths: "approve" at the root, "sp/inner" inside sub-process sp —
// the prefix is the sub-process element's own path.
type Token struct {
	ID   uint64   `json:"id"`
	Elem string   `json:"elem"` // element path
	Wait WaitKind `json:"wait,omitempty"`

	// Wait-state details (persisted; volatile handles rebuilt on
	// recovery).
	WorkItemID string    `json:"workItemId,omitempty"`
	TimerAt    time.Time `json:"timerAt,omitempty"`
	Message    string    `json:"message,omitempty"`
	CorrKey    string    `json:"corrKey,omitempty"`

	// Event-gateway race: the catch-event successors armed for this
	// token.
	Race []raceArm `json:"race,omitempty"`

	// Boundary events armed while an activity is busy.
	Boundaries []boundaryArm `json:"boundaries,omitempty"`

	// Multi-instance controller state.
	MI *miState `json:"mi,omitempty"`

	// Sub-process scope: number of live child tokens.
	ScopeLive int `json:"scopeLive,omitempty"`

	// volatile (not persisted)
	timerID timer.ID
}

// raceArm is one armed successor of an event-based gateway.
type raceArm struct {
	Elem    string    `json:"elem"` // catch element path
	Message string    `json:"message,omitempty"`
	CorrKey string    `json:"corrKey,omitempty"`
	TimerAt time.Time `json:"timerAt,omitempty"`

	timerID timer.ID
}

// boundaryArm is one armed boundary event on a busy activity.
type boundaryArm struct {
	Elem      string             `json:"elem"` // boundary element path
	Kind      model.BoundaryKind `json:"kind"`
	Interrupt bool               `json:"interrupt"`
	Message   string             `json:"message,omitempty"`
	CorrKey   string             `json:"corrKey,omitempty"`
	TimerAt   time.Time          `json:"timerAt,omitempty"`
	ErrorCode string             `json:"errorCode,omitempty"`
	Fired     bool               `json:"fired,omitempty"` // non-interrupting: at most once

	timerID timer.ID
}

// miState tracks a multi-instance activity controller token.
type miState struct {
	Total    int          `json:"total"`
	Done     int          `json:"done"`
	NextIdx  int          `json:"nextIdx"` // sequential: next item index
	Parallel bool         `json:"parallel"`
	Items    []expr.Value `json:"items,omitempty"`
	ElemVar  string       `json:"elemVar"`
	Stopped  bool         `json:"stopped"` // completion condition hit
	// OpenItems are the open work-item IDs; ItemIdx maps each to its
	// collection index (work items are re-issued on recovery).
	OpenItems []string       `json:"openItems,omitempty"`
	ItemIdx   map[string]int `json:"itemIdx,omitempty"`
}

// Instance is one case of a process definition. All fields are guarded
// by mu; the engine locks at most one instance at a time.
type Instance struct {
	mu sync.Mutex

	ID        string
	ProcessID string
	def       *model.Process
	Status    Status
	Vars      map[string]expr.Value
	Tokens    map[uint64]*Token
	// Joins holds the queued arrival-token IDs per join element path
	// and incoming flow ID.
	Joins map[string]map[string][]uint64
	// Faults counts service-task retry attempts per token.
	Retries map[uint64]int

	StartedAt time.Time
	EndedAt   time.Time

	dirty  bool     // needs persistence after the current step
	outbox []outMsg // messages thrown during the current step
}

func newInstance(id string, def *model.Process, vars map[string]expr.Value) *Instance {
	if vars == nil {
		vars = map[string]expr.Value{}
	}
	return &Instance{
		ID:        id,
		ProcessID: def.ID,
		def:       def,
		Status:    StatusActive,
		Vars:      vars,
		Tokens:    map[uint64]*Token{},
		Joins:     map[string]map[string][]uint64{},
		Retries:   map[uint64]int{},
	}
}

func (inst *Instance) newToken(e *Engine, elem string) *Token {
	t := &Token{ID: e.tokSeq.Add(1), Elem: elem}
	inst.Tokens[t.ID] = t
	return t
}

func (inst *Instance) dropToken(t *Token) {
	delete(inst.Tokens, t.ID)
	delete(inst.Retries, t.ID)
}

// scopeOf returns the path prefix of an element path ("" at root;
// "sp/" for "sp/inner").
func scopeOf(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[:i+1]
	}
	return ""
}

// lastSegment returns the element ID within its scope.
func lastSegment(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// resolve maps an element path to its process scope and element. The
// scope process is the definition body containing the element.
func (e *Engine) resolve(inst *Instance, path string) (*model.Process, *model.Element, error) {
	proc := inst.def
	segs := strings.Split(path, "/")
	for i, seg := range segs {
		el := proc.ElementByID(seg)
		if el == nil {
			return nil, nil, fmt.Errorf("engine: element %q not found (path %q)", seg, path)
		}
		if i == len(segs)-1 {
			return proc, el, nil
		}
		switch el.Kind {
		case model.KindSubProcess:
			proc = el.SubProcess
		case model.KindCallActivity:
			e.mu.RLock()
			called := e.definitions[el.CalledProcess]
			e.mu.RUnlock()
			if called == nil {
				return nil, nil, fmt.Errorf("%w: %s (called by %s)", ErrUnknownProcess, el.CalledProcess, seg)
			}
			proc = called
		default:
			return nil, nil, fmt.Errorf("engine: path %q descends into non-scope %q", path, seg)
		}
	}
	return proc, nil, fmt.Errorf("engine: empty path")
}

// InstanceView is an immutable snapshot of an instance for callers.
type InstanceView struct {
	ID        string
	ProcessID string
	Status    Status
	Vars      map[string]expr.Value
	// ActiveTokens lists parked token positions with their wait kinds.
	ActiveTokens []TokenView
	StartedAt    time.Time
	EndedAt      time.Time
}

// TokenView describes one parked token.
type TokenView struct {
	ID         uint64
	Element    string
	Wait       WaitKind
	WorkItemID string
}

func (e *Engine) viewSnapshot(inst *Instance) *InstanceView {
	v := &InstanceView{
		ID:        inst.ID,
		ProcessID: inst.ProcessID,
		Status:    inst.Status,
		Vars:      make(map[string]expr.Value, len(inst.Vars)),
		StartedAt: inst.StartedAt,
		EndedAt:   inst.EndedAt,
	}
	for k, val := range inst.Vars {
		v.Vars[k] = val
	}
	for _, t := range inst.Tokens {
		v.ActiveTokens = append(v.ActiveTokens, TokenView{
			ID: t.ID, Element: t.Elem, Wait: t.Wait, WorkItemID: t.WorkItemID,
		})
	}
	sort.Slice(v.ActiveTokens, func(a, b int) bool { return v.ActiveTokens[a].ID < v.ActiveTokens[b].ID })
	return v
}

// lenientEnv exposes instance variables to expressions, yielding null
// for unbound names (the usual BPM expression-language convention) and
// layering optional extra bindings (multi-instance element variables).
type lenientEnv struct {
	vars  map[string]expr.Value
	extra map[string]expr.Value
}

// Lookup implements expr.Env.
func (l lenientEnv) Lookup(name string) (expr.Value, bool) {
	if l.extra != nil {
		if v, ok := l.extra[name]; ok {
			return v, true
		}
	}
	if v, ok := l.vars[name]; ok {
		return v, true
	}
	return expr.Null, true // lenient: unbound reads as null
}
