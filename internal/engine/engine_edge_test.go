package engine

import (
	"strings"
	"testing"
	"time"

	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/resource"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
)

// buildUnchecked assembles a Process directly (bypassing Validate) for
// shapes the validator would reject but the engine must still handle
// defensively.
func buildUnchecked(id string, els []*model.Element, flows []*model.Flow) *model.Process {
	p := &model.Process{ID: id, Elements: els, Flows: flows}
	p.Index()
	return p
}

func TestImplicitEndConsumesToken(t *testing.T) {
	f := newFixture(t)
	// A task with no outgoing flow: the token is consumed (implicit
	// end) and the instance completes.
	p := buildUnchecked("implicit",
		[]*model.Element{
			{ID: "s", Kind: model.KindStartEvent},
			{ID: "t", Kind: model.KindServiceTask, Handler: model.NoopHandler},
		},
		[]*model.Flow{{ID: "f1", From: "s", To: "t"}},
	)
	// Deploy bypassing validation (engine.Deploy validates, so drive
	// the instance map directly through a cloned engine path).
	if err := p.Validate(); err == nil {
		t.Fatal("fixture should be invalid for the validator")
	}
	// The engine insists on valid definitions; implicit end is still
	// reachable via a validated shape: a task whose only outgoing flow
	// has a false condition is an incident, but a gateway-free model
	// where the last task has no flows is rejected. So test the
	// internal behaviour through a sub-process body, which shares the
	// same continueOutgoing code path after scope entry.
	sub := model.New("body").
		Start("bs").ServiceTask("work", model.NoopHandler).End("be").
		Seq("bs", "work", "be").MustBuild()
	outer := model.New("outer").
		Start("s").SubProcess("sp", sub).End("e").
		Seq("s", "sp", "e").MustBuild()
	v := deployAndStart(t, f, outer, nil)
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s", v.Status)
	}
}

func TestConditionalTaskFlowsImplicitSplit(t *testing.T) {
	f := newFixture(t)
	// A task with two outgoing flows, one conditional: BPMN implicit
	// split takes the unconditional one always and the conditional one
	// when true. Both branches reach their own end events.
	p2 := model.New("isplit").
		Start("s").
		ServiceTask("work", model.NoopHandler).
		ScriptTask("a", model.Output("ranA", "true")).
		ScriptTask("b", model.Output("ranB", "true")).
		End("ea").
		End("eb").
		Flow("s", "work").
		Flow("work", "a").
		FlowIf("work", "b", "extra == true").
		Flow("a", "ea").
		Flow("b", "eb").
		MustBuild()

	v1 := deployAndStart(t, f, p2, map[string]any{"extra": true})
	if v1.Status != StatusCompleted {
		t.Fatalf("status = %s", v1.Status)
	}
	if _, ok := v1.Vars["ranB"]; !ok {
		t.Error("conditional flow not taken when true")
	}
	v2, _ := f.e.StartInstance("isplit", map[string]any{"extra": false})
	if v2.Status != StatusCompleted {
		t.Fatalf("status = %s", v2.Status)
	}
	if _, ok := v2.Vars["ranB"]; ok {
		t.Error("conditional flow taken when false")
	}
	if _, ok := v2.Vars["ranA"]; !ok {
		t.Error("unconditional flow skipped")
	}
}

func TestInclusiveSplitNoFlowEnabledIncident(t *testing.T) {
	f := newFixture(t)
	p := model.New("or-stuck").
		Start("s").
		OR("split").
		ServiceTask("a", model.NoopHandler).
		ServiceTask("b", model.NoopHandler).
		OR("join").
		End("e").
		Flow("s", "split").
		FlowIf("split", "a", "x > 10").
		FlowIf("split", "b", "x > 20").
		Flow("a", "join").
		Flow("b", "join").
		Flow("join", "e").
		MustBuild()
	v := deployAndStart(t, f, p, map[string]any{"x": 1})
	if v.Status != StatusFaulted {
		t.Fatalf("status = %s, want faulted (no OR branch enabled, no default)", v.Status)
	}
}

func TestPublishBufferBound(t *testing.T) {
	f := newFixture(t)
	f.e.subs.maxBuf = 3
	for i := 0; i < 3; i++ {
		if _, buffered, err := f.e.Publish("orphan", "", nil); err != nil || !buffered {
			t.Fatalf("publish %d: buffered=%v err=%v", i, buffered, err)
		}
	}
	if _, _, err := f.e.Publish("orphan", "", nil); err == nil || !strings.Contains(err.Error(), "buffer full") {
		t.Errorf("overflow err = %v", err)
	}
}

func TestRecoveryRearmsEventGatewayAndBoundary(t *testing.T) {
	dir := t.TempDir()
	clock := timer.NewVirtualClock(t0)
	wheel := timer.NewWheelService(time.Millisecond, 256)
	journal, err := storage.OpenFileJournal(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dirr := resource.NewDirectory()
	dirr.AddUser(&resource.User{ID: "alice", Roles: []string{"clerk"}})
	tasks := task.NewService(task.Config{Directory: dirr, Now: clock.Now})
	e1, err := New(Config{Journal: journal, Tasks: tasks, Timers: wheel, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	e1.RegisterHandler(model.NoopHandler, func(TaskContext) (map[string]expr.Value, error) { return nil, nil })

	race := model.New("race-persist").
		Start("s").
		EventGateway("wait").
		MessageCatch("msg", "ping", model.CorrelationKey("k")).
		TimerCatch("deadline", "4h").
		ScriptTask("onMsg", model.Output("via", `"msg"`)).
		ScriptTask("onTime", model.Output("via", `"timer"`)).
		XOR("merge").
		End("e").
		Flow("s", "wait").
		Flow("wait", "msg").
		Flow("wait", "deadline").
		Flow("msg", "onMsg").
		Flow("deadline", "onTime").
		Flow("onMsg", "merge").
		Flow("onTime", "merge").
		Flow("merge", "e").
		MustBuild()
	esc := model.New("esc-persist").
		Start("s").
		UserTask("work", model.Role("clerk")).
		BoundaryTimer("late", "work", "2h", true).
		ServiceTask("escalate", model.NoopHandler, model.Output("escalated", "true")).
		XOR("merge").
		End("e").
		Flow("s", "work").
		Flow("work", "merge").
		Flow("late", "escalate").
		Flow("escalate", "merge").
		Flow("merge", "e").
		MustBuild()
	if err := e1.Deploy(race); err != nil {
		t.Fatal(err)
	}
	if err := e1.Deploy(esc); err != nil {
		t.Fatal(err)
	}
	r1, _ := e1.StartInstance("race-persist", map[string]any{"k": "A"})
	r2, _ := e1.StartInstance("race-persist", map[string]any{"k": "B"})
	b1, _ := e1.StartInstance("esc-persist", nil)
	journal.Close()

	// Crash and recover on fresh timers/clock.
	journal2, err := storage.OpenFileJournal(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer journal2.Close()
	clock2 := timer.NewVirtualClock(clock.Now())
	wheel2 := timer.NewWheelService(time.Millisecond, 256)
	tasks2 := task.NewService(task.Config{Directory: dirr, Now: clock2.Now})
	e2, err := New(Config{Journal: journal2, Tasks: tasks2, Timers: wheel2, Clock: clock2})
	if err != nil {
		t.Fatal(err)
	}
	e2.RegisterHandler(model.NoopHandler, func(TaskContext) (map[string]expr.Value, error) { return nil, nil })

	// r1: message arm still registered — publish resolves the race.
	if n, _, _ := e2.Publish("ping", "A", nil); n != 1 {
		t.Fatal("race message arm lost in recovery")
	}
	got1, _ := e2.Instance(r1.ID)
	if got1.Status != StatusCompleted {
		t.Fatalf("r1 = %s", got1.Status)
	}
	if via, _ := got1.Vars["via"].AsString(); via != "msg" {
		t.Errorf("r1 via = %q", via)
	}

	// r2 + b1: timer arms were re-scheduled at their absolute times.
	wheel2.AdvanceTo(clock2.Advance(5 * time.Hour))
	got2, _ := e2.Instance(r2.ID)
	if got2.Status != StatusCompleted {
		t.Fatalf("r2 = %s", got2.Status)
	}
	if via, _ := got2.Vars["via"].AsString(); via != "timer" {
		t.Errorf("r2 via = %q", via)
	}
	gotB, _ := e2.Instance(b1.ID)
	if gotB.Status != StatusCompleted {
		t.Fatalf("b1 = %s", gotB.Status)
	}
	if esc, _ := gotB.Vars["escalated"].AsBool(); !esc {
		t.Error("boundary timer did not escalate after recovery")
	}
}

func TestCancelInstanceWithSubProcess(t *testing.T) {
	f := newFixture(t)
	sub := model.New("inner").
		Start("bs").UserTask("hold", model.Assignee("alice")).End("be").
		Seq("bs", "hold", "be").MustBuild()
	p := model.New("outer-cancel").
		Start("s").SubProcess("sp", sub).End("e").
		Seq("s", "sp", "e").MustBuild()
	v := deployAndStart(t, f, p, nil)
	if v.Status != StatusActive {
		t.Fatalf("status = %s", v.Status)
	}
	if len(f.tasks.Worklist("alice")) != 1 {
		t.Fatal("inner work item missing")
	}
	if err := f.e.CancelInstance(v.ID, "test"); err != nil {
		t.Fatal(err)
	}
	if len(f.tasks.Worklist("alice")) != 0 {
		t.Error("inner work item survived cancellation")
	}
	if got := instStatus(t, f, v.ID); got != StatusCancelled {
		t.Fatalf("status = %s", got)
	}
}

func TestTerminateInsideSubProcessOnlyKillsScope(t *testing.T) {
	f := newFixture(t)
	sub := model.New("inner").
		Start("bs").
		AND("fork").
		ServiceTask("quick", model.NoopHandler).
		UserTask("slow", model.Assignee("alice")).
		TerminateEnd("stop").
		End("be").
		Flow("bs", "fork").
		Flow("fork", "quick").
		Flow("fork", "slow").
		Flow("quick", "stop").
		Flow("slow", "be").
		MustBuild()
	p := model.New("outer-term").
		Start("s").
		SubProcess("sp", sub).
		ScriptTask("after", model.Output("continued", "true")).
		End("e").
		Seq("s", "sp", "after", "e").
		MustBuild()
	v := deployAndStart(t, f, p, nil)
	// The terminate end inside the scope cancels the slow branch and
	// completes the sub-process; the parent continues.
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s (tokens %v)", v.Status, v.ActiveTokens)
	}
	if got, _ := v.Vars["continued"].AsBool(); !got {
		t.Error("parent did not continue after scoped terminate")
	}
	if len(f.tasks.Worklist("alice")) != 0 {
		t.Error("scoped terminate left the user task open")
	}
}

func TestMultiInstanceNotSupportedKindFaults(t *testing.T) {
	f := newFixture(t)
	p := model.New("mi-recv").
		Start("s").
		ReceiveTask("wait", "m", model.MultiParallel("xs", "x")).
		End("e").
		Seq("s", "wait", "e").
		MustBuild()
	v := deployAndStart(t, f, p, map[string]any{"xs": []any{1, 2}})
	if v.Status != StatusFaulted {
		t.Fatalf("status = %s, want faulted (MI on receive task)", v.Status)
	}
}

func TestAuditTrailOrdering(t *testing.T) {
	f := newFixture(t)
	v := deployAndStart(t, f, model.Sequence(3), nil)
	evs := f.hist.EventsOf(v.ID)
	if len(evs) < 5 {
		t.Fatalf("too few events: %d", len(evs))
	}
	if evs[0].Type != history.InstanceStarted {
		t.Errorf("first event = %s", evs[0].Type)
	}
	if evs[len(evs)-1].Type != history.InstanceCompleted {
		t.Errorf("last event = %s", evs[len(evs)-1].Type)
	}
	// Indices strictly increase.
	for i := 1; i < len(evs); i++ {
		if evs[i].Index <= evs[i-1].Index {
			t.Fatalf("event order broken at %d", i)
		}
	}
}

func TestVariableIsolationBetweenInstances(t *testing.T) {
	f := newFixture(t)
	p := model.New("iso").
		Start("s").
		ScriptTask("inc", model.Output("n", "coalesce(n, 0) + 1")).
		End("e").
		Seq("s", "inc", "e").
		MustBuild()
	if err := f.e.Deploy(p); err != nil {
		t.Fatal(err)
	}
	v1, _ := f.e.StartInstance("iso", map[string]any{"n": 100})
	v2, _ := f.e.StartInstance("iso", nil)
	if got, _ := v1.Vars["n"].AsInt(); got != 101 {
		t.Errorf("v1 n = %v", v1.Vars["n"])
	}
	if got, _ := v2.Vars["n"].AsInt(); got != 1 {
		t.Errorf("v2 n = %v", v2.Vars["n"])
	}
}
