package engine

import (
	"fmt"
	"sync"
	"testing"

	"bpms/internal/expr"
	"bpms/internal/model"
)

// condHeavyWaiter is a condition-heavy definition whose every hot path
// exercises precompiled expressions: gateway conditions, script-task
// output mappings, a correlated message wait, and a multi-instance
// service task with a completion condition. All concurrent instances
// share the one deployed (compiled) definition.
func condHeavyWaiter() *model.Process {
	return model.New("cond-heavy").
		Start("s").
		ScriptTask("prep",
			model.Output("score", "amount * 2 + len(tags)"),
			model.Output("tier", `amount > 500 ? "gold" : "base"`)).
		XOR("route", model.Default("dflt")).
		ServiceTask("fan", model.NoopHandler,
			model.MultiParallel("tags", "tag"),
			model.CompletionCondition("loopCounter >= 2")).
		MessageCatch("wait", "go", model.CorrelationKey("key")).
		XOR("merge").
		End("e").
		Flow("s", "prep").
		Flow("prep", "route").
		FlowIf("route", "fan", `score > 100 && tier == "gold"`).
		FlowID("dflt", "route", "wait", "").
		Flow("fan", "merge").
		Flow("wait", "merge").
		Flow("merge", "e").
		MustBuild()
}

// TestConcurrentStartAndPublish runs StartInstance and Publish
// concurrently against one deployed definition so the race detector
// sees the shared precompiled programs being evaluated from many
// goroutines at once.
func TestConcurrentStartAndPublish(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterHandler(model.NoopHandler, func(TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	if err := e.Deploy(condHeavyWaiter()); err != nil {
		t.Fatal(err)
	}

	const (
		workers       = 8
		perWorker     = 25
		goldPerWorker = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, 2*workers)

	// Half the load: instances that take the default branch and park on
	// the correlated message, resumed by a concurrent Publish.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-i%d", w, i)
				v, err := e.StartInstance("cond-heavy", map[string]any{
					"amount": 10, "tags": []any{"a"}, "key": key,
				})
				if err != nil {
					errs <- err
					return
				}
				if v.Status != StatusActive {
					errs <- fmt.Errorf("waiter %s: status %s", key, v.Status)
					return
				}
				if _, _, err := e.Publish("go", key, map[string]any{"resumed": true}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// The other half: instances that satisfy the gateway condition and
	// run the multi-instance branch to completion synchronously.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < goldPerWorker; i++ {
				v, err := e.StartInstance("cond-heavy", map[string]any{
					"amount": 900, "tags": []any{"x", "y", "z", "q"},
				})
				if err != nil {
					errs <- err
					return
				}
				if v.Status != StatusCompleted {
					errs <- fmt.Errorf("gold instance status %s", v.Status)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every waiter must have completed after its Publish.
	for _, id := range e.Instances() {
		v, err := e.Instance(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusCompleted {
			t.Fatalf("instance %s ended %s", id, v.Status)
		}
	}
}

// TestDeployCompilesDefinition pins the deploy-time compilation
// contract: after Deploy the engine's copy of the definition holds
// precompiled programs for every expression it carries.
func TestDeployCompilesDefinition(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterHandler(model.NoopHandler, func(TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	src := condHeavyWaiter()
	if src.Compiled() {
		t.Fatal("definition compiled before Deploy")
	}
	if err := e.Deploy(src); err != nil {
		t.Fatal(err)
	}
	def, ok := e.Definition("cond-heavy")
	if !ok {
		t.Fatal("definition not registered")
	}
	if !def.Compiled() {
		t.Fatal("deployed definition not compiled")
	}
	// The caller's copy stays untouched (Deploy clones).
	if src.Compiled() {
		t.Fatal("Deploy compiled the caller's copy in place")
	}
}
