package engine

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"bpms/internal/expr"
	"bpms/internal/model"
	"bpms/internal/storage"
)

func openStreamingFixture(t *testing.T, dir string, cfg Config) (*Engine, *storage.FileJournal) {
	t.Helper()
	j, err := storage.OpenFileJournal(filepath.Join(dir, "state"), storage.Options{SegmentSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j
	if cfg.Snapshots == nil {
		sn, err := storage.OpenSnapshotStore(filepath.Join(dir, "snapshots"), 2)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Snapshots = sn
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterHandler(model.NoopHandler, func(TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	return e, j
}

// TestStreamingSnapshotRecoverRoundtrip: a streaming snapshot plus a
// journal suffix recover identically under serial and parallel decode,
// including variables and statuses.
func TestStreamingSnapshotRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	e, j := openStreamingFixture(t, dir, Config{})
	if err := e.Deploy(model.Sequence(3)); err != nil {
		t.Fatal(err)
	}
	const before, after = 40, 25
	for i := 0; i < before; i++ {
		if _, err := e.StartInstance("seq-3", map[string]any{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if j.FirstIndex() <= 1 {
		t.Fatal("snapshot did not truncate the journal prefix")
	}
	for i := before; i < before+after; i++ {
		if _, err := e.StartInstance("seq-3", map[string]any{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	wantIDs := e.Instances()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		j2, err := storage.OpenFileJournal(filepath.Join(dir, "state"), storage.Options{SegmentSize: 8 << 10})
		if err != nil {
			t.Fatal(err)
		}
		sn, err := storage.OpenSnapshotStore(filepath.Join(dir, "snapshots"), 2)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := New(Config{Journal: j2, Snapshots: sn, RecoveryWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		gotIDs := e2.Instances()
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("workers=%d: recovered %d instances, want %d", workers, len(gotIDs), len(wantIDs))
		}
		for i := range wantIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("workers=%d: instance %d = %q, want %q", workers, i, gotIDs[i], wantIDs[i])
			}
		}
		// Spot-check one instance's recovered vars and status.
		v, err := e2.Instance(wantIDs[0])
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusCompleted {
			t.Fatalf("workers=%d: status = %s", workers, v.Status)
		}
		j2.Close()
	}
}

// TestSnapshotWhileAppending drives concurrent StartInstance traffic
// against repeated Snapshot calls (run with -race: the streaming
// writer locks each instance briefly while writers mutate others), then
// proves a cold start recovers every acknowledged instance.
func TestSnapshotWhileAppending(t *testing.T) {
	dir := t.TempDir()
	e, j := openStreamingFixture(t, dir, Config{})
	if err := e.Deploy(model.Sequence(3)); err != nil {
		t.Fatal(err)
	}
	const writers, per = 4, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("seq-3-%d", w*per+i+1)
				if _, err := e.StartInstanceID("seq-3", id, map[string]any{"w": w}); err != nil {
					t.Errorf("start %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			if err := e.Snapshot(); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if t.Failed() {
		return
	}
	// One final snapshot over quiesced state, then cold start.
	if err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := storage.OpenFileJournal(filepath.Join(dir, "state"), storage.Options{SegmentSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	sn, err := storage.OpenSnapshotStore(filepath.Join(dir, "snapshots"), 2)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(Config{Journal: j2, Snapshots: sn})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e2.Instances()); got != writers*per {
		t.Fatalf("recovered %d instances, want %d", got, writers*per)
	}
}

// TestRequestSnapshotRearm: a trigger arriving while a snapshot is in
// flight is not dropped — the pending flag re-runs the loop, so the
// journal prefix those appends owed a snapshot to is eventually
// compacted. (The seed code consumed the trigger and reset the
// counter, losing it.)
func TestRequestSnapshotRearm(t *testing.T) {
	dir := t.TempDir()
	e, j := openStreamingFixture(t, dir, Config{})
	defer j.Close()
	if err := e.Deploy(model.Sequence(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StartInstance("seq-3", nil); err != nil {
		t.Fatal(err)
	}
	// Claim the in-flight slot by hand: requestSnapshot must fall into
	// the pending path and the release must re-run the loop.
	if !e.snapshotting.CompareAndSwap(false, true) {
		t.Fatal("in-flight flag already set")
	}
	e.requestSnapshot()
	if !e.snapshotPending.Load() {
		t.Fatal("trigger during in-flight snapshot was dropped, not re-armed")
	}
	// Release the claim the way snapshotLoop does: run the snapshot,
	// clear the flag, and honour the pending trigger.
	e.snapshotLoop()
	if e.snapshotPending.Load() {
		t.Fatal("pending trigger not consumed by the follow-up snapshot")
	}
	sn, err := e.snapshots.LatestSnapshot()
	if err != nil || sn == nil {
		t.Fatalf("no snapshot written for re-armed trigger: sn=%v err=%v", sn, err)
	}
}
