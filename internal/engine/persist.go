package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bpms/internal/expr"
	"bpms/internal/model"
	"bpms/internal/storage"
	"bpms/internal/task"
)

// Persistence model: each journal record carries either a deployment
// or the complete serialized state of one instance (last write wins on
// replay). A snapshot stores the whole engine image so recovery can
// skip the journal prefix (compaction via Journal.DropBefore).

type record struct {
	Kind    string          `json:"kind"` // "deploy" | "instance"
	Process *model.Process  `json:"process,omitempty"`
	State   json.RawMessage `json:"state,omitempty"`
}

// instState is the serialized form of an Instance.
type instState struct {
	ID        string                         `json:"id"`
	ProcessID string                         `json:"processId"`
	Status    Status                         `json:"status"`
	Vars      map[string]expr.Value          `json:"vars"`
	Tokens    []*Token                       `json:"tokens,omitempty"`
	Joins     map[string]map[string][]uint64 `json:"joins,omitempty"`
	StartedAt time.Time                      `json:"startedAt"`
	EndedAt   time.Time                      `json:"endedAt,omitempty"`
}

type snapshotImage struct {
	Definitions []*model.Process  `json:"definitions"`
	Instances   []json.RawMessage `json:"instances"`
}

func (e *Engine) encodeInstance(inst *Instance) ([]byte, error) {
	st := instState{
		ID:        inst.ID,
		ProcessID: inst.ProcessID,
		Status:    inst.Status,
		Vars:      inst.Vars,
		Joins:     inst.Joins,
		StartedAt: inst.StartedAt,
		EndedAt:   inst.EndedAt,
	}
	ids := make([]uint64, 0, len(inst.Tokens))
	for id := range inst.Tokens {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		st.Tokens = append(st.Tokens, inst.Tokens[id])
	}
	return json.Marshal(st)
}

// appendRecord writes one journal record, waiting for the durability
// acknowledgement when the engine runs in durable mode. In durable
// mode the caller (holding one instance's lock) blocks only for its
// batch's fsync; transitions on other instances proceed concurrently
// and share the same group commit.
func (e *Engine) appendRecord(rec []byte) (uint64, error) {
	if e.durable {
		return e.journal.AppendDurable(rec)
	}
	return e.journal.Append(rec)
}

// recordBufPool recycles record-envelope buffers: every transition
// persists the instance state, so the envelope is assembled in a
// pooled buffer instead of allocating one per append (journals copy
// the payload before returning, so the buffer is free to reuse).
var recordBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// encodeRecord wraps an already-encoded JSON payload in the journal
// record envelope {"kind":<kind>,<field>:<payload>} without
// re-marshalling the payload the way json.Marshal(record{...}) did
// (which walked every byte of the state twice). The caller must
// return the buffer via recordBufPool.Put once the append returns.
func encodeRecord(kind, field string, payload []byte) *[]byte {
	bp := recordBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, `{"kind":"`...)
	buf = append(buf, kind...)
	buf = append(buf, `","`...)
	buf = append(buf, field...)
	buf = append(buf, `":`...)
	buf = append(buf, payload...)
	buf = append(buf, '}')
	*bp = buf
	return bp
}

// persistInstance appends the instance's current state to the journal.
// Called under the instance lock. The returned error matters in
// durable mode: it is the failed durability acknowledgement, and API
// entry points must not report success past it. Serialization
// failures still must not kill execution on async (listener/timer)
// paths, whose callers ignore the return value as before.
func (e *Engine) persistInstance(inst *Instance) error {
	data, err := e.encodeInstance(inst)
	if err != nil {
		return fmt.Errorf("engine: encode instance %s: %w", inst.ID, err)
	}
	bp := encodeRecord("instance", "state", data)
	_, err = e.appendRecord(*bp)
	recordBufPool.Put(bp)
	if err != nil {
		// A failed append (or durability ack) is a storage I/O error:
		// fail-stop the shard. Encode errors above do not — the disk is
		// fine, only this record is unrepresentable.
		e.failStop("journal append", err)
		return fmt.Errorf("engine: persist instance %s: %w", inst.ID, err)
	}
	e.maybeSnapshot()
	return nil
}

func (e *Engine) persistDeploy(p *model.Process) error {
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	bp := encodeRecord("deploy", "process", data)
	_, err = e.appendRecord(*bp)
	recordBufPool.Put(bp)
	if err != nil {
		e.failStop("journal append", err)
		return err
	}
	e.maybeSnapshot()
	return nil
}

// maybeSnapshot triggers a snapshot after every SnapshotEvery appends.
// The snapshot itself runs asynchronously: persistInstance calls this
// while holding an instance lock, and Snapshot must be free to lock
// every instance.
func (e *Engine) maybeSnapshot() {
	if e.snapshots == nil || e.snapshotEvery <= 0 || e.degraded.Load() {
		return
	}
	e.mu.Lock()
	e.appendsSince++
	due := e.appendsSince >= e.snapshotEvery
	if due {
		e.appendsSince = 0
	}
	e.mu.Unlock()
	if due {
		e.requestSnapshot()
	}
}

// requestSnapshot starts an asynchronous snapshot, or — when one is
// already in flight — re-arms the trigger so it fires when the
// in-flight snapshot completes. Without the re-arm the trigger would
// be lost entirely: maybeSnapshot has already reset its append counter
// by the time the CAS fails, so nothing would schedule the snapshot
// those appends were owed.
func (e *Engine) requestSnapshot() {
	if e.snapshotting.CompareAndSwap(false, true) {
		go e.snapshotLoop()
		return
	}
	e.snapshotPending.Store(true)
	// The in-flight snapshot may have finished between the failed CAS
	// and the pending store, missing the flag; retry the claim so the
	// trigger cannot fall into that gap.
	if e.snapshotting.CompareAndSwap(false, true) {
		go e.snapshotLoop()
	}
}

// snapshotLoop runs snapshots while triggers keep arriving, releasing
// the in-flight claim between rounds. The pending flag is cleared
// before each snapshot so a trigger arriving mid-snapshot schedules
// exactly one follow-up round.
func (e *Engine) snapshotLoop() {
	for {
		e.snapshotPending.Store(false)
		if e.degraded.Load() {
			// Frozen: stop churning the failing disk with snapshots.
			e.snapshotting.Store(false)
			return
		}
		_ = e.Snapshot()
		e.snapshotting.Store(false)
		if !e.snapshotPending.Load() {
			return
		}
		if !e.snapshotting.CompareAndSwap(false, true) {
			return // a concurrent requestSnapshot claimed the follow-up
		}
	}
}

// TrySnapshot starts an asynchronous snapshot unless one is already in
// flight or the journal has not advanced past the last snapshot. The
// time-based scheduler calls this on every tick; an in-flight snapshot
// or an idle journal satisfies the tick rather than queueing behind it.
func (e *Engine) TrySnapshot() bool {
	if e.snapshots == nil || e.degraded.Load() {
		return false
	}
	if e.journal.LastIndex() == e.lastSnapIndex.Load() {
		return false
	}
	if !e.snapshotting.CompareAndSwap(false, true) {
		return false
	}
	go e.snapshotLoop()
	return true
}

// Snapshot writes a point-in-time engine image covering the journal's
// current last index, then drops the covered journal prefix. Each
// instance is locked just long enough to encode it and the record is
// streamed straight to the snapshot writer, so memory stays bounded by
// one instance's state rather than the total image. Instances mutated
// concurrently are still written — possibly with post-index state —
// which is safe because replay applies the journal suffix on top with
// last-write-wins semantics.
func (e *Engine) Snapshot() error {
	if e.snapshots == nil {
		return fmt.Errorf("engine: no snapshot store configured")
	}
	if e.blobSnapshots {
		return e.snapshotBlob()
	}
	e.mu.RLock()
	defIDs := make([]string, 0, len(e.definitions))
	for id := range e.definitions {
		defIDs = append(defIDs, id)
	}
	sort.Strings(defIDs)
	defs := make([]*model.Process, 0, len(defIDs))
	for _, id := range defIDs {
		defs = append(defs, e.definitions[id])
	}
	instIDs := make([]string, 0, len(e.instances))
	for id := range e.instances {
		instIDs = append(instIDs, id)
	}
	sort.Strings(instIDs)
	insts := make([]*Instance, 0, len(instIDs))
	for _, id := range instIDs {
		insts = append(insts, e.instances[id])
	}
	e.mu.RUnlock()

	index := e.journal.LastIndex()
	w, err := e.snapshots.Writer(index)
	if err != nil {
		e.failStop("snapshot create", err)
		return err
	}
	// Encode errors abort the snapshot but do not fail-stop (the disk
	// is healthy); append/commit/truncate errors are storage I/O and do.
	appendRec := func(kind, field string, payload []byte) error {
		bp := encodeRecord(kind, field, payload)
		err := w.Append(*bp)
		recordBufPool.Put(bp)
		if err != nil {
			e.failStop("snapshot write", err)
		}
		return err
	}
	for _, def := range defs {
		data, err := json.Marshal(def)
		if err == nil {
			err = appendRec("deploy", "process", data)
		}
		if err != nil {
			w.Abort()
			return err
		}
	}
	for _, inst := range insts {
		inst.mu.Lock()
		data, err := e.encodeInstance(inst)
		inst.mu.Unlock()
		if err == nil {
			err = appendRec("instance", "state", data)
		}
		if err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Commit(); err != nil {
		e.failStop("snapshot commit", err)
		return err
	}
	e.lastSnapIndex.Store(index)
	if err := e.journal.DropBefore(index + 1); err != nil {
		e.failStop("journal truncate", err)
		return err
	}
	return nil
}

// snapshotBlob is the legacy single-blob snapshot path: the whole
// engine image is marshalled in memory and written in one Write call.
// Retained only as the seed baseline for experiment T16.
func (e *Engine) snapshotBlob() error {
	img := snapshotImage{}
	e.mu.RLock()
	defIDs := make([]string, 0, len(e.definitions))
	for id := range e.definitions {
		defIDs = append(defIDs, id)
	}
	sort.Strings(defIDs)
	for _, id := range defIDs {
		img.Definitions = append(img.Definitions, e.definitions[id])
	}
	instIDs := make([]string, 0, len(e.instances))
	for id := range e.instances {
		instIDs = append(instIDs, id)
	}
	sort.Strings(instIDs)
	insts := make([]*Instance, 0, len(instIDs))
	for _, id := range instIDs {
		insts = append(insts, e.instances[id])
	}
	e.mu.RUnlock()

	index := e.journal.LastIndex()
	for _, inst := range insts {
		inst.mu.Lock()
		data, err := e.encodeInstance(inst)
		inst.mu.Unlock()
		if err != nil {
			return err
		}
		img.Instances = append(img.Instances, data)
	}
	data, err := json.Marshal(img)
	if err != nil {
		return err
	}
	if err := e.snapshots.Write(index, data); err != nil {
		e.failStop("snapshot write", err)
		return err
	}
	e.lastSnapIndex.Store(index)
	if err := e.journal.DropBefore(index + 1); err != nil {
		e.failStop("journal truncate", err)
		return err
	}
	return nil
}

// decodeRecoveryRecord decodes one record-envelope payload (from a
// streaming snapshot or the journal) into its recovered form: a
// compiled *model.Process or an *instState. Safe for concurrent use;
// the payload is not retained past the call.
func decodeRecoveryRecord(payload []byte) (any, error) {
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("engine: decode journal record: %w", err)
	}
	switch rec.Kind {
	case "deploy":
		rec.Process.Index()
		if err := rec.Process.Compile(); err != nil {
			return nil, fmt.Errorf("engine: compile recovered definition %q: %w", rec.Process.ID, err)
		}
		return rec.Process, nil
	case "instance":
		st := &instState{}
		if err := json.Unmarshal(rec.State, st); err != nil {
			return nil, fmt.Errorf("engine: decode instance state: %w", err)
		}
		return st, nil
	default:
		return nil, fmt.Errorf("engine: unknown journal record kind %q", rec.Kind)
	}
}

// errSnapshotDecodeAborted stops Snapshot.Iterate early once a decode
// worker has already failed; the worker's error is reported instead.
var errSnapshotDecodeAborted = errors.New("engine: snapshot decode aborted")

// loadSnapshotParallel streams the snapshot's records through a decode
// worker pool, merging results into defs/states. Records are unique
// per definition/instance, so merge order does not matter.
func loadSnapshotParallel(sn *storage.Snapshot, workers int,
	defs map[string]*model.Process, states map[string]*instState) error {
	var (
		mergeMu  sync.Mutex
		firstErr error
		failed   atomic.Bool
	)
	fail := func(err error) {
		mergeMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mergeMu.Unlock()
		failed.Store(true)
	}
	recCh := make(chan []byte, 4*workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range recCh {
				if failed.Load() {
					continue
				}
				v, err := decodeRecoveryRecord(p)
				if err != nil {
					fail(err)
					continue
				}
				mergeMu.Lock()
				switch x := v.(type) {
				case *model.Process:
					defs[x.ID] = x
				case *instState:
					states[x.ID] = x
				}
				mergeMu.Unlock()
			}
		}()
	}
	iterErr := sn.Iterate(func(p []byte) error {
		if failed.Load() {
			return errSnapshotDecodeAborted
		}
		// The iterator reuses its payload buffer; copy before handing
		// the record to a worker.
		recCh <- append(make([]byte, 0, len(p)), p...)
		return nil
	})
	close(recCh)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if iterErr != nil {
		return fmt.Errorf("engine: read snapshot: %w", iterErr)
	}
	return nil
}

// recover rebuilds engine state from the latest snapshot (when
// present) plus the journal suffix, then re-arms all volatile wait
// machinery. Streaming snapshots are decoded by a worker pool and the
// journal's sealed segments replay in parallel when the journal
// supports it (decode on workers, apply in index order).
// recover builds the definition and instance maps locally and
// publishes them into the engine under its lock in one step: under the
// shard router, sibling shards recover concurrently and their
// task-transition listeners call Has on this engine while it is still
// replaying (holding the lock across the whole replay instead would
// deadlock — rearmInstance's work-item re-issue notifies this engine's
// own listener, which takes a read lock).
func (e *Engine) recover() error {
	defs := map[string]*model.Process{}
	states := map[string]*instState{}
	var fromIndex uint64 = 1

	workers := e.recoverWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	merge := func(v any) {
		switch x := v.(type) {
		case *model.Process:
			defs[x.ID] = x
		case *instState:
			states[x.ID] = x
		}
	}

	if e.snapshots != nil {
		sn, err := e.snapshots.LatestSnapshot()
		if err != nil {
			return fmt.Errorf("engine: read snapshot: %w", err)
		}
		if sn != nil {
			switch {
			case sn.Legacy:
				// One record carrying the whole blob image.
				err = sn.Iterate(func(data []byte) error {
					var img snapshotImage
					if err := json.Unmarshal(data, &img); err != nil {
						return fmt.Errorf("engine: decode snapshot: %w", err)
					}
					for _, def := range img.Definitions {
						def.Index()
						if err := def.Compile(); err != nil {
							return fmt.Errorf("engine: compile snapshot definition %q: %w", def.ID, err)
						}
						defs[def.ID] = def
					}
					for _, raw := range img.Instances {
						var st instState
						if err := json.Unmarshal(raw, &st); err != nil {
							return fmt.Errorf("engine: decode snapshot instance: %w", err)
						}
						states[st.ID] = &st
					}
					return nil
				})
			case workers <= 1:
				err = sn.Iterate(func(p []byte) error {
					v, derr := decodeRecoveryRecord(p)
					if derr != nil {
						return derr
					}
					merge(v)
					return nil
				})
			default:
				err = loadSnapshotParallel(sn, workers, defs, states)
			}
			if err != nil {
				return err
			}
			fromIndex = sn.Index + 1
			e.lastSnapIndex.Store(sn.Index)
		}
	}

	var err error
	if pr, ok := e.journal.(storage.ParallelReplayer); ok && workers > 1 {
		err = pr.ReplayParallel(fromIndex, workers,
			func(_ uint64, payload []byte) (any, error) {
				return decodeRecoveryRecord(payload)
			},
			func(_ uint64, v any) error {
				merge(v)
				return nil
			})
	} else {
		err = e.journal.Replay(fromIndex, func(_ uint64, payload []byte) error {
			v, derr := decodeRecoveryRecord(payload)
			if derr != nil {
				return derr
			}
			merge(v)
			return nil
		})
	}
	if err != nil {
		return err
	}

	var maxTok uint64
	ids := make([]string, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	insts := map[string]*Instance{}
	for _, id := range ids {
		st := states[id]
		def := defs[st.ProcessID]
		if def == nil {
			return fmt.Errorf("engine: instance %s references unknown process %q", id, st.ProcessID)
		}
		inst := newInstance(st.ID, def, st.Vars)
		inst.Status = st.Status
		inst.StartedAt = st.StartedAt
		inst.EndedAt = st.EndedAt
		if st.Joins != nil {
			inst.Joins = st.Joins
		}
		for _, tok := range st.Tokens {
			inst.Tokens[tok.ID] = tok
			if tok.ID > maxTok {
				maxTok = tok.ID
			}
		}
		insts[st.ID] = inst
	}
	e.mu.Lock()
	for id, def := range defs {
		e.definitions[id] = def
	}
	for id, inst := range insts {
		e.instances[id] = inst
	}
	e.mu.Unlock()
	e.idSeq.Store(MaxInstanceSeq(ids))
	e.tokSeq.Store(maxTok)

	// Re-arm volatile machinery for active instances.
	for _, id := range ids {
		inst := insts[id]
		if inst.Status != StatusActive {
			continue
		}
		inst.mu.Lock()
		e.rearmInstance(inst)
		inst.mu.Unlock()
	}
	return nil
}

// MaxInstanceSeq returns the highest trailing "-<n>" sequence number
// among the given instance IDs (0 when none parses). Engine recovery
// and the shard router both re-seed their ID sequences with it.
func MaxInstanceSeq(ids []string) uint64 {
	var max uint64
	for _, id := range ids {
		if i := strings.LastIndex(id, "-"); i >= 0 {
			if n, err := strconv.ParseUint(id[i+1:], 10, 64); err == nil && n > max {
				max = n
			}
		}
	}
	return max
}

// rearmInstance restores timers, message subscriptions, and work items
// for every parked token of a recovered instance.
func (e *Engine) rearmInstance(inst *Instance) {
	tokIDs := make([]uint64, 0, len(inst.Tokens))
	for id := range inst.Tokens {
		tokIDs = append(tokIDs, id)
	}
	sort.Slice(tokIDs, func(a, b int) bool { return tokIDs[a] < tokIDs[b] })
	for _, id := range tokIDs {
		tok := inst.Tokens[id]
		switch tok.Wait {
		case WaitTimer:
			instID, tokID := inst.ID, tok.ID
			tok.timerID = e.timers.Schedule(tok.TimerAt, func() {
				e.fireTokenTimer(instID, tokID)
			})
		case WaitMessage:
			e.subs.add(subscription{
				Name: tok.Message, Key: tok.CorrKey, InstanceID: inst.ID,
				TokenID: tok.ID, Elem: tok.Elem, Kind: subMessage,
			})
		case WaitEventGate:
			for i := range tok.Race {
				arm := &tok.Race[i]
				if arm.Message != "" {
					e.subs.add(subscription{
						Name: arm.Message, Key: arm.CorrKey, InstanceID: inst.ID,
						TokenID: tok.ID, Elem: arm.Elem, Kind: subRace,
					})
				} else {
					instID, tokID, armElem := inst.ID, tok.ID, arm.Elem
					arm.timerID = e.timers.Schedule(arm.TimerAt, func() {
						e.fireRace(instID, tokID, armElem, nil)
					})
				}
			}
		case WaitUserTask:
			// The worklist is in-memory: re-issue the work item.
			e.reissueWorkItem(inst, tok, -1)
		case WaitMulti:
			open := append([]string(nil), tok.MI.OpenItems...)
			tok.MI.OpenItems = nil
			oldIdx := tok.MI.ItemIdx
			tok.MI.ItemIdx = map[string]int{}
			for _, old := range open {
				e.reissueWorkItem(inst, tok, oldIdx[old])
			}
		}
		// Boundary arms (independent of the main wait kind).
		for i := range tok.Boundaries {
			arm := &tok.Boundaries[i]
			if arm.Fired {
				continue
			}
			switch {
			case arm.Message != "":
				e.subs.add(subscription{
					Name: arm.Message, Key: arm.CorrKey, InstanceID: inst.ID,
					TokenID: tok.ID, Elem: arm.Elem, Kind: subBoundary,
				})
			case !arm.TimerAt.IsZero():
				instID, tokID, armElem := inst.ID, tok.ID, arm.Elem
				arm.timerID = e.timers.Schedule(arm.TimerAt, func() {
					e.fireBoundary(instID, tokID, armElem, nil)
				})
			}
		}
	}
}

// reissueWorkItem recreates the work item behind a recovered user-task
// token. idx >= 0 recreates a multi-instance item for that collection
// index.
func (e *Engine) reissueWorkItem(inst *Instance, tok *Token, idx int) {
	proc, el, err := e.resolve(inst, tok.Elem)
	if err != nil {
		return
	}
	_ = proc
	data := map[string]any{}
	for k, v := range inst.Vars {
		data[k] = v.ToGo()
	}
	name := el.Name
	if name == "" {
		name = el.ID
	}
	if idx >= 0 && tok.MI != nil {
		data[tok.MI.ElemVar] = tok.MI.Items[idx].ToGo()
		data["loopCounter"] = int64(idx)
		name = fmt.Sprintf("%s [%d/%d]", name, idx+1, tok.MI.Total)
	}
	var due time.Duration
	if el.DueIn != "" {
		due, _ = time.ParseDuration(el.DueIn)
	}
	it, err := e.tasks.Create(task.Spec{
		ProcessID:  inst.ProcessID,
		InstanceID: inst.ID,
		ElementID:  tok.Elem,
		Name:       name,
		Role:       el.Role,
		Assignee:   el.Assignee,
		Capability: el.Capability,
		Priority:   el.Priority,
		Due:        due,
		Data:       data,
	})
	if err != nil {
		return
	}
	if idx >= 0 && tok.MI != nil {
		tok.MI.OpenItems = append(tok.MI.OpenItems, it.ID)
		tok.MI.ItemIdx[it.ID] = idx
	} else {
		tok.WorkItemID = it.ID
	}
}
