package engine

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/resource"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
)

// inclusiveProcess: OR split over three guarded branches merging in an
// OR join. The join must wait for exactly the activated branches.
func inclusiveProcess() *model.Process {
	return model.New("incl").
		Start("s").
		OR("split", model.Default("dflt")).
		UserTask("a", model.Assignee("alice")).
		UserTask("b", model.Assignee("bob")).
		ServiceTask("c", model.NoopHandler).
		OR("join").
		End("e").
		Flow("s", "split").
		FlowIf("split", "a", "wantA == true").
		FlowIf("split", "b", "wantB == true").
		FlowID("dflt", "split", "c", "").
		Flow("a", "join").
		Flow("b", "join").
		Flow("c", "join").
		Flow("join", "e").
		MustBuild()
}

func TestInclusiveJoinWaitsForActivatedBranches(t *testing.T) {
	f := newFixture(t)
	if err := f.e.Deploy(inclusiveProcess()); err != nil {
		t.Fatal(err)
	}
	// Both user branches active: join must wait for both.
	v, _ := f.e.StartInstance("incl", map[string]any{"wantA": true, "wantB": true})
	if instStatus(t, f, v.ID) != StatusActive {
		t.Fatal("should wait for user tasks")
	}
	wlA := f.tasks.Worklist("alice")
	wlB := f.tasks.Worklist("bob")
	if len(wlA) != 1 || len(wlB) != 1 {
		t.Fatalf("worklists: alice=%d bob=%d", len(wlA), len(wlB))
	}
	f.tasks.Start(wlA[0].ID, "alice")
	f.tasks.Complete(wlA[0].ID, "alice", nil)
	// One branch done: the join still waits (bob's token is upstream).
	if got := instStatus(t, f, v.ID); got != StatusActive {
		t.Fatalf("join fired early: %s", got)
	}
	f.tasks.Start(wlB[0].ID, "bob")
	f.tasks.Complete(wlB[0].ID, "bob", nil)
	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status = %s", got)
	}
	// The join fired exactly once.
	joins := 0
	for _, ev := range f.hist.EventsOf(v.ID) {
		if ev.Type == history.ElementCompleted && ev.ElementID == "join" {
			joins++
		}
	}
	if joins != 1 {
		t.Errorf("join completions = %d, want 1", joins)
	}
}

func TestInclusiveJoinSingleBranch(t *testing.T) {
	f := newFixture(t)
	if err := f.e.Deploy(inclusiveProcess()); err != nil {
		t.Fatal(err)
	}
	// Default branch only (service task): completes synchronously.
	v, _ := f.e.StartInstance("incl", nil)
	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status = %s", got)
	}
	// Single user branch.
	v2, _ := f.e.StartInstance("incl", map[string]any{"wantA": true})
	wl := f.tasks.Worklist("alice")
	if len(wl) != 1 {
		t.Fatalf("alice worklist = %d", len(wl))
	}
	f.tasks.Start(wl[0].ID, "alice")
	f.tasks.Complete(wl[0].ID, "alice", nil)
	if got := instStatus(t, f, v2.ID); got != StatusCompleted {
		t.Fatalf("status = %s", got)
	}
}

func TestMultiInstanceParallelUserTasks(t *testing.T) {
	f := newFixture(t)
	p := model.New("reviews").
		Start("s").
		UserTask("review", model.Assignee("alice"),
			model.MultiParallel("docs", "doc"),
			model.Output("reviewed", "coalesce(reviewed, 0) + 1")).
		End("e").
		Seq("s", "review", "e").
		MustBuild()
	v := deployAndStart(t, f, p, map[string]any{
		"docs": []any{"d1", "d2", "d3"},
	})
	wl := f.tasks.Worklist("alice")
	if len(wl) != 3 {
		t.Fatalf("worklist = %d, want 3 parallel items", len(wl))
	}
	// Item data carries the element variable.
	seen := map[any]bool{}
	for _, it := range wl {
		seen[it.Data["doc"]] = true
	}
	if len(seen) != 3 {
		t.Errorf("element vars = %v", seen)
	}
	for i, it := range wl {
		f.tasks.Start(it.ID, "alice")
		f.tasks.Complete(it.ID, "alice", nil)
		status := instStatus(t, f, v.ID)
		if i < 2 && status != StatusActive {
			t.Fatalf("completed after %d items: %s", i+1, status)
		}
	}
	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status = %s", got)
	}
	vars, _ := f.e.Variables(v.ID)
	if got, _ := vars["reviewed"].AsInt(); got != 3 {
		t.Errorf("reviewed = %v", vars["reviewed"])
	}
}

func TestMultiInstanceSequentialWithCompletionCondition(t *testing.T) {
	f := newFixture(t)
	p := model.New("seqmi").
		Start("s").
		UserTask("vote", model.Assignee("alice"),
			model.MultiSequential("voters", "voter"),
			model.CompletionCondition("approvals >= 2"),
			model.Output("approvals", "coalesce(approvals, 0) + (approved ? 1 : 0)")).
		End("e").
		Seq("s", "vote", "e").
		MustBuild()
	v := deployAndStart(t, f, p, map[string]any{
		"voters": []any{"v1", "v2", "v3", "v4"},
	})
	// Sequential: exactly one open item at a time.
	complete := func(approve bool) int {
		wl := f.tasks.Worklist("alice")
		if len(wl) != 1 {
			t.Fatalf("worklist = %d, want 1 (sequential)", len(wl))
		}
		f.tasks.Start(wl[0].ID, "alice")
		f.tasks.Complete(wl[0].ID, "alice", map[string]any{"approved": approve})
		return len(f.tasks.Worklist("alice"))
	}
	complete(true)
	complete(true) // approvals reaches 2: completion condition stops the MI
	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status = %s, want completed after condition", got)
	}
	vars, _ := f.e.Variables(v.ID)
	if got, _ := vars["approvals"].AsInt(); got != 2 {
		t.Errorf("approvals = %v", vars["approvals"])
	}
}

func TestMultiInstanceSyncServiceTask(t *testing.T) {
	f := newFixture(t)
	var processed []string
	f.e.RegisterHandler("collect", func(tc TaskContext) (map[string]expr.Value, error) {
		s, _ := tc.Vars["item"].AsString()
		processed = append(processed, s)
		return nil, nil
	})
	p := model.New("batch").
		Start("s").
		ServiceTask("each", "collect", model.MultiSequential("items", "item")).
		End("e").
		Seq("s", "each", "e").
		MustBuild()
	v := deployAndStart(t, f, p, map[string]any{"items": []any{"x", "y", "z"}})
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s", v.Status)
	}
	if len(processed) != 3 || processed[0] != "x" || processed[2] != "z" {
		t.Errorf("processed = %v", processed)
	}

	// Empty collection completes instantly.
	v2 := func() *InstanceView {
		vv, err := f.e.StartInstance("batch", map[string]any{"items": []any{}})
		if err != nil {
			t.Fatal(err)
		}
		return vv
	}()
	if v2.Status != StatusCompleted {
		t.Fatalf("empty MI status = %s", v2.Status)
	}
}

func TestRecoveryFromJournal(t *testing.T) {
	dir := t.TempDir()
	clock := timer.NewVirtualClock(t0)
	wheel := timer.NewWheelService(time.Millisecond, 256)
	journal, err := storage.OpenFileJournal(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dirr := resource.NewDirectory()
	dirr.AddUser(&resource.User{ID: "alice", Roles: []string{"clerk"}})
	tasks := task.NewService(task.Config{Directory: dirr, Now: clock.Now})
	e1, err := New(Config{Journal: journal, Tasks: tasks, Timers: wheel, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	e1.RegisterHandler(model.NoopHandler, func(TaskContext) (map[string]expr.Value, error) { return nil, nil })

	p := model.New("persistent").
		Start("s").
		UserTask("approve", model.Assignee("alice")).
		TimerCatch("cooloff", "1h").
		MessageCatch("confirm", "confirmation", model.CorrelationKey("caseId")).
		End("e").
		Seq("s", "approve", "cooloff", "confirm", "e").
		MustBuild()
	if err := e1.Deploy(p); err != nil {
		t.Fatal(err)
	}
	// Three instances parked at three different wait states.
	vA, _ := e1.StartInstance("persistent", map[string]any{"caseId": "A"})
	vB, _ := e1.StartInstance("persistent", map[string]any{"caseId": "B"})
	vC, _ := e1.StartInstance("persistent", map[string]any{"caseId": "C"})
	// vB: complete the user task -> parked at timer.
	for _, it := range tasks.Worklist("alice") {
		if it.InstanceID == vB.ID {
			tasks.Start(it.ID, "alice")
			tasks.Complete(it.ID, "alice", nil)
		}
	}
	// vC: complete task, pass timer -> parked at message catch.
	for _, it := range tasks.Worklist("alice") {
		if it.InstanceID == vC.ID {
			tasks.Start(it.ID, "alice")
			tasks.Complete(it.ID, "alice", nil)
		}
	}
	wheel.AdvanceTo(clock.Advance(2 * time.Hour))
	// Both vB and vC passed their timers now; vB parked at message too.
	// Re-check: vB completed its timer only after its task. Both wait
	// for messages now.
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}

	// --- crash: rebuild everything from the journal ---
	journal2, err := storage.OpenFileJournal(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clock2 := timer.NewVirtualClock(clock.Now())
	wheel2 := timer.NewWheelService(time.Millisecond, 256)
	tasks2 := task.NewService(task.Config{Directory: dirr, Now: clock2.Now})
	e2, err := New(Config{Journal: journal2, Tasks: tasks2, Timers: wheel2, Clock: clock2})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	e2.RegisterHandler(model.NoopHandler, func(TaskContext) (map[string]expr.Value, error) { return nil, nil })

	// vA: still at the user task; its work item was re-issued.
	gotA, err := e2.Instance(vA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotA.Status != StatusActive || len(gotA.ActiveTokens) != 1 || gotA.ActiveTokens[0].Wait != WaitUserTask {
		t.Fatalf("vA after recovery: %+v", gotA)
	}
	wl := tasks2.Worklist("alice")
	if len(wl) != 1 || wl[0].InstanceID != vA.ID {
		t.Fatalf("re-issued worklist = %v", wl)
	}
	tasks2.Start(wl[0].ID, "alice")
	tasks2.Complete(wl[0].ID, "alice", nil)
	// vA now waits at its timer; fire it, then send its message.
	wheel2.AdvanceTo(clock2.Advance(90 * time.Minute))
	if n, _, _ := e2.Publish("confirmation", "A", nil); n != 1 {
		t.Fatal("vA message not delivered after recovery")
	}
	if v, _ := e2.Instance(vA.ID); v.Status != StatusCompleted {
		t.Fatalf("vA = %s", v.Status)
	}

	// vB and vC wait for their messages (subscriptions re-registered).
	for _, tc := range []struct{ id, key string }{{vB.ID, "B"}, {vC.ID, "C"}} {
		if n, _, _ := e2.Publish("confirmation", tc.key, nil); n != 1 {
			t.Fatalf("message for %s not delivered after recovery", tc.key)
		}
		if v, _ := e2.Instance(tc.id); v.Status != StatusCompleted {
			t.Fatalf("%s = %s", tc.id, v.Status)
		}
	}
}

func TestRecoveryWithSnapshot(t *testing.T) {
	dir := t.TempDir()
	snapDir := t.TempDir()
	journal, err := storage.OpenFileJournal(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := storage.OpenSnapshotStore(snapDir, 2)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := New(Config{Journal: journal, Snapshots: snaps, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	e1.RegisterHandler(model.NoopHandler, func(TaskContext) (map[string]expr.Value, error) { return nil, nil })
	if err := e1.Deploy(model.Sequence(3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := e1.StartInstance("seq-3", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshots happened; the journal prefix was compacted.
	if journal.FirstIndex() == 1 {
		t.Log("journal not compacted (single segment); forcing snapshot")
		if err := e1.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}

	journal2, err := storage.OpenFileJournal(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer journal2.Close()
	e2, err := New(Config{Journal: journal2, Snapshots: snaps})
	if err != nil {
		t.Fatalf("recovery with snapshot: %v", err)
	}
	if got := len(e2.Instances()); got != 30 {
		t.Fatalf("recovered instances = %d, want 30", got)
	}
	for _, id := range e2.Instances() {
		v, err := e2.Instance(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusCompleted {
			t.Errorf("%s = %s", id, v.Status)
		}
	}
	// The engine keeps working after recovery.
	e2.RegisterHandler(model.NoopHandler, func(TaskContext) (map[string]expr.Value, error) { return nil, nil })
	v, err := e2.StartInstance("seq-3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCompleted {
		t.Errorf("post-recovery instance = %s", v.Status)
	}
	// Fresh instance IDs must not collide with recovered ones.
	if _, err := e2.Instance(v.ID); err != nil {
		t.Errorf("new instance id collides: %v", err)
	}
}

// Property: every randomly generated block-structured process (all
// service tasks) runs to completion.
func TestQuickRandomStructuredExecutes(t *testing.T) {
	f := newFixture(t)
	deployed := map[string]bool{}
	fn := func(seed int64, sz uint8) bool {
		p := model.RandomStructured(seed, int(sz%30)+1)
		if !deployed[p.ID] {
			if err := f.e.Deploy(p); err != nil {
				return false
			}
			deployed[p.ID] = true
		}
		v, err := f.e.StartInstance(p.ID, map[string]any{"rnd": int(seed % 97)})
		if err != nil {
			return false
		}
		return v.Status == StatusCompleted
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentInstances(t *testing.T) {
	f := newFixture(t)
	if err := f.e.Deploy(model.Mixed()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				v, err := f.e.StartInstance("mixed", map[string]any{"amount": g*100 + i})
				if err != nil {
					errs <- err
					return
				}
				if v.Status != StatusCompleted {
					errs <- fmt.Errorf("instance %s: %s", v.ID, v.Status)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(f.e.Instances()); got != 200 {
		t.Errorf("instances = %d, want 200", got)
	}
}

func TestMessageBoundaryOnUserTask(t *testing.T) {
	f := newFixture(t)
	p := model.New("abortable").
		Start("s").
		UserTask("fill", model.Assignee("alice")).
		BoundaryMessage("aborted", "fill", "order.cancelled", true, model.CorrelationKey("oid")).
		ServiceTask("cleanup", model.NoopHandler).
		XOR("merge").
		End("e").
		Flow("s", "fill").
		Flow("fill", "merge").
		Flow("aborted", "cleanup").
		Flow("cleanup", "merge").
		Flow("merge", "e").
		MustBuild()
	v := deployAndStart(t, f, p, map[string]any{"oid": "O-7"})
	if n, _, _ := f.e.Publish("order.cancelled", "O-7", nil); n != 1 {
		t.Fatal("boundary message not delivered")
	}
	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status = %s", got)
	}
	// Work item cancelled by the interrupting boundary.
	if wl := f.tasks.Worklist("alice"); len(wl) != 0 {
		t.Errorf("worklist = %v", wl)
	}
}

func TestFailedWorkItemRoutesToErrorBoundary(t *testing.T) {
	f := newFixture(t)
	p := model.New("failable").
		Start("s").
		UserTask("verify", model.Assignee("alice")).
		BoundaryError("failed", "verify", "task-failed").
		ServiceTask("remediate", model.NoopHandler).
		XOR("merge").
		End("e").
		Flow("s", "verify").
		Flow("verify", "merge").
		Flow("failed", "remediate").
		Flow("remediate", "merge").
		Flow("merge", "e").
		MustBuild()
	v := deployAndStart(t, f, p, nil)
	wl := f.tasks.Worklist("alice")
	f.tasks.Start(wl[0].ID, "alice")
	f.tasks.Fail(wl[0].ID, "alice", "data incomplete")
	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status = %s", got)
	}
	ran := map[string]bool{}
	for _, ev := range f.hist.EventsOf(v.ID) {
		if ev.Type == history.ElementCompleted {
			ran[ev.ElementID] = true
		}
	}
	if !ran["remediate"] {
		t.Error("error boundary path not taken")
	}
}

func TestSkippedWorkItemContinuesFlow(t *testing.T) {
	f := newFixture(t)
	p := model.New("skippable").
		Start("s").
		UserTask("optional", model.Assignee("alice")).
		End("e").
		Seq("s", "optional", "e").
		MustBuild()
	v := deployAndStart(t, f, p, nil)
	wl := f.tasks.Worklist("alice")
	if _, err := f.tasks.Skip(wl[0].ID, "not needed"); err != nil {
		t.Fatal(err)
	}
	if got := instStatus(t, f, v.ID); got != StatusCompleted {
		t.Fatalf("status = %s", got)
	}
}

func TestSendTaskThrowsToSibling(t *testing.T) {
	f := newFixture(t)
	// One process sends, another receives; correlation by key.
	sender := model.New("sender").
		Start("s").
		SendTask("emit", "handoff", model.CorrelationKey("k")).
		End("e").
		Seq("s", "emit", "e").
		MustBuild()
	receiver := model.New("receiver").
		Start("s").
		ReceiveTask("recv", "handoff", model.CorrelationKey("k")).
		End("e").
		Seq("s", "recv", "e").
		MustBuild()
	if err := f.e.Deploy(sender); err != nil {
		t.Fatal(err)
	}
	if err := f.e.Deploy(receiver); err != nil {
		t.Fatal(err)
	}
	vr, _ := f.e.StartInstance("receiver", map[string]any{"k": "shared"})
	if instStatus(t, f, vr.ID) != StatusActive {
		t.Fatal("receiver should wait")
	}
	vs, _ := f.e.StartInstance("sender", map[string]any{"k": "shared", "payload": 7})
	if vs.Status != StatusCompleted {
		t.Fatalf("sender = %s", vs.Status)
	}
	got, _ := f.e.Instance(vr.ID)
	if got.Status != StatusCompleted {
		t.Fatalf("receiver = %s", got.Status)
	}
	// The sender's variables travelled with the message.
	if p, _ := got.Vars["payload"].AsInt(); p != 7 {
		t.Errorf("payload = %v", got.Vars["payload"])
	}
}
