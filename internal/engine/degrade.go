package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrDegraded is returned by write operations once the engine has
// fail-stopped. A journal or snapshot I/O error means the engine can
// no longer guarantee that an acknowledged transition is durable, so
// instead of limping on with undefined semantics the shard freezes at
// its last durable state: reads and queries keep serving, every
// mutation is refused with this error, and recovery is a restart
// against repaired storage (replay re-derives the frozen state).
var ErrDegraded = errors.New("engine: shard degraded (read-only)")

// degradeState carries the first fatal storage error; later errors are
// ignored (the first one froze the shard).
type degradeState struct {
	mu     sync.Mutex
	reason string
	at     time.Time
}

// failStop transitions the engine into read-only degraded mode in
// response to a storage I/O error. Only the first call wins; the
// callback (Config.OnDegrade) fires exactly once, outside any engine
// lock.
func (e *Engine) failStop(op string, err error) {
	if err == nil {
		return
	}
	if !e.degraded.CompareAndSwap(false, true) {
		return
	}
	reason := fmt.Sprintf("%s: %v", op, err)
	e.degrade.mu.Lock()
	e.degrade.reason = reason
	e.degrade.at = e.clock.Now()
	e.degrade.mu.Unlock()
	if e.onDegrade != nil {
		e.onDegrade(reason)
	}
}

// Degraded reports whether the engine has fail-stopped into read-only
// mode.
func (e *Engine) Degraded() bool { return e.degraded.Load() }

// DegradedReason returns the first fatal storage error that froze the
// shard ("" while healthy) and when it happened.
func (e *Engine) DegradedReason() (string, time.Time) {
	if !e.degraded.Load() {
		return "", time.Time{}
	}
	e.degrade.mu.Lock()
	defer e.degrade.mu.Unlock()
	return e.degrade.reason, e.degrade.at
}

// checkWritable gates synchronous write entry points: the degraded
// engine refuses every mutation with ErrDegraded (wrapping the
// original storage error's description).
func (e *Engine) checkWritable() error {
	if !e.degraded.Load() {
		return nil
	}
	reason, _ := e.DegradedReason()
	return fmt.Errorf("%w: %s", ErrDegraded, reason)
}
