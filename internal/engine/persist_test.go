package engine

import (
	"encoding/json"
	"testing"

	"bpms/internal/expr"
	"bpms/internal/model"
	"bpms/internal/storage"
)

// TestEncodeRecordMatchesMarshal proves the pooled envelope writer
// produces exactly what json.Marshal(record{...}) produced, so
// journals written before and after the zero-copy change replay
// interchangeably.
func TestEncodeRecordMatchesMarshal(t *testing.T) {
	state := []byte(`{"id":"i-1","processId":"p","status":1,"vars":{}}`)
	bp := encodeRecord("instance", "state", state)
	got := string(*bp)
	recordBufPool.Put(bp)
	want, err := json.Marshal(record{Kind: "instance", State: state})
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("envelope mismatch:\n got %s\nwant %s", got, want)
	}
	var rec record
	if err := json.Unmarshal([]byte(got), &rec); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if rec.Kind != "instance" || string(rec.State) != string(state) {
		t.Errorf("decoded record: kind=%q state=%s", rec.Kind, rec.State)
	}
}

// TestPersistRoundTripThroughEnvelope drives deploy + instance records
// through the pooled envelope into a journal and recovers them.
func TestPersistRoundTripThroughEnvelope(t *testing.T) {
	j := storage.NewMemJournal()
	e, err := New(Config{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterHandler(model.NoopHandler, func(TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	if err := e.Deploy(model.Sequence(3)); err != nil {
		t.Fatal(err)
	}
	v, err := e.StartInstance("seq-3", map[string]any{"note": "a\"quoted\" value"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s", v.Status)
	}
	// Every journal record must be valid JSON with a known kind.
	count := 0
	err = j.Replay(1, func(_ uint64, payload []byte) error {
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return err
		}
		if rec.Kind != "deploy" && rec.Kind != "instance" {
			t.Errorf("unexpected record kind %q", rec.Kind)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("no journal records written")
	}
	// A fresh engine recovers the instance from those records.
	e2, err := New(Config{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e2.Instance(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != StatusCompleted || v2.Vars["note"].ToGo() != "a\"quoted\" value" {
		t.Errorf("recovered instance: %+v", v2)
	}
}
