package engine

import (
	"fmt"

	"bpms/internal/expr"
	"bpms/internal/model"
	"bpms/internal/task"
)

// Multi-instance semantics: the activity's token becomes a controller
// holding the evaluated collection. Synchronous activities (service
// and script tasks) iterate in place; user/manual tasks fan work items
// out (all at once when parallel, one at a time when sequential). The
// completion condition is evaluated after each finished item and, when
// true, cancels the remaining ones. Multi-instance markers on
// sub-processes, call activities, and message-waiting tasks are not
// supported and raise an incident (the state of several concurrent
// interior scopes under one path namespace would be ambiguous).

// enterMultiInstance evaluates the collection and dispatches per the
// activity kind.
func (e *Engine) enterMultiInstance(inst *Instance, tok *Token, proc *model.Process, el *model.Element) {
	p, err := el.CollectionProgram()
	if err != nil {
		e.incident(inst, tok.Elem, fmt.Sprintf("multi-instance collection: %v", err))
		return
	}
	if p == nil {
		// Deploy validates the collection non-empty, but recovery
		// compiles without validating; fault rather than crash.
		e.incident(inst, tok.Elem, "multi-instance collection: empty expression")
		return
	}
	v, err := p.Eval(inst.env(nil))
	if err != nil {
		e.incident(inst, tok.Elem, fmt.Sprintf("multi-instance collection: %v", err))
		return
	}
	items, ok := v.AsList()
	if !ok {
		e.incident(inst, tok.Elem, fmt.Sprintf("multi-instance collection is %s, want list", v.Kind()))
		return
	}
	if len(items) == 0 {
		// Empty collection: the activity completes immediately.
		e.elementCompleted(inst, el, tok.Elem, "")
		e.continueOutgoing(inst, tok, proc, el)
		return
	}
	mi := &miState{
		Total:    len(items),
		Parallel: el.Multi.Parallel,
		Items:    items,
		ElemVar:  el.Multi.ElementVar,
		ItemIdx:  map[string]int{},
	}
	tok.MI = mi

	switch el.Kind {
	case model.KindServiceTask, model.KindScriptTask:
		e.runSyncMulti(inst, tok, proc, el)
	case model.KindUserTask, model.KindManualTask:
		tok.Wait = WaitMulti
		if mi.Parallel {
			for idx := range items {
				e.spawnMultiItem(inst, tok, proc, el, idx)
				if inst.Status != StatusActive {
					return
				}
			}
		} else {
			mi.NextIdx = 1
			e.spawnMultiItem(inst, tok, proc, el, 0)
		}
		inst.dirty = true
	default:
		e.incident(inst, tok.Elem, fmt.Sprintf("multi-instance not supported on %s", el.Kind))
	}
}

// runSyncMulti iterates a synchronous activity over the collection.
func (e *Engine) runSyncMulti(inst *Instance, tok *Token, proc *model.Process, el *model.Element) {
	mi := tok.MI
	for idx, item := range mi.Items {
		extra := map[string]expr.Value{
			mi.ElemVar:    item,
			"loopCounter": expr.Int(int64(idx)),
		}
		switch el.Kind {
		case model.KindServiceTask:
			e.runServiceTask(inst, tok, proc, el, extra)
		case model.KindScriptTask:
			if err := e.applyOutputs(inst, el, extra); err != nil {
				e.handleTaskError(inst, tok, proc, el, err)
			}
		}
		if inst.Status != StatusActive || tok.MI == nil {
			// An error boundary consumed the MI wrapper or the
			// instance faulted.
			return
		}
		mi.Done++
		if done, err := e.miCompletionConditionMet(inst, el, extra); err != nil {
			e.incident(inst, tok.Elem, err.Error())
			return
		} else if done {
			mi.Stopped = true
			break
		}
	}
	tok.MI = nil
	e.elementCompleted(inst, el, tok.Elem, el.Handler)
	e.continueOutgoing(inst, tok, proc, el)
}

// spawnMultiItem creates the work item for collection index idx.
func (e *Engine) spawnMultiItem(inst *Instance, tok *Token, proc *model.Process, el *model.Element, idx int) {
	mi := tok.MI
	extra := map[string]expr.Value{
		mi.ElemVar:    mi.Items[idx],
		"loopCounter": expr.Int(int64(idx)),
	}
	data := map[string]any{}
	for k, v := range inst.Vars {
		data[k] = v.ToGo()
	}
	for k, v := range extra {
		data[k] = v.ToGo()
	}
	name := el.Name
	if name == "" {
		name = el.ID
	}
	it, err := e.tasks.Create(task.Spec{
		ProcessID:  inst.ProcessID,
		InstanceID: inst.ID,
		ElementID:  tok.Elem,
		Name:       fmt.Sprintf("%s [%d/%d]", name, idx+1, mi.Total),
		Role:       el.Role,
		Assignee:   el.Assignee,
		Capability: el.Capability,
		Priority:   el.Priority,
		Data:       data,
	})
	if err != nil {
		e.incident(inst, tok.Elem, fmt.Sprintf("create multi-instance work item: %v", err))
		return
	}
	mi.OpenItems = append(mi.OpenItems, it.ID)
	mi.ItemIdx[it.ID] = idx
}

// multiInstanceItemDone handles one completed/skipped work item of a
// user-task multi-instance controller.
func (e *Engine) multiInstanceItemDone(inst *Instance, tok *Token, proc *model.Process, el *model.Element, it *task.Item) {
	mi := tok.MI
	idx, tracked := mi.ItemIdx[it.ID]
	if !tracked {
		return
	}
	delete(mi.ItemIdx, it.ID)
	kept := mi.OpenItems[:0]
	for _, id := range mi.OpenItems {
		if id != it.ID {
			kept = append(kept, id)
		}
	}
	mi.OpenItems = kept
	mi.Done++
	inst.dirty = true

	extra := map[string]expr.Value{
		mi.ElemVar:    mi.Items[idx],
		"loopCounter": expr.Int(int64(idx)),
	}
	if err := e.applyOutputs(inst, el, extra); err != nil {
		e.handleTaskError(inst, tok, proc, el, err)
		return
	}
	if !mi.Stopped {
		if done, err := e.miCompletionConditionMet(inst, el, extra); err != nil {
			e.incident(inst, tok.Elem, err.Error())
			return
		} else if done {
			mi.Stopped = true
			for _, id := range mi.OpenItems {
				_, _ = e.tasks.Cancel(id, "multi-instance completion condition met")
			}
			mi.OpenItems = nil
			mi.ItemIdx = map[string]int{}
		}
	}
	finished := mi.Stopped || (mi.Done >= mi.Total && len(mi.OpenItems) == 0)
	if !finished {
		if !mi.Parallel && mi.NextIdx < mi.Total {
			next := mi.NextIdx
			mi.NextIdx++
			e.spawnMultiItem(inst, tok, proc, el, next)
		}
		return
	}
	e.disarmToken(inst, tok)
	tok.MI = nil
	tok.Wait = WaitNone
	e.elementCompleted(inst, el, tok.Elem, it.Assignee)
	e.continueOutgoing(inst, tok, proc, el)
}

func (e *Engine) miCompletionConditionMet(inst *Instance, el *model.Element, extra map[string]expr.Value) (bool, error) {
	if el.Multi == nil || el.Multi.CompletionCondition == "" {
		return false, nil
	}
	p, err := el.CompletionProgram()
	if err != nil {
		return false, fmt.Errorf("multi-instance completion condition: %w", err)
	}
	ok, err := p.EvalBool(inst.env(extra))
	if err != nil {
		return false, fmt.Errorf("multi-instance completion condition: %w", err)
	}
	return ok, nil
}
