package load_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"bpms/internal/api"
	"bpms/internal/client"
	"bpms/internal/core"
	"bpms/internal/load"
	"bpms/internal/sim"
)

func newServer(t *testing.T) string {
	t.Helper()
	b, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	ts := httptest.NewServer(api.New(b).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestPortfolioDeploysSound deploys every scenario process against a
// real server and requires the verifier to pass it: the portfolio
// must stay HTTP-drivable and sound.
func TestPortfolioDeploysSound(t *testing.T) {
	c := client.New(newServer(t))
	ctx := context.Background()
	for _, sc := range load.Portfolio() {
		if err := c.Deploy(ctx, sc.Process); err != nil {
			t.Fatalf("%s: deploy: %v", sc.Name, err)
		}
		vr, err := c.Verify(ctx, sc.Process.ID)
		if err != nil {
			t.Fatalf("%s: verify: %v", sc.Name, err)
		}
		if !vr.Sound {
			t.Errorf("%s: not sound: %+v", sc.Name, vr)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := load.Select(nil)
	if err != nil || len(all) != 5 {
		t.Fatalf("Select(nil) = %d scenarios, %v", len(all), err)
	}
	two, err := load.Select([]string{"mining", "quickstart"})
	if err != nil || len(two) != 2 || two[0].Name != "mining" {
		t.Fatalf("Select = %+v, %v", two, err)
	}
	if _, err := load.Select([]string{"nope"}); err == nil {
		t.Fatal("Select(nope) should fail")
	}
}

// TestRunnerSmoke is the bpmsload smoke: a short open-loop run over a
// human scenario and an automatic one against an in-process server.
// It must start cases, complete cases, and never see a 5xx.
func TestRunnerSmoke(t *testing.T) {
	url := newServer(t)
	scenarios, err := load.Select([]string{"quickstart", "mining"})
	if err != nil {
		t.Fatal(err)
	}
	r, err := load.NewRunner(load.Config{
		Server:       url,
		Scenarios:    scenarios,
		Accounts:     10,
		Duration:     1500 * time.Millisecond,
		Workers:      8,
		UsersPerRole: 2,
		Arrival:      sim.Exp(400 * time.Millisecond),
		Think:        sim.Uniform{Lo: 20 * time.Millisecond, Hi: 60 * time.Millisecond},
		ZipfSkew:     1.2,
		Seed:         42,
		DrainGrace:   1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	agg := rep.Aggregate
	if agg.Started == 0 {
		t.Fatal("no instances started")
	}
	if agg.Completed == 0 {
		t.Fatal("no instances completed")
	}
	if agg.HTTP5xx != 0 {
		t.Fatalf("%d server errors", agg.HTTP5xx)
	}
	if agg.Events == 0 || agg.EventsPerSec <= 0 {
		t.Fatalf("no events recorded: %+v", agg)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("scenario reports = %+v", rep.Scenarios)
	}
	// The automatic pipeline completes at start, so its completions
	// must track its starts even in a short run.
	for _, sr := range rep.Scenarios {
		if sr.Name == "mining" && sr.Completed == 0 && sr.Started > 0 {
			t.Errorf("mining started %d but completed none", sr.Started)
		}
	}
	if rep.DurationSec <= 0 || rep.Config.Accounts != 10 {
		t.Fatalf("report config echo broken: %+v", rep)
	}
}
