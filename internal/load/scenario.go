// Package load is the macro workload layer behind cmd/bpmsload: an
// open-loop HTTP traffic generator (modeled on the rulio-style
// account/device simulator) that drives a live bpmsd through the
// typed v1 client across a portfolio of scenarios, plus the recorder
// that turns per-request latencies into the T14 benchmark report.
package load

import (
	"fmt"
	"math/rand"
	"time"

	"bpms/internal/model"
	"bpms/internal/sim"
)

// MessageStep is a correlated message an account publishes some time
// after starting a case: Name is the message, KeyVar the start
// variable carrying the correlation key, Delay the publish delay
// distribution.
type MessageStep struct {
	Name   string
	KeyVar string
	Delay  sim.Dist
}

// Scenario is one HTTP-drivable workload: a deployable process (no
// service tasks — everything reachable over the wire), the worker
// roles it staffs, randomized start variables, task outcomes, and
// scheduled message publishes.
type Scenario struct {
	Name    string
	Process *model.Process
	// Roles are the worker roles the scenario's user tasks route to.
	Roles []string
	// Weight is the scenario's share when accounts are spread across a
	// portfolio.
	Weight float64
	// StartVars draws the case payload; caseNum is unique per started
	// case (correlation keys derive from it).
	StartVars func(r *rand.Rand, caseNum int64) map[string]any
	// Outcome draws the completion payload for a work item of the
	// given element (nil map is fine).
	Outcome func(elementID string, r *rand.Rand) map[string]any
	// Messages are published per case after its start.
	Messages []MessageStep
}

// Portfolio returns the full scenario set, mirroring the examples/
// portfolio (quickstart approval, loan origination, insurance claims,
// order fulfillment, mining) in HTTP-drivable form. Process IDs are
// load-* so a load run never collides with interactively deployed
// definitions.
func Portfolio() []Scenario {
	return []Scenario{
		quickstart(),
		loanOrigination(),
		insuranceClaims(),
		orderFulfillment(),
		mining(),
	}
}

// Select returns the named subset of the portfolio (all of it when
// names is empty).
func Select(names []string) ([]Scenario, error) {
	all := Portfolio()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]Scenario{}
	for _, sc := range all {
		byName[sc.Name] = sc
	}
	var out []Scenario
	for _, n := range names {
		sc, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("load: unknown scenario %q", n)
		}
		out = append(out, sc)
	}
	return out, nil
}

// quickstart is the order-approval process: one human decision routing
// to an archive or reject script.
func quickstart() Scenario {
	p := model.New("load-quickstart").
		Name("Load: order approval").
		Start("received").
		UserTask("approve", model.Name("Approve order"), model.Role("load-approver")).
		XOR("decision", model.Default("no")).
		ScriptTask("archive", model.Output("result", `"accepted: " + str(amount)`)).
		ScriptTask("notify", model.Output("result", `"rejected"`)).
		XOR("merge").
		End("done").
		Flow("received", "approve").
		Flow("approve", "decision").
		FlowIf("decision", "archive", "approved == true").
		FlowID("no", "decision", "notify", "").
		Flow("archive", "merge").
		Flow("notify", "merge").
		Flow("merge", "done").
		MustBuild()
	return Scenario{
		Name:    "quickstart",
		Process: p,
		Roles:   []string{"load-approver"},
		Weight:  0.3,
		StartVars: func(r *rand.Rand, _ int64) map[string]any {
			return map[string]any{"amount": 100 + r.Intn(9900)}
		},
		Outcome: func(el string, r *rand.Rand) map[string]any {
			// 80% approvals, like a healthy order book.
			return map[string]any{"approved": r.Float64() < 0.8}
		},
	}
}

// loanOrigination routes on score: low-risk applications auto-approve
// through a script, the rest go to a human underwriter; hopeless
// scores terminate at a fraud stop.
func loanOrigination() Scenario {
	p := model.New("load-loan").
		Name("Load: loan origination").
		Start("applied").
		XOR("fraudGate", model.Default("clean")).
		TerminateEnd("fraudStop").
		XOR("route", model.Default("manual")).
		ScriptTask("autoApprove", model.Output("decision", `"auto-approved"`)).
		UserTask("review", model.Name("Underwrite loan"), model.Role("load-underwriter")).
		XOR("merge").
		End("done").
		Flow("applied", "fraudGate").
		FlowIf("fraudGate", "fraudStop", "score < 320").
		FlowID("clean", "fraudGate", "route", "").
		FlowIf("route", "autoApprove", "score >= 700").
		FlowID("manual", "route", "review", "").
		Flow("autoApprove", "merge").
		Flow("review", "merge").
		Flow("merge", "done").
		MustBuild()
	return Scenario{
		Name:    "loan",
		Process: p,
		Roles:   []string{"load-underwriter"},
		Weight:  0.2,
		StartVars: func(r *rand.Rand, _ int64) map[string]any {
			return map[string]any{
				"amount": 1000 + r.Intn(99000),
				"score":  300 + r.Intn(550),
			}
		},
		Outcome: func(el string, r *rand.Rand) map[string]any {
			if r.Float64() < 0.7 {
				return map[string]any{"decision": "approved"}
			}
			return map[string]any{"decision": "rejected"}
		},
	}
}

// insuranceClaims is the human-heavy scenario: registration, a
// triage-routed assessment, and settlement — up to three sequential
// work items per case.
func insuranceClaims() Scenario {
	p := model.New("load-claims").
		Name("Load: insurance claims").
		Start("filed").
		UserTask("register", model.Name("Register claim"), model.Role("load-clerk")).
		XOR("triage", model.Default("simple")).
		UserTask("assess", model.Name("Assess damage"), model.Role("load-assessor")).
		UserTask("quickCheck", model.Name("Quick check"), model.Role("load-clerk")).
		XOR("merge").
		UserTask("settle", model.Name("Settle payment"), model.Role("load-clerk")).
		End("closed").
		Flow("filed", "register").
		Flow("register", "triage").
		FlowIf("triage", "assess", "amount > 5000").
		FlowID("simple", "triage", "quickCheck", "").
		Flow("assess", "merge").
		Flow("quickCheck", "merge").
		Flow("merge", "settle").
		Flow("settle", "closed").
		MustBuild()
	return Scenario{
		Name:    "claims",
		Process: p,
		Roles:   []string{"load-clerk", "load-assessor"},
		Weight:  0.2,
		StartVars: func(r *rand.Rand, _ int64) map[string]any {
			return map[string]any{"amount": 500 + r.Intn(19500)}
		},
		Outcome: func(el string, r *rand.Rand) map[string]any {
			if el == "assess" {
				return map[string]any{"severity": 1 + r.Intn(5)}
			}
			return nil
		},
	}
}

// orderFulfillment exercises message correlation and parallelism: a
// payment message races a human pick task through an AND fork/join.
// Accounts publish the payment a little after the order starts.
func orderFulfillment() Scenario {
	p := model.New("load-order").
		Name("Load: order fulfillment").
		Start("placed").
		AND("fork").
		MessageCatch("awaitPayment", "load.payment", model.CorrelationKey("orderId")).
		UserTask("pick", model.Name("Pick items"), model.Role("load-warehouse")).
		AND("join").
		ScriptTask("ship", model.Output("shipped", "true")).
		End("done").
		Flow("placed", "fork").
		Flow("fork", "awaitPayment").
		Flow("fork", "pick").
		Flow("awaitPayment", "join").
		Flow("pick", "join").
		Flow("join", "ship").
		Flow("ship", "done").
		MustBuild()
	return Scenario{
		Name:    "order",
		Process: p,
		Roles:   []string{"load-warehouse"},
		Weight:  0.2,
		StartVars: func(r *rand.Rand, caseNum int64) map[string]any {
			return map[string]any{
				"orderId": fmt.Sprintf("ord-%d", caseNum),
				"items":   1 + r.Intn(5),
			}
		},
		Outcome: func(el string, r *rand.Rand) map[string]any { return nil },
		Messages: []MessageStep{
			{Name: "load.payment", KeyVar: "orderId",
				Delay: sim.Uniform{Lo: 100 * time.Millisecond, Hi: 1500 * time.Millisecond}},
		},
	}
}

// mining is the fully automatic scenario: a script pipeline that
// completes at start, measuring pure enactment + HTTP throughput and
// feeding the history store dense traces for the mining tooling.
func mining() Scenario {
	p := model.New("load-mining").
		Name("Load: scripted pipeline").
		Start("ingest").
		ScriptTask("validate", model.Output("checked", "true")).
		XOR("branch", model.Default("slow")).
		ScriptTask("fastPath", model.Output("path", `"fast"`)).
		ScriptTask("slowPath", model.Output("path", `"slow"`)).
		XOR("merge").
		ScriptTask("record", model.Output("recorded", "true")).
		End("done").
		Flow("ingest", "validate").
		Flow("validate", "branch").
		FlowIf("branch", "fastPath", "amount > 5000").
		FlowID("slow", "branch", "slowPath", "").
		Flow("fastPath", "merge").
		Flow("slowPath", "merge").
		Flow("merge", "record").
		Flow("record", "done").
		MustBuild()
	return Scenario{
		Name:    "mining",
		Process: p,
		Weight:  0.1,
		StartVars: func(r *rand.Rand, _ int64) map[string]any {
			return map[string]any{"amount": r.Intn(10000)}
		},
		Outcome: func(el string, r *rand.Rand) map[string]any { return nil },
	}
}
