package load

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bpms/internal/client"
	"bpms/internal/sim"
)

// Config parameterises a load run.
type Config struct {
	Server string
	// Scenarios is the portfolio subset to drive (Portfolio() when
	// empty).
	Scenarios []Scenario
	// Accounts is the simulated population; each account starts cases
	// of its assigned scenario on its own open-loop schedule.
	Accounts int
	// Duration is how long new arrivals are scheduled; in-flight cases
	// get a short drain grace afterwards.
	Duration time.Duration
	// Workers bounds the HTTP dispatch pool for starts and publishes.
	Workers int
	// UsersPerRole is the worker-user pool per scenario role. Work
	// items fan out to every user in a role, so this must stay small —
	// accounts never appear in the directory.
	UsersPerRole int
	// Arrival is the base per-account case interarrival distribution.
	Arrival sim.Dist
	// Think is the worker-user pause between worklist polls.
	Think sim.Dist
	// ZipfSkew skews per-account activity (>1; rank-0 accounts are the
	// busiest). 0 disables skew.
	ZipfSkew float64
	// Seed keys all random streams.
	Seed int64
	// ReportEvery is the stderr progress interval (0 = 5s).
	ReportEvery time.Duration
	// DrainGrace is how long workers keep draining after the schedule
	// ends (0 = 3s).
	DrainGrace time.Duration
	// Retries is the client's max attempts per request (0 or 1 = no
	// retries). Shed responses (429/503) are retried on every method —
	// the server refuses them before side effects — so an overloaded or
	// fault-injected run completes its scenarios instead of erroring.
	Retries int
	// RequestTimeout bounds each client call, backoff included
	// (0 = none).
	RequestTimeout time.Duration
	// Out receives progress lines (nil = silent).
	Out io.Writer
}

// account is one simulated traffic source: a scenario assignment and
// a rate multiplier (Zipf rank) stretching its interarrival times.
type account struct {
	scenario int
	mult     float64
}

// event is a scheduled arrival in the open-loop calendar.
type event struct {
	at   time.Time
	acct int
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// job is one unit handed to the HTTP worker pool.
type job struct {
	scenario *Scenario
	caseNum  int64
}

// Runner drives a live bpmsd: an open-loop scheduler draws arrival
// times per account (rulio-style — the schedule never waits for the
// server), a bounded worker pool issues the HTTP calls, and small
// per-role worker-user pools grind task lifecycles (claim → start →
// complete) against their worklists.
type Runner struct {
	cfg       Config
	c         *client.Client
	rec       *Recorder
	byProcess map[string]*Scenario
	caseNum   atomic.Int64
	maxLag    atomic.Int64 // worst scheduler dispatch lag, ns
	dropped   atomic.Int64 // message publishes dropped at saturation
}

// NewRunner validates the config and builds a runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Server == "" {
		return nil, errors.New("load: Server required")
	}
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = Portfolio()
	}
	if cfg.Accounts <= 0 {
		cfg.Accounts = 100
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.UsersPerRole <= 0 {
		cfg.UsersPerRole = 2
	}
	if cfg.Arrival == nil {
		cfg.Arrival = sim.Exp(10 * time.Second)
	}
	if cfg.Think == nil {
		cfg.Think = sim.Uniform{Lo: 50 * time.Millisecond, Hi: 250 * time.Millisecond}
	}
	if cfg.ReportEvery <= 0 {
		cfg.ReportEvery = 5 * time.Second
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 3 * time.Second
	}
	var copts []client.Option
	if cfg.Retries > 1 {
		pol := client.DefaultRetryPolicy
		pol.MaxAttempts = cfg.Retries
		copts = append(copts, client.WithRetry(pol))
	}
	if cfg.RequestTimeout > 0 {
		copts = append(copts, client.WithTimeout(cfg.RequestTimeout))
	}
	r := &Runner{
		cfg:       cfg,
		c:         client.New(cfg.Server, copts...),
		rec:       NewRecorder(cfg.Seed),
		byProcess: map[string]*Scenario{},
	}
	for i := range cfg.Scenarios {
		sc := &cfg.Scenarios[i]
		r.byProcess[sc.Process.ID] = sc
	}
	return r, nil
}

// Run executes the load: deploy, staff roles, schedule arrivals for
// Duration, drain, sweep completions, and return the report.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	start := time.Now()
	if err := r.setup(ctx); err != nil {
		return nil, err
	}

	jobs := make(chan job, 2*r.cfg.Workers)
	done := make(chan struct{}) // closed when workers must exit
	var httpWG, taskWG sync.WaitGroup

	for i := 0; i < r.cfg.Workers; i++ {
		httpWG.Add(1)
		rng := rand.New(rand.NewSource(r.cfg.Seed + 1000 + int64(i)))
		go func() {
			defer httpWG.Done()
			r.httpWorker(ctx, jobs, done, rng)
		}()
	}
	workerUsers := r.workerUsers()
	for i, wu := range workerUsers {
		taskWG.Add(1)
		rng := rand.New(rand.NewSource(r.cfg.Seed + 2000 + int64(i)))
		go func() {
			defer taskWG.Done()
			r.taskWorker(ctx, wu, done, rng)
		}()
	}

	stopReport := r.startReporter(done)

	r.schedule(ctx, jobs)

	// Schedule is done: give in-flight cases a drain grace, then stop
	// everything.
	select {
	case <-time.After(r.cfg.DrainGrace):
	case <-ctx.Done():
	}
	close(done)
	httpWG.Wait()
	taskWG.Wait()
	stopReport()

	completed, err := r.sweepCompleted(ctx)
	if err != nil && r.cfg.Out != nil {
		fmt.Fprintf(r.cfg.Out, "[bpmsload] completion sweep failed: %v\n", err)
	}
	elapsed := time.Since(start)
	rep := r.rec.Finish(r.reportConfig(), elapsed, completed)
	rep.MaxSchedulerLagSec = r.MaxSchedulerLag().Seconds()
	rep.ClientRetries = r.c.Retries()
	return rep, ctx.Err()
}

// setup deploys the scenario processes and registers the worker-user
// pools in the directory over the v1 admin API.
func (r *Runner) setup(ctx context.Context) error {
	for i := range r.cfg.Scenarios {
		sc := &r.cfg.Scenarios[i]
		if err := r.c.Deploy(ctx, sc.Process); err != nil {
			return fmt.Errorf("load: deploy %s: %w", sc.Name, err)
		}
	}
	for _, wu := range r.workerUsers() {
		if err := r.c.AddUser(ctx, wu.id, wu.role); err != nil {
			return fmt.Errorf("load: add user %s: %w", wu.id, err)
		}
	}
	return nil
}

type workerUser struct {
	id   string
	role string
}

// workerUsers enumerates the small per-role staffing pool. Roles are
// deduplicated across scenarios.
func (r *Runner) workerUsers() []workerUser {
	seen := map[string]bool{}
	var out []workerUser
	for i := range r.cfg.Scenarios {
		for _, role := range r.cfg.Scenarios[i].Roles {
			if seen[role] {
				continue
			}
			seen[role] = true
			for k := 0; k < r.cfg.UsersPerRole; k++ {
				out = append(out, workerUser{id: fmt.Sprintf("lw-%s-%d", role, k), role: role})
			}
		}
	}
	return out
}

// schedule is the open-loop calendar: each account's next arrival is
// drawn when the previous one fires, anchored at the scheduled (not
// actual) time, so a slow server never throttles offered load.
func (r *Runner) schedule(ctx context.Context, jobs chan<- job) {
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	accounts := r.makeAccounts(rng)
	now := time.Now()
	deadline := now.Add(r.cfg.Duration)

	h := make(eventHeap, 0, len(accounts))
	for i := range accounts {
		// Random phase within one interarrival avoids a thundering herd
		// at t=0.
		phase := time.Duration(rng.Int63n(int64(r.interarrival(&accounts[i], rng)) + 1))
		h = append(h, event{at: now.Add(phase), acct: i})
	}
	heap.Init(&h)

	timer := time.NewTimer(0)
	defer timer.Stop()
	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		if ev.at.After(deadline) {
			continue // this account's schedule is exhausted
		}
		if wait := time.Until(ev.at); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				return
			}
		} else if lag := -wait; int64(lag) > r.maxLag.Load() {
			r.maxLag.Store(int64(lag))
		}
		acct := &accounts[ev.acct]
		sc := &r.cfg.Scenarios[acct.scenario]
		select {
		case jobs <- job{scenario: sc, caseNum: r.caseNum.Add(1)}:
		case <-ctx.Done():
			return
		}
		heap.Push(&h, event{at: ev.at.Add(r.interarrival(acct, rng)), acct: ev.acct})
	}
}

// makeAccounts assigns each account a scenario (by portfolio weight)
// and a Zipf-ranked activity multiplier.
func (r *Runner) makeAccounts(rng *rand.Rand) []account {
	weights := make([]float64, len(r.cfg.Scenarios))
	for i := range r.cfg.Scenarios {
		w := r.cfg.Scenarios[i].Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
	}
	var z *sim.Zipf
	if r.cfg.ZipfSkew > 0 {
		z = sim.NewZipf(rng, r.cfg.ZipfSkew, 64)
	}
	accounts := make([]account, r.cfg.Accounts)
	for i := range accounts {
		accounts[i].scenario = sim.WeightedIndex(rng, weights)
		accounts[i].mult = 1
		if z != nil {
			// Most accounts draw rank 0 (full rate); the tail is slower.
			accounts[i].mult = 1 + float64(z.Rank())
		}
	}
	return accounts
}

// interarrival draws the account's next gap: the base distribution
// stretched by its activity multiplier.
func (r *Runner) interarrival(a *account, rng *rand.Rand) time.Duration {
	d := time.Duration(float64(r.cfg.Arrival.Sample(rng)) * a.mult)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// httpWorker executes start jobs from the scheduler and arms the
// scenario's message publishes.
func (r *Runner) httpWorker(ctx context.Context, jobs <-chan job, done <-chan struct{}, rng *rand.Rand) {
	for {
		select {
		case <-done:
			return
		case j := <-jobs:
			r.runStart(ctx, j, jobs, rng)
		}
	}
}

// runStart starts one case and schedules its correlated messages.
func (r *Runner) runStart(ctx context.Context, j job, jobs <-chan job, rng *rand.Rand) {
	sc := j.scenario
	var vars map[string]any
	var delays []time.Duration
	var keys []string
	// Sample everything under this worker's rng before any I/O.
	vars = sc.StartVars(rng, j.caseNum)
	for _, ms := range sc.Messages {
		delays = append(delays, ms.Delay.Sample(rng))
		key, _ := vars[ms.KeyVar].(string)
		keys = append(keys, key)
	}

	t0 := time.Now()
	_, err := r.c.StartInstance(ctx, sc.Process.ID, vars)
	r.rec.Record(sc.Name, "start", time.Since(t0), err, false)
	if err != nil {
		return
	}
	for i, ms := range sc.Messages {
		ms, key, delay := ms, keys[i], delays[i]
		if key == "" {
			continue
		}
		// A runtime timer per pending message: the publish runs in the
		// timer goroutine so a full pool never delays the case start
		// path.
		time.AfterFunc(delay, func() {
			if ctx.Err() != nil {
				r.dropped.Add(1)
				return
			}
			t0 := time.Now()
			_, _, err := r.c.Publish(ctx, ms.Name, key, map[string]any{"paidAt": t0.UnixMilli()})
			r.rec.Record(sc.Name, "publish", time.Since(t0), err, false)
		})
	}
}

// taskWorker is one worker user grinding its worklist: poll, claim
// offers, start and complete allocated items, think, repeat.
func (r *Runner) taskWorker(ctx context.Context, wu workerUser, done <-chan struct{}, rng *rand.Rand) {
	for {
		select {
		case <-done:
			return
		default:
		}
		worklist, offered, err := r.c.UserTasks(ctx, wu.id)
		r.rec.RecordPoll(r.scenarioForRole(wu.role), err)
		if err == nil {
			for _, it := range offered {
				r.driveItem(ctx, wu, it, rng)
			}
			for _, it := range worklist {
				r.driveItem(ctx, wu, it, rng)
			}
		}
		pause := r.cfg.Think.Sample(rng)
		select {
		case <-done:
			return
		case <-time.After(pause):
		}
	}
}

// driveItem pushes one work item through its remaining lifecycle.
// Claim races with sibling workers are recorded as contention, not
// errors.
func (r *Runner) driveItem(ctx context.Context, wu workerUser, it client.Task, rng *rand.Rand) {
	sc := r.byProcess[it.ProcessID]
	if sc == nil {
		return // not ours (shared server)
	}
	state := it.State
	if state == "offered" {
		t0 := time.Now()
		_, err := r.c.Claim(ctx, it.ID, wu.id)
		r.rec.Record(sc.Name, "claim", time.Since(t0), err, isContention(err))
		if err != nil {
			return
		}
		state = "allocated"
	}
	if state == "allocated" {
		t0 := time.Now()
		_, err := r.c.StartTask(ctx, it.ID, wu.id)
		r.rec.Record(sc.Name, "begin", time.Since(t0), err, isContention(err))
		if err != nil {
			return
		}
		state = "started"
	}
	if state == "started" {
		outcome := sc.Outcome(it.ElementID, rng)
		t0 := time.Now()
		_, err := r.c.CompleteTask(ctx, it.ID, wu.id, outcome)
		r.rec.Record(sc.Name, "complete", time.Since(t0), err, isContention(err))
	}
}

// scenarioForRole attributes a poll to the first scenario staffing the
// role (polls are per-user, not per-case; this only keys error
// accounting).
func (r *Runner) scenarioForRole(role string) string {
	for i := range r.cfg.Scenarios {
		for _, ro := range r.cfg.Scenarios[i].Roles {
			if ro == role {
				return r.cfg.Scenarios[i].Name
			}
		}
	}
	return "other"
}

// startReporter emits periodic progress lines; the returned func stops
// it.
func (r *Runner) startReporter(done <-chan struct{}) func() {
	if r.cfg.Out == nil {
		return func() {}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(r.cfg.ReportEvery)
		defer tick.Stop()
		var last int64
		for {
			select {
			case <-tick.C:
				var line string
				line, last = r.rec.Progress(last, r.cfg.ReportEvery)
				fmt.Fprintln(r.cfg.Out, line)
			case <-done:
				return
			case <-stop:
				return
			}
		}
	}()
	return func() { close(stop); wg.Wait() }
}

// sweepCompleted pages the v1 instance listing (state filter + offset
// pagination — the satellite this load run exists to exercise) and
// counts completed cases per scenario.
func (r *Runner) sweepCompleted(ctx context.Context) (map[string]int64, error) {
	counts := map[string]int64{}
	const page = 1000
	offset := 0
	for {
		p, err := r.c.Instances(ctx, client.InstanceQuery{State: "completed", Offset: offset, Limit: page})
		if err != nil {
			return counts, err
		}
		for _, it := range p.Items {
			if sc := r.byProcess[it.ProcessID]; sc != nil {
				counts[sc.Name]++
			}
		}
		offset += len(p.Items)
		if len(p.Items) == 0 || offset >= p.Total {
			return counts, nil
		}
	}
}

func (r *Runner) reportConfig() ReportConfig {
	names := make([]string, 0, len(r.cfg.Scenarios))
	for i := range r.cfg.Scenarios {
		names = append(names, r.cfg.Scenarios[i].Name)
	}
	return ReportConfig{
		Server:       r.cfg.Server,
		Accounts:     r.cfg.Accounts,
		Workers:      r.cfg.Workers,
		UsersPerRole: r.cfg.UsersPerRole,
		Scenarios:    names,
		ArrivalMeanS: r.cfg.Arrival.Mean().Seconds(),
		ZipfSkew:     r.cfg.ZipfSkew,
		Seed:         r.cfg.Seed,
	}
}

// MaxSchedulerLag reports the worst observed dispatch lag — how far
// behind the open-loop calendar the generator itself fell.
func (r *Runner) MaxSchedulerLag() time.Duration { return time.Duration(r.maxLag.Load()) }

// is5xx reports whether err is an UNCLASSIFIED server-side API
// failure. Classified shed responses (429/503 with a retryable code)
// are counted separately by isShed — they are the server working as
// designed under overload or degradation, not malfunctioning.
func is5xx(err error) bool {
	if err == nil {
		return false
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500 && !classifiedShed(ae)
	}
	return false
}

// isShed reports whether err is a classified shed: admission control
// or a degraded shard refused the request before any side effect, and
// said so with a machine-readable retryable code.
func isShed(err error) bool {
	var ae *client.APIError
	return errors.As(err, &ae) && classifiedShed(ae)
}

func classifiedShed(ae *client.APIError) bool {
	switch ae.Code {
	case client.CodeOverloaded, client.CodeShardDegraded:
		return true
	}
	return false
}

// isContention reports the benign task races: another sibling worker
// claimed or completed the item first.
func isContention(err error) bool {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status == 409 || ae.Status == 403 || ae.Status == 404
	}
	return false
}
