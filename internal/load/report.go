package load

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"bpms/internal/metrics"
	"bpms/internal/obs"
)

// reservoirCap bounds per-scenario latency sampling; Vitter's
// algorithm R keeps a uniform sample however many events pass.
const reservoirCap = 4096

// Recorder accumulates per-scenario operation latencies and error
// counts while a run is in flight. All methods are safe for
// concurrent use by the HTTP worker pool.
type Recorder struct {
	mu    sync.Mutex
	start time.Time
	seed  int64
	scen  map[string]*scenStats
	polls int64
}

type scenStats struct {
	res       *metrics.Reservoir
	hist      *obs.Histogram // fixed buckets matching the server's /metrics
	events    int64
	ops       map[string]int64
	errors    int64
	http5xx   int64
	shed      int64
	started   int64
	contended int64
}

// NewRecorder starts a recorder; seed keys the latency reservoirs so
// runs are reproducible.
func NewRecorder(seed int64) *Recorder {
	return &Recorder{start: time.Now(), seed: seed, scen: map[string]*scenStats{}}
}

func (r *Recorder) stats(scenario string) *scenStats {
	st, ok := r.scen[scenario]
	if !ok {
		st = &scenStats{
			res:  metrics.NewReservoir(reservoirCap, r.seed+int64(len(r.scen))),
			hist: obs.NewHistogram(nil),
			ops:  map[string]int64{},
		}
		r.scen[scenario] = st
	}
	return st
}

// Record logs one workflow-driving HTTP operation (start, publish,
// claim, begin, complete). Errors are classified here: unclassified
// 5xx (server malfunction) vs shed (429/503 with a retryable code —
// the server protecting itself by design); contended marks benign
// claim races (another worker won the item).
func (r *Recorder) Record(scenario, op string, d time.Duration, err error, contended bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats(scenario)
	st.ops[op]++
	switch {
	case contended:
		st.contended++
	case err != nil:
		st.errors++
		if is5xx(err) {
			st.http5xx++
		}
		if isShed(err) {
			st.shed++
		}
	default:
		st.events++
		st.res.AddDuration(d)
		st.hist.Observe(d)
		if op == "start" {
			st.started++
		}
	}
}

// RecordPoll logs one worklist poll; polls are bookkeeping, not
// workflow events, so they only feed the error counters.
func (r *Recorder) RecordPoll(scenario string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.polls++
	if err != nil {
		st := r.stats(scenario)
		st.errors++
		if is5xx(err) {
			st.http5xx++
		}
		if isShed(err) {
			st.shed++
		}
	}
}

// Progress renders one stderr progress line: cumulative events, the
// rate over the window since lastEvents, and cumulative percentiles.
func (r *Recorder) Progress(lastEvents int64, window time.Duration) (line string, events int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := metrics.NewReservoir(reservoirCap, r.seed)
	var errs, x5, shed int64
	for _, st := range r.scen {
		events += st.events
		errs += st.errors
		x5 += st.http5xx
		shed += st.shed
		for _, v := range sample(st.res) {
			agg.Add(v)
		}
	}
	rate := float64(events-lastEvents) / window.Seconds()
	line = fmt.Sprintf("[bpmsload] t=%s events=%d (%.1f/s) p50=%.1fms p95=%.1fms p99=%.1fms errors=%d 5xx=%d shed=%d polls=%d",
		time.Since(r.start).Truncate(time.Second), events, rate,
		agg.Percentile(0.50)*1e3, agg.Percentile(0.95)*1e3, agg.Percentile(0.99)*1e3,
		errs, x5, shed, r.polls)
	return line, events
}

// sample drains a reservoir's current sample via percentile probes —
// the reservoir doesn't expose its buffer, but cap probes reconstruct
// an equivalent distribution for aggregation.
func sample(res *metrics.Reservoir) []float64 {
	n := res.Count()
	if n == 0 {
		return nil
	}
	if n > reservoirCap {
		n = reservoirCap
	}
	out := make([]float64, 0, n)
	for i := int64(0); i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		out = append(out, res.Percentile(p))
	}
	return out
}

// HistogramBucket is one cumulative bucket of a latency histogram:
// observations at or under LE seconds.
type HistogramBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// LatencyHistogram is the fixed-bucket distribution of successful
// operation latencies. The bounds are obs.DefBuckets — the same
// boundaries the server's bpms_http_request_seconds family uses — so
// report and /metrics quantile math line up. Count is the total
// including observations past the last bound.
type LatencyHistogram struct {
	Buckets []HistogramBucket `json:"buckets"`
	SumSec  float64           `json:"sumSec"`
	Count   uint64            `json:"count"`
}

// histReport freezes a histogram into its report form (nil when empty).
func histReport(h *obs.Histogram) *LatencyHistogram {
	bounds, cum, sum, count := h.Snapshot()
	if count == 0 {
		return nil
	}
	out := &LatencyHistogram{SumSec: sum, Count: count}
	for i, ub := range bounds {
		out.Buckets = append(out.Buckets, HistogramBucket{LE: ub, Count: cum[i]})
	}
	return out
}

// merge adds another histogram's buckets into this one (same bounds by
// construction).
func (lh *LatencyHistogram) merge(other *LatencyHistogram) *LatencyHistogram {
	if other == nil {
		return lh
	}
	if lh == nil {
		cp := *other
		cp.Buckets = append([]HistogramBucket(nil), other.Buckets...)
		return &cp
	}
	for i := range lh.Buckets {
		lh.Buckets[i].Count += other.Buckets[i].Count
	}
	lh.SumSec += other.SumSec
	lh.Count += other.Count
	return lh
}

// ScenarioReport is the per-scenario (and aggregate) slice of the T14
// benchmark report.
type ScenarioReport struct {
	Name         string            `json:"name"`
	Events       int64             `json:"events"`
	EventsPerSec float64           `json:"eventsPerSec"`
	P50Ms        float64           `json:"p50Ms"`
	P95Ms        float64           `json:"p95Ms"`
	P99Ms        float64           `json:"p99Ms"`
	Started      int64             `json:"instancesStarted"`
	Completed    int64             `json:"instancesCompleted"`
	Errors       int64             `json:"errors"`
	HTTP5xx      int64             `json:"http5xx"`
	Shed         int64             `json:"shedRetryable"`
	Contended    int64             `json:"claimContention"`
	Ops          map[string]int64  `json:"ops"`
	Latency      *LatencyHistogram `json:"latencyHistogram,omitempty"`
}

// Report is the machine-readable result of a load run (BENCH_T14.json).
type Report struct {
	Experiment  string       `json:"experiment"`
	Config      ReportConfig `json:"config"`
	DurationSec float64      `json:"durationSec"`
	Polls       int64        `json:"polls"`
	// ClientRetries counts retry attempts the shared client issued
	// beyond first tries (backoff after shed or transport errors).
	ClientRetries uint64 `json:"clientRetries"`
	// MaxSchedulerLagSec is the worst observed arrival-dispatch lag:
	// how far the open-loop scheduler fell behind its own timetable.
	MaxSchedulerLagSec float64          `json:"maxSchedulerLagSec"`
	Scenarios          []ScenarioReport `json:"scenarios"`
	Aggregate          ScenarioReport   `json:"aggregate"`
}

// ReportConfig echoes the run parameters into the report.
type ReportConfig struct {
	Server       string   `json:"server"`
	Accounts     int      `json:"accounts"`
	Workers      int      `json:"workers"`
	UsersPerRole int      `json:"usersPerRole"`
	Scenarios    []string `json:"scenarios"`
	ArrivalMeanS float64  `json:"arrivalMeanSec"`
	ZipfSkew     float64  `json:"zipfSkew"`
	Seed         int64    `json:"seed"`
}

// Finish freezes the recorder into a report; completed maps scenario
// name to the swept completed-instance count.
func (r *Recorder) Finish(cfg ReportConfig, elapsed time.Duration, completed map[string]int64) *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Experiment:  "T14",
		Config:      cfg,
		DurationSec: elapsed.Seconds(),
		Polls:       r.polls,
	}
	agg := metrics.NewReservoir(reservoirCap, r.seed)
	aggr := ScenarioReport{Name: "aggregate", Ops: map[string]int64{}}
	names := make([]string, 0, len(r.scen))
	for name := range r.scen {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := r.scen[name]
		sr := ScenarioReport{
			Name:         name,
			Events:       st.events,
			EventsPerSec: float64(st.events) / elapsed.Seconds(),
			P50Ms:        st.res.Percentile(0.50) * 1e3,
			P95Ms:        st.res.Percentile(0.95) * 1e3,
			P99Ms:        st.res.Percentile(0.99) * 1e3,
			Started:      st.started,
			Completed:    completed[name],
			Errors:       st.errors,
			HTTP5xx:      st.http5xx,
			Shed:         st.shed,
			Contended:    st.contended,
			Ops:          st.ops,
			Latency:      histReport(st.hist),
		}
		rep.Scenarios = append(rep.Scenarios, sr)
		aggr.Latency = aggr.Latency.merge(sr.Latency)
		aggr.Events += st.events
		aggr.Started += st.started
		aggr.Completed += completed[name]
		aggr.Errors += st.errors
		aggr.HTTP5xx += st.http5xx
		aggr.Shed += st.shed
		aggr.Contended += st.contended
		for op, n := range st.ops {
			aggr.Ops[op] += n
		}
		for _, v := range sample(st.res) {
			agg.Add(v)
		}
	}
	aggr.EventsPerSec = float64(aggr.Events) / elapsed.Seconds()
	aggr.P50Ms = agg.Percentile(0.50) * 1e3
	aggr.P95Ms = agg.Percentile(0.95) * 1e3
	aggr.P99Ms = agg.Percentile(0.99) * 1e3
	rep.Aggregate = aggr
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
