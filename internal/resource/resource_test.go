package resource

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testDirectory() *Directory {
	d := NewDirectory()
	d.AddUser(&User{ID: "alice", Roles: []string{"clerk", "manager"}, Capabilities: []string{"fraud"}})
	d.AddUser(&User{ID: "bob", Roles: []string{"clerk"}})
	d.AddUser(&User{ID: "carol", Roles: []string{"clerk"}, Capabilities: []string{"fraud", "legal"}})
	return d
}

func TestDirectory(t *testing.T) {
	d := testDirectory()
	if d.Count() != 3 {
		t.Errorf("Count = %d", d.Count())
	}
	u := d.UserByID("alice")
	if u == nil || !u.HasRole("manager") || !u.HasCapability("fraud") {
		t.Errorf("alice = %+v", u)
	}
	if d.UserByID("ghost") != nil {
		t.Error("ghost should be nil")
	}
	clerks := d.UsersInRole("clerk")
	if len(clerks) != 3 {
		t.Errorf("clerks = %d", len(clerks))
	}
	if got := d.UsersInRole("nobody"); len(got) != 0 {
		t.Errorf("empty role = %v", got)
	}
	all := d.AllUsers()
	if len(all) != 3 || all[0].ID != "alice" || all[2].ID != "carol" {
		t.Errorf("AllUsers = %v", all)
	}
	// Returned copies must not alias internal state.
	u.Roles[0] = "hacked"
	if d.UserByID("alice").Roles[0] == "hacked" {
		t.Error("UserByID leaks internal state")
	}
	// Re-adding replaces role membership.
	d.AddUser(&User{ID: "bob", Roles: []string{"manager"}})
	if len(d.UsersInRole("clerk")) != 2 {
		t.Errorf("clerk membership after re-add = %d", len(d.UsersInRole("clerk")))
	}
	if len(d.UsersInRole("manager")) != 2 {
		t.Errorf("manager membership after re-add = %d", len(d.UsersInRole("manager")))
	}
}

func noLoad(string) int { return 0 }

func TestRandomPolicy(t *testing.T) {
	d := testDirectory()
	p := NewRandomPolicy(42)
	if p.Pick(nil, noLoad) != nil {
		t.Error("empty candidates should pick nil")
	}
	seen := map[string]int{}
	for i := 0; i < 300; i++ {
		u := p.Pick(d.UsersInRole("clerk"), noLoad)
		seen[u.ID]++
	}
	if len(seen) != 3 {
		t.Errorf("random policy never picked some users: %v", seen)
	}
	for id, n := range seen {
		if n < 50 {
			t.Errorf("user %s picked only %d of 300", id, n)
		}
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	d := testDirectory()
	p := NewRoundRobinPolicy()
	var order []string
	for i := 0; i < 6; i++ {
		order = append(order, p.Pick(d.UsersInRole("clerk"), noLoad).ID)
	}
	want := []string{"alice", "bob", "carol", "alice", "bob", "carol"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if p.Pick(nil, noLoad) != nil {
		t.Error("empty candidates should pick nil")
	}
}

func TestShortestQueuePolicy(t *testing.T) {
	d := testDirectory()
	loads := map[string]int{"alice": 5, "bob": 2, "carol": 2}
	load := func(id string) int { return loads[id] }
	p := ShortestQueuePolicy{}
	// bob and carol tie at 2; bob wins by ID.
	if got := p.Pick(d.UsersInRole("clerk"), load); got.ID != "bob" {
		t.Errorf("picked %s, want bob", got.ID)
	}
	loads["bob"] = 9
	if got := p.Pick(d.UsersInRole("clerk"), load); got.ID != "carol" {
		t.Errorf("picked %s, want carol", got.ID)
	}
	if p.Pick(nil, load) != nil {
		t.Error("empty candidates should pick nil")
	}
}

func TestCapabilityPolicy(t *testing.T) {
	d := testDirectory()
	p := CapabilityPolicy{Capability: "fraud"}
	got := p.Pick(d.UsersInRole("clerk"), noLoad)
	if got == nil || (got.ID != "alice" && got.ID != "carol") {
		t.Errorf("picked %v, want a fraud-capable user", got)
	}
	// Nobody has "quantum".
	if got := (CapabilityPolicy{Capability: "quantum"}).Pick(d.UsersInRole("clerk"), noLoad); got != nil {
		t.Error("impossible capability should pick nil")
	}
	// Empty capability matches everyone.
	if got := (CapabilityPolicy{}).Pick(d.UsersInRole("clerk"), noLoad); got == nil {
		t.Error("empty capability should pick someone")
	}
	if name := p.Name(); name != "capability(fraud)" {
		t.Errorf("Name = %q", name)
	}
}

// Property: shortest-queue never picks a strictly more loaded user
// than some other candidate.
func TestQuickShortestQueueOptimal(t *testing.T) {
	d := testDirectory()
	f := func(a, b, c uint8) bool {
		loads := map[string]int{"alice": int(a % 50), "bob": int(b % 50), "carol": int(c % 50)}
		load := func(id string) int { return loads[id] }
		picked := ShortestQueuePolicy{}.Pick(d.UsersInRole("clerk"), load)
		for _, other := range loads {
			if load(picked.ID) > other {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: round-robin distributes evenly — after k*n picks every
// candidate was chosen exactly k times.
func TestQuickRoundRobinFair(t *testing.T) {
	d := testDirectory()
	f := func(k uint8) bool {
		rounds := int(k%10) + 1
		p := NewRoundRobinPolicy()
		counts := map[string]int{}
		for i := 0; i < rounds*3; i++ {
			counts[p.Pick(d.UsersInRole("clerk"), noLoad).ID]++
		}
		for _, n := range counts {
			if n != rounds {
				return false
			}
		}
		return len(counts) == 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomPolicyFromInjectedSource(t *testing.T) {
	users := []*User{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	// Two policies over identical injected sources draw identical
	// sequences; a reseeded source reproduces them.
	p1 := NewRandomPolicyFrom(rand.New(rand.NewSource(42)))
	p2 := NewRandomPolicyFrom(rand.New(rand.NewSource(42)))
	for i := 0; i < 50; i++ {
		u1 := p1.Pick(users, nil)
		u2 := p2.Pick(users, nil)
		if u1.ID != u2.ID {
			t.Fatalf("draw %d diverged: %s vs %s", i, u1.ID, u2.ID)
		}
	}
}
