package resource

import (
	"fmt"
	"sync"
	"testing"
)

// TestStripedDirectoryRegistrationOrder: UsersInRole merges role
// members across stripes in global registration order, and re-adding a
// user moves them to the end (the single-map behaviour).
func TestStripedDirectoryRegistrationOrder(t *testing.T) {
	d := NewDirectoryStriped(4)
	ids := []string{"zoe", "alice", "mallory", "bob", "carol", "dave", "erin", "frank"}
	for _, id := range ids {
		d.AddUser(&User{ID: id, Roles: []string{"clerk"}})
	}
	got := d.UsersInRole("clerk")
	if len(got) != len(ids) {
		t.Fatalf("%d users in role, want %d", len(got), len(ids))
	}
	for i, u := range got {
		if u.ID != ids[i] {
			t.Fatalf("role order[%d] = %s, want %s (registration order across stripes)", i, u.ID, ids[i])
		}
	}
	// Re-registering alice moves her to the end.
	d.AddUser(&User{ID: "alice", Roles: []string{"clerk", "manager"}})
	got = d.UsersInRole("clerk")
	if got[len(got)-1].ID != "alice" {
		t.Fatalf("re-added user not last: %v", ids)
	}
	if n := len(got); n != len(ids) {
		t.Fatalf("re-add duplicated: %d members", n)
	}
	if mgr := d.UsersInRole("manager"); len(mgr) != 1 || mgr[0].ID != "alice" {
		t.Fatalf("manager role = %v", mgr)
	}
	if d.Count() != len(ids) {
		t.Fatalf("Count = %d, want %d", d.Count(), len(ids))
	}
}

// TestStripedDirectoryConcurrent mirrors the task.Service
// index-consistency pattern: concurrent registrations, lookups, and
// role queries race across stripes (run with -race), and the final
// directory holds exactly the expected membership.
func TestStripedDirectoryConcurrent(t *testing.T) {
	d := NewDirectoryStriped(4)
	const writers, per = 4, 100
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("user-%d-%03d", g, i)
				d.AddUser(&User{ID: id, Roles: []string{fmt.Sprintf("role-%d", i%3)}, Capabilities: []string{"x"}})
				if u := d.UserByID(id); u == nil {
					t.Errorf("just-added %s not found", id)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Readers must never see torn state: every member listed
			// for a role actually holds it.
			for r := 0; r < 3; r++ {
				role := fmt.Sprintf("role-%d", r)
				for _, u := range d.UsersInRole(role) {
					if !u.HasRole(role) {
						t.Errorf("%s listed in %s without holding it", u.ID, role)
						return
					}
				}
			}
			_ = d.AllUsers()
			_ = d.Count()
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	if t.Failed() {
		return
	}
	if got := d.Count(); got != writers*per {
		t.Fatalf("Count = %d, want %d", got, writers*per)
	}
	if got := len(d.AllUsers()); got != writers*per {
		t.Fatalf("AllUsers = %d, want %d", got, writers*per)
	}
	members := 0
	for r := 0; r < 3; r++ {
		members += len(d.UsersInRole(fmt.Sprintf("role-%d", r)))
	}
	if members != writers*per {
		t.Fatalf("role members sum to %d, want %d", members, writers*per)
	}
}
