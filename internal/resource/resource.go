// Package resource implements the organisational model of the BPMS —
// users, roles, and capabilities — and the work-allocation policies
// that route human tasks to resources (direct, random, round-robin,
// shortest-queue, capability-filtered). Policies are the subject of
// experiment F2, which compares their waiting-time behaviour under
// simulated load.
package resource

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// User is one human resource.
type User struct {
	ID           string   `json:"id"`
	Name         string   `json:"name,omitempty"`
	Roles        []string `json:"roles,omitempty"`
	Capabilities []string `json:"capabilities,omitempty"`
}

// HasRole reports whether the user is a member of role.
func (u *User) HasRole(role string) bool {
	for _, r := range u.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// HasCapability reports whether the user offers the capability.
func (u *User) HasCapability(c string) bool {
	for _, x := range u.Capabilities {
		if x == c {
			return true
		}
	}
	return false
}

func (u *User) clone() *User {
	cp := *u
	cp.Roles = append([]string(nil), u.Roles...)
	cp.Capabilities = append([]string(nil), u.Capabilities...)
	return &cp
}

// Directory is the thread-safe registry of users and roles.
type Directory struct {
	mu     sync.RWMutex
	users  map[string]*User
	byRole map[string][]string // role -> user IDs, insertion order
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{users: map[string]*User{}, byRole: map[string][]string{}}
}

// AddUser registers a user (replacing any same-ID user).
func (d *Directory) AddUser(u *User) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.users[u.ID]; ok {
		for _, r := range old.Roles {
			d.byRole[r] = removeString(d.byRole[r], u.ID)
		}
	}
	cp := u.clone()
	d.users[u.ID] = cp
	for _, r := range cp.Roles {
		d.byRole[r] = append(d.byRole[r], cp.ID)
	}
}

func removeString(s []string, x string) []string {
	out := s[:0]
	for _, v := range s {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

// UserByID returns a copy of the user, or nil.
func (d *Directory) UserByID(id string) *User {
	d.mu.RLock()
	defer d.mu.RUnlock()
	u, ok := d.users[id]
	if !ok {
		return nil
	}
	return u.clone()
}

// UsersInRole returns copies of the users holding role, in
// registration order.
func (d *Directory) UsersInRole(role string) []*User {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := d.byRole[role]
	out := make([]*User, 0, len(ids))
	for _, id := range ids {
		out = append(out, d.users[id].clone())
	}
	return out
}

// AllUsers returns copies of all users sorted by ID.
func (d *Directory) AllUsers() []*User {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*User, 0, len(d.users))
	for _, u := range d.users {
		out = append(out, u.clone())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Count returns the number of registered users.
func (d *Directory) Count() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.users)
}

// LoadFunc reports the current queue length (allocated + started work
// items) of a user; allocation policies minimise or ignore it. The
// worklist service backs it with dedicated cross-stripe load counters,
// so policies may call it from inside worklist operations (it never
// takes an item-stripe lock).
type LoadFunc func(userID string) int

// Policy selects one user from a candidate set.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick chooses a candidate; nil when candidates is empty.
	Pick(candidates []*User, load LoadFunc) *User
}

// RandomPolicy picks uniformly at random (seeded for reproducibility).
type RandomPolicy struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandomPolicy returns a random policy with the given seed.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return NewRandomPolicyFrom(rand.New(rand.NewSource(seed)))
}

// NewRandomPolicyFrom returns a random policy drawing from an injected
// source. The policy serializes access to the source internally, so it
// stays race-free when several shards route work through it — but
// callers wanting reproducibility across runs should not share one
// source between unrelated consumers.
func NewRandomPolicyFrom(r *rand.Rand) *RandomPolicy {
	return &RandomPolicy{rng: r}
}

// Name implements Policy.
func (p *RandomPolicy) Name() string { return "random" }

// Pick implements Policy.
func (p *RandomPolicy) Pick(candidates []*User, _ LoadFunc) *User {
	if len(candidates) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return candidates[p.rng.Intn(len(candidates))]
}

// RoundRobinPolicy cycles through candidates in stable (ID) order,
// remembering its position per distinct candidate set signature.
type RoundRobinPolicy struct {
	mu   sync.Mutex
	next map[string]int
}

// NewRoundRobinPolicy returns a fresh round-robin policy.
func NewRoundRobinPolicy() *RoundRobinPolicy {
	return &RoundRobinPolicy{next: map[string]int{}}
}

// Name implements Policy.
func (p *RoundRobinPolicy) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobinPolicy) Pick(candidates []*User, _ LoadFunc) *User {
	if len(candidates) == 0 {
		return nil
	}
	sorted := append([]*User(nil), candidates...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].ID < sorted[b].ID })
	sig := ""
	for _, u := range sorted {
		sig += u.ID + "|"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	i := p.next[sig] % len(sorted)
	p.next[sig] = i + 1
	return sorted[i]
}

// ShortestQueuePolicy picks the candidate with the fewest queued work
// items, breaking ties by user ID for determinism.
type ShortestQueuePolicy struct{}

// Name implements Policy.
func (ShortestQueuePolicy) Name() string { return "shortest-queue" }

// Pick implements Policy.
func (ShortestQueuePolicy) Pick(candidates []*User, load LoadFunc) *User {
	if len(candidates) == 0 {
		return nil
	}
	best := candidates[0]
	bestLoad := load(best.ID)
	for _, u := range candidates[1:] {
		l := load(u.ID)
		if l < bestLoad || (l == bestLoad && u.ID < best.ID) {
			best, bestLoad = u, l
		}
	}
	return best
}

// CapabilityPolicy filters candidates by a required capability and
// delegates the final choice to an inner policy.
type CapabilityPolicy struct {
	// Capability is the required capability; empty matches everyone.
	Capability string
	// Inner breaks ties among capable candidates (default
	// ShortestQueuePolicy).
	Inner Policy
}

// Name implements Policy.
func (p CapabilityPolicy) Name() string {
	return fmt.Sprintf("capability(%s)", p.Capability)
}

// Pick implements Policy.
func (p CapabilityPolicy) Pick(candidates []*User, load LoadFunc) *User {
	var capable []*User
	for _, u := range candidates {
		if p.Capability == "" || u.HasCapability(p.Capability) {
			capable = append(capable, u)
		}
	}
	inner := p.Inner
	if inner == nil {
		inner = ShortestQueuePolicy{}
	}
	return inner.Pick(capable, load)
}
