// Package resource implements the organisational model of the BPMS —
// users, roles, and capabilities — and the work-allocation policies
// that route human tasks to resources (direct, random, round-robin,
// shortest-queue, capability-filtered). Policies are the subject of
// experiment F2, which compares their waiting-time behaviour under
// simulated load.
package resource

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// User is one human resource.
type User struct {
	ID           string   `json:"id"`
	Name         string   `json:"name,omitempty"`
	Roles        []string `json:"roles,omitempty"`
	Capabilities []string `json:"capabilities,omitempty"`
}

// HasRole reports whether the user is a member of role.
func (u *User) HasRole(role string) bool {
	for _, r := range u.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// HasCapability reports whether the user offers the capability.
func (u *User) HasCapability(c string) bool {
	for _, x := range u.Capabilities {
		if x == c {
			return true
		}
	}
	return false
}

func (u *User) clone() *User {
	cp := *u
	cp.Roles = append([]string(nil), u.Roles...)
	cp.Capabilities = append([]string(nil), u.Capabilities...)
	return &cp
}

// Directory is the thread-safe registry of users and roles. Users are
// striped by FNV-1a of their ID — the same hash family the shard
// router, history pipeline, and worklist use for placement — so lookup
// traffic from concurrent work allocation (every offered task resolves
// its role's candidate set here) spreads over independent locks
// instead of serializing on one directory-wide mutex.
type Directory struct {
	stripes []*dirStripe
	seq     atomic.Uint64 // global registration order across stripes
}

type dirStripe struct {
	mu     sync.RWMutex
	users  map[string]*dirEntry
	byRole map[string][]*dirEntry
}

// dirEntry pins a user's global registration sequence so role listings
// merged across stripes reproduce directory-wide registration order.
type dirEntry struct {
	user *User
	seq  uint64
}

// DefaultDirectoryStripes is the stripe count NewDirectory uses.
const DefaultDirectoryStripes = 8

// NewDirectory returns an empty directory with the default striping.
func NewDirectory() *Directory {
	return NewDirectoryStriped(DefaultDirectoryStripes)
}

// NewDirectoryStriped returns an empty directory with the given number
// of lock stripes (values < 1 fall back to the default).
func NewDirectoryStriped(stripes int) *Directory {
	if stripes < 1 {
		stripes = DefaultDirectoryStripes
	}
	d := &Directory{stripes: make([]*dirStripe, stripes)}
	for i := range d.stripes {
		d.stripes[i] = &dirStripe{users: map[string]*dirEntry{}, byRole: map[string][]*dirEntry{}}
	}
	return d
}

// Stripes returns the number of lock stripes.
func (d *Directory) Stripes() int { return len(d.stripes) }

// stripeOf hashes a user ID to its stripe with FNV-1a (the hash family
// shared with shard.Router, history, and task striping).
func (d *Directory) stripeOf(id string) *dirStripe {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return d.stripes[h%uint64(len(d.stripes))]
}

// AddUser registers a user (replacing any same-ID user; replacement
// moves the user to the end of the registration order, as appending
// to the role lists always did).
func (d *Directory) AddUser(u *User) {
	s := d.stripeOf(u.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.users[u.ID]; ok {
		for _, r := range old.user.Roles {
			s.byRole[r] = removeEntry(s.byRole[r], u.ID)
		}
	}
	e := &dirEntry{user: u.clone(), seq: d.seq.Add(1)}
	s.users[u.ID] = e
	for _, r := range e.user.Roles {
		s.byRole[r] = append(s.byRole[r], e)
	}
}

func removeEntry(s []*dirEntry, id string) []*dirEntry {
	out := s[:0]
	for _, e := range s {
		if e.user.ID != id {
			out = append(out, e)
		}
	}
	return out
}

// UserByID returns a copy of the user, or nil.
func (d *Directory) UserByID(id string) *User {
	s := d.stripeOf(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.users[id]
	if !ok {
		return nil
	}
	return e.user.clone()
}

// UsersInRole returns copies of the users holding role, in
// registration order (merged across stripes by global sequence).
func (d *Directory) UsersInRole(role string) []*User {
	type cand struct {
		u   *User
		seq uint64
	}
	var found []cand
	for _, s := range d.stripes {
		s.mu.RLock()
		for _, e := range s.byRole[role] {
			found = append(found, cand{u: e.user.clone(), seq: e.seq})
		}
		s.mu.RUnlock()
	}
	sort.Slice(found, func(a, b int) bool { return found[a].seq < found[b].seq })
	out := make([]*User, 0, len(found))
	for _, c := range found {
		out = append(out, c.u)
	}
	return out
}

// AllUsers returns copies of all users sorted by ID.
func (d *Directory) AllUsers() []*User {
	var out []*User
	for _, s := range d.stripes {
		s.mu.RLock()
		for _, e := range s.users {
			out = append(out, e.user.clone())
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Count returns the number of registered users.
func (d *Directory) Count() int {
	n := 0
	for _, s := range d.stripes {
		s.mu.RLock()
		n += len(s.users)
		s.mu.RUnlock()
	}
	return n
}

// LoadFunc reports the current queue length (allocated + started work
// items) of a user; allocation policies minimise or ignore it. The
// worklist service backs it with dedicated cross-stripe load counters,
// so policies may call it from inside worklist operations (it never
// takes an item-stripe lock).
type LoadFunc func(userID string) int

// Policy selects one user from a candidate set.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick chooses a candidate; nil when candidates is empty.
	Pick(candidates []*User, load LoadFunc) *User
}

// RandomPolicy picks uniformly at random (seeded for reproducibility).
type RandomPolicy struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandomPolicy returns a random policy with the given seed.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return NewRandomPolicyFrom(rand.New(rand.NewSource(seed)))
}

// NewRandomPolicyFrom returns a random policy drawing from an injected
// source. The policy serializes access to the source internally, so it
// stays race-free when several shards route work through it — but
// callers wanting reproducibility across runs should not share one
// source between unrelated consumers.
func NewRandomPolicyFrom(r *rand.Rand) *RandomPolicy {
	return &RandomPolicy{rng: r}
}

// Name implements Policy.
func (p *RandomPolicy) Name() string { return "random" }

// Pick implements Policy.
func (p *RandomPolicy) Pick(candidates []*User, _ LoadFunc) *User {
	if len(candidates) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return candidates[p.rng.Intn(len(candidates))]
}

// RoundRobinPolicy cycles through candidates in stable (ID) order,
// remembering its position per distinct candidate set signature.
type RoundRobinPolicy struct {
	mu   sync.Mutex
	next map[string]int
}

// NewRoundRobinPolicy returns a fresh round-robin policy.
func NewRoundRobinPolicy() *RoundRobinPolicy {
	return &RoundRobinPolicy{next: map[string]int{}}
}

// Name implements Policy.
func (p *RoundRobinPolicy) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobinPolicy) Pick(candidates []*User, _ LoadFunc) *User {
	if len(candidates) == 0 {
		return nil
	}
	sorted := append([]*User(nil), candidates...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].ID < sorted[b].ID })
	sig := ""
	for _, u := range sorted {
		sig += u.ID + "|"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	i := p.next[sig] % len(sorted)
	p.next[sig] = i + 1
	return sorted[i]
}

// ShortestQueuePolicy picks the candidate with the fewest queued work
// items, breaking ties by user ID for determinism.
type ShortestQueuePolicy struct{}

// Name implements Policy.
func (ShortestQueuePolicy) Name() string { return "shortest-queue" }

// Pick implements Policy.
func (ShortestQueuePolicy) Pick(candidates []*User, load LoadFunc) *User {
	if len(candidates) == 0 {
		return nil
	}
	best := candidates[0]
	bestLoad := load(best.ID)
	for _, u := range candidates[1:] {
		l := load(u.ID)
		if l < bestLoad || (l == bestLoad && u.ID < best.ID) {
			best, bestLoad = u, l
		}
	}
	return best
}

// CapabilityPolicy filters candidates by a required capability and
// delegates the final choice to an inner policy.
type CapabilityPolicy struct {
	// Capability is the required capability; empty matches everyone.
	Capability string
	// Inner breaks ties among capable candidates (default
	// ShortestQueuePolicy).
	Inner Policy
}

// Name implements Policy.
func (p CapabilityPolicy) Name() string {
	return fmt.Sprintf("capability(%s)", p.Capability)
}

// Pick implements Policy.
func (p CapabilityPolicy) Pick(candidates []*User, load LoadFunc) *User {
	var capable []*User
	for _, u := range candidates {
		if p.Capability == "" || u.HasCapability(p.Capability) {
			capable = append(capable, u)
		}
	}
	inner := p.Inner
	if inner == nil {
		inner = ShortestQueuePolicy{}
	}
	return inner.Pick(capable, load)
}
