package petri

import (
	"testing"
	"testing/quick"
)

// cycleNet: p0 -> t0 -> p1 -> t1 -> p0. One token circulates, so
// y = (1,1) is the P-invariant.
func cycleNet() (*Net, Marking) {
	b := NewBuilder()
	p0 := b.AddPlace("p0")
	p1 := b.AddPlace("p1")
	t0 := b.AddTransition("t0")
	t1 := b.AddTransition("t1")
	b.ArcPT(p0, t0)
	b.ArcTP(t0, p1)
	b.ArcPT(p1, t1)
	b.ArcTP(t1, p0)
	net := b.Build()
	m := net.NewMarking()
	m[p0] = 1
	return net, m
}

func TestPInvariantsCycle(t *testing.T) {
	net, m0 := cycleNet()
	invs := net.PInvariants()
	if len(invs) != 1 {
		t.Fatalf("invariants = %d, want 1", len(invs))
	}
	iv := invs[0]
	if len(iv.Support()) != 2 {
		t.Errorf("support = %v", iv.Support())
	}
	if iv.WeightedTokens(m0) != 1 {
		t.Errorf("weighted tokens = %d", iv.WeightedTokens(m0))
	}
	if !net.CoveredByPInvariants() {
		t.Error("cycle net should be covered")
	}
}

func TestPInvariantsForkJoin(t *testing.T) {
	// start -> fork -> (a, b) -> join -> end; short-circuited back to
	// start so the net is conservative: invariant start+a+b?? The
	// weighted invariant is start + end + a = start + end + b...
	// Construct and just verify the invariant property holds along a run.
	b := NewBuilder()
	start := b.AddPlace("start")
	pa := b.AddPlace("a")
	pb := b.AddPlace("b")
	end := b.AddPlace("end")
	fork := b.AddTransition("fork")
	ta := b.AddTransition("ta")
	join := b.AddTransition("join")
	back := b.AddTransition("back")
	b.ArcPT(start, fork)
	b.ArcTP(fork, pa)
	b.ArcTP(fork, pb)
	b.ArcPT(pa, ta)
	pa2 := b.AddPlace("a2")
	b.ArcTP(ta, pa2)
	b.ArcPT(pa2, join)
	b.ArcPT(pb, join)
	b.ArcTP(join, end)
	b.ArcPT(end, back)
	b.ArcTP(back, start)
	net := b.Build()
	m0 := net.NewMarking()
	m0[start] = 1

	invs := net.PInvariants()
	if len(invs) == 0 {
		t.Fatal("fork/join cycle should have P-invariants")
	}
	if !net.CoveredByPInvariants() {
		t.Error("conservative net should be covered")
	}
	// Invariant property: y·m constant along any firing sequence.
	m := m0
	for step := 0; step < 20; step++ {
		es := net.EnabledSet(m)
		if len(es) == 0 {
			break
		}
		next := net.Fire(m, es[step%len(es)])
		for _, iv := range invs {
			if iv.WeightedTokens(next) != iv.WeightedTokens(m0) {
				t.Fatalf("invariant broken at step %d: %d != %d",
					step, iv.WeightedTokens(next), iv.WeightedTokens(m0))
			}
		}
		m = next
	}
}

func TestPInvariantsUnboundedNetNotCovered(t *testing.T) {
	// A generator transition pumps tokens: no positive invariant can
	// cover the pumped place.
	b := NewBuilder()
	src := b.AddPlace("src")
	sink := b.AddPlace("sink")
	gen := b.AddTransition("gen")
	b.ArcPT(src, gen)
	b.ArcTP(gen, src)
	b.ArcTP(gen, sink)
	net := b.Build()
	if net.CoveredByPInvariants() {
		t.Error("unbounded net must not be covered by P-invariants")
	}
	// src itself still carries an invariant (self-loop conserves it).
	invs := net.PInvariants()
	foundSrc := false
	for _, iv := range invs {
		for _, p := range iv.Support() {
			if p == src {
				foundSrc = true
			}
			if p == sink {
				t.Error("sink must not be in any invariant support")
			}
		}
	}
	if !foundSrc {
		t.Errorf("src should be covered, invariants = %v", invs)
	}
}

// Property: for random chains (always conservative under
// short-circuit), every computed invariant is genuinely invariant
// under every enabled firing from the initial marking.
func TestQuickInvariantsHoldUnderFiring(t *testing.T) {
	f := func(nRaw uint8, steps uint8) bool {
		n := int(nRaw%6) + 2
		// Build a ring of n places.
		b := NewBuilder()
		var ps []PlaceID
		for i := 0; i < n; i++ {
			ps = append(ps, b.AddPlace(string(rune('a'+i))))
		}
		for i := 0; i < n; i++ {
			t := b.AddTransition(string(rune('A' + i)))
			b.ArcPT(ps[i], t)
			b.ArcTP(t, ps[(i+1)%n])
		}
		net := b.Build()
		m := net.NewMarking()
		m[ps[0]] = 2
		invs := net.PInvariants()
		if len(invs) == 0 {
			return false // a ring is conservative
		}
		want := make([]int64, len(invs))
		for i, iv := range invs {
			want[i] = iv.WeightedTokens(m)
		}
		for s := 0; s < int(steps%20); s++ {
			es := net.EnabledSet(m)
			if len(es) == 0 {
				break
			}
			m = net.Fire(m, es[s%len(es)])
			for i, iv := range invs {
				if iv.WeightedTokens(m) != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
