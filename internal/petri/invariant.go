package petri

// Structural analysis: place invariants (P-invariants). A P-invariant
// is a non-negative integer weighting y of places with y·C = 0 for the
// incidence matrix C — the weighted token count is constant under any
// firing. Invariants give marking bounds without state-space
// exploration: a net covered by positive P-invariants is structurally
// bounded. The solver is Farkas' algorithm on the incidence matrix,
// pruned to minimal-support invariants.

// Invariant is one P-invariant: Weights[p] is the multiplier of place
// p (0 for places outside the support).
type Invariant struct {
	Weights []int64
}

// Support returns the places with non-zero weight.
func (iv Invariant) Support() []PlaceID {
	var out []PlaceID
	for p, w := range iv.Weights {
		if w != 0 {
			out = append(out, PlaceID(p))
		}
	}
	return out
}

// WeightedTokens returns y·m for a marking.
func (iv Invariant) WeightedTokens(m Marking) int64 {
	var sum int64
	for p, w := range iv.Weights {
		if w != 0 {
			sum += w * int64(m[p])
		}
	}
	return sum
}

// incidence returns C[t][p] = post(t,p) - pre(t,p).
func (n *Net) incidence() [][]int64 {
	c := make([][]int64, n.Transitions())
	for t := range c {
		row := make([]int64, n.Places())
		for _, p := range n.Pre(TransitionID(t)) {
			row[p]--
		}
		for _, p := range n.Post(TransitionID(t)) {
			row[p]++
		}
		c[t] = row
	}
	return c
}

// maxInvariantRows caps the intermediate row set of the Farkas
// construction (it can blow up exponentially on adversarial nets).
const maxInvariantRows = 4096

// PInvariants computes non-negative P-invariants with minimal support
// using Farkas' algorithm. The result may be empty (many workflow nets
// with XOR routing still have the outer "one token in play" invariant;
// nets with unbalanced splits have none). Returns nil if the row bound
// is exceeded.
func (n *Net) PInvariants() []Invariant {
	places := n.Places()
	c := n.incidence()
	// Rows: [identity | incidence columns], one row per place.
	type row struct {
		y []int64 // length places
		d []int64 // length transitions: y·C
	}
	rows := make([]*row, 0, places)
	for p := 0; p < places; p++ {
		y := make([]int64, places)
		y[p] = 1
		d := make([]int64, n.Transitions())
		for t := 0; t < n.Transitions(); t++ {
			d[t] = c[t][p]
		}
		rows = append(rows, &row{y: y, d: d})
	}
	// Eliminate transition columns one by one.
	for t := 0; t < n.Transitions(); t++ {
		var zero, pos, neg []*row
		for _, r := range rows {
			switch {
			case r.d[t] == 0:
				zero = append(zero, r)
			case r.d[t] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		if len(pos)*len(neg)+len(zero) > maxInvariantRows {
			return nil
		}
		next := zero
		for _, rp := range pos {
			for _, rn := range neg {
				a, b := rp.d[t], -rn.d[t]
				g := gcd64(a, b)
				ca, cb := b/g, a/g
				y := make([]int64, places)
				for i := range y {
					y[i] = ca*rp.y[i] + cb*rn.y[i]
				}
				d := make([]int64, n.Transitions())
				for i := range d {
					d[i] = ca*rp.d[i] + cb*rn.d[i]
				}
				next = append(next, &row{y: normalize(y), d: d})
			}
		}
		rows = next
	}
	// Keep minimal-support, deduplicated invariants.
	var out []Invariant
	for _, r := range rows {
		if isZero(r.y) {
			continue
		}
		dominated := false
		for _, other := range rows {
			if other == r || isZero(other.y) {
				continue
			}
			if strictlySmallerSupport(other.y, r.y) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		dup := false
		for _, have := range out {
			if equalVec(have.Weights, r.y) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, Invariant{Weights: r.y})
		}
	}
	return out
}

// CoveredByPInvariants reports whether every place is in the support
// of some computed invariant — a sufficient condition for structural
// boundedness.
func (n *Net) CoveredByPInvariants() bool {
	invs := n.PInvariants()
	covered := make([]bool, n.Places())
	for _, iv := range invs {
		for _, p := range iv.Support() {
			covered[p] = true
		}
	}
	for _, ok := range covered {
		if !ok {
			return false
		}
	}
	return n.Places() > 0
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// normalize divides the vector by the gcd of its entries.
func normalize(y []int64) []int64 {
	var g int64
	for _, v := range y {
		if v != 0 {
			g = gcd64(g, v)
		}
	}
	if g > 1 {
		for i := range y {
			y[i] /= g
		}
	}
	return y
}

func isZero(y []int64) bool {
	for _, v := range y {
		if v != 0 {
			return false
		}
	}
	return true
}

func equalVec(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// strictlySmallerSupport reports whether support(a) ⊊ support(b).
func strictlySmallerSupport(a, b []int64) bool {
	smaller := false
	for i := range a {
		if a[i] != 0 && b[i] == 0 {
			return false
		}
		if a[i] == 0 && b[i] != 0 {
			smaller = true
		}
	}
	return smaller
}
