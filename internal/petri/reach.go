package petri

import (
	"errors"
	"fmt"
)

// ErrStateSpaceExceeded is returned when exploration hits the caller's
// state budget before exhausting the state space.
var ErrStateSpaceExceeded = errors.New("petri: state space budget exceeded")

// Edge is one firing in a state graph: from state From, firing
// transition T leads to state To.
type Edge struct {
	From, To int
	T        TransitionID
}

// Graph is an explicit state graph (reachability or coverability).
// States are markings; state 0 is the initial marking.
type Graph struct {
	Net      *Net
	States   []Marking
	Edges    []Edge
	Out      [][]int // Out[s] = indices into Edges leaving state s
	Complete bool    // false if the exploration budget was exhausted
}

// index returns a state-key → state-id map for external lookups.
func (g *Graph) index() map[string]int {
	idx := make(map[string]int, len(g.States))
	for i, m := range g.States {
		idx[m.Key()] = i
	}
	return idx
}

// StateOf returns the state ID of marking m, or -1.
func (g *Graph) StateOf(m Marking) int {
	key := m.Key()
	for i, s := range g.States {
		if s.Key() == key {
			return i
		}
	}
	return -1
}

// Reachability explores the full reachability graph of net n from m0,
// visiting at most maxStates states. If the budget is exceeded it
// returns the partial graph together with ErrStateSpaceExceeded.
func Reachability(n *Net, m0 Marking, maxStates int) (*Graph, error) {
	g := &Graph{Net: n, Complete: true}
	seen := map[string]int{}
	push := func(m Marking) int {
		k := m.Key()
		if id, ok := seen[k]; ok {
			return id
		}
		id := len(g.States)
		g.States = append(g.States, m)
		g.Out = append(g.Out, nil)
		seen[k] = id
		return id
	}
	push(m0.Clone())
	for frontier := 0; frontier < len(g.States); frontier++ {
		if len(g.States) > maxStates {
			g.Complete = false
			return g, fmt.Errorf("%w: %d states", ErrStateSpaceExceeded, len(g.States))
		}
		m := g.States[frontier]
		for t := 0; t < n.Transitions(); t++ {
			tid := TransitionID(t)
			if !n.Enabled(m, tid) {
				continue
			}
			next := n.Fire(m, tid)
			to := push(next)
			eid := len(g.Edges)
			g.Edges = append(g.Edges, Edge{From: frontier, To: to, T: tid})
			g.Out[frontier] = append(g.Out[frontier], eid)
		}
	}
	return g, nil
}

// Deadlocks returns the IDs of states in which no transition is
// enabled.
func (g *Graph) Deadlocks() []int {
	var out []int
	for s := range g.States {
		if len(g.Out[s]) == 0 {
			out = append(out, s)
		}
	}
	return out
}

// FiredTransitions returns the set of transitions appearing on at
// least one edge.
func (g *Graph) FiredTransitions() map[TransitionID]bool {
	fired := make(map[TransitionID]bool)
	for _, e := range g.Edges {
		fired[e.T] = true
	}
	return fired
}

// DeadTransitions returns transitions that never fire anywhere in the
// graph, in ID order.
func (g *Graph) DeadTransitions() []TransitionID {
	fired := g.FiredTransitions()
	var out []TransitionID
	for t := 0; t < g.Net.Transitions(); t++ {
		if !fired[TransitionID(t)] {
			out = append(out, TransitionID(t))
		}
	}
	return out
}

// BackwardReachable returns the set of states from which any state in
// targets is reachable (including the targets themselves).
func (g *Graph) BackwardReachable(targets []int) map[int]bool {
	// Build reverse adjacency once.
	rev := make([][]int, len(g.States))
	for _, e := range g.Edges {
		rev[e.To] = append(rev[e.To], e.From)
	}
	seen := make(map[int]bool, len(targets))
	stack := append([]int(nil), targets...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		stack = append(stack, rev[s]...)
	}
	return seen
}

// Coverability builds the Karp-Miller coverability graph of net n from
// m0, generalising growing token counts to Omega. It terminates on all
// nets; maxStates bounds the exploration as a safety valve.
func Coverability(n *Net, m0 Marking, maxStates int) (*Graph, error) {
	g := &Graph{Net: n, Complete: true}
	seen := map[string]int{}
	// parent chain for ancestor acceleration
	parents := []int{-1}
	push := func(m Marking, parent int) (int, bool) {
		k := m.Key()
		if id, ok := seen[k]; ok {
			return id, false
		}
		id := len(g.States)
		g.States = append(g.States, m)
		g.Out = append(g.Out, nil)
		parents = append(parents, parent)
		seen[k] = id
		return id, true
	}
	seen[m0.Key()] = 0
	g.States = append(g.States, m0.Clone())
	g.Out = append(g.Out, nil)

	for frontier := 0; frontier < len(g.States); frontier++ {
		if len(g.States) > maxStates {
			g.Complete = false
			return g, fmt.Errorf("%w: %d states", ErrStateSpaceExceeded, len(g.States))
		}
		m := g.States[frontier]
		for t := 0; t < n.Transitions(); t++ {
			tid := TransitionID(t)
			if !n.Enabled(m, tid) {
				continue
			}
			next := n.Fire(m, tid)
			// Karp-Miller acceleration: if next strictly covers an
			// ancestor, pump the strictly larger places to Omega.
			for a := frontier; a != -1; a = parents[a] {
				anc := g.States[a]
				if next.StrictlyCovers(anc) {
					for p := range next {
						if next[p] > anc[p] {
							next[p] = Omega
						}
					}
				}
			}
			to, _ := push(next, frontier)
			eid := len(g.Edges)
			g.Edges = append(g.Edges, Edge{From: frontier, To: to, T: tid})
			g.Out[frontier] = append(g.Out[frontier], eid)
		}
	}
	return g, nil
}

// Bounded reports whether the net with initial marking m0 is bounded,
// i.e. its coverability graph contains no Omega marking.
func Bounded(n *Net, m0 Marking, maxStates int) (bool, error) {
	g, err := Coverability(n, m0, maxStates)
	if err != nil {
		return false, err
	}
	for _, m := range g.States {
		if m.HasOmega() {
			return false, nil
		}
	}
	return true, nil
}
