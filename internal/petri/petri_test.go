package petri

import (
	"errors"
	"testing"
	"testing/quick"
)

// chainNet builds p0 -> t0 -> p1 -> t1 -> ... -> pn.
func chainNet(n int) (*Net, Marking) {
	b := NewBuilder()
	prev := b.AddPlace("p0")
	for i := 0; i < n; i++ {
		t := b.AddTransition("t" + string(rune('a'+i)))
		b.ArcPT(prev, t)
		next := b.AddPlace("p" + string(rune('1'+i)))
		b.ArcTP(t, next)
		prev = next
	}
	net := b.Build()
	m0 := net.NewMarking()
	m0[0] = 1
	return net, m0
}

func TestBuilderAndAccessors(t *testing.T) {
	b := NewBuilder()
	p1 := b.AddPlace("in")
	p2 := b.AddPlace("out")
	tr := b.AddTransition("go")
	b.ArcPT(p1, tr)
	b.ArcTP(tr, p2)
	// Adding the same names again returns the same IDs.
	if b.AddPlace("in") != p1 || b.AddTransition("go") != tr {
		t.Fatal("duplicate add should be idempotent")
	}
	n := b.Build()
	if n.Places() != 2 || n.Transitions() != 1 {
		t.Fatalf("sizes: %d places, %d transitions", n.Places(), n.Transitions())
	}
	if n.PlaceName(p1) != "in" || n.TransitionName(tr) != "go" {
		t.Error("names wrong")
	}
	if got, ok := n.PlaceByName("out"); !ok || got != p2 {
		t.Error("PlaceByName failed")
	}
	if _, ok := n.PlaceByName("ghost"); ok {
		t.Error("PlaceByName(ghost) should fail")
	}
	if got, ok := n.TransitionByName("go"); !ok || got != tr {
		t.Error("TransitionByName failed")
	}
	if len(n.Pre(tr)) != 1 || n.Pre(tr)[0] != p1 {
		t.Error("Pre wrong")
	}
	if len(n.Consumers(p1)) != 1 || len(n.Producers(p2)) != 1 {
		t.Error("consumer/producer index wrong")
	}
}

func TestFiringSemantics(t *testing.T) {
	net, m0 := chainNet(2)
	t0 := TransitionID(0)
	t1 := TransitionID(1)
	if !net.Enabled(m0, t0) {
		t.Fatal("t0 should be enabled initially")
	}
	if net.Enabled(m0, t1) {
		t.Fatal("t1 should be disabled initially")
	}
	m1 := net.Fire(m0, t0)
	if m0[0] != 1 {
		t.Error("Fire must not mutate the input marking")
	}
	if m1[0] != 0 || m1[1] != 1 {
		t.Errorf("m1 = %v", m1)
	}
	if es := net.EnabledSet(m1); len(es) != 1 || es[0] != t1 {
		t.Errorf("EnabledSet(m1) = %v", es)
	}
	m2 := net.Fire(m1, t1)
	if !net.IsDead(m2) {
		t.Error("final marking should be dead")
	}
	defer func() {
		if recover() == nil {
			t.Error("firing a disabled transition must panic")
		}
	}()
	net.Fire(m0, t1)
}

func TestMarkingOps(t *testing.T) {
	net, _ := chainNet(2)
	m, err := net.MarkingOf(map[string]int{"p0": 2, "p2": 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Tokens() != 3 {
		t.Errorf("Tokens = %d", m.Tokens())
	}
	o, _ := net.MarkingOf(map[string]int{"p0": 1})
	if !m.Covers(o) || !m.StrictlyCovers(o) {
		t.Error("covers failed")
	}
	if o.Covers(m) {
		t.Error("o should not cover m")
	}
	if !m.Equal(m.Clone()) {
		t.Error("clone not equal")
	}
	if m.Key() == o.Key() {
		t.Error("distinct markings share a key")
	}
	if _, err := net.MarkingOf(map[string]int{"ghost": 1}); err == nil {
		t.Error("MarkingOf(ghost) should fail")
	}
	if s := m.String(net); s == "" {
		t.Error("String empty")
	}
}

func TestReachabilityChain(t *testing.T) {
	net, m0 := chainNet(5)
	g, err := Reachability(net, m0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.States) != 6 {
		t.Errorf("states = %d, want 6", len(g.States))
	}
	if len(g.Edges) != 5 {
		t.Errorf("edges = %d, want 5", len(g.Edges))
	}
	if dl := g.Deadlocks(); len(dl) != 1 {
		t.Errorf("deadlocks = %v, want exactly the final state", dl)
	}
	if dead := g.DeadTransitions(); len(dead) != 0 {
		t.Errorf("dead transitions = %v", dead)
	}
	if !g.Complete {
		t.Error("graph should be complete")
	}
}

func TestReachabilityBudget(t *testing.T) {
	// Parallel branches: 2^n states; budget cuts exploration short.
	b := NewBuilder()
	start := b.AddPlace("start")
	tSplit := b.AddTransition("split")
	b.ArcPT(start, tSplit)
	for i := 0; i < 12; i++ {
		pa := b.AddPlace("a" + string(rune('0'+i)))
		pb := b.AddPlace("b" + string(rune('0'+i)))
		tr := b.AddTransition("t" + string(rune('0'+i)))
		b.ArcTP(tSplit, pa)
		b.ArcPT(pa, tr)
		b.ArcTP(tr, pb)
	}
	net := b.Build()
	m0 := net.NewMarking()
	m0[start] = 1
	g, err := Reachability(net, m0, 100)
	if !errors.Is(err, ErrStateSpaceExceeded) {
		t.Fatalf("err = %v, want ErrStateSpaceExceeded", err)
	}
	if g.Complete {
		t.Error("graph should be marked incomplete")
	}
}

func TestDeadTransitionDetected(t *testing.T) {
	b := NewBuilder()
	p0 := b.AddPlace("p0")
	p1 := b.AddPlace("p1")
	pIso := b.AddPlace("isolated")
	t0 := b.AddTransition("t0")
	tDead := b.AddTransition("never")
	b.ArcPT(p0, t0)
	b.ArcTP(t0, p1)
	b.ArcPT(pIso, tDead) // isolated place never marked
	b.ArcTP(tDead, p1)
	net := b.Build()
	m0 := net.NewMarking()
	m0[p0] = 1
	g, err := Reachability(net, m0, 100)
	if err != nil {
		t.Fatal(err)
	}
	dead := g.DeadTransitions()
	if len(dead) != 1 || net.TransitionName(dead[0]) != "never" {
		t.Errorf("dead = %v", dead)
	}
}

func TestBackwardReachable(t *testing.T) {
	// Diamond: s -> a|b -> join.
	b := NewBuilder()
	ps := b.AddPlace("s")
	pa := b.AddPlace("a")
	pb := b.AddPlace("b")
	pe := b.AddPlace("e")
	ta := b.AddTransition("ta")
	tb := b.AddTransition("tb")
	tja := b.AddTransition("ja")
	tjb := b.AddTransition("jb")
	b.ArcPT(ps, ta)
	b.ArcTP(ta, pa)
	b.ArcPT(ps, tb)
	b.ArcTP(tb, pb)
	b.ArcPT(pa, tja)
	b.ArcTP(tja, pe)
	b.ArcPT(pb, tjb)
	b.ArcTP(tjb, pe)
	net := b.Build()
	m0 := net.NewMarking()
	m0[ps] = 1
	g, err := Reachability(net, m0, 100)
	if err != nil {
		t.Fatal(err)
	}
	final := net.NewMarking()
	final[pe] = 1
	fs := g.StateOf(final)
	if fs < 0 {
		t.Fatal("final marking not reached")
	}
	back := g.BackwardReachable([]int{fs})
	// Every state can reach the final marking in this net.
	if len(back) != len(g.States) {
		t.Errorf("backward reachable %d of %d states", len(back), len(g.States))
	}
}

func TestCoverabilityDetectsUnbounded(t *testing.T) {
	// t produces into p without consuming: unbounded.
	b := NewBuilder()
	src := b.AddPlace("src")
	p := b.AddPlace("p")
	tr := b.AddTransition("gen")
	b.ArcPT(src, tr)
	b.ArcTP(tr, src) // keep src marked
	b.ArcTP(tr, p)   // pump p
	net := b.Build()
	m0 := net.NewMarking()
	m0[src] = 1
	bounded, err := Bounded(net, m0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if bounded {
		t.Error("net should be unbounded")
	}
	g, err := Coverability(net, m0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	foundOmega := false
	for _, m := range g.States {
		if m.HasOmega() {
			foundOmega = true
		}
	}
	if !foundOmega {
		t.Error("coverability graph should contain an Omega marking")
	}
}

func TestCoverabilityBoundedNet(t *testing.T) {
	net, m0 := chainNet(3)
	bounded, err := Bounded(net, m0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !bounded {
		t.Error("chain net should be bounded")
	}
}

// Property: firing preserves token count for transitions with equal
// pre/post arity (chain nets: 1 in, 1 out).
func TestQuickChainTokenConservation(t *testing.T) {
	f := func(n uint8) bool {
		length := int(n%10) + 1
		net, m0 := chainNet(length)
		m := m0
		for {
			es := net.EnabledSet(m)
			if len(es) == 0 {
				break
			}
			m = net.Fire(m, es[0])
			if m.Tokens() != 1 {
				return false
			}
		}
		// Token must end in the last place.
		return m[len(m)-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: reachability graph of a 1-safe chain has length+1 states.
func TestQuickChainReachabilitySize(t *testing.T) {
	f := func(n uint8) bool {
		length := int(n%12) + 1
		net, m0 := chainNet(length)
		g, err := Reachability(net, m0, 10000)
		if err != nil {
			return false
		}
		return len(g.States) == length+1 && len(g.Edges) == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Covers is a partial order (reflexive, antisymmetric on
// Equal, transitive) for random small markings.
func TestQuickCoversPartialOrder(t *testing.T) {
	f := func(a, b, c [4]uint8) bool {
		ma := Marking{int32(a[0] % 4), int32(a[1] % 4), int32(a[2] % 4), int32(a[3] % 4)}
		mb := Marking{int32(b[0] % 4), int32(b[1] % 4), int32(b[2] % 4), int32(b[3] % 4)}
		mc := Marking{int32(c[0] % 4), int32(c[1] % 4), int32(c[2] % 4), int32(c[3] % 4)}
		if !ma.Covers(ma) {
			return false
		}
		if ma.Covers(mb) && mb.Covers(ma) && !ma.Equal(mb) {
			return false
		}
		if ma.Covers(mb) && mb.Covers(mc) && !ma.Covers(mc) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
