// Package petri implements place/transition Petri nets with token-game
// semantics, reachability and coverability (Karp-Miller) analysis, and
// the structural helpers needed by workflow-net verification.
//
// Nets are built once via a Builder and are immutable afterwards, so a
// Net may be analysed concurrently. Markings are dense token-count
// vectors indexed by place ID.
package petri

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PlaceID identifies a place within its net (dense, 0-based).
type PlaceID int

// TransitionID identifies a transition within its net (dense, 0-based).
type TransitionID int

// Net is an immutable place/transition net. Arc weights are all 1,
// which suffices for workflow nets derived from process models.
type Net struct {
	placeNames []string
	transNames []string

	pre  [][]PlaceID // pre[t] = input places of transition t
	post [][]PlaceID // post[t] = output places of transition t

	consumers [][]TransitionID // consumers[p] = transitions with p in pre
	producers [][]TransitionID // producers[p] = transitions with p in post
}

// Builder assembles a Net.
type Builder struct {
	placeNames []string
	transNames []string
	placeByNm  map[string]PlaceID
	transByNm  map[string]TransitionID
	pre        [][]PlaceID
	post       [][]PlaceID
}

// NewBuilder returns an empty net builder.
func NewBuilder() *Builder {
	return &Builder{
		placeByNm: map[string]PlaceID{},
		transByNm: map[string]TransitionID{},
	}
}

// AddPlace adds (or returns the existing) place with the given name.
func (b *Builder) AddPlace(name string) PlaceID {
	if id, ok := b.placeByNm[name]; ok {
		return id
	}
	id := PlaceID(len(b.placeNames))
	b.placeNames = append(b.placeNames, name)
	b.placeByNm[name] = id
	return id
}

// AddTransition adds (or returns the existing) transition with the
// given name.
func (b *Builder) AddTransition(name string) TransitionID {
	if id, ok := b.transByNm[name]; ok {
		return id
	}
	id := TransitionID(len(b.transNames))
	b.transNames = append(b.transNames, name)
	b.pre = append(b.pre, nil)
	b.post = append(b.post, nil)
	b.transByNm[name] = id
	return id
}

// ArcPT adds an arc from place p to transition t.
func (b *Builder) ArcPT(p PlaceID, t TransitionID) {
	b.pre[t] = append(b.pre[t], p)
}

// ArcTP adds an arc from transition t to place p.
func (b *Builder) ArcTP(t TransitionID, p PlaceID) {
	b.post[t] = append(b.post[t], p)
}

// Build finalizes the net.
func (b *Builder) Build() *Net {
	n := &Net{
		placeNames: b.placeNames,
		transNames: b.transNames,
		pre:        b.pre,
		post:       b.post,
		consumers:  make([][]TransitionID, len(b.placeNames)),
		producers:  make([][]TransitionID, len(b.placeNames)),
	}
	for t := range n.pre {
		for _, p := range n.pre[t] {
			n.consumers[p] = append(n.consumers[p], TransitionID(t))
		}
		for _, p := range n.post[t] {
			n.producers[p] = append(n.producers[p], TransitionID(t))
		}
	}
	return n
}

// Places returns the number of places.
func (n *Net) Places() int { return len(n.placeNames) }

// Transitions returns the number of transitions.
func (n *Net) Transitions() int { return len(n.transNames) }

// PlaceName returns the name of place p.
func (n *Net) PlaceName(p PlaceID) string { return n.placeNames[p] }

// TransitionName returns the name of transition t.
func (n *Net) TransitionName(t TransitionID) string { return n.transNames[t] }

// PlaceByName looks a place up by name.
func (n *Net) PlaceByName(name string) (PlaceID, bool) {
	for i, nm := range n.placeNames {
		if nm == name {
			return PlaceID(i), true
		}
	}
	return -1, false
}

// TransitionByName looks a transition up by name.
func (n *Net) TransitionByName(name string) (TransitionID, bool) {
	for i, nm := range n.transNames {
		if nm == name {
			return TransitionID(i), true
		}
	}
	return -1, false
}

// Pre returns the input places of t.
func (n *Net) Pre(t TransitionID) []PlaceID { return n.pre[t] }

// Post returns the output places of t.
func (n *Net) Post(t TransitionID) []PlaceID { return n.post[t] }

// Consumers returns the transitions consuming from place p.
func (n *Net) Consumers(p PlaceID) []TransitionID { return n.consumers[p] }

// Producers returns the transitions producing into place p.
func (n *Net) Producers(p PlaceID) []TransitionID { return n.producers[p] }

// Omega is the token count representing "unboundedly many" in
// coverability markings.
const Omega = math.MaxInt32

// Marking is a token-count vector indexed by PlaceID. A count of Omega
// means "arbitrarily many" (coverability analysis only).
type Marking []int32

// NewMarking returns the empty marking for net n.
func (n *Net) NewMarking() Marking { return make(Marking, n.Places()) }

// MarkingOf builds a marking with the given token counts by place name.
func (n *Net) MarkingOf(tokens map[string]int) (Marking, error) {
	m := n.NewMarking()
	for name, c := range tokens {
		p, ok := n.PlaceByName(name)
		if !ok {
			return nil, fmt.Errorf("petri: unknown place %q", name)
		}
		m[p] = int32(c)
	}
	return m, nil
}

// Clone returns a copy of m.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	copy(c, m)
	return c
}

// Equal reports whether two markings are identical.
func (m Marking) Equal(o Marking) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Covers reports whether m >= o componentwise.
func (m Marking) Covers(o Marking) bool {
	for i := range m {
		if m[i] < o[i] {
			return false
		}
	}
	return true
}

// StrictlyCovers reports whether m >= o and m != o.
func (m Marking) StrictlyCovers(o Marking) bool {
	return m.Covers(o) && !m.Equal(o)
}

// Tokens returns the total token count (Omega-valued places count as
// Omega).
func (m Marking) Tokens() int64 {
	var sum int64
	for _, c := range m {
		if c == Omega {
			return int64(Omega)
		}
		sum += int64(c)
	}
	return sum
}

// HasOmega reports whether any component is Omega.
func (m Marking) HasOmega() bool {
	for _, c := range m {
		if c == Omega {
			return true
		}
	}
	return false
}

// Key returns a compact hashable representation of m.
func (m Marking) Key() string {
	// Sparse varint-ish encoding: most workflow markings are sparse.
	var sb strings.Builder
	for i, c := range m {
		if c != 0 {
			fmt.Fprintf(&sb, "%d:%d;", i, c)
		}
	}
	return sb.String()
}

// String renders m as {place: count, ...} using place names.
func (m Marking) String(n *Net) string {
	var parts []string
	for i, c := range m {
		if c == 0 {
			continue
		}
		cnt := fmt.Sprintf("%d", c)
		if c == Omega {
			cnt = "ω"
		}
		parts = append(parts, fmt.Sprintf("%s:%s", n.PlaceName(PlaceID(i)), cnt))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// Enabled reports whether transition t is enabled in marking m.
func (n *Net) Enabled(m Marking, t TransitionID) bool {
	for _, p := range n.pre[t] {
		if m[p] < 1 {
			return false
		}
	}
	return true
}

// EnabledSet returns all transitions enabled in m, in ID order.
func (n *Net) EnabledSet(m Marking) []TransitionID {
	var out []TransitionID
	for t := 0; t < len(n.pre); t++ {
		if n.Enabled(m, TransitionID(t)) {
			out = append(out, TransitionID(t))
		}
	}
	return out
}

// Fire fires transition t in marking m, returning the successor
// marking. Fire panics if t is not enabled; callers check Enabled
// first. Omega counts absorb consumption and production.
func (n *Net) Fire(m Marking, t TransitionID) Marking {
	out := m.Clone()
	for _, p := range n.pre[t] {
		if out[p] == Omega {
			continue
		}
		if out[p] < 1 {
			panic(fmt.Sprintf("petri: firing disabled transition %s", n.transNames[t]))
		}
		out[p]--
	}
	for _, p := range n.post[t] {
		if out[p] == Omega {
			continue
		}
		out[p]++
	}
	return out
}

// IsDead reports whether no transition is enabled in m.
func (n *Net) IsDead(m Marking) bool {
	for t := 0; t < len(n.pre); t++ {
		if n.Enabled(m, TransitionID(t)) {
			return false
		}
	}
	return true
}
