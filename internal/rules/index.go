// Decision-table indexing: the query planner behind Compiled.Eval.
//
// Compile decomposes every rule's conditions into indexable atoms
// (expr.Program.Predicates) and, for the rules where that succeeds
// completely, builds per-column structures: a hash index over
// equality literals and interval indexes (a centered interval tree
// plus sorted one-sided lists) over range bounds. Eval then probes
// each column with the bound input value and intersects per-column
// candidate bitsets, so an equality-dominated 10k-rule table costs a
// handful of hash lookups instead of 10k expression evaluations.
//
// Exactness is the design constraint: the indexed path must return
// byte-identical decisions AND errors to the linear scan. Three
// mechanisms deliver that:
//
//   - Rules whose conditions don't fully decompose ("resid" rules)
//     are never indexed; Eval always visits them, in table order,
//     merged with the indexed candidates.
//   - A probe precheck per column: if the input variable is unbound,
//     or its class (number/string) can't be ordered against the
//     column's range bounds, the indexed rules themselves could raise
//     evaluation errors — so Eval falls back to the (memoized) linear
//     scan for that call instead of guessing.
//   - Under a passing precheck every indexed predicate is error-free
//     by construction (Value.Equal is total; Value.Compare succeeds
//     for matching classes), so skipping non-candidates cannot skip
//     an error the linear scan would have surfaced.
//
// Numeric keys are float64 images, which is exactly faithful because
// Value.Compare orders all numerics via AsFloat; equality buckets
// verify entries with Value.Equal so int64s beyond 2^53 that share a
// float image cannot collide into a wrong match.
package rules

import (
	"math/bits"
	"slices"
	"sort"

	"bpms/internal/expr"
)

// ---------------------------------------------------------------------------
// Bitsets

// bitset is a fixed-width set of rule indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) and(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) copyFrom(o bitset) { copy(b, o) }

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// next returns the smallest set bit >= i, or -1.
func (b bitset) next(i int) int {
	w := i >> 6
	if w >= len(b) {
		return -1
	}
	k := uint(i) & 63
	cur := b[w] >> k << k
	for {
		if cur != 0 {
			return w<<6 + bits.TrailingZeros64(cur)
		}
		w++
		if w >= len(b) {
			return -1
		}
		cur = b[w]
	}
}

// ---------------------------------------------------------------------------
// Interval index

// ival is one rule's combined range constraint on a column, in key
// space (float64 for numerics, string for strings).
type ival[K string | float64] struct {
	lo, hi         K
	loOpen, hiOpen bool
	noLo, noHi     bool // unbounded side
	rule           int
}

func (iv *ival[K]) contains(v K) bool {
	if !iv.noLo && (v < iv.lo || (v == iv.lo && iv.loOpen)) {
		return false
	}
	if !iv.noHi && (v > iv.hi || (v == iv.hi && iv.hiOpen)) {
		return false
	}
	return true
}

// rangeIndex answers stabbing queries ("which intervals contain v")
// over one column's range constraints. Bounded intervals live in a
// centered interval tree; one-sided intervals live in sorted lists
// scanned with an early break, so a query touches O(log n + hits)
// intervals for typical band layouts.
type rangeIndex[K string | float64] struct {
	tree   *itree[K]
	openLo []ival[K] // no lower bound, sorted by hi descending
	openHi []ival[K] // no upper bound, sorted by lo ascending
}

func buildRangeIndex[K string | float64](ivs []ival[K]) *rangeIndex[K] {
	if len(ivs) == 0 {
		return nil
	}
	r := &rangeIndex[K]{}
	var bounded []ival[K]
	for _, iv := range ivs {
		switch {
		case iv.noLo:
			r.openLo = append(r.openLo, iv)
		case iv.noHi:
			r.openHi = append(r.openHi, iv)
		default:
			bounded = append(bounded, iv)
		}
	}
	sort.Slice(r.openLo, func(a, b int) bool { return r.openLo[a].hi > r.openLo[b].hi })
	sort.Slice(r.openHi, func(a, b int) bool { return r.openHi[a].lo < r.openHi[b].lo })
	r.tree = buildITree(bounded)
	return r
}

func (r *rangeIndex[K]) stab(v K, hit func(int)) {
	for i := range r.openLo {
		iv := &r.openLo[i]
		if iv.hi < v {
			break
		}
		if iv.contains(v) {
			hit(iv.rule)
		}
	}
	for i := range r.openHi {
		iv := &r.openHi[i]
		if iv.lo > v {
			break
		}
		if iv.contains(v) {
			hit(iv.rule)
		}
	}
	r.tree.stab(v, hit)
}

// itree is a centered interval tree: intervals straddling the center
// key are stored at the node (sorted both ways for one-sided scans),
// the rest recurse left/right of it.
type itree[K string | float64] struct {
	center      K
	byLo        []ival[K] // straddling, sorted by lo ascending
	byHi        []ival[K] // straddling, sorted by hi descending
	left, right *itree[K]
}

func buildITree[K string | float64](ivs []ival[K]) *itree[K] {
	if len(ivs) == 0 {
		return nil
	}
	keys := make([]K, 0, 2*len(ivs))
	for i := range ivs {
		keys = append(keys, ivs[i].lo, ivs[i].hi)
	}
	slices.Sort(keys)
	// The median is an endpoint of some interval, so at least one
	// interval straddles it and both recursions strictly shrink.
	n := &itree[K]{center: keys[len(keys)/2]}
	var left, right []ival[K]
	for _, iv := range ivs {
		switch {
		case iv.hi < n.center:
			left = append(left, iv)
		case iv.lo > n.center:
			right = append(right, iv)
		default:
			n.byLo = append(n.byLo, iv)
		}
	}
	n.byHi = append([]ival[K](nil), n.byLo...)
	sort.Slice(n.byLo, func(a, b int) bool { return n.byLo[a].lo < n.byLo[b].lo })
	sort.Slice(n.byHi, func(a, b int) bool { return n.byHi[a].hi > n.byHi[b].hi })
	n.left = buildITree(left)
	n.right = buildITree(right)
	return n
}

func (n *itree[K]) stab(v K, hit func(int)) {
	for n != nil {
		switch {
		case v < n.center:
			// Straddling intervals reach past center >= v, so only the
			// lo endpoint can disqualify; byLo's order gives the break.
			for i := range n.byLo {
				iv := &n.byLo[i]
				if iv.lo > v {
					break
				}
				if iv.contains(v) {
					hit(iv.rule)
				}
			}
			n = n.left
		case v > n.center:
			for i := range n.byHi {
				iv := &n.byHi[i]
				if iv.hi < v {
					break
				}
				if iv.contains(v) {
					hit(iv.rule)
				}
			}
			n = n.right
		default:
			// v == center: left subtree ends below it, right starts
			// above it; only the straddlers can contain v.
			for i := range n.byLo {
				if n.byLo[i].contains(v) {
					hit(n.byLo[i].rule)
				}
			}
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Equality index

// Value classes for range-comparability prechecks.
const (
	classNone byte = 0
	classNum  byte = 'f'
	classStr  byte = 's'
)

func valClass(v expr.Value) byte {
	switch v.Kind() {
	case expr.KindInt, expr.KindFloat:
		return classNum
	case expr.KindString:
		return classStr
	}
	return classNone
}

// eqKey buckets equality literals by their comparison image: all
// numerics by float64 image (Value.Equal compares cross-kind numerics
// that way), strings, bools, and null each by themselves.
type eqKey struct {
	kind byte // 'n' null, 'b' bool, classNum, classStr
	b    bool
	f    float64
	s    string
}

func eqKeyOf(v expr.Value) (eqKey, bool) {
	switch v.Kind() {
	case expr.KindNull:
		return eqKey{kind: 'n'}, true
	case expr.KindBool:
		b, _ := v.AsBool()
		return eqKey{kind: 'b', b: b}, true
	case expr.KindInt, expr.KindFloat:
		f, _ := v.AsFloat()
		return eqKey{kind: classNum, f: f}, true
	case expr.KindString:
		s, _ := v.AsString()
		return eqKey{kind: classStr, s: s}, true
	}
	return eqKey{}, false
}

// eqEntry is one distinct literal in a bucket and the rules it
// admits. The literal is kept so probes re-verify with Value.Equal:
// distinct int64s can share a float64 bucket image beyond 2^53.
type eqEntry struct {
	lit  expr.Value
	bits bitset
}

// ---------------------------------------------------------------------------
// Per-rule constraint reduction (compile time)

// colConstraint folds every atom one rule places on one column into a
// canonical constraint: an equality set, or a single interval.
type colConstraint struct {
	hasEq  bool
	eqVals []expr.Value

	class          byte // classNone until a range atom arrives
	lo, hi         expr.Value
	hasLo, hasHi   bool
	loOpen, hiOpen bool

	// unsat marks a contradiction (v == 1 && v == 2); the rule stays
	// indexable, it just matches nothing whenever the precheck passes.
	unsat bool
}

func rangeKeyNum(v expr.Value) float64 { f, _ := v.AsFloat(); return f }
func rangeKeyStr(v expr.Value) (string, bool) {
	s, ok := v.AsString()
	return s, ok
}

// classKeyLess orders two bound literals of the same class.
func boundLess(class byte, a, b expr.Value) bool {
	if class == classStr {
		as, _ := a.AsString()
		bs, _ := b.AsString()
		return as < bs
	}
	return rangeKeyNum(a) < rangeKeyNum(b)
}

func boundEqual(class byte, a, b expr.Value) bool {
	return !boundLess(class, a, b) && !boundLess(class, b, a)
}

// add folds one atom in. It returns false when the rule must stay on
// the linear path (mixed numeric/string range bounds on one column:
// whatever the input's class, one of the comparisons would error).
func (cc *colConstraint) add(a expr.Predicate) bool {
	switch a.Kind {
	case expr.PredEq:
		if !cc.hasEq {
			cc.hasEq = true
			cc.eqVals = append([]expr.Value(nil), a.Values...)
			return true
		}
		// Conjunction of equality sets is their intersection.
		kept := cc.eqVals[:0]
		for _, v := range cc.eqVals {
			for _, w := range a.Values {
				if v.Equal(w) {
					kept = append(kept, v)
					break
				}
			}
		}
		cc.eqVals = kept
		return true
	case expr.PredRange:
		cls := valClass(a.Bound)
		if cc.class == classNone {
			cc.class = cls
		} else if cc.class != cls {
			return false
		}
		open := a.Op == expr.RangeGT || a.Op == expr.RangeLT
		if a.Op == expr.RangeGT || a.Op == expr.RangeGE {
			if !cc.hasLo || boundLess(cc.class, cc.lo, a.Bound) ||
				(boundEqual(cc.class, cc.lo, a.Bound) && open && !cc.loOpen) {
				cc.lo, cc.loOpen, cc.hasLo = a.Bound, open, true
			}
		} else {
			if !cc.hasHi || boundLess(cc.class, a.Bound, cc.hi) ||
				(boundEqual(cc.class, cc.hi, a.Bound) && open && !cc.hiOpen) {
				cc.hi, cc.hiOpen, cc.hasHi = a.Bound, open, true
			}
		}
		return true
	}
	return false
}

// finalize reconciles the equality set against the range bounds. It
// returns false when the rule must stay on the linear path: an
// equality literal whose class can't be ordered against the range
// bounds means any input matching that literal would hit a comparison
// error in the remaining atoms.
func (cc *colConstraint) finalize() bool {
	if cc.hasEq {
		if cc.class != classNone {
			kept := cc.eqVals[:0]
			for _, v := range cc.eqVals {
				if valClass(v) != cc.class {
					return false
				}
				if cc.boundsAdmit(v) {
					kept = append(kept, v)
				}
			}
			cc.eqVals = kept
		}
		cc.unsat = len(cc.eqVals) == 0
		return true
	}
	if cc.hasLo && cc.hasHi {
		if boundLess(cc.class, cc.hi, cc.lo) ||
			(boundEqual(cc.class, cc.lo, cc.hi) && (cc.loOpen || cc.hiOpen)) {
			cc.unsat = true
		}
	}
	return true
}

// boundsAdmit reports whether an equality literal (same class as the
// bounds) satisfies the interval.
func (cc *colConstraint) boundsAdmit(v expr.Value) bool {
	if cc.hasLo && (boundLess(cc.class, v, cc.lo) ||
		(boundEqual(cc.class, v, cc.lo) && cc.loOpen)) {
		return false
	}
	if cc.hasHi && (boundLess(cc.class, cc.hi, v) ||
		(boundEqual(cc.class, v, cc.hi) && cc.hiOpen)) {
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// Plan

// column is the compiled index over one input variable.
type column struct {
	name string
	eq   map[eqKey][]*eqEntry
	num  *rangeIndex[float64]
	str  *rangeIndex[string]
	// needNum/needStr record that some indexed rule holds a range
	// bound of that class on this column — even a rule whose combined
	// constraint is unsatisfiable and therefore absent from the built
	// indexes. A probe value of the wrong class could make that rule's
	// atoms error under the linear scan, so the precheck must fall
	// back on the flags, not on which indexes happen to exist.
	needNum, needStr bool
	// rest holds indexed rules with no atom on this column: they are
	// satisfied regardless of the probe value.
	rest bitset
}

// plan is the compiled index over a table: the set of fully-indexable
// rules, the always-visited residual rules, and one index per column.
type plan struct {
	indexed bitset // fully-indexable rules
	resid   []int  // all other rules, ascending table order
	cols    []column
}

// buildPlan compiles the index structures, or returns nil when no
// rule is indexable (Eval then always runs the memoized linear scan).
func buildPlan(c *Compiled) *plan {
	n := len(c.table.Rules)
	perRule := make([]map[string]*colConstraint, n)
	indexed := newBitset(n)
	var resid []int
	colNames := map[string]bool{}

	for ri := range c.table.Rules {
		rc := map[string]*colConstraint{}
		ok := true
		for _, p := range c.conds[ri] {
			atoms := p.Predicates()
			if atoms == nil {
				ok = false
				break
			}
			for _, a := range atoms {
				cc := rc[a.Var]
				if cc == nil {
					cc = &colConstraint{}
					rc[a.Var] = cc
				}
				if !cc.add(a) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			for _, cc := range rc {
				if !cc.finalize() {
					ok = false
					break
				}
			}
		}
		if !ok {
			resid = append(resid, ri)
			continue
		}
		indexed.set(ri)
		perRule[ri] = rc
		for name := range rc {
			colNames[name] = true
		}
	}
	if indexed.count() == 0 {
		return nil
	}

	names := make([]string, 0, len(colNames))
	for name := range colNames {
		names = append(names, name)
	}
	sort.Strings(names)

	p := &plan{indexed: indexed, resid: resid, cols: make([]column, 0, len(names))}
	for _, name := range names {
		col := column{name: name, eq: map[eqKey][]*eqEntry{}, rest: newBitset(n)}
		var numIvs []ival[float64]
		var strIvs []ival[string]
		for ri := indexed.next(0); ri >= 0; ri = indexed.next(ri + 1) {
			cc := perRule[ri][name]
			if cc != nil {
				col.needNum = col.needNum || cc.class == classNum
				col.needStr = col.needStr || cc.class == classStr
			}
			switch {
			case cc == nil:
				col.rest.set(ri)
			case cc.unsat:
				// Contradictory constraint: the rule can never match
				// on the indexed path, so it appears in no structure.
			case cc.hasEq:
				for _, v := range cc.eqVals {
					col.addEq(v, ri, n)
				}
			case cc.class == classStr:
				lo, hi := "", ""
				if cc.hasLo {
					lo, _ = rangeKeyStr(cc.lo)
				}
				if cc.hasHi {
					hi, _ = rangeKeyStr(cc.hi)
				}
				strIvs = append(strIvs, ival[string]{
					lo: lo, hi: hi, loOpen: cc.loOpen, hiOpen: cc.hiOpen,
					noLo: !cc.hasLo, noHi: !cc.hasHi, rule: ri,
				})
			default:
				var lo, hi float64
				if cc.hasLo {
					lo = rangeKeyNum(cc.lo)
				}
				if cc.hasHi {
					hi = rangeKeyNum(cc.hi)
				}
				numIvs = append(numIvs, ival[float64]{
					lo: lo, hi: hi, loOpen: cc.loOpen, hiOpen: cc.hiOpen,
					noLo: !cc.hasLo, noHi: !cc.hasHi, rule: ri,
				})
			}
		}
		col.num = buildRangeIndex(numIvs)
		col.str = buildRangeIndex(strIvs)
		p.cols = append(p.cols, col)
	}
	return p
}

func (col *column) addEq(v expr.Value, ri, n int) {
	key, ok := eqKeyOf(v)
	if !ok {
		return // literals are always scalars; defensive
	}
	for _, e := range col.eq[key] {
		if e.lit.Equal(v) {
			e.bits.set(ri)
			return
		}
	}
	e := &eqEntry{lit: v, bits: newBitset(n)}
	e.bits.set(ri)
	col.eq[key] = append(col.eq[key], e)
}

// probe intersects the per-column candidate sets into st.cand. A
// false return means the indexed path cannot be trusted for this env
// (unbound column, or a value class the column's range bounds can't
// be ordered against) and the caller must use the linear scan.
func (c *Compiled) probe(env expr.Env, st *evalState) bool {
	p := c.plan
	st.cand.copyFrom(p.indexed)
	for i := range p.cols {
		col := &p.cols[i]
		v, bound := env.Lookup(col.name)
		if !bound {
			return false
		}
		cls := valClass(v)
		if (col.needNum && cls != classNum) || (col.needStr && cls != classStr) {
			return false
		}
		if col.needNum {
			// NaN defeats interval logic (Value.Compare reports NaN
			// "equal" to everything); let the linear scan decide.
			if f := rangeKeyNum(v); f != f {
				return false
			}
		}
		st.tmp.copyFrom(col.rest)
		if len(col.eq) > 0 {
			if key, ok := eqKeyOf(v); ok {
				for _, e := range col.eq[key] {
					if e.lit.Equal(v) {
						st.tmp.or(e.bits)
					}
				}
			}
		}
		if col.num != nil {
			col.num.stab(rangeKeyNum(v), st.tmp.set)
		}
		if col.str != nil {
			s, _ := v.AsString()
			col.str.stab(s, st.tmp.set)
		}
		st.cand.and(st.tmp)
	}
	return true
}
