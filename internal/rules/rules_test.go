package rules

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"bpms/internal/expr"
)

// riskTable is a classic credit-risk decision table.
func riskTable(policy HitPolicy) Table {
	return Table{
		Name:      "risk",
		HitPolicy: policy,
		Outputs:   []string{"risk", "rate"},
		Rules: []Rule{
			{ID: "low", Conditions: []string{"amount < 1000"},
				Outputs: map[string]string{"risk": `"low"`, "rate": "0.02"}, Priority: 1},
			{ID: "mid", Conditions: []string{"amount >= 1000", "amount < 10000"},
				Outputs: map[string]string{"risk": `"medium"`, "rate": "0.05"}, Priority: 2},
			{ID: "high", Conditions: []string{"amount >= 10000"},
				Outputs: map[string]string{"risk": `"high"`, "rate": "0.11"}, Priority: 3},
		},
	}
}

func TestUniquePolicy(t *testing.T) {
	c := MustCompile(riskTable(Unique))
	d, err := c.Eval(expr.MapEnv{"amount": expr.Int(5000)})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Outputs["risk"].AsString(); got != "medium" {
		t.Errorf("risk = %q", got)
	}
	if got, _ := d.Outputs["rate"].AsFloat(); got != 0.05 {
		t.Errorf("rate = %v", got)
	}
	if len(d.Matched) != 1 || d.Matched[0] != 1 {
		t.Errorf("Matched = %v", d.Matched)
	}
}

func TestUniqueViolation(t *testing.T) {
	tbl := riskTable(Unique)
	// Make rules overlap.
	tbl.Rules[1].Conditions = []string{"amount >= 0"}
	c := MustCompile(tbl)
	_, err := c.Eval(expr.MapEnv{"amount": expr.Int(500)})
	if !errors.Is(err, ErrNotUnique) {
		t.Errorf("err = %v, want ErrNotUnique", err)
	}
}

func TestFirstPolicy(t *testing.T) {
	tbl := Table{
		Name: "discount", HitPolicy: First, Outputs: []string{"pct"},
		Rules: []Rule{
			{Conditions: []string{`grade == "gold"`}, Outputs: map[string]string{"pct": "20"}},
			{Conditions: []string{"years > 2"}, Outputs: map[string]string{"pct": "10"}},
			{Conditions: nil, Outputs: map[string]string{"pct": "0"}}, // catch-all
		},
	}
	c := MustCompile(tbl)
	cases := []struct {
		env  expr.MapEnv
		want int64
	}{
		{expr.MapEnv{"grade": expr.String("gold"), "years": expr.Int(5)}, 20},
		{expr.MapEnv{"grade": expr.String("basic"), "years": expr.Int(5)}, 10},
		{expr.MapEnv{"grade": expr.String("basic"), "years": expr.Int(1)}, 0},
	}
	for _, tt := range cases {
		d, err := c.Eval(tt.env)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := d.Outputs["pct"].AsInt(); got != tt.want {
			t.Errorf("pct = %d, want %d", got, tt.want)
		}
	}
}

func TestAnyPolicy(t *testing.T) {
	agree := Table{
		Name: "eligibility", HitPolicy: Any, Outputs: []string{"ok"},
		Rules: []Rule{
			{Conditions: []string{"age >= 18"}, Outputs: map[string]string{"ok": "true"}},
			{Conditions: []string{"verified == true"}, Outputs: map[string]string{"ok": "true"}},
		},
	}
	c := MustCompile(agree)
	d, err := c.Eval(expr.MapEnv{"age": expr.Int(30), "verified": expr.True})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.Outputs["ok"].AsBool(); !ok {
		t.Error("ok should be true")
	}
	// Disagreement is an error.
	disagree := agree
	disagree.Rules = append([]Rule(nil), agree.Rules...)
	disagree.Rules[1] = Rule{Conditions: []string{"verified == true"}, Outputs: map[string]string{"ok": "false"}}
	c2 := MustCompile(disagree)
	if _, err := c2.Eval(expr.MapEnv{"age": expr.Int(30), "verified": expr.True}); !errors.Is(err, ErrAnyDisagree) {
		t.Errorf("err = %v, want ErrAnyDisagree", err)
	}
}

func TestPriorityPolicy(t *testing.T) {
	tbl := riskTable(Priority)
	// Overlap all three; highest priority (high=3) must win.
	for i := range tbl.Rules {
		tbl.Rules[i].Conditions = []string{"amount >= 0"}
	}
	c := MustCompile(tbl)
	d, err := c.Eval(expr.MapEnv{"amount": expr.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Outputs["risk"].AsString(); got != "high" {
		t.Errorf("risk = %q, want high", got)
	}
}

func TestCollectAndRuleOrder(t *testing.T) {
	tbl := Table{
		Name: "notifications", HitPolicy: Collect, Outputs: []string{"channel"},
		Rules: []Rule{
			{Conditions: []string{"amount > 100"}, Outputs: map[string]string{"channel": `"email"`}},
			{Conditions: []string{"amount > 1000"}, Outputs: map[string]string{"channel": `"sms"`}},
			{Conditions: []string{"amount > 10000"}, Outputs: map[string]string{"channel": `"phone"`}},
		},
	}
	for _, hp := range []HitPolicy{Collect, RuleOrder} {
		tbl.HitPolicy = hp
		c := MustCompile(tbl)
		d, err := c.Eval(expr.MapEnv{"amount": expr.Int(5000)})
		if err != nil {
			t.Fatal(err)
		}
		if len(d.List) != 2 {
			t.Fatalf("%s: matches = %d, want 2", hp, len(d.List))
		}
		ch0, _ := d.List[0]["channel"].AsString()
		ch1, _ := d.List[1]["channel"].AsString()
		if ch0 != "email" || ch1 != "sms" {
			t.Errorf("%s: channels = %s,%s", hp, ch0, ch1)
		}
	}
}

func TestNoMatch(t *testing.T) {
	tbl := Table{
		Name: "t", HitPolicy: First, Outputs: []string{"x"},
		Rules: []Rule{{Conditions: []string{"v > 10"}, Outputs: map[string]string{"x": "1"}}},
	}
	c := MustCompile(tbl)
	if _, err := c.Eval(expr.MapEnv{"v": expr.Int(1)}); !errors.Is(err, ErrNoMatch) {
		t.Errorf("err = %v, want ErrNoMatch", err)
	}
}

func TestDashAndEmptyConditionsMatchAll(t *testing.T) {
	tbl := Table{
		Name: "t", HitPolicy: First, Outputs: []string{"x"},
		Rules: []Rule{{Conditions: []string{"-", ""}, Outputs: map[string]string{"x": "7"}}},
	}
	c := MustCompile(tbl)
	d, err := c.Eval(expr.EmptyEnv)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Outputs["x"].AsInt(); got != 7 {
		t.Errorf("x = %d", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		tbl  Table
		sub  string
	}{
		{"bad policy", Table{Name: "t", HitPolicy: "MAGIC", Outputs: []string{"x"},
			Rules: []Rule{{Outputs: map[string]string{"x": "1"}}}}, "hit policy"},
		{"no outputs", Table{Name: "t", HitPolicy: First,
			Rules: []Rule{{Outputs: map[string]string{"x": "1"}}}}, "no outputs"},
		{"no rules", Table{Name: "t", HitPolicy: First, Outputs: []string{"x"}}, "no rules"},
		{"bad condition", Table{Name: "t", HitPolicy: First, Outputs: []string{"x"},
			Rules: []Rule{{Conditions: []string{"1 +"}, Outputs: map[string]string{"x": "1"}}}}, "condition"},
		{"missing output", Table{Name: "t", HitPolicy: First, Outputs: []string{"x", "y"},
			Rules: []Rule{{Outputs: map[string]string{"x": "1"}}}}, "missing output"},
		{"bad output", Table{Name: "t", HitPolicy: First, Outputs: []string{"x"},
			Rules: []Rule{{Outputs: map[string]string{"x": ")("}}}}, "output"},
		{"duplicate output", Table{Name: "t", HitPolicy: First, Outputs: []string{"x", "x"},
			Rules: []Rule{{Outputs: map[string]string{"x": "1"}}}}, `declares output "x" twice`},
		{"duplicate rule id", Table{Name: "t", HitPolicy: First, Outputs: []string{"x"},
			Rules: []Rule{
				{ID: "r", Outputs: map[string]string{"x": "1"}},
				{Outputs: map[string]string{"x": "2"}},
				{ID: "r", Outputs: map[string]string{"x": "3"}},
			}}, `rules 0 and 2 share id "r"`},
	}
	for _, tt := range cases {
		_, err := Compile(tt.tbl)
		if err == nil {
			t.Errorf("%s: want error", tt.name)
			continue
		}
		if !errors.Is(err, ErrBadDefinition) {
			t.Errorf("%s: err = %v, want ErrBadDefinition", tt.name, err)
		}
		if !strings.Contains(err.Error(), tt.sub) {
			t.Errorf("%s: err = %q, want substring %q", tt.name, err, tt.sub)
		}
	}
}

func TestEvalErrorPropagates(t *testing.T) {
	tbl := Table{
		Name: "t", HitPolicy: First, Outputs: []string{"x"},
		Rules: []Rule{{Conditions: []string{"missing > 1"}, Outputs: map[string]string{"x": "1"}}},
	}
	c := MustCompile(tbl)
	if _, err := c.Eval(expr.EmptyEnv); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("err = %v, want unbound variable", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tbl := riskTable(Unique)
	data, err := EncodeJSON(tbl)
	if err != nil {
		t.Fatal(err)
	}
	got, compiled, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "risk" || got.HitPolicy != Unique || len(got.Rules) != 3 {
		t.Fatalf("decoded: %+v", got)
	}
	d, err := compiled.Eval(expr.MapEnv{"amount": expr.Int(50)})
	if err != nil {
		t.Fatal(err)
	}
	if risk, _ := d.Outputs["risk"].AsString(); risk != "low" {
		t.Errorf("risk = %q", risk)
	}
	if _, _, err := DecodeJSON([]byte("{broken")); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestEmptyRuleIDsNeverCollide(t *testing.T) {
	if _, err := Compile(Table{
		Name: "t", HitPolicy: First, Outputs: []string{"x"},
		Rules: []Rule{
			{Outputs: map[string]string{"x": "1"}},
			{Outputs: map[string]string{"x": "2"}},
		},
	}); err != nil {
		t.Fatalf("empty IDs rejected: %v", err)
	}
}

// TestPriorityShortCircuit verifies the compile-time priority order:
// on an index-covered table the winner is found at the first hit in
// priority order, and ties keep the earliest rule, exactly like the
// linear comparison scan.
func TestPriorityShortCircuit(t *testing.T) {
	tbl := Table{Name: "prio", HitPolicy: Priority, Outputs: []string{"o"}}
	// Overlapping bands so several rules match at once; priorities
	// deliberately not aligned with table order, with a tie at the top.
	prios := []int{1, 5, 3, 5, 2}
	for i, p := range prios {
		tbl.Rules = append(tbl.Rules, Rule{
			Conditions: []string{fmt.Sprintf("v >= %d", i)},
			Outputs:    map[string]string{"o": fmt.Sprintf("%d", i)},
			Priority:   p,
		})
	}
	c := MustCompile(tbl)
	if c.plan == nil || len(c.plan.resid) != 0 {
		t.Fatalf("priority table should be index-covered, plan = %+v", c.plan)
	}
	if want := []int{1, 3, 2, 4, 0}; fmt.Sprint(c.prio) != fmt.Sprint(want) {
		t.Fatalf("prio order = %v, want %v", c.prio, want)
	}
	d, err := c.Eval(expr.MapEnv{"v": expr.Int(10)})
	if err != nil {
		t.Fatal(err)
	}
	// All five match; rules 1 and 3 tie at priority 5 and rule 1 wins.
	if len(d.Matched) != 5 || d.Outputs["o"].String() != "1" {
		t.Fatalf("d = %+v, want all matched with rule 1's outputs", d)
	}
	for v := 0; v <= 6; v++ {
		checkAgainstOracle(t, c, expr.MapEnv{"v": expr.Int(int64(v))}, fmt.Sprintf("v=%d", v))
	}
}

func TestEvalBatchPositional(t *testing.T) {
	c := MustCompile(riskTable(Unique))
	envs := []expr.Env{
		expr.MapEnv{"amount": expr.Int(50)},
		expr.MapEnv{}, // unbound → error
		expr.MapEnv{"amount": expr.Int(5000)},
	}
	ds, errs := c.EvalBatch(envs)
	if len(ds) != 3 || len(errs) != 3 {
		t.Fatalf("got %d/%d results", len(ds), len(errs))
	}
	if errs[0] != nil || ds[0].Outputs["risk"].String() != `"low"` {
		t.Fatalf("batch[0] = %+v, %v", ds[0], errs[0])
	}
	if errs[1] == nil || ds[1] != nil {
		t.Fatalf("batch[1] should fail, got %+v, %v", ds[1], errs[1])
	}
	if errs[2] != nil || ds[2].Outputs["risk"].String() != `"medium"` {
		t.Fatalf("batch[2] = %+v, %v", ds[2], errs[2])
	}
}

// countingEnv counts lookups of "v" — a proxy for how many times a
// condition referencing it was actually evaluated.
type countingEnv struct{ calls *int }

func (e countingEnv) Lookup(name string) (expr.Value, bool) {
	if name == "v" {
		*e.calls++
		return expr.Int(1), true
	}
	return expr.Null, false
}

// TestMemoizationSharesConditionResults proves the per-Eval memo: two
// rules sharing a condition source evaluate it once per call.
func TestMemoizationSharesConditionResults(t *testing.T) {
	calls := 0
	env := countingEnv{calls: &calls}
	c := MustCompile(Table{
		Name: "memo", HitPolicy: Collect, Outputs: []string{"o"},
		// Opaque conditions (so the linear/memoized path runs), the
		// same source on every rule.
		Rules: []Rule{
			{Conditions: []string{"v + 0 == 1"}, Outputs: map[string]string{"o": "1"}},
			{Conditions: []string{"v + 0 == 1"}, Outputs: map[string]string{"o": "2"}},
			{Conditions: []string{"v + 0 == 1"}, Outputs: map[string]string{"o": "3"}},
		},
	})
	d, err := c.Eval(env)
	if err != nil || len(d.Matched) != 3 {
		t.Fatalf("d = %+v, err = %v", d, err)
	}
	if calls != 1 {
		t.Fatalf("shared condition evaluated %d times, want 1 (memoized)", calls)
	}
}

// Property: the risk table is a total, consistent function of amount —
// exactly one rule matches any non-negative amount, and UNIQUE equals
// FIRST and PRIORITY on it.
func TestQuickRiskTableTotal(t *testing.T) {
	u := MustCompile(riskTable(Unique))
	f := MustCompile(riskTable(First))
	p := MustCompile(riskTable(Priority))
	fn := func(raw uint32) bool {
		env := expr.MapEnv{"amount": expr.Int(int64(raw % 100000))}
		du, err1 := u.Eval(env)
		df, err2 := f.Eval(env)
		dp, err3 := p.Eval(env)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return du.Outputs["risk"].Equal(df.Outputs["risk"]) &&
			du.Outputs["risk"].Equal(dp.Outputs["risk"])
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
