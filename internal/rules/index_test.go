package rules

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"bpms/internal/expr"
)

// ---------------------------------------------------------------------------
// Differential harness: the indexed path must agree with the linear
// oracle decision-for-decision AND error-for-error.

func sameError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

func sameOutputs(a, b map[string]expr.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

func sameDecision(a, b *Decision) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.Matched) != len(b.Matched) {
		return false
	}
	for i := range a.Matched {
		if a.Matched[i] != b.Matched[i] {
			return false
		}
	}
	if !sameOutputs(a.Outputs, b.Outputs) {
		return false
	}
	if len(a.List) != len(b.List) {
		return false
	}
	for i := range a.List {
		if !sameOutputs(a.List[i], b.List[i]) {
			return false
		}
	}
	return true
}

func checkAgainstOracle(t *testing.T, c *Compiled, env expr.Env, ctx string) {
	t.Helper()
	want, wantErr := c.EvalLinear(env)
	got, gotErr := c.Eval(env)
	if !sameError(wantErr, gotErr) {
		t.Fatalf("%s: error mismatch\n  linear:  %v\n  indexed: %v", ctx, wantErr, gotErr)
	}
	if !sameDecision(want, got) {
		t.Fatalf("%s: decision mismatch\n  linear:  %+v\n  indexed: %+v", ctx, want, got)
	}
}

// ---------------------------------------------------------------------------
// Randomized table generator: mixed equality/range/opaque cells over a
// small value domain so matches, ties, contradictions, and evaluation
// errors all occur with useful frequency.

var genPolicies = []HitPolicy{Unique, First, Any, Priority, Collect, RuleOrder}

func randCond(r *rand.Rand) string {
	vars := []string{"a", "b", "s"}
	v := vars[r.Intn(len(vars))]
	ops := []string{"<", "<=", ">", ">="}
	switch r.Intn(14) {
	case 0:
		return "-"
	case 1:
		return fmt.Sprintf("%s == %d", v, r.Intn(6))
	case 2:
		return fmt.Sprintf("%d == %s", r.Intn(6), v)
	case 3:
		return fmt.Sprintf(`s == "x%d"`, r.Intn(4))
	case 4:
		return fmt.Sprintf("%s in [%d, %d, %d]", v, r.Intn(6), r.Intn(6), r.Intn(6))
	case 5:
		return fmt.Sprintf(`s in ["x%d", "x%d"]`, r.Intn(4), r.Intn(4))
	case 6:
		return fmt.Sprintf("%s %s %d", v, ops[r.Intn(4)], r.Intn(6))
	case 7:
		return fmt.Sprintf("%d %s %s", r.Intn(6), ops[r.Intn(4)], v)
	case 8:
		return fmt.Sprintf("%s %s %.1f", v, ops[r.Intn(4)], r.Float64()*6)
	case 9:
		lo := r.Intn(5)
		return fmt.Sprintf("%s >= %d && %s < %d", v, lo, v, lo+1+r.Intn(3))
	case 10:
		return fmt.Sprintf(`s %s "x%d"`, ops[r.Intn(4)], r.Intn(4))
	case 11:
		// Contradictions and cross-class combinations: unsat or
		// linear-only, depending on classes.
		switch r.Intn(3) {
		case 0:
			return fmt.Sprintf("%s == %d && %s == %d", v, r.Intn(4), v, r.Intn(4))
		case 1:
			return fmt.Sprintf(`%s == %d && %s < "x9"`, v, r.Intn(4), v)
		default:
			return v + " in []"
		}
	case 12:
		// Opaque: negation, arithmetic, two variables, functions.
		switch r.Intn(4) {
		case 0:
			return fmt.Sprintf("%s != %d", v, r.Intn(6))
		case 1:
			return fmt.Sprintf("%s + 0 == %d", v, r.Intn(6))
		case 2:
			return "a > b"
		default:
			return "len(s) >= 2"
		}
	default:
		return fmt.Sprintf("%s == %d", v, r.Intn(6))
	}
}

func randOutput(r *rand.Rand, ri int) string {
	switch r.Intn(5) {
	case 0:
		return `"k"` // constant: lets ANY agree
	case 1:
		return "a" // env-dependent (may be unbound)
	case 2:
		return "10 / (a - 3)" // errors when a == 3
	default:
		return fmt.Sprintf("%d", ri)
	}
}

func randTable(r *rand.Rand, iter int) Table {
	n := 1 + r.Intn(12)
	t := Table{
		Name:      fmt.Sprintf("fuzz-%d", iter),
		HitPolicy: genPolicies[iter%len(genPolicies)],
		Outputs:   []string{"o1", "o2"},
	}
	for ri := 0; ri < n; ri++ {
		rule := Rule{Priority: r.Intn(4)}
		for k := r.Intn(3); k > 0; k-- {
			rule.Conditions = append(rule.Conditions, randCond(r))
		}
		rule.Outputs = map[string]string{
			"o1": randOutput(r, ri),
			"o2": `"v"`,
		}
		t.Rules = append(t.Rules, rule)
	}
	return t
}

func randEnv(r *rand.Rand) expr.MapEnv {
	env := expr.MapEnv{}
	for _, v := range []string{"a", "b", "s"} {
		switch r.Intn(10) {
		case 0:
			// unbound
		case 1:
			env[v] = expr.Float(r.Float64() * 6)
		case 2:
			env[v] = expr.String(fmt.Sprintf("x%d", r.Intn(4)))
		case 3:
			env[v] = expr.Bool(r.Intn(2) == 0)
		case 4:
			if r.Intn(2) == 0 {
				env[v] = expr.Null
			} else {
				env[v] = expr.Int(int64(r.Intn(6)))
			}
		default:
			env[v] = expr.Int(int64(r.Intn(6)))
		}
	}
	// s is usually a string so string predicates get real coverage.
	if r.Intn(4) != 0 {
		env["s"] = expr.String(fmt.Sprintf("x%d", r.Intn(4)))
	}
	return env
}

func TestDifferentialRandomTables(t *testing.T) {
	r := rand.New(rand.NewSource(1503))
	for iter := 0; iter < 600; iter++ {
		tbl := randTable(r, iter)
		c, err := Compile(tbl)
		if err != nil {
			t.Fatalf("iter %d: Compile: %v", iter, err)
		}
		for e := 0; e < 15; e++ {
			env := randEnv(r)
			checkAgainstOracle(t, c, env, fmt.Sprintf("iter %d (%s) env %v", iter, tbl.HitPolicy, env))
		}
	}
}

func TestDifferentialEvalBatch(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 60; iter++ {
		tbl := randTable(r, iter)
		c, err := Compile(tbl)
		if err != nil {
			t.Fatalf("iter %d: Compile: %v", iter, err)
		}
		envs := make([]expr.Env, 25)
		for i := range envs {
			envs[i] = randEnv(r)
		}
		ds, errs := c.EvalBatch(envs)
		for i, env := range envs {
			want, wantErr := c.EvalLinear(env)
			if !sameError(wantErr, errs[i]) {
				t.Fatalf("iter %d env %d: error mismatch: linear %v, batch %v", iter, i, wantErr, errs[i])
			}
			if !sameDecision(want, ds[i]) {
				t.Fatalf("iter %d env %d: decision mismatch: linear %+v, batch %+v", iter, i, want, ds[i])
			}
		}
	}
}

// TestConcurrentIndexedEval hammers one compiled table from many
// goroutines (meaningful under -race: the CI test job runs the suite
// with the race detector) and checks every result against expectations
// computed serially by the oracle.
func TestConcurrentIndexedEval(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tbl := randTable(r, 3) // Priority policy slot, via iter%6
	tbl.HitPolicy = First
	c := MustCompile(tbl)
	const envsN = 64
	envs := make([]expr.MapEnv, envsN)
	type expectation struct {
		d   *Decision
		err error
	}
	want := make([]expectation, envsN)
	for i := range envs {
		envs[i] = randEnv(r)
		want[i].d, want[i].err = c.EvalLinear(envs[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				i := (g + k) % envsN
				d, err := c.Eval(envs[i])
				if !sameError(want[i].err, err) || !sameDecision(want[i].d, d) {
					t.Errorf("goroutine %d env %d: got (%+v, %v), want (%+v, %v)", g, i, d, err, want[i].d, want[i].err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Handcrafted exactness cases for the fallback and merge machinery.

func eqTable(policy HitPolicy, n int) Table {
	t := Table{Name: "eq", HitPolicy: policy, Outputs: []string{"o"}}
	for i := 0; i < n; i++ {
		t.Rules = append(t.Rules, Rule{
			Conditions: []string{fmt.Sprintf("v == %d", i)},
			Outputs:    map[string]string{"o": fmt.Sprintf("%d", i)},
			Priority:   i,
		})
	}
	return t
}

func TestIndexedEqTableAllPolicies(t *testing.T) {
	for _, p := range genPolicies {
		c := MustCompile(eqTable(p, 50))
		for v := -1; v <= 50; v++ {
			checkAgainstOracle(t, c, expr.MapEnv{"v": expr.Int(int64(v))}, fmt.Sprintf("policy %s v=%d", p, v))
		}
	}
}

func TestUnboundColumnFallsBack(t *testing.T) {
	c := MustCompile(eqTable(First, 10))
	_, err := c.Eval(expr.MapEnv{})
	if err == nil || !strings.Contains(err.Error(), `unbound variable "v"`) {
		t.Fatalf("got %v, want unbound-variable error from the linear path", err)
	}
	checkAgainstOracle(t, c, expr.MapEnv{}, "unbound")
}

func TestResidErrorBeforeCandidate(t *testing.T) {
	// Rule 0 is opaque and errors (unbound variable inside arithmetic);
	// rule 1 is indexed and matches. The linear scan dies at rule 0, so
	// the indexed path must too — not return rule 1's match.
	c := MustCompile(Table{
		Name: "resid-err", HitPolicy: First, Outputs: []string{"o"},
		Rules: []Rule{
			{Conditions: []string{"missing + 0 > 1"}, Outputs: map[string]string{"o": "0"}},
			{Conditions: []string{"a == 1"}, Outputs: map[string]string{"o": "1"}},
		},
	})
	env := expr.MapEnv{"a": expr.Int(1)}
	_, err := c.Eval(env)
	if err == nil || !strings.Contains(err.Error(), "rule 0") {
		t.Fatalf("got %v, want rule 0 evaluation error", err)
	}
	checkAgainstOracle(t, c, env, "resid error")
}

func TestMixedClassColumnFallsBack(t *testing.T) {
	// Rule 0 matches numerically; rule 1 would raise a type error when
	// reached with a number. FIRST stops at rule 0, so no error — and
	// with a string input rule 1's comparison errors only after rule 0
	// failed. Both orderings must survive indexing.
	c := MustCompile(Table{
		Name: "mixed", HitPolicy: First, Outputs: []string{"o"},
		Rules: []Rule{
			{Conditions: []string{"a < 5"}, Outputs: map[string]string{"o": "0"}},
			{Conditions: []string{`a < "m"`}, Outputs: map[string]string{"o": "1"}},
		},
	})
	for _, env := range []expr.MapEnv{
		{"a": expr.Int(3)},
		{"a": expr.Int(7)},
		{"a": expr.String("f")},
		{"a": expr.String("z")},
	} {
		checkAgainstOracle(t, c, env, fmt.Sprintf("env %v", env))
	}
}

func TestLargeIntFloatImageCollision(t *testing.T) {
	// 2^53 and 2^53+1 share a float64 image; the equality buckets must
	// separate them via exact Value.Equal verification.
	const big = int64(1) << 53
	c := MustCompile(Table{
		Name: "bigint", HitPolicy: First, Outputs: []string{"o"},
		Rules: []Rule{
			{Conditions: []string{fmt.Sprintf("v == %d", big)}, Outputs: map[string]string{"o": "0"}},
			{Conditions: []string{fmt.Sprintf("v == %d", big+1)}, Outputs: map[string]string{"o": "1"}},
		},
	})
	d, err := c.Eval(expr.MapEnv{"v": expr.Int(big + 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Matched) != 1 || d.Matched[0] != 1 {
		t.Fatalf("matched %v, want [1]", d.Matched)
	}
	checkAgainstOracle(t, c, expr.MapEnv{"v": expr.Int(big)}, "2^53")
	checkAgainstOracle(t, c, expr.MapEnv{"v": expr.Int(big + 1)}, "2^53+1")
}

func TestContradictionAndEmptyIn(t *testing.T) {
	c := MustCompile(Table{
		Name: "unsat", HitPolicy: Collect, Outputs: []string{"o"},
		Rules: []Rule{
			{Conditions: []string{"v == 1 && v == 2"}, Outputs: map[string]string{"o": "0"}},
			{Conditions: []string{"v in []"}, Outputs: map[string]string{"o": "1"}},
			{Conditions: []string{"v >= 0"}, Outputs: map[string]string{"o": "2"}},
		},
	})
	for v := 0; v <= 3; v++ {
		env := expr.MapEnv{"v": expr.Int(int64(v))}
		d, err := c.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Matched) != 1 || d.Matched[0] != 2 {
			t.Fatalf("v=%d: matched %v, want [2]", v, d.Matched)
		}
		checkAgainstOracle(t, c, env, fmt.Sprintf("v=%d", v))
	}
}

func TestCatchAllRuleInRestSets(t *testing.T) {
	// A rule with no conditions is indexable with no atoms: it must sit
	// in every column's rest set and match any probe.
	c := MustCompile(Table{
		Name: "catchall", HitPolicy: First, Outputs: []string{"o"},
		Rules: []Rule{
			{Conditions: []string{"v == 1"}, Outputs: map[string]string{"o": "0"}},
			{Conditions: []string{"-"}, Outputs: map[string]string{"o": "1"}},
		},
	})
	for _, v := range []expr.Value{expr.Int(1), expr.Int(9), expr.String("x"), expr.Bool(true)} {
		checkAgainstOracle(t, c, expr.MapEnv{"v": v}, v.String())
	}
}

func TestRangeBandsUnique(t *testing.T) {
	t.Run("bounded", func(t *testing.T) {
		tbl := Table{Name: "bands", HitPolicy: Unique, Outputs: []string{"o"}}
		for i := 0; i < 40; i++ {
			tbl.Rules = append(tbl.Rules, Rule{
				Conditions: []string{fmt.Sprintf("v >= %d && v < %d", i*10, (i+1)*10)},
				Outputs:    map[string]string{"o": fmt.Sprintf("%d", i)},
			})
		}
		c := MustCompile(tbl)
		for v := -5; v < 405; v += 3 {
			checkAgainstOracle(t, c, expr.MapEnv{"v": expr.Int(int64(v))}, fmt.Sprintf("v=%d", v))
		}
		checkAgainstOracle(t, c, expr.MapEnv{"v": expr.Float(99.5)}, "float probe")
	})
	t.Run("one-sided", func(t *testing.T) {
		tbl := Table{Name: "thresholds", HitPolicy: Collect, Outputs: []string{"o"}}
		for i := 0; i < 20; i++ {
			cond := fmt.Sprintf("v >= %d", i*5)
			if i%2 == 0 {
				cond = fmt.Sprintf("v < %d", i*7)
			}
			tbl.Rules = append(tbl.Rules, Rule{
				Conditions: []string{cond},
				Outputs:    map[string]string{"o": fmt.Sprintf("%d", i)},
			})
		}
		c := MustCompile(tbl)
		for v := -10; v < 150; v += 2 {
			checkAgainstOracle(t, c, expr.MapEnv{"v": expr.Int(int64(v))}, fmt.Sprintf("v=%d", v))
		}
	})
}

func TestStringRangeIndex(t *testing.T) {
	tbl := Table{Name: "strbands", HitPolicy: First, Outputs: []string{"o"}}
	for i := 0; i < 10; i++ {
		tbl.Rules = append(tbl.Rules, Rule{
			Conditions: []string{fmt.Sprintf(`v >= "g%d" && v < "g%d"`, i, i+1)},
			Outputs:    map[string]string{"o": fmt.Sprintf("%d", i)},
		})
	}
	c := MustCompile(tbl)
	for i := 0; i < 12; i++ {
		checkAgainstOracle(t, c, expr.MapEnv{"v": expr.String(fmt.Sprintf("g%d", i))}, fmt.Sprintf("g%d", i))
		checkAgainstOracle(t, c, expr.MapEnv{"v": expr.String(fmt.Sprintf("g%dx", i))}, fmt.Sprintf("g%dx", i))
	}
	checkAgainstOracle(t, c, expr.MapEnv{"v": expr.Int(3)}, "numeric probe of string column")
}

func TestUniqueViolationPairMatchesLinear(t *testing.T) {
	// UNIQUE must report the same (first, second) pair the linear scan
	// does, with a residual rule sitting between the two indexed hits.
	c := MustCompile(Table{
		Name: "upair", HitPolicy: Unique, Outputs: []string{"o"},
		Rules: []Rule{
			{Conditions: []string{"v == 1"}, Outputs: map[string]string{"o": "0"}},
			{Conditions: []string{"v != 0"}, Outputs: map[string]string{"o": "1"}}, // residual
			{Conditions: []string{"v >= 1"}, Outputs: map[string]string{"o": "2"}},
		},
	})
	env := expr.MapEnv{"v": expr.Int(1)}
	_, err := c.Eval(env)
	if !errors.Is(err, ErrNotUnique) || !strings.Contains(err.Error(), "rules 0 and 1") {
		t.Fatalf("got %v, want ErrNotUnique for rules 0 and 1", err)
	}
	checkAgainstOracle(t, c, env, "unique pair")
}

func TestPlanCoverage(t *testing.T) {
	// White-box: the equality table is fully indexed, opaque rules land
	// in resid, and a fully opaque table has no plan at all.
	c := MustCompile(eqTable(First, 8))
	if c.plan == nil || len(c.plan.resid) != 0 || c.plan.indexed.count() != 8 {
		t.Fatalf("eq table plan = %+v, want 8 indexed / 0 resid", c.plan)
	}
	c = MustCompile(Table{
		Name: "opaque", HitPolicy: First, Outputs: []string{"o"},
		Rules: []Rule{{Conditions: []string{"v != 1"}, Outputs: map[string]string{"o": "0"}}},
	})
	if c.plan != nil {
		t.Fatalf("fully opaque table built a plan: %+v", c.plan)
	}
	c = MustCompile(Table{
		Name: "split", HitPolicy: First, Outputs: []string{"o"},
		Rules: []Rule{
			{Conditions: []string{"v == 1"}, Outputs: map[string]string{"o": "0"}},
			{Conditions: []string{"v != 1"}, Outputs: map[string]string{"o": "1"}},
		},
	})
	if c.plan == nil || len(c.plan.resid) != 1 || c.plan.resid[0] != 1 {
		t.Fatalf("split plan = %+v, want resid [1]", c.plan)
	}
}
