// Package rules implements the business-rules component of the BPMS:
// decision tables evaluated over case data, with the DMN hit policies
// (UNIQUE, FIRST, ANY, PRIORITY, COLLECT, RULE ORDER). Tables compile
// their condition and output cells to expression programs once and are
// then safe for concurrent evaluation; the engine invokes tables from
// script tasks and gateway conditions, and they are benchmarked in
// experiments T7 and T15.
//
// Compile additionally builds a column index over every rule whose
// conditions decompose into `var == literal` / `var <op> literal`
// atoms (see index.go), so Eval on large equality- or range-dominated
// tables probes candidate sets instead of scanning all rules. The
// linear scan remains, exactly as before, as the fallback for opaque
// conditions and as the differential-test oracle (EvalLinear).
package rules

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bpms/internal/expr"
	"bpms/internal/obs"
)

// HitPolicy selects how multiple matching rules combine.
type HitPolicy string

// DMN hit policies.
const (
	// Unique requires exactly one rule to match.
	Unique HitPolicy = "UNIQUE"
	// First returns the first matching rule in table order.
	First HitPolicy = "FIRST"
	// Any allows multiple matches provided they agree on the outputs.
	Any HitPolicy = "ANY"
	// Priority returns the matching rule with the highest priority.
	Priority HitPolicy = "PRIORITY"
	// Collect returns the outputs of every matching rule.
	Collect HitPolicy = "COLLECT"
	// RuleOrder returns all matches in table order (same as Collect
	// for this engine, which always evaluates in table order).
	RuleOrder HitPolicy = "RULE ORDER"
)

func (h HitPolicy) valid() bool {
	switch h {
	case Unique, First, Any, Priority, Collect, RuleOrder:
		return true
	}
	return false
}

func (h HitPolicy) multi() bool { return h == Collect || h == RuleOrder }

// Rule is one row of a decision table. All conditions must hold for
// the rule to match; an empty condition list matches everything.
type Rule struct {
	ID string `json:"id,omitempty"`
	// Conditions are boolean expressions over case data; all must be
	// true ("-" and "" cells are omitted).
	Conditions []string `json:"conditions,omitempty"`
	// Outputs maps output names to value expressions.
	Outputs map[string]string `json:"outputs"`
	// Priority orders rules for the PRIORITY hit policy (higher wins).
	Priority int `json:"priority,omitempty"`
}

// Table is a decision table definition.
type Table struct {
	Name      string    `json:"name"`
	HitPolicy HitPolicy `json:"hitPolicy"`
	// Outputs declares the output names every rule must produce.
	Outputs []string `json:"outputs"`
	Rules   []Rule   `json:"rules"`
}

// Errors returned by evaluation.
var (
	ErrNoMatch       = errors.New("rules: no rule matched")
	ErrNotUnique     = errors.New("rules: multiple rules matched under UNIQUE")
	ErrAnyDisagree   = errors.New("rules: matching rules disagree under ANY")
	ErrBadDefinition = errors.New("rules: invalid table definition")
)

// Compiled is a validated, compiled decision table, safe for
// concurrent evaluation.
type Compiled struct {
	table Table
	conds [][]*expr.Program
	outs  []map[string]*expr.Program

	// plan is the column index over fully-indexable rules (nil when
	// no rule is indexable — Eval then always runs the linear scan).
	plan *plan
	// prio holds rule indices sorted by priority descending (table
	// order breaking ties), built for PRIORITY tables so an
	// index-covered Eval stops at the first hit in priority order.
	prio []int

	pool  sync.Pool // *evalState
	hands atomic.Pointer[tableHandles]
}

// Compile validates the table and compiles every cell.
func Compile(t Table) (*Compiled, error) {
	if !t.HitPolicy.valid() {
		return nil, fmt.Errorf("%w: unknown hit policy %q", ErrBadDefinition, t.HitPolicy)
	}
	if len(t.Outputs) == 0 {
		return nil, fmt.Errorf("%w: table %q has no outputs", ErrBadDefinition, t.Name)
	}
	if len(t.Rules) == 0 {
		return nil, fmt.Errorf("%w: table %q has no rules", ErrBadDefinition, t.Name)
	}
	seenOut := make(map[string]bool, len(t.Outputs))
	for _, name := range t.Outputs {
		if seenOut[name] {
			return nil, fmt.Errorf("%w: table %q declares output %q twice", ErrBadDefinition, t.Name, name)
		}
		seenOut[name] = true
	}
	c := &Compiled{table: t}
	seenID := make(map[string]int, len(t.Rules))
	for ri, r := range t.Rules {
		if r.ID != "" {
			if prev, dup := seenID[r.ID]; dup {
				return nil, fmt.Errorf("%w: table %q rules %d and %d share id %q", ErrBadDefinition, t.Name, prev, ri, r.ID)
			}
			seenID[r.ID] = ri
		}
		var conds []*expr.Program
		for ci, src := range r.Conditions {
			if src == "" || src == "-" {
				continue
			}
			// The shared cache deduplicates programs across tables and
			// recompilations of the same table (rule sets are routinely
			// re-deployed with most cells unchanged). Program identity
			// is also the per-Eval memoization key.
			p, err := expr.Cached(src)
			if err != nil {
				return nil, fmt.Errorf("%w: rule %d condition %d: %v", ErrBadDefinition, ri, ci, err)
			}
			conds = append(conds, p)
		}
		c.conds = append(c.conds, conds)
		outs := make(map[string]*expr.Program, len(t.Outputs))
		for _, name := range t.Outputs {
			src, ok := r.Outputs[name]
			if !ok {
				return nil, fmt.Errorf("%w: rule %d missing output %q", ErrBadDefinition, ri, name)
			}
			p, err := expr.Cached(src)
			if err != nil {
				return nil, fmt.Errorf("%w: rule %d output %q: %v", ErrBadDefinition, ri, name, err)
			}
			outs[name] = p
		}
		c.outs = append(c.outs, outs)
	}
	c.plan = buildPlan(c)
	if t.HitPolicy == Priority {
		c.prio = make([]int, len(t.Rules))
		for i := range c.prio {
			c.prio[i] = i
		}
		sort.Slice(c.prio, func(a, b int) bool {
			pa, pb := t.Rules[c.prio[a]].Priority, t.Rules[c.prio[b]].Priority
			if pa != pb {
				return pa > pb
			}
			return c.prio[a] < c.prio[b]
		})
	}
	return c, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(t Table) *Compiled {
	c, err := Compile(t)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the table name.
func (c *Compiled) Name() string { return c.table.Name }

// Decision is the result of evaluating a table.
type Decision struct {
	// Matched lists the indices of matching rules, in table order.
	Matched []int
	// Outputs holds the decided values for single-result policies
	// (UNIQUE, FIRST, ANY, PRIORITY).
	Outputs map[string]expr.Value
	// List holds one output map per match for COLLECT / RULE ORDER.
	List []map[string]expr.Value
}

// ---------------------------------------------------------------------------
// Observability

var (
	obsMetrics atomic.Pointer[obs.Metrics]
	obsGen     atomic.Uint64
)

// SetMetrics wires decision-table evaluation to an observability
// registry (nil detaches). Compiled tables pick the change up lazily
// on their next Eval; handles are pre-resolved once per table per
// registry generation so the hot path stays a few atomic loads.
func SetMetrics(m *obs.Metrics) {
	obsMetrics.Store(m)
	obsGen.Add(1)
}

// tableHandles are one table's pre-resolved instruments (all nil-safe
// when detached).
type tableHandles struct {
	gen     uint64
	eval    *obs.Histogram
	match   *obs.Counter
	noMatch *obs.Counter
	errs    *obs.Counter
}

func (h *tableHandles) count(err error) {
	switch {
	case err == nil:
		h.match.Inc()
	case errors.Is(err, ErrNoMatch):
		h.noMatch.Inc()
	default:
		h.errs.Inc()
	}
}

func (c *Compiled) handles() *tableHandles {
	gen := obsGen.Load()
	if h := c.hands.Load(); h != nil && h.gen == gen {
		return h
	}
	h := &tableHandles{gen: gen}
	if m := obsMetrics.Load(); m != nil {
		rm := m.Rules()
		h.eval = rm.Eval
		h.match = rm.Decisions(c.table.Name, "match")
		h.noMatch = rm.Decisions(c.table.Name, "no_match")
		h.errs = rm.Decisions(c.table.Name, "error")
	}
	c.hands.Store(h)
	return h
}

// ---------------------------------------------------------------------------
// Evaluation state (probe buffers + per-call predicate memo)

// evalState carries the reusable buffers of one evaluation: candidate
// bitsets for the index probe and the per-call predicate memo. Cells
// compiled from the same source share one *expr.Program (expr.Cached),
// so the memo evaluates each distinct condition at most once per env;
// expression functions are pure, making the reuse exact — including
// reusing an error result.
type evalState struct {
	cand, tmp bitset
	memo      map[*expr.Program]condResult
}

type condResult struct {
	hit bool
	err error
}

func (st *evalState) reset() {
	if st.memo != nil {
		clear(st.memo)
	}
}

func (st *evalState) evalBool(p *expr.Program, env expr.Env) (bool, error) {
	if st == nil {
		return p.EvalBool(env)
	}
	if r, ok := st.memo[p]; ok {
		return r.hit, r.err
	}
	hit, err := p.EvalBool(env)
	if st.memo == nil {
		st.memo = make(map[*expr.Program]condResult, 16)
	}
	st.memo[p] = condResult{hit: hit, err: err}
	return hit, err
}

func (c *Compiled) getState() *evalState {
	if v := c.pool.Get(); v != nil {
		st := v.(*evalState)
		st.reset()
		return st
	}
	words := 0
	if c.plan != nil {
		words = len(c.plan.indexed)
	}
	return &evalState{cand: make(bitset, words), tmp: make(bitset, words)}
}

func (c *Compiled) putState(st *evalState) { c.pool.Put(st) }

// ---------------------------------------------------------------------------
// Eval

// Eval evaluates the table against env: through the column index when
// the plan covers this input (see index.go), otherwise via the
// memoized linear scan. Both paths return identical decisions and
// errors.
func (c *Compiled) Eval(env expr.Env) (*Decision, error) {
	h := c.handles()
	t0 := h.eval.Start()
	st := c.getState()
	d, err := c.evalWith(env, st)
	c.putState(st)
	h.eval.Since(t0)
	h.count(err)
	return d, err
}

// EvalBatch evaluates the table against every env, reusing the probe
// buffers and recycling one memo table across the batch — the bulk
// entry point for rules-task call sites that score many cases against
// one table. Results are positional: decisions[i] / errs[i] belong to
// envs[i], and an error for one env never affects the others.
func (c *Compiled) EvalBatch(envs []expr.Env) ([]*Decision, []error) {
	h := c.handles()
	decisions := make([]*Decision, len(envs))
	errs := make([]error, len(envs))
	st := c.getState()
	for i, env := range envs {
		if i > 0 {
			st.reset()
		}
		t0 := h.eval.Start()
		decisions[i], errs[i] = c.evalWith(env, st)
		h.eval.Since(t0)
		h.count(errs[i])
	}
	c.putState(st)
	return decisions, errs
}

// EvalLinear evaluates via the original unindexed row scan, with no
// memoization. It is retained as the differential-test oracle and the
// benchmark baseline for the indexed path.
func (c *Compiled) EvalLinear(env expr.Env) (*Decision, error) {
	return c.evalLinear(env, nil)
}

func (c *Compiled) evalWith(env expr.Env, st *evalState) (*Decision, error) {
	if c.plan != nil && c.probe(env, st) {
		return c.evalIndexed(env, st)
	}
	return c.evalLinear(env, st)
}

// evalLinear is the table-order scan; st may be nil (oracle mode) to
// disable memoization.
func (c *Compiled) evalLinear(env expr.Env, st *evalState) (*Decision, error) {
	var matched []int
	for ri := range c.table.Rules {
		ok := true
		for _, cond := range c.conds[ri] {
			hit, err := st.evalBool(cond, env)
			if err != nil {
				return nil, fmt.Errorf("rules: table %q rule %d: %w", c.table.Name, ri, err)
			}
			if !hit {
				ok = false
				break
			}
		}
		if ok {
			matched = append(matched, ri)
			if c.table.HitPolicy == First && len(matched) == 1 {
				break
			}
			if c.table.HitPolicy == Unique && len(matched) > 1 {
				return nil, fmt.Errorf("%w: table %q rules %d and %d", ErrNotUnique, c.table.Name, matched[0], matched[1])
			}
		}
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("%w: table %q", ErrNoMatch, c.table.Name)
	}
	pick := matched[0]
	if c.table.HitPolicy == Priority {
		for _, ri := range matched[1:] {
			if c.table.Rules[ri].Priority > c.table.Rules[pick].Priority {
				pick = ri
			}
		}
	}
	return c.decide(matched, pick, env)
}

// evalIndexed walks the probe's candidate set merged with the
// residual (non-indexable) rules in table order. Candidates match by
// construction; residual rules evaluate through the memo. The merge
// preserves the linear scan's ordering guarantees — which rule a
// FIRST stops at, which pair UNIQUE reports, and which residual
// condition errors first.
func (c *Compiled) evalIndexed(env expr.Env, st *evalState) (*Decision, error) {
	hp := c.table.HitPolicy
	resid := c.plan.resid

	if hp == Priority && len(resid) == 0 {
		// Index-covered PRIORITY: matches come straight from the
		// candidate bitset, and the compile-time priority order finds
		// the winner at its first hit instead of comparing every match.
		var matched []int
		for ri := st.cand.next(0); ri >= 0; ri = st.cand.next(ri + 1) {
			matched = append(matched, ri)
		}
		if len(matched) == 0 {
			return nil, fmt.Errorf("%w: table %q", ErrNoMatch, c.table.Name)
		}
		pick := matched[0]
		for _, ri := range c.prio {
			if st.cand.has(ri) {
				pick = ri
				break
			}
		}
		return c.decide(matched, pick, env)
	}

	var matched []int
	pick, best := -1, 0
	nextCand := st.cand.next(0)
	rj := 0
	for nextCand >= 0 || rj < len(resid) {
		ri := 0
		isCand := false
		if nextCand >= 0 && (rj >= len(resid) || nextCand < resid[rj]) {
			ri, isCand = nextCand, true
			nextCand = st.cand.next(nextCand + 1)
		} else {
			ri = resid[rj]
			rj++
		}
		if !isCand {
			hit := true
			for _, cond := range c.conds[ri] {
				h, err := st.evalBool(cond, env)
				if err != nil {
					return nil, fmt.Errorf("rules: table %q rule %d: %w", c.table.Name, ri, err)
				}
				if !h {
					hit = false
					break
				}
			}
			if !hit {
				continue
			}
		}
		matched = append(matched, ri)
		if hp == Priority && (pick < 0 || c.table.Rules[ri].Priority > best) {
			pick, best = ri, c.table.Rules[ri].Priority
		}
		if hp == First {
			break
		}
		if hp == Unique && len(matched) > 1 {
			return nil, fmt.Errorf("%w: table %q rules %d and %d", ErrNotUnique, c.table.Name, matched[0], matched[1])
		}
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("%w: table %q", ErrNoMatch, c.table.Name)
	}
	p := matched[0]
	if hp == Priority {
		p = pick
	}
	return c.decide(matched, p, env)
}

// decide turns the matched set into a Decision. pick is the rule
// whose outputs single-result policies return (ignored for ANY and
// the multi policies).
func (c *Compiled) decide(matched []int, pick int, env expr.Env) (*Decision, error) {
	d := &Decision{Matched: matched}
	if c.table.HitPolicy.multi() {
		for _, ri := range matched {
			out, err := c.evalOutputs(ri, env)
			if err != nil {
				return nil, err
			}
			d.List = append(d.List, out)
		}
		return d, nil
	}
	if c.table.HitPolicy == Any {
		first, err := c.evalOutputs(matched[0], env)
		if err != nil {
			return nil, err
		}
		for _, ri := range matched[1:] {
			other, err := c.evalOutputs(ri, env)
			if err != nil {
				return nil, err
			}
			// Compare in declared-output order so which output a
			// disagreement reports is deterministic.
			for _, k := range c.table.Outputs {
				if !first[k].Equal(other[k]) {
					return nil, fmt.Errorf("%w: table %q output %q", ErrAnyDisagree, c.table.Name, k)
				}
			}
		}
		d.Outputs = first
		return d, nil
	}
	out, err := c.evalOutputs(pick, env)
	if err != nil {
		return nil, err
	}
	d.Outputs = out
	return d, nil
}

func (c *Compiled) evalOutputs(ri int, env expr.Env) (map[string]expr.Value, error) {
	out := make(map[string]expr.Value, len(c.outs[ri]))
	// Declared order, not map order: which output's error surfaces
	// must not vary between calls.
	for _, name := range c.table.Outputs {
		v, err := c.outs[ri][name].Eval(env)
		if err != nil {
			return nil, fmt.Errorf("rules: table %q rule %d output %q: %w", c.table.Name, ri, name, err)
		}
		out[name] = v
	}
	return out, nil
}

// EncodeJSON serialises the table definition.
func EncodeJSON(t Table) ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// DecodeJSON parses and compiles a table from JSON, returning both the
// definition and the compiled form.
func DecodeJSON(data []byte) (Table, *Compiled, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return Table{}, nil, fmt.Errorf("rules: decode: %w", err)
	}
	c, err := Compile(t)
	if err != nil {
		return Table{}, nil, err
	}
	return t, c, nil
}
