// Package rules implements the business-rules component of the BPMS:
// decision tables evaluated over case data, with the DMN hit policies
// (UNIQUE, FIRST, ANY, PRIORITY, COLLECT, RULE ORDER). Tables compile
// their condition and output cells to expression programs once and are
// then safe for concurrent evaluation; the engine invokes tables from
// script tasks and gateway conditions, and they are benchmarked in
// experiment T7.
package rules

import (
	"encoding/json"
	"errors"
	"fmt"

	"bpms/internal/expr"
)

// HitPolicy selects how multiple matching rules combine.
type HitPolicy string

// DMN hit policies.
const (
	// Unique requires exactly one rule to match.
	Unique HitPolicy = "UNIQUE"
	// First returns the first matching rule in table order.
	First HitPolicy = "FIRST"
	// Any allows multiple matches provided they agree on the outputs.
	Any HitPolicy = "ANY"
	// Priority returns the matching rule with the highest priority.
	Priority HitPolicy = "PRIORITY"
	// Collect returns the outputs of every matching rule.
	Collect HitPolicy = "COLLECT"
	// RuleOrder returns all matches in table order (same as Collect
	// for this engine, which always evaluates in table order).
	RuleOrder HitPolicy = "RULE ORDER"
)

func (h HitPolicy) valid() bool {
	switch h {
	case Unique, First, Any, Priority, Collect, RuleOrder:
		return true
	}
	return false
}

func (h HitPolicy) multi() bool { return h == Collect || h == RuleOrder }

// Rule is one row of a decision table. All conditions must hold for
// the rule to match; an empty condition list matches everything.
type Rule struct {
	ID string `json:"id,omitempty"`
	// Conditions are boolean expressions over case data; all must be
	// true ("-" and "" cells are omitted).
	Conditions []string `json:"conditions,omitempty"`
	// Outputs maps output names to value expressions.
	Outputs map[string]string `json:"outputs"`
	// Priority orders rules for the PRIORITY hit policy (higher wins).
	Priority int `json:"priority,omitempty"`
}

// Table is a decision table definition.
type Table struct {
	Name      string    `json:"name"`
	HitPolicy HitPolicy `json:"hitPolicy"`
	// Outputs declares the output names every rule must produce.
	Outputs []string `json:"outputs"`
	Rules   []Rule   `json:"rules"`
}

// Errors returned by evaluation.
var (
	ErrNoMatch       = errors.New("rules: no rule matched")
	ErrNotUnique     = errors.New("rules: multiple rules matched under UNIQUE")
	ErrAnyDisagree   = errors.New("rules: matching rules disagree under ANY")
	ErrBadDefinition = errors.New("rules: invalid table definition")
)

// Compiled is a validated, compiled decision table, safe for
// concurrent evaluation.
type Compiled struct {
	table Table
	conds [][]*expr.Program
	outs  []map[string]*expr.Program
}

// Compile validates the table and compiles every cell.
func Compile(t Table) (*Compiled, error) {
	if !t.HitPolicy.valid() {
		return nil, fmt.Errorf("%w: unknown hit policy %q", ErrBadDefinition, t.HitPolicy)
	}
	if len(t.Outputs) == 0 {
		return nil, fmt.Errorf("%w: table %q has no outputs", ErrBadDefinition, t.Name)
	}
	if len(t.Rules) == 0 {
		return nil, fmt.Errorf("%w: table %q has no rules", ErrBadDefinition, t.Name)
	}
	c := &Compiled{table: t}
	for ri, r := range t.Rules {
		var conds []*expr.Program
		for ci, src := range r.Conditions {
			if src == "" || src == "-" {
				continue
			}
			// The shared cache deduplicates programs across tables and
			// recompilations of the same table (rule sets are routinely
			// re-deployed with most cells unchanged).
			p, err := expr.Cached(src)
			if err != nil {
				return nil, fmt.Errorf("%w: rule %d condition %d: %v", ErrBadDefinition, ri, ci, err)
			}
			conds = append(conds, p)
		}
		c.conds = append(c.conds, conds)
		outs := make(map[string]*expr.Program, len(t.Outputs))
		for _, name := range t.Outputs {
			src, ok := r.Outputs[name]
			if !ok {
				return nil, fmt.Errorf("%w: rule %d missing output %q", ErrBadDefinition, ri, name)
			}
			p, err := expr.Cached(src)
			if err != nil {
				return nil, fmt.Errorf("%w: rule %d output %q: %v", ErrBadDefinition, ri, name, err)
			}
			outs[name] = p
		}
		c.outs = append(c.outs, outs)
	}
	return c, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(t Table) *Compiled {
	c, err := Compile(t)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the table name.
func (c *Compiled) Name() string { return c.table.Name }

// Decision is the result of evaluating a table.
type Decision struct {
	// Matched lists the indices of matching rules, in table order.
	Matched []int
	// Outputs holds the decided values for single-result policies
	// (UNIQUE, FIRST, ANY, PRIORITY).
	Outputs map[string]expr.Value
	// List holds one output map per match for COLLECT / RULE ORDER.
	List []map[string]expr.Value
}

// Eval evaluates the table against env.
func (c *Compiled) Eval(env expr.Env) (*Decision, error) {
	var matched []int
	for ri := range c.table.Rules {
		ok := true
		for _, cond := range c.conds[ri] {
			hit, err := cond.EvalBool(env)
			if err != nil {
				return nil, fmt.Errorf("rules: table %q rule %d: %w", c.table.Name, ri, err)
			}
			if !hit {
				ok = false
				break
			}
		}
		if ok {
			matched = append(matched, ri)
			if c.table.HitPolicy == First && len(matched) == 1 {
				break
			}
			if c.table.HitPolicy == Unique && len(matched) > 1 {
				return nil, fmt.Errorf("%w: table %q rules %d and %d", ErrNotUnique, c.table.Name, matched[0], matched[1])
			}
		}
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("%w: table %q", ErrNoMatch, c.table.Name)
	}
	d := &Decision{Matched: matched}
	if c.table.HitPolicy.multi() {
		for _, ri := range matched {
			out, err := c.evalOutputs(ri, env)
			if err != nil {
				return nil, err
			}
			d.List = append(d.List, out)
		}
		return d, nil
	}
	pick := matched[0]
	switch c.table.HitPolicy {
	case Priority:
		for _, ri := range matched[1:] {
			if c.table.Rules[ri].Priority > c.table.Rules[pick].Priority {
				pick = ri
			}
		}
	case Any:
		first, err := c.evalOutputs(matched[0], env)
		if err != nil {
			return nil, err
		}
		for _, ri := range matched[1:] {
			other, err := c.evalOutputs(ri, env)
			if err != nil {
				return nil, err
			}
			for k, v := range first {
				if !v.Equal(other[k]) {
					return nil, fmt.Errorf("%w: table %q output %q", ErrAnyDisagree, c.table.Name, k)
				}
			}
		}
		d.Outputs = first
		return d, nil
	}
	out, err := c.evalOutputs(pick, env)
	if err != nil {
		return nil, err
	}
	d.Outputs = out
	return d, nil
}

func (c *Compiled) evalOutputs(ri int, env expr.Env) (map[string]expr.Value, error) {
	out := make(map[string]expr.Value, len(c.outs[ri]))
	for name, p := range c.outs[ri] {
		v, err := p.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("rules: table %q rule %d output %q: %w", c.table.Name, ri, name, err)
		}
		out[name] = v
	}
	return out, nil
}

// EncodeJSON serialises the table definition.
func EncodeJSON(t Table) ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// DecodeJSON parses and compiles a table from JSON, returning both the
// definition and the compiled form.
func DecodeJSON(data []byte) (Table, *Compiled, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return Table{}, nil, fmt.Errorf("rules: decode: %w", err)
	}
	c, err := Compile(t)
	if err != nil {
		return Table{}, nil, err
	}
	return t, c, nil
}
