package rules

import (
	"strings"
	"testing"

	"bpms/internal/expr"
	"bpms/internal/obs"
)

func TestMetricsWiring(t *testing.T) {
	m := obs.New()
	SetMetrics(m)
	defer SetMetrics(nil)

	c := MustCompile(eqTable(First, 20))
	if _, err := c.Eval(expr.MapEnv{"v": expr.Int(3)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Eval(expr.MapEnv{"v": expr.Int(999)}); err == nil {
		t.Fatal("expected ErrNoMatch")
	}
	if _, err := c.Eval(expr.MapEnv{}); err == nil {
		t.Fatal("expected unbound-variable error")
	}
	ds, errs := c.EvalBatch([]expr.Env{
		expr.MapEnv{"v": expr.Int(1)},
		expr.MapEnv{"v": expr.Int(2)},
	})
	if errs[0] != nil || errs[1] != nil || ds[0] == nil || ds[1] == nil {
		t.Fatalf("batch failed: %v %v", errs[0], errs[1])
	}

	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		obs.MetricRulesEval + "_count 5",
		obs.MetricRulesDecisions + `{table="eq",result="match"} 3`,
		obs.MetricRulesDecisions + `{table="eq",result="no_match"} 1`,
		obs.MetricRulesDecisions + `{table="eq",result="error"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}
}

// TestMetricsDetach: tables resolve fresh handles when the registry
// changes generation, and a detached registry stops counting.
func TestMetricsDetach(t *testing.T) {
	m := obs.New()
	SetMetrics(m)
	c := MustCompile(eqTable(First, 4))
	if _, err := c.Eval(expr.MapEnv{"v": expr.Int(1)}); err != nil {
		t.Fatal(err)
	}
	SetMetrics(nil)
	if _, err := c.Eval(expr.MapEnv{"v": expr.Int(1)}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), obs.MetricRulesDecisions+`{table="eq",result="match"} 1`) {
		t.Errorf("detached registry kept counting:\n%s", b.String())
	}
}
