package verify

import (
	"fmt"
	"sort"

	"bpms/internal/model"
	"bpms/internal/petri"
)

// Options configures a soundness check.
type Options struct {
	// MaxStates bounds state-space exploration (default 200000).
	MaxStates int
	// UseReduction enables the Murata reduction fast path on the
	// short-circuited net before state-space analysis.
	UseReduction bool
	// Diagnostics requests element-level detail (dead elements,
	// per-violation messages) even when the fast path already decided
	// the verdict; it forces a direct state-space pass.
	Diagnostics bool
}

// DefaultOptions enables the reduction fast path with diagnostics.
func DefaultOptions() Options {
	return Options{MaxStates: 200000, UseReduction: true, Diagnostics: true}
}

func (o Options) withDefaults() Options {
	if o.MaxStates <= 0 {
		o.MaxStates = 200000
	}
	return o
}

// Result reports the outcome of a soundness check.
type Result struct {
	// Sound is the verdict: the classical soundness property holds.
	Sound bool
	// Method records how the verdict was reached.
	Method string
	// Bounded reports whether the workflow net is bounded.
	Bounded bool
	// StateCount is the number of states explored in the decisive pass.
	StateCount int
	// NetPlaces / NetTransitions are the sizes of the translated net;
	// ReducedPlaces / ReducedTransitions the sizes after reduction
	// (equal to the former when reduction is disabled).
	NetPlaces, NetTransitions         int
	ReducedPlaces, ReducedTransitions int
	// Violations lists human-readable soundness violations.
	Violations []string
	// DeadElements lists model elements that can never execute.
	DeadElements []string
	// Warnings lists translation approximations (see package doc).
	Warnings []string
	// Incomplete is true when the state budget was exhausted before a
	// verdict; Sound is then false and Violations explains.
	Incomplete bool
}

const shortCircuitTransition = "τ*"

// Check verifies the classical soundness of a process definition:
// (1) option to complete, (2) proper completion, and (3) no dead
// transitions, on its workflow-net translation.
func Check(p *model.Process, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	net, nm, warnings, err := ToNet(p)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Warnings:       warnings,
		NetPlaces:      net.Places(),
		NetTransitions: net.Transitions(),
	}
	res.ReducedPlaces, res.ReducedTransitions = res.NetPlaces, res.NetTransitions

	if opts.UseReduction && !opts.Diagnostics {
		// Fast path: soundness(N) == live(N*) && bounded(N*) on the
		// short-circuited net, which reduction preserves.
		sound, states, reducedP, reducedT, incomplete := checkViaReduction(net, opts.MaxStates)
		res.Method = "reduction+statespace"
		res.StateCount = states
		res.ReducedPlaces, res.ReducedTransitions = reducedP, reducedT
		res.Incomplete = incomplete
		res.Sound = sound
		res.Bounded = !incomplete // boundedness decided within the pass
		if incomplete {
			res.Violations = append(res.Violations,
				fmt.Sprintf("state budget of %d exhausted before a verdict", opts.MaxStates))
		} else if !sound {
			res.Violations = append(res.Violations, "short-circuited net is not live and bounded")
		}
		return res, nil
	}

	if err := checkDirect(net, nm, opts, res); err != nil {
		return nil, err
	}
	if opts.UseReduction {
		res.Method = "statespace+diagnostics"
	} else {
		res.Method = "statespace"
	}
	return res, nil
}

// checkViaReduction decides soundness through the short-circuited,
// reduced net. It returns (sound, statesExplored, places, transitions,
// incomplete).
func checkViaReduction(net *petri.Net, maxStates int) (bool, int, int, int, bool) {
	sc := shortCircuit(net)
	m0 := sc.NewMarking()
	src, _ := sc.PlaceByName(SourcePlace)
	m0[src] = 1
	red, rm0 := Reduce(sc, m0)
	places, transitions := red.Places(), red.Transitions()

	cov, err := petri.Coverability(red, rm0, maxStates)
	if err != nil {
		return false, len(cov.States), places, transitions, true
	}
	for _, m := range cov.States {
		if m.HasOmega() {
			return false, len(cov.States), places, transitions, false
		}
	}
	// Bounded: the coverability graph IS the reachability graph.
	if !isLive(red, cov) {
		return false, len(cov.States), places, transitions, false
	}
	return true, len(cov.States), places, transitions, false
}

// shortCircuit copies net and adds τ*: o -> i.
func shortCircuit(net *petri.Net) *petri.Net {
	b := petri.NewBuilder()
	for p := 0; p < net.Places(); p++ {
		b.AddPlace(net.PlaceName(petri.PlaceID(p)))
	}
	for t := 0; t < net.Transitions(); t++ {
		tid := b.AddTransition(net.TransitionName(petri.TransitionID(t)))
		for _, p := range net.Pre(petri.TransitionID(t)) {
			b.ArcPT(petri.PlaceID(p), tid)
		}
		for _, p := range net.Post(petri.TransitionID(t)) {
			b.ArcTP(tid, petri.PlaceID(p))
		}
	}
	star := b.AddTransition(shortCircuitTransition)
	src := b.AddPlace(SourcePlace)
	sink := b.AddPlace(SinkPlace)
	b.ArcPT(sink, star)
	b.ArcTP(star, src)
	return b.Build()
}

// isLive checks liveness on a complete (bounded) state graph: every
// transition must be fireable from every reachable state.
func isLive(net *petri.Net, g *petri.Graph) bool {
	if net.Transitions() == 0 {
		return true
	}
	// Any deadlock kills liveness immediately.
	for s := range g.States {
		if len(g.Out[s]) == 0 {
			return false
		}
	}
	for t := 0; t < net.Transitions(); t++ {
		var targets []int
		for _, e := range g.Edges {
			if e.T == petri.TransitionID(t) {
				targets = append(targets, e.From)
			}
		}
		if len(targets) == 0 {
			return false // dead transition
		}
		back := g.BackwardReachable(targets)
		if len(back) != len(g.States) {
			return false
		}
	}
	return true
}

// checkDirect runs the textbook three-condition check on the original
// net, filling element-level diagnostics.
func checkDirect(net *petri.Net, nm *NetMap, opts Options, res *Result) error {
	src, ok := net.PlaceByName(SourcePlace)
	if !ok {
		return fmt.Errorf("verify: translated net has no source place")
	}
	sink, ok := net.PlaceByName(SinkPlace)
	if !ok {
		return fmt.Errorf("verify: translated net has no sink place")
	}
	m0 := net.NewMarking()
	m0[src] = 1

	bounded, err := petri.Bounded(net, m0, opts.MaxStates)
	if err != nil {
		res.Incomplete = true
		res.Sound = false
		res.Violations = append(res.Violations,
			fmt.Sprintf("state budget of %d exhausted during boundedness analysis", opts.MaxStates))
		return nil
	}
	res.Bounded = bounded
	if !bounded {
		res.Sound = false
		res.Violations = append(res.Violations, "workflow net is unbounded (tokens can accumulate)")
		return nil
	}

	g, err := petri.Reachability(net, m0, opts.MaxStates)
	res.StateCount = len(g.States)
	if err != nil {
		res.Incomplete = true
		res.Sound = false
		res.Violations = append(res.Violations,
			fmt.Sprintf("state budget of %d exhausted during reachability analysis", opts.MaxStates))
		return nil
	}

	final := net.NewMarking()
	final[sink] = 1
	finalState := -1
	properViolations := 0
	for s, m := range g.States {
		if m.Equal(final) {
			finalState = s
			continue
		}
		if m[sink] >= 1 {
			properViolations++
			if properViolations <= 3 {
				res.Violations = append(res.Violations,
					fmt.Sprintf("improper completion: reachable marking %s has tokens besides the sink", m.String(net)))
			}
		}
	}
	if properViolations > 3 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("... and %d more improper completions", properViolations-3))
	}

	if finalState < 0 {
		res.Violations = append(res.Violations, "the final marking is not reachable")
		for i, s := range g.Deadlocks() {
			if i >= 3 {
				break
			}
			res.Violations = append(res.Violations,
				fmt.Sprintf("no option to complete: deadlock at marking %s", g.States[s].String(net)))
		}
	} else {
		back := g.BackwardReachable([]int{finalState})
		stuck := 0
		for s := range g.States {
			if !back[s] {
				stuck++
				if stuck <= 3 {
					kind := "livelock"
					if len(g.Out[s]) == 0 {
						kind = "deadlock"
					}
					res.Violations = append(res.Violations,
						fmt.Sprintf("no option to complete: %s at marking %s", kind, g.States[s].String(net)))
				}
			}
		}
		if stuck > 3 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("... and %d more stuck states", stuck-3))
		}
	}

	deadEls := map[string]bool{}
	for _, t := range g.DeadTransitions() {
		name := net.TransitionName(t)
		el := nm.ElementOf[name]
		if el == "" {
			el = name
		}
		deadEls[el] = true
	}
	// An element is dead only if ALL of its transitions are dead
	// (multi-transition encodings fire partially by design).
	fired := g.FiredTransitions()
	for t := 0; t < net.Transitions(); t++ {
		if fired[petri.TransitionID(t)] {
			delete(deadEls, nm.ElementOf[net.TransitionName(petri.TransitionID(t))])
		}
	}
	for el := range deadEls {
		res.DeadElements = append(res.DeadElements, el)
	}
	sort.Strings(res.DeadElements)
	for _, el := range res.DeadElements {
		res.Violations = append(res.Violations, fmt.Sprintf("element %q can never execute", el))
	}

	res.Sound = len(res.Violations) == 0
	return nil
}

// IsWorkflowNet checks the structural workflow-net property of the
// translation of p: a unique source and sink place and every node on a
// path from source to sink.
func IsWorkflowNet(p *model.Process) (bool, []string, error) {
	net, _, _, err := ToNet(p)
	if err != nil {
		return false, nil, err
	}
	src, _ := net.PlaceByName(SourcePlace)
	sink, _ := net.PlaceByName(SinkPlace)
	var problems []string
	if len(net.Producers(src)) != 0 {
		problems = append(problems, "source place has producers")
	}
	if len(net.Consumers(sink)) != 0 {
		problems = append(problems, "sink place has consumers")
	}
	// Forward from src over the bipartite graph.
	nNodes := net.Places() + net.Transitions()
	tNode := func(t petri.TransitionID) int { return net.Places() + int(t) }
	fwd := make([]bool, nNodes)
	stack := []int{int(src)}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fwd[n] {
			continue
		}
		fwd[n] = true
		if n < net.Places() {
			for _, t := range net.Consumers(petri.PlaceID(n)) {
				stack = append(stack, tNode(t))
			}
		} else {
			for _, pp := range net.Post(petri.TransitionID(n - net.Places())) {
				stack = append(stack, int(pp))
			}
		}
	}
	bwd := make([]bool, nNodes)
	stack = []int{int(sink)}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if bwd[n] {
			continue
		}
		bwd[n] = true
		if n < net.Places() {
			for _, t := range net.Producers(petri.PlaceID(n)) {
				stack = append(stack, tNode(t))
			}
		} else {
			for _, pp := range net.Pre(petri.TransitionID(n - net.Places())) {
				stack = append(stack, int(pp))
			}
		}
	}
	for n := 0; n < nNodes; n++ {
		if !fwd[n] || !bwd[n] {
			var name string
			if n < net.Places() {
				name = "place " + net.PlaceName(petri.PlaceID(n))
			} else {
				name = "transition " + net.TransitionName(petri.TransitionID(n-net.Places()))
			}
			problems = append(problems, fmt.Sprintf("%s is not on a path from source to sink", name))
		}
	}
	return len(problems) == 0, problems, nil
}
