// Package verify implements formal verification of process definitions
// against workflow-net semantics: the classic soundness property
// (option to complete, proper completion, no dead transitions) of
// van der Aalst, checked on the Petri-net translation of the model,
// with a liveness/boundedness-preserving reduction pre-pass as a fast
// path.
//
// The translation follows the standard BPMN→WF-net mapping. Constructs
// whose semantics are not expressible in place/transition nets are
// over-approximated and reported as warnings:
//
//   - inclusive (OR) gateways use non-empty-subset split/merge semantics;
//   - boundary events on sub-processes cancel only the busy token, not
//     interior tokens;
//   - multi-instance activities verify as a single instance;
//   - call activities verify as atomic tasks;
//   - terminate end events verify as plain end events.
package verify

import (
	"fmt"

	"bpms/internal/model"
	"bpms/internal/petri"
)

// SourcePlace and SinkPlace are the names of the WF-net's unique
// source (i) and sink (o) places in the translated net.
const (
	SourcePlace = "i"
	SinkPlace   = "o"
)

// NetMap relates the translated net back to the process model for
// diagnostics: each transition belongs to exactly one element.
type NetMap struct {
	// ElementOf maps a transition name to the originating element ID.
	ElementOf map[string]string
}

// maxInclusiveFanout caps the subset expansion of inclusive gateways
// (2^n - 1 transitions).
const maxInclusiveFanout = 12

// translator builds a Petri net from a process model.
type translator struct {
	b        *petri.Builder
	nm       *NetMap
	warnings []string
}

func (tr *translator) warnf(format string, args ...any) {
	tr.warnings = append(tr.warnings, fmt.Sprintf(format, args...))
}

// transition registers a transition and records its owning element.
func (tr *translator) transition(name, elementID string) petri.TransitionID {
	t := tr.b.AddTransition(name)
	tr.nm.ElementOf[name] = elementID
	return t
}

// ToNet translates a validated process definition into a workflow net
// with source place "i" and sink place "o". It returns the net, the
// diagnostic map, and any approximation warnings.
func ToNet(p *model.Process) (*petri.Net, *NetMap, []string, error) {
	tr := &translator{
		b:  petri.NewBuilder(),
		nm: &NetMap{ElementOf: map[string]string{}},
	}
	source := tr.b.AddPlace(SourcePlace)
	sink := tr.b.AddPlace(SinkPlace)
	if err := tr.process(p, "", source, sink); err != nil {
		return nil, nil, nil, err
	}
	return tr.b.Build(), tr.nm, tr.warnings, nil
}

// process translates one process body. prefix namespaces sub-process
// elements; entry and exit are the places standing for the body's
// source and sink.
func (tr *translator) process(p *model.Process, prefix string, entry, exit petri.PlaceID) error {
	p.Index()
	flowPlace := func(f *model.Flow) petri.PlaceID {
		return tr.b.AddPlace(prefix + "f:" + f.ID)
	}
	inPlaces := func(id string) []petri.PlaceID {
		flows := p.Incoming(id)
		out := make([]petri.PlaceID, len(flows))
		for i, f := range flows {
			out[i] = flowPlace(f)
		}
		return out
	}
	outPlaces := func(id string) []petri.PlaceID {
		flows := p.Outgoing(id)
		out := make([]petri.PlaceID, len(flows))
		for i, f := range flows {
			out[i] = flowPlace(f)
		}
		return out
	}

	for _, e := range p.Elements {
		qid := prefix + e.ID
		switch e.Kind {
		case model.KindStartEvent:
			t := tr.transition(qid, qid)
			tr.b.ArcPT(entry, t)
			for _, o := range outPlaces(e.ID) {
				tr.b.ArcTP(t, o)
			}
		case model.KindEndEvent, model.KindTerminateEnd:
			if e.Kind == model.KindTerminateEnd {
				tr.warnf("terminate end %q verified as a plain end event", qid)
			}
			// Implicit XOR-join: one transition per incoming flow.
			for i, pin := range inPlaces(e.ID) {
				t := tr.transition(fmt.Sprintf("%s#%d", qid, i), qid)
				tr.b.ArcPT(pin, t)
				tr.b.ArcTP(t, exit)
			}
		case model.KindExclusiveGateway, model.KindEventGateway:
			// One transition per (incoming, outgoing) pair.
			for i, pin := range inPlaces(e.ID) {
				for j, pout := range outPlaces(e.ID) {
					t := tr.transition(fmt.Sprintf("%s#%d>%d", qid, i, j), qid)
					tr.b.ArcPT(pin, t)
					tr.b.ArcTP(t, pout)
				}
			}
		case model.KindParallelGateway:
			t := tr.transition(qid, qid)
			for _, pin := range inPlaces(e.ID) {
				tr.b.ArcPT(pin, t)
			}
			for _, pout := range outPlaces(e.ID) {
				tr.b.ArcTP(t, pout)
			}
		case model.KindBoundaryEvent:
			// Encoded by the host activity.
			continue
		case model.KindInclusiveGateway:
			if err := tr.inclusive(p, prefix, e, inPlaces(e.ID), outPlaces(e.ID)); err != nil {
				return err
			}
		case model.KindSubProcess:
			if err := tr.subProcess(p, prefix, e, inPlaces(e.ID), outPlaces(e.ID)); err != nil {
				return err
			}
		default:
			// All task and intermediate-event kinds share the activity
			// encoding (with implicit XOR-join / parallel-out).
			tr.activity(p, prefix, e, inPlaces(e.ID), outPlaces(e.ID))
		}
	}
	return nil
}

// activity encodes a task or intermediate event. When the node has one
// incoming flow and no boundary events it is a single transition; the
// general case uses enter transitions into a busy place plus a done
// transition, with boundary events racing on the busy place.
func (tr *translator) activity(p *model.Process, prefix string, e *model.Element, ins, outs []petri.PlaceID) {
	qid := prefix + e.ID
	if e.Multi != nil {
		tr.warnf("multi-instance activity %q verified as a single instance", qid)
	}
	if e.Kind == model.KindCallActivity {
		tr.warnf("call activity %q verified as an atomic task", qid)
	}
	boundaries := p.BoundaryEvents(e.ID)
	if len(boundaries) == 0 && len(ins) == 1 {
		t := tr.transition(qid, qid)
		tr.b.ArcPT(ins[0], t)
		for _, o := range outs {
			tr.b.ArcTP(t, o)
		}
		return
	}
	busy := tr.b.AddPlace(prefix + "busy:" + e.ID)
	var arms []petri.PlaceID
	for _, bd := range boundaries {
		arms = append(arms, tr.b.AddPlace(prefix+"arm:"+bd.ID))
	}
	for i, pin := range ins {
		t := tr.transition(fmt.Sprintf("%s#enter%d", qid, i), qid)
		tr.b.ArcPT(pin, t)
		tr.b.ArcTP(t, busy)
		for _, arm := range arms {
			tr.b.ArcTP(t, arm)
		}
	}
	done := tr.transition(qid, qid)
	tr.b.ArcPT(busy, done)
	for _, arm := range arms {
		tr.b.ArcPT(arm, done)
	}
	for _, o := range outs {
		tr.b.ArcTP(done, o)
	}
	for bi, bd := range boundaries {
		bqid := prefix + bd.ID
		t := tr.transition(bqid, bqid)
		if bd.CancelActivity {
			// Interrupting: steal the busy token and all arms.
			tr.b.ArcPT(busy, t)
			for _, arm := range arms {
				tr.b.ArcPT(arm, t)
			}
		} else {
			// Non-interrupting: consume only its own arm (fires at
			// most once per activation).
			tr.b.ArcPT(arms[bi], t)
		}
		for _, f := range p.Outgoing(bd.ID) {
			tr.b.ArcTP(t, tr.b.AddPlace(prefix+"f:"+f.ID))
		}
	}
}

// subProcess inlines the body net between the parent's flows.
func (tr *translator) subProcess(p *model.Process, prefix string, e *model.Element, ins, outs []petri.PlaceID) error {
	qid := prefix + e.ID
	subPrefix := qid + "/"
	subEntry := tr.b.AddPlace(subPrefix + SourcePlace)
	subExit := tr.b.AddPlace(subPrefix + SinkPlace)
	boundaries := p.BoundaryEvents(e.ID)
	if len(boundaries) > 0 {
		tr.warnf("boundary events on sub-process %q cancel only the busy token, not interior tokens", qid)
	}
	busy := tr.b.AddPlace(prefix + "busy:" + e.ID)
	for i, pin := range ins {
		t := tr.transition(fmt.Sprintf("%s#enter%d", qid, i), qid)
		tr.b.ArcPT(pin, t)
		tr.b.ArcTP(t, subEntry)
		tr.b.ArcTP(t, busy)
	}
	done := tr.transition(qid, qid)
	tr.b.ArcPT(subExit, done)
	tr.b.ArcPT(busy, done)
	for _, o := range outs {
		tr.b.ArcTP(done, o)
	}
	for _, bd := range boundaries {
		bqid := prefix + bd.ID
		t := tr.transition(bqid, bqid)
		tr.b.ArcPT(busy, t)
		for _, f := range p.Outgoing(bd.ID) {
			tr.b.ArcTP(t, tr.b.AddPlace(prefix+"f:"+f.ID))
		}
	}
	return tr.process(e.SubProcess, subPrefix, subEntry, subExit)
}

// inclusive encodes an OR gateway with non-empty-subset semantics on
// both sides, warning about the approximation.
func (tr *translator) inclusive(p *model.Process, prefix string, e *model.Element, ins, outs []petri.PlaceID) error {
	qid := prefix + e.ID
	if len(ins) > maxInclusiveFanout || len(outs) > maxInclusiveFanout {
		return fmt.Errorf("verify: inclusive gateway %q fan-in/out exceeds %d", qid, maxInclusiveFanout)
	}
	tr.warnf("inclusive gateway %q approximated with subset split/merge semantics", qid)
	// Center place decouples join subsets from split subsets.
	center := tr.b.AddPlace(prefix + "or:" + e.ID)
	if len(ins) == 1 {
		t := tr.transition(qid+"#in", qid)
		tr.b.ArcPT(ins[0], t)
		tr.b.ArcTP(t, center)
	} else {
		for mask := 1; mask < 1<<len(ins); mask++ {
			t := tr.transition(fmt.Sprintf("%s#in%d", qid, mask), qid)
			for i, pin := range ins {
				if mask&(1<<i) != 0 {
					tr.b.ArcPT(pin, t)
				}
			}
			tr.b.ArcTP(t, center)
		}
	}
	if len(outs) == 1 {
		t := tr.transition(qid+"#out", qid)
		tr.b.ArcPT(center, t)
		tr.b.ArcTP(t, outs[0])
	} else {
		for mask := 1; mask < 1<<len(outs); mask++ {
			t := tr.transition(fmt.Sprintf("%s#out%d", qid, mask), qid)
			tr.b.ArcPT(center, t)
			for i, pout := range outs {
				if mask&(1<<i) != 0 {
					tr.b.ArcTP(t, pout)
				}
			}
		}
	}
	return nil
}
