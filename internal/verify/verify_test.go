package verify

import (
	"strings"
	"testing"
	"testing/quick"

	"bpms/internal/model"
	"bpms/internal/petri"
)

func check(t *testing.T, p *model.Process, opts Options) *Result {
	t.Helper()
	res, err := Check(p, opts)
	if err != nil {
		t.Fatalf("Check(%s): %v", p.ID, err)
	}
	return res
}

func TestSoundTopologies(t *testing.T) {
	cases := []*model.Process{
		model.Sequence(1),
		model.Sequence(10),
		model.Parallel(2),
		model.Parallel(5),
		model.Choice(4),
		model.Loop(),
		model.Mixed(),
	}
	for _, p := range cases {
		for _, opts := range []Options{
			{UseReduction: false},
			{UseReduction: true},
			{UseReduction: true, Diagnostics: true},
		} {
			res := check(t, p, opts)
			if !res.Sound {
				t.Errorf("%s (reduction=%v diag=%v): want sound, got violations %v",
					p.ID, opts.UseReduction, opts.Diagnostics, res.Violations)
			}
			if !res.Bounded {
				t.Errorf("%s: want bounded", p.ID)
			}
		}
	}
}

func TestUnsoundDeadlock(t *testing.T) {
	p := model.WithDeadlock(3)
	for _, useRed := range []bool{false, true} {
		res := check(t, p, Options{UseReduction: useRed})
		if res.Sound {
			t.Errorf("WithDeadlock (reduction=%v): want unsound", useRed)
		}
	}
	// Diagnostics must name the problem.
	res := check(t, p, Options{Diagnostics: true})
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v, "deadlock") || strings.Contains(v, "no option to complete") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations lack deadlock detail: %v", res.Violations)
	}
}

func TestUnsoundLackOfSync(t *testing.T) {
	p := model.WithLackOfSync(3)
	for _, useRed := range []bool{false, true} {
		res := check(t, p, Options{UseReduction: useRed})
		if res.Sound {
			t.Errorf("WithLackOfSync (reduction=%v): want unsound", useRed)
		}
	}
	res := check(t, p, Options{Diagnostics: true})
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v, "improper completion") || strings.Contains(v, "unbounded") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations lack proper-completion detail: %v", res.Violations)
	}
}

func TestDeadElementDiagnosed(t *testing.T) {
	// XOR with an outgoing branch whose guard can never fire is not
	// detectable statically, but a branch behind a parallel join that
	// never gets its second token is. Build: XOR-split feeding AND-join
	// with an extra task behind the join.
	p := model.WithDeadlock(2)
	res := check(t, p, Options{Diagnostics: true})
	if res.Sound {
		t.Fatal("want unsound")
	}
	// The AND join and everything after it never executes.
	foundJoin := false
	for _, el := range res.DeadElements {
		if el == "join" {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Errorf("DeadElements = %v, want to contain \"join\"", res.DeadElements)
	}
}

func TestRandomStructuredAlwaysSound(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := model.RandomStructured(seed, 30)
		res := check(t, p, Options{UseReduction: true})
		if !res.Sound {
			t.Errorf("RandomStructured(%d): want sound, got %v", seed, res.Violations)
		}
	}
}

func TestReductionShrinksNet(t *testing.T) {
	p := model.Sequence(30)
	res := check(t, p, Options{UseReduction: true})
	if !res.Sound {
		t.Fatalf("want sound: %v", res.Violations)
	}
	if res.ReducedTransitions >= res.NetTransitions {
		t.Errorf("reduction did not shrink: %d -> %d transitions",
			res.NetTransitions, res.ReducedTransitions)
	}
	if res.StateCount > 4 {
		t.Errorf("reduced sequence should have a tiny state space, got %d states", res.StateCount)
	}
}

func TestReductionAgreesWithDirect(t *testing.T) {
	cases := []*model.Process{
		model.Sequence(5), model.Parallel(4), model.Choice(3), model.Loop(),
		model.Mixed(), model.WithDeadlock(4), model.WithLackOfSync(4),
		model.RandomStructured(3, 25), model.RandomStructured(9, 40),
	}
	for _, p := range cases {
		direct := check(t, p, Options{UseReduction: false})
		fast := check(t, p, Options{UseReduction: true})
		if direct.Sound != fast.Sound {
			t.Errorf("%s: direct=%v fast=%v disagree (direct violations: %v)",
				p.ID, direct.Sound, fast.Sound, direct.Violations)
		}
	}
}

// Property: the reduction fast path and the direct check agree on
// randomly generated block-structured models (all sound). Models whose
// direct state space exceeds the budget are decided by the fast path
// alone — that budget gap is precisely why the reduction pre-pass
// exists (experiment T3).
func TestQuickReductionSoundnessAgreement(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		p := model.RandomStructured(seed, int(sz%25)+2)
		fast := check(t, p, Options{UseReduction: true})
		if !fast.Sound {
			return false
		}
		direct := check(t, p, Options{UseReduction: false})
		return direct.Incomplete || direct.Sound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestBoundaryEventTranslation(t *testing.T) {
	// Interrupting timer boundary: task either completes or escalates;
	// both paths merge; sound.
	p, err := model.New("escalation").
		Start("start").
		UserTask("review", model.Role("clerk")).
		BoundaryTimer("late", "review", "2h", true).
		ServiceTask("escalate", model.NoopHandler).
		XOR("merge").
		End("end").
		Flow("start", "review").
		Flow("review", "merge").
		Flow("late", "escalate").
		Flow("escalate", "merge").
		Flow("merge", "end").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, p, Options{Diagnostics: true})
	if !res.Sound {
		t.Errorf("interrupting boundary process should be sound: %v", res.Violations)
	}

	// Non-interrupting boundary without merging the extra token is
	// unsound (improper completion).
	p2, err := model.New("noninterrupting").
		Start("start").
		UserTask("work", model.Role("clerk")).
		BoundaryTimer("remind", "work", "1h", false).
		ServiceTask("notify", model.NoopHandler).
		End("end").
		End("end2").
		Flow("start", "work").
		Flow("work", "end").
		Flow("remind", "notify").
		Flow("notify", "end2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res2 := check(t, p2, Options{Diagnostics: true})
	if res2.Sound {
		t.Error("non-interrupting boundary with unsynchronised extra token should be unsound")
	}
}

func TestSubProcessTranslation(t *testing.T) {
	sub, err := model.New("inner").
		Start("s").ServiceTask("work", model.NoopHandler).End("e").
		Seq("s", "work", "e").Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := model.New("outer").
		Start("start").
		SubProcess("sp", sub).
		End("end").
		Seq("start", "sp", "end").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, p, Options{Diagnostics: true})
	if !res.Sound {
		t.Errorf("sub-process sequence should be sound: %v", res.Violations)
	}
}

func TestInclusiveGatewayWarning(t *testing.T) {
	p, err := model.New("incl").
		Start("start").
		OR("split").
		ServiceTask("a", model.NoopHandler).
		ServiceTask("b", model.NoopHandler).
		OR("join").
		End("end").
		Flow("start", "split").
		FlowIf("split", "a", "coalesce(x,0) > 0").
		FlowIf("split", "b", "coalesce(y,0) > 0").
		Flow("a", "join").
		Flow("b", "join").
		Flow("join", "end").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, p, Options{Diagnostics: true})
	warned := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "inclusive gateway") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("want inclusive-gateway warning, got %v", res.Warnings)
	}
}

func TestIsWorkflowNet(t *testing.T) {
	ok, problems, err := IsWorkflowNet(model.Mixed())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("Mixed should be a WF-net, problems: %v", problems)
	}
}

func TestMessageAndEventGateway(t *testing.T) {
	// Event gateway racing a message against a timeout: classic
	// deferred-choice pattern; sound.
	p, err := model.New("race").
		Start("start").
		EventGateway("wait").
		MessageCatch("paid", "payment").
		TimerCatch("timeout", "24h").
		XOR("merge").
		End("end").
		Flow("start", "wait").
		Flow("wait", "paid").
		Flow("wait", "timeout").
		Flow("paid", "merge").
		Flow("timeout", "merge").
		Flow("merge", "end").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, p, Options{Diagnostics: true})
	if !res.Sound {
		t.Errorf("deferred choice should be sound: %v", res.Violations)
	}
}

func TestReduceStandalone(t *testing.T) {
	net, _, _, err := ToNet(model.Sequence(20))
	if err != nil {
		t.Fatal(err)
	}
	m0 := net.NewMarking()
	src, _ := net.PlaceByName(SourcePlace)
	m0[src] = 1
	red, rm0 := Reduce(net, m0, SourcePlace, SinkPlace)
	if red.Places() >= net.Places() {
		t.Errorf("Reduce did not shrink places: %d -> %d", net.Places(), red.Places())
	}
	if rm0.Tokens() != 1 {
		t.Errorf("reduced marking tokens = %d, want 1", rm0.Tokens())
	}
	// Protected places survive.
	if _, ok := red.PlaceByName(SourcePlace); !ok {
		t.Error("protected source place was removed")
	}
	if _, ok := red.PlaceByName(SinkPlace); !ok {
		t.Error("protected sink place was removed")
	}
}

func TestStateBudgetExhaustion(t *testing.T) {
	p := model.Parallel(12) // 2^12 interleavings
	res := check(t, p, Options{MaxStates: 50, UseReduction: false})
	if !res.Incomplete {
		t.Error("want Incomplete with tiny budget")
	}
	if res.Sound {
		t.Error("exhausted budget must not report sound")
	}
}

func TestNetMapDiagnostics(t *testing.T) {
	net, nm, _, err := ToNet(model.Mixed())
	if err != nil {
		t.Fatal(err)
	}
	// Every transition must map to an element.
	for ti := 0; ti < net.Transitions(); ti++ {
		name := net.TransitionName(petri.TransitionID(ti))
		if nm.ElementOf[name] == "" {
			t.Errorf("transition %q has no element mapping", name)
		}
	}
}
