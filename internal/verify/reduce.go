package verify

import "bpms/internal/petri"

// The reduction pre-pass shrinks a marked net with Murata's
// liveness/boundedness-preserving rules before state-space analysis:
// fusion of series transitions (FST), fusion of series places (FSP),
// fusion of parallel transitions (FPT), fusion of parallel places
// (FPP), and elimination of marked self-loop places (ESP). Because
// soundness of a workflow net equals liveness+boundedness of its
// short-circuited net, the verdict on the reduced net carries over to
// the original. Rules that would create arc weights greater than one
// are skipped (the rest of the analyzer is weight-1 only).

// rnet is a mutable marked net used only during reduction.
type rnet struct {
	placeProd map[int]map[int]bool // place -> transitions producing into it
	placeCons map[int]map[int]bool // place -> transitions consuming from it
	transPre  map[int]map[int]bool // transition -> input places
	transPost map[int]map[int]bool // transition -> output places
	marking   map[int]int
}

func newRNet(n *petri.Net, m0 petri.Marking) *rnet {
	r := &rnet{
		placeProd: map[int]map[int]bool{},
		placeCons: map[int]map[int]bool{},
		transPre:  map[int]map[int]bool{},
		transPost: map[int]map[int]bool{},
		marking:   map[int]int{},
	}
	for p := 0; p < n.Places(); p++ {
		r.placeProd[p] = map[int]bool{}
		r.placeCons[p] = map[int]bool{}
		if m0[p] > 0 {
			r.marking[p] = int(m0[p])
		}
	}
	for t := 0; t < n.Transitions(); t++ {
		r.transPre[t] = map[int]bool{}
		r.transPost[t] = map[int]bool{}
		for _, p := range n.Pre(petri.TransitionID(t)) {
			r.transPre[t][int(p)] = true
			r.placeCons[int(p)][t] = true
		}
		for _, p := range n.Post(petri.TransitionID(t)) {
			r.transPost[t][int(p)] = true
			r.placeProd[int(p)][t] = true
		}
	}
	return r
}

func (r *rnet) removePlace(p int) {
	for t := range r.placeProd[p] {
		delete(r.transPost[t], p)
	}
	for t := range r.placeCons[p] {
		delete(r.transPre[t], p)
	}
	delete(r.placeProd, p)
	delete(r.placeCons, p)
	delete(r.marking, p)
}

func (r *rnet) removeTrans(t int) {
	for p := range r.transPre[t] {
		delete(r.placeCons[p], t)
	}
	for p := range r.transPost[t] {
		delete(r.placeProd[p], t)
	}
	delete(r.transPre, t)
	delete(r.transPost, t)
}

func only(s map[int]bool) (int, bool) {
	if len(s) != 1 {
		return 0, false
	}
	for k := range s {
		return k, true
	}
	return 0, false
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// fuseSeriesTransitions applies FST once; reports whether it fired.
// Pattern: place p with a single producer t1 and single consumer t2,
// where p is t2's only input and p is unmarked: t2 merges into t1.
func (r *rnet) fuseSeriesTransitions() bool {
	for p, prod := range r.placeProd {
		t1, ok1 := only(prod)
		t2, ok2 := only(r.placeCons[p])
		if !ok1 || !ok2 || t1 == t2 || r.marking[p] != 0 {
			continue
		}
		if len(r.transPre[t2]) != 1 {
			continue
		}
		// Avoid creating weighted arcs.
		conflict := false
		for q := range r.transPost[t2] {
			if q != p && r.transPost[t1][q] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		// Merge: t1's output p is replaced by t2's outputs.
		delete(r.transPost[t1], p)
		delete(r.placeProd[p], t1)
		for q := range r.transPost[t2] {
			r.transPost[t1][q] = true
			r.placeProd[q][t1] = true
		}
		r.removeTrans(t2)
		r.removePlace(p)
		return true
	}
	return false
}

// fuseSeriesPlaces applies FSP once. Pattern: transition t with a
// single input p1 (whose only consumer is t) and single output p2:
// p1 merges into p2, t disappears.
func (r *rnet) fuseSeriesPlaces(protected map[int]bool) bool {
	for t, pre := range r.transPre {
		p1, ok1 := only(pre)
		p2, ok2 := only(r.transPost[t])
		if !ok1 || !ok2 || p1 == p2 || protected[p1] {
			continue
		}
		if len(r.placeCons[p1]) != 1 {
			continue
		}
		// Avoid weighted arcs: producers of p1 must not already feed p2.
		conflict := false
		for tp := range r.placeProd[p1] {
			if tp != t && r.transPost[tp][p2] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		for tp := range r.placeProd[p1] {
			if tp == t {
				continue
			}
			delete(r.transPost[tp], p1)
			r.transPost[tp][p2] = true
			r.placeProd[p2][tp] = true
		}
		r.marking[p2] += r.marking[p1]
		if r.marking[p2] == 0 {
			delete(r.marking, p2)
		}
		r.removeTrans(t)
		r.removePlace(p1)
		return true
	}
	return false
}

// fuseParallelTransitions applies FPT once: two transitions with
// identical pre and post sets are redundant; one is removed.
func (r *rnet) fuseParallelTransitions() bool {
	// Group by a cheap signature first to stay near-linear.
	bySig := map[[2]int][]int{}
	for t := range r.transPre {
		sig := [2]int{len(r.transPre[t]), len(r.transPost[t])}
		bySig[sig] = append(bySig[sig], t)
	}
	for _, ts := range bySig {
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				a, b := ts[i], ts[j]
				if sameSet(r.transPre[a], r.transPre[b]) && sameSet(r.transPost[a], r.transPost[b]) {
					r.removeTrans(b)
					return true
				}
			}
		}
	}
	return false
}

// fuseParallelPlaces applies FPP once: two equally marked places with
// identical producers and consumers are redundant; one is removed.
func (r *rnet) fuseParallelPlaces(protected map[int]bool) bool {
	bySig := map[[2]int][]int{}
	for p := range r.placeProd {
		sig := [2]int{len(r.placeProd[p]), len(r.placeCons[p])}
		bySig[sig] = append(bySig[sig], p)
	}
	for _, ps := range bySig {
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				a, b := ps[i], ps[j]
				if protected[b] {
					a, b = b, a
				}
				if protected[b] {
					continue
				}
				if r.marking[a] == r.marking[b] &&
					sameSet(r.placeProd[a], r.placeProd[b]) && sameSet(r.placeCons[a], r.placeCons[b]) {
					r.removePlace(b)
					return true
				}
			}
		}
	}
	return false
}

// elimSelfLoopPlace applies ESP once: a marked place whose producers
// equal its consumers never constrains firing and is removed.
func (r *rnet) elimSelfLoopPlace(protected map[int]bool) bool {
	for p := range r.placeProd {
		if protected[p] || r.marking[p] < 1 {
			continue
		}
		if len(r.placeProd[p]) == 0 {
			continue
		}
		if sameSet(r.placeProd[p], r.placeCons[p]) {
			r.removePlace(p)
			return true
		}
	}
	return false
}

// Reduce applies the rule set to fixpoint and rebuilds an immutable
// net plus its initial marking. protectedNames are never removed
// (the analyzer protects nothing for verdict-only runs; tests may
// protect i/o to inspect them).
func Reduce(n *petri.Net, m0 petri.Marking, protectedNames ...string) (*petri.Net, petri.Marking) {
	r := newRNet(n, m0)
	protected := map[int]bool{}
	for _, name := range protectedNames {
		if p, ok := n.PlaceByName(name); ok {
			protected[int(p)] = true
		}
	}
	for {
		if r.fuseSeriesTransitions() {
			continue
		}
		if r.fuseSeriesPlaces(protected) {
			continue
		}
		if r.fuseParallelTransitions() {
			continue
		}
		if r.fuseParallelPlaces(protected) {
			continue
		}
		if r.elimSelfLoopPlace(protected) {
			continue
		}
		break
	}
	// Rebuild.
	b := petri.NewBuilder()
	placeID := map[int]petri.PlaceID{}
	for p := range r.placeProd {
		placeID[p] = b.AddPlace(n.PlaceName(petri.PlaceID(p)))
	}
	for t := range r.transPre {
		tid := b.AddTransition(n.TransitionName(petri.TransitionID(t)))
		for p := range r.transPre[t] {
			b.ArcPT(placeID[p], tid)
		}
		for p := range r.transPost[t] {
			b.ArcTP(tid, placeID[p])
		}
	}
	out := b.Build()
	m := out.NewMarking()
	for p, c := range r.marking {
		if id, ok := out.PlaceByName(n.PlaceName(petri.PlaceID(p))); ok {
			m[id] = int32(c)
		}
	}
	return out, m
}
