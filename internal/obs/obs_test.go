package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionFormat renders a populated registry and checks every
// line against the text exposition format (0.0.4): comment lines are
// well-formed HELP/TYPE pairs, sample lines parse, histogram buckets
// are cumulative, and the +Inf bucket equals the count.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bpms_test_total", "A counter.", "kind", "a")
	c.Inc()
	c.Add(2)
	r.Counter("bpms_test_total", "A counter.", "kind", `esc"ape\n`).Inc()
	g := r.Gauge("bpms_test_depth", "A gauge.")
	g.Set(-7)
	h := r.Histogram("bpms_test_seconds", "A histogram.", nil, "op", "x")
	for _, d := range []time.Duration{10 * time.Microsecond, 3 * time.Millisecond, 40 * time.Millisecond, 7 * time.Second} {
		h.Observe(d)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (\+Inf|-?[0-9.eE+-]+)$`)
	helpRe := regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	typeRe := regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP"):
			if !helpRe.MatchString(line) {
				t.Errorf("bad HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE"):
			if !typeRe.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
			}
		default:
			if !sampleRe.MatchString(line) {
				t.Errorf("bad sample line: %q", line)
			}
		}
	}

	for _, want := range []string{
		`bpms_test_total{kind="a"} 3`,
		`bpms_test_total{kind="esc\"ape\\n"} 1`,
		"bpms_test_depth -7",
		`bpms_test_seconds_bucket{op="x",le="+Inf"} 4`,
		`bpms_test_seconds_count{op="x"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in exposition:\n%s", want, text)
		}
	}

	// Cumulative bucket counts must be non-decreasing and end at count.
	bucketRe := regexp.MustCompile(`bpms_test_seconds_bucket\{op="x",le="([^"]+)"\} (\d+)`)
	var prev uint64
	matches := bucketRe.FindAllStringSubmatch(text, -1)
	if len(matches) != len(DefBuckets)+1 {
		t.Fatalf("bucket lines = %d, want %d", len(matches), len(DefBuckets)+1)
	}
	for _, m := range matches {
		n, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Errorf("bucket le=%s count %d < previous %d (not cumulative)", m[1], n, prev)
		}
		prev = n
	}
	if prev != 4 {
		t.Errorf("+Inf bucket = %d, want 4", prev)
	}
}

// TestNilInstrumentsAreSafe drives every instrument method through nil
// receivers — the disabled form hot paths rely on.
func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	h.Observe(time.Second)
	t0 := h.Start()
	if !t0.IsZero() {
		t.Error("nil histogram Start() != zero time")
	}
	h.Since(t0)
	var m *Metrics
	m.EngineShard(0).Transition.Observe(time.Second)
	m.WAL("x").Fsync.Since(m.WAL("x").Fsync.Start())
	m.Tasks()
	m.Timers().Pending.Set(1)
	m.HTTPRoute("GET /x").Done(200, time.Millisecond)
	m.AddSampler(func() {})
}

// TestConcurrentObserveScrape hammers one histogram and one counter
// from many goroutines while scrapes run concurrently — the lock-free
// claim, checked under -race in CI.
func TestConcurrentObserveScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bpms_race_seconds", "h", nil)
	c := r.Counter("bpms_race_total", "c")
	const workers, perWorker = 8, 2000
	var observers, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < workers; i++ {
		observers.Add(1)
		go func(i int) {
			defer observers.Done()
			for j := 0; j < perWorker; j++ {
				h.Observe(time.Duration(i*j) * time.Microsecond)
				c.Inc()
			}
		}(i)
	}
	observers.Wait()
	close(stop)
	scraper.Wait()
	if _, _, _, count := h.Snapshot(); count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", count, workers*perWorker)
	}
}

// TestAuditorExactlyOnce checks the sweeper's dedup contract: a
// violation persisting across sweeps is counted and emitted once, and
// one that clears and reappears is not re-counted (the seen set never
// forgets), while the active set always reflects the current sweep.
func TestAuditorExactlyOnce(t *testing.T) {
	now := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	overdue := []Violation{{Kind: KindTaskOverdue, ID: "wi-1", Since: now}}
	var emitted []Violation
	m := New()
	a := NewAuditor(AuditorConfig{
		Interval: time.Second,
		Now:      func() time.Time { return now },
		Overdue:  func(time.Time) []Violation { return overdue },
		Emit:     func(v Violation) { emitted = append(emitted, v) },
		Metrics:  m,
	})

	if fresh := a.Sweep(); len(fresh) != 1 {
		t.Fatalf("first sweep fresh = %d, want 1", len(fresh))
	}
	firstDetected := a.Violations()[0].Detected
	now = now.Add(time.Second)
	if fresh := a.Sweep(); len(fresh) != 0 {
		t.Fatalf("second sweep fresh = %d, want 0 (still violating)", len(fresh))
	}
	if got := a.Violations(); len(got) != 1 || !got[0].Detected.Equal(firstDetected) {
		t.Fatalf("active = %+v, want original detection time kept", got)
	}

	// Violation clears: active drops to zero, nothing emitted.
	overdue = nil
	now = now.Add(time.Second)
	a.Sweep()
	if got := a.Violations(); len(got) != 0 {
		t.Fatalf("active after clear = %d, want 0", len(got))
	}

	// Reappears: active again, but never re-counted or re-emitted.
	overdue = []Violation{{Kind: KindTaskOverdue, ID: "wi-1", Since: now}}
	now = now.Add(time.Second)
	if fresh := a.Sweep(); len(fresh) != 0 {
		t.Fatalf("reappear sweep fresh = %d, want 0", len(fresh))
	}
	if len(a.Violations()) != 1 {
		t.Fatal("reappeared violation not active")
	}
	if len(emitted) != 1 || emitted[0].ID != "wi-1" {
		t.Fatalf("emitted = %+v, want exactly one", emitted)
	}

	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		fmt.Sprintf(`%s{kind="task_overdue"} 1`, MetricAuditViolations),
		fmt.Sprintf(`%s{kind="task_overdue"} 1`, MetricAuditActive),
		fmt.Sprintf("%s 4", MetricAuditSweeps),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if a.Sweeps() != 4 {
		t.Errorf("sweeps = %d, want 4", a.Sweeps())
	}
}

// TestAuditorSoundnessCadence checks the definition check runs on its
// slower cadence and its violations persist between soundness passes.
func TestAuditorSoundnessCadence(t *testing.T) {
	now := time.Unix(0, 0)
	checks := 0
	a := NewAuditor(AuditorConfig{
		Interval:       time.Second,
		SoundnessEvery: 3,
		Now:            func() time.Time { return now },
		CheckDefinitions: func() []Violation {
			checks++
			return []Violation{{Kind: KindDefinitionUnsound, ID: "p1", Since: now}}
		},
	})
	for i := 0; i < 6; i++ {
		a.Sweep()
		now = now.Add(time.Second)
		if len(a.Violations()) != 1 {
			t.Fatalf("sweep %d: active = %d, want 1 (persisted between passes)", i, len(a.Violations()))
		}
	}
	if checks != 2 {
		t.Errorf("definition checks = %d, want 2 (sweeps 0 and 3)", checks)
	}
}
